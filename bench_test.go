// Repository-level benchmarks: one testing.B benchmark per table and figure
// of the paper's evaluation (§VII), plus ablation benches for the design
// choices called out in DESIGN.md. `go test -bench=. -benchmem` runs reduced
// parameter sweeps; `cmd/ppcd-bench` prints the full paper-style series.
package ppcd

import (
	"fmt"
	"math/big"
	benchrand "math/rand"
	"sync"
	"testing"

	"ppcd/internal/baseline/direct"
	"ppcd/internal/baseline/lkh"
	"ppcd/internal/baseline/marker"
	"ppcd/internal/benchutil"
	"ppcd/internal/core"
	"ppcd/internal/experiments"
	"ppcd/internal/ff64"
	"ppcd/internal/idtoken"
	"ppcd/internal/linalg"
	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/pubsub"
)

var (
	benchOnce     sync.Once
	benchJacobian *CommitmentParams
	benchSchnorr  *CommitmentParams
)

func benchParams(b *testing.B) (*CommitmentParams, *CommitmentParams) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		benchJacobian, err = Setup(PaperCurve(), []byte("bench"))
		if err != nil {
			panic(err)
		}
		benchSchnorr, err = Setup(SchnorrGroup(), []byte("bench"))
		if err != nil {
			panic(err)
		}
	})
	return benchJacobian, benchSchnorr
}

// --- Figure 2: GE-OCBE step times vs ℓ (paper: 5…40; reduced sweep here) ---

func BenchmarkFig2_GEOCBE(b *testing.B) {
	jac, _ := benchParams(b)
	for _, ell := range []int{5, 10, 20} {
		b.Run(fmt.Sprintf("ell=%d", ell), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.MeasureOCBE(jac, true, ell, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table II: EQ-OCBE step times over the paper's Jacobian group ---

func BenchmarkTable2_EQOCBE_Compose(b *testing.B) {
	jac, _ := benchParams(b)
	x := big.NewInt(28)
	_, r, err := jac.CommitRandom(x)
	if err != nil {
		b.Fatal(err)
	}
	recv := ocbe.NewReceiver(jac, x, r)
	pred := ocbe.Predicate{Op: ocbe.EQ, X0: x}
	_, req, err := recv.Prepare(pred, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ocbe.Compose(jac, pred, 0, req, []byte("css")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_EQOCBE_Open(b *testing.B) {
	jac, _ := benchParams(b)
	x := big.NewInt(28)
	_, r, err := jac.CommitRandom(x)
	if err != nil {
		b.Fatal(err)
	}
	recv := ocbe.NewReceiver(jac, x, r)
	pred := ocbe.Predicate{Op: ocbe.EQ, X0: x}
	wit, req, err := recv.Prepare(pred, 0)
	if err != nil {
		b.Fatal(err)
	}
	env, err := ocbe.Compose(jac, pred, 0, req, []byte("css"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recv.Open(env, wit); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 3-5: ACV generation, key derivation, header size vs N ---

func benchRows(b *testing.B, subs, conds int) [][]core.CSS {
	b.Helper()
	rows, err := experiments.GKMWorkload(subs, 25, conds)
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

func BenchmarkFig3_ACVGen(b *testing.B) {
	for _, n := range []int{100, 250, 500} {
		for _, fill := range []int{25, 100} {
			subs := n * fill / 100
			rows := benchRows(b, subs, 2)
			b.Run(fmt.Sprintf("N=%d/fill=%d%%", n, fill), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.Build(rows, n); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig4_KeyDerive(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		rows := benchRows(b, n/4, 2)
		hdr, key, err := core.Build(rows, n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k, err := core.DeriveKey(rows[i%len(rows)], hdr)
				if err != nil || k != key {
					b.Fatalf("derive failed: %v", err)
				}
			}
		})
	}
}

func BenchmarkFig5_HeaderSize(b *testing.B) {
	// Size is deterministic; this bench reports it as a custom metric so the
	// series appears in benchmark output.
	for _, n := range []int{100, 500, 1000} {
		rows := benchRows(b, n/4, 2)
		hdr, _, err := core.Build(rows, n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = hdr.Size()
			}
			b.ReportMetric(float64(hdr.Size())/1024, "KB/header")
		})
	}
}

// --- Figure 6: vs conditions per policy (N = 500 fixed) ---

func BenchmarkFig6_ACVGenVsConds(b *testing.B) {
	for _, conds := range []int{1, 5, 10} {
		rows := benchRows(b, 500, conds)
		b.Run(fmt.Sprintf("conds=%d", conds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Build(rows, 500); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig6_KeyDeriveVsConds(b *testing.B) {
	for _, conds := range []int{1, 5, 10} {
		rows := benchRows(b, 500, conds)
		hdr, _, err := core.Build(rows, 500)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("conds=%d", conds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DeriveKey(rows[i%len(rows)], hdr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md): GKM scheme comparison and group choice ---

func BenchmarkAblation_GKMRekey(b *testing.B) {
	const n = 200
	rows := benchRows(b, n, 2)
	b.Run("acv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Build(rows, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("marker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := marker.Build(rows); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		d := direct.New()
		nyms := make([]string, n)
		for i := range nyms {
			nyms[i] = fmt.Sprintf("pn-%d", i)
			if err := d.RegisterUser(nyms[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := d.Rekey(nyms); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lkh", func(b *testing.B) {
		tree, err := lkh.New(n)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := tree.Join(fmt.Sprintf("pn-%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nym := fmt.Sprintf("pn-%d", i%n)
			if _, err := tree.Leave(nym); err != nil {
				b.Fatal(err)
			}
			if _, err := tree.Join(nym); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblation_GKMDerive(b *testing.B) {
	const n = 200
	rows := benchRows(b, n, 2)
	acvHdr, _, err := core.Build(rows, n)
	if err != nil {
		b.Fatal(err)
	}
	mHdr, _, err := marker.Build(rows)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("acv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DeriveKey(rows[i%n], acvHdr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("marker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := marker.DeriveKey(rows[i%n], mHdr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblation_GroupChoiceEQOCBE(b *testing.B) {
	jac, sch := benchParams(b)
	for _, tc := range []struct {
		name   string
		params *pedersen.Params
	}{{"jacobian", jac}, {"schnorr", sch}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.MeasureOCBE(tc.params, false, 0, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_GroupedBuild measures the §VIII-C scalability strategy:
// g groups of size N/g cost N³/g² solve work instead of N³, trading a
// slightly larger broadcast.
func BenchmarkAblation_GroupedBuild(b *testing.B) {
	const n = 1000
	rows := benchRows(b, n, 2)
	for _, groupSize := range []int{1000, 250, 100} {
		b.Run(fmt.Sprintf("groupSize=%d", groupSize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.BuildGrouped(rows, groupSize); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SharedSession measures the §VIII-D multi-document
// optimisation: amortising the matrix build over several documents and the
// KEV hashing over several derivations.
func BenchmarkAblation_SharedSession(b *testing.B) {
	const n, docs = 200, 10
	rows := benchRows(b, n, 2)
	b.Run("separate-builds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for d := 0; d < docs; d++ {
				if _, _, err := core.Build(rows, n); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("build-multi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.BuildMulti(rows, n, docs); err != nil {
				b.Fatal(err)
			}
		}
	})
	headers, _, err := core.BuildMulti(rows, n, docs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("derive-uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, hdr := range headers {
				if _, err := core.DeriveKey(rows[0], hdr); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("derive-kev-cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache, err := core.NewKEVCache(rows[0], headers[0])
			if err != nil {
				b.Fatal(err)
			}
			for _, hdr := range headers {
				if _, err := cache.Derive(hdr); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkAblation_KernelField(b *testing.B) {
	b.Run("ff64", func(b *testing.B) {
		rows := benchRows(b, 100, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Build(rows, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- End-to-end: full publish/decrypt cycle through the public API ---

func BenchmarkEndToEndPublish(b *testing.B) {
	_, sch := benchParams(b)
	idmgr, err := NewIdentityManager(sch)
	if err != nil {
		b.Fatal(err)
	}
	acp, err := NewPolicy("adults", "age >= 18", "news", "body")
	if err != nil {
		b.Fatal(err)
	}
	pub, err := NewPublisher(sch, idmgr.PublicKey(), []*Policy{acp}, Options{Ell: 8})
	if err != nil {
		b.Fatal(err)
	}
	sub, err := NewSubscriber("pn-bench")
	if err != nil {
		b.Fatal(err)
	}
	tok, sec, err := idmgr.IssueString("pn-bench", "age", "30")
	if err != nil {
		b.Fatal(err)
	}
	if err := sub.AddToken(tok, sec); err != nil {
		b.Fatal(err)
	}
	if _, err := sub.RegisterAll(pub); err != nil {
		b.Fatal(err)
	}
	doc, err := NewDocument("news", Subdocument{Name: "body", Content: make([]byte, 4096)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, err := pub.Publish(doc)
		if err != nil {
			b.Fatal(err)
		}
		got, err := sub.Decrypt(bc)
		if err != nil || len(got) != 1 {
			b.Fatalf("decrypt failed: %v", err)
		}
	}
}

// --- Layered engine: steady-state vs. rebuild publish cost ---
//
// The rekey engine caches per-configuration ACVs keyed by membership
// versions: a publish with no table change since the previous one performs
// ZERO null-space solves (it only re-encrypts payloads), a single
// leave/join re-solves only the affected configurations, and a state import
// rebuilds everything. These benchmarks quantify the three regimes.

// benchStatePublisher builds a publisher over a benchutil.Workload: the
// first half of the pseudonyms hold only attr0 (revoking one dirties
// exactly one configuration), the rest are fully registered. The state is
// injected through the public import path so no OCBE exchanges run.
// groupSize > 0 enables §VIII-C subscriber grouping.
func benchStatePublisher(b *testing.B, subs, policies, groupSize int) (*Publisher, *Document, []byte) {
	b.Helper()
	_, sch := benchParams(b)
	idmgr, err := NewIdentityManager(sch)
	if err != nil {
		b.Fatal(err)
	}
	acps, doc, state, err := benchutil.Workload(subs, policies, subs/2, 1024)
	if err != nil {
		b.Fatal(err)
	}
	pub, err := NewPublisher(sch, idmgr.PublicKey(), acps, Options{Ell: 8, GroupSize: groupSize})
	if err != nil {
		b.Fatal(err)
	}
	if err := pub.ImportState(state); err != nil {
		b.Fatal(err)
	}
	return pub, doc, state
}

func BenchmarkPublishSteadyState(b *testing.B) {
	for _, subs := range []int{100, 400} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			pub, doc, _ := benchStatePublisher(b, subs, 5, 0)
			if _, err := pub.Publish(doc); err != nil {
				b.Fatal(err)
			}
			solves := pub.Stats().Solves
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pub.Publish(doc); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if got := pub.Stats().Solves; got != solves {
				b.Fatalf("steady-state publishes performed %d solves", got-solves)
			}
		})
	}
}

func BenchmarkPublishSingleLeave(b *testing.B) {
	for _, subs := range []int{100, 400} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			pub, doc, state := benchStatePublisher(b, subs, 5, 0)
			if _, err := pub.Publish(doc); err != nil {
				b.Fatal(err)
			}
			pool := subs / 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%pool == 0 {
					b.StopTimer()
					if err := pub.ImportState(state); err != nil {
						b.Fatal(err)
					}
					if _, err := pub.Publish(doc); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				if err := pub.RevokeSubscription(fmt.Sprintf("pn-%d", i%pool)); err != nil {
					b.Fatal(err)
				}
				if _, err := pub.Publish(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPublishFullRebuild(b *testing.B) {
	for _, subs := range []int{100, 400} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			pub, doc, state := benchStatePublisher(b, subs, 5, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pub.ImportState(state); err != nil {
					b.Fatal(err)
				}
				// ImportState diffs and dirties nothing on an identical
				// table; the explicit reset keeps this a genuine full
				// re-solve every iteration.
				pub.ResetRekeyCache()
				if _, err := pub.Publish(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Grouped engine (§VIII-C): full-rebuild and churn cost vs grouping g ---
//
// Sharding a policy's rows into g groups cuts a full rebuild from N³ to
// ~N³/g² solve work, and a single leave from one configuration solve to one
// shard solve of (N/g)³. These benchmarks measure both regimes across g;
// g=1 (GroupSize 0) is the ungrouped baseline. The group-size cap is
// ceil(subs/g), so the dominant full-subs policy (attr0) shards into
// exactly g groups and the half-registered ones into ~g/2.

func benchGroupSize(subs, g int) int {
	if g <= 1 {
		return 0
	}
	return (subs + g - 1) / g
}

func BenchmarkPublishGroupedFullRebuild(b *testing.B) {
	const subs = 256
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("groups=%d", g), func(b *testing.B) {
			pub, doc, state := benchStatePublisher(b, subs, 5, benchGroupSize(subs, g))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pub.ImportState(state); err != nil {
					b.Fatal(err)
				}
				pub.ResetRekeyCache()
				if _, err := pub.Publish(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPublishGroupedSingleLeave(b *testing.B) {
	const subs = 256
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("groups=%d", g), func(b *testing.B) {
			pub, doc, state := benchStatePublisher(b, subs, 5, benchGroupSize(subs, g))
			if _, err := pub.Publish(doc); err != nil {
				b.Fatal(err)
			}
			pool := subs / 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%pool == 0 {
					b.StopTimer()
					if err := pub.ImportState(state); err != nil {
						b.Fatal(err)
					}
					if _, err := pub.Publish(doc); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				if err := pub.RevokeSubscription(fmt.Sprintf("pn-%d", i%pool)); err != nil {
					b.Fatal(err)
				}
				if _, err := pub.Publish(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Solve kernel: blocked elimination vs reference Gauss–Jordan ---
//
// The engine's null-space solves run on linalg's blocked panel elimination
// (echelon + per-sample back-substitution, delayed-reduction accumulators).
// These benchmarks race it against the reference RREF path on shard-shaped
// systems (n rows × n+1 columns, leading 1-column), the same shape
// core.solveShard and solveConfig assemble.

func benchShardSystem(b *testing.B, n int) *linalg.Matrix {
	b.Helper()
	rng := benchrand.New(benchrand.NewSource(int64(n)))
	m := linalg.NewMatrix(n, n+1)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		row[0] = ff64.One
		for j := 1; j <= n; j++ {
			row[j] = ff64.New(rng.Uint64())
		}
	}
	return m
}

func benchSolve(b *testing.B, n int, blocked bool) {
	src := benchShardSystem(b, n)
	work := linalg.NewMatrix(n, n+1)
	ws := linalg.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < n; r++ {
			copy(work.Row(r), src.Row(r))
		}
		var err error
		if blocked {
			_, err = work.RandomKernelVectorBlocked(ws)
		} else {
			_, err = work.RandomKernelVector()
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveReference512(b *testing.B) { benchSolve(b, 512, false) }
func BenchmarkSolveBlocked512(b *testing.B)   { benchSolve(b, 512, true) }
func BenchmarkSolveReference128(b *testing.B) { benchSolve(b, 128, false) }
func BenchmarkSolveBlocked128(b *testing.B)   { benchSolve(b, 128, true) }

// --- Registration path (ISSUE 3): OCBE envelopes and batch registration ---

// BenchmarkOCBEEnvelope measures one envelope composition over the paper's
// Jacobian at the paper curve parameters — the per-condition unit of work of
// oblivious registration. Before the ff128 fast path (PR 3) the EQ compose
// was ~34 ms and a full GE round at ell=20 ~1.1 s on the same hardware.
func BenchmarkOCBEEnvelope(b *testing.B) {
	jac, _ := benchParams(b)
	msg := make([]byte, 8)

	b.Run("eq-compose", func(b *testing.B) {
		x := big.NewInt(28)
		_, r, err := jac.CommitRandom(x)
		if err != nil {
			b.Fatal(err)
		}
		recv := ocbe.NewReceiver(jac, x, r)
		pred := ocbe.Predicate{Op: ocbe.EQ, X0: x}
		_, req, err := recv.Prepare(pred, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ocbe.Compose(jac, pred, 0, req, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ge-compose-ell=8", func(b *testing.B) {
		const ell = 8
		x := big.NewInt(37)
		_, r, err := jac.CommitRandom(x)
		if err != nil {
			b.Fatal(err)
		}
		recv := ocbe.NewReceiver(jac, x, r)
		pred := ocbe.Predicate{Op: ocbe.GE, X0: big.NewInt(10)}
		_, req, err := recv.Prepare(pred, ell)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ocbe.Compose(jac, pred, ell, req, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRegisterBatch measures end-to-end batched registration against a
// publisher on the paper curve: token verification, parallel envelope
// composition over the shared fixed-base tables, and the table-T commit.
func BenchmarkRegisterBatch(b *testing.B) {
	jac, _ := benchParams(b)
	idmgr, err := NewIdentityManager(jac)
	if err != nil {
		b.Fatal(err)
	}
	acp, err := NewPolicy("bench-reg", "dept = eng && level >= 10", "doc", "body")
	if err != nil {
		b.Fatal(err)
	}
	const ell = 8
	pub, err := NewPublisher(jac, idmgr.PublicKey(), []*Policy{acp}, Options{Ell: ell})
	if err != nil {
		b.Fatal(err)
	}
	// One subscriber batch (2 conditions), rebuilt per iteration outside the
	// timer so each RegisterBatch sees fresh nyms.
	mkBatch := func(i int) []*pubsub.RegistrationRequest {
		nym := fmt.Sprintf("bench-pn-%d", i)
		var reqs []*pubsub.RegistrationRequest
		for _, cond := range acp.Conds {
			val := "eng"
			if cond.Op != ocbe.EQ {
				val = "37"
			}
			tok, sec, err := idmgr.IssueString(nym, cond.Attr, val)
			if err != nil {
				b.Fatal(err)
			}
			recv := ocbe.NewReceiver(jac, sec.Value, sec.Blinding)
			pred := ocbe.Predicate{Op: cond.Op, X0: idtoken.EncodeValue(jac.Order(), cond.Value)}
			_, req, err := recv.Prepare(pred, ell)
			if err != nil {
				b.Fatal(err)
			}
			reqs = append(reqs, &pubsub.RegistrationRequest{Token: tok, CondID: cond.ID(), OCBE: req})
		}
		return reqs
	}
	batches := make([][]*pubsub.RegistrationRequest, b.N)
	for i := range batches {
		batches[i] = mkBatch(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := pub.RegisterBatch(batches[i])
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
	}
}
