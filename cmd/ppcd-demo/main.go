// Command ppcd-demo walks through the paper's three phases on the EHR
// scenario, printing the protocol internals at each step: identity token
// issuance (Pedersen commitments), oblivious CSS delivery (table T shape),
// and ACV-based broadcast (matrix dimensions, header sizes, key
// derivations).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"ppcd"
)

func main() {
	log.SetFlags(0)
	groupName := flag.String("group", "schnorr", "commitment group: schnorr (fast) or jacobian (paper)")
	flag.Parse()

	grp := ppcd.SchnorrGroup()
	if *groupName == "jacobian" {
		grp = ppcd.PaperCurve()
	}
	fmt.Printf("══ setup ══\ncommitment group: %s (order %d bits)\n", grp.Name(), grp.Order().BitLen())

	params, err := ppcd.Setup(grp, []byte("ppcd-demo"))
	check(err)
	idmgr, err := ppcd.NewIdentityManager(params)
	check(err)
	fmt.Println("IdMgr: Pedersen parameters ⟨G, g, h⟩ published; signing key generated")

	fmt.Println("\n══ phase 1: identity token issuance ══")
	tok, sec, err := idmgr.IssueString("pn-1492", "level", "60")
	check(err)
	fmt.Printf("token for pn-1492: tag=%q commitment=%x… sig=%x…\n", tok.Tag, tok.Commitment[:8], tok.Sig[:8])
	fmt.Printf("private opening kept by the Sub: x=%s (the level), r=%s…\n", sec.Value, sec.Blinding.String()[:12])

	fmt.Println("\n══ phase 2: registration (oblivious CSS delivery) ══")
	specs := []struct {
		id, cond string
		objs     []string
	}{
		{"acp1", "role = rec", []string{"ContactInfo"}},
		{"acp2", "role = cas", []string{"BillingInfo"}},
		{"acp3", "role = doc", []string{"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"}},
		{"acp4", "role = nur && level >= 59", []string{"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"}},
		{"acp5", "role = dat", []string{"ContactInfo", "LabRecords"}},
		{"acp6", "role = pha", []string{"BillingInfo", "Medication"}},
	}
	var acps []*ppcd.Policy
	for _, s := range specs {
		a, err := ppcd.NewPolicy(s.id, s.cond, "EHR.xml", s.objs...)
		check(err)
		acps = append(acps, a)
		fmt.Printf("  %s = %s\n", s.id, a)
	}
	pub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), acps, ppcd.Options{Ell: 8})
	check(err)
	fmt.Printf("publisher conditions (columns of table T): %d\n", len(pub.Conditions()))

	staff := []struct {
		nym   string
		attrs map[string]string
	}{
		{"pn-0012", map[string]string{"role": "doc"}},
		{"pn-1492", map[string]string{"role": "nur", "level": "60"}},
		{"pn-0829", map[string]string{"role": "nur", "level": "58"}},
	}
	subs := map[string]*ppcd.Subscriber{}
	for _, st := range staff {
		s, err := ppcd.NewSubscriber(st.nym)
		check(err)
		for tag, val := range st.attrs {
			tk, sc, err := idmgr.IssueString(st.nym, tag, val)
			check(err)
			check(s.AddToken(tk, sc))
		}
		n, err := s.RegisterAll(pub)
		check(err)
		fmt.Printf("  %s: ran OCBE for every matching condition; extracted %d CSS(s)\n", st.nym, n)
		fmt.Printf("      (the publisher recorded a CSS for each run and cannot tell which opened)\n")
		subs[st.nym] = s
	}

	fmt.Println("\n══ phase 3: document dissemination (ACV group key management) ══")
	doc, err := ppcd.NewDocument("EHR.xml",
		ppcd.Subdocument{Name: "ContactInfo", Content: []byte("<ContactInfo>…</ContactInfo>")},
		ppcd.Subdocument{Name: "BillingInfo", Content: []byte("<BillingInfo>…</BillingInfo>")},
		ppcd.Subdocument{Name: "Medication", Content: []byte("<Medication>…</Medication>")},
		ppcd.Subdocument{Name: "PhysicalExams", Content: []byte("<PhysicalExams>…</PhysicalExams>")},
		ppcd.Subdocument{Name: "LabRecords", Content: []byte("<LabRecords>…</LabRecords>")},
		ppcd.Subdocument{Name: "Plan", Content: []byte("<Plan>…</Plan>")},
	)
	check(err)
	b, err := pub.Publish(doc)
	check(err)
	fmt.Printf("broadcast: %d policy configurations, %d encrypted items\n", len(b.Configs), len(b.Items))
	for _, ci := range b.Configs {
		if ci.Header == nil {
			fmt.Printf("  config {%s}: no qualified subscriber → no header\n", ci.Key)
			continue
		}
		fmt.Printf("  config {%s}: N=%d, header %d bytes (X + nonces z₁…z_N)\n",
			ci.Key, ci.Header.N(), ci.Header.Size())
	}

	fmt.Println("\nkey derivation at the subscribers (local, no interaction):")
	for _, st := range staff {
		got, err := subs[st.nym].Decrypt(b)
		check(err)
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("  %s → %v\n", st.nym, names)
	}

	fmt.Println("\n══ rekey: revoke pn-0012, publish again ══")
	check(pub.RevokeSubscription("pn-0012"))
	b2, err := pub.Publish(doc)
	check(err)
	for _, nym := range []string{"pn-0012", "pn-1492"} {
		got, err := subs[nym].Decrypt(b2)
		check(err)
		fmt.Printf("  %s decrypts %d subdocuments (no message was sent to anyone)\n", nym, len(got))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
