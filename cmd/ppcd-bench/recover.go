package main

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"ppcd"
	"ppcd/internal/benchutil"
	"ppcd/internal/pubsub"
	"ppcd/internal/wire"
)

// recoverReport is the -recover JSON: segmented durable-state behaviour
// measured over one store directory.
//
// The O(churn) snapshot claim is the bytes ratio: after a small churn burst
// (-churn leavers) a snapshot rewrites only the dirty segments, so
// snapshot_bytes_written / full_snapshot_bytes_written collapses as rows
// grow. The recovery claims are the timed restarts: "cold" is the first
// restart after a clean shutdown (segments read, digest-checked, unsealed
// and decoded), "crash" additionally replays a WAL tail, and the warm sweep
// re-runs recovery under different parallel-decode worker counts.
type recoverReport struct {
	Rows       int `json:"rows"`
	Policies   int `json:"policies"`
	ShardSize  int `json:"shard_size"`
	Churn      int `json:"churn"`
	CPUs       int `json:"cpus"`
	GoMaxProcs int `json:"gomaxprocs"`

	// On-disk footprint of the sealed state (manifest + segments, WAL).
	SnapshotDiskBytes int64 `json:"snapshot_disk_bytes"`
	WALDiskBytes      int64 `json:"wal_disk_bytes"`

	// Snapshot write amplification: a settled full snapshot vs the snapshot
	// after -churn revocations and one rekeying publish.
	FullSnapshotBytesWritten int64   `json:"full_snapshot_bytes_written"`
	SnapshotBytesWritten     int64   `json:"snapshot_bytes_written"`
	DirtySegments            int     `json:"dirty_segments"`
	TotalSegments            int     `json:"total_segments"`
	ChurnWriteFraction       float64 `json:"churn_write_fraction"`

	// Pipelined group commit: concurrent writers issuing one-event commits;
	// the flusher coalesces their write+fsync.
	WALAppendWriters int     `json:"wal_append_writers"`
	WALAppendsPerSec float64 `json:"wal_appends_per_sec"`

	// Clean-shutdown restart, timed end to end (open + recover).
	ColdRecoveryNs    int64  `json:"cold_recovery_ns"`
	ColdReplayed      int    `json:"cold_wal_replayed"`
	ColdSolves        uint64 `json:"cold_post_restart_solves"`
	RecoveredSegments int    `json:"recovered_segments"`
	CatchupDeltaBytes int    `json:"catchup_delta_bytes"`
	CatchupSnapBytes  int    `json:"catchup_snapshot_bytes"`
	GenPreserved      bool   `json:"gen_preserved"`
	EpochResumed      bool   `json:"epoch_resumed"`

	// Crash restart (WAL tail replay).
	CrashRecoveryNs     int64  `json:"crash_recovery_ns"`
	CrashReplayed       int    `json:"crash_wal_replayed"`
	CrashSolves         uint64 `json:"crash_post_restart_solves"`
	CrashEpochMonotonic bool   `json:"crash_epoch_monotonic"`

	// Parallel-recovery worker sweep over the same directory (page cache
	// warm): open + recover per worker count.
	WarmRecoveryNs          int64            `json:"warm_recovery_ns"`
	WarmRecoveryNsByWorkers map[string]int64 `json:"warm_recovery_ns_by_workers"`
	WarmWorkerSpeedup       float64          `json:"warm_worker_speedup"`

	Note string `json:"note,omitempty"`
}

// runRecoverBench measures the segmented durable-state subsystem
// (internal/store): snapshot write amplification under churn, pipelined WAL
// commit throughput, and cold/crash/warm recovery times.
func runRecoverBench(rows, policies, shardSize, churn int) error {
	if rows < 16 || policies < 1 || shardSize < 2 {
		return fmt.Errorf("ppcd-bench: -recover needs rows>=16, policies>=1, shard-size>=2")
	}
	if churn < 1 || churn >= rows/2 {
		return fmt.Errorf("ppcd-bench: -recover needs 1 <= churn < rows/2")
	}
	params, err := ppcd.Setup(ppcd.SchnorrGroup(), []byte("ppcd-bench"))
	if err != nil {
		return err
	}
	idmgr, err := ppcd.NewIdentityManager(params)
	if err != nil {
		return err
	}
	acps, doc, state, err := benchutil.Workload(rows, policies, rows/2, 256)
	if err != nil {
		return err
	}
	newPub := func() (*ppcd.Publisher, error) {
		return ppcd.NewPublisher(params, idmgr.PublicKey(), acps, ppcd.Options{Ell: 8, GroupSize: shardSize})
	}

	dir, err := os.MkdirTemp("", "ppcd-recover")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		return err
	}

	rep := recoverReport{
		Rows: rows, Policies: policies, ShardSize: shardSize, Churn: churn,
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if rep.CPUs < 2 {
		rep.Note = "single-CPU host: the warm worker sweep cannot demonstrate parallel-recovery speedup here"
	}

	// Incarnation A: seed the table, settle the caches and group layout,
	// then measure a settled full snapshot.
	pubA, err := newPub()
	if err != nil {
		return err
	}
	stA, err := ppcd.OpenStore(dir, key)
	if err != nil {
		return err
	}
	if _, err := stA.Recover(pubA); err != nil {
		return err
	}
	pubA.SetJournal(stA)
	if err := pubA.ImportState(state); err != nil {
		return err
	}
	if _, err := pubA.Publish(doc); err != nil { // full solve storm, assigns groups
		return err
	}
	if _, err := pubA.Publish(doc); err != nil { // steady state
		return err
	}
	if err := stA.Snapshot(pubA); err != nil {
		return err
	}
	rep.FullSnapshotBytesWritten = stA.LastSnapshotStats().BytesWritten

	// Churn burst: -churn leavers, one rekeying publish. preRestart is the
	// broadcast a connected subscriber would hold across the restart.
	for i := 0; i < churn; i++ {
		if err := pubA.RevokeSubscription(fmt.Sprintf("pn-%d", i)); err != nil {
			return err
		}
	}
	preRestart, err := pubA.Publish(doc)
	if err != nil {
		return err
	}

	// Pipelined commit throughput: concurrent writers, one event per commit,
	// each waiting for durability before issuing the next — the flusher
	// coalesces the group. The events are journal-only (epoch re-stamps);
	// the quiet snapshot below compacts them away.
	const writers, perWriter = 4, 250
	ev := pubsub.StateEvent{Kind: pubsub.StateEventPublish, Doc: doc.Name, Epoch: pubA.Epoch()}
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tk, err := stA.Begin([]pubsub.StateEvent{ev}, nil)
				if err == nil {
					err = tk.Wait()
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	rep.WALAppendWriters = writers
	rep.WALAppendsPerSec = float64(writers*perWriter) / time.Since(start).Seconds()

	// The post-churn snapshot: only segments the churn dirtied get written.
	if err := stA.Snapshot(pubA); err != nil {
		return err
	}
	cs := stA.LastSnapshotStats()
	rep.SnapshotBytesWritten = cs.BytesWritten
	rep.DirtySegments = cs.DirtySegments
	rep.TotalSegments = cs.TotalSegments
	if rep.FullSnapshotBytesWritten > 0 {
		rep.ChurnWriteFraction = float64(cs.BytesWritten) / float64(rep.FullSnapshotBytesWritten)
	}
	if err := stA.Close(); err != nil {
		return err
	}
	rep.SnapshotDiskBytes = diskBytes(dir, func(n string) bool {
		return n == "manifest.ppcd" || (strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".ppcd"))
	})
	rep.WALDiskBytes = diskBytes(dir, func(n string) bool { return n == "wal.ppcd" })

	// Cold restart: open + recover timed together (the operator-visible
	// restart cost), then the zero-solve first publish and the delta a
	// reconnecting subscriber current at preRestart.Epoch receives.
	pubB, err := newPub()
	if err != nil {
		return err
	}
	start = time.Now()
	stB, err := ppcd.OpenStore(dir, key)
	if err != nil {
		return err
	}
	recB, err := stB.Recover(pubB)
	if err != nil {
		return err
	}
	rep.ColdRecoveryNs = time.Since(start).Nanoseconds()
	rep.ColdReplayed = recB.Replayed
	rep.RecoveredSegments = recB.Segments
	pubB.SetJournal(stB)

	before := pubB.Stats()
	postRestart, err := pubB.Publish(doc)
	if err != nil {
		return err
	}
	rep.ColdSolves = pubB.Stats().Solves - before.Solves
	rep.GenPreserved = postRestart.Gen == preRestart.Gen
	rep.EpochResumed = postRestart.Epoch == preRestart.Epoch+1
	d, err := ppcd.Diff(preRestart, postRestart)
	if err != nil {
		return fmt.Errorf("ppcd-bench: diff across restart: %w", err)
	}
	rep.CatchupDeltaBytes = len(wire.MarshalDeltaFrame(d))
	rep.CatchupSnapBytes = len(wire.MarshalSnapshotFrame(postRestart))

	// Crash: journal a revocation and a publish, then abandon the store
	// without a snapshot — the WAL tail is all that survives.
	if err := pubB.RevokeSubscription(fmt.Sprintf("pn-%d", churn)); err != nil {
		return err
	}
	crashed, err := pubB.Publish(doc)
	if err != nil {
		return err
	}
	if err := stB.Close(); err != nil {
		return err
	}

	pubC, err := newPub()
	if err != nil {
		return err
	}
	start = time.Now()
	stC, err := ppcd.OpenStore(dir, key)
	if err != nil {
		return err
	}
	recC, err := stC.Recover(pubC)
	if err != nil {
		return err
	}
	rep.CrashRecoveryNs = time.Since(start).Nanoseconds()
	rep.CrashReplayed = recC.Replayed
	pubC.SetJournal(stC)
	before = pubC.Stats()
	after, err := pubC.Publish(doc)
	if err != nil {
		return err
	}
	rep.CrashSolves = pubC.Stats().Solves - before.Solves
	rep.CrashEpochMonotonic = after.Epoch > crashed.Epoch
	if err := stC.Snapshot(pubC); err != nil { // compact so the sweep is pure segment decode
		return err
	}
	if err := stC.Close(); err != nil {
		return err
	}

	// Warm sweep: recovery of the same directory (page cache warm) under 1
	// and 4 parallel decode workers.
	rep.WarmRecoveryNsByWorkers = make(map[string]int64)
	for _, w := range []int{1, 4} {
		pubW, err := newPub()
		if err != nil {
			return err
		}
		start = time.Now()
		stW, err := ppcd.OpenStore(dir, key)
		if err != nil {
			return err
		}
		stW.SetRecoveryWorkers(w)
		if _, err := stW.Recover(pubW); err != nil {
			return err
		}
		ns := time.Since(start).Nanoseconds()
		rep.WarmRecoveryNsByWorkers[fmt.Sprintf("%d", w)] = ns
		rep.WarmRecoveryNs = ns
		if err := stW.Close(); err != nil {
			return err
		}
	}
	if w1, w4 := rep.WarmRecoveryNsByWorkers["1"], rep.WarmRecoveryNsByWorkers["4"]; w4 > 0 {
		rep.WarmWorkerSpeedup = float64(w1) / float64(w4)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// diskBytes sums the sizes of directory entries matching keep.
func diskBytes(dir string, keep func(string) bool) int64 {
	var total int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range ents {
		if !keep(e.Name()) {
			continue
		}
		if fi, err := os.Stat(filepath.Join(dir, e.Name())); err == nil {
			total += fi.Size()
		}
	}
	return total
}
