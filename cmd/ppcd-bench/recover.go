package main

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ppcd"
	"ppcd/internal/benchutil"
	"ppcd/internal/wire"
)

// recoverReport is the -recover JSON: durable-state recovery measured over
// two restart scenarios of the same store directory. "Warm" is a clean
// shutdown (final snapshot taken): recovery must restore the engine caches,
// so the first post-restart publish performs zero null-space solves and a
// subscriber current at the pre-restart epoch catches up with a delta.
// "Crash" abandons the store with unsnapshotted WAL tail events (a
// revocation and a publish): recovery replays them, the epoch counter stays
// monotonic, and the first publish re-solves exactly the membership the
// replayed events dirtied.
type recoverReport struct {
	Subs      int `json:"subs"`
	Policies  int `json:"policies"`
	Groups    int `json:"groups"`
	GroupSize int `json:"group_size"`

	// On-disk footprint of the sealed state.
	SnapshotDiskBytes int64 `json:"snapshot_disk_bytes"`
	WALDiskBytes      int64 `json:"wal_disk_bytes"`

	// Clean-shutdown restart.
	WarmRecoveryMs    float64 `json:"warm_recovery_ms"`
	WarmReplayed      int     `json:"warm_wal_replayed"`
	WarmSolves        uint64  `json:"warm_post_restart_solves"`
	CatchupDeltaBytes int     `json:"catchup_delta_bytes"`
	CatchupSnapBytes  int     `json:"catchup_snapshot_bytes"`
	GenPreserved      bool    `json:"gen_preserved"`
	EpochResumed      bool    `json:"epoch_resumed"`

	// Crash restart (WAL tail replay).
	CrashRecoveryMs     float64 `json:"crash_recovery_ms"`
	CrashReplayed       int     `json:"crash_wal_replayed"`
	CrashSolves         uint64  `json:"crash_post_restart_solves"`
	CrashEpochMonotonic bool    `json:"crash_epoch_monotonic"`
}

// runRecoverBench measures durable-state recovery (internal/store): it runs
// one publisher incarnation to a clean shutdown, restarts it warm, then
// crashes an incarnation with a WAL tail and restarts again, reporting
// recovery time, post-restart solve counts and the reconnect catch-up bytes.
func runRecoverBench(subs, policies, groups int) error {
	if subs < 4 || policies < 1 || groups < 1 {
		return fmt.Errorf("ppcd-bench: -recover needs subs>=4, policies>=1, groups>=1")
	}
	params, err := ppcd.Setup(ppcd.SchnorrGroup(), []byte("ppcd-bench"))
	if err != nil {
		return err
	}
	idmgr, err := ppcd.NewIdentityManager(params)
	if err != nil {
		return err
	}
	acps, doc, state, err := benchutil.Workload(subs, policies, subs/2, 1024)
	if err != nil {
		return err
	}
	groupSize := 0
	if groups > 1 {
		groupSize = (subs + groups - 1) / groups
	}
	newPub := func() (*ppcd.Publisher, error) {
		return ppcd.NewPublisher(params, idmgr.PublicKey(), acps, ppcd.Options{Ell: 8, GroupSize: groupSize})
	}

	dir, err := os.MkdirTemp("", "ppcd-recover")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		return err
	}

	rep := recoverReport{Subs: subs, Policies: policies, Groups: groups, GroupSize: groupSize}

	// Incarnation 1: seed the table, settle the caches, shut down cleanly.
	pubA, err := newPub()
	if err != nil {
		return err
	}
	stA, err := ppcd.OpenStore(dir, key)
	if err != nil {
		return err
	}
	if _, err := stA.Recover(pubA); err != nil {
		return err
	}
	pubA.SetJournal(stA)
	if err := pubA.ImportState(state); err != nil {
		return err
	}
	if _, err := pubA.Publish(doc); err != nil { // full solve, warms caches
		return err
	}
	preRestart, err := pubA.Publish(doc) // steady base a subscriber would hold
	if err != nil {
		return err
	}
	if err := stA.Snapshot(pubA); err != nil { // clean shutdown
		return err
	}
	if err := stA.Close(); err != nil {
		return err
	}
	if fi, err := os.Stat(filepath.Join(dir, "snapshot.ppcd")); err == nil {
		rep.SnapshotDiskBytes = fi.Size()
	}

	// Warm restart: open + recover timed together (the operator-visible
	// restart cost), then the zero-solve first publish and the delta a
	// reconnecting subscriber current at preRestart.Epoch receives.
	pubB, err := newPub()
	if err != nil {
		return err
	}
	start := time.Now()
	stB, err := ppcd.OpenStore(dir, key)
	if err != nil {
		return err
	}
	recB, err := stB.Recover(pubB)
	if err != nil {
		return err
	}
	rep.WarmRecoveryMs = float64(time.Since(start).Microseconds()) / 1e3
	rep.WarmReplayed = recB.Replayed
	pubB.SetJournal(stB)

	before := pubB.Stats()
	postRestart, err := pubB.Publish(doc)
	if err != nil {
		return err
	}
	rep.WarmSolves = pubB.Stats().Solves - before.Solves
	rep.GenPreserved = postRestart.Gen == preRestart.Gen
	rep.EpochResumed = postRestart.Epoch == preRestart.Epoch+1
	d, err := ppcd.Diff(preRestart, postRestart)
	if err != nil {
		return fmt.Errorf("ppcd-bench: diff across restart: %w", err)
	}
	rep.CatchupDeltaBytes = len(wire.MarshalDeltaFrame(d))
	rep.CatchupSnapBytes = len(wire.MarshalSnapshotFrame(postRestart))

	// Crash: journal a revocation and a publish, then abandon the store
	// without a snapshot — the WAL tail is all that survives.
	if err := pubB.RevokeSubscription("pn-0"); err != nil {
		return err
	}
	crashed, err := pubB.Publish(doc)
	if err != nil {
		return err
	}
	if err := stB.Close(); err != nil {
		return err
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.ppcd")); err == nil {
		rep.WALDiskBytes = fi.Size()
	}

	pubC, err := newPub()
	if err != nil {
		return err
	}
	start = time.Now()
	stC, err := ppcd.OpenStore(dir, key)
	if err != nil {
		return err
	}
	recC, err := stC.Recover(pubC)
	if err != nil {
		return err
	}
	rep.CrashRecoveryMs = float64(time.Since(start).Microseconds()) / 1e3
	rep.CrashReplayed = recC.Replayed
	pubC.SetJournal(stC)
	before = pubC.Stats()
	after, err := pubC.Publish(doc)
	if err != nil {
		return err
	}
	rep.CrashSolves = pubC.Stats().Solves - before.Solves
	rep.CrashEpochMonotonic = after.Epoch > crashed.Epoch
	if err := stC.Close(); err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
