package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ppcd"
	"ppcd/internal/benchutil"
)

// fanoutPoint is one K-downstream measurement of the relay tier: K streaming
// consumers hang off the last relay of the chain while the origin churns one
// revocation per publish. Origin egress is the tier's headline number — it
// counts stream-frame bytes the origin itself pushed (to its single relay
// child), so it must stay flat as K grows.
type fanoutPoint struct {
	Conns       int `json:"conns"`
	FramesTotal int64 `json:"frames_total"`
	// FramesPerSec: data frames delivered across all consumers per second of
	// the churn window (catch-up snapshots excluded).
	FramesPerSec float64 `json:"frames_per_sec"`
	// ConsumerBytes: aggregate bytes read off the wire by all K consumers.
	ConsumerBytes int64 `json:"consumer_bytes_total"`
	// EdgeEgressBytes: bytes the last relay pushed downstream — the tier's
	// aggregate egress, which scales with K so the origin's doesn't have to.
	EdgeEgressBytes int64 `json:"edge_egress_bytes"`
	// LagP50Ns / LagP99Ns: origin-publish-to-consumer-receive delivery lag
	// through the whole relay chain.
	LagP50Ns            int64   `json:"lag_p50_ns"`
	LagP99Ns            int64   `json:"lag_p99_ns"`
	OriginEgressFrames  int64   `json:"origin_egress_frames"`
	OriginEgressBytes   int64   `json:"origin_egress_bytes"`
	OriginBytesPerEpoch float64 `json:"origin_bytes_per_epoch"`
	ElapsedNs           int64   `json:"elapsed_ns"`
}

// fanoutReport is the JSON document emitted by -fanout. OriginFlatRatio is
// the last point's origin bytes-per-epoch over the first's: a relay tier
// doing its job keeps it ~1.0 while the downstream population grows 10x.
type fanoutReport struct {
	Relays          int           `json:"relays"`
	Publishes       int           `json:"publishes"`
	GoMaxProcs      int           `json:"gomaxprocs"`
	Points          []fanoutPoint `json:"points"`
	OriginFlatRatio float64       `json:"origin_flat_ratio"`
}

type fanoutSample struct {
	epoch uint64
	at    time.Time
}

type fanoutConsumerResult struct {
	frames  int64
	bytes   int64
	samples []fanoutSample
	err     error
}

// runFanoutBench measures the relay fan-out tier end to end over localhost
// TCP: origin publisher -> chain of nRelays relays -> K streaming consumers
// on the last relay, for each K in connsSpec ("100,1000"). Heartbeats are
// disabled on every hop so the egress counters account for data frames
// exactly.
func runFanoutBench(connsSpec string, nRelays, publishes int, out io.Writer) (*fanoutReport, error) {
	ks, err := parseFanoutConns(connsSpec)
	if err != nil {
		return nil, err
	}
	if nRelays < 1 || publishes < 1 {
		return nil, fmt.Errorf("ppcd-bench: -fanout needs relays>=1, fanout-publishes>=1")
	}

	// The table only has to feed the churn: first half of the pseudonyms is
	// the revocation pool, one revocation per publish, pool refreshed per
	// point by re-importing the pristine state.
	subs := 2*publishes + 8
	params, err := ppcd.Setup(ppcd.SchnorrGroup(), []byte("ppcd-bench"))
	if err != nil {
		return nil, err
	}
	idmgr, err := ppcd.NewIdentityManager(params)
	if err != nil {
		return nil, err
	}
	acps, doc, state, err := benchutil.Workload(subs, 2, subs/2, 512)
	if err != nil {
		return nil, err
	}
	pub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), acps, ppcd.Options{Ell: 8})
	if err != nil {
		return nil, err
	}
	srv, err := ppcd.NewServer(pub)
	if err != nil {
		return nil, err
	}
	srv.SetHeartbeatInterval(0)
	originAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	edgeAddr := originAddr
	var relays []*ppcd.Relay
	defer func() {
		for i := len(relays) - 1; i >= 0; i-- {
			relays[i].Close()
		}
	}()
	for i := 0; i < nRelays; i++ {
		r, err := ppcd.NewRelay(edgeAddr, params, &ppcd.RelayOptions{
			Heartbeat:      -1, // disabled: exact frame accounting
			ReconnectDelay: 200 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		addr, err := r.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		relays = append(relays, r)
		edgeAddr = addr
	}
	edge := relays[len(relays)-1]

	rep := &fanoutReport{Relays: nRelays, Publishes: publishes, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, k := range ks {
		pt, err := runFanoutPoint(pub, srv, edge, edgeAddr, params, doc, state, k, publishes)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, *pt)
	}
	if n := len(rep.Points); n > 0 && rep.Points[0].OriginBytesPerEpoch > 0 {
		rep.OriginFlatRatio = rep.Points[n-1].OriginBytesPerEpoch / rep.Points[0].OriginBytesPerEpoch
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

func runFanoutPoint(pub *ppcd.Publisher, srv *ppcd.Server, edge *ppcd.Relay, edgeAddr string,
	params *ppcd.CommitmentParams, doc *ppcd.Document, state []byte, k, publishes int) (*fanoutPoint, error) {
	// Fresh revocation pool, settled through the whole chain before any
	// consumer connects, so every catch-up is one snapshot at this epoch.
	if err := pub.ImportState(state); err != nil {
		return nil, err
	}
	seed, err := pub.Publish(doc)
	if err != nil {
		return nil, err
	}
	if err := srv.PublishBroadcast(seed); err != nil {
		return nil, err
	}
	if err := waitRelayEpoch(edge, seed.Epoch, 30*time.Second); err != nil {
		return nil, err
	}

	var final atomic.Uint64
	ready := make(chan error, k)
	results := make(chan fanoutConsumerResult, k)
	for i := 0; i < k; i++ {
		go fanoutConsumer(edgeAddr, params, doc.Name, &final, ready, results)
	}
	for i := 0; i < k; i++ {
		if err := <-ready; err != nil {
			return nil, fmt.Errorf("ppcd-bench: fanout consumer: %w", err)
		}
	}
	if got := edge.Streams(); got < k {
		return nil, fmt.Errorf("ppcd-bench: edge holds %d streams, want %d", got, k)
	}

	originFrames0, originBytes0 := srv.Egress()
	_, edgeBytes0 := edge.Egress()
	publishTimes := make(map[uint64]time.Time, publishes)
	t0 := time.Now()
	for p := 0; p < publishes; p++ {
		if err := pub.RevokeSubscription(fmt.Sprintf("pn-%d", p)); err != nil {
			return nil, err
		}
		b, err := pub.Publish(doc)
		if err != nil {
			return nil, err
		}
		if p == publishes-1 {
			final.Store(b.Epoch) // consumers stop once they see this epoch
		}
		publishTimes[b.Epoch] = time.Now()
		if err := srv.PublishBroadcast(b); err != nil {
			return nil, err
		}
		// Open-loop pacing: epochs keep arriving while consumers drain, the
		// realistic regime for a churn stream.
		time.Sleep(20 * time.Millisecond)
	}

	pt := &fanoutPoint{Conns: k}
	var lags []time.Duration
	for i := 0; i < k; i++ {
		res := <-results
		if res.err != nil {
			return nil, fmt.Errorf("ppcd-bench: fanout consumer: %w", res.err)
		}
		pt.FramesTotal += res.frames
		pt.ConsumerBytes += res.bytes
		for _, s := range res.samples {
			if t, ok := publishTimes[s.epoch]; ok {
				lags = append(lags, s.at.Sub(t))
			}
		}
	}
	elapsed := time.Since(t0)

	originFrames1, originBytes1 := srv.Egress()
	_, edgeBytes1 := edge.Egress()
	pt.OriginEgressFrames = originFrames1 - originFrames0
	pt.OriginEgressBytes = originBytes1 - originBytes0
	pt.OriginBytesPerEpoch = float64(pt.OriginEgressBytes) / float64(publishes)
	pt.EdgeEgressBytes = edgeBytes1 - edgeBytes0
	pt.ElapsedNs = elapsed.Nanoseconds()
	pt.FramesPerSec = float64(pt.FramesTotal) / elapsed.Seconds()
	if len(lags) > 0 {
		sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
		pt.LagP50Ns = lags[len(lags)/2].Nanoseconds()
		pt.LagP99Ns = lags[len(lags)*99/100].Nanoseconds()
	}
	return pt, nil
}

// fanoutConsumer is one downstream subscriber: subscribe from scratch,
// treat the first data frame (the catch-up snapshot) as the ready signal,
// then record a receive timestamp per churn frame until the final epoch
// lands. The request/response client is closed right after Subscribe — the
// stream is an independent connection — halving the bench's fd footprint.
func fanoutConsumer(addr string, params *ppcd.CommitmentParams, docName string,
	final *atomic.Uint64, ready chan<- error, results chan<- fanoutConsumerResult) {
	var res fanoutConsumerResult
	sentReady := false
	fail := func(err error) {
		res.err = err
		if !sentReady {
			ready <- err
		}
		results <- res
	}
	client, err := ppcd.Dial(addr, params)
	if err != nil {
		fail(err)
		return
	}
	st, err := client.Subscribe(docName, 0, 0)
	client.Close()
	if err != nil {
		fail(err)
		return
	}
	defer st.Close()

	var maxEpoch, baseBytes int64
	first := true
	for {
		if err := st.SetReadDeadline(time.Now().Add(60 * time.Second)); err != nil {
			fail(err)
			return
		}
		f, err := st.Next()
		if err != nil {
			fail(err)
			return
		}
		if f.Type == ppcd.FrameHeartbeat {
			continue
		}
		now := time.Now()
		if first {
			first = false
			baseBytes = st.BytesRead()
			sentReady = true
			ready <- nil
		} else {
			res.frames++
			res.samples = append(res.samples, fanoutSample{epoch: f.Epoch, at: now})
		}
		if int64(f.Epoch) > maxEpoch {
			maxEpoch = int64(f.Epoch)
		}
		if t := final.Load(); t != 0 && maxEpoch >= int64(t) {
			res.bytes = st.BytesRead() - baseBytes
			results <- res
			return
		}
	}
}

func waitRelayEpoch(r *ppcd.Relay, epoch uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for r.LastEpoch() < epoch {
		if time.Now().After(deadline) {
			return fmt.Errorf("ppcd-bench: relay stuck at epoch %d, want %d", r.LastEpoch(), epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

func parseFanoutConns(spec string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("ppcd-bench: bad -fanout-conns entry %q", part)
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("ppcd-bench: -fanout-conns is empty")
	}
	return ks, nil
}
