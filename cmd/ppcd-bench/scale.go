package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"ppcd"
	"ppcd/internal/benchutil"
	"ppcd/internal/core"
	"ppcd/internal/pubsub"
	"ppcd/internal/wire"
)

// scaleReport is the JSON document emitted by -scale and committed as
// BENCH_SCALE.json: the million-row regime of the ROADMAP — columnar table
// build, full solve storm, open-loop churn replay, dissemination bytes and
// worker scaling, with the environment recorded so numbers are comparable
// across machines.
type scaleReport struct {
	Rows      int `json:"rows"`
	Policies  int `json:"policies"`
	ShardSize int `json:"shard_size"`
	// TotalRows is the sum of qualified rows across policies (the partial
	// pool qualifies for one policy only); Shards the resulting shard count.
	TotalRows int `json:"total_rows"`
	Shards    int `json:"shards"`
	GoMaxProcs int `json:"gomaxprocs"`

	// Build: injecting the synthetic table through the state-import path.
	BuildNs        int64   `json:"build_ns"`
	BuildRowsPerSec float64 `json:"build_rows_per_sec"`

	// Table memory: the columnar registry's estimate vs the measured live
	// heap of the same table as nested maps (the pre-columnar layout).
	TableBytes          int64   `json:"table_bytes"`
	BytesPerSubscriber  float64 `json:"bytes_per_subscriber"`
	MapsTableBytes      int64   `json:"maps_table_bytes"`
	MapsBytesPerSub     float64 `json:"maps_bytes_per_subscriber"`
	ColumnarShrink      float64 `json:"columnar_shrink_factor"`

	// First publish: every shard solved once (the cold solve storm).
	FirstPublishNs     int64   `json:"first_publish_ns"`
	Solves             uint64  `json:"solves"`
	SolvesPerSec       float64 `json:"solves_per_sec"`
	SolvedRowsPerSec   float64 `json:"solved_rows_per_sec"`

	// Churn replay: batches of leave/join events applied between publishes
	// (open loop: the schedule does not wait for the publisher).
	Churn struct {
		Events           int     `json:"events"`
		Publishes        int     `json:"publishes"`
		PublishP50Ns     int64   `json:"publish_p50_ns"`
		PublishP99Ns     int64   `json:"publish_p99_ns"`
		PublishMaxNs     int64   `json:"publish_max_ns"`
		DeltaBytesAvg    int64   `json:"delta_bytes_avg"`
		SnapshotBytes    int     `json:"snapshot_bytes"`
		DeltaRatio       float64 `json:"delta_ratio"`
		SolvesPerPublish float64 `json:"solves_per_publish"`
	} `json:"churn"`

	// Workers: the same full-rebuild storm under different scheduler caps,
	// on a capped-size table (100k) so the sweep stays tractable. Each point
	// is the best of several runs; Speedup is against the 1-worker point,
	// Ideal is min(workers, GOMAXPROCS) — on a single-CPU runner every cap
	// is honestly reported as ideal 1 — and Efficiency = Speedup / Ideal,
	// clamped to 1.0 (a super-ideal reading is timing noise, not physics).
	SweepRows int `json:"sweep_rows"`
	Workers   []workerPoint `json:"workers"`

	RSSBytes int64 `json:"rss_bytes"`

	Stats struct {
		Rekeys    uint64 `json:"rekeys"`
		Rebuilds  uint64 `json:"rebuilds"`
		CacheHits uint64 `json:"cache_hits"`
		Solves    uint64 `json:"solves"`
	} `json:"engine_stats"`
}

type workerPoint struct {
	Workers    int     `json:"workers"`
	RebuildNs  int64   `json:"full_rebuild_ns"`
	Speedup    float64 `json:"speedup"`
	Ideal      float64 `json:"ideal"`
	Efficiency float64 `json:"efficiency"`
}

// runScaleBench drives the scale regime and prints the JSON report. The
// table is injected through the public import path (no OCBE crypto), sharded
// into groups of shardSize rows, solved cold, then churned.
func runScaleBench(rows, policies, shardSize, churnPublishes int, sweep bool, out io.Writer) (*scaleReport, error) {
	if rows < 100 || policies < 1 || shardSize < 2 || churnPublishes < 1 {
		return nil, fmt.Errorf("ppcd-bench: -scale needs subs>=100, policies>=1, shard-size>=2, churn-publishes>=1")
	}
	rep := &scaleReport{Rows: rows, Policies: policies, ShardSize: shardSize, GoMaxProcs: runtime.GOMAXPROCS(0)}

	params, err := ppcd.Setup(ppcd.SchnorrGroup(), []byte("ppcd-bench"))
	if err != nil {
		return nil, err
	}
	idmgr, err := ppcd.NewIdentityManager(params)
	if err != nil {
		return nil, err
	}
	// Half the pseudonyms hold only attr0 (single-policy members), the rest
	// qualify everywhere — so churn touches a mix of light and heavy rows.
	partial := rows / 2
	acps, doc, state, err := benchutil.Workload(rows, policies, partial, 256)
	if err != nil {
		return nil, err
	}
	rep.TotalRows = rows + (policies-1)*(rows-partial)
	for p := 0; p < policies; p++ {
		n := rows
		if p > 0 {
			n = rows - partial
		}
		rep.Shards += (n + shardSize - 1) / shardSize
	}

	pub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), acps, ppcd.Options{Ell: 8, GroupSize: shardSize})
	if err != nil {
		return nil, err
	}

	// Build: columnar table construction through the import path.
	start := time.Now()
	if err := pub.ImportState(state); err != nil {
		return nil, err
	}
	rep.BuildNs = time.Since(start).Nanoseconds()
	rep.BuildRowsPerSec = float64(rows) / time.Since(start).Seconds()

	subs, tableBytes := pub.TableMemory()
	if subs != rows {
		return nil, fmt.Errorf("ppcd-bench: imported %d rows, want %d", subs, rows)
	}
	rep.TableBytes = tableBytes
	rep.BytesPerSubscriber = float64(tableBytes) / float64(rows)

	// The pre-columnar layout, measured: live heap held by the same table as
	// nested maps (parse the import JSON again, GC away the parsing garbage,
	// diff HeapAlloc).
	mapsBytes, err := measureMapsTable(state)
	if err != nil {
		return nil, err
	}
	rep.MapsTableBytes = mapsBytes
	rep.MapsBytesPerSub = float64(mapsBytes) / float64(rows)
	if tableBytes > 0 {
		rep.ColumnarShrink = float64(mapsBytes) / float64(tableBytes)
	}

	// Cold storm: the first publish solves every shard of every policy.
	s0 := pub.Stats()
	start = time.Now()
	prev, err := pub.Publish(doc)
	if err != nil {
		return nil, err
	}
	cold := time.Since(start)
	s1 := pub.Stats()
	rep.FirstPublishNs = cold.Nanoseconds()
	rep.Solves = s1.Solves - s0.Solves
	rep.SolvesPerSec = float64(rep.Solves) / cold.Seconds()
	rep.SolvedRowsPerSec = float64(rep.TotalRows) / cold.Seconds()

	// Churn replay: each round applies a fixed batch of events — leaves from
	// the partial pool, plus returning joins so the table does not drain —
	// then publishes. The batch size does not adapt to publish latency
	// (open loop).
	const eventsPerPublish = 8
	lat := make([]int64, 0, churnPublishes)
	var deltaTotal int64
	evIdx := 0
	for r := 0; r < churnPublishes; r++ {
		for e := 0; e < eventsPerPublish; e++ {
			i := evIdx % partial
			evIdx++
			if evIdx%3 == 0 {
				// A returning subscriber: re-register a previously revoked
				// row through the replication-event path (no OCBE).
				nym := fmt.Sprintf("pn-%d", i)
				if err := pub.ApplyStateEvent(pubsub.StateEvent{
					Kind:  pubsub.StateEventRegister,
					Nym:   nym,
					Cells: map[string]core.CSS{"attr0 >= 1": core.CSS(uint64(i)*2654435761 + 1)},
				}); err != nil {
					return nil, err
				}
				continue
			}
			if err := pub.RevokeSubscription(fmt.Sprintf("pn-%d", i)); err != nil {
				// Already revoked by an earlier wrap of the pool: skip.
				continue
			}
		}
		start = time.Now()
		b, err := pub.Publish(doc)
		if err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(start).Nanoseconds())
		d, err := ppcd.Diff(prev, b)
		if err != nil {
			return nil, err
		}
		deltaTotal += int64(len(wire.MarshalDeltaFrame(d)))
		prev = b
	}
	s2 := pub.Stats()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.Churn.Events = evIdx
	rep.Churn.Publishes = churnPublishes
	rep.Churn.PublishP50Ns = lat[len(lat)/2]
	rep.Churn.PublishP99Ns = lat[(len(lat)*99+99)/100-1]
	rep.Churn.PublishMaxNs = lat[len(lat)-1]
	rep.Churn.DeltaBytesAvg = deltaTotal / int64(churnPublishes)
	rep.Churn.SnapshotBytes = len(wire.MarshalSnapshotFrame(prev))
	rep.Churn.DeltaRatio = float64(rep.Churn.DeltaBytesAvg) / float64(rep.Churn.SnapshotBytes)
	rep.Churn.SolvesPerPublish = float64(s2.Solves-s1.Solves) / float64(churnPublishes)

	// Worker sweep: the same cold storm under different scheduler caps, on a
	// table capped at 100k rows.
	if sweep {
		sweepRows := rows
		if sweepRows > 100_000 {
			sweepRows = 100_000
		}
		rep.SweepRows = sweepRows
		sAcps, sDoc, sState, err := benchutil.Workload(sweepRows, policies, sweepRows/2, 256)
		if err != nil {
			return nil, err
		}
		// Best-of-reps damps the noise of single-shot wall timing; without it
		// a lucky 8-worker run on a 1-CPU box reads as efficiency > 1.
		const sweepReps = 2
		var base int64
		for _, w := range []int{1, 2, 4, 8} {
			var best int64
			for r := 0; r < sweepReps; r++ {
				sPub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), sAcps, ppcd.Options{Ell: 8, GroupSize: shardSize, Workers: w})
				if err != nil {
					return nil, err
				}
				if err := sPub.ImportState(sState); err != nil {
					return nil, err
				}
				start := time.Now()
				if _, err := sPub.Publish(sDoc); err != nil {
					return nil, err
				}
				if ns := time.Since(start).Nanoseconds(); r == 0 || ns < best {
					best = ns
				}
			}
			if w == 1 {
				base = best
			}
			ideal := float64(w)
			if g := float64(runtime.GOMAXPROCS(0)); ideal > g {
				ideal = g
			}
			speedup := float64(base) / float64(best)
			eff := speedup / ideal
			if eff > 1 {
				eff = 1
			}
			rep.Workers = append(rep.Workers, workerPoint{
				Workers: w, RebuildNs: best, Speedup: speedup, Ideal: ideal, Efficiency: eff,
			})
		}
	}

	rep.RSSBytes = readRSS()
	st := pub.Stats()
	rep.Stats.Rekeys, rep.Stats.Rebuilds, rep.Stats.CacheHits, rep.Stats.Solves =
		st.Rekeys, st.Rebuilds, st.CacheHits, st.Solves

	if out != nil {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// measureMapsTable parses the v1 state JSON into the pre-columnar
// map-of-maps layout and returns the live heap it retains once parsing
// garbage is collected.
func measureMapsTable(state []byte) (int64, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	var st struct {
		Table map[string]map[string]uint64 `json:"table"`
	}
	if err := json.Unmarshal(state, &st); err != nil {
		return 0, err
	}
	tbl := make(map[string]map[string]core.CSS, len(st.Table))
	for nym, row := range st.Table {
		cells := make(map[string]core.CSS, len(row))
		for cond, v := range row {
			cells[cond] = core.CSS(v)
		}
		tbl[nym] = cells
	}
	st.Table = nil
	runtime.GC()
	runtime.ReadMemStats(&m1)
	bytes := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	runtime.KeepAlive(tbl)
	return bytes, nil
}

// readRSS returns the process resident set from /proc/self/status (0 when
// unavailable).
func readRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
