package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestScaleReportShape runs the scale regime at smoke size and validates the
// BENCH_SCALE.json schema: every committed field present, the structural
// invariants (shard counts, latency ordering, positive throughputs) holding.
// CI runs this under the race detector; the committed BENCH_SCALE.json is the
// same report at a million rows.
func TestScaleReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke is not -short")
	}
	var buf bytes.Buffer
	rep, err := runScaleBench(2000, 2, 64, 5, true, &buf)
	if err != nil {
		t.Fatal(err)
	}

	if rep.TotalRows != 2000+1000 {
		t.Errorf("TotalRows = %d, want 3000", rep.TotalRows)
	}
	wantShards := (2000+63)/64 + (1000+63)/64
	if rep.Shards != wantShards {
		t.Errorf("Shards = %d, want %d", rep.Shards, wantShards)
	}
	if rep.Solves == 0 || uint64(rep.Shards) != rep.Solves {
		t.Errorf("cold storm solved %d shards, want %d", rep.Solves, rep.Shards)
	}
	if rep.BuildNs <= 0 || rep.FirstPublishNs <= 0 || rep.SolvesPerSec <= 0 {
		t.Errorf("non-positive timings: build %d, first publish %d, solves/s %f",
			rep.BuildNs, rep.FirstPublishNs, rep.SolvesPerSec)
	}
	if rep.TableBytes <= 0 || rep.BytesPerSubscriber <= 0 {
		t.Errorf("table memory not reported: %d bytes", rep.TableBytes)
	}
	if rep.Churn.Publishes != 5 || rep.Churn.Events == 0 {
		t.Errorf("churn replay: %d publishes, %d events", rep.Churn.Publishes, rep.Churn.Events)
	}
	if rep.Churn.PublishP50Ns <= 0 || rep.Churn.PublishP99Ns < rep.Churn.PublishP50Ns ||
		rep.Churn.PublishMaxNs < rep.Churn.PublishP99Ns {
		t.Errorf("latency quantiles out of order: p50 %d, p99 %d, max %d",
			rep.Churn.PublishP50Ns, rep.Churn.PublishP99Ns, rep.Churn.PublishMaxNs)
	}
	if rep.Churn.DeltaBytesAvg <= 0 || rep.Churn.SnapshotBytes <= 0 ||
		rep.Churn.DeltaRatio <= 0 || rep.Churn.DeltaRatio >= 1 {
		t.Errorf("dissemination bytes: delta %d, snapshot %d, ratio %f",
			rep.Churn.DeltaBytesAvg, rep.Churn.SnapshotBytes, rep.Churn.DeltaRatio)
	}
	if len(rep.Workers) != 4 {
		t.Fatalf("worker sweep has %d points, want 4", len(rep.Workers))
	}
	for _, w := range rep.Workers {
		if w.RebuildNs <= 0 || w.Ideal < 1 || w.Speedup <= 0 {
			t.Errorf("worker point %+v", w)
		}
		if w.Efficiency <= 0 || w.Efficiency > 1 {
			t.Errorf("efficiency %f not in (0, 1] for %d workers", w.Efficiency, w.Workers)
		}
	}
	if rep.RSSBytes <= 0 {
		t.Errorf("RSS not read: %d", rep.RSSBytes)
	}

	// The emitted JSON decodes back with the same required keys — the schema
	// contract for the committed BENCH_SCALE.json.
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"rows", "policies", "shard_size", "total_rows", "shards", "gomaxprocs",
		"build_ns", "table_bytes", "bytes_per_subscriber", "maps_bytes_per_subscriber",
		"first_publish_ns", "solves_per_sec", "churn", "workers", "rss_bytes", "engine_stats",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing key %q", key)
		}
	}
}
