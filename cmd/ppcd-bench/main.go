// Command ppcd-bench regenerates every table and figure of the paper's
// evaluation section (§VII) plus the DESIGN.md ablations, printing the same
// rows/series the paper reports.
//
// Usage:
//
//	ppcd-bench -all                 # everything (slow: full sweeps)
//	ppcd-bench -fig 2 [-rounds 3]   # GE-OCBE step times vs ℓ
//	ppcd-bench -table 2             # EQ-OCBE step times
//	ppcd-bench -fig 3|4|5           # ACV gen / key derive / ACV size vs N
//	ppcd-bench -fig 6               # vs conditions per policy
//	ppcd-bench -ablation            # ACV vs marker vs direct vs LKH
//	ppcd-bench -group schnorr       # run OCBE figures over the Schnorr group
//	ppcd-bench -quick               # reduced sweeps for smoke testing
//	ppcd-bench -publish -subs 400   # steady-state vs churn publish timings (JSON)
//	ppcd-bench -publish -groups 4   # same, sharded into 4 groups/policy (§VIII-C)
//	ppcd-bench -publish -stream     # plus a TCP streaming smoke: delta vs snapshot bytes on the wire
//	ppcd-bench -register -subs 50 -conds 4   # oblivious registration timings (JSON)
//	ppcd-bench -scale -subs 1000000 -policies 2   # million-row regime: build, solve storm, churn replay (JSON)
//	ppcd-bench -fanout -fanout-conns 100,1000 -relays 1   # relay tier: K downstream streams, origin egress flatness (JSON)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"ppcd"
	"ppcd/internal/benchutil"
	"ppcd/internal/experiments"
	"ppcd/internal/g2"
	"ppcd/internal/group"
	"ppcd/internal/idtoken"
	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/pubsub"
	"ppcd/internal/schnorr"
	"ppcd/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppcd-bench: ")

	var (
		fig       = flag.Int("fig", 0, "figure to regenerate (2-6)")
		table     = flag.Int("table", 0, "table to regenerate (2)")
		all       = flag.Bool("all", false, "regenerate everything")
		ablation  = flag.Bool("ablation", false, "run GKM ablation comparison")
		rounds    = flag.Int("rounds", 3, "OCBE protocol rounds per point (paper: 50)")
		groupName = flag.String("group", "jacobian", "commitment group for OCBE figures: jacobian (paper) or schnorr")
		quick     = flag.Bool("quick", false, "reduced parameter sweeps")
		publish   = flag.Bool("publish", false, "measure steady-state vs churn vs full-rebuild publish, emit JSON")
		stream    = flag.Bool("stream", false, "-publish: also run a TCP streaming smoke (publisher + 8 streaming subscribers under churn) and report per-subscriber bytes on wire")
		subs      = flag.Int("subs", 200, "-publish/-register: registered pseudonyms")
		policies  = flag.Int("policies", 5, "-publish: single-condition policies / configurations")
		pubRounds = flag.Int("publish-rounds", 10, "-publish: publishes measured per regime")
		groups    = flag.Int("groups", 1, "-publish: §VIII-C grouping degree of the largest policy (1 = ungrouped baseline; half-filled policies shard into ~groups/2 groups)")
		register  = flag.Bool("register", false, "measure the oblivious registration path (token verify, envelope compose, batch register), emit JSON")
		conds     = flag.Int("conds", 4, "-register: conditions per subscriber (alternating EQ and GE)")
		ell       = flag.Int("ell", 8, "-register: bit-length bound for inequality OCBE")
		recover   = flag.Bool("recover", false, "measure segmented durable-state behaviour: O(churn) snapshot bytes, pipelined WAL commit rate, cold/crash/warm recovery; emit JSON")
		rows      = flag.Int("rows", 0, "-recover: table rows (0 = use -subs)")
		churn     = flag.Int("churn", 8, "-recover: leavers revoked before the post-churn snapshot")
		scale     = flag.Bool("scale", false, "measure the million-row regime: columnar build, cold solve storm, open-loop churn replay, worker sweep; emit JSON (use -subs for rows)")
		fanout    = flag.Bool("fanout", false, "measure the relay fan-out tier: origin -> relay chain -> K streaming consumers under churn; emit JSON")
		fanConns  = flag.String("fanout-conns", "100,1000", "-fanout: comma-separated downstream connection counts to sweep")
		relays    = flag.Int("relays", 1, "-fanout: relays chained in series between origin and consumers")
		fanPubs   = flag.Int("fanout-publishes", 20, "-fanout: churn publishes per sweep point")
		shardSize = flag.Int("shard-size", 128, "-scale: §VIII-C group size (rows per shard)")
		churnPubs = flag.Int("churn-publishes", 40, "-scale: publishes in the churn replay")
		noSweep   = flag.Bool("no-sweep", false, "-scale: skip the worker sweep")
	)
	flag.Parse()

	if *fanout {
		if _, err := runFanoutBench(*fanConns, *relays, *fanPubs, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *scale {
		if _, err := runScaleBench(*subs, *policies, *shardSize, *churnPubs, !*noSweep, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *recover {
		n := *rows
		if n == 0 {
			n = *subs
		}
		if err := runRecoverBench(n, *policies, *shardSize, *churn); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *publish {
		if err := runPublishBench(*subs, *policies, *pubRounds, *groups, *stream); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *register {
		if err := runRegisterBench(*groupName, *subs, *conds, *ell); err != nil {
			log.Fatal(err)
		}
		return
	}

	if !*all && *fig == 0 && *table == 0 && !*ablation {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		fmt.Printf("\n=== %s ===\n", name)
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("--- completed in %v ---\n", time.Since(start).Round(time.Millisecond))
	}

	grp := func() group.Group {
		if *groupName == "schnorr" {
			return schnorr.Must2048()
		}
		return g2.MustPaperCurve()
	}

	if *all || *fig == 2 {
		run("Figure 2: GE-OCBE step times vs ell", func() error { return runFig2(grp(), *rounds, *quick) })
	}
	if *all || *table == 2 {
		run("Table II: EQ-OCBE step times", func() error { return runTable2(grp(), *rounds) })
	}
	if *all || *fig == 3 || *fig == 4 || *fig == 5 {
		run("Figures 3-5: ACV generation / key derivation / ACV size vs N", func() error { return runFig3to5(*quick) })
	}
	if *all || *fig == 6 {
		run("Figure 6: ACV generation and key derivation vs conditions per policy", func() error { return runFig6(*quick) })
	}
	if *all || *ablation {
		run("Ablation: ACV vs marker vs direct vs LKH", runAblation)
		run("Ablation: kernel field choice (ff64 vs big.Int)", runFieldAblation)
	}
}

func runFig2(g group.Group, rounds int, quick bool) error {
	params, err := pedersen.Setup(g, []byte("ppcd-bench"))
	if err != nil {
		return err
	}
	ells := []int{5, 10, 15, 20, 25, 30, 35, 40}
	if quick {
		ells = []int{5, 10, 20}
	}
	fmt.Printf("group=%s rounds=%d (paper: G2HEC jacobian, 50 rounds)\n", g.Name(), rounds)
	fmt.Printf("%4s  %28s  %22s  %20s\n", "ell", "CreateExtraCommitments(Sub)", "ComposeEnvelope(Pub)", "OpenEnvelope(Sub)")
	for _, ell := range ells {
		r, err := experiments.MeasureOCBE(params, true, ell, rounds)
		if err != nil {
			return err
		}
		fmt.Printf("%4d  %28s  %22s  %20s\n", ell,
			r.CreateCommit.Round(time.Microsecond),
			r.Compose.Round(time.Microsecond),
			r.Open.Round(time.Microsecond))
	}
	return nil
}

func runTable2(g group.Group, rounds int) error {
	params, err := pedersen.Setup(g, []byte("ppcd-bench"))
	if err != nil {
		return err
	}
	r, err := experiments.MeasureOCBE(params, false, 0, rounds)
	if err != nil {
		return err
	}
	fmt.Printf("group=%s rounds=%d (paper: 0.00 / 11.80 / 35.25 ms)\n", g.Name(), rounds)
	fmt.Printf("Create Extra Commitments (Sub): %v\n", r.CreateCommit.Round(time.Microsecond))
	fmt.Printf("Compose Envelope (Pub):         %v\n", r.Compose.Round(time.Microsecond))
	fmt.Printf("Open Envelope (Sub):            %v\n", r.Open.Round(time.Microsecond))
	return nil
}

func runFig3to5(quick bool) error {
	ns := []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	fills := []int{25, 50, 75, 100}
	if quick {
		ns = []int{100, 300, 500}
	}
	fmt.Printf("workload: 25 policies, 2 conditions/policy (paper §VII-B)\n")
	fmt.Printf("%6s  %5s  %14s  %14s  %12s\n", "N", "fill%", "ACVgen(Fig3)", "derive(Fig4)", "size(Fig5)")
	for _, n := range ns {
		for _, fill := range fills {
			r, err := experiments.Fig3to5Point(n, fill)
			if err != nil {
				return err
			}
			fmt.Printf("%6d  %5d  %14s  %14s  %10.2fKB\n", n, fill,
				r.ACVGen.Round(time.Millisecond),
				r.KeyDerive.Round(time.Microsecond),
				float64(r.HeaderSize)/1024)
		}
	}
	return nil
}

func runFig6(quick bool) error {
	conds := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if quick {
		conds = []int{1, 4, 8}
	}
	fmt.Printf("workload: 25 policies, N=500, 100%% fill (paper §VII-B)\n")
	fmt.Printf("%6s  %16s  %16s\n", "conds", "ACV generation", "key derivation")
	for _, c := range conds {
		r, err := experiments.Fig6Point(c)
		if err != nil {
			return err
		}
		fmt.Printf("%6d  %16s  %16s\n", c,
			r.ACVGen.Round(time.Millisecond),
			r.KeyDerive.Round(time.Microsecond))
	}
	return nil
}

func runAblation() error {
	for _, n := range []int{100, 500, 1000} {
		res, err := experiments.Ablation(n)
		if err != nil {
			return err
		}
		fmt.Printf("\nn = %d subscribers\n", n)
		fmt.Printf("%8s  %12s  %12s  %14s  %12s\n", "scheme", "rekey", "derive", "broadcast", "unicasts")
		for _, r := range res {
			fmt.Printf("%8s  %12s  %12s  %12.1fKB  %12d\n", r.Scheme,
				r.RekeyTime.Round(time.Microsecond),
				r.DeriveTime.Round(time.Microsecond),
				float64(r.BroadcastSize)/1024, r.UnicastMsgs)
		}
	}
	return nil
}

func runFieldAblation() error {
	for _, n := range []int{100, 200, 400} {
		fast, slow, err := experiments.KernelFieldComparison(n)
		if err != nil {
			return err
		}
		fmt.Printf("N=%4d  ff64 build: %10s   big.Int elimination: %10s   speedup: %.1fx\n",
			n, fast.Round(time.Millisecond), slow.Round(time.Millisecond),
			float64(slow)/float64(fast))
	}
	return nil
}

// registerReport is the JSON document emitted by -register: averaged step
// times of the oblivious registration path (§V-B) over the chosen commitment
// group, covering both sides of the protocol, plus the end-to-end batch
// throughput. This is the registration counterpart of -publish, so the bench
// trajectory covers both hot phases.
type registerReport struct {
	Group string `json:"group"`
	Subs  int    `json:"subs"`
	Conds int    `json:"conds"`
	Ell   int    `json:"ell"`
	// TokenVerifyNs: one IdMgr signature + commitment check (Pub side).
	TokenVerifyNs int64 `json:"token_verify_ns"`
	// PrepareNs: Sub-side Prepare (bit commitments for GE conditions),
	// averaged per condition.
	PrepareNs int64 `json:"prepare_ns_per_cond"`
	// ComposeEQNs / ComposeGENs: Pub-side envelope composition for one
	// equality / one bitwise inequality condition.
	ComposeEQNs int64 `json:"compose_eq_ns"`
	ComposeGENs int64 `json:"compose_ge_ns"`
	// BatchRegisterNs: end-to-end RegisterBatch wall time for all
	// subscribers (token dedup + parallel envelope compose + table commit).
	BatchRegisterNs int64   `json:"batch_register_ns"`
	Envelopes       int     `json:"envelopes"`
	EnvelopesPerSec float64 `json:"envelopes_per_sec"`
	// LanesUsed / BatchInversions: lane-kernel telemetry accumulated over
	// the whole run — how many scalar multiplications went through the
	// lock-step engine and how many Montgomery batch inversions served
	// them. Both are zero when the commitment group has no lane engine
	// (schnorr), so CI asserts on them only for the jacobian group.
	LanesUsed       uint64 `json:"lanes_used"`
	BatchInversions uint64 `json:"batch_inversions"`
}

// runRegisterBench measures the registration crypto path: subscribers hold
// satisfying attribute tokens and register every condition of one policy
// with alternating EQ / GE predicates, batched per subscriber exactly like
// Subscriber.RegisterAll.
func runRegisterBench(groupName string, subs, conds, ell int) error {
	if subs < 1 || conds < 1 || ell < 1 {
		return fmt.Errorf("ppcd-bench: -register needs subs>=1, conds>=1, ell>=1")
	}
	var grp group.Group
	if groupName == "schnorr" {
		grp = schnorr.Must2048()
	} else {
		groupName = "jacobian"
		grp = g2.MustPaperCurve()
	}
	params, err := pedersen.Setup(grp, []byte("ppcd-bench"))
	if err != nil {
		return err
	}
	idmgr, err := ppcd.NewIdentityManager(params)
	if err != nil {
		return err
	}
	exprs := make([]string, conds)
	for i := range exprs {
		if i%2 == 0 {
			exprs[i] = fmt.Sprintf("dept%d = eng", i)
		} else {
			exprs[i] = fmt.Sprintf("level%d >= 10", i)
		}
	}
	acp, err := ppcd.NewPolicy("reg-bench", strings.Join(exprs, " && "), "doc", "body")
	if err != nil {
		return err
	}
	pub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), []*ppcd.Policy{acp}, ppcd.Options{Ell: ell})
	if err != nil {
		return err
	}

	var rep registerReport
	rep.Group, rep.Subs, rep.Conds, rep.Ell = groupName, subs, conds, ell
	order := params.Order()
	lanes0, inv0 := g2.LaneStats()

	// Sub side: issue tokens and prepare OCBE requests (timed per condition).
	batches := make([][]*pubsub.RegistrationRequest, subs)
	var firstToken *ppcd.Token
	var prepare time.Duration
	for s := 0; s < subs; s++ {
		nym := fmt.Sprintf("pn-%d", s)
		for _, cond := range acp.Conds {
			val := "eng"
			if cond.Op != ocbe.EQ {
				val = "37"
			}
			tok, sec, err := idmgr.IssueString(nym, cond.Attr, val)
			if err != nil {
				return err
			}
			if firstToken == nil {
				firstToken = tok
			}
			recv := ocbe.NewReceiver(params, sec.Value, sec.Blinding)
			pred := ocbe.Predicate{Op: cond.Op, X0: idtoken.EncodeValue(order, cond.Value)}
			start := time.Now()
			_, req, err := recv.Prepare(pred, ell)
			if err != nil {
				return err
			}
			prepare += time.Since(start)
			batches[s] = append(batches[s], &pubsub.RegistrationRequest{Token: tok, CondID: cond.ID(), OCBE: req})
		}
	}
	rep.PrepareNs = prepare.Nanoseconds() / int64(subs*conds)

	// Isolated Pub-side steps, averaged over a few rounds.
	const stepRounds = 5
	var verify time.Duration
	for i := 0; i < stepRounds; i++ {
		start := time.Now()
		if err := idtoken.Verify(params, idmgr.PublicKey(), firstToken); err != nil {
			return err
		}
		verify += time.Since(start)
	}
	rep.TokenVerifyNs = verify.Nanoseconds() / stepRounds
	msg := make([]byte, 8)
	for i, cond := range acp.Conds {
		isEQ := cond.Op == ocbe.EQ
		// One representative condition per kind is enough.
		if (isEQ && rep.ComposeEQNs != 0) || (!isEQ && rep.ComposeGENs != 0) {
			continue
		}
		req := batches[0][i]
		pred := ocbe.Predicate{Op: cond.Op, X0: idtoken.EncodeValue(order, cond.Value)}
		var total time.Duration
		for r := 0; r < stepRounds; r++ {
			start := time.Now()
			if _, err := ocbe.Compose(params, pred, ell, req.OCBE, msg); err != nil {
				return err
			}
			total += time.Since(start)
		}
		if isEQ {
			rep.ComposeEQNs = total.Nanoseconds() / stepRounds
		} else {
			rep.ComposeGENs = total.Nanoseconds() / stepRounds
		}
	}

	// End-to-end: one RegisterBatch round trip per subscriber, as
	// Subscriber.RegisterAll issues them.
	start := time.Now()
	for _, reqs := range batches {
		results, err := pub.RegisterBatch(reqs)
		if err != nil {
			return err
		}
		for _, r := range results {
			if r.Err != "" {
				return fmt.Errorf("ppcd-bench: registration item failed: %s", r.Err)
			}
		}
	}
	elapsed := time.Since(start)
	rep.BatchRegisterNs = elapsed.Nanoseconds()
	rep.Envelopes = subs * conds
	rep.EnvelopesPerSec = float64(rep.Envelopes) / elapsed.Seconds()
	lanes1, inv1 := g2.LaneStats()
	rep.LanesUsed = lanes1 - lanes0
	rep.BatchInversions = inv1 - inv0

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// publishReport is the JSON document emitted by -publish: per-publish wall
// times for the three rekey regimes of the layered engine, plus the engine's
// work counters at the end of the run.
type publishReport struct {
	Subs     int `json:"subs"`
	Policies int `json:"policies"`
	Rounds   int `json:"rounds"`
	// Groups is the requested §VIII-C grouping degree g (1 = ungrouped);
	// GroupSize is the resulting per-group row cap passed to the publisher,
	// ceil(subs/g). The fully-registered policy (attr0, subs rows) shards
	// into exactly g groups; the half-registered ones into ~g/2.
	Groups    int `json:"groups"`
	GroupSize int `json:"group_size"`
	// SteadyNs: publish with no table change (zero ACV solves).
	SteadyNs int64 `json:"steady_ns_per_publish"`
	// ChurnNs: publish after one subscription revocation (only affected
	// configurations — one shard, when grouped — re-solved).
	ChurnNs int64 `json:"churn_ns_per_publish"`
	// FullNs: publish after a wholesale state import (every configuration
	// re-solved; grouping cuts this by ~g²).
	FullNs int64 `json:"full_ns_per_publish"`
	// DeltaBytes vs SnapshotBytes: wire-frame size of a single-leave churn
	// delta against the full snapshot at the same epoch — the dissemination
	// cost of push streaming vs re-fetching the whole broadcast.
	DeltaBytes    int     `json:"delta_bytes"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	DeltaRatio    float64 `json:"delta_ratio"`
	// Stream is the TCP streaming smoke (-stream): real bytes on the wire
	// per streaming subscriber across the run, vs what per-publish full
	// fetches would have shipped.
	Stream *streamReport `json:"stream,omitempty"`
	Stats  struct {
		Rekeys         uint64 `json:"rekeys"`
		Rebuilds       uint64 `json:"rebuilds"`
		CacheHits      uint64 `json:"cache_hits"`
		Solves         uint64 `json:"solves"`
		DominanceSkips uint64 `json:"dominance_skips"`
	} `json:"engine_stats"`
}

// runPublishBench measures steady-state vs churn vs full-rebuild publish
// cost on a synthetic table injected through the state-import path (no OCBE
// exchanges), printing one JSON object to stdout. groups > 1 caps group
// size at ceil(subs/groups) (§VIII-C), sharding the dominant full-subs
// policy into exactly `groups` groups, which makes the N³/g² claim a
// measured series: run with -groups 1 for the baseline and higher g to
// compare.
func runPublishBench(subs, policies, rounds, groups int, stream bool) error {
	if subs < 4 || policies < 1 || rounds < 1 || groups < 1 {
		return fmt.Errorf("ppcd-bench: -publish needs subs>=4, policies>=1, rounds>=1, groups>=1")
	}
	params, err := ppcd.Setup(ppcd.SchnorrGroup(), []byte("ppcd-bench"))
	if err != nil {
		return err
	}
	idmgr, err := ppcd.NewIdentityManager(params)
	if err != nil {
		return err
	}
	// Synthetic CSS table injected through the public state-import path so
	// no OCBE exchanges run. The first half of the pseudonyms hold only
	// attr0: the churn regime revokes from that pool, so each timed publish
	// re-solves exactly one configuration (a genuine single-leave, not a
	// full rebuild).
	acps, doc, state, err := benchutil.Workload(subs, policies, subs/2, 1024)
	if err != nil {
		return err
	}
	groupSize := 0
	if groups > 1 {
		groupSize = (subs + groups - 1) / groups
	}
	pub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), acps, ppcd.Options{Ell: 8, GroupSize: groupSize})
	if err != nil {
		return err
	}

	measure := func(prep func(i int) error) (int64, error) {
		var total time.Duration
		for i := 0; i < rounds; i++ {
			if prep != nil {
				if err := prep(i); err != nil {
					return 0, err
				}
			}
			start := time.Now()
			if _, err := pub.Publish(doc); err != nil {
				return 0, err
			}
			total += time.Since(start)
		}
		return total.Nanoseconds() / int64(rounds), nil
	}

	var rep publishReport
	rep.Subs, rep.Policies, rep.Rounds = subs, policies, rounds
	rep.Groups, rep.GroupSize = groups, groupSize

	// Full rebuild: drop every cached ACV build before each publish.
	// (ImportState used to do this implicitly; it now diffs, and re-importing
	// an identical table dirties nothing — the explicit reset keeps this
	// regime measuring a genuine full re-solve.)
	if rep.FullNs, err = measure(func(int) error {
		if err := pub.ImportState(state); err != nil {
			return err
		}
		pub.ResetRekeyCache()
		return nil
	}); err != nil {
		return err
	}
	// Churn: one subscription revocation per publish. When the revocation
	// pool runs dry (rounds > pool), the untimed prep re-imports the table
	// and settles it with one publish so every timed publish sees exactly
	// one fresh leave.
	pool := subs / 2
	if rep.ChurnNs, err = measure(func(i int) error {
		if i%pool == 0 {
			if err := pub.ImportState(state); err != nil {
				return err
			}
			if _, err := pub.Publish(doc); err != nil {
				return err
			}
		}
		return pub.RevokeSubscription(fmt.Sprintf("pn-%d", i%pool))
	}); err != nil {
		return err
	}
	// Steady state: no table change between publishes. Restore the full
	// table first — the churn regime depleted it, and the reported subs
	// count must match what this regime actually publishes over.
	if err := pub.ImportState(state); err != nil {
		return err
	}
	if _, err := pub.Publish(doc); err != nil {
		return err
	}
	if rep.SteadyNs, err = measure(nil); err != nil {
		return err
	}

	// Dissemination bytes: one controlled single-leave on the settled table,
	// then the wire-frame sizes of the resulting delta vs the full snapshot.
	base, err := pub.Publish(doc)
	if err != nil {
		return err
	}
	if err := pub.RevokeSubscription("pn-0"); err != nil {
		return err
	}
	churned, err := pub.Publish(doc)
	if err != nil {
		return err
	}
	d, err := ppcd.Diff(base, churned)
	if err != nil {
		return err
	}
	rep.SnapshotBytes = len(wire.MarshalSnapshotFrame(churned))
	rep.DeltaBytes = len(wire.MarshalDeltaFrame(d))
	rep.DeltaRatio = float64(rep.DeltaBytes) / float64(rep.SnapshotBytes)

	if stream {
		if rep.Stream, err = runStreamSmoke(pub, doc, subs); err != nil {
			return err
		}
	}

	s := pub.Stats()
	rep.Stats.Rekeys, rep.Stats.Rebuilds, rep.Stats.CacheHits, rep.Stats.Solves, rep.Stats.DominanceSkips =
		s.Rekeys, s.Rebuilds, s.CacheHits, s.Solves, s.DominanceSkips
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// streamReport is the -publish -stream section: a real TCP server fanning
// churn publishes out to streaming subscribers, with the measured bytes each
// consumed (snapshot catch-up + one delta per publish) against the pull
// alternative (one full snapshot per publish).
type streamReport struct {
	Subscribers     int   `json:"subscribers"`
	Publishes       int   `json:"publishes"`
	SnapshotFrames  int   `json:"snapshot_frames"`
	DeltaFrames     int   `json:"delta_frames"`
	BytesPerSub     int64 `json:"bytes_per_subscriber"`
	FetchBytesEquiv int64 `json:"fetch_bytes_equivalent"`
}

// runStreamSmoke drives the streaming dissemination path end to end over
// localhost TCP: 8 subscribers hold open streams while the publisher churns
// one revocation per publish; every subscriber must converge on the final
// epoch having received exactly one snapshot and then deltas.
func runStreamSmoke(pub *ppcd.Publisher, doc *ppcd.Document, subs int) (*streamReport, error) {
	const nStreams = 8
	churns := 3
	if max := subs/2 - 1; churns > max {
		churns = max
	}
	if churns < 1 {
		return nil, fmt.Errorf("ppcd-bench: -stream needs subs >= 6")
	}

	srv, err := ppcd.NewServer(pub)
	if err != nil {
		return nil, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	seed, err := pub.Publish(doc)
	if err != nil {
		return nil, err
	}
	if err := srv.PublishBroadcast(seed); err != nil {
		return nil, err
	}

	rep := &streamReport{Subscribers: nStreams}
	type result struct {
		snaps, deltas int
		bytes         int64
		err           error
	}
	results := make(chan result, nStreams)
	var finalEpoch uint64
	var epochMu sync.Mutex
	finalKnown := make(chan struct{})

	for i := 0; i < nStreams; i++ {
		go func() {
			var res result
			defer func() { results <- res }()
			client, err := ppcd.Dial(addr, pub.Params())
			if err != nil {
				res.err = err
				return
			}
			defer client.Close()
			st, err := client.Subscribe(doc.Name, 0, 0)
			if err != nil {
				res.err = err
				return
			}
			defer st.Close()
			// Consume frames as they arrive — buffering them in the kernel
			// until the publishes finish would trip the server's
			// slow-consumer eviction on large workloads. A dedicated reader
			// goroutine feeds a select so the consumer can also learn the
			// final target epoch the moment publishing ends; closing the
			// stream on return unblocks the reader.
			frames := make(chan *ppcd.StreamFrame, 64)
			readErr := make(chan error, 1)
			go func() {
				for {
					if err := st.SetReadDeadline(time.Now().Add(60 * time.Second)); err != nil {
						readErr <- err
						return
					}
					f, err := st.Next()
					if err != nil {
						readErr <- err
						return
					}
					frames <- f
				}
			}()
			var maxEpoch, target uint64
			haveTarget := false
			fk := finalKnown
			for {
				if haveTarget && maxEpoch >= target {
					return
				}
				select {
				case f := <-frames:
					switch f.Type {
					case ppcd.FrameSnapshot:
						res.snaps++
					case ppcd.FrameDelta:
						res.deltas++
					case ppcd.FrameHeartbeat:
						continue
					}
					res.bytes = st.BytesRead()
					if f.Epoch > maxEpoch {
						maxEpoch = f.Epoch
					}
				case err := <-readErr:
					res.err = err
					return
				case <-fk:
					epochMu.Lock()
					target = finalEpoch
					epochMu.Unlock()
					haveTarget = true
					fk = nil // closed channel: disarm so the select never busy-spins
				}
			}
		}()
	}
	// Give the subscribe requests a moment to land before churning; a late
	// joiner still converges (its first frame is a newer snapshot).
	time.Sleep(200 * time.Millisecond)

	var snapshotTotal int64
	for k := 0; k < churns; k++ {
		if err := pub.RevokeSubscription(fmt.Sprintf("pn-%d", k+1)); err != nil {
			return nil, err
		}
		b, err := pub.Publish(doc)
		if err != nil {
			return nil, err
		}
		if err := srv.PublishBroadcast(b); err != nil {
			return nil, err
		}
		snapshotTotal += int64(len(wire.MarshalSnapshotFrame(b)))
		epochMu.Lock()
		finalEpoch = b.Epoch
		epochMu.Unlock()
	}
	close(finalKnown)
	rep.Publishes = churns
	rep.FetchBytesEquiv = snapshotTotal

	for i := 0; i < nStreams; i++ {
		res := <-results
		if res.err != nil {
			return nil, fmt.Errorf("ppcd-bench: streaming subscriber: %w", res.err)
		}
		rep.SnapshotFrames += res.snaps
		rep.DeltaFrames += res.deltas
		rep.BytesPerSub += res.bytes
	}
	rep.BytesPerSub /= nStreams
	return rep, nil
}
