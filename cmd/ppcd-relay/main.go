// Command ppcd-relay runs a stateless dissemination edge: it subscribes to
// an upstream publisher (or another relay), keeps a bounded ring of the raw
// epoch frames it receives, and re-serves snapshot/delta/heartbeat streams
// plus reconnect catch-up to downstream subscribers. Registration and fetch
// RPCs are proxied to the upstream, so an unmodified ppcd-sub works against
// the relay's address.
//
// Relays hold no key material — every frame is publicly distributable by
// construction — and chain freely:
//
//	ppcd-pub -addr :7468
//	ppcd-relay -upstream 127.0.0.1:7468 -addr :7469
//	ppcd-relay -upstream 127.0.0.1:7469 -addr :7470   # depth-2 edge
//	ppcd-sub stream -addr 127.0.0.1:7470 ...
//
// On SIGTERM/SIGINT the relay shuts down cleanly; on upstream loss it
// reconnects with its last applied (epoch, Gen) for a one-delta catch-up,
// falling back to a fresh snapshot when the upstream no longer retains that
// state (or restarted under a new generation).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ppcd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppcd-relay: ")

	var (
		addr       = flag.String("addr", "127.0.0.1:7469", "downstream listen address")
		upstream   = flag.String("upstream", "", "upstream publisher or relay address (required)")
		seed       = flag.String("seed", "ppcd-system", "Pedersen parameter seed (must match the system)")
		groupName  = flag.String("group", "schnorr", "commitment group: schnorr or jacobian")
		doc        = flag.String("doc", "", "relay only this document (default all)")
		retain     = flag.Int("retain", 8, "recent epochs kept for fetches and stream delta catch-ups")
		queueDepth = flag.Int("queue-depth", 128, "per-stream outbound frame queue depth before a slow consumer is evicted")
		heartbeat  = flag.Duration("stream-heartbeat", 30*time.Second, "downstream heartbeat interval (0 disables)")
		idle       = flag.Duration("idle-timeout", 2*time.Minute, "reconnect when the upstream stream is silent this long")
		redial     = flag.Duration("reconnect-delay", time.Second, "pause between upstream redial attempts")
		statsEvery = flag.Duration("stats-every", time.Minute, "interval between stats log lines (0 disables)")
	)
	flag.Parse()

	if *upstream == "" {
		flag.Usage()
		os.Exit(2)
	}

	grp := ppcd.SchnorrGroup()
	if *groupName == "jacobian" {
		grp = ppcd.PaperCurve()
	}
	params, err := ppcd.Setup(grp, []byte(*seed))
	if err != nil {
		log.Fatal(err)
	}

	r, err := ppcd.NewRelay(*upstream, params, &ppcd.RelayOptions{
		Retain:         *retain,
		QueueDepth:     *queueDepth,
		Heartbeat:      *heartbeat,
		Doc:            *doc,
		IdleTimeout:    *idle,
		ReconnectDelay: *redial,
	})
	if err != nil {
		log.Fatal(err)
	}
	bound, err := r.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("relaying %s on %s (retain %d, queue depth %d)", *upstream, bound, *retain, *queueDepth)

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for range t.C {
				s := r.Stats()
				frames, bytes := r.Egress()
				log.Printf("epoch %d, %d downstream streams, egress %d frames / %d bytes, upstream %d snapshots + %d deltas (%d reconnects, %d resets)",
					r.LastEpoch(), r.Streams(), frames, bytes, s.Snapshots, s.Deltas, s.Reconnects, s.Resets)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigs
	log.Printf("%v: shutting down", sig)
	r.Close()
}
