// Command ppcd-pub runs a publisher daemon: it loads a policy file, serves
// registrations over TCP, publishes documents dropped on stdin commands, and
// persists its CSS table across restarts. With -stream (the default) every
// publish is also pushed over long-lived subscriber streams as an epoch
// delta — reconnecting clients catch up from their last epoch (ppcd-sub
// stream is the consumer side).
//
// With -state-dir the publisher is durable: on start it recovers table T,
// sticky group assignments, the epoch counter and its incarnation generation
// from an encrypted snapshot plus write-ahead log, every
// registration/revocation/publish is WAL-appended (fsync) before it takes
// effect, and fresh snapshots are written on -snapshot-every, after
// -snapshot-wal-records of WAL growth, on SIGTERM/SIGINT and on quit.
// Snapshots are segmented and incremental: post-churn ones rewrite only the
// dirty segments. A warm restart therefore performs zero ACV re-solves
// on its first publish, and reconnecting ppcd-sub stream clients catch up
// with a delta instead of a snapshot. The state is sealed under the operator
// key in -state-key (hex, auto-generated on first run; guard that file).
//
// Policy file format (one policy per line):
//
//	<id> | <conjunction> | <document> | <subdoc>[,<subdoc>...]
//	acp4 | role = nur && level >= 59 | EHR.xml | ContactInfo,Medication
//
// Lines starting with '#' are comments. Interactive commands on stdin:
//
//	publish <path> <mark>[,<mark>...]   segment an XML file and broadcast it
//	revoke <nym>                        revoke a subscription and rekey
//	revoke-cred <nym> <condition>       revoke one credential
//	save <path>                         persist the CSS table
//	status                              print table statistics
//	quit
//
// The IdMgr public key is read from -idmgr-key (hex); generate one with
// ppcd-sub -issue.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ppcd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppcd-pub: ")

	var (
		addr       = flag.String("addr", "127.0.0.1:7468", "listen address")
		policyPath = flag.String("policies", "", "policy file (required)")
		statePath  = flag.String("state", "", "CSS table state file to load (optional)")
		idmgrKey   = flag.String("idmgr-key", "", "IdMgr public key, hex (required)")
		seed       = flag.String("seed", "ppcd-system", "Pedersen parameter seed (must match subscribers)")
		ell        = flag.Int("ell", 16, "bit bound for inequality conditions")
		groupName  = flag.String("group", "schnorr", "commitment group: schnorr or jacobian")
		groupSize  = flag.Int("group-size", 0, "shard each policy's subscribers into groups of at most this many rows (§VIII-C; 0 = one ACV per configuration)")
		stream     = flag.Bool("stream", true, "serve push streams: every publish fans epoch deltas out to subscribed clients")
		heartbeat  = flag.Duration("stream-heartbeat", 30*time.Second, "stream heartbeat interval (0 disables)")
		retain     = flag.Int("retain", 8, "recent epochs kept for fetches and stream delta catch-ups")
		queueDepth = flag.Int("queue-depth", 32, "per-stream outbound frame queue depth before a slow consumer is evicted")
		stateDir   = flag.String("state-dir", "", "durable-state directory: encrypted snapshot + WAL, auto-recovered on start")
		stateKey   = flag.String("state-key", "", "operator key file, hex (default <state-dir>/key.hex; created if absent)")
		snapEvery  = flag.Duration("snapshot-every", 5*time.Minute, "interval between compacted state snapshots (0 disables the ticker)")
		snapWAL    = flag.Int("snapshot-wal-records", 0, "also snapshot whenever this many WAL records accumulate since the last one (0 disables; bounds replay work after a crash under bursty churn)")
	)
	flag.Parse()

	if *policyPath == "" || *idmgrKey == "" {
		flag.Usage()
		os.Exit(2)
	}
	key, err := hex.DecodeString(*idmgrKey)
	if err != nil {
		log.Fatalf("bad -idmgr-key: %v", err)
	}

	grp := ppcd.SchnorrGroup()
	if *groupName == "jacobian" {
		grp = ppcd.PaperCurve()
	}
	params, err := ppcd.Setup(grp, []byte(*seed))
	if err != nil {
		log.Fatal(err)
	}

	acps, err := loadPolicies(*policyPath)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d policies from %s", len(acps), *policyPath)

	pub, err := ppcd.NewPublisher(params, key, acps, ppcd.Options{Ell: *ell, GroupSize: *groupSize})
	if err != nil {
		log.Fatal(err)
	}
	if *statePath != "" {
		if data, err := os.ReadFile(*statePath); err == nil {
			if err := pub.ImportState(data); err != nil {
				log.Fatalf("restoring state: %v", err)
			}
			log.Printf("restored %d subscribers from %s", pub.SubscriberCount(), *statePath)
		}
	}

	var st *ppcd.StateStore
	if *stateDir != "" {
		keyPath := *stateKey
		if keyPath == "" {
			keyPath = filepath.Join(*stateDir, "key.hex")
			if err := os.MkdirAll(*stateDir, 0o700); err != nil {
				log.Fatal(err)
			}
		}
		key, err := ppcd.LoadOrCreateKeyFile(keyPath)
		if err != nil {
			log.Fatal(err)
		}
		if st, err = ppcd.OpenStore(*stateDir, key); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rec, err := st.Recover(pub)
		if err != nil {
			log.Fatalf("recovering state: %v", err)
		}
		if rec.Restored {
			log.Printf("recovered %d subscribers at epoch %d in %v (snapshot %d bytes, %d WAL events replayed, torn tail: %v)",
				pub.SubscriberCount(), pub.Epoch(), time.Since(start).Round(time.Millisecond),
				rec.SnapshotBytes, rec.Replayed, rec.TruncatedTail)
		} else {
			log.Printf("fresh state directory %s", *stateDir)
		}
		pub.SetJournal(st)
		// A fresh directory snapshots immediately: the incarnation generation
		// is freshly random and must become durable before any subscriber
		// sees it, so even a crash before the first interval snapshot
		// restarts warm. A restored store skips this — its generation came
		// from the snapshot just recovered, and rewriting a million-row state
		// on every boot is exactly what segmented snapshots avoid.
		if !rec.Restored {
			if err := st.Snapshot(pub); err != nil {
				log.Fatalf("initial snapshot: %v", err)
			}
		}
	}

	srv, err := ppcd.NewServer(pub)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetStreaming(*stream)
	srv.SetHeartbeatInterval(*heartbeat)
	srv.SetRetention(*retain)
	srv.SetQueueDepth(*queueDepth)
	// Re-seed the retention ring with the recovered diff bases so
	// reconnecting subscribers holding pre-restart epochs catch up with a
	// delta instead of a snapshot.
	for _, b := range pub.LastBroadcasts() {
		if err := srv.PublishBroadcast(b); err != nil {
			log.Fatal(err)
		}
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	shutdown := func(code int) {
		if st != nil {
			if err := st.Snapshot(pub); err != nil {
				log.Printf("final snapshot: %v", err)
			}
			st.Close()
		}
		srv.Close()
		os.Exit(code)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		log.Printf("%v: snapshotting and shutting down", sig)
		shutdown(0)
	}()
	if st != nil && *snapEvery > 0 {
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for range t.C {
				if err := st.Snapshot(pub); err != nil {
					log.Printf("snapshot: %v", err)
				}
			}
		}()
	}
	if st != nil && *snapWAL > 0 {
		// WAL-growth trigger: a churn burst between interval ticks is bounded
		// to -snapshot-wal-records of replay, and the post-churn snapshot is
		// incremental so it costs O(churn), not O(state).
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for range t.C {
				if st.WALRecordsSinceSnapshot() < *snapWAL {
					continue
				}
				if err := st.Snapshot(pub); err != nil {
					log.Printf("snapshot (wal growth): %v", err)
				}
			}
		}()
	}
	mode := "fetch only"
	if *stream {
		mode = fmt.Sprintf("fetch + push streams (heartbeat %v, %d epochs retained)", *heartbeat, *retain)
	}
	log.Printf("serving registrations and broadcasts on %s (%s)", bound, mode)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		if err := dispatch(pub, srv, fields); err != nil {
			if err == errQuit {
				shutdown(0)
			}
			log.Printf("error: %v", err)
		}
		fmt.Print("> ")
	}
	// Stdin EOF (piped commands, Ctrl-D): same graceful exit as quit —
	// daemon deployments keep stdin open (a fifo or a terminal).
	shutdown(0)
}

var errQuit = fmt.Errorf("quit")

func dispatch(pub *ppcd.Publisher, srv *ppcd.Server, fields []string) error {
	switch fields[0] {
	case "publish":
		if len(fields) < 3 {
			return fmt.Errorf("usage: publish <path> <mark>[,...]")
		}
		data, err := os.ReadFile(fields[1])
		if err != nil {
			return err
		}
		doc, err := ppcd.SplitXML(fields[1], data, strings.Split(fields[2], ","))
		if err != nil {
			return err
		}
		before := pub.Stats()
		b, err := pub.Publish(doc)
		if err != nil {
			return err
		}
		if err := srv.PublishBroadcast(b); err != nil {
			return err
		}
		after := pub.Stats()
		log.Printf("published %s: %d subdocuments, %d configurations (%d rekeyed, %d from cache)",
			doc.Name, len(doc.Subdocs), len(b.Configs),
			after.Rebuilds-before.Rebuilds, after.CacheHits-before.CacheHits)
		return nil
	case "revoke":
		if len(fields) != 2 {
			return fmt.Errorf("usage: revoke <nym>")
		}
		if err := pub.RevokeSubscription(fields[1]); err != nil {
			return err
		}
		log.Printf("revoked %s; next publish rekeys", fields[1])
		return nil
	case "revoke-cred":
		if len(fields) < 3 {
			return fmt.Errorf("usage: revoke-cred <nym> <condition>")
		}
		cond := strings.Join(fields[2:], " ")
		if err := pub.RevokeCredential(fields[1], cond); err != nil {
			return err
		}
		log.Printf("revoked credential %q of %s", cond, fields[1])
		return nil
	case "save":
		if len(fields) != 2 {
			return fmt.Errorf("usage: save <path>")
		}
		data, err := pub.ExportState()
		if err != nil {
			return err
		}
		if err := os.WriteFile(fields[1], data, 0o600); err != nil {
			return err
		}
		log.Printf("saved CSS table (%d bytes, secret material) to %s", len(data), fields[1])
		return nil
	case "status":
		s := pub.Stats()
		log.Printf("%d registered pseudonyms, %d conditions, %d policies",
			pub.SubscriberCount(), len(pub.Conditions()), len(pub.Policies()))
		log.Printf("rekey engine: %d publishes, %d ACV rebuilds, %d cache hits, %d solves",
			s.Rekeys, s.Rebuilds, s.CacheHits, s.Solves)
		return nil
	case "quit", "exit":
		return errQuit
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}

func loadPolicies(path string) ([]*ppcd.Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []*ppcd.Policy
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 4 {
			return nil, fmt.Errorf("%s:%d: want 'id | conds | doc | objects'", path, lineNo+1)
		}
		objs := strings.Split(strings.TrimSpace(parts[3]), ",")
		for i := range objs {
			objs[i] = strings.TrimSpace(objs[i])
		}
		acp, err := ppcd.NewPolicy(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), strings.TrimSpace(parts[2]), objs...)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo+1, err)
		}
		out = append(out, acp)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no policies", path)
	}
	return out, nil
}
