// Command ppcd-sub is the subscriber-side CLI. Together with ppcd-pub it
// runs the full protocol across processes:
//
//	# one-time: create an identity manager seed and issue a token
//	ppcd-sub idmgr-init -idmgr-seed-file idmgr.seed
//	ppcd-sub issue -idmgr-seed-file idmgr.seed -nym pn-1 -tag age -value 30 -out token.json
//
//	# register at a running ppcd-pub and fetch + decrypt the latest broadcast
//	ppcd-sub register -addr 127.0.0.1:7468 -token token.json
//	ppcd-sub fetch    -addr 127.0.0.1:7468 -token token.json -outdir ./plain
//
//	# or stay subscribed: consume the publisher's push stream, applying
//	# epoch deltas and decrypting as new editions arrive (reconnects with
//	# the last applied epoch after connection loss)
//	ppcd-sub stream   -addr 127.0.0.1:7468 -token token.json -outdir ./plain
//
// Token files contain the PRIVATE opening (value + blinding); they never
// leave the subscriber's machine — registration only transmits commitments.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/big"
	"os"
	"path/filepath"
	"time"

	"ppcd"
	"ppcd/internal/idtoken"
)

// tokenFile is the on-disk subscriber credential: the public token plus the
// private opening.
type tokenFile struct {
	Nym        string `json:"nym"`
	Tag        string `json:"tag"`
	Commitment string `json:"commitment"` // hex
	Sig        string `json:"sig"`        // hex
	Value      string `json:"value"`      // decimal; PRIVATE
	Blinding   string `json:"blinding"`   // decimal; PRIVATE
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppcd-sub: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7468", "publisher address")
		seedFile  = fs.String("idmgr-seed-file", "idmgr.seed", "identity manager seed file")
		nym       = fs.String("nym", "", "pseudonym")
		tag       = fs.String("tag", "", "attribute tag")
		value     = fs.String("value", "", "attribute value (kept private)")
		out       = fs.String("out", "token.json", "output token file")
		tokens    = fs.String("token", "token.json", "comma-unsupported: one token file")
		outdir    = fs.String("outdir", ".", "directory for decrypted subdocuments")
		seed      = fs.String("seed", "ppcd-system", "Pedersen parameter seed (must match publisher)")
		groupName = fs.String("group", "schnorr", "commitment group: schnorr or jacobian")
		docFilter = fs.String("doc", "", "stream: only this document (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}

	grp := ppcd.SchnorrGroup()
	if *groupName == "jacobian" {
		grp = ppcd.PaperCurve()
	}
	params, err := ppcd.Setup(grp, []byte(*seed))
	if err != nil {
		log.Fatal(err)
	}

	switch cmd {
	case "idmgr-init":
		s := make([]byte, 32)
		if _, err := rand.Read(s); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*seedFile, []byte(hex.EncodeToString(s)), 0o600); err != nil {
			log.Fatal(err)
		}
		mgr := loadIdMgr(params, *seedFile)
		fmt.Printf("identity manager initialised; public key (give to ppcd-pub -idmgr-key):\n%s\n",
			hex.EncodeToString(mgr.PublicKey()))
	case "idmgr-pubkey":
		mgr := loadIdMgr(params, *seedFile)
		fmt.Println(hex.EncodeToString(mgr.PublicKey()))
	case "issue":
		if *nym == "" || *tag == "" || *value == "" {
			log.Fatal("issue requires -nym, -tag and -value")
		}
		mgr := loadIdMgr(params, *seedFile)
		tok, sec, err := mgr.IssueString(*nym, *tag, *value)
		if err != nil {
			log.Fatal(err)
		}
		tf := tokenFile{
			Nym: tok.Nym, Tag: tok.Tag,
			Commitment: hex.EncodeToString(tok.Commitment),
			Sig:        hex.EncodeToString(tok.Sig),
			Value:      sec.Value.String(),
			Blinding:   sec.Blinding.String(),
		}
		data, err := json.MarshalIndent(tf, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, data, 0o600); err != nil {
			log.Fatal(err)
		}
		log.Printf("issued token for %s (%s); written to %s — keep it private", *nym, *tag, *out)
	case "register":
		sub := loadSubscriber(*tokens)
		client, err := ppcd.Dial(*addr, params)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		n, regErr := sub.RegisterAll(client)
		// Save whatever was extracted even when some items failed: the
		// publisher has already committed those CSS cells to its table, so
		// discarding them here would desynchronize the two sides. But when
		// nothing was extracted AND registration failed, keep any previously
		// saved state instead of clobbering it with an empty one.
		if n > 0 || regErr == nil {
			state, err := sub.ExportCSS()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(cssPath(*tokens), state, 0o600); err != nil {
				log.Fatal(err)
			}
		}
		if regErr != nil {
			if n > 0 {
				log.Printf("partial registration: extracted %d CSS(s), state saved to %s", n, cssPath(*tokens))
			}
			log.Fatal(regErr)
		}
		log.Printf("registered against %d conditions in one batched round trip; extracted %d CSS(s); state saved to %s",
			len(client.Conditions()), n, cssPath(*tokens))
	case "fetch":
		sub := loadSubscriber(*tokens)
		state, err := os.ReadFile(cssPath(*tokens))
		if err != nil {
			log.Fatalf("no CSS state (%v) — run register first", err)
		}
		if err := sub.ImportCSS(state); err != nil {
			log.Fatal(err)
		}
		client, err := ppcd.Dial(*addr, params)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		b, err := client.Fetch("")
		if err != nil {
			log.Fatal(err)
		}
		got, err := sub.Decrypt(b)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, content := range got {
			path, err := outPath(*outdir, name)
			if err != nil {
				log.Printf("skipping %v", err)
				continue
			}
			if err := os.WriteFile(path, content, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("decrypted %s → %s (%d bytes)", name, path, len(content))
		}
		log.Printf("authorized for %d of %d subdocuments of %q", len(got), len(b.Items), b.DocName)
	case "stream":
		sub := loadSubscriber(*tokens)
		state, err := os.ReadFile(cssPath(*tokens))
		if err != nil {
			log.Fatalf("no CSS state (%v) — run register first", err)
		}
		if err := sub.ImportCSS(state); err != nil {
			log.Fatal(err)
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			log.Fatal(err)
		}
		runStream(params, *addr, *docFilter, *outdir, sub)
	default:
		usage()
	}
}

// streamIdleTimeout bounds how long the stream consumer waits for any frame
// (data or heartbeat) before treating the connection as dead and redialing;
// generous against the server's default 30s heartbeat cadence, so a
// silently dropped path (power loss, NAT idle reset) cannot hang the
// consumer forever.
const streamIdleTimeout = 2 * time.Minute

// runStream consumes the publisher's push stream forever: snapshots seed the
// subscriber's broadcast state, deltas patch it, and every data frame's
// decryptable subdocuments land in outdir. On connection loss it redials
// with the last applied epoch (and its publisher generation), so the
// catch-up is one delta whenever the server still retains that state.
func runStream(params *ppcd.CommitmentParams, addr, doc, outdir string, sub *ppcd.Subscriber) {
	var lastEpoch, lastGen uint64
	for {
		client, err := ppcd.Dial(addr, params)
		if err != nil {
			log.Printf("dial: %v; retrying in 2s", err)
			time.Sleep(2 * time.Second)
			continue
		}
		st, err := client.Subscribe(doc, lastEpoch, lastGen)
		if err != nil {
			client.Close()
			log.Printf("subscribe: %v; retrying in 2s", err)
			time.Sleep(2 * time.Second)
			continue
		}
		if origin := client.Origin(); origin != "" {
			log.Printf("subscribed at %s (relay for origin %s) from epoch %d", addr, origin, lastEpoch)
		} else {
			log.Printf("subscribed at %s from epoch %d", addr, lastEpoch)
		}
		for {
			if err := st.SetReadDeadline(time.Now().Add(streamIdleTimeout)); err != nil {
				log.Printf("stream: %v; reconnecting", err)
				break
			}
			f, err := st.Next()
			if err != nil {
				log.Printf("stream: %v; reconnecting", err)
				break
			}
			var docName, kind string
			var gen uint64
			switch f.Type {
			case ppcd.FrameSnapshot:
				if err := sub.ApplySnapshot(f.Snapshot); err != nil {
					log.Printf("snapshot: %v", err)
					continue
				}
				docName, gen, kind = f.Snapshot.DocName, f.Snapshot.Gen, "snapshot"
			case ppcd.FrameDelta:
				if err := sub.ApplyDelta(f.Delta); err != nil {
					// Typically a base mismatch after the server lost our
					// epoch (or restarted into a new generation): restart
					// from a snapshot.
					log.Printf("delta: %v; resubscribing from scratch", err)
					lastEpoch, lastGen = 0, 0
					break
				}
				docName, gen, kind = f.Delta.DocName, f.Delta.Gen, "delta"
			case ppcd.FrameHeartbeat:
				continue
			}
			if docName == "" {
				break // delta apply failed; reconnect
			}
			lastEpoch, lastGen = f.Epoch, gen
			got, err := sub.DecryptCurrent(docName)
			if err != nil {
				log.Printf("decrypt: %v", err)
				continue
			}
			for name, content := range got {
				path, err := outPath(outdir, name)
				if err != nil {
					log.Printf("skipping %v", err)
					continue
				}
				if err := os.WriteFile(path, content, 0o644); err != nil {
					log.Fatal(err)
				}
			}
			log.Printf("epoch %d of %q: applied %s, decrypted %d subdocuments (%d stream bytes total)",
				f.Epoch, docName, kind, len(got), st.BytesRead())
		}
		st.Close()
		client.Close()
		time.Sleep(time.Second)
	}
}

// outPath maps a broadcast subdocument name to its output file, rejecting
// names that would escape outdir — the names arrive from the network, and a
// hostile publisher must not be able to write outside the chosen directory.
func outPath(outdir, name string) (string, error) {
	if name == "" || name == "." || name == ".." || name != filepath.Base(name) {
		return "", fmt.Errorf("unsafe subdocument name %q", name)
	}
	return filepath.Join(outdir, name+".dec"), nil
}

// cssPath derives the CSS state file path from the token file path.
func cssPath(tokenPath string) string { return tokenPath + ".css" }

func loadIdMgr(params *ppcd.CommitmentParams, seedFile string) *ppcd.IdentityManager {
	data, err := os.ReadFile(seedFile)
	if err != nil {
		log.Fatalf("reading IdMgr seed: %v (run idmgr-init first)", err)
	}
	s, err := hex.DecodeString(string(data))
	if err != nil {
		log.Fatalf("bad seed file: %v", err)
	}
	mgr, err := idtoken.NewManagerFromSeed(params, s)
	if err != nil {
		log.Fatal(err)
	}
	return mgr
}

func loadSubscriber(tokenPath string) *ppcd.Subscriber {
	data, err := os.ReadFile(tokenPath)
	if err != nil {
		log.Fatal(err)
	}
	var tf tokenFile
	if err := json.Unmarshal(data, &tf); err != nil {
		log.Fatalf("parsing token file: %v", err)
	}
	sub, err := ppcd.NewSubscriber(tf.Nym)
	if err != nil {
		log.Fatal(err)
	}
	commitment, err := hex.DecodeString(tf.Commitment)
	if err != nil {
		log.Fatal(err)
	}
	sigBytes, err := hex.DecodeString(tf.Sig)
	if err != nil {
		log.Fatal(err)
	}
	val, ok := new(big.Int).SetString(tf.Value, 10)
	if !ok {
		log.Fatal("bad value in token file")
	}
	blind, ok := new(big.Int).SetString(tf.Blinding, 10)
	if !ok {
		log.Fatal("bad blinding in token file")
	}
	tok := &ppcd.Token{Nym: tf.Nym, Tag: tf.Tag, Commitment: commitment, Sig: sigBytes}
	sec := &ppcd.TokenSecret{Value: val, Blinding: blind}
	if err := sub.AddToken(tok, sec); err != nil {
		log.Fatal(err)
	}
	return sub
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ppcd-sub <idmgr-init|idmgr-pubkey|issue|register|fetch|stream> [flags]")
	os.Exit(2)
}
