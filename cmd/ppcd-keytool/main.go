// Command ppcd-keytool inspects the cryptographic building blocks:
//
//	ppcd-keytool curve-info                 # paper curve parameters + self-check
//	ppcd-keytool commit -value 28           # produce a Pedersen commitment
//	ppcd-keytool verify -value 28 -blinding <r> -commitment <hex>
//	ppcd-keytool encode -value nurse        # attribute value → field element
//
// The -group flag selects schnorr (default) or jacobian.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"math/big"
	"os"

	"ppcd"
	"ppcd/internal/g2"
	"ppcd/internal/idtoken"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppcd-keytool: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	groupName := fs.String("group", "schnorr", "commitment group: schnorr or jacobian")
	value := fs.String("value", "", "attribute value (decimal integer or string)")
	blinding := fs.String("blinding", "", "blinding factor r (decimal)")
	commitment := fs.String("commitment", "", "commitment (hex)")
	seed := fs.String("seed", "ppcd-keytool", "parameter derivation seed")
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}

	grp := ppcd.SchnorrGroup()
	if *groupName == "jacobian" {
		grp = ppcd.PaperCurve()
	}

	switch cmd {
	case "curve-info":
		curveInfo()
	case "commit":
		params := setup(grp, *seed)
		if *value == "" {
			log.Fatal("commit requires -value")
		}
		x := idtoken.EncodeValue(params.Order(), *value)
		c, r, err := params.CommitRandom(x)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("group:      %s\n", grp.Name())
		fmt.Printf("encoded x:  %s\n", x)
		fmt.Printf("blinding r: %s\n", r)
		fmt.Printf("commitment: %s\n", hex.EncodeToString(params.G.Marshal(c)))
	case "verify":
		params := setup(grp, *seed)
		if *value == "" || *blinding == "" || *commitment == "" {
			log.Fatal("verify requires -value, -blinding and -commitment")
		}
		x := idtoken.EncodeValue(params.Order(), *value)
		r, ok := new(big.Int).SetString(*blinding, 10)
		if !ok {
			log.Fatal("bad blinding")
		}
		raw, err := hex.DecodeString(*commitment)
		if err != nil {
			log.Fatalf("bad commitment hex: %v", err)
		}
		c, err := params.G.Unmarshal(raw)
		if err != nil {
			log.Fatalf("commitment not a group element: %v", err)
		}
		if params.Verify(c, x, r) {
			fmt.Println("commitment opens correctly ✓")
		} else {
			fmt.Println("commitment does NOT open ✗")
			os.Exit(1)
		}
	case "encode":
		params := setup(grp, *seed)
		if *value == "" {
			log.Fatal("encode requires -value")
		}
		fmt.Printf("%s → %s (numeric: %v)\n", *value,
			idtoken.EncodeValue(params.Order(), *value), idtoken.IsNumeric(*value))
	default:
		usage()
	}
}

func setup(grp ppcd.Group, seed string) *ppcd.CommitmentParams {
	params, err := ppcd.Setup(grp, []byte(seed))
	if err != nil {
		log.Fatal(err)
	}
	return params
}

func curveInfo() {
	c := g2.MustPaperCurve()
	fmt.Println("genus-2 curve from the paper (Gaudry–Schost 2004):")
	fmt.Printf("  base field:  F_q, q = %s (%d bits)\n", c.BaseField().P(), c.BaseField().Bits())
	fmt.Printf("  jacobian order p = %s (%d bits, prime)\n", c.Order(), c.Order().BitLen())
	fmt.Printf("  generator:   %s\n", c.Generator())
	gp := c.Exp(c.Generator(), c.Order())
	fmt.Printf("  self-check g^p == identity: %v\n", c.IsIdentity(gp))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ppcd-keytool <curve-info|commit|verify|encode> [flags]")
	os.Exit(2)
}
