// Command ppcd-lint runs the repo's custom static-analysis suite
// (internal/analysis) over the given package patterns — the machine-checked
// form of the invariants that keep the system sound: the pubsub lock order,
// the bounded-decode discipline, crypto-randomness hygiene, the
// //ppcd:hotpath allocation rules, and store fsync error handling.
//
// Usage:
//
//	go run ./cmd/ppcd-lint ./...          # whole repo (what CI runs)
//	go run ./cmd/ppcd-lint ./internal/store
//	go run ./cmd/ppcd-lint -only lockorder ./internal/pubsub
//
// Exits 1 when any analyzer reports a finding, 2 on loading failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ppcd/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ppcd-lint [-only names] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ppcd-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppcd-lint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadPatterns(cwd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppcd-lint:", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range suite {
			if !a.Applies(pkg.ImportPath) {
				continue
			}
			pass := pkg.NewPass(a, true)
			if len(pass.Checked) == 0 {
				continue
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "ppcd-lint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ppcd-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
