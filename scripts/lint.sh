#!/usr/bin/env bash
# Run the full static-analysis gauntlet locally: go vet, the repo's own
# analyzer suite (cmd/ppcd-lint), and — when the module proxy is reachable —
# the same pinned third-party linters CI enforces. Offline checkouts skip
# the third-party tools with a notice instead of failing, so the script
# stays usable air-gapped; CI always runs them.
set -euo pipefail
cd "$(dirname "$0")/.."

STATICCHECK=honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK=golang.org/x/vuln/cmd/govulncheck@v1.1.4

echo "== go vet"
go vet ./...

echo "== ppcd-lint"
go run ./cmd/ppcd-lint ./...

if go run "$STATICCHECK" -version >/dev/null 2>&1; then
    echo "== staticcheck"
    go run "$STATICCHECK" ./...
else
    echo "== staticcheck skipped: $STATICCHECK not fetchable here (CI enforces it)"
fi

if go run "$GOVULNCHECK" -version >/dev/null 2>&1; then
    echo "== govulncheck"
    go run "$GOVULNCHECK" ./...
else
    echo "== govulncheck skipped: $GOVULNCHECK not fetchable here (CI enforces it)"
fi

echo "== clean"
