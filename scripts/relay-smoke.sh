#!/usr/bin/env bash
# Relay smoke: the stateless fan-out edge end to end, across real processes.
#
#   ppcd-pub (origin) ← ppcd-relay ← ppcd-sub (register + stream, both
#   against the RELAY address only) → publish decrypts through the edge →
#   SIGKILL the relay mid-churn → the origin publishes into the dark →
#   restart the relay → it re-subscribes upstream, catches up, and the
#   subscriber's auto-reconnect recovers the missed epoch through the
#   restarted edge. The subscriber never touches the origin address.
#
# Run from the repository root; CI invokes it after the unit suites.
set -euo pipefail

BIN=$(mktemp -d)
WORK=$(mktemp -d)
cleanup() {
	# shellcheck disable=SC2046 — one PID per word is the point
	kill $(jobs -p) 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/ppcd-pub ./cmd/ppcd-sub ./cmd/ppcd-relay

cd "$WORK"
ORIGIN=127.0.0.1:7471
RELAY=127.0.0.1:7472

"$BIN/ppcd-sub" idmgr-init -idmgr-seed-file idmgr.seed >/dev/null
KEY=$("$BIN/ppcd-sub" idmgr-pubkey -idmgr-seed-file idmgr.seed)
"$BIN/ppcd-sub" issue -idmgr-seed-file idmgr.seed -nym pn-1 -tag age -value 30 -out token.json

cat > policies.txt <<'POL'
adult | age >= 18 | news.xml | body
POL
printf '<news><body>first edition</body></news>' > news1.xml
printf '<news><body>second edition</body></news>' > news2.xml

wait_for() { # <shell predicate> <timeout seconds>
	local t=0
	until eval "$1"; do
		t=$((t + 1))
		if [ "$t" -gt "$2" ]; then
			echo "timeout waiting for: $1" >&2
			tail -n 50 ./*.log >&2 || true
			return 1
		fi
		sleep 1
	done
}

mkfifo cmds
"$BIN/ppcd-pub" -addr "$ORIGIN" -policies policies.txt -idmgr-key "$KEY" \
	-group-size 2 <cmds >pub.log 2>&1 &
exec {FIFO_FD}>cmds # keep a writer open so the publisher's stdin stays live
wait_for "grep -q 'serving registrations' pub.log" 30

start_relay() { # <logfile>
	"$BIN/ppcd-relay" -addr "$RELAY" -upstream "$ORIGIN" \
		-reconnect-delay 200ms >"$1" 2>&1 &
	RELAY_PID=$!
	wait_for "grep -q 'relaying' $1" 30
}
start_relay relay1.log

# Registration proxies through the edge to the origin; the stream is served
# from the edge's own retention ring.
"$BIN/ppcd-sub" register -addr "$RELAY" -token token.json
"$BIN/ppcd-sub" stream -addr "$RELAY" -token token.json -outdir plain >sub.log 2>&1 &

cp news1.xml news.xml
echo "publish news.xml body" >&"$FIFO_FD"
wait_for "test -f plain/body.dec" 30
grep -q 'first edition' plain/body.dec
grep -q 'relay for origin' sub.log # the client knows it sits on an edge

# SIGKILL mid-churn: no clean shutdown, every downstream conn just dies,
# and the origin publishes the next edition while the edge is dark.
kill -9 "$RELAY_PID"
wait "$RELAY_PID" 2>/dev/null || true
cp news2.xml news.xml
echo "publish news.xml body" >&"$FIFO_FD"
sleep 1

# A fresh relay on the same address: it re-subscribes to the origin with no
# retained state (a stateless edge restarts from nothing), receives the
# current snapshot, and the subscriber's reconnect loop finds it.
start_relay relay2.log
wait_for "grep -q 'second edition' plain/body.dec 2>/dev/null" 40

grep -q 'reconnecting' sub.log          # the stream did drop…
grep -q 'epoch 2 of' sub.log            # …and recovered the missed epoch
grep -q 'snapshots' relay2.log 2>/dev/null || true

echo "relay smoke OK"
