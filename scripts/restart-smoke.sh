#!/usr/bin/env bash
# Restart smoke: durable publisher state end to end, across real processes.
#
#   ppcd-pub -state-dir … publishes → SIGTERM (final snapshot) → warm
#   restart → the ppcd-sub stream client that survived the restart catches
#   up with a DELTA (never a re-snapshot) and the first post-restart publish
#   re-solves nothing.
#
# A third phase hard-crashes the publisher (SIGKILL, no final snapshot) and
# plants the wreckage of a snapshot interrupted between segment writes —
# orphan seg-*.ppcd files and a manifest.ppcd.tmp — before restarting: the
# manifest swap is atomic, so the previous manifest + WAL tail must still
# recover cleanly and the debris must be garbage-collected.
#
# Run from the repository root; CI invokes it after the unit suites.
set -euo pipefail

BIN=$(mktemp -d)
WORK=$(mktemp -d)
cleanup() {
	# shellcheck disable=SC2046 — one PID per word is the point
	kill $(jobs -p) 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/ppcd-pub ./cmd/ppcd-sub

cd "$WORK"
ADDR=127.0.0.1:7469

"$BIN/ppcd-sub" idmgr-init -idmgr-seed-file idmgr.seed >/dev/null
KEY=$("$BIN/ppcd-sub" idmgr-pubkey -idmgr-seed-file idmgr.seed)
"$BIN/ppcd-sub" issue -idmgr-seed-file idmgr.seed -nym pn-1 -tag age -value 30 -out token.json

cat > policies.txt <<'POL'
adult | age >= 18 | news.xml | body
POL
printf '<news><body>first edition</body></news>' > news1.xml
printf '<news><body>second edition</body></news>' > news2.xml
printf '<news><body>third edition</body></news>' > news3.xml

wait_for() { # <shell predicate> <timeout seconds>
	local t=0
	until eval "$1"; do
		t=$((t + 1))
		if [ "$t" -gt "$2" ]; then
			echo "timeout waiting for: $1" >&2
			tail -n 50 ./*.log >&2 || true
			return 1
		fi
		sleep 1
	done
}

start_pub() { # <logfile> <command fifo>
	mkfifo "$2"
	"$BIN/ppcd-pub" -addr "$ADDR" -policies policies.txt -idmgr-key "$KEY" \
		-state-dir state -group-size 2 -snapshot-every 1h -snapshot-wal-records 10000 <"$2" >"$1" 2>&1 &
	PUB_PID=$!
	exec {FIFO_FD}>"$2" # keep a writer open so the publisher's stdin stays live
	wait_for "grep -q 'serving registrations' $1" 30
}

start_pub pub1.log cmds1
"$BIN/ppcd-sub" register -addr "$ADDR" -token token.json
"$BIN/ppcd-sub" stream -addr "$ADDR" -token token.json -outdir plain >sub.log 2>&1 &

cp news1.xml news.xml
echo "publish news.xml body" >&"$FIFO_FD"
wait_for "test -f plain/body.dec" 30
grep -q 'first edition' plain/body.dec
grep -q 'applied snapshot' sub.log # cold subscriber: one snapshot, as expected

# SIGTERM: the publisher snapshots its state (table, epoch, generation,
# caches, diff bases) and exits cleanly.
kill -TERM "$PUB_PID"
wait "$PUB_PID" || true
exec {FIFO_FD}>&-

# Warm restart over the same state directory.
start_pub pub2.log cmds2
grep -q 'recovered 1 subscribers' pub2.log

cp news2.xml news.xml
echo "publish news.xml body" >&"$FIFO_FD"
wait_for "grep -q 'second edition' plain/body.dec 2>/dev/null" 40

# The surviving stream client crossed the restart on a delta at the resumed
# epoch (2 — numbering continued), never re-downloading a snapshot.
grep -q 'epoch 2 of "news.xml": applied delta' sub.log
if [ "$(grep -c 'applied snapshot' sub.log)" != 1 ]; then
	echo "subscriber re-snapshotted across the restart:" >&2
	cat sub.log >&2
	exit 1
fi
# And the restored caches made the post-restart publish a zero-rekey one.
grep -q '(0 rekeyed' pub2.log

# Hard crash: SIGKILL — the epoch-2 publish lives only in the WAL (fsynced
# before it took effect), no final snapshot is written.
kill -KILL "$PUB_PID"
wait "$PUB_PID" || true
exec {FIFO_FD}>&-
test -f state/manifest.ppcd # the SIGTERM shutdown left a segmented snapshot

# Plant the wreckage of a snapshot that died between segment writes: sealed-
# looking orphan segment files the manifest never came to reference, plus a
# torn manifest.ppcd.tmp that never got renamed. The manifest swap is atomic,
# so none of this may confuse recovery — and all of it must be swept.
printf 'torn segment write' > state/seg-t0-00000000deadbeef.ppcd
printf 'torn segment write' > state/seg-c0-00000000deadbeef.ppcd
printf 'torn manifest write' > state/manifest.ppcd.tmp

start_pub pub3.log cmds3
grep -q 'recovered 1 subscribers' pub3.log
# The epoch-2 publish came back off the WAL tail, not the snapshot.
grep -Eq '[1-9][0-9]* WAL events replayed' pub3.log
# The interrupted-snapshot debris is gone; the manifest survived the crash.
test ! -e state/manifest.ppcd.tmp
test ! -e state/seg-t0-00000000deadbeef.ppcd
test ! -e state/seg-c0-00000000deadbeef.ppcd
test -f state/manifest.ppcd

cp news3.xml news.xml
echo "publish news.xml body" >&"$FIFO_FD"
wait_for "grep -q 'third edition' plain/body.dec 2>/dev/null" 40
# Epoch numbering continued across the hard crash, and the next publish
# reaches the surviving client as a delta again. The crash itself costs the
# client one re-snapshot — the epoch-2 diff base died unsnapshotted with the
# process (the WAL holds the event, not the broadcast) — so the full run
# shows exactly two: the cold subscribe and the hard-crash recovery.
grep -q 'epoch 3 of "news.xml": applied delta' sub.log
if [ "$(grep -c 'applied snapshot' sub.log)" != 2 ]; then
	echo "unexpected snapshot count across the hard crash:" >&2
	cat sub.log >&2
	exit 1
fi
grep -q '(0 rekeyed' pub3.log

echo "restart smoke OK"
