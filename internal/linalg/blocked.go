package linalg

import (
	"errors"
	"fmt"

	"ppcd/internal/ff64"
)

// This file is the blocked, cache-aware elimination path behind the rekey
// engine's null-space solves. The reference path (linalg.go) is textbook
// Gauss–Jordan to reduced row-echelon form: for an n×n shard it makes n
// passes over the whole matrix, so past L2-sized shards every pass streams
// from memory, and every inner multiply pays a full 128-bit modular
// reduction. The blocked path restructures the same elimination as a panel
// factorization:
//
//   - Pivoting and elimination run within a narrow panel of panelWidth
//     columns (hot in cache), producing the panel's pivots and storing each
//     row's NEGATED multipliers in place below the pivots.
//   - The trailing columns then receive all of the panel's rank-1 updates in
//     one sweep per row: products accumulate into 128-bit (hi,lo) pairs
//     (ff64.VecMulAcc) and are reduced ONCE per element per panel instead of
//     once per multiply. panelWidth ≤ ff64.MaxVecMulAcc keeps the
//     accumulators from overflowing.
//
// The result is an (unnormalized) row-echelon form rather than RREF; kernel
// sampling substitutes back from the last pivot upward, which costs
// O(n·rank) per sample instead of folding the elimination work of a full
// Gauss–Jordan. Forward work drops from ~n³/2 fused multiply-reduces to
// ~n³/3 multiply-accumulates, and the matrix is streamed once per panel
// instead of once per pivot. Pivot columns — and therefore the sampled
// kernel distribution — are identical to the reference path: for a fixed
// free-column coefficient vector both parameterizations determine the same
// unique kernel element, which is what the differential tests pin.

// panelWidth is the panel (block) width of the factorization. It must stay
// ≤ ff64.MaxVecMulAcc so a panel's delayed-reduction accumulators cannot
// overflow; 32 keeps a comfortable margin while the panel (32 columns × 8
// bytes) stays resident in L1 alongside the source row.
const panelWidth = 32

// Workspace holds the reusable scratch of the blocked path: the 128-bit
// accumulator arrays, pivot/free bookkeeping, and an optional matrix backing
// for callers that assemble a throwaway system per solve. A Workspace is
// owned by one goroutine at a time (the engine keeps one per pool worker);
// the zero value is ready to use.
type Workspace struct {
	lo, hi []uint64
	pivots []int
	free   []int
	invs   []ff64.Elem

	matData []ff64.Elem
	mat     Matrix
}

// NewWorkspace returns an empty workspace. Buffers grow on first use and are
// reused across solves.
func NewWorkspace() *Workspace { return &Workspace{} }

// Matrix returns a zeroed rows×cols matrix backed by the workspace's
// reusable buffer. The matrix is valid until the next Matrix call on the
// same workspace; it is meant for assemble-factorize-sample cycles that
// would otherwise allocate a fresh system per solve.
func (ws *Workspace) Matrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	n := rows * cols
	if cap(ws.matData) < n {
		ws.matData = make([]ff64.Elem, n)
	}
	data := ws.matData[:n]
	clear(data)
	ws.mat = Matrix{Rows: rows, Cols: cols, data: data}
	return &ws.mat
}

func (ws *Workspace) accumulators(n int) (hi, lo []uint64) {
	if cap(ws.lo) < n {
		ws.lo = make([]uint64, n)
		ws.hi = make([]uint64, n)
	}
	return ws.hi[:n], ws.lo[:n]
}

// blockedEchelon reduces m in place to unnormalized row-echelon form with
// panel factorization and returns the pivot column of each pivot row in
// order. Entries below a pivot (within its panel's columns) are left holding
// the negated elimination multipliers — dead storage for readers of the
// echelon form, which only ever look at row r from its own pivot column
// rightward. The returned slice is workspace-owned and valid until the next
// factorization through the same workspace.
//
//ppcd:hotpath
func (m *Matrix) blockedEchelon(ws *Workspace) []int {
	rows, cols := m.Rows, m.Cols
	ws.pivots = ws.pivots[:0]
	r := 0
	for c0 := 0; c0 < cols && r < rows; c0 += panelWidth {
		c1 := c0 + panelWidth
		if c1 > cols {
			c1 = cols
		}
		panelStart := r

		// Panel factorization: full elimination restricted to the panel's
		// columns. Multipliers land in place below each pivot.
		for c := c0; c < c1 && r < rows; c++ {
			p := -1
			for i := r; i < rows; i++ {
				if m.data[i*cols+c] != ff64.Zero {
					p = i
					break
				}
			}
			if p < 0 {
				continue
			}
			m.swapRows(p, r)
			inv := ff64.MustInv(m.data[r*cols+c])
			src := m.data[r*cols+c+1 : r*cols+c1]
			for i := r + 1; i < rows; i++ {
				ri := m.data[i*cols : i*cols+c1]
				f := ri[c]
				if f == ff64.Zero {
					continue
				}
				nf := ff64.Neg(ff64.Mul(f, inv))
				ri[c] = nf
				for k, sv := range src {
					ri[c+1+k] = ff64.MulAdd(ri[c+1+k], nf, sv)
				}
			}
			ws.pivots = append(ws.pivots, c)
			r++
		}

		npiv := r - panelStart
		if npiv == 0 || c1 >= cols {
			continue
		}

		// Trailing update: each row absorbs the panel's rank-1 updates with
		// one delayed-reduction sweep, the sources batched four at a time so
		// each accumulator element is loaded once per four multiplies. A row
		// inside the panel block only takes updates from pivots above it;
		// rows below take all npiv.
		hi, lo := ws.accumulators(cols - c1)
		pcols := ws.pivots[len(ws.pivots)-npiv:]
		var fs [panelWidth]ff64.Elem
		var srcs [panelWidth][]ff64.Elem
		for i := panelStart + 1; i < rows; i++ {
			nj := npiv
			if i < panelStart+npiv {
				nj = i - panelStart
			}
			cnt := 0
			for j := 0; j < nj; j++ {
				if f := m.data[i*cols+pcols[j]]; f != ff64.Zero {
					fs[cnt] = f
					srcs[cnt] = m.data[(panelStart+j)*cols+c1 : (panelStart+j+1)*cols]
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			row := m.data[i*cols+c1 : (i+1)*cols]
			ff64.VecLoad(hi, lo, row)
			j := 0
			for ; j+4 <= cnt; j += 4 {
				ff64.VecMulAcc4(hi, lo, fs[j], fs[j+1], fs[j+2], fs[j+3], srcs[j], srcs[j+1], srcs[j+2], srcs[j+3])
			}
			for ; j < cnt; j++ {
				ff64.VecMulAcc(hi, lo, fs[j], srcs[j])
			}
			ff64.VecReduce(row, hi, lo)
		}
	}
	return ws.pivots
}

// KernelSampler draws independent random kernel elements of a matrix
// factorized once through Workspace.Factorize. Its bookkeeping lives in the
// workspace, so a later Factorize through the same workspace invalidates it.
type KernelSampler struct {
	m  *Matrix
	ws *Workspace
}

// Factorize reduces m (in place, destroying its contents) with the blocked
// elimination and returns a sampler for its null space. It fails with
// ErrTrivialKernel when the null space is {0}.
func (ws *Workspace) Factorize(m *Matrix) (*KernelSampler, error) {
	pivots := m.blockedEchelon(ws)
	if len(pivots) == m.Cols {
		return nil, ErrTrivialKernel
	}
	ws.free = ws.free[:0]
	next := 0
	for c := 0; c < m.Cols; c++ {
		if next < len(pivots) && pivots[next] == c {
			next++
			continue
		}
		ws.free = append(ws.free, c)
	}
	ws.invs = ws.invs[:0]
	for r, c := range pivots {
		ws.invs = append(ws.invs, ff64.MustInv(m.data[r*m.Cols+c]))
	}
	return &KernelSampler{m: m, ws: ws}, nil
}

// SampleInPlace fills out with a fresh uniformly random non-zero element of
// the kernel: free coordinates are drawn uniformly, pivot coordinates follow
// by back-substitution from the last pivot row upward. This is the same
// kernel-space parameterization the reference RREF path samples from, at
// O(n·rank) per draw with zero allocations.
func (s *KernelSampler) SampleInPlace(out Vector) error {
	m, ws := s.m, s.ws
	cols := m.Cols
	if len(out) != cols {
		return fmt.Errorf("linalg: sample buffer of length %d for %d columns", len(out), cols)
	}
	for attempt := 0; attempt < 64; attempt++ {
		nonzero := false
		for _, fc := range ws.free {
			c, err := ff64.Rand()
			if err != nil {
				return err
			}
			out[fc] = c
			if c != ff64.Zero {
				nonzero = true
			}
		}
		if !nonzero {
			// All-zero coefficients give the zero vector (the pivot part is
			// the unique solution for the free part); resample.
			continue
		}
		for r := len(ws.pivots) - 1; r >= 0; r-- {
			pc := ws.pivots[r]
			row := m.data[r*cols+pc+1 : (r+1)*cols]
			var acc ff64.Elem
			for k, rv := range row {
				if rv != ff64.Zero {
					acc = ff64.MulAdd(acc, rv, out[pc+1+k])
				}
			}
			out[pc] = ff64.Mul(ff64.Neg(acc), ws.invs[r])
		}
		return nil
	}
	return errors.New("linalg: failed to sample non-zero kernel vector")
}

// Rank returns the factorized matrix's rank.
func (s *KernelSampler) Rank() int { return len(s.ws.pivots) }

// FreeCount returns the kernel dimension (columns − rank).
func (s *KernelSampler) FreeCount() int { return len(s.ws.free) }

// RandomKernelVectorBlocked is the blocked counterpart of
// RandomKernelVectorInPlace: it factorizes m in place (destroying its
// contents) and returns one fresh random non-zero kernel element. The
// workspace carries all scratch; repeated solves through one workspace
// allocate only the returned vector.
func (m *Matrix) RandomKernelVectorBlocked(ws *Workspace) (Vector, error) {
	s, err := ws.Factorize(m)
	if err != nil {
		return nil, err
	}
	out := NewVector(m.Cols)
	if err := s.SampleInPlace(out); err != nil {
		return nil, err
	}
	return out, nil
}
