package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppcd/internal/ff64"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, ff64.New(rng.Uint64()))
		}
	}
	return m
}

func TestVectorDot(t *testing.T) {
	v := Vector{ff64.New(1), ff64.New(2), ff64.New(3)}
	w := Vector{ff64.New(4), ff64.New(5), ff64.New(6)}
	d, err := v.Dot(w)
	if err != nil {
		t.Fatal(err)
	}
	if d != ff64.New(32) {
		t.Errorf("dot = %v, want 32", d)
	}
	if _, err := v.Dot(Vector{ff64.One}); err == nil {
		t.Error("mismatched dot should fail")
	}
}

func TestVectorAddScale(t *testing.T) {
	v := Vector{ff64.New(1), ff64.New(2)}
	w := Vector{ff64.New(10), ff64.New(20)}
	s, err := v.Add(w)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != ff64.New(11) || s[1] != ff64.New(22) {
		t.Errorf("add = %v", s)
	}
	sc := v.Scale(ff64.New(3))
	if sc[0] != ff64.New(3) || sc[1] != ff64.New(6) {
		t.Errorf("scale = %v", sc)
	}
	if _, err := v.Add(Vector{ff64.One}); err == nil {
		t.Error("mismatched add should fail")
	}
}

func TestVectorIsZeroClone(t *testing.T) {
	v := NewVector(3)
	if !v.IsZero() {
		t.Error("zero vector not zero")
	}
	v[1] = ff64.One
	if v.IsZero() {
		t.Error("non-zero vector reported zero")
	}
	c := v.Clone()
	c[1] = ff64.Zero
	if v[1] != ff64.One {
		t.Error("clone aliases original")
	}
}

func TestMatrixSetRowErrors(t *testing.T) {
	m := NewMatrix(2, 3)
	if err := m.SetRow(0, Vector{ff64.One}); err == nil {
		t.Error("wrong-length SetRow should fail")
	}
	if err := m.SetRow(0, Vector{ff64.One, ff64.New(2), ff64.New(3)}); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != ff64.New(2) {
		t.Error("SetRow did not write")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, ff64.New(1))
	m.Set(0, 1, ff64.New(2))
	m.Set(1, 0, ff64.New(3))
	m.Set(1, 1, ff64.New(4))
	v := Vector{ff64.New(5), ff64.New(6)}
	out, err := m.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != ff64.New(17) || out[1] != ff64.New(39) {
		t.Errorf("MulVec = %v", out)
	}
	if _, err := m.MulVec(Vector{ff64.One}); err == nil {
		t.Error("mismatched MulVec should fail")
	}
}

func TestRankIdentity(t *testing.T) {
	n := 5
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, ff64.One)
	}
	if r := m.Rank(); r != n {
		t.Errorf("rank of identity = %d, want %d", r, n)
	}
	if ker := m.Kernel(); len(ker) != 0 {
		t.Errorf("identity kernel dim = %d, want 0", len(ker))
	}
}

func TestRankZeroMatrix(t *testing.T) {
	m := NewMatrix(3, 4)
	if r := m.Rank(); r != 0 {
		t.Errorf("rank of zero = %d", r)
	}
	if ker := m.Kernel(); len(ker) != 4 {
		t.Errorf("zero-matrix kernel dim = %d, want 4", len(ker))
	}
}

func TestKernelVectorsAnnihilate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(8)
		cols := rows + 1 + rng.Intn(5)
		m := randMatrix(rng, rows, cols)
		ker := m.Kernel()
		if len(ker) < cols-rows {
			t.Fatalf("kernel dim %d < %d", len(ker), cols-rows)
		}
		for _, v := range ker {
			prod, err := m.MulVec(v)
			if err != nil {
				t.Fatal(err)
			}
			if !prod.IsZero() {
				t.Fatalf("kernel vector does not annihilate: %v", prod)
			}
		}
	}
}

func TestKernelDimensionTheorem(t *testing.T) {
	// rank + nullity = cols, as a property over random shapes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(8)
		m := randMatrix(rng, rows, cols)
		return m.Rank()+len(m.Kernel()) == cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomKernelVector(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := randMatrix(rng, 4, 8)
	v, err := m.RandomKernelVector()
	if err != nil {
		t.Fatal(err)
	}
	if v.IsZero() {
		t.Fatal("sampled zero vector")
	}
	prod, err := m.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.IsZero() {
		t.Fatal("random kernel vector not in kernel")
	}
}

func TestRandomKernelVectorTrivial(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, ff64.One)
	m.Set(1, 1, ff64.One)
	if _, err := m.RandomKernelVector(); err != ErrTrivialKernel {
		t.Errorf("expected ErrTrivialKernel, got %v", err)
	}
}

func TestRREFIdempotentViaRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMatrix(rng, 6, 6)
	r1 := m.Rank()
	r2 := m.Rank() // Rank clones internally; must be stable.
	if r1 != r2 {
		t.Errorf("rank unstable: %d then %d", r1, r2)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, ff64.New(5))
	c := m.Clone()
	c.Set(0, 0, ff64.New(9))
	if m.At(0, 0) != ff64.New(5) {
		t.Error("clone aliases original matrix")
	}
}

func TestSingularSquareKernel(t *testing.T) {
	// Rows are linearly dependent: row1 = 2*row0.
	m := NewMatrix(2, 3)
	m.SetRow(0, Vector{ff64.New(1), ff64.New(2), ff64.New(3)})
	m.SetRow(1, Vector{ff64.New(2), ff64.New(4), ff64.New(6)})
	if r := m.Rank(); r != 1 {
		t.Errorf("rank = %d, want 1", r)
	}
	if k := len(m.Kernel()); k != 2 {
		t.Errorf("nullity = %d, want 2", k)
	}
}

func BenchmarkKernel100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 100, 101)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Kernel()
	}
}

func TestRandomKernelVectorInPlaceMatchesKernel(t *testing.T) {
	// The in-place sampler must produce vectors in the same null space as
	// the basis-materializing path, without touching the original matrix.
	m := NewMatrix(3, 6)
	vals := []uint64{
		1, 2, 3, 4, 5, 6,
		7, 8, 9, 10, 11, 12,
		1, 1, 1, 1, 1, 1,
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, ff64.New(vals[i*6+j]))
		}
	}
	orig := m.Clone()
	for trial := 0; trial < 8; trial++ {
		v, err := orig.Clone().RandomKernelVectorInPlace()
		if err != nil {
			t.Fatal(err)
		}
		if v.IsZero() {
			t.Fatal("sampled zero vector")
		}
		prod, err := orig.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		if !prod.IsZero() {
			t.Fatalf("trial %d: sampled vector not in kernel: %v", trial, prod)
		}
	}
	// RandomKernelVector (the cloning wrapper) leaves its receiver intact.
	if _, err := m.RandomKernelVector(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			if m.At(i, j) != orig.At(i, j) {
				t.Fatal("RandomKernelVector modified the matrix")
			}
		}
	}
}

func TestRandomKernelVectorInPlaceTrivial(t *testing.T) {
	// Full-rank square matrix → trivial kernel.
	m := NewMatrix(2, 2)
	m.Set(0, 0, ff64.One)
	m.Set(1, 1, ff64.One)
	if _, err := m.RandomKernelVectorInPlace(); err != ErrTrivialKernel {
		t.Fatalf("expected ErrTrivialKernel, got %v", err)
	}
}
