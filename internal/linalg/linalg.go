// Package linalg implements dense linear algebra over the GKM field F_q
// (package ff64). The publisher uses it to compute access control vectors:
// random non-trivial elements of the null space of the subscriber matrix A
// (paper §V-C). The implementation mirrors the paper's use of NTL's kernel()
// routine: Gauss–Jordan elimination to reduced row-echelon form, a null-space
// basis read off the free columns, and a random linear combination of basis
// vectors.
package linalg

import (
	"errors"
	"fmt"

	"ppcd/internal/ff64"
)

// Vector is a dense vector over F_q.
type Vector []ff64.Elem

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Dot returns the inner product v·w. The two vectors must have equal length.
func (v Vector) Dot(w Vector) (ff64.Elem, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("linalg: dot of length %d with length %d", len(v), len(w))
	}
	var acc ff64.Elem
	for i := range v {
		acc = ff64.MulAdd(acc, v[i], w[i])
	}
	return acc, nil
}

// Add returns v + w elementwise.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("linalg: add of length %d with length %d", len(v), len(w))
	}
	out := NewVector(len(v))
	for i := range v {
		out[i] = ff64.Add(v[i], w[i])
	}
	return out, nil
}

// Scale returns c·v.
func (v Vector) Scale(c ff64.Elem) Vector {
	out := NewVector(len(v))
	for i := range v {
		out[i] = ff64.Mul(c, v[i])
	}
	return out
}

// AddInPlace adds w into v elementwise without allocating. The hot-path
// variant of Add for callers that own v (engine solve loops, kernel
// sampling); the two vectors must have equal length.
func (v Vector) AddInPlace(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("linalg: add of length %d with length %d", len(v), len(w))
	}
	for i := range v {
		v[i] = ff64.Add(v[i], w[i])
	}
	return nil
}

// ScaleInPlace multiplies v by c without allocating.
func (v Vector) ScaleInPlace(c ff64.Elem) {
	for i := range v {
		v[i] = ff64.Mul(c, v[i])
	}
}

// IsZero reports whether every entry is zero.
func (v Vector) IsZero() bool {
	for _, e := range v {
		if e != ff64.Zero {
			return false
		}
	}
	return true
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := NewVector(len(v))
	copy(out, v)
	return out
}

// Matrix is a dense row-major matrix over F_q.
type Matrix struct {
	Rows, Cols int
	data       []ff64.Elem
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]ff64.Elem, rows*cols)}
}

// At returns the entry at (i, j).
func (m *Matrix) At(i, j int) ff64.Elem { return m.data[i*m.Cols+j] }

// Set assigns the entry at (i, j).
func (m *Matrix) Set(i, j int, v ff64.Elem) { m.data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.data[i*m.Cols : (i+1)*m.Cols]) }

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v Vector) error {
	if len(v) != m.Cols {
		return fmt.Errorf("linalg: row length %d != %d columns", len(v), m.Cols)
	}
	copy(m.data[i*m.Cols:(i+1)*m.Cols], v)
	return nil
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.data, m.data)
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if len(v) != m.Cols {
		return nil, fmt.Errorf("linalg: matrix has %d cols, vector has %d entries", m.Cols, len(v))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		d, _ := m.Row(i).Dot(v)
		out[i] = d
	}
	return out, nil
}

// rref reduces m in place to reduced row-echelon form and returns the pivot
// column of each pivot row, in order.
func (m *Matrix) rref() []int {
	pivots := make([]int, 0, min(m.Rows, m.Cols))
	r := 0
	for c := 0; c < m.Cols && r < m.Rows; c++ {
		// Find a pivot in column c at or below row r.
		p := -1
		for i := r; i < m.Rows; i++ {
			if m.At(i, c) != ff64.Zero {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		m.swapRows(p, r)
		// Normalise the pivot row.
		inv := ff64.MustInv(m.At(r, c))
		m.scaleRowFrom(r, c, inv)
		// Eliminate the column everywhere else.
		for i := 0; i < m.Rows; i++ {
			if i == r {
				continue
			}
			f := m.At(i, c)
			if f == ff64.Zero {
				continue
			}
			m.addScaledRowFrom(i, r, c, ff64.Neg(f))
		}
		pivots = append(pivots, c)
		r++
	}
	return pivots
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.data[i*m.Cols : (i+1)*m.Cols]
	rj := m.data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// scaleRowFrom multiplies row i by c, starting at column from (earlier
// columns are known to be zero).
func (m *Matrix) scaleRowFrom(i, from int, c ff64.Elem) {
	row := m.data[i*m.Cols : (i+1)*m.Cols]
	for k := from; k < len(row); k++ {
		row[k] = ff64.Mul(row[k], c)
	}
}

// addScaledRowFrom adds c·row[src] to row[dst], starting at column from.
func (m *Matrix) addScaledRowFrom(dst, src, from int, c ff64.Elem) {
	rd := m.data[dst*m.Cols : (dst+1)*m.Cols]
	rs := m.data[src*m.Cols : (src+1)*m.Cols]
	for k := from; k < len(rd); k++ {
		rd[k] = ff64.MulAdd(rd[k], c, rs[k])
	}
}

// Rank returns the rank of m (m is not modified).
func (m *Matrix) Rank() int {
	c := m.Clone()
	return len(c.rref())
}

// Kernel returns a basis of the right null space of m, i.e. vectors v with
// m·v = 0. The basis has Cols - rank(m) vectors. m is not modified.
func (m *Matrix) Kernel() []Vector {
	work := m.Clone()
	pivots := work.rref()
	isPivot := make([]bool, m.Cols)
	pivotRowOfCol := make(map[int]int, len(pivots))
	for r, c := range pivots {
		isPivot[c] = true
		pivotRowOfCol[c] = r
	}
	basis := make([]Vector, 0, m.Cols-len(pivots))
	for free := 0; free < m.Cols; free++ {
		if isPivot[free] {
			continue
		}
		v := NewVector(m.Cols)
		v[free] = ff64.One
		// For each pivot column c with pivot row r: entry = -work[r][free].
		for _, c := range pivots {
			r := pivotRowOfCol[c]
			v[c] = ff64.Neg(work.At(r, free))
		}
		basis = append(basis, v)
	}
	return basis
}

// ErrTrivialKernel is returned by RandomKernelVector when the null space of
// the matrix is {0}, which means the publisher chose N too small (paper
// eq. (1) requires N >= number of rows).
var ErrTrivialKernel = errors.New("linalg: matrix has trivial null space")

// RandomKernelVector returns a uniformly random element of the null space of
// m, retrying until the sample is non-zero. This matches the paper's ACV
// construction: "choosing the ACV as a random linear combination of the
// basis vectors." m is not modified.
func (m *Matrix) RandomKernelVector() (Vector, error) {
	return m.Clone().RandomKernelVectorInPlace()
}

// RandomKernelVectorInPlace is the allocation-lean fast path behind
// RandomKernelVector: it reduces m in place (destroying its contents) and
// samples the random basis combination directly off the reduced form without
// materializing the basis vectors. For a free-column coefficient vector c the
// sample is out[free_f] = c_f and out[pivot_r] = -Σ_f c_f·R[r][free_f], which
// is exactly the random linear combination of the Kernel basis. Callers that
// assemble a throwaway matrix per solve (the publisher's rekey engine) skip
// one full matrix copy per configuration this way.
func (m *Matrix) RandomKernelVectorInPlace() (Vector, error) {
	pivots := m.rref()
	free := make([]int, 0, m.Cols-len(pivots))
	isPivot := make([]bool, m.Cols)
	for _, c := range pivots {
		isPivot[c] = true
	}
	for c := 0; c < m.Cols; c++ {
		if !isPivot[c] {
			free = append(free, c)
		}
	}
	if len(free) == 0 {
		return nil, ErrTrivialKernel
	}
	// Every entry of out is overwritten on each attempt (pivot and free
	// columns partition the column set), so both buffers are allocated once
	// outside the retry loop.
	out := NewVector(m.Cols)
	coeffs := make([]ff64.Elem, len(free))
	for attempt := 0; attempt < 64; attempt++ {
		for i := range coeffs {
			c, err := ff64.Rand()
			if err != nil {
				return nil, err
			}
			coeffs[i] = c
			out[free[i]] = c
		}
		for r, pc := range pivots {
			var acc ff64.Elem
			for i, fc := range free {
				acc = ff64.MulAdd(acc, coeffs[i], m.At(r, fc))
			}
			out[pc] = ff64.Neg(acc)
		}
		if !out.IsZero() {
			return out, nil
		}
	}
	return nil, errors.New("linalg: failed to sample non-zero kernel vector")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
