package linalg

import (
	"testing"

	"ppcd/internal/ff64"
)

// randMatrix fills a rows×cols matrix with uniform entries.
func cryptoRandMatrix(t testing.TB, rows, cols int) *Matrix {
	t.Helper()
	m := NewMatrix(rows, cols)
	for i := range m.data {
		v, err := ff64.Rand()
		if err != nil {
			t.Fatal(err)
		}
		m.data[i] = v
	}
	return m
}

// plantDeficiency overwrites some rows with random linear combinations of
// earlier rows, forcing rank ≤ rows − planted.
func plantDeficiency(t testing.TB, m *Matrix, planted int) {
	t.Helper()
	for k := 0; k < planted && m.Rows > 1; k++ {
		dst := m.Rows - 1 - k
		clear(m.data[dst*m.Cols : (dst+1)*m.Cols])
		for src := 0; src < dst; src++ {
			c, err := ff64.Rand()
			if err != nil {
				t.Fatal(err)
			}
			row := m.Row(dst)
			from := m.Row(src)
			for j := range row {
				row[j] = ff64.MulAdd(row[j], c, from[j])
			}
		}
	}
}

// shardMatrix mimics the engine's shard systems: n×(n+1) with an all-ones
// first column and random hash entries elsewhere.
func shardMatrix(t testing.TB, n int) *Matrix {
	t.Helper()
	m := cryptoRandMatrix(t, n, n+1)
	for i := 0; i < n; i++ {
		m.Set(i, 0, ff64.One)
	}
	return m
}

func TestBlockedEchelonPivotsMatchRREF(t *testing.T) {
	shapes := []struct{ rows, cols, planted int }{
		{1, 2, 0}, {3, 4, 0}, {7, 8, 0}, {8, 8, 0},
		{31, 32, 0}, {32, 33, 0}, {33, 40, 0}, {40, 33, 0},
		{65, 70, 0}, {64, 100, 0}, {100, 64, 0},
		{20, 21, 5}, {40, 41, 13}, {70, 71, 35}, {33, 40, 33},
	}
	ws := NewWorkspace()
	for _, sh := range shapes {
		m := cryptoRandMatrix(t, sh.rows, sh.cols)
		plantDeficiency(t, m, sh.planted)
		ref := m.Clone()
		refPivots := ref.rref()
		gotPivots := m.Clone().blockedEchelon(ws)
		if len(gotPivots) != len(refPivots) {
			t.Fatalf("%dx%d planted=%d: blocked rank %d, reference rank %d",
				sh.rows, sh.cols, sh.planted, len(gotPivots), len(refPivots))
		}
		for i := range gotPivots {
			if gotPivots[i] != refPivots[i] {
				t.Fatalf("%dx%d planted=%d: pivot %d at column %d, reference %d",
					sh.rows, sh.cols, sh.planted, i, gotPivots[i], refPivots[i])
			}
		}
	}
}

func TestBlockedKernelSamplesAreKernelElements(t *testing.T) {
	shapes := []struct{ rows, cols, planted int }{
		{1, 2, 0}, {5, 6, 0}, {31, 32, 0}, {32, 33, 0}, {33, 40, 0},
		{64, 65, 0}, {65, 96, 0}, {96, 97, 40}, {40, 41, 12}, {50, 80, 50},
	}
	ws := NewWorkspace()
	for _, sh := range shapes {
		m := cryptoRandMatrix(t, sh.rows, sh.cols)
		plantDeficiency(t, m, sh.planted)
		orig := m.Clone()
		wantFree := sh.cols - orig.Rank()

		s, err := ws.Factorize(m)
		if err != nil {
			t.Fatalf("%dx%d planted=%d: %v", sh.rows, sh.cols, sh.planted, err)
		}
		if s.FreeCount() != wantFree {
			t.Fatalf("%dx%d planted=%d: kernel dimension %d, want %d",
				sh.rows, sh.cols, sh.planted, s.FreeCount(), wantFree)
		}
		out := NewVector(sh.cols)
		for draw := 0; draw < 3; draw++ {
			if err := s.SampleInPlace(out); err != nil {
				t.Fatal(err)
			}
			if out.IsZero() {
				t.Fatalf("%dx%d planted=%d: sampled the zero vector", sh.rows, sh.cols, sh.planted)
			}
			prod, err := orig.MulVec(out)
			if err != nil {
				t.Fatal(err)
			}
			if !prod.IsZero() {
				t.Fatalf("%dx%d planted=%d: A·v ≠ 0", sh.rows, sh.cols, sh.planted)
			}
		}
	}
}

func TestBlockedTrivialKernel(t *testing.T) {
	// A square full-rank system has only the trivial kernel; both paths must
	// agree on the failure.
	m := cryptoRandMatrix(t, 16, 16)
	if m.Rank() != 16 {
		t.Skip("random square matrix unexpectedly singular")
	}
	ws := NewWorkspace()
	if _, err := ws.Factorize(m.Clone()); err != ErrTrivialKernel {
		t.Fatalf("Factorize error = %v, want ErrTrivialKernel", err)
	}
	if _, err := m.Clone().RandomKernelVectorInPlace(); err != ErrTrivialKernel {
		t.Fatalf("reference error = %v, want ErrTrivialKernel", err)
	}
}

func TestWorkspaceReuseAcrossShapes(t *testing.T) {
	// One workspace must serve back-to-back solves of different shapes (the
	// engine's per-worker reuse pattern), including workspace-backed matrices.
	ws := NewWorkspace()
	for _, n := range []int{40, 7, 96, 33, 1, 64} {
		src := shardMatrix(t, n)
		work := ws.Matrix(n, n+1)
		copy(work.data, src.data)
		v, err := work.RandomKernelVectorBlocked(ws)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		prod, err := src.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		if !prod.IsZero() || v.IsZero() {
			t.Fatalf("n=%d: bad kernel sample from reused workspace", n)
		}
	}
}

func TestInPlaceVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{10, 20, ff64.Elem(ff64.Modulus - 1)}
	sum, err := v.Add(w)
	if err != nil {
		t.Fatal(err)
	}
	got := v.Clone()
	if err := got.AddInPlace(w); err != nil {
		t.Fatal(err)
	}
	for i := range sum {
		if got[i] != sum[i] {
			t.Fatalf("AddInPlace[%d] = %v, want %v", i, got[i], sum[i])
		}
	}
	if err := got.AddInPlace(Vector{1}); err == nil {
		t.Fatal("AddInPlace accepted mismatched lengths")
	}
	c := ff64.Elem(12345)
	scaled := v.Scale(c)
	got = v.Clone()
	got.ScaleInPlace(c)
	for i := range scaled {
		if got[i] != scaled[i] {
			t.Fatalf("ScaleInPlace[%d] = %v, want %v", i, got[i], scaled[i])
		}
	}
}

// The acceptance benchmarks: blocked vs reference on engine-shaped 512×513
// shard systems (one solve = factorize + one kernel sample).

func benchSolve(b *testing.B, n int, blocked bool) {
	src := shardMatrix(b, n)
	ws := NewWorkspace()
	work := NewMatrix(n, n+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work.data, src.data)
		var err error
		if blocked {
			_, err = work.RandomKernelVectorBlocked(ws)
		} else {
			_, err = work.RandomKernelVectorInPlace()
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceSolve512(b *testing.B) { benchSolve(b, 512, false) }
func BenchmarkBlockedSolve512(b *testing.B)   { benchSolve(b, 512, true) }
func BenchmarkReferenceSolve128(b *testing.B) { benchSolve(b, 128, false) }
func BenchmarkBlockedSolve128(b *testing.B)   { benchSolve(b, 128, true) }
