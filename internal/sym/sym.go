// Package sym provides the semantically secure symmetric encryption the
// paper's envelopes and subdocument payloads use. The paper specifies AES;
// we use AES-256-GCM so that decryption under a wrong key fails loudly —
// OCBE receivers and unqualified subscribers detect failure through the
// authentication tag rather than by inspecting plaintext.
package sym

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// KeySize is the symmetric key length in bytes (AES-256).
const KeySize = 32

// ErrDecrypt is returned when authenticated decryption fails, i.e. the key
// is wrong or the ciphertext was tampered with.
var ErrDecrypt = errors.New("sym: decryption failed (wrong key or corrupted ciphertext)")

// DeriveKey maps arbitrary secret material to a KeySize-byte key with a
// domain-separated SHA-256. OCBE uses it to turn the shared group element σ
// into an envelope key (the paper's H(σ)).
func DeriveKey(material ...[]byte) [KeySize]byte {
	h := sha256.New()
	h.Write([]byte("ppcd/sym/derive/v1"))
	for _, m := range material {
		h.Write(m)
	}
	var key [KeySize]byte
	copy(key[:], h.Sum(nil))
	return key
}

// Encrypt seals plaintext under key with AES-256-GCM and a random nonce; the
// nonce is prepended to the returned ciphertext.
func Encrypt(key [KeySize]byte, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sym: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sym: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("sym: nonce: %w", err)
	}
	return gcm.Seal(nonce, nonce, plaintext, nil), nil
}

// Decrypt opens a ciphertext produced by Encrypt. It returns ErrDecrypt when
// the key is wrong or the data was modified.
func Decrypt(key [KeySize]byte, ciphertext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sym: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sym: %w", err)
	}
	if len(ciphertext) < gcm.NonceSize() {
		return nil, ErrDecrypt
	}
	nonce, body := ciphertext[:gcm.NonceSize()], ciphertext[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, body, nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}
