package sym

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := DeriveKey([]byte("secret"))
	for _, pt := range [][]byte{nil, {}, []byte("x"), []byte("hello world"), bytes.Repeat([]byte("A"), 10000)} {
		ct, err := Encrypt(key, pt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decrypt(key, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("round trip mismatch for %d bytes", len(pt))
		}
	}
}

func TestDecryptWrongKeyFails(t *testing.T) {
	ct, err := Encrypt(DeriveKey([]byte("k1")), []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(DeriveKey([]byte("k2")), ct); err != ErrDecrypt {
		t.Errorf("wrong key: got %v, want ErrDecrypt", err)
	}
}

func TestDecryptTamperedFails(t *testing.T) {
	key := DeriveKey([]byte("k"))
	ct, err := Encrypt(key, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	ct[len(ct)-1] ^= 0x01
	if _, err := Decrypt(key, ct); err != ErrDecrypt {
		t.Errorf("tampered: got %v", err)
	}
}

func TestDecryptTruncatedFails(t *testing.T) {
	key := DeriveKey([]byte("k"))
	if _, err := Decrypt(key, []byte{1, 2, 3}); err != ErrDecrypt {
		t.Errorf("short ciphertext: got %v", err)
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	key := DeriveKey([]byte("k"))
	c1, _ := Encrypt(key, []byte("same"))
	c2, _ := Encrypt(key, []byte("same"))
	if bytes.Equal(c1, c2) {
		t.Error("two encryptions of same plaintext identical (nonce reuse?)")
	}
}

func TestDeriveKeyProperties(t *testing.T) {
	if DeriveKey([]byte("a")) != DeriveKey([]byte("a")) {
		t.Error("DeriveKey not deterministic")
	}
	if DeriveKey([]byte("a")) == DeriveKey([]byte("b")) {
		t.Error("DeriveKey collision")
	}
	// Multi-part material is order sensitive.
	if DeriveKey([]byte("a"), []byte("b")) == DeriveKey([]byte("b"), []byte("a")) {
		t.Error("DeriveKey ignores order")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(keySeed, pt []byte) bool {
		key := DeriveKey(keySeed)
		ct, err := Encrypt(key, pt)
		if err != nil {
			return false
		}
		got, err := Decrypt(key, ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
