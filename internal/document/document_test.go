package document

import (
	"bytes"
	"strings"
	"testing"
)

const ehrXML = `<PatientRecord>
  <ContactInfo>
    <Name>John Doe</Name><Phone>555-0100</Phone>
  </ContactInfo>
  <BillingInfo>
    <Insurer>Acme Health</Insurer>
  </BillingInfo>
  <ClinicalRecord>
    <Medication>aspirin 100mg</Medication>
    <PhysicalExams>BP 120/80</PhysicalExams>
    <LabRecords>X-ray negative</LabRecords>
    <Plan>follow-up in 2 weeks</Plan>
  </ClinicalRecord>
</PatientRecord>`

func TestNewValidation(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("d", Subdocument{Name: ""}); err == nil {
		t.Error("empty subdoc name accepted")
	}
	if _, err := New("d", Subdocument{Name: "a"}, Subdocument{Name: "a"}); err == nil {
		t.Error("duplicate subdoc accepted")
	}
}

func TestNamesAndGet(t *testing.T) {
	d, err := New("d", Subdocument{Name: "a", Content: []byte("1")}, Subdocument{Name: "b", Content: []byte("2")})
	if err != nil {
		t.Fatal(err)
	}
	names := d.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	sd, ok := d.Get("b")
	if !ok || string(sd.Content) != "2" {
		t.Error("Get failed")
	}
	if _, ok := d.Get("zzz"); ok {
		t.Error("Get found missing subdoc")
	}
}

func TestSplitXMLEHR(t *testing.T) {
	marks := []string{"ContactInfo", "BillingInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"}
	doc, err := SplitXML("EHR.xml", []byte(ehrXML), marks)
	if err != nil {
		t.Fatal(err)
	}
	names := doc.Names()
	want := []string{"ContactInfo", "BillingInfo", "Medication", "PhysicalExams", "LabRecords", "Plan", RestName}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	ci, _ := doc.Get("ContactInfo")
	if !bytes.Contains(ci.Content, []byte("John Doe")) {
		t.Error("ContactInfo content missing")
	}
	if !bytes.HasPrefix(ci.Content, []byte("<ContactInfo>")) || !bytes.HasSuffix(ci.Content, []byte("</ContactInfo>")) {
		t.Error("ContactInfo not captured as raw XML element")
	}
	med, _ := doc.Get("Medication")
	if !bytes.Contains(med.Content, []byte("aspirin")) {
		t.Error("Medication content missing")
	}
	rest, _ := doc.Get(RestName)
	if !bytes.Contains(rest.Content, []byte("<PatientRecord>")) || !bytes.Contains(rest.Content, []byte("<ClinicalRecord>")) {
		t.Error("rest should contain the unmarked wrapper elements")
	}
	if bytes.Contains(rest.Content, []byte("John Doe")) {
		t.Error("rest leaked marked content")
	}
}

func TestSplitXMLNestedMarks(t *testing.T) {
	// Outer mark captures everything including an inner mark; the inner one
	// is not split out separately.
	xmlData := `<root><Outer><Inner>deep</Inner></Outer><Inner>shallow</Inner></root>`
	doc, err := SplitXML("d", []byte(xmlData), []string{"Outer", "Inner"})
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := doc.Get("Outer")
	if !ok || !bytes.Contains(outer.Content, []byte("deep")) {
		t.Error("outer capture wrong")
	}
	inner, ok := doc.Get("Inner")
	if !ok || !bytes.Contains(inner.Content, []byte("shallow")) {
		t.Error("standalone inner not captured")
	}
	if strings.Count(string(inner.Content), "Inner") != 2 {
		t.Error("inner capture shape wrong")
	}
}

func TestSplitXMLRepeatedElements(t *testing.T) {
	xmlData := `<r><Item>a</Item><Item>b</Item></r>`
	doc, err := SplitXML("d", []byte(xmlData), []string{"Item"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Get("Item"); !ok {
		t.Error("first item missing")
	}
	second, ok := doc.Get("Item#2")
	if !ok || !bytes.Contains(second.Content, []byte("b")) {
		t.Error("second item not suffixed")
	}
}

func TestSplitXMLNoMarks(t *testing.T) {
	doc, err := SplitXML("d", []byte("<r><a>x</a></r>"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Subdocs) != 1 || doc.Subdocs[0].Name != RestName {
		t.Errorf("subdocs = %v", doc.Names())
	}
}

func TestSplitXMLMalformed(t *testing.T) {
	if _, err := SplitXML("d", []byte("<r><unclosed></r>"), []string{"unclosed"}); err == nil {
		t.Error("malformed XML accepted")
	}
}

func TestSplitXMLReconstruction(t *testing.T) {
	// The concatenation of captured pieces plus rest must contain every byte
	// of the original payload data.
	marks := []string{"ContactInfo", "BillingInfo"}
	doc, err := SplitXML("EHR.xml", []byte(ehrXML), marks)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, sd := range doc.Subdocs {
		total += len(sd.Content)
	}
	if total != len(ehrXML) {
		t.Errorf("captured %d bytes of %d", total, len(ehrXML))
	}
}
