// Package document models broadcast documents and their segmentation into
// subdocuments (paper §V-C). A document is an ordered list of named
// subdocuments; SplitXML segments an XML file (such as the paper's EHR.xml)
// by element name, so that access control policies can target XML elements
// exactly as in Example 4.
package document

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
)

// Subdocument is a named portion of a document; policies reference
// subdocuments by name.
type Subdocument struct {
	Name    string
	Content []byte
}

// Document is an ordered collection of subdocuments.
type Document struct {
	Name    string
	Subdocs []Subdocument
}

// New builds a document from subdocuments, rejecting duplicate names.
func New(name string, subdocs ...Subdocument) (*Document, error) {
	if name == "" {
		return nil, errors.New("document: empty document name")
	}
	seen := make(map[string]bool, len(subdocs))
	for _, sd := range subdocs {
		if sd.Name == "" {
			return nil, errors.New("document: empty subdocument name")
		}
		if seen[sd.Name] {
			return nil, fmt.Errorf("document: duplicate subdocument %q", sd.Name)
		}
		seen[sd.Name] = true
	}
	return &Document{Name: name, Subdocs: append([]Subdocument(nil), subdocs...)}, nil
}

// Names returns the subdocument names in order.
func (d *Document) Names() []string {
	out := make([]string, len(d.Subdocs))
	for i, sd := range d.Subdocs {
		out[i] = sd.Name
	}
	return out
}

// Get returns the subdocument with the given name.
func (d *Document) Get(name string) (Subdocument, bool) {
	for _, sd := range d.Subdocs {
		if sd.Name == name {
			return sd, true
		}
	}
	return Subdocument{}, false
}

// RestName is the name given to document content outside every marked
// element when splitting XML ("Other stuff" in the paper's Example 4).
const RestName = "_rest"

// SplitXML segments an XML document into subdocuments by element name: the
// raw XML of each outermost occurrence of an element whose local name is in
// marks becomes one subdocument (named after the element, with a numeric
// suffix for repeats). Everything else is concatenated into the RestName
// subdocument. Nested marked elements inside an already-captured element are
// not re-captured.
func SplitXML(name string, data []byte, marks []string) (*Document, error) {
	markSet := make(map[string]bool, len(marks))
	for _, m := range marks {
		markSet[m] = true
	}

	dec := xml.NewDecoder(bytes.NewReader(data))
	var subdocs []Subdocument
	var rest bytes.Buffer
	counts := make(map[string]int)
	lastOffset := int64(0)

	for {
		tokStart := dec.InputOffset()
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("document: parsing XML: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok || !markSet[se.Name.Local] {
			continue
		}
		// Content before this element belongs to the rest.
		rest.Write(data[lastOffset:tokStart])
		// Skip to the matching end element; capture the raw bytes.
		if err := dec.Skip(); err != nil {
			return nil, fmt.Errorf("document: skipping element %s: %w", se.Name.Local, err)
		}
		end := dec.InputOffset()
		raw := append([]byte(nil), data[tokStart:end]...)
		counts[se.Name.Local]++
		sdName := se.Name.Local
		if counts[se.Name.Local] > 1 {
			sdName = fmt.Sprintf("%s#%d", se.Name.Local, counts[se.Name.Local])
		}
		subdocs = append(subdocs, Subdocument{Name: sdName, Content: raw})
		lastOffset = end
	}
	rest.Write(data[lastOffset:])
	if restBytes := bytes.TrimSpace(rest.Bytes()); len(restBytes) > 0 {
		subdocs = append(subdocs, Subdocument{Name: RestName, Content: rest.Bytes()})
	}
	return New(name, subdocs...)
}
