package core

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"ppcd/internal/ff64"
	"ppcd/internal/linalg"
)

// BuildMulti generates `count` independent keys and headers that SHARE the
// nonces z_1…z_N, for broadcasting several documents to the same policy
// configuration (same subscriber rows) in one session. This is the
// optimisation of §VIII-D: the publisher computes the matrix A and its null
// space once, then picks `count` independent random ACVs from it; a
// subscriber hashes its CSSs against the shared nonces once and reuses the
// cached KEV for every document. Unlike the marker scheme, compromise of one
// key reveals nothing about the others (the ACVs are independent kernel
// samples).
func BuildMulti(rows [][]CSS, n, count int) ([]*Header, []ff64.Elem, error) {
	if count < 1 {
		return nil, nil, fmt.Errorf("core: count must be positive, got %d", count)
	}
	if len(rows) == 0 {
		return nil, nil, ErrNoRows
	}
	if n < len(rows) {
		return nil, nil, fmt.Errorf("%w: N=%d < %d rows", ErrNTooSmall, n, len(rows))
	}
	for _, r := range rows {
		if len(r) == 0 {
			return nil, nil, ErrEmptyCSS
		}
	}

	zs, a, err := buildMatrix(rows, n)
	if err != nil {
		return nil, nil, err
	}

	// Factorize A once (blocked elimination) and draw every document's ACV
	// from the same echelon form: count in-place kernel samples instead of
	// count full Gauss–Jordan reductions over cloned matrices.
	ws := linalg.NewWorkspace()
	sampler, err := ws.Factorize(a)
	if err != nil {
		return nil, nil, fmt.Errorf("core: solving AY=0: %w", err)
	}

	headers := make([]*Header, 0, count)
	keys := make([]ff64.Elem, 0, count)
	for i := 0; i < count; i++ {
		var hdr *Header
		var key ff64.Elem
		x := linalg.NewVector(a.Cols)
		for attempt := 0; attempt < 8; attempt++ {
			// Every entry of x is overwritten per attempt, so the retry loop
			// reuses the one buffer the header will own.
			if err := sampler.SampleInPlace(x); err != nil {
				return nil, nil, fmt.Errorf("core: sampling ACV %d: %w", i, err)
			}
			k, err := ff64.RandNonZero()
			if err != nil {
				return nil, nil, err
			}
			x[0] = ff64.Add(x[0], k)
			if tailZero(x) {
				continue
			}
			hdr = &Header{X: x, Zs: zs}
			key = k
			break
		}
		if hdr == nil {
			return nil, nil, errDegenerate
		}
		headers = append(headers, hdr)
		keys = append(keys, key)
	}
	return headers, keys, nil
}

// buildMatrix draws the nonces and assembles the subscriber matrix A.
func buildMatrix(rows [][]CSS, n int) ([][]byte, *linalg.Matrix, error) {
	zs := make([][]byte, n)
	for j := range zs {
		z := make([]byte, NonceSize)
		if err := fillRandom(z); err != nil {
			return nil, nil, err
		}
		zs[j] = z
	}
	a := linalg.NewMatrix(len(rows), n+1)
	for i, css := range rows {
		a.Set(i, 0, ff64.One)
		rh := NewRowHasher(css)
		for j, z := range zs {
			a.Set(i, j+1, rh.Hash(z))
		}
	}
	return zs, a, nil
}

// KEVCache caches a subscriber's key extraction vector for one nonce set so
// that derivations for multiple documents of a shared session cost one inner
// product each instead of N hashes + one inner product (§VIII-D: "the Sub
// can compute the hash values and cache the resultant vector for future
// use").
type KEVCache struct {
	kev linalg.Vector
}

// NewKEVCache hashes the subscriber's CSS list against a header's nonces
// once.
func NewKEVCache(css []CSS, hdr *Header) (*KEVCache, error) {
	kev, err := KEV(css, hdr)
	if err != nil {
		return nil, err
	}
	return &KEVCache{kev: kev}, nil
}

// Derive extracts the key from a header that shares the cache's nonce set.
func (c *KEVCache) Derive(hdr *Header) (ff64.Elem, error) {
	if len(hdr.X) != len(c.kev) {
		return 0, fmt.Errorf("%w: cached KEV length %d, X length %d", ErrBadHeader, len(c.kev), len(hdr.X))
	}
	return c.kev.Dot(hdr.X)
}

// GroupShard is one shard of a grouped header (§VIII-C): a small ACV
// sub-header delivering the shard's long-lived GROUP key, plus the wrap of
// the configuration key under it. The two-level indirection is what makes
// per-group incremental rekeying possible: a membership change re-solves
// only the affected shard's ACV (fresh group key), while every clean shard
// keeps its sub-header — and therefore its subscribers' cached KEVs — and
// merely receives a fresh wrap of the new configuration key.
type GroupShard struct {
	Hdr  *Header
	Wrap ff64.Elem
}

// GroupedHeader is the broadcast material of a grouped build: one sub-header
// per row shard, all delivering the same configuration key through per-shard
// wraps W_i = K + H(S_i ‖ RekeyNonce). RekeyNonce is fresh whenever K is, so
// reused group keys never reuse a mask. A nil RekeyNonce marks a legacy
// direct-mode header (decoded from the old single-header wire format) whose
// shards deliver the configuration key itself.
type GroupedHeader struct {
	RekeyNonce []byte
	Shards     []GroupShard
}

// Size returns the total broadcast overhead across shards: sub-headers,
// wraps and the rekey nonce. This is the grouped counterpart of Header.Size.
func (g *GroupedHeader) Size() int {
	n := len(g.RekeyNonce)
	for _, sh := range g.Shards {
		n += sh.Hdr.Size() + 8
	}
	return n
}

// maskShardKey derives the field mask hiding a configuration key from one
// shard's group key, in the same random-oracle style as HashRow.
func maskShardKey(s ff64.Elem, rekeyNonce []byte) ff64.Elem {
	h := sha256.New()
	h.Write([]byte("ppcd/group-wrap/v1"))
	h.Write(s.Bytes())
	h.Write(rekeyNonce)
	digest := h.Sum(nil)
	return ff64.New(binary.BigEndian.Uint64(digest[:8]))
}

// WrapKey masks the configuration key under a shard's group key.
func (g *GroupedHeader) WrapKey(key, shardKey ff64.Elem) ff64.Elem {
	return ff64.Add(key, maskShardKey(shardKey, g.RekeyNonce))
}

// Unwrap recovers the configuration key from shard i's group key. In legacy
// direct mode (nil RekeyNonce) the group key IS the configuration key.
func (g *GroupedHeader) Unwrap(i int, shardKey ff64.Elem) ff64.Elem {
	if g.RekeyNonce == nil {
		return shardKey
	}
	return ff64.Sub(g.Shards[i].Wrap, maskShardKey(shardKey, g.RekeyNonce))
}

// BuildGrouped splits the subscriber rows into shards of at most groupSize
// and computes an independent small ACV per shard — the scalability strategy
// of §VIII-C: solving g small systems costs g·(N/g)³ = N³/g² field
// operations instead of N³, at the price of g sub-headers. Each shard's ACV
// delivers a random group key; the shared configuration key travels wrapped
// under every group key. A subscriber derives the key from its own shard's
// sub-header; since it does not know its shard index, DeriveKeyGrouped scans
// the shards (the pubsub layer remembers the index as a hint).
func BuildGrouped(rows [][]CSS, groupSize int) (*GroupedHeader, ff64.Elem, error) {
	if groupSize < 1 {
		return nil, 0, fmt.Errorf("core: groupSize must be positive, got %d", groupSize)
	}
	if len(rows) == 0 {
		return nil, 0, ErrNoRows
	}
	key, err := ff64.RandNonZero()
	if err != nil {
		return nil, 0, err
	}
	nonce := make([]byte, NonceSize)
	if err := fillRandom(nonce); err != nil {
		return nil, 0, err
	}
	out := &GroupedHeader{RekeyNonce: nonce}
	for start := 0; start < len(rows); start += groupSize {
		end := start + groupSize
		if end > len(rows) {
			end = len(rows)
		}
		chunk := rows[start:end]
		skey, err := ff64.RandNonZero()
		if err != nil {
			return nil, 0, err
		}
		hdr, err := buildWithKey(chunk, len(chunk), skey)
		if err != nil {
			return nil, 0, fmt.Errorf("core: group starting at %d: %w", start, err)
		}
		out.Shards = append(out.Shards, GroupShard{Hdr: hdr, Wrap: out.WrapKey(key, skey)})
	}
	return out, key, nil
}

// buildWithKey is the Build core with a caller-fixed key.
func buildWithKey(rows [][]CSS, n int, key ff64.Elem) (*Header, error) {
	for _, r := range rows {
		if len(r) == 0 {
			return nil, ErrEmptyCSS
		}
	}
	for attempt := 0; attempt < 8; attempt++ {
		zs, a, err := buildMatrix(rows, n)
		if err != nil {
			return nil, err
		}
		y, err := a.RandomKernelVector()
		if err != nil {
			return nil, fmt.Errorf("core: solving AY=0: %w", err)
		}
		x := y.Clone()
		x[0] = ff64.Add(x[0], key)
		if tailZero(x) {
			continue
		}
		return &Header{X: x, Zs: zs}, nil
	}
	return nil, errDegenerate
}

// DeriveKeyGrouped recovers the configuration key from a grouped header by
// trying each shard: derive the shard's group key from the sub-header, then
// unwrap. A non-member's derivation from the wrong shard yields an
// unpredictable candidate rather than an error, so verification happens — as
// everywhere in the system — through the verify callback (typically
// authenticated decryption of the payload). It returns the accepted key and
// the shard index; callers should remember the index as a hint, since sticky
// grouping keeps it stable across rekeys. With a nil verify the first
// candidate is returned.
func DeriveKeyGrouped(css []CSS, g *GroupedHeader, verify func(ff64.Elem) bool) (ff64.Elem, int, error) {
	if g == nil || len(g.Shards) == 0 {
		return 0, -1, ErrBadHeader
	}
	for i, sh := range g.Shards {
		s, err := DeriveKey(css, sh.Hdr)
		if err != nil {
			continue
		}
		k := g.Unwrap(i, s)
		if verify == nil || verify(k) {
			return k, i, nil
		}
	}
	return 0, -1, ErrBadKey
}

func fillRandom(b []byte) error {
	if _, err := rand.Read(b); err != nil {
		return fmt.Errorf("core: generating nonce: %w", err)
	}
	return nil
}
