package core

import (
	"crypto/rand"
	"fmt"

	"ppcd/internal/ff64"
	"ppcd/internal/linalg"
)

// BuildMulti generates `count` independent keys and headers that SHARE the
// nonces z_1…z_N, for broadcasting several documents to the same policy
// configuration (same subscriber rows) in one session. This is the
// optimisation of §VIII-D: the publisher computes the matrix A and its null
// space once, then picks `count` independent random ACVs from it; a
// subscriber hashes its CSSs against the shared nonces once and reuses the
// cached KEV for every document. Unlike the marker scheme, compromise of one
// key reveals nothing about the others (the ACVs are independent kernel
// samples).
func BuildMulti(rows [][]CSS, n, count int) ([]*Header, []ff64.Elem, error) {
	if count < 1 {
		return nil, nil, fmt.Errorf("core: count must be positive, got %d", count)
	}
	if len(rows) == 0 {
		return nil, nil, ErrNoRows
	}
	if n < len(rows) {
		return nil, nil, fmt.Errorf("%w: N=%d < %d rows", ErrNTooSmall, n, len(rows))
	}
	for _, r := range rows {
		if len(r) == 0 {
			return nil, nil, ErrEmptyCSS
		}
	}

	zs, a, err := buildMatrix(rows, n)
	if err != nil {
		return nil, nil, err
	}

	headers := make([]*Header, 0, count)
	keys := make([]ff64.Elem, 0, count)
	for i := 0; i < count; i++ {
		var hdr *Header
		var key ff64.Elem
		for attempt := 0; attempt < 8; attempt++ {
			y, err := a.RandomKernelVector()
			if err != nil {
				return nil, nil, fmt.Errorf("core: sampling ACV %d: %w", i, err)
			}
			k, err := ff64.RandNonZero()
			if err != nil {
				return nil, nil, err
			}
			x := y.Clone()
			x[0] = ff64.Add(x[0], k)
			if tailZero(x) {
				continue
			}
			hdr = &Header{X: x, Zs: zs}
			key = k
			break
		}
		if hdr == nil {
			return nil, nil, errDegenerate
		}
		headers = append(headers, hdr)
		keys = append(keys, key)
	}
	return headers, keys, nil
}

// buildMatrix draws the nonces and assembles the subscriber matrix A.
func buildMatrix(rows [][]CSS, n int) ([][]byte, *linalg.Matrix, error) {
	zs := make([][]byte, n)
	for j := range zs {
		z := make([]byte, NonceSize)
		if err := fillRandom(z); err != nil {
			return nil, nil, err
		}
		zs[j] = z
	}
	a := linalg.NewMatrix(len(rows), n+1)
	for i, css := range rows {
		a.Set(i, 0, ff64.One)
		for j, z := range zs {
			a.Set(i, j+1, HashRow(css, z))
		}
	}
	return zs, a, nil
}

// KEVCache caches a subscriber's key extraction vector for one nonce set so
// that derivations for multiple documents of a shared session cost one inner
// product each instead of N hashes + one inner product (§VIII-D: "the Sub
// can compute the hash values and cache the resultant vector for future
// use").
type KEVCache struct {
	kev linalg.Vector
}

// NewKEVCache hashes the subscriber's CSS list against a header's nonces
// once.
func NewKEVCache(css []CSS, hdr *Header) (*KEVCache, error) {
	kev, err := KEV(css, hdr)
	if err != nil {
		return nil, err
	}
	return &KEVCache{kev: kev}, nil
}

// Derive extracts the key from a header that shares the cache's nonce set.
func (c *KEVCache) Derive(hdr *Header) (ff64.Elem, error) {
	if len(hdr.X) != len(c.kev) {
		return 0, fmt.Errorf("%w: cached KEV length %d, X length %d", ErrBadHeader, len(c.kev), len(hdr.X))
	}
	return c.kev.Dot(hdr.X)
}

// GroupedHeader is the broadcast material of a grouped build (§VIII-C): all
// groups share one document key; each group gets its own small header.
type GroupedHeader struct {
	Groups []*Header
}

// Size returns the total broadcast overhead across groups.
func (g *GroupedHeader) Size() int {
	n := 0
	for _, h := range g.Groups {
		n += h.Size()
	}
	return n
}

// BuildGrouped splits the subscriber rows into groups of at most groupSize
// and computes an independent ACV per group, all delivering the SAME key —
// the scalability strategy of §VIII-C: solving g small N×N systems costs
// g·(N/g)³ = N³/g² field operations instead of N³, at the price of g
// headers. A subscriber derives the key from its own group's header; since
// it does not know its group index, DeriveKeyGrouped scans the groups.
func BuildGrouped(rows [][]CSS, groupSize int) (*GroupedHeader, ff64.Elem, error) {
	if groupSize < 1 {
		return nil, 0, fmt.Errorf("core: groupSize must be positive, got %d", groupSize)
	}
	if len(rows) == 0 {
		return nil, 0, ErrNoRows
	}
	key, err := ff64.RandNonZero()
	if err != nil {
		return nil, 0, err
	}
	out := &GroupedHeader{}
	for start := 0; start < len(rows); start += groupSize {
		end := start + groupSize
		if end > len(rows) {
			end = len(rows)
		}
		chunk := rows[start:end]
		hdr, err := buildWithKey(chunk, len(chunk), key)
		if err != nil {
			return nil, 0, fmt.Errorf("core: group starting at %d: %w", start, err)
		}
		out.Groups = append(out.Groups, hdr)
	}
	return out, key, nil
}

// buildWithKey is the Build core with a caller-fixed key.
func buildWithKey(rows [][]CSS, n int, key ff64.Elem) (*Header, error) {
	for _, r := range rows {
		if len(r) == 0 {
			return nil, ErrEmptyCSS
		}
	}
	for attempt := 0; attempt < 8; attempt++ {
		zs, a, err := buildMatrix(rows, n)
		if err != nil {
			return nil, err
		}
		y, err := a.RandomKernelVector()
		if err != nil {
			return nil, fmt.Errorf("core: solving AY=0: %w", err)
		}
		x := y.Clone()
		x[0] = ff64.Add(x[0], key)
		if tailZero(x) {
			continue
		}
		return &Header{X: x, Zs: zs}, nil
	}
	return nil, errDegenerate
}

// DeriveKeyGrouped recovers the key from a grouped header by trying each
// group. It returns the first successful derivation along with the group
// index; verification of correctness happens — as everywhere in the system —
// through authenticated decryption of the payload, so callers should try
// groups in order until decryption succeeds. For convenience it returns all
// candidate keys when verify is nil.
func DeriveKeyGrouped(css []CSS, g *GroupedHeader, verify func(ff64.Elem) bool) (ff64.Elem, int, error) {
	if g == nil || len(g.Groups) == 0 {
		return 0, -1, ErrBadHeader
	}
	for i, hdr := range g.Groups {
		k, err := DeriveKey(css, hdr)
		if err != nil {
			continue
		}
		if verify == nil || verify(k) {
			return k, i, nil
		}
	}
	return 0, -1, ErrBadKey
}

func fillRandom(b []byte) error {
	if _, err := rand.Read(b); err != nil {
		return fmt.Errorf("core: generating nonce: %w", err)
	}
	return nil
}
