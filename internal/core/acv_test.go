package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ppcd/internal/ff64"
)

// randRows builds nRows subscriber rows with 1..maxConds CSSs each.
func randRows(rng *rand.Rand, nRows, maxConds int) [][]CSS {
	rows := make([][]CSS, nRows)
	for i := range rows {
		m := 1 + rng.Intn(maxConds)
		css := make([]CSS, m)
		for j := range css {
			css[j] = ff64.New(rng.Uint64())
			if css[j] == ff64.Zero {
				css[j] = ff64.One
			}
		}
		rows[i] = css
	}
	return rows
}

func TestSoundnessAllQualifiedDerive(t *testing.T) {
	// Paper §VI-B1: every qualified subscriber derives the exact key.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		rows := randRows(rng, 3+rng.Intn(10), 4)
		hdr, key, err := Build(rows, len(rows)+rng.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		for i, css := range rows {
			got, err := DeriveKey(css, hdr)
			if err != nil {
				t.Fatal(err)
			}
			if got != key {
				t.Fatalf("trial %d row %d: derived %v, want %v", trial, i, got, key)
			}
		}
	}
}

func TestUnqualifiedDoesNotDerive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randRows(rng, 5, 3)
	hdr, key, err := Build(rows, 8)
	if err != nil {
		t.Fatal(err)
	}
	// An outsider with random CSSs recovers the key only with prob ~1/q.
	for trial := 0; trial < 20; trial++ {
		fake := randRows(rng, 1, 3)[0]
		got, err := DeriveKey(fake, hdr)
		if err != nil {
			t.Fatal(err)
		}
		if got == key {
			t.Fatalf("outsider derived the key")
		}
	}
}

func TestPartialCSSDoesNotDerive(t *testing.T) {
	// A subscriber holding only a strict subset of a policy's CSSs (e.g. the
	// level-58 nurse of Example 4) must not derive the key.
	rng := rand.New(rand.NewSource(13))
	rows := randRows(rng, 4, 1)
	twoCond := []CSS{ff64.New(11109), ff64.New(60987)}
	rows = append(rows, twoCond)
	hdr, key, err := Build(rows, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DeriveKey(twoCond[:1], hdr)
	if err != nil {
		t.Fatal(err)
	}
	if got == key {
		t.Fatal("partial CSS list derived the key")
	}
	got, err = DeriveKey(twoCond, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Fatal("full CSS list failed to derive the key")
	}
}

func TestRekeyForwardSecrecy(t *testing.T) {
	// After removing a subscriber and rebuilding, the old CSSs must not
	// derive the new key (forward secrecy, §VI-B2).
	rng := rand.New(rand.NewSource(99))
	rows := randRows(rng, 6, 2)
	leaving := rows[5]
	hdr2, key2, err := Build(rows[:5], 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DeriveKey(leaving, hdr2)
	if err != nil {
		t.Fatal(err)
	}
	if got == key2 {
		t.Fatal("revoked subscriber derived the new key")
	}
	for _, css := range rows[:5] {
		if k, _ := DeriveKey(css, hdr2); k != key2 {
			t.Fatal("remaining subscriber lost access after rekey")
		}
	}
}

func TestRekeyBackwardSecrecy(t *testing.T) {
	// A newly joined subscriber must not derive a key broadcast before it
	// joined (backward secrecy).
	rng := rand.New(rand.NewSource(123))
	rows := randRows(rng, 5, 2)
	hdrOld, keyOld, err := Build(rows, 8)
	if err != nil {
		t.Fatal(err)
	}
	newcomer := randRows(rng, 1, 2)[0]
	if k, _ := DeriveKey(newcomer, hdrOld); k == keyOld {
		t.Fatal("newcomer derived the old key")
	}
}

func TestRekeyChangesKeyAndNonces(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := randRows(rng, 4, 2)
	hdr1, key1, err := Build(rows, 6)
	if err != nil {
		t.Fatal(err)
	}
	hdr2, key2, err := Build(rows, 6)
	if err != nil {
		t.Fatal(err)
	}
	if key1 == key2 {
		t.Error("rekey produced identical key (prob ~1/q)")
	}
	same := true
	for j := range hdr1.Zs {
		if !bytes.Equal(hdr1.Zs[j], hdr2.Zs[j]) {
			same = false
			break
		}
	}
	if same {
		t.Error("rekey reused all nonces")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, _, err := Build(nil, 5); err != ErrNoRows {
		t.Errorf("empty rows: got %v", err)
	}
	rows := [][]CSS{{ff64.One}, {ff64.New(2)}}
	if _, _, err := Build(rows, 1); err == nil {
		t.Error("N < rows should fail")
	}
	if _, _, err := Build([][]CSS{{}}, 3); err != ErrEmptyCSS {
		t.Errorf("empty CSS row: got %v", err)
	}
}

func TestDeriveKeyValidation(t *testing.T) {
	hdr := &Header{X: make([]ff64.Elem, 3), Zs: make([][]byte, 5)}
	if _, err := DeriveKey([]CSS{ff64.One}, hdr); err == nil {
		t.Error("malformed header should fail")
	}
	good := &Header{X: make([]ff64.Elem, 3), Zs: [][]byte{{1}, {2}}}
	if _, err := DeriveKey(nil, good); err != ErrEmptyCSS {
		t.Errorf("empty CSS: got %v", err)
	}
}

func TestHeaderSizeAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := randRows(rng, 3, 2)
	hdr, _, err := Build(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := 8*5 + NonceSize*4
	if hdr.Size() != wantSize {
		t.Errorf("Size = %d, want %d", hdr.Size(), wantSize)
	}
	if hdr.N() != 4 {
		t.Errorf("N = %d, want 4", hdr.N())
	}
	c := hdr.Clone()
	c.X[0] = ff64.Add(c.X[0], ff64.One)
	c.Zs[0][0] ^= 0xff
	if hdr.X[0] == c.X[0] || hdr.Zs[0][0] == c.Zs[0][0] {
		t.Error("clone aliases original")
	}
}

func TestHashRowDeterministicAndSensitive(t *testing.T) {
	css := []CSS{ff64.New(86571)}
	z := []byte("nonce-nonce-nonce")
	a1 := HashRow(css, z)
	a2 := HashRow(css, z)
	if a1 != a2 {
		t.Error("HashRow not deterministic")
	}
	if HashRow(css, []byte("other")) == a1 {
		t.Error("HashRow insensitive to nonce")
	}
	if HashRow([]CSS{ff64.New(86572)}, z) == a1 {
		t.Error("HashRow insensitive to CSS")
	}
	if HashRow([]CSS{ff64.New(86571), ff64.New(2)}, z) == a1 {
		t.Error("HashRow insensitive to extra CSS")
	}
}

func TestKeyIndistinguishabilityShape(t *testing.T) {
	// Two independent builds over the same rows give headers under which the
	// *same* KEV extracts different keys — X alone cannot pin down K.
	rng := rand.New(rand.NewSource(31))
	rows := randRows(rng, 3, 2)
	hdr1, key1, _ := Build(rows, 5)
	hdr2, key2, _ := Build(rows, 5)
	k1, _ := DeriveKey(rows[0], hdr1)
	k2, _ := DeriveKey(rows[0], hdr2)
	if k1 != key1 || k2 != key2 {
		t.Fatal("derivation failed")
	}
	if k1 == k2 {
		t.Error("independent sessions produced equal keys")
	}
}

func TestExpandKeyStable(t *testing.T) {
	a := ExpandKey(ff64.New(11))
	b := ExpandKey(ff64.New(11))
	if a != b {
		t.Error("ExpandKey not deterministic")
	}
	if a == ExpandKey(ff64.New(12)) {
		t.Error("ExpandKey collision on different keys")
	}
}

func TestNewCSSNonZero(t *testing.T) {
	for i := 0; i < 32; i++ {
		c, err := NewCSS()
		if err != nil {
			t.Fatal(err)
		}
		if c == ff64.Zero {
			t.Fatal("NewCSS returned zero")
		}
	}
}

func TestPropertySoundness(t *testing.T) {
	// Property: for random row sets, Build+DeriveKey round-trips for every
	// row. This is the Lemma-1 soundness invariant.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := randRows(rng, 1+rng.Intn(6), 3)
		hdr, key, err := Build(rows, len(rows)+rng.Intn(3))
		if err != nil {
			return false
		}
		for _, css := range rows {
			k, err := DeriveKey(css, hdr)
			if err != nil || k != key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCollusionResistance(t *testing.T) {
	// Two subscribers, each holding one CSS of a two-condition policy,
	// cannot combine them the "wrong way" — only the exact ordered list of
	// the policy's CSSs derives the key. We check that concatenations in the
	// wrong order fail.
	cssA := ff64.New(1111)
	cssB := ff64.New(2222)
	rows := [][]CSS{{cssA, cssB}}
	hdr, key, err := Build(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := DeriveKey([]CSS{cssB, cssA}, hdr); k == key {
		t.Error("reordered CSSs derived the key")
	}
	if k, _ := DeriveKey([]CSS{cssA}, hdr); k == key {
		t.Error("single colluder derived the key")
	}
	if k, _ := DeriveKey([]CSS{cssA, cssB}, hdr); k != key {
		t.Error("correct order failed")
	}
}

func TestPaperExample4Shape(t *testing.T) {
	// Mirrors Example 4 (Pc4 = {acp3, acp4}): a doctor with one CSS and a
	// nurse-with-level with two CSSs; N = 3.
	doctor := []CSS{ff64.New(86571)}
	nurseRow := []CSS{ff64.New(11109), ff64.New(60987)}
	otherDoctor := []CSS{ff64.New(13011)}
	rows := [][]CSS{doctor, otherDoctor, nurseRow}
	hdr, key, err := Build(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		k, err := DeriveKey(r, hdr)
		if err != nil || k != key {
			t.Fatalf("row failed to derive: %v %v", k, err)
		}
	}
	// The level-58 nurse holds only the role CSS — must fail.
	if k, _ := DeriveKey([]CSS{ff64.New(60987)}, hdr); k == key {
		t.Fatal("unqualified nurse derived K4")
	}
}
