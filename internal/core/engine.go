package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ppcd/internal/ff64"
	"ppcd/internal/linalg"
)

// This file implements the publisher-side rekey engine: an incremental,
// concurrent ACV builder. The paper's §VIII-A asks the Pub to eliminate
// redundant calculations; the engine does so on three levels:
//
//  1. Incremental rekeying. Every configuration build is cached together
//     with an opaque membership signature supplied by the caller. As long as
//     the signature is unchanged (no join, leave, revocation or credential
//     update touched the configuration), the cached header and key are
//     reused and no null-space solve runs at all — which is exactly the
//     scheme's "rekey only on membership change" semantics: rekeying is
//     never time-driven, it is a consequence of a table-T mutation.
//
//  2. Shared row-hash blocks. All configurations rebuilt in one session
//     share a single nonce sequence z_1…z_Nmax (the §VIII-D session trick,
//     applied across configurations instead of documents). The hash rows
//     a_j = H(r_1‖…‖r_m‖z_j) therefore depend only on the row group (one
//     group per policy), not on the configuration, and each group is hashed
//     once even when its policy appears in several configurations (acp3
//     covers four configurations in the paper's Example 4).
//
//  3. Parallel solves. Distinct configurations are independent linear
//     systems; their kernel solves fan out across one shared bounded worker
//     pool (scheduler.go) fed by every rekey session at once, with blocked
//     elimination (linalg blocked path) over per-worker reusable scratch.
type Engine struct {
	workers int
	sched   *solveScheduler

	mu    sync.Mutex
	cache map[string]engineEntry
	// shardCache and groupedCache are the grouped (§VIII-C) counterparts of
	// cache: per-shard solved sub-headers with their group keys, and
	// per-configuration assembled grouped headers. See grouped.go.
	shardCache   map[string]shardEntry
	groupedCache map[string]groupedEntry

	stats engineCounters
}

type engineEntry struct {
	sig string
	hdr *Header
	key ff64.Elem
}

type shardEntry struct {
	sig string
	hdr *Header
	key ff64.Elem // the shard's long-lived group key S_i
}

type groupedEntry struct {
	sig string
	hdr *GroupedHeader
	key ff64.Elem // the configuration key K
}

type engineCounters struct {
	rekeys    atomic.Uint64
	rebuilds  atomic.Uint64
	cacheHits atomic.Uint64
	solves    atomic.Uint64
}

// EngineStats is a snapshot of the engine's work counters.
type EngineStats struct {
	// Rekeys counts RekeyAll sessions (one per publish).
	Rekeys uint64
	// Rebuilds counts configurations whose ACV was actually re-solved.
	Rebuilds uint64
	// CacheHits counts configurations served from the incremental cache.
	CacheHits uint64
	// Solves counts null-space solves (≥ Rebuilds only on degenerate
	// retries; a steady-state publish performs zero).
	Solves uint64
}

// RowGroup is a named block of subscriber CSS rows shared between
// configurations — one group per policy, so a policy appearing in several
// configurations is hashed against the session nonces only once.
type RowGroup struct {
	ID   string
	Rows [][]CSS
}

// ConfigSpec describes one policy configuration to rekey.
type ConfigSpec struct {
	// ID identifies the configuration across sessions (the cache key).
	ID string
	// Sig is the caller's membership signature: equal signatures mean the
	// configuration's subscriber set is unchanged and the cached header may
	// be reused verbatim.
	Sig string
	// Groups are the row blocks whose concatenation forms matrix A.
	Groups []RowGroup
	// MinN forces header capacity headroom (0 = exactly the row count).
	MinN int
}

// ConfigKeys is the rekey outcome for one configuration.
type ConfigKeys struct {
	Hdr *Header
	Key ff64.Elem
	// Rebuilt reports whether this session solved a fresh ACV (false =
	// cache hit).
	Rebuilt bool
}

// NewEngine creates a rekey engine. workers bounds the parallel solve pool;
// 0 means GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers:      workers,
		sched:        newSolveScheduler(workers),
		cache:        make(map[string]engineEntry),
		shardCache:   make(map[string]shardEntry),
		groupedCache: make(map[string]groupedEntry),
	}
}

// Stats returns a snapshot of the work counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Rekeys:    e.stats.rekeys.Load(),
		Rebuilds:  e.stats.rebuilds.Load(),
		CacheHits: e.stats.cacheHits.Load(),
		Solves:    e.stats.solves.Load(),
	}
}

// Forget drops the cached build of one configuration, forcing the next
// RekeyAll to re-solve it regardless of signature.
func (e *Engine) Forget(id string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.cache, id)
	delete(e.groupedCache, id)
}

// Reset drops every cached build (e.g. after a wholesale table import).
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = make(map[string]engineEntry)
	e.shardCache = make(map[string]shardEntry)
	e.groupedCache = make(map[string]groupedEntry)
}

// CachedConfig is one exported ungrouped cache entry: the configuration's
// membership signature, solved header and key. The key is SECRET material.
type CachedConfig struct {
	ID  string
	Sig string
	Hdr *Header
	Key ff64.Elem
}

// CachedShard is one exported per-shard cache entry of the grouped engine:
// the shard's content signature, sub-header and long-lived group key S_i.
type CachedShard struct {
	ID  string
	Sig string
	Hdr *Header
	Key ff64.Elem
}

// CachedGroupedShard is one shard slot of an exported grouped configuration.
// ShardID references the CachedShard owning the sub-header (the normal case —
// assembled grouped headers share the shard cache's header objects); Hdr is
// the inline fallback for a sub-header no longer present in the shard cache.
type CachedGroupedShard struct {
	ShardID string
	Hdr     *Header
	Wrap    ff64.Elem
}

// CachedGrouped is one exported grouped-configuration cache entry: the shard
// signature vector, rekey nonce, shard slots and configuration key K. Hdr is
// the live assembled header object — callers serializing the cache use the
// slots, while callers restoring may pre-resolve the slots into a header and
// hand it back so the engine shares the object with them (pointer identity
// across the engine cache and the publisher's diff bases is what keeps
// post-restore publishes delta-small).
type CachedGrouped struct {
	ID         string
	Sig        string
	RekeyNonce []byte
	Shards     []CachedGroupedShard
	Key        ff64.Elem
	Hdr        *GroupedHeader
}

// ExportCache snapshots the engine's three cache levels for durable-state
// serialization. Grouped shard sub-headers are exported as references into
// the shard cache wherever the pointer still lives there, so the restored
// caches share header objects exactly like the live ones do (which is what
// keeps post-restore publishes pointer-identical for the delta layer).
func (e *Engine) ExportCache() ([]CachedConfig, []CachedShard, []CachedGrouped) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cfgs := make([]CachedConfig, 0, len(e.cache))
	for id, ent := range e.cache {
		cfgs = append(cfgs, CachedConfig{ID: id, Sig: ent.sig, Hdr: ent.hdr, Key: ent.key})
	}
	shards := make([]CachedShard, 0, len(e.shardCache))
	byHdr := make(map[*Header]string, len(e.shardCache))
	for id, ent := range e.shardCache {
		shards = append(shards, CachedShard{ID: id, Sig: ent.sig, Hdr: ent.hdr, Key: ent.key})
		byHdr[ent.hdr] = id
	}
	grouped := make([]CachedGrouped, 0, len(e.groupedCache))
	for id, ent := range e.groupedCache {
		g := CachedGrouped{
			ID:         id,
			Sig:        ent.sig,
			RekeyNonce: ent.hdr.RekeyNonce,
			Shards:     make([]CachedGroupedShard, len(ent.hdr.Shards)),
			Key:        ent.key,
			Hdr:        ent.hdr,
		}
		for i, sh := range ent.hdr.Shards {
			slot := CachedGroupedShard{Wrap: sh.Wrap}
			if sid, ok := byHdr[sh.Hdr]; ok {
				slot.ShardID = sid
			} else {
				slot.Hdr = sh.Hdr
			}
			g.Shards[i] = slot
		}
		grouped = append(grouped, g)
	}
	return cfgs, shards, grouped
}

// RestoreCache replaces the engine's caches wholesale with previously
// exported entries (durable-state recovery). Grouped shard references are
// resolved against the restored shard cache, re-establishing the shared
// header objects; an unresolvable reference is an error — the state is
// internally inconsistent and the caller should fall back to a cold engine.
func (e *Engine) RestoreCache(cfgs []CachedConfig, shards []CachedShard, grouped []CachedGrouped) error {
	cache := make(map[string]engineEntry, len(cfgs))
	for _, c := range cfgs {
		if c.ID == "" || c.Hdr == nil {
			return fmt.Errorf("core: restoring config cache: empty entry %q", c.ID)
		}
		cache[c.ID] = engineEntry{sig: c.Sig, hdr: c.Hdr, key: c.Key}
	}
	shardCache := make(map[string]shardEntry, len(shards))
	for _, s := range shards {
		if s.ID == "" || s.Hdr == nil {
			return fmt.Errorf("core: restoring shard cache: empty entry %q", s.ID)
		}
		shardCache[s.ID] = shardEntry{sig: s.Sig, hdr: s.Hdr, key: s.Key}
	}
	groupedCache := make(map[string]groupedEntry, len(grouped))
	for _, g := range grouped {
		if g.ID == "" {
			return errors.New("core: restoring grouped cache: empty configuration ID")
		}
		hdr := g.Hdr // pre-resolved by the caller (shared with its own state)
		if hdr == nil {
			hdr = &GroupedHeader{RekeyNonce: g.RekeyNonce, Shards: make([]GroupShard, len(g.Shards))}
			for i, sh := range g.Shards {
				h := sh.Hdr
				if sh.ShardID != "" {
					ent, ok := shardCache[sh.ShardID]
					if !ok {
						return fmt.Errorf("core: grouped configuration %q references unknown shard %q", g.ID, sh.ShardID)
					}
					h = ent.hdr
				}
				if h == nil {
					return fmt.Errorf("core: grouped configuration %q shard %d has no sub-header", g.ID, i)
				}
				hdr.Shards[i] = GroupShard{Hdr: h, Wrap: sh.Wrap}
			}
		}
		groupedCache[g.ID] = groupedEntry{sig: g.Sig, hdr: hdr, key: g.Key}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = cache
	e.shardCache = shardCache
	e.groupedCache = groupedCache
	return nil
}

// RekeyAll produces a header and key for every configuration, reusing cached
// builds for configurations whose signature is unchanged and re-solving the
// rest concurrently over a shared nonce session. Specs with zero total rows
// are rejected (the caller encrypts those under a throwaway key with no
// header).
func (e *Engine) RekeyAll(specs []ConfigSpec) (map[string]ConfigKeys, error) {
	e.stats.rekeys.Add(1)
	out := make(map[string]ConfigKeys, len(specs))

	type dirtyCfg struct {
		spec ConfigSpec
		n    int // header capacity N for this configuration
	}
	var dirty []dirtyCfg
	maxN := 0

	e.mu.Lock()
	for _, s := range specs {
		if ent, ok := e.cache[s.ID]; ok && ent.sig == s.Sig {
			out[s.ID] = ConfigKeys{Hdr: ent.hdr, Key: ent.key}
			continue
		}
		total := 0
		for _, g := range s.Groups {
			total += len(g.Rows)
		}
		if total == 0 {
			e.mu.Unlock()
			return nil, fmt.Errorf("core: configuration %q has no rows: %w", s.ID, ErrNoRows)
		}
		n := total
		if s.MinN > n {
			n = s.MinN
		}
		if n > maxN {
			maxN = n
		}
		dirty = append(dirty, dirtyCfg{spec: s, n: n})
	}
	e.mu.Unlock()
	e.stats.cacheHits.Add(uint64(len(out)))

	if len(dirty) == 0 {
		return out, nil
	}

	// One nonce sequence for the whole session; a configuration with
	// capacity n uses the prefix z_1…z_n.
	zs := make([][]byte, maxN)
	for j := range zs {
		z := make([]byte, NonceSize)
		if err := fillRandom(z); err != nil {
			return nil, err
		}
		zs[j] = z
	}

	// Deduplicate row groups across the dirty configurations: each policy's
	// rows are hashed against the session nonces exactly once, and only up
	// to the largest capacity among the configurations that contain the
	// group (solveConfig reads no further).
	var groups []RowGroup
	groupN := make(map[string]int)
	for _, d := range dirty {
		for _, g := range d.spec.Groups {
			if _, ok := groupN[g.ID]; !ok {
				groups = append(groups, g)
			}
			if d.n > groupN[g.ID] {
				groupN[g.ID] = d.n
			}
		}
	}
	blocks, err := e.hashGroups(groups, groupN, zs)
	if err != nil {
		return nil, err
	}

	type solved struct {
		id  string
		sig string
		hdr *Header
		key ff64.Elem
		err error
	}
	results := make([]solved, len(dirty))
	var wg sync.WaitGroup
	wg.Add(len(dirty))
	for i, d := range dirty {
		e.sched.submit(func(sc *solveScratch) {
			defer wg.Done()
			hdr, key, err := e.solveConfig(d.spec, d.n, zs, blocks, sc)
			results[i] = solved{id: d.spec.ID, sig: d.spec.Sig, hdr: hdr, key: key, err: err}
		})
	}
	wg.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("core: rekeying %q: %w", r.id, r.err)
		}
		e.cache[r.id] = engineEntry{sig: r.sig, hdr: r.hdr, key: r.key}
		out[r.id] = ConfigKeys{Hdr: r.hdr, Key: r.key, Rebuilt: true}
		e.stats.rebuilds.Add(1)
	}
	return out, nil
}

// hashGroups computes, for every distinct row group, the hash block
// a[i][j] = H(row_i ‖ z_j) once, fanning groups across the shared scheduler.
// Each group is hashed only against the first groupN[id] session nonces —
// the largest capacity among the configurations containing it.
func (e *Engine) hashGroups(groups []RowGroup, groupN map[string]int, zs [][]byte) (map[string][]linalg.Vector, error) {
	blocks := make(map[string][]linalg.Vector, len(groups))
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	wg.Add(len(groups))
	for _, g := range groups {
		nz := groupN[g.ID]
		e.sched.submit(func(*solveScratch) {
			defer wg.Done()
			rows := make([]linalg.Vector, len(g.Rows))
			for i, css := range g.Rows {
				if len(css) == 0 {
					mu.Lock()
					if firstErr == nil {
						firstErr = ErrEmptyCSS
					}
					mu.Unlock()
					return
				}
				v := linalg.NewVector(nz)
				rh := NewRowHasher(css)
				for j := 0; j < nz; j++ {
					v[j] = rh.Hash(zs[j])
				}
				rows[i] = v
			}
			mu.Lock()
			blocks[g.ID] = rows
			mu.Unlock()
		})
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return blocks, nil
}

// solveConfig assembles matrix A for one configuration from the shared hash
// blocks — into the worker's reusable scratch — and solves for a fresh ACV
// and key with the blocked elimination path.
func (e *Engine) solveConfig(s ConfigSpec, n int, zs [][]byte, blocks map[string][]linalg.Vector, sc *solveScratch) (*Header, ff64.Elem, error) {
	total := 0
	for _, g := range s.Groups {
		total += len(g.Rows)
	}
	a := sc.ws.Matrix(total, n+1)
	i := 0
	for _, g := range s.Groups {
		for _, hashRow := range blocks[g.ID] {
			row := a.Row(i)
			row[0] = ff64.One
			copy(row[1:], hashRow[:n])
			i++
		}
	}
	e.stats.solves.Add(1)
	y, err := a.RandomKernelVectorBlocked(sc.ws)
	if err != nil {
		return nil, 0, fmt.Errorf("solving AY=0: %w", err)
	}
	key, err := ff64.RandNonZero()
	if err != nil {
		return nil, 0, err
	}
	x := y
	x[0] = ff64.Add(x[0], key)
	if tailZero(x) {
		// Cannot happen with ≥1 row (the all-ones first column forces a
		// non-zero tail on every non-zero kernel vector), but stay defensive.
		return nil, 0, errDegenerate
	}
	return &Header{X: x, Zs: zs[:n:n]}, key, nil
}
