package core

import (
	"math/rand"
	"testing"

	"ppcd/internal/ff64"
)

// TestKeyDistributionUniformShape is a statistical sanity check of key
// indistinguishability (§VI-B2): keys derived by *unqualified* CSS lists
// from a fixed header should scatter across the field rather than cluster —
// we bucket the top bits of 512 derived values and require every bucket to
// be populated within loose bounds.
func TestKeyDistributionUniformShape(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rows := randRows(rng, 4, 2)
	hdr, _, err := Build(rows, 6)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 512
	const buckets = 8
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		fake := []CSS{ff64.New(rng.Uint64() | 1), ff64.New(rng.Uint64() | 1)}
		k, err := DeriveKey(fake, hdr)
		if err != nil {
			t.Fatal(err)
		}
		counts[uint64(k)>>58&(buckets-1)]++
	}
	for b, c := range counts {
		// Expected 64 per bucket; allow a wide band (4σ ≈ ±31).
		if c < 20 || c > 140 {
			t.Errorf("bucket %d has %d of %d samples: derived keys not scattered", b, c, samples)
		}
	}
}

// TestNoncesUniquePerBuild checks the z_j sequence freshness requirement
// (τ·N > 160): within one header, and across two headers, all nonces are
// pairwise distinct with overwhelming probability.
func TestNoncesUniquePerBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	rows := randRows(rng, 3, 1)
	h1, _, err := Build(rows, 16)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := Build(rows, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, h := range []*Header{h1, h2} {
		for _, z := range h.Zs {
			if len(z) != NonceSize {
				t.Fatalf("nonce size %d", len(z))
			}
			if seen[string(z)] {
				t.Fatal("duplicate nonce across sessions")
			}
			seen[string(z)] = true
		}
	}
}

// TestLargeScaleSoundness exercises the Lemma-1 soundness invariant at a
// realistic scale (hundreds of rows, padded N).
func TestLargeScaleSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("large build in -short mode")
	}
	rng := rand.New(rand.NewSource(79))
	rows := randRows(rng, 300, 3)
	hdr, key, err := Build(rows, 350)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rows); i += 17 {
		k, err := DeriveKey(rows[i], hdr)
		if err != nil || k != key {
			t.Fatalf("row %d failed: %v", i, err)
		}
	}
	if hdr.N() != 350 {
		t.Errorf("N = %d", hdr.N())
	}
}
