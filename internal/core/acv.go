// Package core implements the paper's primary contribution: the access
// control vector (ACV) group key management scheme of §V-C.
//
// For one policy configuration the publisher holds, for every subscriber i
// that may satisfy policy k, the ordered list of conditional subscription
// secrets (CSSs) r_{i,1}, …, r_{i,m_k} the subscriber received for that
// policy's conditions. The publisher
//
//  1. picks N ≥ (total number of subscriber×policy rows) and N fresh nonces
//     z_1 … z_N,
//  2. forms the matrix A with rows (1, a_1, …, a_N) where
//     a_j = H(r_1 ‖ … ‖ r_m ‖ z_j),
//  3. solves A·Y = 0 for a random non-trivial access control vector Y, and
//  4. broadcasts X = (K, 0, …, 0)ᵀ + Y along with z_1 … z_N.
//
// A qualified subscriber recomputes its row ν (a key extraction vector, KEV)
// and recovers K = ν·X, because ν·Y = 0 and the first entry of ν is 1.
// Rekeying is just a re-run with a fresh key and fresh nonces: no message is
// sent to any individual subscriber.
package core

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync/atomic"

	"ppcd/internal/ff64"
	"ppcd/internal/linalg"
)

// NonceSize is the byte length τ/8 of each z_j. The paper requires
// τ·N > 160 to keep nonce sequences distinct across sessions; a 16-byte
// nonce satisfies this for every N ≥ 1.
const NonceSize = 16

// CSS is a conditional subscription secret: a random element of the GKM
// field F_q delivered obliviously to a subscriber for one attribute
// condition.
type CSS = ff64.Elem

// NewCSS draws a fresh conditional subscription secret.
func NewCSS() (CSS, error) { return ff64.RandNonZero() }

// CSSFromBytes decodes a CSS from its canonical 8-byte encoding (the payload
// of a registration envelope).
func CSSFromBytes(b []byte) (CSS, error) { return ff64.FromBytes(b) }

// Header is the public rekey material broadcast with an encrypted
// subdocument: the masked vector X (length N+1) and the nonces z_1…z_N.
// Publishing it reveals nothing about the key K (key indistinguishability,
// §VI-B2).
type Header struct {
	X  linalg.Vector
	Zs [][]byte
}

// N returns the maximum-user parameter the header was built for.
func (h *Header) N() int { return len(h.Zs) }

// Size returns the broadcast overhead of the header in bytes: the
// serialized X entries plus the nonces. This is the quantity plotted in
// Fig. 5 of the paper.
func (h *Header) Size() int {
	return 8*len(h.X) + NonceSize*len(h.Zs)
}

// Clone returns a deep copy of the header.
func (h *Header) Clone() *Header {
	out := &Header{X: h.X.Clone(), Zs: make([][]byte, len(h.Zs))}
	for i, z := range h.Zs {
		out.Zs[i] = append([]byte(nil), z...)
	}
	return out
}

// Errors returned by Build and DeriveKey.
var (
	ErrNoRows     = errors.New("core: no subscriber rows; encrypt without a header instead")
	ErrNTooSmall  = errors.New("core: N must be at least the number of subscriber rows")
	ErrEmptyCSS   = errors.New("core: a subscriber row must contain at least one CSS")
	ErrBadHeader  = errors.New("core: malformed header")
	ErrBadKey     = errors.New("core: derived key is zero; subscriber is not authorized or header is stale")
	errDegenerate = errors.New("core: degenerate X (first entry followed by zeros); retry")
)

// prefixAbsorptions counts how many times a CSS prefix r_1‖…‖r_m was fed
// into SHA-256 — once per HashRow call, but only once per NewRowHasher no
// matter how many nonces the row is hashed against. White-box tests assert
// the drop.
var prefixAbsorptions atomic.Uint64

// HashRow computes a_j = H(r_1 ‖ r_2 ‖ … ‖ r_m ‖ z) mapped into F_q. The
// hash H is SHA-256 modelled as a random oracle (paper §VI-B); the first 8
// bytes of the digest are reduced into the field. Callers hashing one row
// against many nonces should use RowHasher, which absorbs the CSS prefix
// only once.
func HashRow(css []CSS, z []byte) ff64.Elem {
	prefixAbsorptions.Add(1)
	h := sha256.New()
	for _, r := range css {
		h.Write(r.Bytes())
	}
	h.Write(z)
	digest := h.Sum(nil)
	return ff64.New(binary.BigEndian.Uint64(digest[:8]))
}

// RowHasher computes a_j = H(r_1 ‖ … ‖ r_m ‖ z_j) for one fixed CSS row
// across many nonces. The prefix r_1‖…‖r_m is identical for every nonce, so
// the hasher absorbs it once and clones the SHA-256 midstate per nonce (via
// the hash's encoding.BinaryMarshaler state) instead of rehashing the prefix
// each time. A RowHasher is not safe for concurrent use; the rekey engine
// creates one per (row, goroutine).
type RowHasher struct {
	state []byte
	h     hash.Hash
	buf   [sha256.Size]byte
}

// NewRowHasher absorbs the row's CSS prefix once.
func NewRowHasher(css []CSS) *RowHasher {
	prefixAbsorptions.Add(1)
	h := sha256.New()
	for _, r := range css {
		h.Write(r.Bytes())
	}
	state, err := h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		// crypto/sha256's marshaler cannot fail.
		panic(fmt.Sprintf("core: sha256 midstate marshal: %v", err))
	}
	return &RowHasher{state: state, h: h}
}

// Hash returns H(prefix ‖ z) reduced into F_q.
func (rh *RowHasher) Hash(z []byte) ff64.Elem {
	if err := rh.h.(encoding.BinaryUnmarshaler).UnmarshalBinary(rh.state); err != nil {
		panic(fmt.Sprintf("core: sha256 midstate restore: %v", err))
	}
	rh.h.Write(z)
	digest := rh.h.Sum(rh.buf[:0])
	return ff64.New(binary.BigEndian.Uint64(digest[:8]))
}

// KEV computes the key extraction vector (1, a_1, …, a_N) for a subscriber
// whose CSSs for the chosen policy are css, against the nonces in hdr.
func KEV(css []CSS, hdr *Header) (linalg.Vector, error) {
	if len(css) == 0 {
		return nil, ErrEmptyCSS
	}
	if len(hdr.X) != len(hdr.Zs)+1 {
		return nil, fmt.Errorf("%w: |X|=%d, N=%d", ErrBadHeader, len(hdr.X), len(hdr.Zs))
	}
	v := linalg.NewVector(len(hdr.Zs) + 1)
	v[0] = ff64.One
	rh := NewRowHasher(css)
	for j, z := range hdr.Zs {
		v[j+1] = rh.Hash(z)
	}
	return v, nil
}

// Build generates a fresh key K and the public header for one policy
// configuration. rows holds, for each qualified subscriber×policy pair, the
// ordered CSS list for that policy's conditions. n is the maximum-user
// parameter N and must satisfy n ≥ len(rows) (paper eq. (1)).
func Build(rows [][]CSS, n int) (*Header, ff64.Elem, error) {
	if len(rows) == 0 {
		return nil, 0, ErrNoRows
	}
	if n < len(rows) {
		return nil, 0, fmt.Errorf("%w: N=%d < %d rows", ErrNTooSmall, n, len(rows))
	}
	key, err := ff64.RandNonZero()
	if err != nil {
		return nil, 0, err
	}
	hdr, err := buildWithKey(rows, n, key)
	if err != nil {
		return nil, 0, err
	}
	return hdr, key, nil
}

func tailZero(x linalg.Vector) bool {
	for _, e := range x[1:] {
		if e != ff64.Zero {
			return false
		}
	}
	return true
}

// DeriveKey recovers the configuration key from the broadcast header using
// the subscriber's CSS list for one satisfied policy. If the subscriber is
// not qualified the result is an unpredictable field element (with
// negligible probability of equalling the real key); callers detect failure
// through authenticated decryption of the payload.
func DeriveKey(css []CSS, hdr *Header) (ff64.Elem, error) {
	kev, err := KEV(css, hdr)
	if err != nil {
		return 0, err
	}
	k, err := kev.Dot(hdr.X)
	if err != nil {
		return 0, err
	}
	return k, nil
}

// ExpandKey expands a GKM field key into a 32-byte symmetric key for
// AES-256-GCM. The expansion honours the paper's observation (§VIII-D) that
// the scheme supports keys longer than one hash output.
func ExpandKey(k ff64.Elem) [32]byte {
	h := sha256.New()
	h.Write([]byte("ppcd/acv-key-expand/v1"))
	h.Write(k.Bytes())
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
