package core

import (
	"testing"

	"ppcd/internal/ff64"
)

func engRows(base, count, conds int) [][]CSS {
	rows := make([][]CSS, count)
	for i := range rows {
		row := make([]CSS, conds)
		for j := range row {
			row[j] = ff64.New(uint64(base + i*conds + j + 1))
		}
		rows[i] = row
	}
	return rows
}

func TestEngineRekeyAndDerive(t *testing.T) {
	e := NewEngine(2)
	gA := RowGroup{ID: "acpA", Rows: engRows(0, 3, 2)}
	gB := RowGroup{ID: "acpB", Rows: engRows(100, 2, 2)}
	specs := []ConfigSpec{
		{ID: "A", Sig: "a@1", Groups: []RowGroup{gA}},
		{ID: "A|B", Sig: "a@1|b@1", Groups: []RowGroup{gA, gB}},
	}
	out, err := e.RekeyAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d results", len(out))
	}
	for id, ck := range out {
		if !ck.Rebuilt {
			t.Errorf("%s: expected rebuild on first session", id)
		}
	}
	// Every member row derives the configuration key; an outside row does not.
	for _, row := range gA.Rows {
		for _, id := range []string{"A", "A|B"} {
			k, err := DeriveKey(row, out[id].Hdr)
			if err != nil {
				t.Fatal(err)
			}
			if k != out[id].Key {
				t.Errorf("config %s: member row derived wrong key", id)
			}
		}
	}
	for _, row := range gB.Rows {
		if k, _ := DeriveKey(row, out["A"].Hdr); k == out["A"].Key {
			t.Error("non-member row derived config A's key")
		}
	}
	// Shared session: both configurations were rebuilt over one nonce set.
	if string(out["A"].Hdr.Zs[0]) != string(out["A|B"].Hdr.Zs[0]) {
		t.Error("session nonces not shared across configurations")
	}
}

func TestEngineIncrementalCache(t *testing.T) {
	e := NewEngine(0)
	g := RowGroup{ID: "acpA", Rows: engRows(0, 3, 1)}
	spec := ConfigSpec{ID: "A", Sig: "a@1", Groups: []RowGroup{g}}

	first, err := e.RekeyAll([]ConfigSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	solvesAfterFirst := e.Stats().Solves

	// Same signature → cache hit, zero additional solves, identical header.
	second, err := e.RekeyAll([]ConfigSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Solves; got != solvesAfterFirst {
		t.Errorf("steady-state rekey solved %d systems", got-solvesAfterFirst)
	}
	if second["A"].Rebuilt {
		t.Error("steady-state rekey reported a rebuild")
	}
	if second["A"].Hdr != first["A"].Hdr || second["A"].Key != first["A"].Key {
		t.Error("cache hit did not reuse header and key")
	}
	if e.Stats().CacheHits == 0 {
		t.Error("cache hit not counted")
	}

	// Changed signature → rebuild with a fresh key.
	spec.Sig = "a@2"
	third, err := e.RekeyAll([]ConfigSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if !third["A"].Rebuilt {
		t.Error("membership change did not rebuild")
	}
	if third["A"].Key == first["A"].Key {
		t.Error("rebuild reused the old key")
	}

	// Forget forces a rebuild even with an unchanged signature.
	e.Forget("A")
	fourth, err := e.RekeyAll([]ConfigSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if !fourth["A"].Rebuilt {
		t.Error("Forget did not force a rebuild")
	}
}

func TestEngineRejectsEmptyConfig(t *testing.T) {
	e := NewEngine(0)
	_, err := e.RekeyAll([]ConfigSpec{{ID: "A", Sig: "s", Groups: nil}})
	if err == nil {
		t.Fatal("zero-row configuration accepted")
	}
}

func TestEngineMinN(t *testing.T) {
	e := NewEngine(0)
	g := RowGroup{ID: "acpA", Rows: engRows(0, 2, 1)}
	out, err := e.RekeyAll([]ConfigSpec{{ID: "A", Sig: "s", Groups: []RowGroup{g}, MinN: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if n := out["A"].Hdr.N(); n != 7 {
		t.Errorf("header N = %d, want 7", n)
	}
	if k, err := DeriveKey(g.Rows[0], out["A"].Hdr); err != nil || k != out["A"].Key {
		t.Errorf("derive under padded N failed: %v", err)
	}
}
