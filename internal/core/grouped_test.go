package core

import (
	"testing"

	"ppcd/internal/ff64"
)

// deriveGrouped derives the configuration key through one member row,
// verifying against the expected key.
func deriveGrouped(t *testing.T, row []CSS, ck GroupedConfigKeys) {
	t.Helper()
	k, _, err := DeriveKeyGrouped(row, ck.Hdr, func(k ff64.Elem) bool { return k == ck.Key })
	if err != nil {
		t.Fatalf("member derivation failed: %v", err)
	}
	if k != ck.Key {
		t.Fatal("member derived wrong configuration key")
	}
}

func groupedSpecs(shA1, shA2, shB ShardSpec) []GroupedConfigSpec {
	return []GroupedConfigSpec{
		{ID: "A", Shards: []ShardSpec{shA1, shA2}},
		{ID: "A|B", Shards: []ShardSpec{shA1, shA2, shB}},
	}
}

func TestEngineGroupedRekeyAndDerive(t *testing.T) {
	e := NewEngine(2)
	shA1 := ShardSpec{ID: "acpA/0", Sig: "s1", Rows: engRows(0, 3, 2)}
	shA2 := ShardSpec{ID: "acpA/1", Sig: "s2", Rows: engRows(50, 2, 2)}
	shB := ShardSpec{ID: "acpB/0", Sig: "s3", Rows: engRows(100, 2, 2)}

	out, err := e.RekeyAllGrouped(groupedSpecs(shA1, shA2, shB))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d results", len(out))
	}
	// Shared shards solve once: 3 distinct shards across 2 configurations.
	if got := e.Stats().Solves; got != 3 {
		t.Errorf("first grouped session solved %d shards, want 3", got)
	}
	for _, row := range append(append([][]CSS{}, shA1.Rows...), shA2.Rows...) {
		deriveGrouped(t, row, out["A"])
		deriveGrouped(t, row, out["A|B"])
	}
	for _, row := range shB.Rows {
		deriveGrouped(t, row, out["A|B"])
		if _, _, err := DeriveKeyGrouped(row, out["A"].Hdr, func(k ff64.Elem) bool { return k == out["A"].Key }); err != ErrBadKey {
			t.Errorf("non-member derived config A's key: %v", err)
		}
	}
	// The same shard sub-header backs both configurations, with distinct
	// configuration keys and wraps.
	if out["A"].Hdr.Shards[0].Hdr != out["A|B"].Hdr.Shards[0].Hdr {
		t.Error("shared shard not reused across configurations")
	}
	if out["A"].Key == out["A|B"].Key {
		t.Error("configurations share a key")
	}
}

func TestEngineGroupedIncrementalShardSolve(t *testing.T) {
	e := NewEngine(0)
	shA1 := ShardSpec{ID: "acpA/0", Sig: "s1", Rows: engRows(0, 3, 2)}
	shA2 := ShardSpec{ID: "acpA/1", Sig: "s2", Rows: engRows(50, 2, 2)}
	shB := ShardSpec{ID: "acpB/0", Sig: "s3", Rows: engRows(100, 2, 2)}

	first, err := e.RekeyAllGrouped(groupedSpecs(shA1, shA2, shB))
	if err != nil {
		t.Fatal(err)
	}
	base := e.Stats().Solves

	// Steady state: identical signatures → full cache hit, same headers.
	second, err := e.RekeyAllGrouped(groupedSpecs(shA1, shA2, shB))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Solves; got != base {
		t.Errorf("steady-state grouped rekey solved %d shards", got-base)
	}
	if second["A"].Rebuilt || second["A"].Hdr != first["A"].Hdr || second["A"].Key != first["A"].Key {
		t.Error("steady state did not reuse the cached grouped build")
	}

	// One shard's content changes (a leave): exactly one shard re-solves,
	// but every configuration containing it gets a fresh key and fresh
	// wraps while the clean shards keep their sub-headers.
	shA2dirty := ShardSpec{ID: "acpA/1", Sig: "s2'", Rows: engRows(50, 1, 2)}
	third, err := e.RekeyAllGrouped(groupedSpecs(shA1, shA2dirty, shB))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Solves; got != base+1 {
		t.Errorf("single-shard change solved %d shards, want 1", got-base)
	}
	for _, id := range []string{"A", "A|B"} {
		if !third[id].Rebuilt {
			t.Errorf("config %s not rebuilt after shard change", id)
		}
		if third[id].Key == first[id].Key {
			t.Errorf("config %s kept its key across a membership change", id)
		}
		if third[id].Hdr.Shards[0].Hdr != first[id].Hdr.Shards[0].Hdr {
			t.Errorf("config %s re-solved a clean shard", id)
		}
		if third[id].Hdr.Shards[1].Hdr == first[id].Hdr.Shards[1].Hdr {
			t.Errorf("config %s kept the dirty shard's sub-header", id)
		}
	}
	// Remaining member of the dirty shard still derives; departed row fails.
	deriveGrouped(t, shA2dirty.Rows[0], third["A"])
	departed := shA2.Rows[1]
	if _, _, err := DeriveKeyGrouped(departed, third["A"].Hdr, func(k ff64.Elem) bool { return k == third["A"].Key }); err != ErrBadKey {
		t.Error("departed row still derives the new configuration key")
	}

	// A vanished shard (all members left) changes the configuration
	// signature without any solve.
	fourth, err := e.RekeyAllGrouped([]GroupedConfigSpec{{ID: "A", Shards: []ShardSpec{shA1}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Solves; got != base+1 {
		t.Errorf("shard removal solved %d shards, want 0", got-base-1)
	}
	if !fourth["A"].Rebuilt || len(fourth["A"].Hdr.Shards) != 1 {
		t.Error("shard removal did not reassemble the configuration")
	}

	// Reset forgets everything, including shard solves.
	e.Reset()
	if _, err := e.RekeyAllGrouped(groupedSpecs(shA1, shA2, shB)); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Solves; got != base+1+3 {
		t.Errorf("post-Reset rekey solved %d shards, want 3", got-base-1)
	}
}

func TestEngineGroupedRejectsEmptyConfig(t *testing.T) {
	e := NewEngine(0)
	if _, err := e.RekeyAllGrouped([]GroupedConfigSpec{{ID: "A"}}); err == nil {
		t.Fatal("zero-row grouped configuration accepted")
	}
	sh := ShardSpec{ID: "acpA/0", Sig: "s", Rows: [][]CSS{{}}}
	if _, err := e.RekeyAllGrouped([]GroupedConfigSpec{{ID: "A", Shards: []ShardSpec{sh}}}); err == nil {
		t.Fatal("empty CSS row accepted")
	}
}
