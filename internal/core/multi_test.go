package core

import (
	"math/rand"
	"testing"

	"ppcd/internal/ff64"
)

func TestBuildMultiSharedSession(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := randRows(rng, 6, 2)
	headers, keys, err := BuildMulti(rows, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 3 || len(keys) != 3 {
		t.Fatalf("got %d headers, %d keys", len(headers), len(keys))
	}
	// All headers share the nonce set.
	for i := 1; i < 3; i++ {
		for j := range headers[0].Zs {
			if string(headers[0].Zs[j]) != string(headers[i].Zs[j]) {
				t.Fatal("nonces not shared")
			}
		}
	}
	// Keys are pairwise distinct (probability of collision ~1/q).
	if keys[0] == keys[1] || keys[1] == keys[2] || keys[0] == keys[2] {
		t.Error("duplicate keys in shared session")
	}
	// Every subscriber derives every key.
	for _, css := range rows {
		for i, hdr := range headers {
			k, err := DeriveKey(css, hdr)
			if err != nil || k != keys[i] {
				t.Fatalf("derivation failed for doc %d: %v", i, err)
			}
		}
	}
}

func TestBuildMultiValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rows := randRows(rng, 3, 1)
	if _, _, err := BuildMulti(rows, 4, 0); err == nil {
		t.Error("count=0 accepted")
	}
	if _, _, err := BuildMulti(nil, 4, 1); err != ErrNoRows {
		t.Errorf("empty rows: %v", err)
	}
	if _, _, err := BuildMulti(rows, 2, 1); err == nil {
		t.Error("N < rows accepted")
	}
	if _, _, err := BuildMulti([][]CSS{{}}, 4, 1); err != ErrEmptyCSS {
		t.Errorf("empty CSS: %v", err)
	}
}

func TestKEVCacheAmortizesDerivation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows := randRows(rng, 5, 2)
	headers, keys, err := BuildMulti(rows, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewKEVCache(rows[2], headers[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, hdr := range headers {
		k, err := cache.Derive(hdr)
		if err != nil {
			t.Fatal(err)
		}
		if k != keys[i] {
			t.Fatalf("cached derivation wrong for doc %d", i)
		}
	}
	// Mismatched header length is rejected.
	other, _, err := Build(rows, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Derive(other); err == nil {
		t.Error("cache accepted header with different N")
	}
}

func TestKEVCacheValidation(t *testing.T) {
	if _, err := NewKEVCache(nil, &Header{X: make([]ff64.Elem, 2), Zs: [][]byte{{1}}}); err != ErrEmptyCSS {
		t.Errorf("empty css: %v", err)
	}
}

func TestCrossKeyIndependenceInSharedSession(t *testing.T) {
	// §VIII-D advantage: unlike the marker scheme, learning one session key
	// gives no algebraic handle on another. Check that an outsider knowing
	// k1 still fails to derive k2 (the keys come from independent kernel
	// samples).
	rng := rand.New(rand.NewSource(14))
	rows := randRows(rng, 4, 2)
	headers, keys, err := BuildMulti(rows, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// X vectors differ even though nonces are shared.
	same := true
	for i := range headers[0].X {
		if headers[0].X[i] != headers[1].X[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shared-session headers have identical X")
	}
	// The XOR-style attack of the marker scheme has no analogue: X1 - X2 is
	// NOT (k1 - k2, 0, …, 0) because the ACVs are independent.
	diffIsKeyDelta := headers[0].X[0] == ff64.Add(headers[1].X[0], ff64.Sub(keys[0], keys[1]))
	tailEqual := true
	for i := 1; i < len(headers[0].X); i++ {
		if headers[0].X[i] != headers[1].X[i] {
			tailEqual = false
			break
		}
	}
	if diffIsKeyDelta && tailEqual {
		t.Error("X difference leaks key delta (ACVs not independent)")
	}
}

func TestBuildGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rows := randRows(rng, 23, 2)
	g, key, err := BuildGrouped(rows, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Shards) != 5 { // ceil(23/5)
		t.Fatalf("shards = %d, want 5", len(g.Shards))
	}
	if g.Size() == 0 {
		t.Error("zero grouped size")
	}
	// Every subscriber recovers the same key from some group.
	for i, css := range rows {
		k, idx, err := DeriveKeyGrouped(css, g, func(k ff64.Elem) bool { return k == key })
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if k != key {
			t.Fatalf("row %d: wrong key", i)
		}
		if idx != i/5 {
			t.Fatalf("row %d: derived from group %d, expected %d", i, idx, i/5)
		}
	}
	// An outsider fails across all groups.
	outsider := randRows(rng, 1, 2)[0]
	if _, _, err := DeriveKeyGrouped(outsider, g, func(k ff64.Elem) bool { return k == key }); err != ErrBadKey {
		t.Errorf("outsider: %v", err)
	}
}

func TestBuildGroupedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	rows := randRows(rng, 3, 1)
	if _, _, err := BuildGrouped(rows, 0); err == nil {
		t.Error("groupSize=0 accepted")
	}
	if _, _, err := BuildGrouped(nil, 5); err != ErrNoRows {
		t.Errorf("empty rows: %v", err)
	}
	if _, _, err := DeriveKeyGrouped(rows[0], nil, nil); err != ErrBadHeader {
		t.Error("nil grouped header accepted")
	}
}

func TestDeriveKeyGroupedNilVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := randRows(rng, 4, 1)
	g, key, err := BuildGrouped(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	k, _, err := DeriveKeyGrouped(rows[0], g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k != key {
		t.Error("nil-verify derivation wrong for first group member")
	}
}

func TestGroupedMatchesUngroupedSemantics(t *testing.T) {
	// groupSize >= len(rows) degenerates to a single small Build plus one
	// wrap of the configuration key.
	rng := rand.New(rand.NewSource(18))
	rows := randRows(rng, 6, 2)
	g, key, err := BuildGrouped(rows, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Shards) != 1 {
		t.Fatalf("shards = %d", len(g.Shards))
	}
	for _, css := range rows {
		s, err := DeriveKey(css, g.Shards[0].Hdr)
		if err != nil || g.Unwrap(0, s) != key {
			t.Fatal("single-shard derivation failed")
		}
	}
}

func TestGroupedWrapHidesKeyFromOtherShards(t *testing.T) {
	// Two-level secrecy: a member of shard 0 holds that shard's group key
	// but must not be able to unwrap the configuration key through any other
	// shard's wrap, and the group keys themselves must be pairwise distinct.
	rng := rand.New(rand.NewSource(19))
	rows := randRows(rng, 8, 2)
	g, key, err := BuildGrouped(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Shards) != 2 {
		t.Fatalf("shards = %d", len(g.Shards))
	}
	s0, err := DeriveKey(rows[0], g.Shards[0].Hdr)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := DeriveKey(rows[4], g.Shards[1].Hdr)
	if err != nil {
		t.Fatal(err)
	}
	if s0 == s1 {
		t.Fatal("shards share a group key")
	}
	if g.Unwrap(0, s0) != key || g.Unwrap(1, s1) != key {
		t.Fatal("members cannot unwrap the configuration key")
	}
	if g.Unwrap(1, s0) == key {
		t.Error("shard-0 group key unwraps shard 1's wrap")
	}
	// A direct-mode header (nil RekeyNonce) passes the shard key through.
	direct := &GroupedHeader{Shards: []GroupShard{{Hdr: g.Shards[0].Hdr}}}
	if direct.Unwrap(0, s0) != s0 {
		t.Error("direct mode did not pass the shard key through")
	}
}
