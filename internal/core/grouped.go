package core

import (
	"fmt"
	"strings"
	"sync"

	"ppcd/internal/ff64"
)

// This file is the grouped (§VIII-C) half of the rekey engine. A grouped
// configuration's rows are partitioned into shards; each shard is an
// independent small ACV system delivering a long-lived GROUP key, and the
// per-publish configuration key travels wrapped under every group key
// (multi.go, GroupedHeader). The engine caches on two levels:
//
//   - shardCache, keyed by the shard's stable ID (policy + group number),
//     holds the solved sub-header and group key for the shard's current row
//     content. A shard re-solves only when its signature — a digest of its
//     rows — changes, so a single join/leave/revocation costs ONE small
//     solve of (N/g)³ work instead of a full N³ configuration solve.
//   - groupedCache, keyed by the configuration ID, holds the assembled
//     GroupedHeader and configuration key. Its signature is the vector of
//     shard signatures: any shard change (or shard appearing/vanishing)
//     triggers a cheap reassembly — fresh configuration key, fresh rekey
//     nonce, one hash per shard for the wraps — while clean shards keep
//     their sub-headers, nonces and therefore the subscribers' cached KEVs.
//
// Forward and backward secrecy across the two levels: a leaver knows its old
// shard's group key, but the dirty shard re-solves to a fresh one and every
// other shard's key was never derivable by it, so no wrap of the new
// configuration key opens for the leaver. A joiner's fresh group key
// likewise unwraps only configuration keys published after the join.

// ShardSpec describes one row shard of a grouped configuration. ID is stable
// across sessions and configurations (shards are shared between
// configurations that contain the same policy, exactly like RowGroups in the
// ungrouped path); Sig changes iff the shard's row content changes.
type ShardSpec struct {
	ID   string
	Sig  string
	Rows [][]CSS
}

// GroupedConfigSpec describes one policy configuration to rekey in grouped
// mode. The shard order is the caller's (deterministic) order; it defines
// the sub-header order inside the resulting GroupedHeader.
type GroupedConfigSpec struct {
	// ID identifies the configuration across sessions (the cache key).
	ID string
	// Shards are the row shards whose union forms the configuration's
	// subscriber set.
	Shards []ShardSpec
}

// GroupedConfigKeys is the grouped rekey outcome for one configuration.
type GroupedConfigKeys struct {
	Hdr *GroupedHeader
	Key ff64.Elem
	// Rebuilt reports whether this session reassembled the grouped header
	// (false = full cache hit).
	Rebuilt bool
}

// groupedSig combines the shard identities and signatures into the
// configuration-level cache signature.
func groupedSig(s GroupedConfigSpec) string {
	var b strings.Builder
	for _, sh := range s.Shards {
		b.WriteString(sh.ID)
		b.WriteByte('=')
		b.WriteString(sh.Sig)
		b.WriteByte('|')
	}
	return b.String()
}

// RekeyAllGrouped is the grouped counterpart of RekeyAll: it produces a
// grouped header and key for every configuration, re-solving only shards
// whose row content changed and reassembling only configurations touched by
// a dirty shard. Dirty shards shared between configurations are solved once.
// Specs with zero total rows are rejected, mirroring RekeyAll.
func (e *Engine) RekeyAllGrouped(specs []GroupedConfigSpec) (map[string]GroupedConfigKeys, error) {
	e.stats.rekeys.Add(1)
	out := make(map[string]GroupedConfigKeys, len(specs))

	var dirty []GroupedConfigSpec
	var solveList []ShardSpec
	queued := make(map[string]bool)
	maxN := 0

	e.mu.Lock()
	for _, s := range specs {
		if ent, ok := e.groupedCache[s.ID]; ok && ent.sig == groupedSig(s) {
			out[s.ID] = GroupedConfigKeys{Hdr: ent.hdr, Key: ent.key}
			continue
		}
		total := 0
		for _, sh := range s.Shards {
			total += len(sh.Rows)
		}
		if total == 0 {
			e.mu.Unlock()
			return nil, fmt.Errorf("core: configuration %q has no rows: %w", s.ID, ErrNoRows)
		}
		dirty = append(dirty, s)
		for _, sh := range s.Shards {
			if queued[sh.ID] {
				continue
			}
			queued[sh.ID] = true
			if ent, ok := e.shardCache[sh.ID]; ok && ent.sig == sh.Sig {
				continue // clean shard: sub-header and group key reused
			}
			solveList = append(solveList, sh)
			if len(sh.Rows) > maxN {
				maxN = len(sh.Rows)
			}
		}
	}
	e.mu.Unlock()
	e.stats.cacheHits.Add(uint64(len(out)))

	if len(dirty) == 0 {
		return out, nil
	}

	// One nonce sequence for all shards solved this session; a shard of n
	// rows uses the prefix z_1…z_n (the same cross-system nonce sharing the
	// ungrouped engine applies across configurations).
	zs := make([][]byte, maxN)
	for j := range zs {
		z := make([]byte, NonceSize)
		if err := fillRandom(z); err != nil {
			return nil, err
		}
		zs[j] = z
	}

	type solvedShard struct {
		id  string
		sig string
		hdr *Header
		key ff64.Elem
		err error
	}
	results := make([]solvedShard, len(solveList))
	var wg sync.WaitGroup
	wg.Add(len(solveList))
	for i, sh := range solveList {
		e.sched.submit(func(sc *solveScratch) {
			defer wg.Done()
			hdr, key, err := e.solveShard(sh, zs, sc)
			results[i] = solvedShard{id: sh.ID, sig: sh.Sig, hdr: hdr, key: key, err: err}
		})
	}
	wg.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("core: rekeying shard %q: %w", r.id, r.err)
		}
		e.shardCache[r.id] = shardEntry{sig: r.sig, hdr: r.hdr, key: r.key}
	}
	for _, s := range dirty {
		key, err := ff64.RandNonZero()
		if err != nil {
			return nil, err
		}
		nonce := make([]byte, NonceSize)
		if err := fillRandom(nonce); err != nil {
			return nil, err
		}
		hdr := &GroupedHeader{RekeyNonce: nonce, Shards: make([]GroupShard, len(s.Shards))}
		for i, sh := range s.Shards {
			ent, ok := e.shardCache[sh.ID]
			if !ok {
				return nil, fmt.Errorf("core: configuration %q references unsolved shard %q", s.ID, sh.ID)
			}
			hdr.Shards[i] = GroupShard{Hdr: ent.hdr, Wrap: hdr.WrapKey(key, ent.key)}
		}
		e.groupedCache[s.ID] = groupedEntry{sig: groupedSig(s), hdr: hdr, key: key}
		out[s.ID] = GroupedConfigKeys{Hdr: hdr, Key: key, Rebuilt: true}
		e.stats.rebuilds.Add(1)
	}
	return out, nil
}

// solveShard solves one shard's small ACV system over the session nonce
// prefix, delivering a fresh random group key. Shard capacity is exactly the
// row count: with content-signature dirtiness, capacity headroom cannot save
// a solve (any join changes the signature anyway), so the sub-header stays
// as small as §VIII-C promises. The system is assembled into the worker's
// reusable scratch and solved with blocked elimination — after warm-up a
// shard solve allocates only its result vector.
func (e *Engine) solveShard(sh ShardSpec, zs [][]byte, sc *solveScratch) (*Header, ff64.Elem, error) {
	n := len(sh.Rows)
	a := sc.ws.Matrix(n, n+1)
	for i, css := range sh.Rows {
		if len(css) == 0 {
			return nil, 0, ErrEmptyCSS
		}
		row := a.Row(i)
		row[0] = ff64.One
		rh := NewRowHasher(css)
		for j := 0; j < n; j++ {
			row[j+1] = rh.Hash(zs[j])
		}
	}
	e.stats.solves.Add(1)
	y, err := a.RandomKernelVectorBlocked(sc.ws)
	if err != nil {
		return nil, 0, fmt.Errorf("solving AY=0: %w", err)
	}
	key, err := ff64.RandNonZero()
	if err != nil {
		return nil, 0, err
	}
	x := y
	x[0] = ff64.Add(x[0], key)
	if tailZero(x) {
		// As in solveConfig: unreachable with ≥1 row, but stay defensive.
		return nil, 0, errDegenerate
	}
	return &Header{X: x, Zs: zs[:n:n]}, key, nil
}
