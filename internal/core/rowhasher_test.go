package core

import (
	"crypto/rand"
	"testing"

	"ppcd/internal/ff64"
)

func randomRow(t *testing.T, m int) []CSS {
	t.Helper()
	row := make([]CSS, m)
	for i := range row {
		c, err := NewCSS()
		if err != nil {
			t.Fatal(err)
		}
		row[i] = c
	}
	return row
}

// TestRowHasherMatchesHashRow pins the midstate-clone path to the direct
// hash on random rows and nonces.
func TestRowHasherMatchesHashRow(t *testing.T) {
	for _, m := range []int{1, 3, 7, 16} {
		row := randomRow(t, m)
		rh := NewRowHasher(row)
		for i := 0; i < 20; i++ {
			z := make([]byte, NonceSize)
			if _, err := rand.Read(z); err != nil {
				t.Fatal(err)
			}
			if got, want := rh.Hash(z), HashRow(row, z); got != want {
				t.Fatalf("m=%d: RowHasher=%v HashRow=%v", m, got, want)
			}
		}
	}
}

// TestRowHasherPrefixAbsorptionDrop asserts the point of the midstate reuse:
// hashing one row against N nonces absorbs the CSS prefix once, not N times.
func TestRowHasherPrefixAbsorptionDrop(t *testing.T) {
	const nonces = 64
	row := randomRow(t, 8)
	zs := make([][]byte, nonces)
	for i := range zs {
		zs[i] = make([]byte, NonceSize)
		if _, err := rand.Read(zs[i]); err != nil {
			t.Fatal(err)
		}
	}

	direct := make([]ff64.Elem, nonces)
	before := prefixAbsorptions.Load()
	for i, z := range zs {
		direct[i] = HashRow(row, z)
	}
	if got := prefixAbsorptions.Load() - before; got != nonces {
		t.Fatalf("HashRow loop absorbed the prefix %d times, want %d", got, nonces)
	}

	before = prefixAbsorptions.Load()
	rh := NewRowHasher(row)
	for i, z := range zs {
		if got := rh.Hash(z); got != direct[i] {
			t.Fatalf("nonce %d: midstate result diverges from direct hash", i)
		}
	}
	if got := prefixAbsorptions.Load() - before; got != 1 {
		t.Fatalf("RowHasher absorbed the prefix %d times for %d nonces, want exactly 1", got, nonces)
	}
}

func BenchmarkHashRowDirect(b *testing.B) {
	row := make([]CSS, 8)
	for i := range row {
		row[i], _ = ff64.Rand()
	}
	z := make([]byte, NonceSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashRow(row, z)
	}
}

func BenchmarkHashRowMidstate(b *testing.B) {
	row := make([]CSS, 8)
	for i := range row {
		row[i], _ = ff64.Rand()
	}
	rh := NewRowHasher(row)
	z := make([]byte, NonceSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rh.Hash(z)
	}
}
