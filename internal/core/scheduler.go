package core

import (
	"sync"

	"ppcd/internal/linalg"
)

// solveScheduler is the engine's shared work pool. Earlier revisions spawned
// a goroutine per task behind a per-call semaphore, separately for each
// RekeyAll / RekeyAllGrouped / hashGroups invocation — so concurrent
// publishes competed with their own pools, every task paid a goroutine
// spawn, and no solve state survived between tasks. The scheduler replaces
// all of those fan-outs with one bounded pool per engine:
//
//   - Tasks from every caller land in a single FIFO queue, so a rebuild
//     storm across many policies/configurations keeps every worker busy
//     until the queue drains instead of serializing per call site.
//   - Workers are spawned on demand up to the cap and exit when the queue
//     empties — idle engines hold zero goroutines.
//   - Each running worker carries a *solveScratch with a reusable
//     linalg.Workspace and matrix backing, so shard solves after warm-up
//     allocate only their result vectors. Scratches are pooled process-wide
//     (sync.Pool), surviving worker exit and engine churn.
type solveScheduler struct {
	cap int

	mu      sync.Mutex
	queue   []func(*solveScratch)
	head    int
	running int
}

// solveScratch is the per-worker reusable solve state.
type solveScratch struct {
	ws *linalg.Workspace
}

var scratchPool = sync.Pool{
	New: func() any { return &solveScratch{ws: linalg.NewWorkspace()} },
}

func newSolveScheduler(workers int) *solveScheduler {
	if workers < 1 {
		workers = 1
	}
	return &solveScheduler{cap: workers}
}

// submit enqueues one task and ensures a worker will run it. Tasks must not
// block on other scheduled tasks (the pool is bounded); the engine's tasks
// are independent solves and hashes, joined by the caller's WaitGroup.
func (s *solveScheduler) submit(fn func(*solveScratch)) {
	s.mu.Lock()
	s.queue = append(s.queue, fn)
	spawn := s.running < s.cap
	if spawn {
		s.running++
	}
	s.mu.Unlock()
	if spawn {
		go s.work()
	}
}

// Parallel runs fn(0..n-1) across a bounded spawn-on-demand worker pool —
// the same shape as the engine's solve scheduler (tasks drain a shared FIFO,
// idle pools hold zero goroutines) exposed for coarse data-parallel work
// outside the engine: internal/store fans snapshot-segment unseal+decode
// across it during recovery. workers ≤ 1 (or n ≤ 1) degrades to a plain
// loop. Parallel returns when every call has completed; fn must not block on
// other indices.
func Parallel(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	sched := newSolveScheduler(workers)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		sched.submit(func(*solveScratch) {
			defer wg.Done()
			fn(i)
		})
	}
	wg.Wait()
}

func (s *solveScheduler) work() {
	sc := scratchPool.Get().(*solveScratch)
	defer scratchPool.Put(sc)
	for {
		s.mu.Lock()
		if s.head == len(s.queue) {
			s.queue = s.queue[:0]
			s.head = 0
			s.running--
			s.mu.Unlock()
			return
		}
		fn := s.queue[s.head]
		s.queue[s.head] = nil
		s.head++
		s.mu.Unlock()
		fn(sc)
	}
}
