// Package pedersen implements the Pedersen commitment scheme (paper §IV-B)
// over any prime-order group from package group. A commitment to x with
// blinding r is c = g^x · h^r; the scheme is unconditionally hiding and
// computationally binding as long as log_g(h) is unknown, which the setup
// guarantees by deriving h with the group's hash-to-element map.
package pedersen

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"ppcd/internal/group"
)

// Params holds the public commitment parameters (G, g, h) published by the
// trusted third party (the IdMgr in the paper's deployment). When the group
// supports precomputed fixed-base exponentiation (group.FixedBaseGroup),
// Setup builds one table per base; the tables are read-only after
// construction, so a single Params value is safely shared across the batch
// registration worker pool.
type Params struct {
	G group.Group
	g group.Element
	h group.Element
	// gTab and hTab are precomputed exponentiation tables for the two bases
	// (nil when the group has no fixed-base support).
	gTab group.FixedBase
	hTab group.FixedBase
}

// Setup derives commitment parameters over G. The second base h is obtained
// from the group's hash-to-element map on the given domain-separation seed,
// so that no party knows log_g(h).
func Setup(g group.Group, seed []byte) (*Params, error) {
	if g == nil {
		return nil, errors.New("pedersen: nil group")
	}
	h, err := g.HashToElement(append([]byte("ppcd/pedersen/h/"), seed...))
	if err != nil {
		return nil, fmt.Errorf("pedersen: deriving h: %w", err)
	}
	if g.Equal(h, g.Identity()) || g.Equal(h, g.Generator()) {
		return nil, errors.New("pedersen: degenerate second base")
	}
	p := &Params{G: g, g: g.Generator(), h: h}
	if fg, ok := g.(group.FixedBaseGroup); ok {
		p.gTab = fg.NewFixedBase(p.g)
		p.hTab = fg.NewFixedBase(p.h)
	}
	return p, nil
}

// ExpG returns g^k through the precomputed table when available.
func (p *Params) ExpG(k *big.Int) group.Element {
	if p.gTab != nil {
		return p.gTab.Exp(k)
	}
	return p.G.Exp(p.g, k)
}

// ExpH returns h^k through the precomputed table when available.
func (p *Params) ExpH(k *big.Int) group.Element {
	if p.hTab != nil {
		return p.hTab.Exp(k)
	}
	return p.G.Exp(p.h, k)
}

// Bases returns the two commitment bases (g, h).
func (p *Params) Bases() (group.Element, group.Element) { return p.g, p.h }

// Order returns the order of the commitment group; committed values and
// blinding factors live in F_order.
func (p *Params) Order() *big.Int { return p.G.Order() }

// Commit returns c = g^x · h^r. Values are reduced modulo the group order.
func (p *Params) Commit(x, r *big.Int) group.Element {
	return p.G.Op(p.ExpG(x), p.ExpH(r))
}

// CommitRandom commits to x under a fresh uniformly random blinding factor
// and returns both the commitment and the blinding.
func (p *Params) CommitRandom(x *big.Int) (group.Element, *big.Int, error) {
	r, err := rand.Int(rand.Reader, p.G.Order())
	if err != nil {
		return nil, nil, fmt.Errorf("pedersen: sampling blinding: %w", err)
	}
	return p.Commit(x, r), r, nil
}

// Verify reports whether c opens to (x, r).
func (p *Params) Verify(c group.Element, x, r *big.Int) bool {
	return p.G.Equal(c, p.Commit(x, r))
}

// Shift returns c · g^(−x0), the commitment re-based so that it commits to
// x − x0 under the same blinding. The OCBE protocols use this to turn an
// equality predicate "x = x0" into "committed value is 0".
func (p *Params) Shift(c group.Element, x0 *big.Int) group.Element {
	return p.G.Op(c, p.ExpG(new(big.Int).Neg(x0)))
}
