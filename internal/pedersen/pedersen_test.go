package pedersen

import (
	"math/big"
	"sync"
	"testing"

	"ppcd/internal/g2"
	"ppcd/internal/schnorr"
)

var (
	once    sync.Once
	pSmall  *Params
	pJacob  *Params
	p2048   *Params
	initErr error
)

func setup(t *testing.T) (*Params, *Params, *Params) {
	t.Helper()
	once.Do(func() {
		small, err := schnorr.NewFromSafePrime(big.NewInt(1000000007*2+1), "t")
		if err != nil {
			// 2000000015 may not be a safe prime; fall back to a known one.
			small, err = schnorr.NewFromSafePrime(big.NewInt(2879), "t") // 2879=2*1439+1
			if err != nil {
				initErr = err
				return
			}
		}
		pSmall, initErr = Setup(small, []byte("test"))
		if initErr != nil {
			return
		}
		pJacob, initErr = Setup(g2.MustPaperCurve(), []byte("test"))
		if initErr != nil {
			return
		}
		p2048, initErr = Setup(schnorr.Must2048(), []byte("test"))
	})
	if initErr != nil {
		t.Fatal(initErr)
	}
	return pSmall, pJacob, p2048
}

func TestSetupRejectsNil(t *testing.T) {
	if _, err := Setup(nil, []byte("x")); err == nil {
		t.Error("nil group accepted")
	}
}

func TestCommitVerifyAllGroups(t *testing.T) {
	a, b, c := setup(t)
	for _, p := range []*Params{a, b, c} {
		x := big.NewInt(28)
		cm, r, err := p.CommitRandom(x)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Verify(cm, x, r) {
			t.Errorf("%s: valid opening rejected", p.G.Name())
		}
		if p.Verify(cm, big.NewInt(29), r) {
			t.Errorf("%s: wrong value accepted", p.G.Name())
		}
		wrongR := new(big.Int).Add(r, big.NewInt(1))
		if p.Verify(cm, x, wrongR) {
			t.Errorf("%s: wrong blinding accepted", p.G.Name())
		}
	}
}

func TestCommitDeterministicGivenRandomness(t *testing.T) {
	p, _, _ := setup(t)
	x, r := big.NewInt(5), big.NewInt(7)
	c1 := p.Commit(x, r)
	c2 := p.Commit(x, r)
	if !p.G.Equal(c1, c2) {
		t.Error("Commit not deterministic")
	}
}

func TestHidingDifferentBlindings(t *testing.T) {
	p, _, _ := setup(t)
	x := big.NewInt(5)
	c1 := p.Commit(x, big.NewInt(1))
	c2 := p.Commit(x, big.NewInt(2))
	if p.G.Equal(c1, c2) {
		t.Error("same value different blinding produced equal commitments")
	}
}

func TestHomomorphism(t *testing.T) {
	// Commit(x1,r1)·Commit(x2,r2) = Commit(x1+x2, r1+r2).
	p, _, _ := setup(t)
	x1, r1 := big.NewInt(3), big.NewInt(11)
	x2, r2 := big.NewInt(4), big.NewInt(13)
	lhs := p.G.Op(p.Commit(x1, r1), p.Commit(x2, r2))
	rhs := p.Commit(new(big.Int).Add(x1, x2), new(big.Int).Add(r1, r2))
	if !p.G.Equal(lhs, rhs) {
		t.Error("commitments not homomorphic")
	}
}

func TestShift(t *testing.T) {
	// Shift(Commit(x,r), x0) = Commit(x-x0, r): when x = x0 the result is
	// h^r — exactly what EQ-OCBE relies on.
	p, _, _ := setup(t)
	x := big.NewInt(42)
	c, r, err := p.CommitRandom(x)
	if err != nil {
		t.Fatal(err)
	}
	shifted := p.Shift(c, x)
	_, h := p.Bases()
	if !p.G.Equal(shifted, p.G.Exp(h, r)) {
		t.Error("Shift(c, x) != h^r")
	}
	shifted2 := p.Shift(c, big.NewInt(40))
	if !p.G.Equal(shifted2, p.Commit(big.NewInt(2), r)) {
		t.Error("Shift(c, 40) != Commit(2, r)")
	}
}

func TestBasesDistinct(t *testing.T) {
	a, b, c := setup(t)
	for _, p := range []*Params{a, b, c} {
		g, h := p.Bases()
		if p.G.Equal(g, h) {
			t.Errorf("%s: g == h", p.G.Name())
		}
	}
}

func TestOrderMatchesGroup(t *testing.T) {
	_, pj, _ := setup(t)
	if pj.Order().Cmp(pj.G.Order()) != 0 {
		t.Error("Order mismatch")
	}
}

func TestJacobianCommitRoundTrip(t *testing.T) {
	// End-to-end over the paper's actual curve with a large value.
	_, p, _ := setup(t)
	x, ok := new(big.Int).SetString("123456789012345678901234567890", 10)
	if !ok {
		t.Fatal("bad literal")
	}
	c, r, err := p.CommitRandom(x)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Verify(c, x, r) {
		t.Error("jacobian commitment failed to verify")
	}
}
