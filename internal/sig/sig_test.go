package sig

import "testing"

func TestSignVerify(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("nym|tag|commitment")
	signature := s.Sign(msg)
	ok, err := s.Public().Verify(msg, signature)
	if err != nil || !ok {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("message")
	signature := s.Sign(msg)
	if ok, _ := s.Public().Verify([]byte("other"), signature); ok {
		t.Error("signature valid for different message")
	}
	signature[0] ^= 1
	if ok, _ := s.Public().Verify(msg, signature); ok {
		t.Error("tampered signature accepted")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	s1, _ := NewSigner()
	s2, _ := NewSigner()
	msg := []byte("message")
	if ok, _ := s2.Public().Verify(msg, s1.Sign(msg)); ok {
		t.Error("cross-key verification passed")
	}
}

func TestBadKey(t *testing.T) {
	if _, err := PublicKey([]byte{1, 2}).Verify([]byte("m"), []byte("s")); err != ErrBadKey {
		t.Errorf("short key: got %v", err)
	}
}

func TestPublicReturnsCopy(t *testing.T) {
	s, _ := NewSigner()
	pk := s.Public()
	pk[0] ^= 0xff
	msg := []byte("m")
	if ok, _ := s.Public().Verify(msg, s.Sign(msg)); !ok {
		t.Error("mutating returned key corrupted signer state")
	}
}

func TestNewSignerFromSeedDeterministic(t *testing.T) {
	seed := make([]byte, SeedSize)
	for i := range seed {
		seed[i] = byte(i)
	}
	s1, err := NewSignerFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSignerFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	if string(s1.Public()) != string(s2.Public()) {
		t.Error("same seed produced different keys")
	}
	msg := []byte("m")
	if ok, _ := s2.Public().Verify(msg, s1.Sign(msg)); !ok {
		t.Error("cross-instance verification failed for same seed")
	}
	if _, err := NewSignerFromSeed([]byte{1, 2}); err == nil {
		t.Error("short seed accepted")
	}
}
