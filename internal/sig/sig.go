// Package sig wraps Ed25519 into the small signing interface the identity
// manager needs for identity tokens (paper §V-A: "σ is the IdMgr's digital
// signature for nym, id-tag and c"). The paper does not fix a signature
// algorithm; any EUF-CMA scheme works (DESIGN.md substitution #4).
package sig

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
)

// Signer holds a signing key pair.
type Signer struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewSigner generates a fresh key pair.
func NewSigner() (*Signer, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sig: generating key: %w", err)
	}
	return &Signer{priv: priv, pub: pub}, nil
}

// SeedSize is the byte length of a deterministic signer seed.
const SeedSize = ed25519.SeedSize

// NewSignerFromSeed derives the key pair deterministically from a 32-byte
// seed, so an identity manager can persist its signing identity.
func NewSignerFromSeed(seed []byte) (*Signer, error) {
	if len(seed) != SeedSize {
		return nil, fmt.Errorf("sig: seed must be %d bytes, got %d", SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Signer{priv: priv, pub: priv.Public().(ed25519.PublicKey)}, nil
}

// Public returns the verification key.
func (s *Signer) Public() PublicKey { return PublicKey(append([]byte(nil), s.pub...)) }

// Sign signs msg.
func (s *Signer) Sign(msg []byte) []byte { return ed25519.Sign(s.priv, msg) }

// PublicKey is a serializable verification key.
type PublicKey []byte

// ErrBadKey reports a malformed verification key.
var ErrBadKey = errors.New("sig: malformed public key")

// Verify reports whether sig is a valid signature of msg under pk.
func (pk PublicKey) Verify(msg, sig []byte) (bool, error) {
	if len(pk) != ed25519.PublicKeySize {
		return false, ErrBadKey
	}
	return ed25519.Verify(ed25519.PublicKey(pk), msg, sig), nil
}
