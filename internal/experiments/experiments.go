// Package experiments contains the workload generators and measurement
// harnesses that regenerate every table and figure in the paper's evaluation
// (§VII), plus the ablation comparisons described in DESIGN.md. Both the
// ppcd-bench command and the repository-level Go benchmarks call into this
// package so that the numbers in EXPERIMENTS.md and `go test -bench` agree.
package experiments

import (
	"fmt"
	"math/big"
	"time"

	"ppcd/internal/baseline/direct"
	"ppcd/internal/baseline/lkh"
	"ppcd/internal/baseline/marker"
	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
)

// GKMWorkload builds the subscriber×policy CSS rows for the paper's group
// key management experiments: `policies` policies with `condsPerPolicy`
// conditions each, `subs` current subscribers assigned round-robin to
// policies, every subscriber satisfying its policy (§VII-B: "Each Sub
// satisfies the policy in the policy configuration under consideration").
func GKMWorkload(subs, policies, condsPerPolicy int) ([][]core.CSS, error) {
	if subs < 1 || policies < 1 || condsPerPolicy < 1 {
		return nil, fmt.Errorf("experiments: invalid workload (%d subs, %d policies, %d conds)", subs, policies, condsPerPolicy)
	}
	// Per-policy condition secrets are drawn once; each subscriber gets its
	// own CSS per condition of its policy.
	rows := make([][]core.CSS, subs)
	for i := range rows {
		row := make([]core.CSS, condsPerPolicy)
		for j := range row {
			c, err := core.NewCSS()
			if err != nil {
				return nil, err
			}
			row[j] = c
		}
		rows[i] = row
	}
	return rows, nil
}

// GKMResult is one measured point of Figs. 3–6.
type GKMResult struct {
	N          int
	Subs       int
	CondsPer   int
	ACVGen     time.Duration // Fig. 3 / Fig. 6 left series
	KeyDerive  time.Duration // Fig. 4 / Fig. 6 right series
	HeaderSize int           // bytes, Fig. 5
}

// MeasureGKM builds one ACV for the workload and measures generation time,
// key-derivation time (averaged over deriveIters derivations) and header
// size.
func MeasureGKM(subs, n, policies, condsPerPolicy, deriveIters int) (*GKMResult, error) {
	rows, err := GKMWorkload(subs, policies, condsPerPolicy)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	hdr, key, err := core.Build(rows, n)
	if err != nil {
		return nil, err
	}
	genTime := time.Since(start)

	if deriveIters < 1 {
		deriveIters = 1
	}
	start = time.Now()
	for i := 0; i < deriveIters; i++ {
		k, err := core.DeriveKey(rows[i%len(rows)], hdr)
		if err != nil {
			return nil, err
		}
		if k != key {
			return nil, fmt.Errorf("experiments: soundness violation: derived %v, want %v", k, key)
		}
	}
	deriveTime := time.Since(start) / time.Duration(deriveIters)

	return &GKMResult{
		N:          n,
		Subs:       subs,
		CondsPer:   condsPerPolicy,
		ACVGen:     genTime,
		KeyDerive:  deriveTime,
		HeaderSize: hdr.Size(),
	}, nil
}

// Fig3to5Point runs one (N, fill) cell of Figures 3, 4 and 5 with the
// paper's fixed workload: 25 policies, 2 conditions per policy.
func Fig3to5Point(n int, fillPercent int) (*GKMResult, error) {
	subs := n * fillPercent / 100
	if subs < 1 {
		subs = 1
	}
	return MeasureGKM(subs, n, 25, 2, 16)
}

// Fig6Point runs one conditions-per-policy cell of Figure 6 with the paper's
// fixed parameters: 25 policies, N = 500, 100% fill.
func Fig6Point(condsPerPolicy int) (*GKMResult, error) {
	return MeasureGKM(500, 500, 25, condsPerPolicy, 16)
}

// OCBEResult is one measured point of Fig. 2 / Table II: the three protocol
// steps' average latencies.
type OCBEResult struct {
	Ell          int
	CreateCommit time.Duration // "Create Extra Commitments (Sub)"
	Compose      time.Duration // "Compose Envelope (Pub)"
	Open         time.Duration // "Open Envelope (Sub)"
}

// MeasureOCBE runs `rounds` full protocol rounds for the predicate
// x ≥ x0 (GE) or x = x0 (EQ, when ge is false) over the given Pedersen
// parameters, with satisfying attribute values (as in §VII-A), and averages
// each step.
func MeasureOCBE(params *pedersen.Params, ge bool, ell, rounds int) (*OCBEResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	res := &OCBEResult{Ell: ell}
	msg := make([]byte, 8) // CSS-sized payload
	for i := 0; i < rounds; i++ {
		// Fresh commitment each round: value satisfies the predicate.
		x := big.NewInt(int64(10 + i))
		x0 := big.NewInt(7)
		var pred ocbe.Predicate
		if ge {
			pred = ocbe.Predicate{Op: ocbe.GE, X0: x0}
		} else {
			pred = ocbe.Predicate{Op: ocbe.EQ, X0: x}
		}
		_, r, err := params.CommitRandom(x)
		if err != nil {
			return nil, err
		}
		recv := ocbe.NewReceiver(params, x, r)

		start := time.Now()
		wit, req, err := recv.Prepare(pred, ell)
		if err != nil {
			return nil, err
		}
		res.CreateCommit += time.Since(start)

		start = time.Now()
		env, err := ocbe.Compose(params, pred, ell, req, msg)
		if err != nil {
			return nil, err
		}
		res.Compose += time.Since(start)

		start = time.Now()
		if _, err := recv.Open(env, wit); err != nil {
			return nil, err
		}
		res.Open += time.Since(start)
	}
	res.CreateCommit /= time.Duration(rounds)
	res.Compose /= time.Duration(rounds)
	res.Open /= time.Duration(rounds)
	return res, nil
}

// AblationResult compares the four GKM designs on one workload.
type AblationResult struct {
	Scheme        string
	RekeyTime     time.Duration // publisher-side cost of one full rekey
	DeriveTime    time.Duration // subscriber-side key recovery
	BroadcastSize int           // bytes pushed to ALL subscribers
	UnicastMsgs   int           // point-to-point messages required
}

// Ablation measures a rekey (triggered by one revocation) for n subscribers
// under the paper's ACV scheme, the §VIII-D marker scheme, direct delivery
// and an LKH tree.
func Ablation(n int) ([]AblationResult, error) {
	rows, err := GKMWorkload(n, 25, 2)
	if err != nil {
		return nil, err
	}
	var out []AblationResult

	// ACV (the paper's scheme): one broadcast, zero unicast.
	start := time.Now()
	hdr, _, err := core.Build(rows, n)
	if err != nil {
		return nil, err
	}
	gen := time.Since(start)
	start = time.Now()
	if _, err := core.DeriveKey(rows[0], hdr); err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Scheme: "acv", RekeyTime: gen, DeriveTime: time.Since(start),
		BroadcastSize: hdr.Size(), UnicastMsgs: 0,
	})

	// Marker scheme: one broadcast of N slots.
	start = time.Now()
	mh, _, err := marker.Build(rows)
	if err != nil {
		return nil, err
	}
	gen = time.Since(start)
	start = time.Now()
	if _, err := marker.DeriveKey(rows[n-1], mh); err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Scheme: "marker", RekeyTime: gen, DeriveTime: time.Since(start),
		BroadcastSize: mh.Size(), UnicastMsgs: 0,
	})

	// Direct delivery: one unicast per subscriber.
	d := direct.New()
	nyms := make([]string, n)
	for i := range nyms {
		nyms[i] = fmt.Sprintf("pn-%d", i)
		if err := d.RegisterUser(nyms[i]); err != nil {
			return nil, err
		}
	}
	start = time.Now()
	msgs, _, err := d.Rekey(nyms)
	if err != nil {
		return nil, err
	}
	gen = time.Since(start)
	ch, _ := d.ChannelKey(nyms[0])
	start = time.Now()
	if _, err := direct.DeriveKey(nyms[0], ch, msgs); err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Scheme: "direct", RekeyTime: gen, DeriveTime: time.Since(start),
		BroadcastSize: 0, UnicastMsgs: len(msgs),
	})

	// LKH: O(log n) multicast messages per membership change.
	tree, err := lkh.New(n)
	if err != nil {
		return nil, err
	}
	for _, nym := range nyms {
		if _, err := tree.Join(nym); err != nil {
			return nil, err
		}
	}
	stayPath, err := tree.PathKeys(nyms[1])
	if err != nil {
		return nil, err
	}
	start = time.Now()
	lm, err := tree.Leave(nyms[0])
	if err != nil {
		return nil, err
	}
	gen = time.Since(start)
	start = time.Now()
	if _, err := lkh.ApplyMessages(stayPath, lm); err != nil {
		return nil, err
	}
	size := 0
	for _, m := range lm {
		size += len(m.Ciphertext) + 8
	}
	out = append(out, AblationResult{
		Scheme: "lkh", RekeyTime: gen, DeriveTime: time.Since(start),
		BroadcastSize: size, UnicastMsgs: 0,
	})
	return out, nil
}

// KernelFieldComparison measures the ACV kernel solve with the word-sized
// field against a naive big.Int implementation of the same elimination, to
// justify DESIGN.md substitution #2.
func KernelFieldComparison(n int) (ff64Time, bigTime time.Duration, err error) {
	rows, err := GKMWorkload(n, 25, 2)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if _, _, err := core.Build(rows, n); err != nil {
		return 0, 0, err
	}
	ff64Time = time.Since(start)

	// Big-int elimination on an equivalent random matrix.
	p := new(big.Int).SetUint64(ff64.Modulus)
	m := make([][]*big.Int, n)
	for i := range m {
		m[i] = make([]*big.Int, n+1)
		for j := range m[i] {
			e, err := ff64.Rand()
			if err != nil {
				return 0, 0, err
			}
			m[i][j] = new(big.Int).SetUint64(uint64(e))
		}
	}
	start = time.Now()
	bigGaussJordan(m, p)
	bigTime = time.Since(start)
	return ff64Time, bigTime, nil
}

// bigGaussJordan row-reduces m over F_p using big.Int arithmetic.
func bigGaussJordan(m [][]*big.Int, p *big.Int) {
	rows := len(m)
	if rows == 0 {
		return
	}
	cols := len(m[0])
	r := 0
	tmp := new(big.Int)
	for c := 0; c < cols && r < rows; c++ {
		piv := -1
		for i := r; i < rows; i++ {
			if m[i][c].Sign() != 0 {
				piv = i
				break
			}
		}
		if piv < 0 {
			continue
		}
		m[piv], m[r] = m[r], m[piv]
		inv := new(big.Int).ModInverse(m[r][c], p)
		for k := c; k < cols; k++ {
			m[r][k].Mod(tmp.Mul(m[r][k], inv), p)
		}
		for i := 0; i < rows; i++ {
			if i == r || m[i][c].Sign() == 0 {
				continue
			}
			f := new(big.Int).Set(m[i][c])
			for k := c; k < cols; k++ {
				prod := new(big.Int).Mul(f, m[r][k])
				m[i][k].Mod(m[i][k].Sub(m[i][k], prod), p)
			}
		}
		r++
	}
}
