package experiments

import (
	"sync"
	"testing"

	"ppcd/internal/pedersen"
	"ppcd/internal/schnorr"
)

func TestGKMWorkloadShape(t *testing.T) {
	rows, err := GKMWorkload(10, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r) != 3 {
			t.Fatalf("row length = %d", len(r))
		}
	}
	if _, err := GKMWorkload(0, 1, 1); err == nil {
		t.Error("zero subs accepted")
	}
	if _, err := GKMWorkload(1, 1, 0); err == nil {
		t.Error("zero conds accepted")
	}
}

func TestMeasureGKMSound(t *testing.T) {
	// MeasureGKM verifies soundness internally (derived key == built key);
	// a non-error return means the invariant held on every derivation.
	res, err := MeasureGKM(20, 25, 5, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.ACVGen <= 0 || res.KeyDerive <= 0 {
		t.Error("non-positive timings")
	}
	if res.HeaderSize != 8*26+16*25 {
		t.Errorf("header size = %d", res.HeaderSize)
	}
}

func TestFigPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation is slow in -short mode")
	}
	r, err := Fig3to5Point(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Subs != 50 || r.N != 100 {
		t.Errorf("point = %+v", r)
	}
	r6, err := Fig6Point(2)
	if err != nil {
		t.Fatal(err)
	}
	if r6.CondsPer != 2 || r6.N != 500 {
		t.Errorf("fig6 point = %+v", r6)
	}
}

var (
	ocbeOnce   sync.Once
	ocbeParams *pedersen.Params
)

func schnorrParams(t *testing.T) *pedersen.Params {
	t.Helper()
	ocbeOnce.Do(func() {
		p, err := pedersen.Setup(schnorr.Must2048(), []byte("exp-test"))
		if err != nil {
			panic(err)
		}
		ocbeParams = p
	})
	return ocbeParams
}

func TestMeasureOCBE(t *testing.T) {
	p := schnorrParams(t)
	eq, err := MeasureOCBE(p, false, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eq.Compose <= 0 || eq.Open <= 0 {
		t.Error("EQ timings non-positive")
	}
	ge, err := MeasureOCBE(p, true, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ge.CreateCommit <= 0 || ge.Compose <= 0 || ge.Open <= 0 {
		t.Error("GE timings non-positive")
	}
	// GE does strictly more work than EQ at the publisher.
	if ge.Compose < eq.Compose {
		t.Error("GE compose faster than EQ compose (unexpected shape)")
	}
}

func TestAblationAllSchemesSucceed(t *testing.T) {
	res, err := Ablation(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d schemes", len(res))
	}
	byName := map[string]AblationResult{}
	for _, r := range res {
		byName[r.Scheme] = r
	}
	if byName["direct"].UnicastMsgs != 32 {
		t.Errorf("direct unicast = %d, want 32 (O(n))", byName["direct"].UnicastMsgs)
	}
	if byName["acv"].UnicastMsgs != 0 || byName["marker"].UnicastMsgs != 0 {
		t.Error("broadcast schemes should need no unicast")
	}
	if byName["acv"].BroadcastSize == 0 || byName["marker"].BroadcastSize == 0 {
		t.Error("broadcast schemes have zero size")
	}
}

func TestKernelFieldComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	fast, slow, err := KernelFieldComparison(60)
	if err != nil {
		t.Fatal(err)
	}
	if fast <= 0 || slow <= 0 {
		t.Error("non-positive timings")
	}
}
