// The fan-out hub: downstream connection registry, per-connection bounded
// queues, batched deadline writes and slow-consumer eviction. One hub
// instance backs an origin transport server or a relay's downstream side.
package fanout

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ppcd/internal/pubsub"
	"ppcd/internal/wire"
)

const (
	// DefaultQueueDepth bounds each connection's outbound frame queue; a
	// consumer this far behind the publish rate is evicted and must
	// reconnect (its catch-up is then one delta or snapshot, cheaper than
	// an unbounded backlog).
	DefaultQueueDepth = 32
	// DefaultWriteTimeout is the per-write deadline after which a stream
	// consumer is considered dead.
	DefaultWriteTimeout = 10 * time.Second
)

// lastSeen is the (epoch, generation) pair last enqueued to a connection
// for one document. The generation matters at relays: a restarted publisher
// renumbers epochs under a fresh Gen, so epoch numbers alone would make the
// new incarnation's frames look like duplicates.
type lastSeen struct {
	epoch uint64
	gen   uint64
}

// Conn is one subscribed downstream connection. epochs (per-document last
// state enqueued) is guarded by the hub mutex; the bounded queue decouples
// the fan-out from the consumer's socket. pending and vecs are the writer
// goroutine's preallocated batching scratch — reused every wakeup so the
// steady-state write path performs no allocations.
type Conn struct {
	nc      net.Conn
	doc     string // "" = all documents
	ch      chan *Frame
	done    chan struct{}
	once    sync.Once
	epochs  map[string]lastSeen
	pending []*Frame
	vecs    [][]byte
}

// shutdown wakes the writer loop and unblocks any in-flight socket I/O.
// Idempotent; callers additionally remove the conn from the hub under its
// mutex.
func (c *Conn) shutdown() {
	c.once.Do(func() {
		close(c.done)
		c.nc.Close()
	})
}

// Hub owns the retention ring and the set of live downstream connections.
type Hub struct {
	mu    sync.Mutex
	ring  *ring
	conns map[*Conn]struct{}

	retain       int
	depth        int
	writeTimeout time.Duration

	hbStop chan struct{}
	wg     sync.WaitGroup
	closed bool

	egressFrames atomic.Int64
	egressBytes  atomic.Int64
}

// NewHub creates a hub with default retention, queue depth and write
// timeout. Tune with the setters before serving connections.
func NewHub() *Hub {
	return &Hub{
		ring:         newRing(DefaultRetention),
		conns:        make(map[*Conn]struct{}),
		retain:       DefaultRetention,
		depth:        DefaultQueueDepth,
		writeTimeout: DefaultWriteTimeout,
		hbStop:       make(chan struct{}),
	}
}

// SetRetention bounds how many recent epochs the ring keeps (minimum 1).
func (h *Hub) SetRetention(k int) {
	if k < 1 {
		k = 1
	}
	h.mu.Lock()
	h.retain = k
	h.ring.retain = k
	h.mu.Unlock()
}

// SetQueueDepth bounds each downstream connection's outbound frame queue
// (minimum 1). Relays sit in front of thousands of consumers and want
// deeper queues than origin-attached subscribers; applies to connections
// accepted after the call.
func (h *Hub) SetQueueDepth(d int) {
	if d < 1 {
		d = 1
	}
	h.mu.Lock()
	h.depth = d
	h.mu.Unlock()
}

// SetWriteTimeout tunes the per-write deadline after which a consumer is
// evicted.
func (h *Hub) SetWriteTimeout(d time.Duration) {
	if d > 0 {
		h.mu.Lock()
		h.writeTimeout = d
		h.mu.Unlock()
	}
}

// QueueDepth reports the configured per-connection queue depth.
func (h *Hub) QueueDepth() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.depth
}

// Conns is the number of live downstream stream connections.
func (h *Hub) Conns() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

// RingLen is the number of retained epochs.
func (h *Hub) RingLen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ring.entries)
}

// Egress reports the cumulative frames and bytes written to downstream
// stream connections — the measured cost of this node's push fan-out.
func (h *Hub) Egress() (frames, bytes int64) {
	return h.egressFrames.Load(), h.egressBytes.Load()
}

// Publish retains a broadcast and fans its frame out to every matching
// connection: subscribers current at the delta's base epoch receive only
// the delta bytes, everyone else the snapshot. rawSnapshot/rawDelta/
// deltaBase follow ring.add semantics (nil = marshal/diff locally; a relay
// passes the exact bytes it received upstream).
func (h *Hub) Publish(b *pubsub.Broadcast, rawSnapshot, rawDelta []byte, deltaBase uint64) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	ent := h.ring.add(b, rawSnapshot, rawDelta, deltaBase)
	// The snapshot and delta frames are acquired at most once per publish
	// and shared by reference across every queue.
	var snapFrame, deltaFrame *Frame
	for c := range h.conns {
		if c.doc != "" && c.doc != ent.doc {
			continue
		}
		var f *Frame
		if last, ok := c.epochs[ent.doc]; ok {
			if last.epoch == ent.epoch && last.gen == ent.b.Gen {
				continue
			}
			if ent.delta != nil && last.epoch == ent.prevEpoch && last.gen == ent.b.Gen {
				if deltaFrame == nil {
					deltaFrame = NewFrame(ent.delta)
				}
				f = deltaFrame
			}
		}
		if f == nil {
			if snapFrame == nil {
				snapFrame = NewFrame(ent.snapshot)
			}
			f = snapFrame
		}
		c.epochs[ent.doc] = lastSeen{epoch: ent.epoch, gen: ent.b.Gen}
		h.offer(c, f)
	}
	h.mu.Unlock()
	if snapFrame != nil {
		snapFrame.Release()
	}
	if deltaFrame != nil {
		deltaFrame.Release()
	}
}

// Lookup serves the fetch path: the newest retained epoch for the named
// document ("" = latest overall), substituting the nearest retained
// snapshot for rotated-out documents. known is false for names never
// published; raw is nil while the ring is empty.
func (h *Hub) Lookup(doc string) (known bool, raw []byte, b *pubsub.Broadcast) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.ring.known(doc) {
		return false, nil, nil
	}
	ent := h.ring.nearest(doc)
	if ent == nil {
		return true, nil, nil
	}
	return true, ent.snapshot, ent.b
}

// Current returns the decoded broadcast of the newest retained epoch for
// the named document (nil when none is retained). Relays use it as the
// delta application base.
func (h *Hub) Current(doc string) *pubsub.Broadcast {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ent := h.ring.nearest(doc); ent != nil && (doc == "" || ent.doc == doc) {
		return ent.b
	}
	return nil
}

// offer enqueues a frame without blocking; a full queue evicts the
// consumer. Callers hold h.mu.
func (h *Hub) offer(c *Conn, f *Frame) {
	f.Ref()
	select {
	case c.ch <- f:
	default:
		f.Release()
		delete(h.conns, c)
		c.shutdown()
	}
}

// drop removes a connection (writer error, consumer hangup).
func (h *Hub) drop(c *Conn) {
	h.mu.Lock()
	delete(h.conns, c)
	h.mu.Unlock()
	c.shutdown()
}

// ServeConn turns an accepted connection into a one-way frame stream: it
// registers the conn, enqueues the catch-up frame for every retained
// document the subscriber is behind on (one delta when (lastEpoch, lastGen)
// is exactly retained, else a snapshot), then writes queued frames until
// the consumer goes away or the hub closes. Blocks on the caller's
// goroutine; a watchdog goroutine detects consumer hangup (subscribers
// never send after the subscribe request).
func (h *Hub) ServeConn(nc net.Conn, doc string, lastEpoch, lastGen uint64) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	c := &Conn{
		nc:      nc,
		doc:     doc,
		ch:      make(chan *Frame, h.depth),
		done:    make(chan struct{}),
		epochs:  make(map[string]lastSeen),
		pending: make([]*Frame, 0, h.depth),
		vecs:    make([][]byte, 0, h.depth),
	}
	h.conns[c] = struct{}{}
	for d, ent := range h.ring.latest(doc) {
		c.epochs[d] = lastSeen{epoch: ent.epoch, gen: ent.b.Gen}
		if payload := h.ring.catchup(ent, lastEpoch, lastGen); payload != nil {
			f := NewFrame(payload)
			h.offer(c, f)
			f.Release()
		}
	}
	h.mu.Unlock()

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		var one [1]byte
		nc.Read(one[:])
		h.drop(c)
	}()
	h.writeLoop(c)
}

// writeLoop drains the connection's queue. Each wakeup batches every
// already-queued frame into one deadline-bounded vectored write (writev on
// TCP), so a consumer that fell a few frames behind catches up in one
// syscall; the common steady-state case of a single frame takes the direct
// Write path. All scratch state is preallocated on the Conn — the loop
// allocates nothing.
//
//ppcd:hotpath
func (h *Hub) writeLoop(c *Conn) {
	defer func() {
		h.drop(c)
		// Release whatever is still queued: the conn is out of the registry,
		// so no further offers can race this drain.
		for {
			select {
			case f := <-c.ch:
				f.Release()
			default:
				return
			}
		}
	}()
	for {
		select {
		case f := <-c.ch:
			c.pending = append(c.pending[:0], f)
		gather:
			for len(c.pending) < cap(c.pending) {
				select {
				case f2 := <-c.ch:
					c.pending = append(c.pending, f2)
				default:
					break gather
				}
			}
			var written int64
			err := c.nc.SetWriteDeadline(time.Now().Add(h.writeTimeout))
			if err == nil {
				if len(c.pending) == 1 {
					var n int
					n, err = c.nc.Write(c.pending[0].buf)
					written = int64(n)
				} else {
					c.vecs = c.vecs[:0]
					for _, p := range c.pending {
						c.vecs = append(c.vecs, p.buf)
					}
					// net.Buffers consumes the slice header it is handed;
					// aliasing c.vecs keeps the backing array for reuse.
					bufs := net.Buffers(c.vecs)
					written, err = bufs.WriteTo(c.nc)
				}
			}
			h.egressFrames.Add(int64(len(c.pending)))
			h.egressBytes.Add(written)
			for i, p := range c.pending {
				p.Release()
				c.pending[i] = nil
			}
			c.pending = c.pending[:0]
			if err != nil {
				return
			}
		case <-c.done:
			return
		}
	}
}

// StartHeartbeats begins fanning a heartbeat frame (carrying the newest
// retained epoch) to every connection on the given cadence, so idle
// consumers can detect a dead server and the server evicts dead consumers
// via the write path. No-op for d <= 0; stops at Close.
func (h *Hub) StartHeartbeats(d time.Duration) {
	if d <= 0 {
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.wg.Add(1)
	h.mu.Unlock()
	go func() {
		defer h.wg.Done()
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.mu.Lock()
				payload := wire.MarshalHeartbeatFrame(h.ring.latestEpoch())
				f := NewFrame(payload)
				for c := range h.conns {
					h.offer(c, f)
				}
				f.Release()
				h.mu.Unlock()
			case <-h.hbStop:
				return
			}
		}
	}()
}

// Close shuts every connection down, stops heartbeats and waits for the
// hub's internal goroutines. ServeConn callers return once their conn is
// shut.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	close(h.hbStop)
	for c := range h.conns {
		delete(h.conns, c)
		c.shutdown()
	}
	h.mu.Unlock()
	h.wg.Wait()
}
