// Package fanout is the shared dissemination edge used by both the origin
// transport server and the relay tier: a bounded retention ring of recent
// epochs (snapshot + delta wire frames, marshaled once) and a fan-out hub
// that re-serves those frames to any number of downstream subscriber
// connections.
//
// The hot path is engineered for large fan-out degrees: every frame is a
// single immutable length-prefixed buffer shared by reference across all
// downstream queues (zero per-subscriber copies), buffers are pooled and
// refcounted so a broadcast wakes N writers without N allocations, each
// connection has a bounded queue with write deadlines and slow-consumer
// eviction, and writers batch queued frames into one vectored write.
package fanout

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Frame is one immutable wire frame, length-prefixed for the stream
// protocol. The payload bytes are copied exactly once — into a pooled buffer
// at acquire time — and the frame is then shared by reference across every
// downstream queue; the buffer returns to the pool when the last holder
// releases it. Offering a frame to N connections therefore performs zero
// per-connection copies and zero per-connection allocations.
type Frame struct {
	buf  []byte // 4-byte big-endian payload length, then the payload
	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// NewFrame acquires a frame holding the given payload with a reference
// count of one. Callers release their reference with Release once every
// Offer has been issued.
func NewFrame(payload []byte) *Frame {
	f := framePool.Get().(*Frame)
	need := 4 + len(payload)
	if cap(f.buf) < need {
		f.buf = make([]byte, need)
	}
	f.buf = f.buf[:need]
	binary.BigEndian.PutUint32(f.buf[:4], uint32(len(payload)))
	copy(f.buf[4:], payload)
	f.refs.Store(1)
	return f
}

// Payload returns the frame bytes without the length prefix. The slice
// aliases the pooled buffer: valid only while the caller holds a reference.
func (f *Frame) Payload() []byte { return f.buf[4:] }

// WireLen is the on-the-wire size of the frame (prefix + payload).
func (f *Frame) WireLen() int { return len(f.buf) }

// Ref takes an additional reference.
func (f *Frame) Ref() { f.refs.Add(1) }

// Release drops one reference; the last release returns the buffer to the
// pool for the next NewFrame.
func (f *Frame) Release() {
	if f.refs.Add(-1) == 0 {
		framePool.Put(f)
	}
}
