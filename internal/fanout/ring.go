// The bounded epoch retention ring, extracted from internal/transport so
// the origin server and the relay tier share one implementation. Each entry
// keeps the decoded broadcast plus its wire frames: the snapshot marshaled
// once, the delta against the previous retained epoch of the same document,
// and a per-base cache of catch-up deltas so a reconnect storm diffs each
// (base, target) pair once.
package fanout

import (
	"ppcd/internal/pubsub"
	"ppcd/internal/wire"
)

// DefaultRetention is the number of recent epochs kept for fetch serving
// and delta catch-ups.
const DefaultRetention = 8

// entry is one retained epoch. Guarded by the owning hub's mutex.
type entry struct {
	epoch uint64
	doc   string
	b     *pubsub.Broadcast
	// snapshot is the v3 snapshot frame; delta the v3 delta frame against
	// the previous retained epoch of the same document (nil for the first),
	// with prevEpoch naming that base.
	snapshot  []byte
	delta     []byte
	prevEpoch uint64
	// catchup caches marshaled delta frames for older retained bases
	// (keyed by base epoch), so a reconnect storm after a blip computes
	// each diff once instead of once per subscriber.
	catchup map[uint64][]byte
}

// ring is the bounded retention ring plus the names-only memory of every
// document ever published (so a fetch for a rotated-out document is served
// with the nearest retained snapshot while an unknown name stays an error).
// Not safe for concurrent use; the owning hub serializes access.
type ring struct {
	retain  int
	entries []*entry
	docs    map[string]bool
}

func newRing(retain int) *ring {
	if retain < 1 {
		retain = 1
	}
	return &ring{retain: retain, docs: make(map[string]bool)}
}

// add retains a broadcast. rawSnapshot and rawDelta are optional
// pre-marshaled frames (a relay passes the bytes it received upstream, the
// origin passes nil): a nil snapshot is marshaled here, a nil delta is
// diffed against the newest retained epoch of the same document. deltaBase
// names rawDelta's base epoch and is ignored when rawDelta is nil.
func (r *ring) add(b *pubsub.Broadcast, rawSnapshot, rawDelta []byte, deltaBase uint64) *entry {
	ent := &entry{epoch: b.Epoch, doc: b.DocName, b: b, snapshot: rawSnapshot}
	if ent.snapshot == nil {
		ent.snapshot = wire.MarshalSnapshotFrame(b)
	}
	if rawDelta != nil {
		ent.delta, ent.prevEpoch = rawDelta, deltaBase
	} else if prev := r.nearest(b.DocName); prev != nil && prev.doc == b.DocName && prev.epoch < b.Epoch {
		if d, err := pubsub.Diff(prev.b, b); err == nil {
			ent.delta = wire.MarshalDeltaFrame(d)
			ent.prevEpoch = prev.epoch
		}
	}
	r.docs[b.DocName] = true
	r.entries = append(r.entries, ent)
	if len(r.entries) > r.retain {
		// Drop the oldest; the slice is small (retain entries), so the copy
		// is cheap and the backing array does not pin evicted broadcasts.
		r.entries = append(r.entries[:0:0], r.entries[len(r.entries)-r.retain:]...)
	}
	return ent
}

// nearest returns the newest retained epoch for the named document, or —
// when the document rotated out of the bounded ring (or name is "") — the
// newest retained epoch overall. Callers detect the substitution through
// Broadcast.DocName.
func (r *ring) nearest(name string) *entry {
	for i := len(r.entries) - 1; i >= 0; i-- {
		if name == "" || r.entries[i].doc == name {
			return r.entries[i]
		}
	}
	if len(r.entries) > 0 && name != "" {
		return r.entries[len(r.entries)-1]
	}
	return nil
}

// find returns the retained entry for (doc, epoch), nil if it rotated out.
func (r *ring) find(doc string, epoch uint64) *entry {
	for i := len(r.entries) - 1; i >= 0; i-- {
		if r.entries[i].doc == doc && r.entries[i].epoch == epoch {
			return r.entries[i]
		}
	}
	return nil
}

// known reports whether the document was ever published ("" = any).
func (r *ring) known(name string) bool { return name == "" || r.docs[name] }

// latestEpoch is the newest retained epoch overall (0 when empty).
func (r *ring) latestEpoch() uint64 {
	if len(r.entries) == 0 {
		return 0
	}
	return r.entries[len(r.entries)-1].epoch
}

// latest collects the newest retained entry per document matching the
// filter ("" = all).
func (r *ring) latest(docFilter string) map[string]*entry {
	out := make(map[string]*entry)
	for _, ent := range r.entries {
		if docFilter == "" || docFilter == ent.doc {
			out[ent.doc] = ent
		}
	}
	return out
}

// catchup returns the frame bytes bringing a subscriber that last applied
// (lastEpoch, lastGen) up to ent, or nil when it is already current. The
// delta path is taken only against the exact retained state the subscriber
// holds: same document, same epoch, same publisher generation (a restarted
// publisher renumbers epochs under a fresh generation); anything else gets
// the snapshot.
func (r *ring) catchup(ent *entry, lastEpoch, lastGen uint64) []byte {
	if lastEpoch == ent.epoch && lastGen == ent.b.Gen {
		return nil
	}
	base := r.find(ent.doc, lastEpoch)
	if base == nil || base.epoch >= ent.epoch || base.b.Gen != lastGen {
		return ent.snapshot
	}
	if ent.delta != nil && base.epoch == ent.prevEpoch {
		return ent.delta
	}
	if cached, ok := ent.catchup[base.epoch]; ok {
		return cached
	}
	d, err := pubsub.Diff(base.b, ent.b)
	if err != nil {
		return ent.snapshot
	}
	raw := wire.MarshalDeltaFrame(d)
	if ent.catchup == nil {
		ent.catchup = make(map[uint64][]byte)
	}
	ent.catchup[base.epoch] = raw
	return raw
}
