package fanout

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppcd/internal/pubsub"
	"ppcd/internal/wire"
)

func bcast(doc string, epoch, gen uint64) *pubsub.Broadcast {
	return &pubsub.Broadcast{
		DocName: doc,
		Epoch:   epoch,
		Gen:     gen,
		Items: []pubsub.Item{
			{Subdoc: "body", Ciphertext: []byte(fmt.Sprintf("%s-%d", doc, epoch)), Rev: epoch},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello frames")
	f := NewFrame(payload)
	if got := f.Payload(); !bytes.Equal(got, payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
	if f.WireLen() != len(payload)+4 {
		t.Fatalf("wire len %d, want %d", f.WireLen(), len(payload)+4)
	}
	if got := f.buf[:4]; !bytes.Equal(got, []byte{0, 0, 0, byte(len(payload))}) {
		t.Fatalf("length prefix %v", got)
	}
	// Extra references keep the frame alive past the creator's release.
	f.Ref()
	f.Release()
	if got := f.Payload(); !bytes.Equal(got, payload) {
		t.Fatalf("payload after partial release %q", got)
	}
	f.Release()
}

func TestRingRetentionAndCatchup(t *testing.T) {
	r := newRing(4)
	var ents []*entry
	for e := uint64(1); e <= 10; e++ {
		ents = append(ents, r.add(bcast("news", e, 7), nil, nil, 0))
	}
	if len(r.entries) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(r.entries))
	}
	if got := r.latestEpoch(); got != 10 {
		t.Fatalf("latest epoch %d, want 10", got)
	}
	cur := ents[9]
	if cur.delta == nil || cur.prevEpoch != 9 {
		t.Fatalf("entry 10 delta against %d (nil=%v), want 9", cur.prevEpoch, cur.delta == nil)
	}

	// Already current: nothing to send.
	if got := r.catchup(cur, 10, 7); got != nil {
		t.Fatal("current subscriber got a catch-up frame")
	}
	// One epoch behind: the stored adjacent delta.
	if got := r.catchup(cur, 9, 7); !bytes.Equal(got, cur.delta) {
		t.Fatal("adjacent catch-up is not the stored delta")
	}
	// Older retained base: a fresh diff, cached for the next reconnect.
	first := r.catchup(cur, 7, 7)
	f, err := wire.UnmarshalFrame(first)
	if err != nil || f.Type != wire.FrameDelta || f.Delta.BaseEpoch != 7 {
		t.Fatalf("retained-base catch-up: err %v, frame %+v", err, f)
	}
	if second := r.catchup(cur, 7, 7); &second[0] != &first[0] {
		t.Fatal("catch-up diff not cached across reconnects")
	}
	// Rotated-out base or wrong generation: full snapshot.
	if got := r.catchup(cur, 2, 7); !bytes.Equal(got, cur.snapshot) {
		t.Fatal("rotated-out base did not get the snapshot")
	}
	if got := r.catchup(cur, 9, 8); !bytes.Equal(got, cur.snapshot) {
		t.Fatal("generation mismatch did not get the snapshot")
	}

	// nearest serves rotated-out document names with the newest snapshot.
	r.add(bcast("other", 11, 7), nil, nil, 0)
	if ent := r.nearest("news"); ent == nil || ent.doc != "news" {
		t.Fatal("nearest lost the retained document")
	}
	for e := uint64(12); e < 16; e++ {
		r.add(bcast("other", e, 7), nil, nil, 0)
	}
	if ent := r.nearest("news"); ent == nil || ent.doc != "other" {
		t.Fatal("rotated-out document not substituted with newest entry")
	}
	if !r.known("news") || r.known("never") {
		t.Fatal("known() lost track of published names")
	}
}

func TestRingRawFramesPreserved(t *testing.T) {
	r := newRing(4)
	b1 := bcast("news", 1, 3)
	rawSnap := wire.MarshalSnapshotFrame(b1)
	ent := r.add(b1, rawSnap, nil, 0)
	if &ent.snapshot[0] != &rawSnap[0] {
		t.Fatal("relay-provided snapshot bytes were re-marshaled")
	}
	b2 := bcast("news", 2, 3)
	d, err := pubsub.Diff(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	rawDelta := wire.MarshalDeltaFrame(d)
	ent2 := r.add(b2, nil, rawDelta, 1)
	if &ent2.delta[0] != &rawDelta[0] || ent2.prevEpoch != 1 {
		t.Fatal("relay-provided delta bytes were not retained as-is")
	}
}

// chanConn is a minimal in-process net.Conn: writes land on a channel (or
// are dropped and counted), reads block until Close.
type chanConn struct {
	wrote  atomic.Int64
	closed chan struct{}
	once   sync.Once
}

func newChanConn() *chanConn { return &chanConn{closed: make(chan struct{})} }

func (c *chanConn) Write(p []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, io.ErrClosedPipe
	default:
		c.wrote.Add(int64(len(p)))
		return len(p), nil
	}
}

func (c *chanConn) Read(p []byte) (int, error) {
	<-c.closed
	return 0, io.EOF
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *chanConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *chanConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *chanConn) SetDeadline(t time.Time) error      { return nil }
func (c *chanConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *chanConn) SetWriteDeadline(t time.Time) error { return nil }

var _ net.Conn = (*chanConn)(nil)

func serveAsync(h *Hub, nc net.Conn, doc string, lastEpoch, lastGen uint64) {
	want := h.Conns() + 1
	go h.ServeConn(nc, doc, lastEpoch, lastGen)
	deadline := time.Now().Add(5 * time.Second)
	for h.Conns() < want && time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

func waitEgress(t *testing.T, h *Hub, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if frames, _ := h.Egress(); frames >= want {
			return
		}
		if time.Now().After(deadline) {
			frames, _ := h.Egress()
			t.Fatalf("egress %d frames, want %d", frames, want)
		}
		runtime.Gosched()
	}
}

func TestHubPublishAndCatchup(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.Publish(bcast("news", 1, 5), nil, nil, 0)

	nc := newChanConn()
	serveAsync(h, nc, "", 0, 0)
	waitEgress(t, h, 1) // the catch-up snapshot

	h.Publish(bcast("news", 2, 5), nil, nil, 0)
	waitEgress(t, h, 2) // the live delta

	known, raw, b := h.Lookup("news")
	if !known || raw == nil || b.Epoch != 2 {
		t.Fatalf("lookup: known=%v raw=%v epoch=%v", known, raw != nil, b)
	}
	if cur := h.Current("news"); cur == nil || cur.Epoch != 2 {
		t.Fatal("Current() not at the newest epoch")
	}

	h.Close()
	if h.Conns() != 0 {
		t.Fatalf("%d conns after Close", h.Conns())
	}
}

func TestHubSlowConsumerEviction(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetQueueDepth(2)

	// A connection whose writer never runs: ServeConn not called, we
	// register by hand so the queue can only fill.
	nc := newChanConn()
	c := &Conn{nc: nc, ch: make(chan *Frame, 2), done: make(chan struct{}), epochs: make(map[string]lastSeen)}
	h.mu.Lock()
	h.conns[c] = struct{}{}
	h.mu.Unlock()

	for e := uint64(1); e <= 4; e++ {
		h.Publish(bcast("news", e, 1), nil, nil, 0)
	}
	if h.Conns() != 0 {
		t.Fatal("slow consumer not evicted")
	}
	select {
	case <-c.done:
	default:
		t.Fatal("evicted conn not shut down")
	}
	// Its queued frames must still be referenced (writer would drain them);
	// release by hand and confirm payload integrity first.
	for len(c.ch) > 0 {
		f := <-c.ch
		if _, err := wire.UnmarshalFrame(f.Payload()); err != nil {
			t.Fatalf("queued frame corrupt after eviction: %v", err)
		}
		f.Release()
	}
}

// TestFanoutZeroAlloc is the acceptance-criterion assertion: offering one
// epoch frame to K downstream connections and writing it on every socket
// allocates nothing on the steady-state path (the frame buffers are pooled;
// an occasional GC-driven pool drop is tolerated as amortized-zero).
func TestFanoutZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const K = 64
	h := NewHub()
	defer h.Close()
	for i := 0; i < K; i++ {
		serveAsync(h, newChanConn(), "", 0, 0)
	}
	if h.Conns() != K {
		t.Fatalf("%d conns, want %d", h.Conns(), K)
	}
	payload := bytes.Repeat([]byte{0xAB}, 512)
	var rounds int64
	run := func() {
		rounds++
		f := NewFrame(payload)
		h.mu.Lock()
		for c := range h.conns {
			h.offer(c, f)
		}
		h.mu.Unlock()
		f.Release()
		want := rounds * K
		for {
			if frames, _ := h.Egress(); frames >= want {
				break
			}
			runtime.Gosched()
		}
	}
	run() // warm the pool before counting
	rounds = 0
	h.egressFrames.Store(0)
	allocs := testing.AllocsPerRun(100, run)
	perWrite := allocs / K
	if perWrite > 0.1 {
		t.Fatalf("%.3f allocs per downstream frame write (%.1f per %d-conn round), want amortized zero", perWrite, allocs, K)
	}
}

// BenchmarkFanoutWrite reports the per-epoch cost of fanning one frame out
// to K connections; run with -benchmem to see the zero-allocation hot path.
func BenchmarkFanoutWrite(b *testing.B) {
	const K = 64
	h := NewHub()
	defer h.Close()
	for i := 0; i < K; i++ {
		nc := newChanConn()
		go h.ServeConn(nc, "", 0, 0)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.Conns() < K && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	payload := bytes.Repeat([]byte{0xAB}, 512)
	b.ReportAllocs()
	b.ResetTimer()
	var want int64
	for i := 0; i < b.N; i++ {
		f := NewFrame(payload)
		h.mu.Lock()
		for c := range h.conns {
			h.offer(c, f)
		}
		h.mu.Unlock()
		f.Release()
		want += K
		for {
			if frames, _ := h.Egress(); frames >= want {
				break
			}
			runtime.Gosched()
		}
	}
}
