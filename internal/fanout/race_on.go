//go:build race

package fanout

// raceEnabled lets tests skip allocation-count assertions, which the race
// runtime inflates.
const raceEnabled = true
