// Conforming fixtures: errors handled, or the drop acknowledged with an
// explicit blank assignment on best-effort paths.
package fixtures

import "os"

func persistDurably(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // error path: the write error wins, drop acknowledged
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// bestEffortDirSync is the documented directory-fsync pattern: some
// filesystems refuse it, so the drop is explicit.
func bestEffortDirSync(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
