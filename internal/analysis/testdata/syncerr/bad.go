// Violating fixtures for the syncerr analyzer: discarded fsync/close errors
// on write paths.
package fixtures

import "os"

func persist(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Sync()  // want `\(\*os\.File\)\.Sync error discarded`
	f.Close() // want `\(\*os\.File\)\.Close error discarded`
	return nil
}

func deferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer discards the \(\*os\.File\)\.Close error`
	_, err = f.Write([]byte("x"))
	return err
}
