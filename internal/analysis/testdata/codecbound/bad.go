// Violating fixtures for the codecbound analyzer: raw decode primitives and
// decode-sized allocations with no clamp.
package fixtures

import (
	"encoding/binary"
	"io"

	"ppcd/internal/codec"
)

// rawReads uses encoding/binary directly on wire bytes.
func rawReads(buf []byte) (uint32, uint64) {
	a := binary.BigEndian.Uint32(buf) // want `raw binary\.Uint32 decode bypasses codec\.Reader`
	b := binary.BigEndian.Uint64(buf) // want `raw binary\.Uint64 decode bypasses codec\.Reader`
	return a, b
}

// slurp reads an unbounded stream on a decode path.
func slurp(r io.Reader) ([]byte, error) {
	return io.ReadAll(r) // want `io\.ReadAll on a decode path is unbounded`
}

// unclampedMake sizes an allocation straight from a decoded u32.
func unclampedMake(r *codec.Reader) ([]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	out := make([]byte, int(n)) // want `make sized by n, an unclamped decoded length`
	return out, nil
}

// unclampedLoop drives append from a decoded count with no bound.
func unclampedLoop(r *codec.Reader) ([]uint64, error) {
	count, err := r.U64()
	if err != nil {
		return nil, err
	}
	var out []uint64
	for i := uint64(0); i < count; i++ { // want `loop bounded by count, an unclamped decoded count`
		v, err := r.U64()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
