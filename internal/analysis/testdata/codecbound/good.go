// Conforming fixtures: the clamped idioms internal/codec exists to provide.
package fixtures

import (
	"encoding/binary"

	"ppcd/internal/codec"
)

const maxItems = 1 << 16

// clampedLen decodes the count through Reader.Len, which clamps before
// returning.
func clampedLen(r *codec.Reader) ([]byte, error) {
	n, err := r.Len(maxItems)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil
}

// guardedRaw compares the decoded value against a bound before it drives the
// allocation.
func guardedRaw(r *codec.Reader) ([]uint64, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if n > maxItems {
		return nil, codec.ErrOversize
	}
	out := make([]uint64, 0, int(n))
	for i := uint32(0); i < n; i++ {
		v, err := r.U64()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// nonLength reads a u64 that never sizes anything (an epoch counter).
func nonLength(r *codec.Reader) (uint64, error) {
	return r.U64()
}

// waived carries the justification directive for a fixed-width framing read
// validated by an outer CRC.
func waived(hdr []byte) uint32 {
	return binary.BigEndian.Uint32(hdr) //ppcd:rawdecode fixed 4-byte frame header, CRC-checked by the caller
}

// encodeSide: writers are not decode paths; PutUint32 stays legal.
func encodeSide(buf []byte, v uint32) {
	binary.BigEndian.PutUint32(buf, v)
}
