// Conforming fixture: crypto/rand is the only entropy source.
package fixtures

import (
	"crypto/rand"
	"time"
)

// freshNonce reads from the kernel CSPRNG.
func freshNonce() ([]byte, error) {
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return nonce, nil
}

// timestamps are fine — the clock is only forbidden as a seed.
func stamp() int64 {
	return time.Now().UnixNano()
}
