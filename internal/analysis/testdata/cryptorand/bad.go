// Violating fixtures for the cryptorand analyzer.
package fixtures

import (
	mrand "math/rand" // want `crypto package imports math/rand`
	"time"
)

// predictableNonce draws key material from a time-seeded PRNG — the classic
// nonce-reuse disaster.
func predictableNonce() []byte {
	src := mrand.NewSource(time.Now().UnixNano()) // want `time-seeded randomness`
	rng := mrand.New(src)
	nonce := make([]byte, 24)
	for i := range nonce {
		nonce[i] = byte(rng.Intn(256))
	}
	return nonce
}
