// Violating fixtures for the lockorder analyzer: inverted grpMu/mu
// acquisition and unpaired locks.
package fixtures

import "sync"

type registry struct {
	grpMu sync.Mutex
	mu    sync.RWMutex
	pubMu sync.Mutex
}

// inverted acquires grpMu while holding mu — the reverse of the documented
// grpMu → mu order.
func (r *registry) inverted() {
	r.mu.Lock()
	r.grpMu.Lock() // want `acquires grpMu while holding mu`
	r.grpMu.Unlock()
	r.mu.Unlock()
}

// invertedRead holds a read lock on mu across the grpMu acquisition; reader
// locks participate in the same order.
func (r *registry) invertedRead() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.grpMu.Lock() // want `acquires grpMu while holding mu`
	r.grpMu.Unlock()
}

// leaks never releases pubMu on any path.
func (r *registry) leaks() int {
	r.pubMu.Lock() // want `pubMu\.Lock without a paired Unlock`
	return 1
}

// relockResidue unlocks the first acquisition but leaves the second held on
// the fall-through return.
func (r *registry) relockResidue(cond bool) {
	r.mu.Lock()
	r.mu.Unlock()
	r.mu.Lock() // want `mu may still be held at function exit`
}

// closureLeak: the closure body is scanned as its own function.
func (r *registry) closureLeak() func() {
	return func() {
		r.grpMu.Lock() // want `grpMu\.Lock without a paired Unlock`
	}
}
