// Conforming fixtures: the documented idioms must produce no diagnostics.
package fixtures

import "sync"

type keeper struct {
	grpMu sync.Mutex
	mu    sync.RWMutex
	mutMu sync.Mutex
}

// documentedOrder is the registry.go idiom: grpMu first, then mu, both
// released by defer.
func (k *keeper) documentedOrder() {
	k.grpMu.Lock()
	defer k.grpMu.Unlock()
	k.mu.Lock()
	defer k.mu.Unlock()
}

// interleaved takes mu repeatedly inside a grpMu-held section (the grouped
// assembly pattern in grouping.go).
func (k *keeper) interleaved(xs []int) int {
	k.grpMu.Lock()
	defer k.grpMu.Unlock()
	total := 0
	for range xs {
		k.mu.Lock()
		total++
		k.mu.Unlock()
	}
	return total
}

// branchRelease unlocks on an early-out branch and on the main path.
func (k *keeper) branchRelease(skip bool) int {
	k.mu.Lock()
	if skip {
		k.mu.Unlock()
		return 0
	}
	n := 1
	k.mu.Unlock()
	return n
}

// sequentialScopes takes mu then later grpMu, but never holds both at once:
// no order to violate.
func (k *keeper) sequentialScopes() {
	k.mu.Lock()
	k.mu.Unlock()
	k.grpMu.Lock()
	k.grpMu.Unlock()
}

// leafLock exercises an unranked tracked mutex with a plain paired unlock.
func (k *keeper) leafLock() {
	k.mutMu.Lock()
	k.mutMu.Unlock()
}
