// Violating fixtures for the hotpath analyzer: allocating constructs inside
// //ppcd:hotpath functions.
package fixtures

import "fmt"

type pair struct{ x, y int }

//ppcd:hotpath
func hotFmt(id uint64) {
	fmt.Printf("frame %d\n", id) // want `fmt\.Printf allocates` `boxes a concrete value`
}

//ppcd:hotpath
func hotConcat(names []string) string {
	out := ""
	for _, n := range names {
		out += n // want `string concatenation allocates`
	}
	return out
}

//ppcd:hotpath
func hotBox(v int) any {
	var sink any
	sink = v // want `assignment boxes a concrete value`
	return sink
}

//ppcd:hotpath
func hotBoxReturn(p pair) any {
	return p // want `return boxes a concrete value`
}

//ppcd:hotpath
func hotEscape(x, y int) *pair {
	return &pair{x, y} // want `address-of composite literal escapes`
}
