// Conforming fixtures: allocation-free idioms under the directive, and
// unmarked functions that may allocate freely.
package fixtures

import (
	"fmt"
	"io"
)

type vec struct{ hi, lo uint64 }

//ppcd:hotpath
func hotArith(a, b vec) vec {
	// Value composite literals returned by value stay on the stack.
	return vec{hi: a.hi + b.hi, lo: a.lo + b.lo}
}

//ppcd:hotpath
func hotScratch(dst []uint64, src []uint64) []uint64 {
	// Append into caller-owned scratch is the workspace idiom; the
	// amortized growth is the caller's explicit business.
	dst = dst[:0]
	for _, v := range src {
		dst = append(dst, v*3)
	}
	return dst
}

//ppcd:hotpath
func hotWrite(w io.Writer, frame []byte) (int, error) {
	// w is already an interface and []byte is pointer-backed: no boxing.
	return w.Write(frame)
}

// coldPath has no directive: fmt and boxing are fine here.
func coldPath(id uint64) string {
	return fmt.Sprintf("frame %d", id)
}
