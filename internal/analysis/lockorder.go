package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces the documented mutex discipline of internal/pubsub
// (registry.go: "Lock order: grpMu → mu (never the reverse while holding
// mu)"): within any function, acquiring a lower-ranked mutex while a
// higher-ranked one is held is an inversion that can deadlock against the
// conforming path. It also requires every Lock/RLock on a tracked mutex
// field to have a paired Unlock/RUnlock or defer Unlock in the same
// function.
//
// The analysis is intra-procedural and walks each function body in source
// order, which is exactly how the package is written (no lock is passed
// across function boundaries while held, except through the documented
// "callers hold grpMu" helpers, which take no locks themselves).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "check the grpMu → mu acquisition order and Lock/Unlock pairing " +
		"on the named mutex fields of internal/pubsub",
	Packages: []string{"internal/pubsub"},
	Run:      runLockOrder,
}

// lockRank orders the fields of the documented partial order: a mutex may
// only be acquired while every held mutex has a strictly LOWER rank.
// Unranked tracked fields (pubMu, mutMu) are leaf locks: pairing is checked,
// ordering constraints don't apply to them.
var lockRank = map[string]int{
	"grpMu": 0,
	"mu":    1,
}

// trackedMutexes are the named mutex fields the analyzer follows.
var trackedMutexes = map[string]bool{
	"grpMu": true, "mu": true, "pubMu": true, "mutMu": true,
}

// mutexEvent is one Lock/Unlock-shaped call site, in source order.
type mutexEvent struct {
	field    string
	method   string // Lock, RLock, Unlock, RUnlock
	deferred bool
	pos      token.Pos
}

func runLockOrder(pass *Pass) error {
	for _, f := range pass.Checked {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockDiscipline(pass, fd)
		}
	}
	return nil
}

// mutexCallEvent decodes a call expression into a mutex event if it is a
// sync.Mutex/RWMutex Lock-family method on a tracked named field.
func mutexCallEvent(info *types.Info, call *ast.CallExpr) (mutexEvent, bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return mutexEvent{}, false
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return mutexEvent{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexEvent{}, false
	}
	var field string
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		field = recv.Sel.Name
	case *ast.Ident:
		field = recv.Name
	default:
		return mutexEvent{}, false
	}
	if !trackedMutexes[field] {
		return mutexEvent{}, false
	}
	return mutexEvent{field: field, method: f.Name(), pos: call.Pos()}, true
}

func checkLockDiscipline(pass *Pass, fd *ast.FuncDecl) {
	var events []mutexEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeferStmt:
			if ev, ok := mutexCallEvent(pass.Info, node.Call); ok {
				ev.deferred = true
				events = append(events, ev)
				return false
			}
		case *ast.CallExpr:
			if ev, ok := mutexCallEvent(pass.Info, node); ok {
				events = append(events, ev)
				return false
			}
		case *ast.FuncLit:
			// Closures get their own linear scan below; don't fold their
			// events into the enclosing function's order.
			return false
		}
		return true
	})

	held := make(map[string]token.Pos)
	deferredUnlock := make(map[string]bool)
	firstLock := make(map[string]token.Pos)
	unlocks := make(map[string]int)

	for _, ev := range events {
		switch ev.method {
		case "Lock", "RLock":
			if ev.deferred {
				continue // defer x.Lock() — nonsensical, but not this check
			}
			if rank, ranked := lockRank[ev.field]; ranked {
				for heldField := range held {
					if heldRank, ok := lockRank[heldField]; ok && rank < heldRank {
						pass.Reportf(ev.pos,
							"acquires %s while holding %s; the documented lock order is grpMu → mu (registry.go)",
							ev.field, heldField)
					}
				}
			}
			held[ev.field] = ev.pos
			if _, ok := firstLock[ev.field]; !ok {
				firstLock[ev.field] = ev.pos
			}
		case "Unlock", "RUnlock":
			if ev.deferred {
				deferredUnlock[ev.field] = true
			} else {
				delete(held, ev.field)
			}
			unlocks[ev.field]++
		}
	}

	for field, pos := range firstLock {
		if unlocks[field] == 0 {
			pass.Reportf(pos, "%s.Lock without a paired Unlock or defer Unlock in this function", field)
			continue
		}
		// Linear-order residue: a lock acquired after its last unlock and
		// not covered by a deferred unlock is still held on the fall-through
		// return path.
		if heldPos, stillHeld := held[field]; stillHeld && !deferredUnlock[field] {
			pass.Reportf(heldPos, "%s may still be held at function exit (no Unlock after this Lock and no defer Unlock)", field)
		}
	}

	// Recurse into closures as independent functions: each gets its own
	// source-order scan.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkLockDiscipline(pass, &ast.FuncDecl{Name: fd.Name, Body: lit.Body})
			return false
		}
		return true
	})
}
