package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method a call invokes, or nil for
// builtins, type conversions and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleeIn reports whether call invokes a function of the package with the
// given import path whose name is one of names (empty names = any).
func calleeIn(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return "", false
	}
	if len(names) == 0 {
		return f.Name(), true
	}
	for _, n := range names {
		if f.Name() == n {
			return n, true
		}
	}
	return "", false
}

// isBuiltin reports whether the call invokes the named universe builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// directiveLines collects the line numbers of every //ppcd:<name> directive
// comment in a file.
func directiveLines(fset *token.FileSet, f *ast.File, name string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//ppcd:"+name) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// hasDirective reports whether a function's doc group carries //ppcd:<name>.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//ppcd:"+name) {
			return true
		}
	}
	return false
}

// identVarsIn collects every variable referenced anywhere inside expr.
func identVarsIn(info *types.Info, expr ast.Expr) []*types.Var {
	var out []*types.Var
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// identObj resolves an identifier (possibly wrapped in conversions or
// parentheses) to its variable object; nil when expr is not ident-rooted.
func identObj(info *types.Info, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.CallExpr:
		// int(n)-style conversion: descend into the single operand.
		if len(e.Args) == 1 {
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
				return identObj(info, e.Args[0])
			}
		}
	}
	return nil
}
