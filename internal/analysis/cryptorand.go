package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// CryptoRand enforces randomness hygiene in the packages that handle key
// material or produce values whose unpredictability the scheme's security
// rests on (OCBE blinding factors, Pedersen randomizers, Schnorr nonces,
// AEAD nonces, ACV kernel coefficients): math/rand — seeded or not — is
// forbidden there, as is deriving any seed from the clock. crypto/rand is
// the only acceptable entropy source; a predictable Schnorr nonce leaks the
// long-term key outright, and a predictable kernel coefficient collapses the
// ACV hiding argument.
var CryptoRand = &Analyzer{
	Name: "cryptorand",
	Doc: "forbid math/rand and time-seeded randomness in the crypto " +
		"packages; require crypto/rand",
	Packages: []string{
		"internal/ocbe", "internal/pedersen", "internal/schnorr",
		"internal/sym", "internal/sig", "internal/idtoken",
		"internal/g2", "internal/ff128", "internal/ff64", "internal/core",
		"internal/polyring",
	},
	Run: runCryptoRand,
}

func runCryptoRand(pass *Pass) error {
	for _, f := range pass.Checked {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(spec.Pos(),
					"crypto package imports %s; key material and nonces must come from crypto/rand", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Time-seeded randomness: Seed/NewSource/NewPCG/NewChaCha8 fed
			// (directly or through arithmetic) from time.Now.
			f := calleeFunc(pass.Info, call)
			if f == nil {
				return true
			}
			switch f.Name() {
			case "Seed", "NewSource", "NewPCG", "NewChaCha8":
				if callsTimeNow(pass, call) {
					pass.Reportf(call.Pos(),
						"time-seeded randomness (%s fed from time.Now) in a crypto package; use crypto/rand", f.Name())
				}
			}
			return true
		})
	}
	return nil
}

// callsTimeNow reports whether any argument subtree of call invokes
// time.Now.
func callsTimeNow(pass *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if f := calleeFunc(pass.Info, inner); f != nil && f.Pkg() != nil &&
					f.Pkg().Path() == "time" && strings.HasPrefix(f.Name(), "Now") {
					found = true
				}
			}
			return !found
		})
		if found {
			break
		}
	}
	return found
}
