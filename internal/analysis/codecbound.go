package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CodecBound enforces the bounded-decode discipline internal/codec was
// extracted to provide (PRs 8–9): inside the hand-rolled binary formats
// (internal/wire, internal/store, and the statev2* state codec of
// internal/pubsub) it flags
//
//  1. raw decode primitives that bypass codec.Reader — binary.BigEndian /
//     binary.LittleEndian integer reads, binary.Read, binary.ReadUvarint /
//     ReadVarint, and io.ReadAll — each of which reads attacker-controlled
//     bytes with none of the reader's clamping or budget charging; and
//  2. allocations (make) or loops driving append whose size derives from a
//     freshly-decoded integer (codec.Reader.U32/U64 or a raw byte-order
//     read) with no intervening clamp: a crafted 4-byte length field must
//     never pick the allocation size. The conforming idioms are
//     codec.Reader.Len (clamped at the call) or an explicit comparison of
//     the decoded value against a bound before it reaches make.
//
// A genuinely justified raw read (e.g. fixed-width framing validated by an
// outer integrity layer) can be waived with a //ppcd:rawdecode comment on
// the same line, which should carry the justification.
var CodecBound = &Analyzer{
	Name: "codecbound",
	Doc: "flag binary decode paths that bypass codec.Reader and " +
		"allocations sized by unclamped decoded integers",
	Packages: []string{"internal/wire", "internal/store", "internal/pubsub"},
	FileGate: func(pkgPath, filename string) bool {
		if strings.Contains(pkgPath, "internal/pubsub") {
			return strings.HasPrefix(filename, "statev2")
		}
		return true
	},
	Run: runCodecBound,
}

// rawDecodeNames are the encoding/binary entry points that read (not write)
// multi-byte values.
var rawDecodeNames = []string{
	"Uint16", "Uint32", "Uint64",
	"Read", "ReadUvarint", "ReadVarint", "Varint", "Uvarint",
}

func runCodecBound(pass *Pass) error {
	for _, f := range pass.Checked {
		waived := directiveLines(pass.Fset, f, "rawdecode")
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			line := pass.Fset.Position(call.Pos()).Line
			if waived[line] {
				return true
			}
			if name, ok := calleeIn(pass.Info, call, "encoding/binary", rawDecodeNames...); ok {
				pass.Reportf(call.Pos(),
					"raw binary.%s decode bypasses codec.Reader; use Reader.U16/U32/U64 (or //ppcd:rawdecode with a justification)",
					name)
			}
			if _, ok := calleeIn(pass.Info, call, "io", "ReadAll"); ok {
				pass.Reportf(call.Pos(),
					"io.ReadAll on a decode path is unbounded; read a length-prefixed field through codec.Reader or apply an io.LimitReader")
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkUnclampedAllocs(pass, fd)
			}
		}
	}
	return nil
}

// decodeTaint records where a variable was assigned from an unclamped decode
// and where (if anywhere) it was first compared against a bound.
type decodeTaint struct {
	src   token.Pos // the tainting assignment
	clamp token.Pos // earliest comparison mentioning the variable (0 = none)
}

// unclampedDecodeCall reports whether call yields an integer straight off the
// wire with no clamp: codec.Reader.U32/U64, or a raw byte-order read.
// codec.Reader.Len is the clamped counterpart and is deliberately absent.
func unclampedDecodeCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch {
	case strings.HasSuffix(f.Pkg().Path(), "internal/codec"):
		return f.Name() == "U32" || f.Name() == "U64"
	case f.Pkg().Path() == "encoding/binary":
		switch f.Name() {
		case "Uint16", "Uint32", "Uint64", "ReadUvarint", "ReadVarint", "Varint", "Uvarint":
			return true
		}
	}
	return false
}

func checkUnclampedAllocs(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	tainted := make(map[*types.Var]*decodeTaint)

	// Pass 1: collect taint sources (v, err := r.U32() and friends) and
	// clamp sites (any comparison mentioning a tainted variable). Source
	// order holds within the single Inspect.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Rhs) == 1 {
				if call, ok := ast.Unparen(node.Rhs[0]).(*ast.CallExpr); ok && unclampedDecodeCall(info, call) {
					if v := identObj(info, node.Lhs[0]); v != nil {
						tainted[v] = &decodeTaint{src: node.Pos()}
					}
				}
			}
		case *ast.IfStmt:
			// A guard comparing the decoded value is the clamp idiom; loop
			// conditions (for i < n) deliberately don't count — they prove
			// progress, not a bound.
			ast.Inspect(node.Cond, func(c ast.Node) bool {
				cmp, ok := c.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch cmp.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ:
					for _, v := range identVarsIn(info, cmp) {
						if t, ok := tainted[v]; ok && t.clamp == token.NoPos {
							t.clamp = node.Pos()
						}
					}
				}
				return true
			})
		}
		return true
	})
	if len(tainted) == 0 {
		return
	}

	// clampedAt reports whether v had been compared against a bound before
	// use (in source order).
	clampedAt := func(v *types.Var, use token.Pos) bool {
		t := tainted[v]
		return t == nil || (t.clamp != token.NoPos && t.clamp < use)
	}

	// Pass 2: flag make calls and append-driving loops sized by still-
	// unclamped decoded integers.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if !isBuiltin(info, node, "make") {
				return true
			}
			for _, arg := range node.Args[1:] {
				for _, v := range identVarsIn(info, arg) {
					if t, ok := tainted[v]; ok && !clampedAt(v, node.Pos()) && t.src < node.Pos() {
						pass.Reportf(node.Pos(),
							"make sized by %s, an unclamped decoded length; decode it with codec.Reader.Len or compare it against a bound first",
							v.Name())
					}
				}
			}
		case *ast.ForStmt:
			cond, ok := node.Cond.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			reported := false
			for _, v := range identVarsIn(info, cond) {
				if reported {
					break
				}
				if t, ok := tainted[v]; ok && !clampedAt(v, node.Pos()) && t.src < node.Pos() && loopGrowsSlice(info, node.Body) {
					pass.Reportf(node.Pos(),
						"loop bounded by %s, an unclamped decoded count, grows a slice; clamp the count (codec.Reader.Len) before allocating from it",
						v.Name())
					reported = true
				}
			}
		}
		return true
	})
}

// loopGrowsSlice reports whether a loop body allocates proportionally to its
// trip count (append or make inside).
func loopGrowsSlice(info *types.Info, body *ast.BlockStmt) bool {
	grows := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isBuiltin(info, call, "append") || isBuiltin(info, call, "make") {
				grows = true
			}
		}
		return !grows
	})
	return grows
}
