package analysis_test

// analysistest-style coverage for every analyzer: each fixture directory
// holds a violating file (bad.go, with `// want` expectations on every
// seeded violation) and a conforming file (good.go, whose idioms must pass
// clean) — so the tests pin both the detections and the waivers.

import (
	"path/filepath"
	"testing"

	"ppcd/internal/analysis"
	"ppcd/internal/analysis/atest"
)

func fixture(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestLockOrder(t *testing.T) {
	atest.Run(t, analysis.LockOrder, fixture(t, "lockorder"))
}

func TestCodecBound(t *testing.T) {
	atest.Run(t, analysis.CodecBound, fixture(t, "codecbound"))
}

func TestCryptoRand(t *testing.T) {
	atest.Run(t, analysis.CryptoRand, fixture(t, "cryptorand"))
}

func TestHotPath(t *testing.T) {
	atest.Run(t, analysis.HotPath, fixture(t, "hotpath"))
}

func TestSyncErr(t *testing.T) {
	atest.Run(t, analysis.SyncErr, fixture(t, "syncerr"))
}

// TestSuiteCleanOnRepo is the self-gate: the full suite over the whole
// module must report nothing — the same bar CI's `go run ./cmd/ppcd-lint
// ./...` step enforces, kept here too so a violating change fails `go test`
// even before CI.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadPatterns(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			if !a.Applies(pkg.ImportPath) {
				continue
			}
			pass := pkg.NewPass(a, true)
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.Diagnostics() {
				t.Errorf("%s", d)
			}
		}
	}
}
