package analysis

// Package loading without golang.org/x/tools/go/packages: `go list -export`
// enumerates the packages and compiles export data for every dependency
// (fully offline — the module has no external requirements), then each target
// package is parsed with go/parser and type-checked with go/types against the
// gc export data through importer.ForCompiler's lookup hook. This is the same
// shape a minimal go/packages driver has, specialized to one module.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// LoadedPackage is one parsed, type-checked package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Filenames  []string
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` on the patterns from dir and
// returns the decoded package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer backed by the export-data files in
// exports (import path → compiled export file from `go list -export`).
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// typeCheck parses nothing itself: it type-checks the already-parsed files as
// the package at path, resolving imports through imp.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// LoadPatterns loads every non-dependency package matched by the go-list
// patterns (e.g. "./..."), rooted at dir (the module root or any directory
// inside it).
func LoadPatterns(dir string, patterns ...string) ([]*LoadedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		exports[p.ImportPath] = p.Export
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*LoadedPackage
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		lp := &LoadedPackage{ImportPath: p.ImportPath, Dir: p.Dir, Fset: fset}
		for _, name := range p.GoFiles {
			fn := filepath.Join(p.Dir, name)
			f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			lp.Files = append(lp.Files, f)
			lp.Filenames = append(lp.Filenames, fn)
		}
		if lp.Pkg, lp.Info, err = typeCheck(fset, p.ImportPath, lp.Files, imp); err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadFixtureDir parses and type-checks every .go file under dir as one
// package (the analysistest layout: testdata/<analyzer>/*.go). Imports —
// stdlib and module-internal alike — resolve through freshly built export
// data, so fixtures can exercise the real codec.Reader API.
func LoadFixtureDir(dir string) (*LoadedPackage, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		return nil, fmt.Errorf("no fixture files in %s (%v)", dir, err)
	}
	fset := token.NewFileSet()
	lp := &LoadedPackage{ImportPath: "fixture/" + filepath.Base(dir), Dir: dir, Fset: fset}
	importSet := make(map[string]bool)
	for _, fn := range matches {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		lp.Files = append(lp.Files, f)
		lp.Filenames = append(lp.Filenames, fn)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		root, err := ModuleRoot(dir)
		if err != nil {
			return nil, err
		}
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		listed, err := goList(root, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := exportImporter(fset, exports)
	if lp.Pkg, lp.Info, err = typeCheck(fset, lp.ImportPath, lp.Files, imp); err != nil {
		return nil, fmt.Errorf("fixture %s: %v", dir, err)
	}
	return lp, nil
}

// NewPass builds a Pass for one analyzer over one loaded package, applying
// the analyzer's file gate. The test harness passes gate=false so fixtures
// are always inspected in full.
func (lp *LoadedPackage) NewPass(a *Analyzer, gate bool) *Pass {
	p := &Pass{
		Analyzer: a,
		Fset:     lp.Fset,
		PkgPath:  lp.ImportPath,
		Pkg:      lp.Pkg,
		Info:     lp.Info,
		Files:    lp.Files,
	}
	for i, f := range lp.Files {
		if gate && a.FileGate != nil && !a.FileGate(lp.ImportPath, filepath.Base(lp.Filenames[i])) {
			continue
		}
		p.Checked = append(p.Checked, f)
	}
	return p
}
