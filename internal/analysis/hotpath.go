package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath checks functions carrying the //ppcd:hotpath directive — the
// fan-out frame-write loop, the ff128 field operations, and the blocked-
// elimination inner loops, each pinned today only by zero-alloc benchmark
// probes — for constructs that are known to allocate:
//
//   - any call into fmt (Sprintf/Errorf/Println all allocate, and the
//     variadic ...any boxes every argument);
//   - non-constant string concatenation;
//   - interface boxing of a concrete non-pointer-shaped value (call
//     arguments, assignments and returns into interface-typed slots): the
//     value is copied to the heap to fit behind the interface word;
//   - address-of composite literals (&T{...}), which escape to the heap
//     unless the compiler can prove otherwise — on a hot path, don't make
//     it try.
//
// The check is a syntactic escape heuristic, not the compiler's escape
// analysis: it is deliberately conservative in what it ALLOWS (append into
// caller-owned scratch, value returns, pointer-shaped boxing) so the
// annotated functions stay reviewable, and anything it flags would also show
// up in `go build -gcflags=-m`.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "report known-allocating constructs inside functions marked " +
		"//ppcd:hotpath",
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Checked {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	var sig *types.Signature
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeIn(info, node, "fmt"); ok {
				pass.Reportf(node.Pos(), "fmt.%s allocates on a //ppcd:hotpath function", name)
			}
			checkCallBoxing(pass, node)
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isNonConstString(info, node) {
				pass.Reportf(node.Pos(), "string concatenation allocates on a //ppcd:hotpath function")
			}
		case *ast.AssignStmt:
			if node.Tok == token.ADD_ASSIGN && len(node.Lhs) == 1 && isNonConstString(info, node.Lhs[0]) {
				pass.Reportf(node.Pos(), "string concatenation allocates on a //ppcd:hotpath function")
			}
			for i, lhs := range node.Lhs {
				if i >= len(node.Rhs) {
					break
				}
				if lt, ok := info.Types[lhs]; ok && boxes(info, lt.Type, node.Rhs[i]) {
					pass.Reportf(node.Rhs[i].Pos(),
						"assignment boxes a concrete value into an interface on a //ppcd:hotpath function")
				}
			}
		case *ast.ReturnStmt:
			if sig == nil || sig.Results() == nil || len(node.Results) != sig.Results().Len() {
				return true
			}
			for i, res := range node.Results {
				if boxes(info, sig.Results().At(i).Type(), res) {
					pass.Reportf(res.Pos(),
						"return boxes a concrete value into an interface on a //ppcd:hotpath function")
				}
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					pass.Reportf(node.Pos(),
						"address-of composite literal escapes to the heap on a //ppcd:hotpath function")
				}
			}
		}
		return true
	})
}

// checkCallBoxing flags call arguments boxed into interface-typed
// parameters.
func checkCallBoxing(pass *Pass, call *ast.CallExpr) {
	info := pass.Info
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(info, pt, arg) {
			pass.Reportf(arg.Pos(),
				"argument boxes a concrete value into interface parameter on a //ppcd:hotpath function")
		}
	}
}

// boxes reports whether assigning src into a slot of type dst heap-boxes a
// concrete value: dst is an interface, src's type is concrete, and the value
// is not pointer-shaped (pointers, chans, maps and funcs fit in the
// interface data word without allocating).
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil {
		return false
	}
	st := tv.Type
	if types.IsInterface(st) {
		return false
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch st.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

// isNonConstString reports whether expr has string type and is not a
// compile-time constant (constant concatenation is folded, no allocation).
func isNonConstString(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
