// Package atest is a small analysistest equivalent for the stdlib-only
// analyzer framework in internal/analysis: it loads a fixture directory
// (testdata/<analyzer>/), runs one analyzer over it with all gating
// bypassed, and checks the reported diagnostics against `// want "regexp"`
// comments, exactly like golang.org/x/tools/go/analysis/analysistest —
// every diagnostic must match an expectation on its line, and every
// expectation must be consumed. Fixture files may import stdlib and
// module-internal packages (e.g. ppcd/internal/codec); the loader builds
// real export data for them, so the conforming idioms in negative fixtures
// exercise the same API production code uses.
package atest

import (
	"fmt"
	"regexp"
	"testing"

	"ppcd/internal/analysis"
)

// wantRe extracts the quoted regexps of one want comment; both double quotes
// and backquotes are accepted, like analysistest.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one pending `want` pattern on a fixture line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture dir, applies the analyzer, and reports mismatches
// through t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	lp, err := analysis.LoadFixtureDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	// Gather expectations from every `// want` comment, keyed by file:line.
	wants := make(map[string][]*expectation)
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := lp.Fset.Position(c.Pos())
				text := c.Text
				if len(text) < 8 || text[:8] != "// want " {
					continue
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(text[8:], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	pass := lp.NewPass(a, false)
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range pass.Diagnostics() {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched, found = true, true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, exp.re)
			}
		}
	}
}
