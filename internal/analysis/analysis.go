// Package analysis is the repo's custom static-analysis suite: machine checks
// for the safety invariants that previously lived only in comments and
// CHANGES.md prose. Each analyzer enforces one invariant:
//
//   - lockorder: the documented grpMu → mu acquisition order in
//     internal/pubsub, plus Lock calls paired with an Unlock or defer Unlock.
//   - codecbound: hand-rolled binary decode paths in internal/wire,
//     internal/store and the statev2* files of internal/pubsub must go through
//     codec.Reader, and no allocation may be sized by a freshly-decoded
//     integer that was never clamped.
//   - cryptorand: the crypto packages must never import math/rand or seed
//     randomness from the clock; crypto/rand only.
//   - hotpath: functions marked //ppcd:hotpath (the fan-out frame-write loop,
//     ff128 field ops, the blocked-elimination inner loops) must not contain
//     known-allocating constructs.
//   - syncerr: internal/store must never discard the error of an
//     (*os.File).Sync or Close — fsync failures ARE the durability story.
//
// The types below deliberately mirror golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the suite can be ported onto the real
// framework wholesale if the dependency ever becomes available; the toolchain
// here is stdlib-only, so loading is done with `go list -export` plus the gc
// export-data importer (see load.go) instead of go/packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check. Run inspects pass.Checked (the files
// that survived the analyzer's package/file gates) and reports findings
// through the pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description shown by `ppcd-lint -help`.
	Doc string
	// Packages gates the analyzer to packages whose import path contains one
	// of these substrings. Empty means every package. The driver applies the
	// gate; the test harness bypasses it so fixtures can live anywhere.
	Packages []string
	// FileGate, when non-nil, further restricts the checked files of a gated
	// package (e.g. codecbound only looks at pubsub's statev2* files).
	FileGate func(pkgPath, filename string) bool
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked form to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// PkgPath is the import path under analysis (a fixture pseudo-path under
	// the test harness).
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info
	// Files holds every parsed file of the package (complete type info).
	Files []*ast.File
	// Checked holds the files this analyzer actually inspects: Files after
	// the driver applied FileGate, or all of them under the test harness.
	Checked []*ast.File

	diags []Diagnostic
}

// Diagnostic is one finding, carrying a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{LockOrder, CodecBound, CryptoRand, HotPath, SyncErr}
}

// Applies reports whether a is gated onto the package at path.
func (a *Analyzer) Applies(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, sub := range a.Packages {
		if strings.Contains(path, sub) {
			return true
		}
	}
	return false
}
