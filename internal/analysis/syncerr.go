package analysis

import (
	"go/ast"
	"go/types"
)

// SyncErr guards the durability story of internal/store: the fsync-before-
// apply discipline is only as strong as the code's willingness to LOOK at
// the error fsync returns. A discarded (*os.File).Sync on a write path turns
// "durable before acknowledged" into "probably durable"; a discarded Close
// can swallow a deferred write error on some filesystems. The analyzer flags
// any statement-level Sync/Close call on an *os.File whose error result is
// dropped. Intentional best-effort sites (error-path cleanup, directory
// fsync on filesystems that refuse it) acknowledge the drop explicitly with
// `_ = f.Close()`, which the analyzer accepts — the assignment is the
// reviewer-visible marker that the drop was considered.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc: "flag discarded errors from (*os.File).Sync and Close in " +
		"internal/store",
	Packages: []string{"internal/store"},
	Run:      runSyncErr,
}

func runSyncErr(pass *Pass) error {
	for _, f := range pass.Checked {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ExprStmt:
				if name, ok := osFileSyncClose(pass.Info, node.X); ok {
					pass.Reportf(node.Pos(),
						"(*os.File).%s error discarded; durability depends on it — handle it or acknowledge with `_ = ...%s()`", name, name)
				}
			case *ast.DeferStmt:
				if name, ok := osFileSyncClose(pass.Info, node.Call); ok {
					pass.Reportf(node.Pos(),
						"defer discards the (*os.File).%s error; use a named-return closure or an explicit post-write %s", name, name)
				}
			case *ast.GoStmt:
				if name, ok := osFileSyncClose(pass.Info, node.Call); ok {
					pass.Reportf(node.Pos(), "go statement discards the (*os.File).%s error", name)
				}
			}
			return true
		})
	}
	return nil
}

// osFileSyncClose reports whether expr is a call to Sync or Close on an
// *os.File receiver.
func osFileSyncClose(info *types.Info, expr ast.Expr) (string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "os" {
		return "", false
	}
	if f.Name() != "Sync" && f.Name() != "Close" {
		return "", false
	}
	// Methods named Sync/Close in package os: the only receiver carrying
	// them is *os.File, but check anyway so a future os type doesn't
	// surprise us.
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", false
	}
	return f.Name(), true
}
