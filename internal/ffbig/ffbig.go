// Package ffbig implements arithmetic in prime fields F_p of arbitrary size
// on top of math/big. It is the base field for the commitment group: the
// genus-2 Jacobian in package g2 works over an 83-bit field and the Schnorr
// group in package schnorr over a 2048-bit field, both through this package.
// Elements are canonical residues (*big.Int in [0, p)).
package ffbig

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

// Field is a prime field F_p. The zero value is not usable; construct with
// NewField.
type Field struct {
	p *big.Int
}

// NewField returns the field of integers modulo p. It rejects moduli that
// are not (probable) primes or are smaller than 3.
func NewField(p *big.Int) (*Field, error) {
	if p == nil || p.Cmp(big.NewInt(3)) < 0 {
		return nil, errors.New("ffbig: modulus must be a prime >= 3")
	}
	if !p.ProbablyPrime(32) {
		return nil, fmt.Errorf("ffbig: modulus %s is not prime", p)
	}
	return &Field{p: new(big.Int).Set(p)}, nil
}

// MustField is NewField for known-good compile-time moduli; it panics on
// error.
func MustField(p *big.Int) *Field {
	f, err := NewField(p)
	if err != nil {
		panic(err)
	}
	return f
}

// P returns a copy of the modulus.
func (f *Field) P() *big.Int { return new(big.Int).Set(f.p) }

// Bits returns the bit length of the modulus.
func (f *Field) Bits() int { return f.p.BitLen() }

// Reduce returns x mod p as a new canonical residue.
func (f *Field) Reduce(x *big.Int) *big.Int {
	return new(big.Int).Mod(x, f.p)
}

// ReduceInPlace reduces x modulo p in place and returns x. Hot paths
// (polynomial arithmetic in Cantor's algorithm) use it to avoid allocating a
// fresh big.Int per operation.
func (f *Field) ReduceInPlace(x *big.Int) *big.Int {
	return x.Mod(x, f.p)
}

// Contains reports whether x is a canonical residue of the field.
func (f *Field) Contains(x *big.Int) bool {
	return x != nil && x.Sign() >= 0 && x.Cmp(f.p) < 0
}

// Add returns a + b mod p.
func (f *Field) Add(a, b *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Add(a, b))
}

// Sub returns a - b mod p.
func (f *Field) Sub(a, b *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Sub(a, b))
}

// Neg returns -a mod p.
func (f *Field) Neg(a *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Neg(a))
}

// Mul returns a · b mod p.
func (f *Field) Mul(a, b *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Mul(a, b))
}

// Sq returns a² mod p.
func (f *Field) Sq(a *big.Int) *big.Int { return f.Mul(a, a) }

// Exp returns a^e mod p. Negative exponents invert the base first.
func (f *Field) Exp(a, e *big.Int) (*big.Int, error) {
	if e.Sign() < 0 {
		inv, err := f.Inv(a)
		if err != nil {
			return nil, err
		}
		return new(big.Int).Exp(inv, new(big.Int).Neg(e), f.p), nil
	}
	return new(big.Int).Exp(a, e, f.p), nil
}

// ErrNoInverse is returned when inverting zero.
var ErrNoInverse = errors.New("ffbig: zero has no multiplicative inverse")

// Inv returns a⁻¹ mod p.
func (f *Field) Inv(a *big.Int) (*big.Int, error) {
	red := f.Reduce(a)
	if red.Sign() == 0 {
		return nil, ErrNoInverse
	}
	return new(big.Int).ModInverse(red, f.p), nil
}

// Div returns a / b mod p.
func (f *Field) Div(a, b *big.Int) (*big.Int, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return nil, err
	}
	return f.Mul(a, bi), nil
}

// ErrNoSqrt is returned by Sqrt for quadratic non-residues.
var ErrNoSqrt = errors.New("ffbig: element is not a quadratic residue")

// IsSquare reports whether a is a quadratic residue mod p (0 counts as a
// square).
func (f *Field) IsSquare(a *big.Int) bool {
	red := f.Reduce(a)
	if red.Sign() == 0 {
		return true
	}
	// Euler's criterion: a^((p-1)/2) == 1.
	e := new(big.Int).Rsh(new(big.Int).Sub(f.p, big.NewInt(1)), 1)
	return new(big.Int).Exp(red, e, f.p).Cmp(big.NewInt(1)) == 0
}

// Sqrt returns a square root of a mod p, or ErrNoSqrt if none exists. It
// uses math/big's ModSqrt (Tonelli–Shanks internally).
func (f *Field) Sqrt(a *big.Int) (*big.Int, error) {
	red := f.Reduce(a)
	r := new(big.Int).ModSqrt(red, f.p)
	if r == nil {
		return nil, ErrNoSqrt
	}
	return r, nil
}

// Rand returns a uniformly random canonical residue.
func (f *Field) Rand() (*big.Int, error) {
	return rand.Int(rand.Reader, f.p)
}

// RandNonZero returns a uniformly random non-zero residue.
func (f *Field) RandNonZero() (*big.Int, error) {
	for {
		x, err := f.Rand()
		if err != nil {
			return nil, err
		}
		if x.Sign() != 0 {
			return x, nil
		}
	}
}

// Equal reports whether two fields have the same modulus.
func (f *Field) Equal(g *Field) bool { return f.p.Cmp(g.p) == 0 }

// String implements fmt.Stringer.
func (f *Field) String() string { return fmt.Sprintf("F_p(%d bits)", f.Bits()) }
