package ffbig

import (
	"math/big"
	"testing"
	"testing/quick"
)

var f17 = MustField(big.NewInt(17))

func TestNewFieldValidation(t *testing.T) {
	if _, err := NewField(nil); err == nil {
		t.Error("nil modulus accepted")
	}
	if _, err := NewField(big.NewInt(1)); err == nil {
		t.Error("modulus 1 accepted")
	}
	if _, err := NewField(big.NewInt(15)); err == nil {
		t.Error("composite modulus accepted")
	}
	if _, err := NewField(big.NewInt(101)); err != nil {
		t.Error("prime 101 rejected")
	}
}

func TestMustFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustField on composite did not panic")
		}
	}()
	MustField(big.NewInt(12))
}

func TestBasicOps(t *testing.T) {
	a, b := big.NewInt(15), big.NewInt(4)
	if f17.Add(a, b).Int64() != 2 {
		t.Error("15+4 mod 17 != 2")
	}
	if f17.Sub(b, a).Int64() != 6 {
		t.Error("4-15 mod 17 != 6")
	}
	if f17.Mul(a, b).Int64() != 9 {
		t.Error("15*4 mod 17 != 9")
	}
	if f17.Neg(a).Int64() != 2 {
		t.Error("-15 mod 17 != 2")
	}
	if f17.Sq(b).Int64() != 16 {
		t.Error("4^2 mod 17 != 16")
	}
}

func TestInvDiv(t *testing.T) {
	if _, err := f17.Inv(big.NewInt(0)); err != ErrNoInverse {
		t.Error("Inv(0) should return ErrNoInverse")
	}
	for i := int64(1); i < 17; i++ {
		inv, err := f17.Inv(big.NewInt(i))
		if err != nil {
			t.Fatal(err)
		}
		if f17.Mul(big.NewInt(i), inv).Int64() != 1 {
			t.Errorf("Inv(%d) wrong", i)
		}
	}
	q, err := f17.Div(big.NewInt(8), big.NewInt(2))
	if err != nil || q.Int64() != 4 {
		t.Errorf("8/2 = %v (%v)", q, err)
	}
	if _, err := f17.Div(big.NewInt(1), big.NewInt(0)); err == nil {
		t.Error("div by zero accepted")
	}
}

func TestExp(t *testing.T) {
	got, err := f17.Exp(big.NewInt(2), big.NewInt(10))
	if err != nil || got.Int64() != 4 {
		t.Errorf("2^10 mod 17 = %v, want 4", got)
	}
	// Negative exponent: 2^-1 = 9 mod 17.
	got, err = f17.Exp(big.NewInt(2), big.NewInt(-1))
	if err != nil || got.Int64() != 9 {
		t.Errorf("2^-1 mod 17 = %v, want 9", got)
	}
	if _, err := f17.Exp(big.NewInt(0), big.NewInt(-1)); err == nil {
		t.Error("0^-1 accepted")
	}
}

func TestSqrtAndIsSquare(t *testing.T) {
	// Squares mod 17: 1,2,4,8,9,13,15,16.
	squares := map[int64]bool{1: true, 2: true, 4: true, 8: true, 9: true, 13: true, 15: true, 16: true}
	for i := int64(1); i < 17; i++ {
		a := big.NewInt(i)
		if f17.IsSquare(a) != squares[i] {
			t.Errorf("IsSquare(%d) = %v", i, !squares[i])
		}
		r, err := f17.Sqrt(a)
		if squares[i] {
			if err != nil {
				t.Errorf("Sqrt(%d) failed: %v", i, err)
				continue
			}
			if f17.Sq(r).Int64() != i {
				t.Errorf("Sqrt(%d)^2 = %v", i, f17.Sq(r))
			}
		} else if err != ErrNoSqrt {
			t.Errorf("Sqrt(%d) should fail, got %v %v", i, r, err)
		}
	}
	if !f17.IsSquare(big.NewInt(0)) {
		t.Error("0 should count as square")
	}
}

func TestRandContained(t *testing.T) {
	for i := 0; i < 50; i++ {
		x, err := f17.Rand()
		if err != nil {
			t.Fatal(err)
		}
		if !f17.Contains(x) {
			t.Fatalf("Rand out of range: %v", x)
		}
	}
	for i := 0; i < 20; i++ {
		x, err := f17.RandNonZero()
		if err != nil {
			t.Fatal(err)
		}
		if x.Sign() == 0 {
			t.Fatal("RandNonZero returned 0")
		}
	}
}

func TestContains(t *testing.T) {
	if f17.Contains(nil) {
		t.Error("nil contained")
	}
	if f17.Contains(big.NewInt(-1)) {
		t.Error("-1 contained")
	}
	if f17.Contains(big.NewInt(17)) {
		t.Error("p contained")
	}
	if !f17.Contains(big.NewInt(16)) {
		t.Error("16 not contained")
	}
}

func TestFieldAxiomsLargePrime(t *testing.T) {
	// 2^127 - 1 is prime (Mersenne).
	p := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 127), big.NewInt(1))
	f := MustField(p)
	check := func(a, b, c int64) bool {
		x := f.Reduce(big.NewInt(a))
		y := f.Reduce(big.NewInt(b))
		z := f.Reduce(big.NewInt(c))
		// distributivity
		lhs := f.Mul(x, f.Add(y, z))
		rhs := f.Add(f.Mul(x, y), f.Mul(x, z))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualAndString(t *testing.T) {
	g := MustField(big.NewInt(17))
	if !f17.Equal(g) {
		t.Error("equal fields not equal")
	}
	if f17.Equal(MustField(big.NewInt(19))) {
		t.Error("different fields equal")
	}
	if f17.String() == "" {
		t.Error("empty String")
	}
	if f17.Bits() != 5 {
		t.Errorf("Bits = %d", f17.Bits())
	}
}

func TestPReturnsCopy(t *testing.T) {
	p := f17.P()
	p.SetInt64(99)
	if f17.P().Int64() != 17 {
		t.Error("P() leaked internal modulus")
	}
}
