package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"ppcd/internal/codec"
	"ppcd/internal/core"
	"ppcd/internal/pubsub"
	"ppcd/internal/sym"
)

// openWAL opens wal.ppcd, scans it, retains the events newer than snapSeq
// for Recover, truncates a torn tail, and leaves the handle positioned for
// appends.
func (s *Store) openWAL(snapSeq uint64) error {
	path := filepath.Join(s.dir, walName)
	raw, err := os.ReadFile(path)
	fresh := errors.Is(err, os.ErrNotExist)
	if err != nil && !fresh {
		return fmt.Errorf("store: %w", err)
	}
	if fresh || len(raw) == 0 {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := f.Write(walMagic); err != nil {
			_ = f.Close()
			return fmt.Errorf("store: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("store: %w", err)
		}
		s.wal = f
		s.walSize = int64(len(walMagic))
		return nil
	}
	if !bytes.HasPrefix(raw, walMagic) {
		return fmt.Errorf("%w: bad WAL magic", ErrCorrupt)
	}

	off := len(walMagic)
	goodEnd := off
	var firstSeq, lastSeq uint64
	haveSeq := false
	for off < len(raw) {
		rec, n, err := parseRecord(raw[off:], s.key)
		if err != nil {
			// A crash can also persist the file's extended size without its
			// data blocks, leaving an all-zero tail: crc32("") is 0, so a
			// zeroed length/CRC header passes the checksum and would
			// misclassify as corruption. Whatever the parse failure, a
			// remainder of pure zeros is a torn tail, not an attack — no
			// honest record is all zeros (sealed bodies are AEAD output).
			if errors.Is(err, errTorn) || allZero(raw[off:]) {
				s.stats.TruncatedTail = true
				break // truncate at goodEnd
			}
			return err
		}
		if haveSeq && rec.seq != lastSeq+1 {
			return fmt.Errorf("%w: WAL sequence jumps %d → %d (record removed?)", ErrCorrupt, lastSeq, rec.seq)
		}
		if !haveSeq {
			firstSeq = rec.seq
		}
		lastSeq, haveSeq = rec.seq, true
		if rec.seq > snapSeq {
			s.pending = append(s.pending, rec.ev)
		} else {
			s.stats.SkippedRecords++
		}
		off += n
		goodEnd = off
	}

	// Continuity must also hold at the head: the log's first record has to
	// connect to the snapshot's covered sequence, or records were excised
	// from the front (silently losing their mutations on replay).
	if haveSeq && firstSeq > snapSeq+1 {
		return fmt.Errorf("%w: WAL starts at sequence %d but the snapshot covers only %d (records removed?)",
			ErrCorrupt, firstSeq, snapSeq)
	}
	if goodEnd < len(raw) {
		if err := os.Truncate(path, int64(goodEnd)); err != nil {
			return fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(int64(goodEnd), 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.wal = f
	s.walSize = int64(goodEnd)
	if haveSeq {
		s.seq = lastSeq
	}
	return nil
}

// allZero reports whether every byte of b is zero (the signature of a file
// whose size was persisted before its data blocks — a torn tail).
func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// errTorn distinguishes an incomplete tail record (crash mid-append;
// recoverable by truncation) from corruption.
var errTorn = errors.New("store: torn WAL tail")

type walRecord struct {
	seq uint64
	ev  pubsub.StateEvent
}

// parseRecord decodes one record from the head of buf, returning its total
// encoded length. A record that runs past the buffer is torn; a complete
// record failing CRC or AEAD is corrupt — unless nothing follows it, where a
// block-granular torn write is still possible and it is treated as torn.
func parseRecord(buf []byte, key [sym.KeySize]byte) (walRecord, int, error) {
	hdr := codec.NewReader(buf, nil)
	n, err := hdr.Len(maxWALRecord)
	if err != nil {
		if errors.Is(err, codec.ErrTruncated) {
			return walRecord{}, 0, errTorn
		}
		return walRecord{}, 0, fmt.Errorf("%w: WAL record length exceeds the %d-byte limit", ErrCorrupt, maxWALRecord)
	}
	sum, err := hdr.U32()
	if err != nil {
		return walRecord{}, 0, errTorn
	}
	sealed, err := hdr.Take(n)
	if err != nil {
		return walRecord{}, 0, errTorn
	}
	last := hdr.Remaining() == 0
	if crc32.ChecksumIEEE(sealed) != sum {
		if last {
			return walRecord{}, 0, errTorn
		}
		return walRecord{}, 0, fmt.Errorf("%w: WAL record checksum mismatch", ErrCorrupt)
	}
	// A CRC match proves the sealed bytes are exactly what the flusher
	// wrote, so an AEAD failure here can never be a torn write — it is the
	// wrong operator key or deliberate tampering, and it fails loudly even
	// at the tail (a wrong key must not silently truncate a snapshot-less
	// log).
	plain, err := sym.Decrypt(key, sealed)
	if err != nil {
		return walRecord{}, 0, fmt.Errorf("%w: WAL record does not authenticate", ErrCorrupt)
	}
	body := codec.NewReader(plain, nil)
	seq, err := body.U64()
	if err != nil {
		return walRecord{}, 0, fmt.Errorf("%w: WAL record too short", ErrCorrupt)
	}
	evBytes, err := body.Take(body.Remaining())
	if err != nil {
		return walRecord{}, 0, fmt.Errorf("%w: WAL record too short", ErrCorrupt)
	}
	ev, err := decodeEvent(evBytes)
	if err != nil {
		return walRecord{}, 0, err
	}
	return walRecord{seq: seq, ev: ev}, 8 + n, nil
}

// --- pipelined group commit ------------------------------------------------

// walCommit is one admitted commit: its sealed records, the last sequence it
// claims, the in-memory apply to run once durable, and the latch its ticket
// waits on.
type walCommit struct {
	recs    []byte
	lastSeq uint64
	apply   func()
	err     error
	done    chan struct{}
}

type commitTicket struct{ c *walCommit }

func (t commitTicket) Wait() error {
	<-t.c.done
	return t.c.err
}

// Begin implements pubsub.CommitJournal: it seals evs into consecutive
// records, claims their sequence numbers, and enqueues them for the flusher
// goroutine — returning immediately, so the caller can release its mutation
// lock and concurrent mutators can join the same coalesced write+fsync.
// apply runs on the flusher, in sequence order, exactly once, strictly after
// the records are durable and strictly before the ticket resolves; on a
// flush failure it never runs.
//
// The write-ahead invariant is preserved end to end: no mutation is visible
// in memory (apply) or to the caller (Wait) before its record is fsynced,
// and the flusher applies commits in the exact order their records hit the
// log.
func (s *Store) Begin(evs []pubsub.StateEvent, apply func()) (pubsub.CommitTicket, error) {
	if apply == nil {
		apply = func() {}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("store: closed")
	}
	if s.broken {
		s.mu.Unlock()
		return nil, errors.New("store: WAL unusable after an unrecoverable append failure")
	}
	c := &walCommit{apply: apply, done: make(chan struct{})}
	for i, ev := range evs {
		plain := make([]byte, 8, 64)
		binary.BigEndian.PutUint64(plain, s.seq+uint64(i)+1)
		plain = appendEvent(plain, ev)
		sealed, err := sym.Encrypt(s.key, plain)
		if err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("store: %w", err)
		}
		// Recovery refuses records above maxWALRecord as corrupt, so an
		// event that would encode past it must be rejected HERE — failing
		// the triggering operation — never written and fsynced into a log
		// that can no longer be opened.
		if len(sealed) > maxWALRecord {
			s.mu.Unlock()
			return nil, fmt.Errorf("store: event of %d sealed bytes exceeds the %d WAL record limit", len(sealed), maxWALRecord)
		}
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(sealed)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(sealed))
		c.recs = append(c.recs, hdr[:]...)
		c.recs = append(c.recs, sealed...)
	}
	s.seq += uint64(len(evs))
	s.walRecords += len(evs)
	c.lastSeq = s.seq
	s.queue = append(s.queue, c)
	if !s.flushing {
		s.flushing = true
		go s.flushLoop()
	}
	s.mu.Unlock()
	return commitTicket{c}, nil
}

// flushLoop drains the commit queue: each pass takes every queued commit and
// makes them durable with ONE write + fsync. Commits admitted while a flush
// is in flight pile up and share the next one, so under concurrent mutators
// the fsync cost amortizes across the group while a lone mutator still pays
// exactly one fsync of latency.
func (s *Store) flushLoop() {
	s.mu.Lock()
	for len(s.queue) > 0 {
		batch := s.queue
		s.queue = nil
		s.mu.Unlock()

		recs := batch[0].recs
		if len(batch) > 1 {
			total := 0
			for _, c := range batch {
				total += len(c.recs)
			}
			recs = make([]byte, 0, total)
			for _, c := range batch {
				recs = append(recs, c.recs...)
			}
		}
		_, werr := s.wal.Write(recs)
		if werr == nil {
			werr = s.wal.Sync()
		}
		if werr != nil {
			s.failFlush(batch, werr)
			return
		}
		// Durable: run the applies in sequence order before any ticket
		// resolves and before acked advances (the snapshot drain takes
		// acked ≥ target to mean "applied", not merely "on disk").
		for _, c := range batch {
			c.apply()
		}
		s.mu.Lock()
		s.walSize += int64(len(recs))
		if last := batch[len(batch)-1].lastSeq; last > s.acked {
			s.acked = last
		}
		s.cond.Broadcast()
		for _, c := range batch {
			close(c.done)
		}
	}
	s.flushing = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// failFlush handles a failed write/fsync: the file is rolled back
// best-effort to the last durable record, every queued commit fails, and
// the log latches broken. The sequence counter is NEVER rolled back — a
// concurrent snapshot may already have captured the failed sequences as its
// cover point, and reissuing them to later events would make recovery skip
// those events silently. A later quiet snapshot compacts the WAL and clears
// the latch.
func (s *Store) failFlush(batch []*walCommit, werr error) {
	s.mu.Lock()
	s.broken = true
	err := fmt.Errorf("store: appending WAL: %w (log disabled until a snapshot compacts it)", werr)
	if terr := s.wal.Truncate(s.walSize); terr != nil {
		err = fmt.Errorf("store: appending WAL: %v; rollback failed, log disabled: %w", werr, terr)
	} else if _, serr := s.wal.Seek(s.walSize, 0); serr != nil {
		err = fmt.Errorf("store: appending WAL: %v; rollback failed, log disabled: %w", werr, serr)
	}
	// broken is set, so no commit can be admitted behind us: the queue we
	// drain here is the complete set of outstanding commits.
	batch = append(batch, s.queue...)
	s.queue = nil
	s.acked = s.seq
	s.flushing = false
	s.cond.Broadcast()
	for _, c := range batch {
		c.err = err
		close(c.done)
	}
	s.mu.Unlock()
}

// drainCommits waits until every admitted commit has resolved and returns
// the sequence number an upcoming snapshot may claim coverage of. It runs
// inside the publisher's journal barrier: table mutators are blocked, so
// every table mutation with seq ≤ the returned value is applied and will be
// captured by the export. Publish events can still be admitted DURING the
// drain (they commit outside the mutation lock), and claiming them is sound
// too: a publish's memory effect (the epoch bump) precedes its Begin, so the
// export reflects any publish sequence the snapshot covers.
func (s *Store) drainCommits() (seqBefore uint64, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.seq
	for s.acked < target {
		s.cond.Wait()
	}
	return s.seq, s.closed
}

// Append seals one event and makes it durable (fsync) before returning; it
// implements pubsub.Journal, so a failed append fails the publisher
// operation that produced the event.
func (s *Store) Append(ev pubsub.StateEvent) error {
	return s.AppendBatch([]pubsub.StateEvent{ev})
}

// AppendBatch seals many events into consecutive records and makes them
// durable before returning; it implements pubsub.BatchJournal. The batch is
// atomic (every record durable or none applied), and because it rides the
// commit pipeline it shares its write+fsync with any concurrently admitted
// commits.
func (s *Store) AppendBatch(evs []pubsub.StateEvent) error {
	if len(evs) == 0 {
		return nil
	}
	t, err := s.Begin(evs, nil)
	if err != nil {
		return err
	}
	return t.Wait()
}

// --- event codec -----------------------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v>>32)), uint32(v))
}

func appendStr(b []byte, s string) []byte {
	return append(appendU32(b, uint32(len(s))), s...)
}

// appendEvent encodes one event (the plaintext body sealed into a record).
func appendEvent(b []byte, ev pubsub.StateEvent) []byte {
	b = append(b, byte(ev.Kind))
	switch ev.Kind {
	case pubsub.StateEventRegister:
		b = appendStr(b, ev.Nym)
		conds := make([]string, 0, len(ev.Cells))
		for c := range ev.Cells {
			conds = append(conds, c)
		}
		sort.Strings(conds)
		b = appendU32(b, uint32(len(conds)))
		for _, c := range conds {
			b = appendStr(b, c)
			b = appendU64(b, uint64(ev.Cells[c]))
		}
	case pubsub.StateEventRevokeSubscription:
		b = appendStr(b, ev.Nym)
	case pubsub.StateEventRevokeCredential:
		b = appendStr(b, ev.Nym)
		b = appendStr(b, ev.Cond)
	case pubsub.StateEventPublish:
		b = appendStr(b, ev.Doc)
		b = appendU64(b, ev.Epoch)
	}
	return b
}

// evErr maps a codec decode error into the store's corruption sentinel.
func evErr(err error) error {
	return fmt.Errorf("%w: bad event encoding: %v", ErrCorrupt, err)
}

// decodeEvent decodes one sealed record body. Only shape is validated here;
// the publisher applies semantic validation (CSS range, nym caps, policy
// membership) when the event is replayed.
func decodeEvent(buf []byte) (pubsub.StateEvent, error) {
	r := codec.NewReader(buf, nil)
	var ev pubsub.StateEvent
	kind, err := r.U8()
	if err != nil {
		return ev, evErr(err)
	}
	ev.Kind = pubsub.StateEventKind(kind)
	switch ev.Kind {
	case pubsub.StateEventRegister:
		if ev.Nym, err = r.Str(maxEventString); err != nil {
			return ev, evErr(err)
		}
		n, err := r.Len(maxEventCells)
		if err != nil {
			return ev, fmt.Errorf("%w: event cell count exceeds limits: %v", ErrCorrupt, err)
		}
		ev.Cells = make(map[string]core.CSS, n)
		for i := 0; i < n; i++ {
			cond, err := r.Str(maxEventString)
			if err != nil {
				return ev, evErr(err)
			}
			css, err := r.U64()
			if err != nil {
				return ev, evErr(err)
			}
			ev.Cells[cond] = core.CSS(css)
		}
	case pubsub.StateEventRevokeSubscription:
		if ev.Nym, err = r.Str(maxEventString); err != nil {
			return ev, evErr(err)
		}
	case pubsub.StateEventRevokeCredential:
		if ev.Nym, err = r.Str(maxEventString); err != nil {
			return ev, evErr(err)
		}
		if ev.Cond, err = r.Str(maxEventString); err != nil {
			return ev, evErr(err)
		}
	case pubsub.StateEventPublish:
		if ev.Doc, err = r.Str(maxEventString); err != nil {
			return ev, evErr(err)
		}
		if ev.Epoch, err = r.U64(); err != nil {
			return ev, evErr(err)
		}
	default:
		return ev, fmt.Errorf("%w: unknown event kind %d", ErrCorrupt, kind)
	}
	if r.Remaining() != 0 {
		return ev, fmt.Errorf("%w: event has trailing bytes", ErrCorrupt)
	}
	return ev, nil
}
