// Package store is the publisher's durable-state subsystem: an append-only
// write-ahead log of registration/revocation/publish events plus periodically
// compacted segmented snapshots, everything encrypted at rest with AEAD
// (internal/sym, AES-256-GCM) under an operator key.
//
// The paper requires table T to be protected (§V-B) and makes rekeying a pure
// broadcast operation (§V-C); both properties are only worth anything if they
// survive a process restart. A publisher recovered through this package keeps
// its table, its sticky group assignments, its epoch counter and its
// incarnation generation, so the first post-restart publish is a zero-solve
// steady-state publish and streaming subscribers catch up with small deltas
// instead of re-downloading snapshots.
//
// On-disk layout inside the state directory (created mode 0700):
//
//	manifest.ppcd      "PPCDMF1" ‖ AEAD( manifest body )
//	seg-<k><i>-<r>.ppcd "PPCDSG1" ‖ AEAD( kind:u8 ‖ index:u32 ‖ payload )
//	wal.ppcd           "PPCDWL1" ‖ records…
//	snapshot.ppcd      legacy single-blob snapshot (read-side compatibility)
//
// A snapshot is SEGMENTED: the publisher state splits into one meta segment
// (kind 'm'), table segments (kind 't') covering contiguous columnar slot
// ranges, and cache segments (kind 'c') holding hash-bucketed engine cache
// entries. The manifest binds the set: for every segment file it records the
// name, size and SHA-256 of the sealed bytes, plus the WAL sequence the
// snapshot covers. Installing a snapshot is one atomic manifest rename;
// segment files are never overwritten (each rewrite gets a fresh random name
// suffix), so a crash at ANY point of the write protocol leaves the previous
// manifest and every file it references intact:
//
//	crash window                    next Open sees
//	─────────────────────────────   ─────────────────────────────────────────
//	mid/after segment writes        old manifest + orphan seg files → GC'd
//	mid manifest tmp write          old manifest + manifest.ppcd.tmp → removed
//	after rename, before WAL trunc  new manifest + stale WAL prefix → skipped
//	                                by sequence on replay
//
// The payoff over the previous single-blob snapshot: a snapshot after churn
// rewrites only the segments whose rows or cache buckets changed (O(churn)
// bytes, not O(state)), and recovery unseals and decodes segments in
// parallel across a worker pool.
//
// Each WAL record is
//
//	len:u32 ‖ crc32(sealed):u32 ‖ sealed
//	sealed = AEAD( seq:u64 ‖ event )
//
// All integers are big-endian. The sequence number inside the AEAD envelope
// orders events totally: a snapshot taken at sequence s makes every record
// with seq ≤ s redundant, so recovery replays only the strictly-newer tail —
// which is also what makes the crash window between writing a snapshot and
// truncating the WAL harmless. Within one WAL file sequence numbers must
// increase by exactly one record to record; a gap means a record was removed
// and recovery refuses the log (an attacker with file access cannot forge
// records — they are AEAD-sealed — and the continuity check stops them from
// silently deleting one).
//
// Torn tails versus corruption: a crash mid-append leaves a record whose
// length field or body is incomplete — recovery truncates the file at the
// last complete record and carries on. A record that is complete but fails
// its CRC or AEAD check is corruption (a flipped bit cannot shorten a file),
// and recovery refuses it — except when it is the final record, where a
// block-granular torn write can leave a full-length region only partially
// persisted; that one case also truncates.
//
// What AEAD at rest does NOT provide is rollback protection: an attacker who
// can replace the whole directory with an older, honestly produced copy wins.
// Guard the directory itself (filesystem permissions, disk encryption,
// off-host backup auditing) against that.
package store

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"

	"ppcd/internal/codec"
	"ppcd/internal/core"
	"ppcd/internal/pubsub"
	"ppcd/internal/sym"
)

const (
	snapshotName = "snapshot.ppcd" // legacy single-blob snapshot
	manifestName = "manifest.ppcd"
	walName      = "wal.ppcd"
	lockName     = "lock"

	// maxWALRecord bounds one sealed record; the largest legitimate event (a
	// maximum-size registration batch for one pseudonym) stays far below it.
	maxWALRecord = 64 << 20
	// maxEventString bounds one decoded string field; the publisher applies
	// its own (tighter) semantic caps on replay.
	maxEventString = 1 << 20
	// maxEventCells bounds the cells of one registration event.
	maxEventCells = 1 << 16
)

var (
	snapMagic = []byte("PPCDSN1")
	walMagic  = []byte("PPCDWL1")
	manMagic  = []byte("PPCDMF1")
	segMagic  = []byte("PPCDSG1")
)

// Errors reported by Open.
var (
	// ErrCorrupt means a state file failed its integrity checks in a way a
	// crash cannot produce: flipped bits, a removed WAL record, a wrong key.
	ErrCorrupt = errors.New("store: state corrupt or wrong operator key")
)

// RecoveryStats describes what Recover restored.
type RecoveryStats struct {
	// Restored is false when the directory held no prior state.
	Restored bool
	// SnapshotBytes is the decrypted size of the restored snapshot (0 if
	// recovery was WAL-only).
	SnapshotBytes int
	// Segments counts the snapshot segment files restored (0 for a legacy
	// single-blob snapshot).
	Segments int
	// Replayed counts WAL events applied on top of the snapshot.
	Replayed int
	// SkippedRecords counts WAL records already covered by the snapshot
	// (the crash-between-snapshot-and-truncate window).
	SkippedRecords int
	// TruncatedTail is true when a torn final record was cut off.
	TruncatedTail bool
}

// SnapshotStats describes the most recent Snapshot call's write work — the
// O(churn) evidence: a post-churn snapshot writes DirtySegments ≪
// TotalSegments and BytesWritten ≪ the full state size.
type SnapshotStats struct {
	// BytesWritten counts sealed bytes written (segments + manifest).
	BytesWritten int64
	// DirtySegments counts segment files written by this snapshot.
	DirtySegments int
	// TotalSegments counts segment files the manifest references.
	TotalSegments int
	// Full is true when the snapshot could not be incremental (first
	// snapshot, geometry change, or a prior failed install).
	Full bool
}

// Store is one open state directory. All methods are safe for concurrent
// use; Append implements pubsub.Journal, and the batch/commit/snapshot
// extensions below are what RegisterBatch group commit, the pipelined
// mutator path and ImportState durability key off — the conformance checks
// keep signature drift a compile error.
var (
	_ pubsub.BatchJournal    = (*Store)(nil)
	_ pubsub.CommitJournal   = (*Store)(nil)
	_ pubsub.SnapshotJournal = (*Store)(nil)
)

type Store struct {
	dir string
	key [sym.KeySize]byte

	// snapMu serializes whole Snapshot calls (the interval ticker and a
	// shutdown can race; both write the same manifest temp file). It is
	// never taken by the append path, so journaling proceeds during an
	// export.
	snapMu     sync.Mutex
	segSlots   int // table slots per snapshot segment (0 = pubsub default)
	recWorkers int // parallel segment decode fan-out for Recover

	mu   sync.Mutex
	cond *sync.Cond // broadcast on acked/queue/flushing transitions
	lock *os.File   // flock-held for the store's lifetime
	wal  *os.File
	// walSize is the offset of the last durably complete record's end.
	walSize int64
	// seq is the last sequence number handed out; acked is the last sequence
	// whose commit resolved (flushed+applied, or failed). queue holds sealed
	// commits awaiting the flusher (wal.go).
	seq        uint64
	acked      uint64
	queue      []*walCommit
	flushing   bool
	broken     bool // a flush failed; log unusable until a snapshot compacts
	closed     bool
	walRecords int // events admitted since the last snapshot's coverage

	// base/man describe the last durably installed segmented snapshot: the
	// publisher-side base for the next incremental export, and the manifest
	// whose entries clean segments are carried over from. base is nil
	// whenever only a full export is sound (fresh store, legacy snapshot,
	// restart, or a failed install after dirty bits were consumed).
	base     *pubsub.SegmentBase
	man      *manifest
	lastSnap SnapshotStats

	// crashPoint, when set by tests, is consulted at named stages of the
	// snapshot write protocol; returning true aborts the snapshot exactly
	// there, leaving the directory as a SIGKILL at that instant would.
	crashPoint func(stage string) bool

	// Loaded by Open, consumed by the single Recover call.
	snapState []byte // legacy single-blob state
	pending   []pubsub.StateEvent
	stats     RecoveryStats
}

// Open opens (creating if necessary) a state directory under the given
// operator key and loads whatever previous state it holds. Call Recover to
// apply that state to a publisher, then SetJournal(store) so subsequent
// mutations hit the WAL.
func Open(dir string, key [sym.KeySize]byte) (*Store, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, key: key, recWorkers: runtime.GOMAXPROCS(0)}
	s.cond = sync.NewCond(&s.mu)

	// Exclusive directory lock: two live processes sharing one state
	// directory (a supervisor restarting while the old instance hangs)
	// would interleave WAL appends from independent sequence counters and
	// destroy the log. flock releases automatically if the process dies, so
	// a crash never wedges the directory.
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = lock.Close()
		return nil, fmt.Errorf("store: state directory %s is locked by another process: %w", dir, err)
	}
	s.lock = lock

	// A crash mid-snapshot can leave a manifest temp file; it was never
	// installed, so it is dead weight.
	os.Remove(filepath.Join(dir, manifestName+".tmp"))

	snapSeq, err := s.loadManifest()
	if err != nil {
		_ = s.lock.Close()
		return nil, err
	}
	if s.man == nil {
		// No segmented snapshot: fall back to the legacy single-blob format
		// (a directory last written by an earlier version). The next
		// Snapshot migrates it: it writes the segmented layout and removes
		// the blob.
		if snapSeq, err = s.loadSnapshot(); err != nil {
			_ = s.lock.Close()
			return nil, err
		}
	}
	// Segment files not referenced by the (possibly absent) manifest are
	// leftovers of an interrupted snapshot — unreachable by construction.
	s.gcSegments()

	if err := s.openWAL(snapSeq); err != nil {
		_ = s.lock.Close()
		return nil, err
	}
	if s.seq < snapSeq {
		s.seq = snapSeq
	}
	s.acked = s.seq
	s.stats.Restored = s.man != nil || s.snapState != nil || len(s.pending) > 0
	s.stats.SnapshotBytes = len(s.snapState)
	return s, nil
}

// loadSnapshot reads and unseals the legacy snapshot.ppcd, returning its
// sequence number (0 when absent).
func (s *Store) loadSnapshot() (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if !bytes.HasPrefix(raw, snapMagic) {
		return 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	plain, err := sym.Decrypt(s.key, raw[len(snapMagic):])
	if err != nil {
		return 0, fmt.Errorf("%w: snapshot does not authenticate", ErrCorrupt)
	}
	r := codec.NewReader(plain, nil)
	seq, err := r.U64()
	if err != nil {
		return 0, fmt.Errorf("%w: snapshot too short", ErrCorrupt)
	}
	state, err := r.Take(r.Remaining())
	if err != nil {
		return 0, fmt.Errorf("%w: snapshot too short", ErrCorrupt)
	}
	s.snapState = state
	return seq, nil
}

// SetSegmentSlots overrides the table-slot span of one snapshot segment
// (pubsub.DefaultSegmentSlots when 0). Call before the first Snapshot;
// changing the span later simply forces that snapshot to be full.
func (s *Store) SetSegmentSlots(n int) {
	s.mu.Lock()
	s.segSlots = n
	s.mu.Unlock()
}

// SetRecoveryWorkers bounds the parallel segment unseal+decode fan-out used
// by Recover (default GOMAXPROCS). Call before Recover.
func (s *Store) SetRecoveryWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.recWorkers = n
	s.mu.Unlock()
}

// LastSnapshotStats returns the write work of the most recent Snapshot call.
func (s *Store) LastSnapshotStats() SnapshotStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSnap
}

// WALRecordsSinceSnapshot returns the number of events admitted to the WAL
// since the last snapshot's coverage point — the growth signal a
// WAL-triggered snapshot policy keys off.
func (s *Store) WALRecordsSinceSnapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords
}

// Recover applies the loaded snapshot and WAL tail to a publisher. It may be
// called once, before the store is installed as the publisher's journal;
// the loaded state is released afterwards. Segmented snapshots are unsealed
// and decoded in parallel across the recovery worker pool.
func (s *Store) Recover(p *pubsub.Publisher) (RecoveryStats, error) {
	// Enforce the Recover-before-SetJournal lifecycle: were this store
	// already installed, ImportState's durability hook would snapshot —
	// claiming coverage of WAL records NOT yet replayed into the publisher —
	// and then compact those records away.
	if j, ok := p.Journal().(*Store); ok && j == s {
		return s.stats, errors.New("store: Recover must run before SetJournal installs this store")
	}
	s.mu.Lock()
	snap, man, pending, workers := s.snapState, s.man, s.pending, s.recWorkers
	s.snapState, s.pending = nil, nil
	s.mu.Unlock()

	stats := s.stats
	switch {
	case man != nil:
		n, err := s.recoverSegments(p, man, workers)
		stats.SnapshotBytes, stats.Segments = n, len(man.files)
		if err != nil {
			return stats, err
		}
	case snap != nil:
		if err := p.ImportState(snap); err != nil {
			return stats, fmt.Errorf("store: restoring snapshot: %w", err)
		}
	}
	for _, ev := range pending {
		if err := p.ApplyStateEvent(ev); err != nil {
			return stats, fmt.Errorf("store: replaying WAL: %w", err)
		}
		stats.Replayed++
	}
	s.mu.Lock()
	s.stats = stats
	s.mu.Unlock()
	return stats, nil
}

// recoverSegments restores a segmented snapshot: every referenced segment
// file is read, digest-checked, unsealed and (inside the publisher) decoded
// in parallel. Returns the total decrypted payload size.
func (s *Store) recoverSegments(p *pubsub.Publisher, man *manifest, workers int) (int, error) {
	payloads := make([][]byte, len(man.files))
	errs := make([]error, len(man.files))
	core.Parallel(workers, len(man.files), func(i int) {
		payloads[i], errs[i] = s.openSegmentFile(man.files[i])
	})
	total := 0
	var meta []byte
	table := make([][]byte, man.tableSegs)
	cache := make([][]byte, man.cacheSegs)
	for i, f := range man.files {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += len(payloads[i])
		switch f.kind {
		case segKindMeta:
			meta = payloads[i]
		case segKindTable:
			table[f.index] = payloads[i]
		case segKindCache:
			cache[f.index] = payloads[i]
		}
	}
	if err := p.ImportStateSegments(meta, table, cache, workers); err != nil {
		return total, fmt.Errorf("store: restoring snapshot: %w", err)
	}
	return total, nil
}

// Seq returns the sequence number of the last admitted event.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Close drains the commit pipeline, then syncs and closes the WAL. It does
// not snapshot; callers wanting a final compaction call Snapshot first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	// The flusher finishes whatever was admitted before the close; new
	// commits are refused above. Wait for it so the fd stays valid under it.
	for s.flushing {
		s.cond.Wait()
	}
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	if s.lock != nil {
		_ = s.lock.Close() // releases the flock
	}
	return err
}

// syncDir fsyncs a directory so a rename inside it is durable; best-effort
// (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// --- operator key handling -------------------------------------------------

// DeriveKey maps arbitrary operator secret material (a passphrase, a raw
// key) to the store's AEAD key with a domain-separated hash.
func DeriveKey(material []byte) [sym.KeySize]byte {
	return sym.DeriveKey([]byte("ppcd/store/key/v1"), material)
}

// LoadOrCreateKeyFile reads a hex-encoded 32-byte operator key from path,
// generating (mode 0600) a fresh random one if the file does not exist. The
// key file is the root secret for everything at rest — keep it off the
// machine holding the state directory if you can (KMS, hardware token), or
// at minimum on a separate volume.
func LoadOrCreateKeyFile(path string) ([sym.KeySize]byte, error) {
	var key [sym.KeySize]byte
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if _, err := rand.Read(key[:]); err != nil {
			return key, fmt.Errorf("store: generating key: %w", err)
		}
		enc := hex.EncodeToString(key[:]) + "\n"
		if err := os.WriteFile(path, []byte(enc), 0o600); err != nil {
			return key, fmt.Errorf("store: writing key file: %w", err)
		}
		return key, nil
	}
	if err != nil {
		return key, fmt.Errorf("store: %w", err)
	}
	dec, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil || len(dec) != sym.KeySize {
		return key, fmt.Errorf("store: key file %s must hold %d hex-encoded bytes", path, sym.KeySize)
	}
	copy(key[:], dec)
	return key, nil
}
