// Package store is the publisher's durable-state subsystem: an append-only
// write-ahead log of registration/revocation/publish events plus periodically
// compacted full-state snapshots, both encrypted at rest with AEAD
// (internal/sym, AES-256-GCM) under an operator key.
//
// The paper requires table T to be protected (§V-B) and makes rekeying a pure
// broadcast operation (§V-C); both properties are only worth anything if they
// survive a process restart. A publisher recovered through this package keeps
// its table, its sticky group assignments, its epoch counter and its
// incarnation generation, so the first post-restart publish is a zero-solve
// steady-state publish and streaming subscribers catch up with small deltas
// instead of re-downloading snapshots.
//
// On-disk layout inside the state directory (created mode 0700):
//
//	snapshot.ppcd   "PPCDSN1" ‖ AEAD( seq:u64 ‖ publisher state v2 blob )
//	wal.ppcd        "PPCDWL1" ‖ records…
//
// where each WAL record is
//
//	len:u32 ‖ crc32(sealed):u32 ‖ sealed
//	sealed = AEAD( seq:u64 ‖ event )
//
// All integers are big-endian. The sequence number inside the AEAD envelope
// orders events totally: a snapshot taken at sequence s makes every record
// with seq ≤ s redundant, so recovery replays only the strictly-newer tail —
// which is also what makes the crash window between writing a snapshot and
// truncating the WAL harmless. Within one WAL file sequence numbers must
// increase by exactly one record to record; a gap means a record was removed
// and recovery refuses the log (an attacker with file access cannot forge
// records — they are AEAD-sealed — and the continuity check stops them from
// silently deleting one).
//
// Torn tails versus corruption: a crash mid-append leaves a record whose
// length field or body is incomplete — recovery truncates the file at the
// last complete record and carries on. A record that is complete but fails
// its CRC or AEAD check is corruption (a flipped bit cannot shorten a file),
// and recovery refuses it — except when it is the final record, where a
// block-granular torn write can leave a full-length region only partially
// persisted; that one case also truncates.
//
// What AEAD at rest does NOT provide is rollback protection: an attacker who
// can replace the whole directory with an older, honestly produced copy wins.
// Guard the directory itself (filesystem permissions, disk encryption,
// off-host backup auditing) against that.
package store

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"ppcd/internal/core"
	"ppcd/internal/pubsub"
	"ppcd/internal/sym"
)

const (
	snapshotName = "snapshot.ppcd"
	walName      = "wal.ppcd"
	lockName     = "lock"

	// maxWALRecord bounds one sealed record; the largest legitimate event (a
	// maximum-size registration batch for one pseudonym) stays far below it.
	maxWALRecord = 64 << 20
	// maxEventString bounds one decoded string field; the publisher applies
	// its own (tighter) semantic caps on replay.
	maxEventString = 1 << 20
	// maxEventCells bounds the cells of one registration event.
	maxEventCells = 1 << 16
)

var (
	snapMagic = []byte("PPCDSN1")
	walMagic  = []byte("PPCDWL1")
)

// Errors reported by Open.
var (
	// ErrCorrupt means a state file failed its integrity checks in a way a
	// crash cannot produce: flipped bits, a removed WAL record, a wrong key.
	ErrCorrupt = errors.New("store: state corrupt or wrong operator key")
)

// RecoveryStats describes what Recover restored.
type RecoveryStats struct {
	// Restored is false when the directory held no prior state.
	Restored bool
	// SnapshotBytes is the decrypted size of the restored snapshot (0 if
	// recovery was WAL-only).
	SnapshotBytes int
	// Replayed counts WAL events applied on top of the snapshot.
	Replayed int
	// SkippedRecords counts WAL records already covered by the snapshot
	// (the crash-between-snapshot-and-truncate window).
	SkippedRecords int
	// TruncatedTail is true when a torn final record was cut off.
	TruncatedTail bool
}

// Store is one open state directory. All methods are safe for concurrent
// use; Append implements pubsub.Journal, and the batch/snapshot extensions
// below are what RegisterBatch group commit and ImportState durability key
// off — the conformance checks keep signature drift a compile error.
var (
	_ pubsub.BatchJournal    = (*Store)(nil)
	_ pubsub.SnapshotJournal = (*Store)(nil)
)

type Store struct {
	dir string
	key [sym.KeySize]byte

	// snapMu serializes whole Snapshot calls (the interval ticker and a
	// shutdown can race; both write the same temp file). It is never taken
	// by Append, so journaling proceeds during an export.
	snapMu sync.Mutex

	mu      sync.Mutex
	lock    *os.File // flock-held for the store's lifetime
	wal     *os.File
	walSize int64 // offset of the last durably complete record's end
	seq     uint64
	broken  bool // a failed append could not be rolled back; log unusable
	closed  bool

	// Loaded by Open, consumed by the single Recover call.
	snapState []byte
	pending   []pubsub.StateEvent
	stats     RecoveryStats
}

// Open opens (creating if necessary) a state directory under the given
// operator key and loads whatever previous state it holds. Call Recover to
// apply that state to a publisher, then SetJournal(store) so subsequent
// mutations hit the WAL.
func Open(dir string, key [sym.KeySize]byte) (*Store, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, key: key}

	// Exclusive directory lock: two live processes sharing one state
	// directory (a supervisor restarting while the old instance hangs)
	// would interleave WAL appends from independent sequence counters and
	// destroy the log. flock releases automatically if the process dies, so
	// a crash never wedges the directory.
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: state directory %s is locked by another process: %w", dir, err)
	}
	s.lock = lock

	snapSeq, err := s.loadSnapshot()
	if err != nil {
		s.lock.Close()
		return nil, err
	}
	if err := s.openWAL(snapSeq); err != nil {
		s.lock.Close()
		return nil, err
	}
	if s.seq < snapSeq {
		s.seq = snapSeq
	}
	s.stats.Restored = s.snapState != nil || len(s.pending) > 0
	s.stats.SnapshotBytes = len(s.snapState)
	return s, nil
}

// loadSnapshot reads and unseals snapshot.ppcd, returning its sequence
// number (0 when absent).
func (s *Store) loadSnapshot() (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if !bytes.HasPrefix(raw, snapMagic) {
		return 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	plain, err := sym.Decrypt(s.key, raw[len(snapMagic):])
	if err != nil {
		return 0, fmt.Errorf("%w: snapshot does not authenticate", ErrCorrupt)
	}
	if len(plain) < 8 {
		return 0, fmt.Errorf("%w: snapshot too short", ErrCorrupt)
	}
	seq := binary.BigEndian.Uint64(plain)
	s.snapState = plain[8:]
	return seq, nil
}

// openWAL opens wal.ppcd, scans it, retains the events newer than snapSeq
// for Recover, truncates a torn tail, and leaves the handle positioned for
// appends.
func (s *Store) openWAL(snapSeq uint64) error {
	path := filepath.Join(s.dir, walName)
	raw, err := os.ReadFile(path)
	fresh := errors.Is(err, os.ErrNotExist)
	if err != nil && !fresh {
		return fmt.Errorf("store: %w", err)
	}
	if fresh || len(raw) == 0 {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		s.wal = f
		s.walSize = int64(len(walMagic))
		return nil
	}
	if !bytes.HasPrefix(raw, walMagic) {
		return fmt.Errorf("%w: bad WAL magic", ErrCorrupt)
	}

	off := len(walMagic)
	goodEnd := off
	var firstSeq, lastSeq uint64
	haveSeq := false
	for off < len(raw) {
		rec, n, err := parseRecord(raw[off:], s.key)
		if err != nil {
			// A crash can also persist the file's extended size without its
			// data blocks, leaving an all-zero tail: crc32("") is 0, so a
			// zeroed length/CRC header passes the checksum and would
			// misclassify as corruption. Whatever the parse failure, a
			// remainder of pure zeros is a torn tail, not an attack — no
			// honest record is all zeros (sealed bodies are AEAD output).
			if errors.Is(err, errTorn) || allZero(raw[off:]) {
				s.stats.TruncatedTail = true
				break // truncate at goodEnd
			}
			return err
		}
		if haveSeq && rec.seq != lastSeq+1 {
			return fmt.Errorf("%w: WAL sequence jumps %d → %d (record removed?)", ErrCorrupt, lastSeq, rec.seq)
		}
		if !haveSeq {
			firstSeq = rec.seq
		}
		lastSeq, haveSeq = rec.seq, true
		if rec.seq > snapSeq {
			s.pending = append(s.pending, rec.ev)
		} else {
			s.stats.SkippedRecords++
		}
		off += n
		goodEnd = off
	}

	// Continuity must also hold at the head: the log's first record has to
	// connect to the snapshot's covered sequence, or records were excised
	// from the front (silently losing their mutations on replay).
	if haveSeq && firstSeq > snapSeq+1 {
		return fmt.Errorf("%w: WAL starts at sequence %d but the snapshot covers only %d (records removed?)",
			ErrCorrupt, firstSeq, snapSeq)
	}
	if goodEnd < len(raw) {
		if err := os.Truncate(path, int64(goodEnd)); err != nil {
			return fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(int64(goodEnd), 0); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.wal = f
	s.walSize = int64(goodEnd)
	if haveSeq {
		s.seq = lastSeq
	}
	return nil
}

// allZero reports whether every byte of b is zero (the signature of a file
// whose size was persisted before its data blocks — a torn tail).
func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// errTorn distinguishes an incomplete tail record (crash mid-append;
// recoverable by truncation) from corruption.
var errTorn = errors.New("store: torn WAL tail")

type walRecord struct {
	seq uint64
	ev  pubsub.StateEvent
}

// parseRecord decodes one record from the head of buf, returning its total
// encoded length. A record that runs past the buffer is torn; a complete
// record failing CRC or AEAD is corrupt — unless nothing follows it, where a
// block-granular torn write is still possible and it is treated as torn.
func parseRecord(buf []byte, key [sym.KeySize]byte) (walRecord, int, error) {
	if len(buf) < 8 {
		return walRecord{}, 0, errTorn
	}
	n := binary.BigEndian.Uint32(buf)
	if n > maxWALRecord {
		return walRecord{}, 0, fmt.Errorf("%w: WAL record of %d bytes exceeds limits", ErrCorrupt, n)
	}
	if len(buf) < 8+int(n) {
		return walRecord{}, 0, errTorn
	}
	sum := binary.BigEndian.Uint32(buf[4:])
	sealed := buf[8 : 8+n]
	last := len(buf) == 8+int(n)
	if crc32.ChecksumIEEE(sealed) != sum {
		if last {
			return walRecord{}, 0, errTorn
		}
		return walRecord{}, 0, fmt.Errorf("%w: WAL record checksum mismatch", ErrCorrupt)
	}
	// A CRC match proves the sealed bytes are exactly what Append wrote, so
	// an AEAD failure here can never be a torn write — it is the wrong
	// operator key or deliberate tampering, and it fails loudly even at the
	// tail (a wrong key must not silently truncate a snapshot-less log).
	plain, err := sym.Decrypt(key, sealed)
	if err != nil {
		return walRecord{}, 0, fmt.Errorf("%w: WAL record does not authenticate", ErrCorrupt)
	}
	if len(plain) < 8 {
		return walRecord{}, 0, fmt.Errorf("%w: WAL record too short", ErrCorrupt)
	}
	ev, err := decodeEvent(plain[8:])
	if err != nil {
		return walRecord{}, 0, err
	}
	return walRecord{seq: binary.BigEndian.Uint64(plain), ev: ev}, 8 + int(n), nil
}

// Recover applies the loaded snapshot and WAL tail to a publisher. It may be
// called once, before the store is installed as the publisher's journal;
// the loaded state is released afterwards.
func (s *Store) Recover(p *pubsub.Publisher) (RecoveryStats, error) {
	// Enforce the Recover-before-SetJournal lifecycle: were this store
	// already installed, ImportState's durability hook would snapshot —
	// claiming coverage of WAL records NOT yet replayed into the publisher —
	// and then compact those records away.
	if j, ok := p.Journal().(*Store); ok && j == s {
		return s.stats, errors.New("store: Recover must run before SetJournal installs this store")
	}
	s.mu.Lock()
	snap, pending, stats := s.snapState, s.pending, s.stats
	s.snapState, s.pending = nil, nil
	s.mu.Unlock()

	if snap != nil {
		if err := p.ImportState(snap); err != nil {
			return stats, fmt.Errorf("store: restoring snapshot: %w", err)
		}
	}
	for _, ev := range pending {
		if err := p.ApplyStateEvent(ev); err != nil {
			return stats, fmt.Errorf("store: replaying WAL: %w", err)
		}
		stats.Replayed++
	}
	return stats, nil
}

// Append seals one event and makes it durable (fsync) before returning; it
// implements pubsub.Journal, so a failed append fails the publisher
// operation that produced the event.
func (s *Store) Append(ev pubsub.StateEvent) error {
	return s.AppendBatch([]pubsub.StateEvent{ev})
}

// AppendBatch seals many events into consecutive records and makes them
// durable with a single write + fsync (group commit); it implements
// pubsub.BatchJournal, collapsing a registration batch's per-pseudonym
// flushes into one. The batch is atomic: either every record is durable or
// the file is rolled back to its previous end.
func (s *Store) AppendBatch(evs []pubsub.StateEvent) error {
	if len(evs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if s.broken {
		return errors.New("store: WAL unusable after an unrecoverable append failure")
	}
	var recs []byte
	for i, ev := range evs {
		plain := make([]byte, 8, 64)
		binary.BigEndian.PutUint64(plain, s.seq+uint64(i)+1)
		plain = appendEvent(plain, ev)
		sealed, err := sym.Encrypt(s.key, plain)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		// Recovery refuses records above maxWALRecord as corrupt, so an
		// event that would encode past it must be rejected HERE — failing
		// the triggering operation — never written and fsynced into a log
		// that can no longer be opened.
		if len(sealed) > maxWALRecord {
			return fmt.Errorf("store: event of %d sealed bytes exceeds the %d WAL record limit", len(sealed), maxWALRecord)
		}
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(sealed)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(sealed))
		recs = append(recs, hdr[:]...)
		recs = append(recs, sealed...)
	}
	_, werr := s.wal.Write(recs)
	if werr == nil {
		werr = s.wal.Sync()
	}
	if werr != nil {
		// Roll the file back to the last durably complete record: leftover
		// partial bytes (ENOSPC mid-write) or complete records whose
		// sequences were never claimed (Sync failure) would otherwise make
		// the NEXT successful append produce a log that recovery must refuse
		// (mid-file torn record, or a duplicated sequence number).
		if terr := s.wal.Truncate(s.walSize); terr != nil {
			s.broken = true
			return fmt.Errorf("store: appending WAL: %v; rollback failed, log disabled: %w", werr, terr)
		}
		if _, serr := s.wal.Seek(s.walSize, 0); serr != nil {
			s.broken = true
			return fmt.Errorf("store: appending WAL: %v; rollback failed, log disabled: %w", werr, serr)
		}
		return fmt.Errorf("store: appending WAL: %w", werr)
	}
	s.walSize += int64(len(recs))
	s.seq += uint64(len(evs))
	return nil
}

// Seq returns the sequence number of the last appended event.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Snapshot exports the publisher's full state, seals it, and atomically
// replaces the snapshot file; the WAL is then compacted if no event raced
// the export (otherwise it is left in place — its stale prefix is skipped by
// sequence number on the next recovery, and a later quiet snapshot compacts
// it).
func (s *Store) Snapshot(p *pubsub.Publisher) error {
	// One snapshot at a time: concurrent calls (interval ticker vs shutdown)
	// would interleave writes on the shared temp file and install a mangled
	// blob. Append never takes snapMu, so journaling is not blocked.
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	// The sequence captured BEFORE the export is the only sound cover claim:
	// events appended during ExportState may or may not be included, so they
	// must be replayed — replay is idempotent over a state that already
	// contains them, and the sequence filter cuts a clean prefix. The
	// capture happens inside the publisher's journal barrier: without it, a
	// mutation could sit appended-but-not-yet-applied, the export would miss
	// it, and the snapshot would still claim its sequence — losing the event
	// on the next recovery.
	var seqBefore uint64
	var closed bool
	p.JournalBarrier(func() {
		s.mu.Lock()
		seqBefore, closed = s.seq, s.closed
		s.mu.Unlock()
	})
	if closed {
		return errors.New("store: closed")
	}

	blob, err := p.ExportState()
	if err != nil {
		return fmt.Errorf("store: exporting state: %w", err)
	}
	plain := make([]byte, 8, 8+len(blob))
	binary.BigEndian.PutUint64(plain, seqBefore)
	plain = append(plain, blob...)
	sealed, err := sym.Encrypt(s.key, plain)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	path := filepath.Join(s.dir, snapshotName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(snapMagic); err == nil {
		_, err = f.Write(sealed)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	syncDir(s.dir)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.seq == seqBefore {
		// Quiet since the export: every WAL record is covered by the new
		// snapshot, so the log restarts empty. This also repairs a log
		// disabled by a failed append rollback — the truncation removes the
		// trailing garbage along with everything else.
		if err := s.wal.Truncate(int64(len(walMagic))); err != nil {
			return fmt.Errorf("store: compacting WAL: %w", err)
		}
		if _, err := s.wal.Seek(int64(len(walMagic)), 0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.walSize = int64(len(walMagic))
		s.broken = false
	}
	return nil
}

// Close syncs and closes the WAL. It does not snapshot; callers wanting a
// final compaction call Snapshot first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	if s.lock != nil {
		s.lock.Close() // releases the flock
	}
	return err
}

// syncDir fsyncs a directory so a rename inside it is durable; best-effort
// (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// --- event codec -----------------------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v>>32)), uint32(v))
}

func appendStr(b []byte, s string) []byte {
	return append(appendU32(b, uint32(len(s))), s...)
}

// appendEvent encodes one event (the plaintext body sealed into a record).
func appendEvent(b []byte, ev pubsub.StateEvent) []byte {
	b = append(b, byte(ev.Kind))
	switch ev.Kind {
	case pubsub.StateEventRegister:
		b = appendStr(b, ev.Nym)
		conds := make([]string, 0, len(ev.Cells))
		for c := range ev.Cells {
			conds = append(conds, c)
		}
		sort.Strings(conds)
		b = appendU32(b, uint32(len(conds)))
		for _, c := range conds {
			b = appendStr(b, c)
			b = appendU64(b, uint64(ev.Cells[c]))
		}
	case pubsub.StateEventRevokeSubscription:
		b = appendStr(b, ev.Nym)
	case pubsub.StateEventRevokeCredential:
		b = appendStr(b, ev.Nym)
		b = appendStr(b, ev.Cond)
	case pubsub.StateEventPublish:
		b = appendStr(b, ev.Doc)
		b = appendU64(b, ev.Epoch)
	}
	return b
}

type eventReader struct{ buf []byte }

func (r *eventReader) u8() (byte, error) {
	if len(r.buf) < 1 {
		return 0, fmt.Errorf("%w: truncated event", ErrCorrupt)
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v, nil
}

func (r *eventReader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, fmt.Errorf("%w: truncated event", ErrCorrupt)
	}
	v := binary.BigEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *eventReader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, fmt.Errorf("%w: truncated event", ErrCorrupt)
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *eventReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > maxEventString || int(n) > len(r.buf) {
		return "", fmt.Errorf("%w: event string of %d bytes exceeds limits", ErrCorrupt, n)
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

// decodeEvent decodes one sealed record body. Only shape is validated here;
// the publisher applies semantic validation (CSS range, nym caps, policy
// membership) when the event is replayed.
func decodeEvent(buf []byte) (pubsub.StateEvent, error) {
	r := &eventReader{buf: buf}
	var ev pubsub.StateEvent
	kind, err := r.u8()
	if err != nil {
		return ev, err
	}
	ev.Kind = pubsub.StateEventKind(kind)
	switch ev.Kind {
	case pubsub.StateEventRegister:
		if ev.Nym, err = r.str(); err != nil {
			return ev, err
		}
		n, err := r.u32()
		if err != nil {
			return ev, err
		}
		if n > maxEventCells {
			return ev, fmt.Errorf("%w: event with %d cells exceeds limits", ErrCorrupt, n)
		}
		ev.Cells = make(map[string]core.CSS, n)
		for i := uint32(0); i < n; i++ {
			cond, err := r.str()
			if err != nil {
				return ev, err
			}
			css, err := r.u64()
			if err != nil {
				return ev, err
			}
			ev.Cells[cond] = core.CSS(css)
		}
	case pubsub.StateEventRevokeSubscription:
		if ev.Nym, err = r.str(); err != nil {
			return ev, err
		}
	case pubsub.StateEventRevokeCredential:
		if ev.Nym, err = r.str(); err != nil {
			return ev, err
		}
		if ev.Cond, err = r.str(); err != nil {
			return ev, err
		}
	case pubsub.StateEventPublish:
		if ev.Doc, err = r.str(); err != nil {
			return ev, err
		}
		if ev.Epoch, err = r.u64(); err != nil {
			return ev, err
		}
	default:
		return ev, fmt.Errorf("%w: unknown event kind %d", ErrCorrupt, kind)
	}
	if len(r.buf) != 0 {
		return ev, fmt.Errorf("%w: event has trailing bytes", ErrCorrupt)
	}
	return ev, nil
}

// --- operator key handling -------------------------------------------------

// DeriveKey maps arbitrary operator secret material (a passphrase, a raw
// key) to the store's AEAD key with a domain-separated hash.
func DeriveKey(material []byte) [sym.KeySize]byte {
	return sym.DeriveKey([]byte("ppcd/store/key/v1"), material)
}

// LoadOrCreateKeyFile reads a hex-encoded 32-byte operator key from path,
// generating (mode 0600) a fresh random one if the file does not exist. The
// key file is the root secret for everything at rest — keep it off the
// machine holding the state directory if you can (KMS, hardware token), or
// at minimum on a separate volume.
func LoadOrCreateKeyFile(path string) ([sym.KeySize]byte, error) {
	var key [sym.KeySize]byte
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if _, err := rand.Read(key[:]); err != nil {
			return key, fmt.Errorf("store: generating key: %w", err)
		}
		enc := hex.EncodeToString(key[:]) + "\n"
		if err := os.WriteFile(path, []byte(enc), 0o600); err != nil {
			return key, fmt.Errorf("store: writing key file: %w", err)
		}
		return key, nil
	}
	if err != nil {
		return key, fmt.Errorf("store: %w", err)
	}
	dec, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil || len(dec) != sym.KeySize {
		return key, fmt.Errorf("store: key file %s must hold %d hex-encoded bytes", path, sym.KeySize)
	}
	copy(key[:], dec)
	return key, nil
}
