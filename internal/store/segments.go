package store

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ppcd/internal/codec"
	"ppcd/internal/pubsub"
	"ppcd/internal/sym"
)

// Segment kinds, used both as the manifest's kind tag and inside each sealed
// segment (the AEAD payload opens with kind‖index, binding every file to its
// manifest slot — a segment file cannot be swapped for another valid one).
const (
	segKindMeta  = byte('m')
	segKindTable = byte('t')
	segKindCache = byte('c')
)

const (
	manVersion = 1
	// maxManifestSegs bounds each per-kind segment count; together with the
	// per-file entry size this caps a decoded manifest far below any
	// allocation hazard.
	maxManifestSegs = 1 << 20
	// maxSegName bounds one segment file name in the manifest.
	maxSegName = 128
	// maxManSegSlots bounds the recorded table-slot span per segment.
	maxManSegSlots = 1 << 22
)

// errSnapCrash is returned by Snapshot when a test crash point aborts the
// write protocol mid-flight (simulating SIGKILL at that exact stage).
var errSnapCrash = errors.New("store: snapshot aborted at test crash point")

// manFile is one segment file referenced by a manifest: its identity
// (kind, index), name, and the size + SHA-256 of the sealed file bytes.
type manFile struct {
	kind  byte
	index int
	name  string
	size  int64
	sum   [32]byte
}

// manifest describes one installed segmented snapshot. files always lists
// the meta segment first, then table segments by index, then cache segments
// by index. cacheDigests carries every cache bucket's content digest so the
// next export can skip clean buckets even though it rewrites none of them.
type manifest struct {
	walSeq       uint64
	segSlots     int
	tableSegs    int
	cacheSegs    int
	files        []manFile
	cacheDigests [][32]byte
}

func encodeManifest(m *manifest) []byte {
	var w codec.Writer
	w.U8(manVersion)
	w.U64(m.walSeq)
	w.U32(m.segSlots)
	w.U32(m.tableSegs)
	w.U32(m.cacheSegs)
	w.U32(len(m.files))
	for _, f := range m.files {
		w.U8(f.kind)
		w.U32(f.index)
		w.Str(f.name)
		w.U64(uint64(f.size))
		w.Raw(f.sum[:])
	}
	for _, d := range m.cacheDigests {
		w.Raw(d[:])
	}
	return w.Out()
}

// segFileNameOK vets a manifest-supplied file name before it is joined onto
// the state directory: names are flat (no separators, no traversal) and
// carry the segment prefix, so a tampered manifest that somehow authenticated
// could still never read outside the directory.
func segFileNameOK(name string) bool {
	return len(name) > 0 && len(name) <= maxSegName &&
		strings.HasPrefix(name, "seg-") &&
		strings.HasSuffix(name, ".ppcd") &&
		!strings.ContainsAny(name, "/\\") &&
		name == filepath.Base(name)
}

func decodeManifest(plain []byte) (*manifest, error) {
	bad := func(err error) (*manifest, error) {
		return nil, fmt.Errorf("%w: bad manifest encoding: %v", ErrCorrupt, err)
	}
	r := codec.NewReader(plain, nil)
	ver, err := r.U8()
	if err != nil {
		return bad(err)
	}
	if ver != manVersion {
		return nil, fmt.Errorf("%w: unsupported manifest version %d", ErrCorrupt, ver)
	}
	m := &manifest{}
	if m.walSeq, err = r.U64(); err != nil {
		return bad(err)
	}
	if m.segSlots, err = r.Len(maxManSegSlots); err != nil {
		return bad(err)
	}
	if m.tableSegs, err = r.Len(maxManifestSegs); err != nil {
		return bad(err)
	}
	if m.cacheSegs, err = r.Len(maxManifestSegs); err != nil {
		return bad(err)
	}
	if m.segSlots < 1 || m.cacheSegs < 1 {
		return nil, fmt.Errorf("%w: manifest geometry %d/%d/%d out of range", ErrCorrupt, m.segSlots, m.tableSegs, m.cacheSegs)
	}
	nfiles, err := r.Len(2 * maxManifestSegs)
	if err != nil {
		return bad(err)
	}
	if nfiles != 1+m.tableSegs+m.cacheSegs {
		return nil, fmt.Errorf("%w: manifest lists %d files for %d segments", ErrCorrupt, nfiles, 1+m.tableSegs+m.cacheSegs)
	}
	// Every segment slot must be covered by exactly one file.
	seenMeta := false
	seenTable := make([]bool, m.tableSegs)
	seenCache := make([]bool, m.cacheSegs)
	m.files = make([]manFile, 0, nfiles)
	for i := 0; i < nfiles; i++ {
		var f manFile
		if f.kind, err = r.U8(); err != nil {
			return bad(err)
		}
		idx, err := r.Len(maxManifestSegs)
		if err != nil {
			return bad(err)
		}
		f.index = idx
		if f.name, err = r.Str(maxSegName); err != nil {
			return bad(err)
		}
		if !segFileNameOK(f.name) {
			return nil, fmt.Errorf("%w: manifest file name %q rejected", ErrCorrupt, f.name)
		}
		size, err := r.U64()
		if err != nil {
			return bad(err)
		}
		if size > maxStateBytesOnDisk {
			return nil, fmt.Errorf("%w: manifest segment of %d bytes exceeds limits", ErrCorrupt, size)
		}
		f.size = int64(size)
		sum, err := r.Take(32)
		if err != nil {
			return bad(err)
		}
		copy(f.sum[:], sum)
		switch {
		case f.kind == segKindMeta && idx == 0 && !seenMeta:
			seenMeta = true
		case f.kind == segKindTable && idx < m.tableSegs && !seenTable[idx]:
			seenTable[idx] = true
		case f.kind == segKindCache && idx < m.cacheSegs && !seenCache[idx]:
			seenCache[idx] = true
		default:
			return nil, fmt.Errorf("%w: manifest segment %c%d duplicated or out of range", ErrCorrupt, f.kind, idx)
		}
		m.files = append(m.files, f)
	}
	m.cacheDigests = make([][32]byte, m.cacheSegs)
	for i := range m.cacheDigests {
		d, err := r.Take(32)
		if err != nil {
			return bad(err)
		}
		copy(m.cacheDigests[i][:], d)
	}
	if err := r.Done(); err != nil {
		return bad(err)
	}
	return m, nil
}

// maxStateBytesOnDisk bounds one sealed segment file; it mirrors the
// publisher's decoded-state cap with framing headroom.
const maxStateBytesOnDisk = 1<<30 + 4096

// loadManifest reads manifest.ppcd if present, returning the WAL sequence
// the installed snapshot covers (0 when absent).
func (s *Store) loadManifest() (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if !bytes.HasPrefix(raw, manMagic) {
		return 0, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	plain, err := sym.Decrypt(s.key, raw[len(manMagic):])
	if err != nil {
		return 0, fmt.Errorf("%w: manifest does not authenticate", ErrCorrupt)
	}
	man, err := decodeManifest(plain)
	if err != nil {
		return 0, err
	}
	s.man = man
	// The manifest supersedes any legacy blob: the one-shot migration's
	// crash window (segmented install succeeded, blob removal didn't) must
	// not leave recovery a stale alternative to prefer later.
	os.Remove(filepath.Join(s.dir, snapshotName))
	return man.walSeq, nil
}

// gcSegments removes segment files not referenced by the given manifest
// (nil = remove all): leftovers of interrupted snapshot writes, unreachable
// by construction since installs rename a manifest over them atomically.
func (s *Store) gcSegments() {
	keep := make(map[string]bool)
	if s.man != nil {
		for _, f := range s.man.files {
			keep[f.name] = true
		}
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".ppcd") && !keep[name] {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// openSegmentFile reads, digest-checks and unseals one referenced segment
// file, returning its plaintext payload.
func (s *Store) openSegmentFile(f manFile) ([]byte, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, f.name))
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot segment %s unreadable: %v", ErrCorrupt, f.name, err)
	}
	if int64(len(raw)) != f.size || sha256.Sum256(raw) != f.sum {
		return nil, fmt.Errorf("%w: snapshot segment %s fails its manifest digest", ErrCorrupt, f.name)
	}
	if !bytes.HasPrefix(raw, segMagic) {
		return nil, fmt.Errorf("%w: bad magic in snapshot segment %s", ErrCorrupt, f.name)
	}
	plain, err := sym.Decrypt(s.key, raw[len(segMagic):])
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot segment %s does not authenticate", ErrCorrupt, f.name)
	}
	r := codec.NewReader(plain, nil)
	kind, kerr := r.U8()
	index, ierr := r.U32()
	if kerr != nil || ierr != nil || kind != f.kind || index != uint32(f.index) {
		return nil, fmt.Errorf("%w: snapshot segment %s bound to a different identity", ErrCorrupt, f.name)
	}
	payload, err := r.Take(r.Remaining())
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot segment %s truncated", ErrCorrupt, f.name)
	}
	return payload, nil
}

// writeSegmentFile seals one segment payload under a fresh random file name
// (referenced files are never overwritten — crash safety of the previous
// snapshot depends on it) and fsyncs it. Returns the manifest entry.
func (s *Store) writeSegmentFile(kind byte, index int, payload []byte) (manFile, error) {
	plain := make([]byte, 5+len(payload))
	plain[0] = kind
	binary.BigEndian.PutUint32(plain[1:], uint32(index))
	copy(plain[5:], payload)
	sealed, err := sym.Encrypt(s.key, plain)
	if err != nil {
		return manFile{}, fmt.Errorf("store: %w", err)
	}
	var rnd [8]byte
	if _, err := rand.Read(rnd[:]); err != nil {
		return manFile{}, fmt.Errorf("store: %w", err)
	}
	name := fmt.Sprintf("seg-%c%d-%s.ppcd", kind, index, hex.EncodeToString(rnd[:]))
	raw := make([]byte, 0, len(segMagic)+len(sealed))
	raw = append(append(raw, segMagic...), sealed...)

	path := filepath.Join(s.dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return manFile{}, fmt.Errorf("store: %w", err)
	}
	_, err = f.Write(raw)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return manFile{}, fmt.Errorf("store: writing snapshot segment: %w", err)
	}
	return manFile{kind: kind, index: index, name: name, size: int64(len(raw)), sum: sha256.Sum256(raw)}, nil
}

// crash consults the test crash hook at one named stage of the snapshot
// write protocol.
func (s *Store) crash(stage string) bool {
	return s.crashPoint != nil && s.crashPoint(stage)
}

// Snapshot exports the publisher's state as segments, writes the dirty ones,
// and atomically installs a new manifest over the set; the WAL is then
// compacted if no event raced the export (otherwise it is left in place —
// its stale prefix is skipped by sequence number on the next recovery, and a
// later quiet snapshot compacts it).
//
// After churn this is an O(churn) operation: clean table segments and cache
// buckets carry their previous files into the new manifest untouched, so the
// write amplification is proportional to what actually changed plus one meta
// segment and one manifest.
func (s *Store) Snapshot(p *pubsub.Publisher) error {
	// One snapshot at a time: concurrent calls (interval ticker vs shutdown)
	// would interleave on the manifest temp file. Commits never take snapMu,
	// so journaling proceeds during the export and the file writes.
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	// The sequence captured here is the only sound cover claim: events
	// admitted during the export may or may not be included, so they must be
	// replayed — replay is idempotent over a state that already contains
	// them, and the sequence filter cuts a clean prefix. The capture happens
	// inside the publisher's journal barrier with the commit pipeline
	// drained: without that, a mutation could sit admitted-but-not-applied,
	// the export would miss it, and the snapshot would still claim its
	// sequence — losing the event on the next recovery.
	var seqBefore uint64
	var closed bool
	p.JournalBarrier(func() {
		seqBefore, closed = s.drainCommits()
	})
	if closed {
		return errors.New("store: closed")
	}

	s.mu.Lock()
	base, prev, segSlots := s.base, s.man, s.segSlots
	// The export consumes the publisher's dirty tracking; until the new
	// manifest is durably installed only a full export is sound, so the
	// base is forfeited now and reinstated on success.
	s.base = nil
	s.mu.Unlock()

	exp, err := p.ExportStateSegments(segSlots, base)
	if err != nil {
		return fmt.Errorf("store: exporting state: %w", err)
	}
	if exp.Full {
		prev = nil
	}

	man, stats, err := s.installSegments(exp, prev, seqBefore)
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.man = man
	s.base = &pubsub.SegmentBase{Geometry: exp.Geometry, TabGen: exp.TabGen, CacheDigests: exp.CacheDigests}
	s.lastSnap = stats
	if s.closed {
		return nil
	}
	s.walRecords = int(s.seq - seqBefore)
	if s.seq == seqBefore && s.acked == s.seq && len(s.queue) == 0 {
		// Quiet since the export and no flush in flight: every WAL record is
		// covered by the new snapshot, so the log restarts empty. This also
		// repairs a log disabled by a flush failure — the truncation removes
		// the trailing garbage along with everything else, and every
		// sequence the failed commits claimed is now covered.
		if err := s.wal.Truncate(int64(len(walMagic))); err != nil {
			return fmt.Errorf("store: compacting WAL: %w", err)
		}
		if _, err := s.wal.Seek(int64(len(walMagic)), 0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.walSize = int64(len(walMagic))
		s.broken = false
	}
	return nil
}

// installSegments writes the export's dirty segments, carries clean ones
// over from the previous manifest, and installs the new manifest atomically.
func (s *Store) installSegments(exp *pubsub.SegmentExport, prev *manifest, seqBefore uint64) (*manifest, SnapshotStats, error) {
	geo := exp.Geometry
	man := &manifest{
		walSeq:       seqBefore,
		segSlots:     geo.SegSlots,
		tableSegs:    geo.TableSegs,
		cacheSegs:    geo.CacheSegs,
		cacheDigests: exp.CacheDigests,
	}
	stats := SnapshotStats{Full: exp.Full, TotalSegments: 1 + geo.TableSegs + geo.CacheSegs}

	carried := make(map[[2]int]manFile)
	if prev != nil {
		for _, f := range prev.files {
			carried[[2]int{int(f.kind), f.index}] = f
		}
	}
	write := func(kind byte, index int, payload []byte, ok bool) error {
		if !ok {
			f, have := carried[[2]int{int(kind), index}]
			if !have {
				return fmt.Errorf("store: internal: clean segment %c%d has no previous manifest entry", kind, index)
			}
			man.files = append(man.files, f)
			return nil
		}
		f, err := s.writeSegmentFile(kind, index, payload)
		if err != nil {
			return err
		}
		man.files = append(man.files, f)
		stats.BytesWritten += f.size
		stats.DirtySegments++
		if s.crash(fmt.Sprintf("segment:%c%d", kind, index)) {
			return errSnapCrash
		}
		return nil
	}

	if err := write(segKindMeta, 0, exp.Meta, true); err != nil {
		return nil, stats, err
	}
	for i := 0; i < geo.TableSegs; i++ {
		payload, ok := exp.Table[i]
		if err := write(segKindTable, i, payload, ok); err != nil {
			return nil, stats, err
		}
	}
	for i := 0; i < geo.CacheSegs; i++ {
		payload, ok := exp.Cache[i]
		if err := write(segKindCache, i, payload, ok); err != nil {
			return nil, stats, err
		}
	}
	// Segment directory entries must be durable before a manifest references
	// them: otherwise a crash could surface the new manifest with a segment
	// file missing.
	syncDir(s.dir)

	sealed, err := sym.Encrypt(s.key, encodeManifest(man))
	if err != nil {
		return nil, stats, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(s.dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, stats, fmt.Errorf("store: %w", err)
	}
	if _, err = f.Write(manMagic); err == nil {
		_, err = f.Write(sealed)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return nil, stats, fmt.Errorf("store: writing manifest: %w", err)
	}
	stats.BytesWritten += int64(len(manMagic) + len(sealed))
	if s.crash("manifest-tmp") {
		return nil, stats, errSnapCrash
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, stats, fmt.Errorf("store: installing manifest: %w", err)
	}
	syncDir(s.dir)
	if s.crash("manifest-renamed") {
		return nil, stats, errSnapCrash
	}
	// Post-install housekeeping, safe to lose to a crash: the legacy blob
	// (now superseded — this is the one-shot migration) and segment files
	// the new manifest no longer references.
	os.Remove(filepath.Join(s.dir, snapshotName))
	keep := make(map[string]bool, len(man.files))
	for _, mf := range man.files {
		keep[mf.name] = true
	}
	if ents, err := os.ReadDir(s.dir); err == nil {
		for _, e := range ents {
			name := e.Name()
			if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".ppcd") && !keep[name] {
				os.Remove(filepath.Join(s.dir, name))
			}
		}
	}
	return man, stats, nil
}
