package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/document"
	"ppcd/internal/idtoken"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
	"ppcd/internal/schnorr"
	"ppcd/internal/sym"
	"ppcd/internal/wire"
)

func testKey() [sym.KeySize]byte { return DeriveKey([]byte("store-test")) }

// readSnapshotFiles captures the installed segmented snapshot — the manifest
// plus every segment file — as name → bytes, so tests can replay it into
// simulated crash directories.
func readSnapshotFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		name := e.Name()
		if name == manifestName || (strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".ppcd")) {
			b, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			out[name] = b
		}
	}
	if _, ok := out[manifestName]; !ok {
		t.Fatalf("no %s in %s", manifestName, dir)
	}
	return out
}

// testSystem is a real end-to-end fixture: a grouped publisher journaling to
// a store, the identity manager, and OCBE-registered subscribers.
type testSystem struct {
	params *pedersen.Params
	mgr    *idtoken.Manager
	pub    *pubsub.Publisher
	doc    *document.Document
	subs   map[string]*pubsub.Subscriber
}

func newTestSystem(t *testing.T, groupSize int) *testSystem {
	t.Helper()
	params, err := pedersen.Setup(schnorr.Must2048(), []byte("store-test"))
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := idtoken.NewManagerFromSeed(params, []byte("store-test-idmgr-seed-32-bytes!!"))
	if err != nil {
		t.Fatal(err)
	}
	acp, err := policy.New("acp0", "attr0 >= 1", "doc", "sd0")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := document.New("doc", document.Subdocument{Name: "sd0", Content: []byte("subdocument zero")})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pubsub.NewPublisher(params, mgr.PublicKey(), []*policy.ACP{acp}, pubsub.Options{Ell: 4, GroupSize: groupSize})
	if err != nil {
		t.Fatal(err)
	}
	return &testSystem{params: params, mgr: mgr, pub: pub, doc: doc, subs: make(map[string]*pubsub.Subscriber)}
}

// newPub builds a fresh publisher incarnation over the same parameters and
// policies (a restarted process).
func (ts *testSystem) newPub(t *testing.T, groupSize int) *pubsub.Publisher {
	t.Helper()
	acp, err := policy.New("acp0", "attr0 >= 1", "doc", "sd0")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pubsub.NewPublisher(ts.params, ts.mgr.PublicKey(), []*policy.ACP{acp}, pubsub.Options{Ell: 4, GroupSize: groupSize})
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

// join runs the real oblivious registration protocol for one subscriber.
func (ts *testSystem) join(t *testing.T, nym string) *pubsub.Subscriber {
	t.Helper()
	sub, err := pubsub.NewSubscriber(nym)
	if err != nil {
		t.Fatal(err)
	}
	tok, sec, err := ts.mgr.Issue(nym, "attr0", big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.AddToken(tok, sec); err != nil {
		t.Fatal(err)
	}
	if n, err := sub.RegisterAll(ts.pub); err != nil || n != 1 {
		t.Fatalf("RegisterAll: n=%d err=%v", n, err)
	}
	ts.subs[nym] = sub
	return sub
}

func TestEventCodecRoundTrip(t *testing.T) {
	events := []pubsub.StateEvent{
		{Kind: pubsub.StateEventRegister, Nym: "pn-a", Cells: map[string]core.CSS{"attr0 >= 1": 7, "attr1 >= 1": 9}},
		{Kind: pubsub.StateEventRevokeSubscription, Nym: "pn-b"},
		{Kind: pubsub.StateEventRevokeCredential, Nym: "pn-c", Cond: "attr0 >= 1"},
		{Kind: pubsub.StateEventPublish, Doc: "doc", Epoch: 42},
	}
	for _, ev := range events {
		got, err := decodeEvent(appendEvent(nil, ev))
		if err != nil {
			t.Fatalf("%+v: %v", ev, err)
		}
		if got.Kind != ev.Kind || got.Nym != ev.Nym || got.Cond != ev.Cond || got.Doc != ev.Doc || got.Epoch != ev.Epoch {
			t.Errorf("round trip mismatch: %+v vs %+v", ev, got)
		}
		if len(got.Cells) != len(ev.Cells) {
			t.Errorf("cells mismatch: %+v vs %+v", ev.Cells, got.Cells)
		}
		for k, v := range ev.Cells {
			if got.Cells[k] != v {
				t.Errorf("cell %q: %d vs %d", k, v, got.Cells[k])
			}
		}
	}
	if _, err := decodeEvent([]byte{99}); err == nil {
		t.Error("unknown event kind accepted")
	}
	if _, err := decodeEvent(append(appendEvent(nil, events[1]), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if s.stats.Restored {
		t.Error("fresh directory reported restored state")
	}
	for i := 0; i < 5; i++ {
		ev := pubsub.StateEvent{Kind: pubsub.StateEventRegister, Nym: fmt.Sprintf("pn-%d", i),
			Cells: map[string]core.CSS{"attr0 >= 1": core.CSS(i + 1)}}
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if s.Seq() != 5 {
		t.Errorf("seq = %d, want 5", s.Seq())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.stats.Restored || len(s2.pending) != 5 || s2.Seq() != 5 {
		t.Fatalf("reopen: restored=%v pending=%d seq=%d, want true/5/5",
			s2.stats.Restored, len(s2.pending), s2.Seq())
	}
	for i, rec := range s2.pending {
		if rec.Nym != fmt.Sprintf("pn-%d", i) {
			t.Errorf("pending[%d] = %q", i, rec.Nym)
		}
	}
	// Appending after a reopen continues the sequence.
	if err := s2.Append(pubsub.StateEvent{Kind: pubsub.StateEventPublish, Doc: "doc", Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if s2.Seq() != 6 {
		t.Errorf("seq after reopen append = %d, want 6", s2.Seq())
	}
}

func TestWrongKeyFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(pubsub.StateEvent{Kind: pubsub.StateEventPublish, Doc: "doc", Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Open(dir, DeriveKey([]byte("wrong"))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong key: err = %v, want ErrCorrupt (never silent truncation)", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(pubsub.StateEvent{Kind: pubsub.StateEventPublish, Doc: "doc", Epoch: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, walName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped bit in a non-tail record is corruption, not a torn write.
	flipped := append([]byte(nil), pristine...)
	flipped[len(walMagic)+12] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testKey()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mid-file bit flip: err = %v, want ErrCorrupt", err)
	}

	// Splicing a record out breaks sequence continuity.
	recLen := func(off int) int {
		return 8 + int(uint32(pristine[off])<<24|uint32(pristine[off+1])<<16|uint32(pristine[off+2])<<8|uint32(pristine[off+3]))
	}
	first := len(walMagic)
	n1 := recLen(first)
	n2 := recLen(first + n1)
	spliced := append([]byte(nil), pristine[:first+n1]...)
	spliced = append(spliced, pristine[first+n1+n2:]...)
	if err := os.WriteFile(path, spliced, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testKey()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("removed record: err = %v, want ErrCorrupt", err)
	}
}

// TestCrashRecoveryProperty is the WAL kill test: a real publisher journals
// registrations, revocations and publishes; the WAL is then cut at random
// byte offsets (a crash mid-append), the store reopened and replayed into a
// fresh incarnation, and the recovered publisher must (a) publish a
// steady-state broadcast whose immediate republish is byte-identical modulo
// epoch with zero null-space solves and valid subscriber KEV caches, (b)
// keep exactly the members whose revocations did not survive the cut, and
// (c) never reuse an epoch a subscriber may have seen.
func TestCrashRecoveryProperty(t *testing.T) {
	ts := newTestSystem(t, 4)
	dir := t.TempDir()
	key := testKey()
	st, err := Open(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(ts.pub); err != nil {
		t.Fatal(err)
	}
	ts.pub.SetJournal(st)

	nyms := make([]string, 12)
	for i := range nyms {
		nyms[i] = fmt.Sprintf("pn-%d", i)
		ts.join(t, nyms[i])
	}
	preSnap, err := ts.pub.Publish(ts.doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(ts.pub); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot WAL tail: two revocations, a publish, one more join.
	if err := ts.pub.RevokeSubscription(nyms[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.pub.Publish(ts.doc); err != nil {
		t.Fatal(err)
	}
	if err := ts.pub.RevokeSubscription(nyms[7]); err != nil {
		t.Fatal(err)
	}
	ts.join(t, "pn-late")
	if _, err := ts.pub.Publish(ts.doc); err != nil {
		t.Fatal(err)
	}
	st.Close()

	walBytes, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	snapFiles := readSnapshotFiles(t, dir)

	rng := rand.New(rand.NewSource(7))
	cuts := []int{len(walMagic), len(walBytes)} // empty tail and intact WAL
	for i := 0; i < 10; i++ {
		cuts = append(cuts, len(walMagic)+rng.Intn(len(walBytes)-len(walMagic)+1))
	}
	for _, cut := range cuts {
		crashDir := t.TempDir()
		for name, b := range snapFiles {
			if err := os.WriteFile(filepath.Join(crashDir, name), b, 0o600); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(crashDir, walName), walBytes[:cut], 0o600); err != nil {
			t.Fatal(err)
		}

		rst, err := Open(crashDir, key)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		// The surviving WAL suffix decides which mutations the recovered
		// incarnation must reflect.
		revoked := make(map[string]bool)
		joined := make(map[string]bool)
		var walEpoch uint64
		for _, ev := range rst.pending {
			switch ev.Kind {
			case pubsub.StateEventRevokeSubscription:
				revoked[ev.Nym] = true
			case pubsub.StateEventRegister:
				joined[ev.Nym] = true
			case pubsub.StateEventPublish:
				walEpoch = ev.Epoch
			}
		}

		rpub := ts.newPub(t, 4)
		if _, err := rst.Recover(rpub); err != nil {
			t.Fatalf("cut=%d: recover: %v", cut, err)
		}
		rst.Close()

		b1, err := rpub.Publish(ts.doc)
		if err != nil {
			t.Fatalf("cut=%d: publish after recovery: %v", cut, err)
		}
		if b1.Gen != preSnap.Gen {
			t.Fatalf("cut=%d: generation rotated across recovery", cut)
		}
		if b1.Epoch <= walEpoch || b1.Epoch <= preSnap.Epoch {
			t.Fatalf("cut=%d: epoch %d not ahead of recovered history (wal %d, snapshot-era %d)",
				cut, b1.Epoch, walEpoch, preSnap.Epoch)
		}

		// Steady state: an immediate republish must be byte-identical modulo
		// the epoch stamp — zero solves, empty delta no larger than a
		// steady-state frame.
		before := rpub.Stats()
		b2, err := rpub.Publish(ts.doc)
		if err != nil {
			t.Fatalf("cut=%d: steady republish: %v", cut, err)
		}
		if solves := rpub.Stats().Solves - before.Solves; solves != 0 {
			t.Errorf("cut=%d: steady republish performed %d solves", cut, solves)
		}
		d, err := pubsub.Diff(b1, b2)
		if err != nil {
			t.Fatalf("cut=%d: diff: %v", cut, err)
		}
		if len(d.Configs) != 0 || len(d.Items) != 0 || len(d.RemovedConfigs) != 0 || len(d.RemovedItems) != 0 || d.PoliciesChanged {
			t.Errorf("cut=%d: steady republish after recovery is not byte-identical", cut)
		}
		if delta, snap := len(wire.MarshalDeltaFrame(d)), len(wire.MarshalSnapshotFrame(b2)); delta >= snap {
			t.Errorf("cut=%d: steady delta %dB not below frame size %dB", cut, delta, snap)
		}

		// Membership: exactly the subscribers whose revocation survived the
		// cut are out; everyone else decrypts, with KEV caches warm across a
		// delta resume from their pre-crash broadcast.
		for nym, sub := range ts.subs {
			if joinedLate := nym == "pn-late"; joinedLate && !joined[nym] {
				continue // the join fell past the cut; no table row either side
			}
			got, err := sub.Decrypt(b1)
			if revoked[nym] {
				if len(got) != 0 {
					t.Errorf("cut=%d: revoked %s still decrypts", cut, nym)
				}
				continue
			}
			if err != nil || len(got) != 1 {
				t.Errorf("cut=%d: member %s decrypts %d subdocs (err=%v)", cut, nym, len(got), err)
			}
		}
	}
}

// TestSnapshotCompactsWAL asserts a quiet snapshot truncates the log and
// that recovery afterwards needs zero replays.
func TestSnapshotCompactsWAL(t *testing.T) {
	ts := newTestSystem(t, 0)
	dir := t.TempDir()
	st, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	ts.pub.SetJournal(st)
	ts.join(t, "pn-0")
	if _, err := ts.pub.Publish(ts.doc); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(ts.pub); err != nil {
		t.Fatal(err)
	}
	st.Close()
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wal, walMagic) {
		t.Errorf("quiet snapshot left %d WAL bytes, want bare magic", len(wal))
	}

	st2, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rpub := ts.newPub(t, 0)
	rec, err := st2.Recover(rpub)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Restored || rec.Replayed != 0 || rec.SkippedRecords != 0 {
		t.Errorf("recovery after compaction: %+v", rec)
	}
	if rpub.SubscriberCount() != 1 {
		t.Errorf("restored %d subscribers, want 1", rpub.SubscriberCount())
	}
}

// TestSnapshotSkipsStaleWALPrefix covers the crash window between writing a
// snapshot and compacting the WAL: records at or below the snapshot sequence
// are skipped on recovery, newer ones replay. The un-compacted log is
// reconstructed by file surgery — re-prepending the pre-snapshot records the
// quiet snapshot removed — because the live path only leaves them behind
// when an append races the export.
func TestSnapshotSkipsStaleWALPrefix(t *testing.T) {
	ts := newTestSystem(t, 0)
	dir := t.TempDir()
	walPath := filepath.Join(dir, walName)
	st, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	ts.pub.SetJournal(st)
	ts.join(t, "pn-0")
	ts.join(t, "pn-1")
	preSnapWAL, err := os.ReadFile(walPath) // records seq 1,2
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(ts.pub); err != nil { // snapshot seq 2, WAL compacted
		t.Fatal(err)
	}
	if err := ts.pub.RevokeSubscription("pn-1"); err != nil { // record seq 3
		t.Fatal(err)
	}
	st.Close()
	tail, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Un-compact: seq 1,2 back in front of seq 3 — exactly what the log
	// looks like when the crash hits between snapshot rename and truncate.
	if err := os.WriteFile(walPath, append(preSnapWAL, tail[len(walMagic):]...), 0o600); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rpub := ts.newPub(t, 0)
	rec, err := st2.Recover(rpub)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SkippedRecords != 2 || rec.Replayed != 1 {
		t.Errorf("skipped=%d replayed=%d, want 2 skipped (snapshot-covered) and 1 replayed", rec.SkippedRecords, rec.Replayed)
	}
	if rpub.SubscriberCount() != 1 {
		t.Errorf("restored %d subscribers, want 1", rpub.SubscriberCount())
	}
}

func TestLoadOrCreateKeyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "key.hex")
	k1, err := LoadOrCreateKeyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := LoadOrCreateKeyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("reloaded key differs from generated key")
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o600 {
		t.Errorf("key file mode %v, want 0600", fi.Mode())
	}
	if err := os.WriteFile(path, []byte("not hex"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrCreateKeyFile(path); err == nil {
		t.Error("malformed key file accepted")
	}
}

// TestAppendFailureLatchesBroken: when an append fails and the rollback
// cannot restore the file, the log must refuse further appends (a later
// success would write a record recovery has to reject) until a quiet
// snapshot compacts the file and repairs it.
func TestAppendFailureLatchesBroken(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	ev := pubsub.StateEvent{Kind: pubsub.StateEventPublish, Doc: "doc", Epoch: 1}
	if err := s.Append(ev); err != nil {
		t.Fatal(err)
	}
	s.wal.Close() // simulate an unusable file: write and rollback both fail
	if err := s.Append(ev); err == nil {
		t.Fatal("append on a dead file succeeded")
	}
	if !s.broken {
		t.Fatal("failed unrollbackable append did not latch the log broken")
	}
	if err := s.Append(ev); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Errorf("broken log accepted an append (err=%v)", err)
	}
}

// TestZeroFilledTailIsTorn covers the crash shape where the filesystem
// persists the WAL's extended size but not its data blocks: the tail reads
// as zeros, which must recover as a torn tail (crc32 of an empty body is 0,
// so the zeroed header "passes" the checksum — the all-zero remainder check
// is what keeps this from being misclassified as corruption).
func TestZeroFilledTailIsTorn(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := s.Append(pubsub.StateEvent{Kind: pubsub.StateEventPublish, Doc: "doc", Epoch: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, testKey())
	if err != nil {
		t.Fatalf("zero-filled tail bricked recovery: %v", err)
	}
	defer s2.Close()
	if !s2.stats.TruncatedTail || len(s2.pending) != 2 || s2.Seq() != 2 {
		t.Errorf("zero tail: truncated=%v pending=%d seq=%d, want true/2/2",
			s2.stats.TruncatedTail, len(s2.pending), s2.Seq())
	}
	// The log is usable again.
	if err := s2.Append(pubsub.StateEvent{Kind: pubsub.StateEventPublish, Doc: "doc", Epoch: 3}); err != nil {
		t.Errorf("append after zero-tail recovery: %v", err)
	}
}

// TestDirectoryLock: a second Open of a live state directory must refuse —
// two processes interleaving appends would destroy the log.
func TestDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testKey()); err == nil {
		t.Fatal("second Open of a locked state directory succeeded")
	}
	s.Close()
	s2, err := Open(dir, testKey())
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

// TestRecoverAfterSetJournalRefused: the lifecycle guard — recovering
// through a store already installed as the journal would let ImportState's
// durability snapshot compact WAL records that were never replayed.
func TestRecoverAfterSetJournalRefused(t *testing.T) {
	ts := newTestSystem(t, 0)
	st, err := Open(t.TempDir(), testKey())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts.pub.SetJournal(st)
	if _, err := st.Recover(ts.pub); err == nil {
		t.Fatal("Recover after SetJournal accepted")
	}
}
