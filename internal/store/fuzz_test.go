package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/pubsub"
	"ppcd/internal/sym"
)

// fuzzKey is fixed so the corpus stays meaningful across runs: sealed seeds
// authenticate under it, and mutations of them exercise the paths between
// "torn", "CRC mismatch" and "authenticated but malformed inside".
func fuzzKey() [sym.KeySize]byte { return DeriveKey([]byte("store-fuzz")) }

func sealRecord(t *testing.T, seq uint64, ev pubsub.StateEvent) []byte {
	t.Helper()
	plain := make([]byte, 8, 64)
	binary.BigEndian.PutUint64(plain, seq)
	plain = appendEvent(plain, ev)
	sealed, err := sym.Encrypt(fuzzKey(), plain)
	if err != nil {
		t.Fatal(err)
	}
	rec := appendU32(nil, uint32(len(sealed)))
	rec = appendU32(rec, crc32.ChecksumIEEE(sealed))
	return append(rec, sealed...)
}

// FuzzWALRecord drives parseRecord with arbitrary bytes: it must never
// panic, never report a record longer than its input, and classify every
// outcome as a record, a torn tail, or corruption.
func FuzzWALRecord(f *testing.F) {
	t := &testing.T{}
	f.Add([]byte{})
	f.Add(sealRecord(t, 1, pubsub.StateEvent{Kind: pubsub.StateEventRevokeSubscription, Nym: "pn-a"}))
	f.Add(sealRecord(t, 7, pubsub.StateEvent{Kind: pubsub.StateEventRegister, Nym: "pn-b",
		Cells: map[string]core.CSS{"attr0 >= 1": 3}}))
	f.Add(sealRecord(t, 9, pubsub.StateEvent{Kind: pubsub.StateEventPublish, Doc: "doc", Epoch: 12}))
	torn := sealRecord(t, 2, pubsub.StateEvent{Kind: pubsub.StateEventRevokeCredential, Nym: "pn-c", Cond: "attr0 >= 1"})
	f.Add(torn[:len(torn)-3])
	flipped := append([]byte(nil), torn...)
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := parseRecord(data, fuzzKey())
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("record length %d out of range for %d input bytes", n, len(data))
		}
		// A parsed record must round-trip through the event codec.
		if _, err := decodeEvent(appendEvent(nil, rec.ev)); err != nil {
			t.Fatalf("accepted event does not re-encode: %v", err)
		}
	})
}

// FuzzEvent drives the bare event codec (the plaintext inside a sealed
// record): no panic, and anything accepted must survive a re-encode/decode
// round trip unchanged. (Byte canonicality is deliberately not required:
// Register cells arrive as a map, so a permuted-cells encoding decodes to
// the same event and re-encodes sorted.)
func FuzzEvent(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendEvent(nil, pubsub.StateEvent{Kind: pubsub.StateEventRevokeSubscription, Nym: "pn-a"}))
	f.Add(appendEvent(nil, pubsub.StateEvent{Kind: pubsub.StateEventRegister, Nym: "pn-b",
		Cells: map[string]core.CSS{"attr0 >= 1": 3, "attr1 >= 2": 5}}))
	f.Add(appendEvent(nil, pubsub.StateEvent{Kind: pubsub.StateEventRevokeCredential, Nym: "pn-c", Cond: "attr0 >= 1"}))
	f.Add(appendEvent(nil, pubsub.StateEvent{Kind: pubsub.StateEventPublish, Doc: "doc", Epoch: 12}))

	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := decodeEvent(data)
		if err != nil {
			return
		}
		ev2, err := decodeEvent(appendEvent(nil, ev))
		if err != nil {
			t.Fatalf("accepted event does not re-encode: %v", err)
		}
		if !reflect.DeepEqual(ev, ev2) {
			t.Fatalf("event round trip diverges: %+v != %+v", ev, ev2)
		}
	})
}

// FuzzManifest drives the snapshot-manifest decoder (post-AEAD plaintext —
// the layer an attacker can only reach with the operator key, but the layer
// version skew and format bugs reach for free): no panic, every accepted
// manifest re-encodes byte-identically, and its invariants hold.
func FuzzManifest(f *testing.F) {
	man := &manifest{
		walSeq:    42,
		segSlots:  4096,
		tableSegs: 2,
		cacheSegs: 1,
		files: []manFile{
			{kind: segKindMeta, index: 0, name: "seg-m0-0011223344556677.ppcd", size: 100},
			{kind: segKindTable, index: 0, name: "seg-t0-8899aabbccddeeff.ppcd", size: 2000},
			{kind: segKindTable, index: 1, name: "seg-t1-0102030405060708.ppcd", size: 2000},
			{kind: segKindCache, index: 0, name: "seg-c0-f0e0d0c0b0a09080.ppcd", size: 300},
		},
		cacheDigests: make([][32]byte, 1),
	}
	f.Add(encodeManifest(man))
	f.Add([]byte{})
	trunc := encodeManifest(man)
	f.Add(trunc[:len(trunc)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		if len(m.files) != 1+m.tableSegs+m.cacheSegs {
			t.Fatalf("accepted manifest covers %d files for %d segments", len(m.files), 1+m.tableSegs+m.cacheSegs)
		}
		for _, mf := range m.files {
			if !segFileNameOK(mf.name) {
				t.Fatalf("accepted manifest carries bad file name %q", mf.name)
			}
		}
		if !bytes.Equal(encodeManifest(m), data) {
			t.Fatal("accepted manifest is not canonical")
		}
	})
}
