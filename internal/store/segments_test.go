package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/pubsub"
	"ppcd/internal/sym"
)

// countSegFiles returns how many segment files exist in dir.
func countSegFiles(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".ppcd") {
			n++
		}
	}
	return n
}

// cloneDir copies every regular file except the lock into a fresh directory —
// a crashed process's disk image, reopenable while the original store still
// holds its flock.
func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() == lockName {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestIncrementalSnapshotOnChurn is the O(churn) property at test scale: a
// post-churn snapshot must rewrite only the dirty segments and strictly
// fewer bytes than the full snapshot it follows, and recovery from the
// incremental layout must restore the exact membership with a zero-solve
// steady republish.
func TestIncrementalSnapshotOnChurn(t *testing.T) {
	ts := newTestSystem(t, 4)
	dir := t.TempDir()
	st, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	st.SetSegmentSlots(4) // several table segments even at 12 rows
	if _, err := st.Recover(ts.pub); err != nil {
		t.Fatal(err)
	}
	ts.pub.SetJournal(st)

	nyms := make([]string, 12)
	for i := range nyms {
		nyms[i] = fmt.Sprintf("pn-%d", i)
		ts.join(t, nyms[i])
	}
	if _, err := ts.pub.Publish(ts.doc); err != nil {
		t.Fatal(err)
	}
	if n := st.WALRecordsSinceSnapshot(); n == 0 {
		t.Fatal("WALRecordsSinceSnapshot = 0 before any snapshot")
	}
	if err := st.Snapshot(ts.pub); err != nil {
		t.Fatal(err)
	}
	full := st.LastSnapshotStats()
	if !full.Full || full.DirtySegments != full.TotalSegments {
		t.Fatalf("first snapshot not full: %+v", full)
	}
	if n := st.WALRecordsSinceSnapshot(); n != 0 {
		t.Fatalf("WALRecordsSinceSnapshot = %d after quiet snapshot", n)
	}

	// Churn: two leavers, one joiner, one rekeying publish.
	if err := ts.pub.RevokeSubscription(nyms[2]); err != nil {
		t.Fatal(err)
	}
	if err := ts.pub.RevokeSubscription(nyms[7]); err != nil {
		t.Fatal(err)
	}
	ts.join(t, "pn-late")
	if _, err := ts.pub.Publish(ts.doc); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(ts.pub); err != nil {
		t.Fatal(err)
	}
	inc := st.LastSnapshotStats()
	if inc.Full {
		t.Fatalf("post-churn snapshot was full: %+v", inc)
	}
	if inc.DirtySegments >= inc.TotalSegments {
		t.Fatalf("post-churn snapshot rewrote %d of %d segments", inc.DirtySegments, inc.TotalSegments)
	}
	if inc.BytesWritten >= full.BytesWritten {
		t.Fatalf("post-churn snapshot wrote %dB, full wrote %dB", inc.BytesWritten, full.BytesWritten)
	}
	// Carried-over segment files plus rewritten ones, nothing else on disk.
	if got := countSegFiles(t, dir); got != inc.TotalSegments {
		t.Fatalf("%d segment files on disk, manifest references %d", got, inc.TotalSegments)
	}
	st.Close()

	rst, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	rpub := ts.newPub(t, 4)
	stats, err := rst.Recover(rpub)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Restored || stats.Segments == 0 || stats.Replayed != 0 || stats.SkippedRecords != 0 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	rst.Close()

	before := rpub.Stats()
	b, err := rpub.Publish(ts.doc)
	if err != nil {
		t.Fatal(err)
	}
	if solves := rpub.Stats().Solves - before.Solves; solves != 0 {
		t.Errorf("post-recovery publish performed %d solves", solves)
	}
	for nym, sub := range ts.subs {
		got, err := sub.Decrypt(b)
		if nym == nyms[2] || nym == nyms[7] {
			if len(got) != 0 {
				t.Errorf("revoked %s still decrypts after incremental recovery", nym)
			}
			continue
		}
		if err != nil || len(got) != 1 {
			t.Errorf("%s cannot decrypt after incremental recovery: %v", nym, err)
		}
	}
}

// TestSnapshotCrashPoints kills the snapshot write protocol at each stage —
// mid-segment-write, after the manifest temp file, and right after the
// rename — and requires recovery from the resulting disk image to restore
// the exact pre-crash state: the previous snapshot plus the full WAL before
// the rename, the new snapshot after it. Leftover files must be garbage
// collected on reopen, and the post-rename image must need zero solves on
// its first publish (its snapshot covers all churn).
func TestSnapshotCrashPoints(t *testing.T) {
	for _, stage := range []string{"segment:", "manifest-tmp", "manifest-renamed"} {
		t.Run(strings.TrimSuffix(stage, ":"), func(t *testing.T) {
			ts := newTestSystem(t, 4)
			dir := t.TempDir()
			st, err := Open(dir, testKey())
			if err != nil {
				t.Fatal(err)
			}
			st.SetSegmentSlots(4)
			if _, err := st.Recover(ts.pub); err != nil {
				t.Fatal(err)
			}
			ts.pub.SetJournal(st)

			nyms := make([]string, 6)
			for i := range nyms {
				nyms[i] = fmt.Sprintf("pn-%d", i)
				ts.join(t, nyms[i])
			}
			if _, err := ts.pub.Publish(ts.doc); err != nil {
				t.Fatal(err)
			}
			if err := st.Snapshot(ts.pub); err != nil {
				t.Fatal(err)
			}
			// Churn recorded in the WAL tail, then a crashing snapshot.
			if err := ts.pub.RevokeSubscription(nyms[1]); err != nil {
				t.Fatal(err)
			}
			if _, err := ts.pub.Publish(ts.doc); err != nil {
				t.Fatal(err)
			}
			st.crashPoint = func(s string) bool { return strings.HasPrefix(s, stage) }
			if err := st.Snapshot(ts.pub); !errors.Is(err, errSnapCrash) {
				t.Fatalf("crashing snapshot: err = %v, want errSnapCrash", err)
			}
			st.crashPoint = nil
			crashImg := cloneDir(t, dir)

			rst, err := Open(crashImg, testKey())
			if err != nil {
				t.Fatalf("reopen after %s crash: %v", stage, err)
			}
			if got := countSegFiles(t, crashImg); got != len(rst.man.files) {
				t.Errorf("%d segment files survive GC, manifest references %d", got, len(rst.man.files))
			}
			renamed := stage == "manifest-renamed"
			if renamed && len(rst.pending) != 0 {
				t.Errorf("installed snapshot leaves %d WAL events to replay (want 0, covered)", len(rst.pending))
			}
			if !renamed && len(rst.pending) == 0 {
				t.Error("pre-rename crash must leave the churn in the WAL tail")
			}
			rpub := ts.newPub(t, 4)
			if _, err := rst.Recover(rpub); err != nil {
				t.Fatalf("recover after %s crash: %v", stage, err)
			}
			rst.Close()

			before := rpub.Stats()
			b, err := rpub.Publish(ts.doc)
			if err != nil {
				t.Fatal(err)
			}
			if solves := rpub.Stats().Solves - before.Solves; renamed && solves != 0 {
				t.Errorf("post-rename image needed %d solves on first publish", solves)
			}
			if b.Epoch <= ts.pub.Epoch()-1 && b.Epoch <= 2 {
				t.Errorf("epoch %d not ahead after recovery", b.Epoch)
			}
			for nym, sub := range ts.subs {
				got, err := sub.Decrypt(b)
				if nym == nyms[1] {
					if len(got) != 0 {
						t.Errorf("stage %s: revoked %s still decrypts", stage, nym)
					}
					continue
				}
				if err != nil || len(got) != 1 {
					t.Errorf("stage %s: %s cannot decrypt after crash recovery: %v", stage, nym, err)
				}
			}

			// The live store survives its aborted snapshot too: the next one
			// is forced full and repairs everything.
			if err := st.Snapshot(ts.pub); err != nil {
				t.Fatalf("snapshot after aborted snapshot: %v", err)
			}
			if !st.LastSnapshotStats().Full {
				t.Error("snapshot after an aborted install was not full")
			}
			st.Close()
		})
	}
}

// TestSegmentedCorruptionDetected extends the wrong-key / bit-flip /
// truncation corpus to the manifest and segment files: every tampered image
// must fail loudly with ErrCorrupt, never restore garbage.
func TestSegmentedCorruptionDetected(t *testing.T) {
	ts := newTestSystem(t, 4)
	dir := t.TempDir()
	st, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	st.SetSegmentSlots(4)
	if _, err := st.Recover(ts.pub); err != nil {
		t.Fatal(err)
	}
	ts.pub.SetJournal(st)
	for i := 0; i < 6; i++ {
		ts.join(t, fmt.Sprintf("pn-%d", i))
	}
	if _, err := ts.pub.Publish(ts.doc); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(ts.pub); err != nil {
		t.Fatal(err)
	}
	st.Close()

	var segNames []string
	for _, e := range mustReadDir(t, dir) {
		if strings.HasPrefix(e, "seg-") {
			segNames = append(segNames, e)
		}
	}
	if len(segNames) < 2 {
		t.Fatalf("want ≥2 segment files, have %v", segNames)
	}

	// openOrRecover drives the full recovery path; corruption may surface at
	// either step.
	openOrRecover := func(d string, key [sym.KeySize]byte) error {
		s, err := Open(d, key)
		if err != nil {
			return err
		}
		defer s.Close()
		_, err = s.Recover(ts.newPub(t, 4))
		return err
	}

	t.Run("wrong-key", func(t *testing.T) {
		if err := openOrRecover(cloneDir(t, dir), DeriveKey([]byte("not-the-key"))); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("manifest-bit-flip", func(t *testing.T) {
		d := cloneDir(t, dir)
		flipByte(t, filepath.Join(d, manifestName), len(manMagic)+11)
		if err := openOrRecover(d, testKey()); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("manifest-truncated", func(t *testing.T) {
		d := cloneDir(t, dir)
		truncateFile(t, filepath.Join(d, manifestName), 0.5)
		if err := openOrRecover(d, testKey()); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("segment-bit-flip", func(t *testing.T) {
		d := cloneDir(t, dir)
		flipByte(t, filepath.Join(d, segNames[0]), len(segMagic)+3)
		if err := openOrRecover(d, testKey()); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("segment-truncated", func(t *testing.T) {
		d := cloneDir(t, dir)
		truncateFile(t, filepath.Join(d, segNames[0]), 0.5)
		if err := openOrRecover(d, testKey()); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("segment-missing", func(t *testing.T) {
		d := cloneDir(t, dir)
		if err := os.Remove(filepath.Join(d, segNames[0])); err != nil {
			t.Fatal(err)
		}
		if err := openOrRecover(d, testKey()); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("segments-swapped", func(t *testing.T) {
		// Two authentic files exchanged under each other's names: the
		// per-file manifest digests must refuse the swap.
		d := cloneDir(t, dir)
		a, b := filepath.Join(d, segNames[0]), filepath.Join(d, segNames[1])
		ab, err := os.ReadFile(a)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(a, bb, 0o600); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(b, ab, 0o600); err != nil {
			t.Fatal(err)
		}
		if err := openOrRecover(d, testKey()); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
}

func mustReadDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= len(b) {
		off = len(b) - 1
	}
	b[off] ^= 0x40
	if err := os.WriteFile(path, b, 0o600); err != nil {
		t.Fatal(err)
	}
}

func truncateFile(t *testing.T, path string, frac float64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, int64(float64(fi.Size())*frac)); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCommitOrdering exercises the pipelined group commit under
// concurrent mutators (run with -race in CI): admits are serialized by a
// mutation lock exactly like the publisher's, but flushes coalesce freely.
// The invariants: applies run in admission order, every ticket resolves
// only after its record is durable, and a reopened store replays exactly
// the admitted events in the admitted order.
func TestConcurrentCommitOrdering(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 20
	var admitMu sync.Mutex // the publisher's mutation-lock role
	var admitted []string
	applied := make([]string, 0, writers*perWriter) // flusher-only writes

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				nym := fmt.Sprintf("pn-%d-%d", w, i)
				ev := pubsub.StateEvent{Kind: pubsub.StateEventRegister, Nym: nym,
					Cells: map[string]core.CSS{"attr0 >= 1": core.CSS(i)}}
				admitMu.Lock()
				tk, err := st.Begin([]pubsub.StateEvent{ev}, func() {
					applied = append(applied, nym)
				})
				if err != nil {
					admitMu.Unlock()
					t.Error(err)
					return
				}
				admitted = append(admitted, nym)
				admitMu.Unlock()
				if err := tk.Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if len(applied) != len(admitted) {
		t.Fatalf("%d applies for %d admits", len(applied), len(admitted))
	}
	for i := range admitted {
		if applied[i] != admitted[i] {
			t.Fatalf("apply order diverges from admission order at %d: %s != %s", i, applied[i], admitted[i])
		}
	}

	rst, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	if rst.seq != uint64(writers*perWriter) {
		t.Fatalf("recovered seq = %d, want %d", rst.seq, writers*perWriter)
	}
	if len(rst.pending) != len(admitted) {
		t.Fatalf("recovered %d events, admitted %d", len(rst.pending), len(admitted))
	}
	for i, ev := range rst.pending {
		if ev.Nym != admitted[i] {
			t.Fatalf("journal order diverges from admission order at %d: %s != %s", i, ev.Nym, admitted[i])
		}
	}
}

// TestLegacySnapshotMigration opens a directory in the previous release's
// single-blob layout (snapshot.ppcd + WAL, built by hand to the old format),
// recovers from it, and verifies the next snapshot migrates it one-shot to
// the segmented layout, removing the blob.
func TestLegacySnapshotMigration(t *testing.T) {
	ts := newTestSystem(t, 4)
	for i := 0; i < 4; i++ {
		ts.join(t, fmt.Sprintf("pn-%d", i))
	}
	if _, err := ts.pub.Publish(ts.doc); err != nil {
		t.Fatal(err)
	}
	blob, err := ts.pub.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	// The PR-5-era layout: snapMagic ‖ AEAD(seq ‖ state blob), and one WAL
	// record (seq+1, a publish) the snapshot does not cover.
	dir := t.TempDir()
	const snapSeq = 5
	plain := make([]byte, 8, 8+len(blob))
	binary.BigEndian.PutUint64(plain, snapSeq)
	sealedSnap, err := sym.Encrypt(testKey(), append(plain, blob...))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotName), append(append([]byte{}, snapMagic...), sealedSnap...), 0o600); err != nil {
		t.Fatal(err)
	}
	evPlain := make([]byte, 8, 32)
	binary.BigEndian.PutUint64(evPlain, snapSeq+1)
	evPlain = appendEvent(evPlain, pubsub.StateEvent{Kind: pubsub.StateEventPublish, Doc: "doc", Epoch: 9})
	sealedRec, err := sym.Encrypt(testKey(), evPlain)
	if err != nil {
		t.Fatal(err)
	}
	wal := append([]byte{}, walMagic...)
	wal = appendU32(wal, uint32(len(sealedRec)))
	wal = appendU32(wal, crc32.ChecksumIEEE(sealedRec))
	wal = append(wal, sealedRec...)
	if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o600); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	rpub := ts.newPub(t, 4)
	stats, err := st.Recover(rpub)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Restored || stats.Segments != 0 || stats.Replayed != 1 {
		t.Fatalf("legacy recovery stats = %+v", stats)
	}
	rpub.SetJournal(st)
	b, err := rpub.Publish(ts.doc)
	if err != nil {
		t.Fatal(err)
	}
	if b.Epoch <= 9 {
		t.Fatalf("epoch %d not ahead of the legacy WAL's publish", b.Epoch)
	}
	for nym, sub := range ts.subs {
		if got, err := sub.Decrypt(b); err != nil || len(got) != 1 {
			t.Fatalf("%s cannot decrypt after legacy recovery: %v", nym, err)
		}
	}

	// One-shot migration: the first snapshot installs the segmented layout
	// and retires the blob.
	if err := st.Snapshot(rpub); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("legacy snapshot.ppcd survives migration (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Errorf("no manifest after migration: %v", err)
	}
	st.Close()

	rst, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rpub2 := ts.newPub(t, 4)
	stats2, err := rst.Recover(rpub2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Segments == 0 {
		t.Fatalf("post-migration recovery not segmented: %+v", stats2)
	}
	b2, err := rpub2.Publish(ts.doc)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Epoch <= b.Epoch {
		t.Fatalf("epoch %d not ahead across migration restart (prev %d)", b2.Epoch, b.Epoch)
	}
	for nym, sub := range ts.subs {
		if got, err := sub.Decrypt(b2); err != nil || len(got) != 1 {
			t.Fatalf("%s cannot decrypt after migrated recovery: %v", nym, err)
		}
	}
}
