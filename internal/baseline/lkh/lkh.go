// Package lkh implements a Logical Key Hierarchy — the classic hierarchical
// group key management scheme the paper's related-work section compares
// against ([17] Wong & Lam "Keystone", [18] Sherman & McGrew OFT). Users sit
// at the leaves of a binary key tree and hold the keys on their root path
// (O(log n) keys each); the root key is the group key. Revoking a user
// replaces every key on its path and announces each new key encrypted under
// the keys of the unaffected child subtrees — O(log n) rekey messages,
// versus O(1) broadcast for the paper's ACV scheme and O(n) for direct
// delivery.
package lkh

import (
	"crypto/rand"
	"errors"
	"fmt"

	"ppcd/internal/sym"
)

// Tree is a complete binary key tree with a fixed leaf capacity.
type Tree struct {
	capacity int // number of leaves, power of two
	keys     [][sym.KeySize]byte
	leafOf   map[string]int // nym → leaf index (0-based among leaves)
	freeLeaf []int
}

// New creates a key tree with capacity rounded up to the next power of two.
func New(capacity int) (*Tree, error) {
	if capacity < 1 {
		return nil, errors.New("lkh: capacity must be positive")
	}
	cap2 := 1
	for cap2 < capacity {
		cap2 *= 2
	}
	t := &Tree{
		capacity: cap2,
		keys:     make([][sym.KeySize]byte, 2*cap2), // 1-based heap layout
		leafOf:   make(map[string]int),
	}
	for i := cap2 - 1; i >= 0; i-- {
		t.freeLeaf = append(t.freeLeaf, i)
	}
	for i := 1; i < len(t.keys); i++ {
		if _, err := rand.Read(t.keys[i][:]); err != nil {
			return nil, fmt.Errorf("lkh: init keys: %w", err)
		}
	}
	return t, nil
}

// Capacity returns the leaf capacity (rounded up).
func (t *Tree) Capacity() int { return t.capacity }

// Users returns the number of joined users.
func (t *Tree) Users() int { return len(t.leafOf) }

// GroupKey returns the current root (group) key.
func (t *Tree) GroupKey() [sym.KeySize]byte { return t.keys[1] }

// nodeOfLeaf converts a leaf index to its 1-based heap node.
func (t *Tree) nodeOfLeaf(leaf int) int { return t.capacity + leaf }

// PathKeys returns the keys a user holds: every key on the path from its
// leaf to the root (leaf first). This is the O(log n) per-user storage the
// paper contrasts with its O(1)-per-condition CSSs.
func (t *Tree) PathKeys(nym string) ([][sym.KeySize]byte, error) {
	leaf, ok := t.leafOf[nym]
	if !ok {
		return nil, fmt.Errorf("lkh: unknown user %q", nym)
	}
	var out [][sym.KeySize]byte
	for node := t.nodeOfLeaf(leaf); node >= 1; node /= 2 {
		out = append(out, t.keys[node])
	}
	return out, nil
}

// Message is one rekey message: a new key for node Node, encrypted under the
// key of node Under.
type Message struct {
	Node       int
	Under      int
	Ciphertext []byte
}

// Join adds a user and rekeys its path (backward secrecy): every key from
// the leaf's parent to the root is refreshed.
func (t *Tree) Join(nym string) ([]Message, error) {
	if _, ok := t.leafOf[nym]; ok {
		return nil, fmt.Errorf("lkh: user %q already joined", nym)
	}
	if len(t.freeLeaf) == 0 {
		return nil, errors.New("lkh: tree full")
	}
	leaf := t.freeLeaf[len(t.freeLeaf)-1]
	t.freeLeaf = t.freeLeaf[:len(t.freeLeaf)-1]
	t.leafOf[nym] = leaf
	// Fresh leaf key for the newcomer (delivered over its join channel).
	if _, err := rand.Read(t.keys[t.nodeOfLeaf(leaf)][:]); err != nil {
		return nil, err
	}
	return t.rekeyPath(t.nodeOfLeaf(leaf))
}

// Leave revokes a user and rekeys its path (forward secrecy).
func (t *Tree) Leave(nym string) ([]Message, error) {
	leaf, ok := t.leafOf[nym]
	if !ok {
		return nil, fmt.Errorf("lkh: unknown user %q", nym)
	}
	delete(t.leafOf, nym)
	t.freeLeaf = append(t.freeLeaf, leaf)
	node := t.nodeOfLeaf(leaf)
	// Invalidate the departed leaf key so the old holder cannot decrypt
	// rekey messages addressed to that leaf.
	if _, err := rand.Read(t.keys[node][:]); err != nil {
		return nil, err
	}
	return t.rekeyPath(node)
}

// rekeyPath refreshes every key strictly above node and emits one message
// per (refreshed key, child) pair — the O(log n) rekey traffic.
func (t *Tree) rekeyPath(node int) ([]Message, error) {
	var msgs []Message
	for parent := node / 2; parent >= 1; parent /= 2 {
		var fresh [sym.KeySize]byte
		if _, err := rand.Read(fresh[:]); err != nil {
			return nil, err
		}
		t.keys[parent] = fresh
		for _, child := range []int{2 * parent, 2*parent + 1} {
			if child >= len(t.keys) {
				continue
			}
			ct, err := sym.Encrypt(t.keys[child], fresh[:])
			if err != nil {
				return nil, err
			}
			msgs = append(msgs, Message{Node: parent, Under: child, Ciphertext: ct})
		}
	}
	return msgs, nil
}

// ApplyMessages is the user side of a rekey: starting from the keys it
// holds, a user decrypts every message it can and learns the refreshed path
// keys, ending with the new group key. It returns the new group key or an
// error if the user has been locked out.
func ApplyMessages(pathKeys [][sym.KeySize]byte, msgs []Message) ([sym.KeySize]byte, error) {
	known := make(map[string]bool)
	keyset := append([][sym.KeySize]byte(nil), pathKeys...)
	_ = known
	progress := true
	for progress {
		progress = false
		for _, m := range msgs {
			for _, k := range keyset {
				pt, err := sym.Decrypt(k, m.Ciphertext)
				if err != nil || len(pt) != sym.KeySize {
					continue
				}
				var nk [sym.KeySize]byte
				copy(nk[:], pt)
				if !containsKey(keyset, nk) {
					keyset = append(keyset, nk)
					progress = true
				}
				break
			}
		}
	}
	// The group key is the key announced for node 1, if reachable.
	for _, m := range msgs {
		if m.Node != 1 {
			continue
		}
		for _, k := range keyset {
			pt, err := sym.Decrypt(k, m.Ciphertext)
			if err == nil && len(pt) == sym.KeySize {
				var out [sym.KeySize]byte
				copy(out[:], pt)
				return out, nil
			}
		}
	}
	var zero [sym.KeySize]byte
	return zero, errors.New("lkh: cannot recover new group key (revoked?)")
}

func containsKey(set [][sym.KeySize]byte, k [sym.KeySize]byte) bool {
	for _, x := range set {
		if x == k {
			return true
		}
	}
	return false
}
