package lkh

import (
	"fmt"
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero capacity accepted")
	}
	tr, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Capacity() != 8 {
		t.Errorf("capacity = %d, want 8", tr.Capacity())
	}
}

func TestJoinLeaveLifecycle(t *testing.T) {
	tr, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Join("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Join("alice"); err == nil {
		t.Error("double join accepted")
	}
	if tr.Users() != 1 {
		t.Error("Users wrong")
	}
	if _, err := tr.Leave("ghost"); err == nil {
		t.Error("leave of unknown user accepted")
	}
	if _, err := tr.Leave("alice"); err != nil {
		t.Fatal(err)
	}
	if tr.Users() != 0 {
		t.Error("Users after leave wrong")
	}
}

func TestTreeFull(t *testing.T) {
	tr, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Join("a")
	tr.Join("b")
	if _, err := tr.Join("c"); err == nil {
		t.Error("overfull join accepted")
	}
}

func TestMembersTrackGroupKeyThroughRekeys(t *testing.T) {
	tr, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	users := []string{"u0", "u1", "u2", "u3", "u4"}
	for _, u := range users {
		if _, err := tr.Join(u); err != nil {
			t.Fatal(err)
		}
	}
	// After a leave, every remaining member reconstructs the new group key
	// from its old path keys plus the rekey messages; the departed member
	// cannot.
	leaverPath, err := tr.PathKeys("u2")
	if err != nil {
		t.Fatal(err)
	}
	stayPaths := map[string][][32]byte{}
	for _, u := range []string{"u0", "u1", "u3", "u4"} {
		pk, err := tr.PathKeys(u)
		if err != nil {
			t.Fatal(err)
		}
		stayPaths[u] = pk
	}
	msgs, err := tr.Leave("u2")
	if err != nil {
		t.Fatal(err)
	}
	want := tr.GroupKey()
	for u, pk := range stayPaths {
		got, err := ApplyMessages(pk, msgs)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		if got != want {
			t.Fatalf("%s: wrong group key", u)
		}
	}
	if _, err := ApplyMessages(leaverPath, msgs); err == nil {
		t.Error("revoked user recovered the new group key")
	}
}

func TestRekeyCostIsLogarithmic(t *testing.T) {
	// For capacity 2^k the number of rekey messages per leave is at most
	// 2·k (two children per refreshed node on a path of length k).
	for _, capacity := range []int{4, 16, 64, 256} {
		tr, err := New(capacity)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < capacity; i++ {
			if _, err := tr.Join(fmt.Sprintf("u%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		msgs, err := tr.Leave("u0")
		if err != nil {
			t.Fatal(err)
		}
		bound := 2 * int(math.Log2(float64(capacity)))
		if len(msgs) > bound {
			t.Errorf("capacity %d: %d messages > bound %d", capacity, len(msgs), bound)
		}
	}
}

func TestPathKeysLength(t *testing.T) {
	tr, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	tr.Join("a")
	pk, err := tr.PathKeys("a")
	if err != nil {
		t.Fatal(err)
	}
	// Leaf to root inclusive: log2(16) + 1 = 5 keys.
	if len(pk) != 5 {
		t.Errorf("path keys = %d, want 5", len(pk))
	}
	if _, err := tr.PathKeys("ghost"); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestJoinProvidesBackwardSecrecy(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	tr.Join("old")
	oldGroupKey := tr.GroupKey()
	if _, err := tr.Join("new"); err != nil {
		t.Fatal(err)
	}
	if tr.GroupKey() == oldGroupKey {
		t.Error("group key unchanged after join (no backward secrecy)")
	}
}
