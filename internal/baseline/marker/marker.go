// Package marker implements the alternative group key management scheme
// sketched in §VIII-D of the paper (proposed by an anonymous ICDE reviewer):
// for each subscriber×policy row the publisher publishes
//
//	(k ‖ m) ⊕ H(r_1 ‖ … ‖ r_w ‖ z)
//
// where m is a well-known marker. A qualified subscriber hashes its CSSs
// with the nonce z, XORs against every slot, and recognises the key by the
// marker. Costs are O(N) at the publisher (no linear solve) and O(N) at the
// subscriber (scan all slots) — the ablation benchmarks contrast this with
// the paper's ACV scheme. The paper also notes its key-reuse weakness across
// same-z sessions, which TestSameNonceLeaksRelation demonstrates.
package marker

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"ppcd/internal/core"
)

const (
	// KeyLen is the session key length. Key plus marker must not exceed one
	// hash output (§VIII-D: "the length of the key must be strictly less
	// than that of the hash output").
	KeyLen = 16
	// markerLen completes the SHA-256 output size.
	markerLen = sha256.Size - KeyLen
)

// wellKnownMarker is the public marker m.
var wellKnownMarker = bytes.Repeat([]byte{0xA5}, markerLen)

// Header is the public broadcast material: the nonce z and one slot per
// subscriber×policy row.
type Header struct {
	Z     []byte
	Slots [][]byte
}

// Size returns the broadcast overhead in bytes (Fig. 5 analogue).
func (h *Header) Size() int {
	n := len(h.Z)
	for _, s := range h.Slots {
		n += len(s)
	}
	return n
}

// Errors returned by the scheme.
var (
	ErrNoRows  = errors.New("marker: no subscriber rows")
	ErrNoMatch = errors.New("marker: no slot matched (not authorized)")
)

// pad computes H(r_1 ‖ … ‖ r_w ‖ z).
func pad(css []core.CSS, z []byte) []byte {
	h := sha256.New()
	for _, r := range css {
		h.Write(r.Bytes())
	}
	h.Write(z)
	return h.Sum(nil)
}

// Build draws a fresh session key and produces the header for the given
// subscriber×policy rows.
func Build(rows [][]core.CSS) (*Header, []byte, error) {
	if len(rows) == 0 {
		return nil, nil, ErrNoRows
	}
	key := make([]byte, KeyLen)
	if _, err := rand.Read(key); err != nil {
		return nil, nil, fmt.Errorf("marker: key: %w", err)
	}
	z := make([]byte, 16)
	if _, err := rand.Read(z); err != nil {
		return nil, nil, fmt.Errorf("marker: nonce: %w", err)
	}
	return BuildWithKey(rows, key, z)
}

// BuildWithKey is Build with caller-chosen key and nonce; it exists so tests
// can demonstrate the cross-session weakness the paper describes.
func BuildWithKey(rows [][]core.CSS, key, z []byte) (*Header, []byte, error) {
	if len(rows) == 0 {
		return nil, nil, ErrNoRows
	}
	if len(key) != KeyLen {
		return nil, nil, fmt.Errorf("marker: key must be %d bytes", KeyLen)
	}
	plain := append(append([]byte(nil), key...), wellKnownMarker...)
	hdr := &Header{Z: append([]byte(nil), z...), Slots: make([][]byte, len(rows))}
	for i, row := range rows {
		p := pad(row, z)
		slot := make([]byte, sha256.Size)
		for j := range slot {
			slot[j] = plain[j] ^ p[j]
		}
		hdr.Slots[i] = slot
	}
	return hdr, key, nil
}

// DeriveKey scans the header's slots with the subscriber's CSS list and
// returns the session key when a slot reveals the well-known marker.
func DeriveKey(css []core.CSS, hdr *Header) ([]byte, error) {
	p := pad(css, hdr.Z)
	for _, slot := range hdr.Slots {
		if len(slot) != sha256.Size {
			continue
		}
		out := make([]byte, sha256.Size)
		for j := range out {
			out[j] = slot[j] ^ p[j]
		}
		if bytes.Equal(out[KeyLen:], wellKnownMarker) {
			return out[:KeyLen], nil
		}
	}
	return nil, ErrNoMatch
}
