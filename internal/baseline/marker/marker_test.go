package marker

import (
	"bytes"
	"math/rand"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
)

func randRows(rng *rand.Rand, n, maxConds int) [][]core.CSS {
	rows := make([][]core.CSS, n)
	for i := range rows {
		m := 1 + rng.Intn(maxConds)
		css := make([]core.CSS, m)
		for j := range css {
			css[j] = ff64.New(rng.Uint64() | 1)
		}
		rows[i] = css
	}
	return rows
}

func TestQualifiedDerive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := randRows(rng, 8, 3)
	hdr, key, err := Build(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		got, err := DeriveKey(row, hdr)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !bytes.Equal(got, key) {
			t.Fatalf("row %d: wrong key", i)
		}
	}
}

func TestUnqualifiedFails(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := randRows(rng, 5, 2)
	hdr, _, err := Build(rows)
	if err != nil {
		t.Fatal(err)
	}
	outsider := randRows(rng, 1, 2)[0]
	if _, err := DeriveKey(outsider, hdr); err != ErrNoMatch {
		t.Errorf("outsider derived key: %v", err)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, _, err := Build(nil); err != ErrNoRows {
		t.Errorf("empty rows: %v", err)
	}
	if _, _, err := BuildWithKey(randRows(rand.New(rand.NewSource(3)), 1, 1), []byte{1}, []byte{2}); err == nil {
		t.Error("short key accepted")
	}
}

func TestHeaderSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := randRows(rng, 10, 2)
	hdr, _, err := Build(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := 16 + 10*32
	if hdr.Size() != want {
		t.Errorf("Size = %d, want %d", hdr.Size(), want)
	}
}

func TestSameNonceLeaksRelation(t *testing.T) {
	// The weakness the paper points out (§VIII-D): with the same z and CSSs,
	// an attacker knowing k1 learns k2 from the two headers alone, because
	// slot1 ⊕ slot2 = (k1‖m) ⊕ (k2‖m).
	rng := rand.New(rand.NewSource(5))
	rows := randRows(rng, 1, 2)
	z := []byte("shared-nonce-16b")
	k1 := bytes.Repeat([]byte{0x11}, KeyLen)
	k2 := bytes.Repeat([]byte{0x22}, KeyLen)
	h1, _, err := BuildWithKey(rows, k1, z)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := BuildWithKey(rows, k2, z)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker: slot1 ⊕ slot2 ⊕ k1 (padded) reveals k2.
	recovered := make([]byte, KeyLen)
	for i := 0; i < KeyLen; i++ {
		recovered[i] = h1.Slots[0][i] ^ h2.Slots[0][i] ^ k1[i]
	}
	if !bytes.Equal(recovered, k2) {
		t.Error("expected the documented weakness to be demonstrable")
	}
}

func TestRekeyChangesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := randRows(rng, 3, 2)
	_, k1, err := Build(rows)
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := Build(rows)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Error("independent builds share a key")
	}
}

func TestForwardSecrecy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randRows(rng, 4, 2)
	leaving := rows[3]
	hdr, _, err := Build(rows[:3])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveKey(leaving, hdr); err != ErrNoMatch {
		t.Error("revoked subscriber derived new key")
	}
}
