// Package direct implements the "simplistic approach" the paper argues
// against (§VIII-B): the publisher delivers every configuration key directly
// to every qualified subscriber over a per-subscriber secure channel. Rekey
// therefore costs one message per qualified subscriber, and subscribers must
// store one key per policy configuration — the ablation benchmarks measure
// both against the ACV scheme's single broadcast.
package direct

import (
	"crypto/rand"
	"errors"
	"fmt"

	"ppcd/internal/sym"
)

// Scheme models the publisher side of the direct-delivery baseline.
type Scheme struct {
	channels map[string][sym.KeySize]byte // per-subscriber channel keys
}

// New creates an empty scheme.
func New() *Scheme {
	return &Scheme{channels: make(map[string][sym.KeySize]byte)}
}

// RegisterUser establishes the per-subscriber secure channel (in a real
// deployment: a TLS session or pre-shared key — here a random key the
// subscriber is assumed to share).
func (s *Scheme) RegisterUser(nym string) error {
	if nym == "" {
		return errors.New("direct: empty nym")
	}
	var key [sym.KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		return fmt.Errorf("direct: channel key: %w", err)
	}
	s.channels[nym] = key
	return nil
}

// RemoveUser tears down a subscriber's channel.
func (s *Scheme) RemoveUser(nym string) {
	delete(s.channels, nym)
}

// Users returns the number of registered subscribers.
func (s *Scheme) Users() int { return len(s.channels) }

// Message is one point-to-point rekey message.
type Message struct {
	Nym        string
	Ciphertext []byte
}

// Rekey generates a fresh configuration key and produces one message per
// qualified subscriber — the O(n) communication cost the paper criticises.
func (s *Scheme) Rekey(qualified []string) ([]Message, [sym.KeySize]byte, error) {
	var key [sym.KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		return nil, key, fmt.Errorf("direct: session key: %w", err)
	}
	msgs := make([]Message, 0, len(qualified))
	for _, nym := range qualified {
		ch, ok := s.channels[nym]
		if !ok {
			return nil, key, fmt.Errorf("direct: unknown subscriber %q", nym)
		}
		ct, err := sym.Encrypt(ch, key[:])
		if err != nil {
			return nil, key, err
		}
		msgs = append(msgs, Message{Nym: nym, Ciphertext: ct})
	}
	return msgs, key, nil
}

// ChannelKey returns a subscriber's channel key (the subscriber-side copy).
func (s *Scheme) ChannelKey(nym string) ([sym.KeySize]byte, bool) {
	k, ok := s.channels[nym]
	return k, ok
}

// DeriveKey is the subscriber side: find the message addressed to nym and
// decrypt it with the channel key.
func DeriveKey(nym string, channel [sym.KeySize]byte, msgs []Message) ([sym.KeySize]byte, error) {
	var out [sym.KeySize]byte
	for _, m := range msgs {
		if m.Nym != nym {
			continue
		}
		pt, err := sym.Decrypt(channel, m.Ciphertext)
		if err != nil {
			return out, err
		}
		if len(pt) != sym.KeySize {
			return out, errors.New("direct: malformed key message")
		}
		copy(out[:], pt)
		return out, nil
	}
	return out, errors.New("direct: no message addressed to subscriber")
}

// BytesOnWire sums the size of the rekey messages (broadcast-overhead
// analogue for Fig. 5 comparisons).
func BytesOnWire(msgs []Message) int {
	n := 0
	for _, m := range msgs {
		n += len(m.Nym) + len(m.Ciphertext)
	}
	return n
}
