package direct

import (
	"testing"
)

func TestRekeyAndDerive(t *testing.T) {
	s := New()
	for _, u := range []string{"a", "b", "c"} {
		if err := s.RegisterUser(u); err != nil {
			t.Fatal(err)
		}
	}
	msgs, key, err := s.Rekey([]string{"a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("rekey produced %d messages, want 2", len(msgs))
	}
	chA, _ := s.ChannelKey("a")
	got, err := DeriveKey("a", chA, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Error("derived key mismatch")
	}
	// b is not qualified: no message addressed to it.
	chB, _ := s.ChannelKey("b")
	if _, err := DeriveKey("b", chB, msgs); err == nil {
		t.Error("unqualified user derived key")
	}
}

func TestRekeyCostIsLinear(t *testing.T) {
	s := New()
	users := make([]string, 50)
	for i := range users {
		users[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
		if err := s.RegisterUser(users[i]); err != nil {
			t.Fatal(err)
		}
	}
	msgs, _, err := s.Rekey(users)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != len(users) {
		t.Errorf("messages = %d, want %d (O(n) cost)", len(msgs), len(users))
	}
	if BytesOnWire(msgs) == 0 {
		t.Error("BytesOnWire = 0")
	}
}

func TestValidation(t *testing.T) {
	s := New()
	if err := s.RegisterUser(""); err == nil {
		t.Error("empty nym accepted")
	}
	if _, _, err := s.Rekey([]string{"ghost"}); err == nil {
		t.Error("unknown subscriber accepted")
	}
	s.RegisterUser("x")
	if s.Users() != 1 {
		t.Error("Users wrong")
	}
	s.RemoveUser("x")
	if s.Users() != 0 {
		t.Error("RemoveUser failed")
	}
	if _, ok := s.ChannelKey("x"); ok {
		t.Error("removed user still has channel")
	}
}

func TestWrongChannelKeyFails(t *testing.T) {
	s := New()
	s.RegisterUser("a")
	msgs, _, err := s.Rekey([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	var wrong [32]byte
	if _, err := DeriveKey("a", wrong, msgs); err == nil {
		t.Error("wrong channel key decrypted rekey message")
	}
}
