package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
)

func buildGroupedHeader(t *testing.T) (*core.GroupedHeader, [][]core.CSS, ff64.Elem) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	rows := make([][]core.CSS, 7)
	for i := range rows {
		rows[i] = []core.CSS{ff64.New(rng.Uint64() | 1), ff64.New(rng.Uint64() | 1)}
	}
	g, key, err := core.BuildGrouped(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g, rows, key
}

func TestGroupedHeaderRoundTrip(t *testing.T) {
	g, rows, key := buildGroupedHeader(t)
	enc := MarshalGroupedHeader(g)
	dec, err := UnmarshalGroupedHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Shards) != len(g.Shards) || !bytes.Equal(dec.RekeyNonce, g.RekeyNonce) {
		t.Fatal("shape changed")
	}
	for i, sh := range g.Shards {
		if dec.Shards[i].Wrap != sh.Wrap || len(dec.Shards[i].Hdr.X) != len(sh.Hdr.X) {
			t.Fatalf("shard %d changed", i)
		}
	}
	// Every member still derives the configuration key through the decoded
	// copy; an outsider does not.
	for _, row := range rows {
		k, _, err := DeriveGrouped(row, dec, key)
		if err != nil || k != key {
			t.Fatalf("derivation through wire failed: %v", err)
		}
	}
	outsider := []core.CSS{ff64.New(12345), ff64.New(67890)}
	if _, _, err := DeriveGrouped(outsider, dec, key); err == nil {
		t.Error("outsider derived through wire copy")
	}
}

// DeriveGrouped verifies against a known key (test helper).
func DeriveGrouped(row []core.CSS, g *core.GroupedHeader, want ff64.Elem) (ff64.Elem, int, error) {
	return core.DeriveKeyGrouped(row, g, func(k ff64.Elem) bool { return k == want })
}

func TestGroupedHeaderLegacyFallback(t *testing.T) {
	// A Version-1 single header decodes as a one-shard direct-mode grouped
	// header: the shard key IS the configuration key.
	hdr, rows, key := buildHeader(t)
	g, err := UnmarshalGroupedHeader(MarshalHeader(hdr))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Shards) != 1 || g.RekeyNonce != nil {
		t.Fatalf("legacy fallback shape: %d shards, nonce %v", len(g.Shards), g.RekeyNonce)
	}
	k, idx, err := DeriveGrouped(rows[0], g, key)
	if err != nil || k != key || idx != 0 {
		t.Fatalf("legacy derivation failed: %v", err)
	}
	// The direct-mode header re-encodes as the Version 1 message it came
	// from: decode→encode→decode is stable.
	re := MarshalGroupedHeader(g)
	if !bytes.Equal(re, MarshalHeader(hdr)) {
		t.Fatal("direct-mode re-encoding diverged from the original message")
	}
	if _, err := UnmarshalGroupedHeader(re); err != nil {
		t.Fatalf("re-encoded direct-mode header undecodable: %v", err)
	}
}

func TestGroupedHeaderRejectsCorruption(t *testing.T) {
	g, _, _ := buildGroupedHeader(t)
	enc := MarshalGroupedHeader(g)

	if _, err := UnmarshalGroupedHeader(nil); err != ErrTruncated {
		t.Errorf("empty: %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[0] = VersionGrouped + 1
	if _, err := UnmarshalGroupedHeader(bad); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	if _, err := UnmarshalGroupedHeader(enc[:len(enc)-2]); err == nil {
		t.Error("truncated accepted")
	}
	if _, err := UnmarshalGroupedHeader(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}

	// Rekey nonce of the wrong length.
	var w writer
	w.u8(VersionGrouped)
	w.bytes([]byte("short"))
	w.u32(1)
	writeHeaderBody(&w, g.Shards[0].Hdr)
	w.u64(uint64(g.Shards[0].Wrap))
	if _, err := UnmarshalGroupedHeader(w.out()); err == nil {
		t.Error("bad rekey nonce length accepted")
	}

	// Zero and absurd shard counts.
	for _, count := range []uint32{0, maxGroupShards + 1} {
		var w writer
		w.u8(VersionGrouped)
		w.bytes(g.RekeyNonce)
		w.u32(count)
		if _, err := UnmarshalGroupedHeader(w.out()); err == nil {
			t.Errorf("shard count %d accepted", count)
		}
	}

	// A sub-header whose nonce length disagrees with the grouped shape.
	var w2 writer
	w2.u8(VersionGrouped)
	w2.bytes(g.RekeyNonce)
	w2.u32(1)
	odd := &core.Header{
		X:  g.Shards[0].Hdr.X[:2],
		Zs: [][]byte{[]byte("tiny")},
	}
	writeHeaderBody(&w2, odd)
	w2.u64(uint64(g.Shards[0].Wrap))
	if _, err := UnmarshalGroupedHeader(w2.out()); err == nil {
		t.Error("sub-header with non-NonceSize nonce accepted")
	}

	// Unreduced wrap.
	var w3 writer
	w3.u8(VersionGrouped)
	w3.bytes(g.RekeyNonce)
	w3.u32(1)
	writeHeaderBody(&w3, g.Shards[0].Hdr)
	w3.u64(^uint64(0))
	if _, err := UnmarshalGroupedHeader(w3.out()); err == nil {
		t.Error("unreduced wrap accepted")
	}

	// Fuzz: mutations must never panic.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		bad := append([]byte(nil), enc...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		}
		_, _ = UnmarshalGroupedHeader(bad)
	}
}

func TestGroupedHeaderBudgetClamp(t *testing.T) {
	// A crafted message whose sub-headers sum past the 64 MiB budget must be
	// rejected before the decoder allocates that much. Each claimed
	// sub-header advertises the maximum X the per-field clamp allows; a few
	// shards of those exceed the budget while the message itself stays tiny
	// (the decode fails on truncation at the latest — the budget check must
	// fire first and report ErrOversize).
	var w writer
	w.u8(VersionGrouped)
	nonce := make([]byte, core.NonceSize)
	w.bytes(nonce)
	w.u32(64)
	// One huge well-formed-looking sub-header prefix: claim 2^25 X entries
	// (256 MiB of vector) — the reader errors with ErrOversize from the
	// budget/clamp path, never attempting the allocation of all 64 shards.
	w.u32(1 << 25)
	data := w.out()
	// Pad with zero bytes so the first entries "exist".
	data = append(data, make([]byte, 4096)...)
	_, err := UnmarshalGroupedHeader(data)
	if err == nil {
		t.Fatal("oversized grouped header accepted")
	}
}

func TestBroadcastGroupedRoundTripAndV1Fallback(t *testing.T) {
	g, rows, key := buildGroupedHeader(t)
	hdr, _, _ := buildHeader(t)
	b := &pubsub.Broadcast{
		DocName: "doc",
		Policies: []pubsub.PolicyInfo{
			{ID: "acpA", CondIDs: []string{"attr >= 1"}},
		},
		Configs: []pubsub.ConfigInfo{
			{Key: policy.ConfigOf("acpA"), Grouped: g},
			{Key: policy.ConfigOf("acpB"), Header: hdr},
			{Key: policy.ConfigOf("acpC")},
		},
		Items: []pubsub.Item{
			{Subdoc: "sd", Config: policy.ConfigOf("acpA"), Ciphertext: []byte{9, 9}},
		},
	}
	enc := MarshalBroadcast(b)
	if enc[0] != VersionGrouped {
		t.Fatalf("version byte %d, want %d", enc[0], VersionGrouped)
	}
	dec, err := UnmarshalBroadcast(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Configs[0].Grouped == nil || dec.Configs[1].Header == nil || dec.Configs[2].Grouped != nil || dec.Configs[2].Header != nil {
		t.Fatal("config header presence changed")
	}
	if k, _, err := DeriveGrouped(rows[0], dec.Configs[0].Grouped, key); err != nil || k != key {
		t.Fatalf("grouped derivation through broadcast failed: %v", err)
	}

	// An ungrouped broadcast still encodes byte-identically to Version 1 and
	// old-format messages still decode.
	b.Configs[0] = pubsub.ConfigInfo{Key: policy.ConfigOf("acpA"), Header: hdr}
	enc = MarshalBroadcast(b)
	if enc[0] != Version {
		t.Fatalf("ungrouped broadcast emitted version %d", enc[0])
	}
	if _, err := UnmarshalBroadcast(enc); err != nil {
		t.Fatal(err)
	}

	// A grouped presence byte inside a Version 1 message is rejected.
	b.Configs[0] = pubsub.ConfigInfo{Key: policy.ConfigOf("acpA"), Grouped: g}
	enc = MarshalBroadcast(b)
	forged := append([]byte(nil), enc...)
	forged[0] = Version
	if _, err := UnmarshalBroadcast(forged); err == nil {
		t.Error("grouped config accepted in a Version 1 message")
	}
}

// TestGroupedBudgetAccumulates checks the budget is charged cumulatively
// across shards, not per shard: charges each under the cap but summing past
// 64 MiB are rejected (crafting real multi-MiB sub-headers would dominate
// the test's runtime, so the accounting is exercised directly).
func TestGroupedBudgetAccumulates(t *testing.T) {
	r := newReader(nil)
	step := 8 << 20
	for i := 0; i < 8; i++ {
		if err := r.takeHeaderBudget(step); err != nil {
			t.Fatalf("charge %d of %d MiB rejected under budget", i, step>>20)
		}
	}
	if err := r.takeHeaderBudget(step); err == nil {
		t.Error("budget exceeded without rejection")
	}
}
