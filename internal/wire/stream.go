// Stream frames: the v3 half of the wire format. Where v1/v2 encode one
// self-contained broadcast, v3 encodes the units of the epoch-versioned
// dissemination pipeline — full snapshots stamped with epoch and revisions,
// deltas that ship only what changed since a base epoch, and heartbeats.
// The transport marshals each epoch's snapshot and delta frame once and fans
// the same bytes out to every connected subscriber.
//
// Decoding applies the same hardening budget discipline as v2: every length
// field is clamped, grouped sub-header material is charged against the
// per-message 64 MiB budget, and field elements must arrive reduced.
package wire

import (
	"fmt"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
)

// VersionStream marks v3 messages: epoch-versioned stream frames
// (snapshot | delta | heartbeat). v1/v2 broadcast messages remain valid and
// byte-identical; v3 is additive.
const VersionStream = 3

// FrameType discriminates the stream frame kinds.
type FrameType byte

const (
	// FrameSnapshot carries a complete epoch-stamped broadcast.
	FrameSnapshot FrameType = 1
	// FrameDelta carries a BroadcastDelta between two epochs.
	FrameDelta FrameType = 2
	// FrameHeartbeat carries only the server's current epoch (liveness).
	FrameHeartbeat FrameType = 3
)

// Frame is one decoded stream frame. Exactly one of Snapshot/Delta is
// non-nil for data frames; Epoch is always set (the snapshot's or delta's
// target epoch, or the heartbeat epoch).
type Frame struct {
	Type     FrameType
	Epoch    uint64
	Snapshot *pubsub.Broadcast
	Delta    *pubsub.BroadcastDelta
}

// maxDeltaShards clamps the shard count of one grouped patch, mirroring
// maxGroupShards on the v2 path.
const maxDeltaShards = maxGroupShards

// fromFresh is the on-wire sentinel for GroupedPatch.From entries that ship
// a fresh sub-header instead of referencing a base shard.
const fromFresh = ^uint32(0)

// MarshalSnapshotFrame encodes a broadcast as a v3 snapshot frame, revisions
// included.
func MarshalSnapshotFrame(b *pubsub.Broadcast) []byte {
	var w writer
	w.u8(VersionStream)
	w.u8(byte(FrameSnapshot))
	writeBroadcastV3(&w, b)
	return w.out()
}

// MarshalDeltaFrame encodes a broadcast delta as a v3 frame.
func MarshalDeltaFrame(d *pubsub.BroadcastDelta) []byte {
	var w writer
	w.u8(VersionStream)
	w.u8(byte(FrameDelta))
	writeDelta(&w, d)
	return w.out()
}

// MarshalHeartbeatFrame encodes a heartbeat frame for the given epoch.
func MarshalHeartbeatFrame(epoch uint64) []byte {
	var w writer
	w.u8(VersionStream)
	w.u8(byte(FrameHeartbeat))
	w.u64(epoch)
	return w.out()
}

// UnmarshalFrame decodes one v3 stream frame.
func UnmarshalFrame(data []byte) (*Frame, error) {
	r := newReader(data)
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != VersionStream {
		return nil, ErrBadVersion
	}
	t, err := r.u8()
	if err != nil {
		return nil, err
	}
	f := &Frame{Type: FrameType(t)}
	switch f.Type {
	case FrameSnapshot:
		if f.Snapshot, err = readBroadcastV3(r); err != nil {
			return nil, err
		}
		f.Epoch = f.Snapshot.Epoch
	case FrameDelta:
		if f.Delta, err = readDelta(r); err != nil {
			return nil, err
		}
		f.Epoch = f.Delta.Epoch
	case FrameHeartbeat:
		if f.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", t)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return f, nil
}

func writePolicies(w *writer, ps []pubsub.PolicyInfo) {
	w.u32(uint32(len(ps)))
	for _, pi := range ps {
		w.str(pi.ID)
		w.u32(uint32(len(pi.CondIDs)))
		for _, c := range pi.CondIDs {
			w.str(c)
		}
	}
}

func readPolicies(r *reader) ([]pubsub.PolicyInfo, error) {
	np, err := r.u32()
	if err != nil {
		return nil, err
	}
	if np > 1<<20 {
		return nil, ErrOversize
	}
	var out []pubsub.PolicyInfo
	for i := uint32(0); i < np; i++ {
		var pi pubsub.PolicyInfo
		if pi.ID, err = r.str(); err != nil {
			return nil, err
		}
		nc, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nc > 1<<20 {
			return nil, ErrOversize
		}
		for j := uint32(0); j < nc; j++ {
			c, err := r.str()
			if err != nil {
				return nil, err
			}
			pi.CondIDs = append(pi.CondIDs, c)
		}
		out = append(out, pi)
	}
	return out, nil
}

// writeGroupedV3 encodes a grouped header plus its parallel shard revisions.
func writeGroupedV3(w *writer, g *core.GroupedHeader, revs []uint64) {
	writeGroupedBody(w, g)
	w.u32(uint32(len(revs)))
	for _, rv := range revs {
		w.u64(rv)
	}
}

func readGroupedV3(r *reader) (*core.GroupedHeader, []uint64, error) {
	g, err := readGroupedBody(r)
	if err != nil {
		return nil, nil, err
	}
	nr, err := r.u32()
	if err != nil {
		return nil, nil, err
	}
	if int(nr) != len(g.Shards) {
		return nil, nil, fmt.Errorf("wire: %d shard revisions for %d shards", nr, len(g.Shards))
	}
	revs := make([]uint64, nr)
	for i := range revs {
		if revs[i], err = r.u64(); err != nil {
			return nil, nil, err
		}
	}
	return g, revs, nil
}

func writeItemV3(w *writer, it *pubsub.Item) {
	w.str(it.Subdoc)
	w.str(string(it.Config))
	w.bytes(it.Ciphertext)
	w.u64(it.Rev)
}

func readItemV3(r *reader) (pubsub.Item, error) {
	var it pubsub.Item
	var err error
	if it.Subdoc, err = r.str(); err != nil {
		return it, err
	}
	cfg, err := r.str()
	if err != nil {
		return it, err
	}
	it.Config = policy.ConfigKey(cfg)
	if it.Ciphertext, err = r.bytes(); err != nil {
		return it, err
	}
	if it.Rev, err = r.u64(); err != nil {
		return it, err
	}
	return it, nil
}

func writeBroadcastV3(w *writer, b *pubsub.Broadcast) {
	w.str(b.DocName)
	w.u64(b.Epoch)
	w.u64(b.Gen)
	writePolicies(w, b.Policies)
	w.u32(uint32(len(b.Configs)))
	for _, ci := range b.Configs {
		w.str(string(ci.Key))
		w.u64(ci.Rev)
		switch {
		case ci.Grouped != nil:
			w.u8(2)
			writeGroupedV3(w, ci.Grouped, ci.ShardRevs)
		case ci.Header != nil:
			w.u8(1)
			writeHeaderBody(w, ci.Header)
		default:
			w.u8(0)
		}
	}
	w.u32(uint32(len(b.Items)))
	for i := range b.Items {
		writeItemV3(w, &b.Items[i])
	}
}

func readBroadcastV3(r *reader) (*pubsub.Broadcast, error) {
	b := &pubsub.Broadcast{}
	var err error
	if b.DocName, err = r.str(); err != nil {
		return nil, err
	}
	if b.Epoch, err = r.u64(); err != nil {
		return nil, err
	}
	if b.Gen, err = r.u64(); err != nil {
		return nil, err
	}
	if b.Policies, err = readPolicies(r); err != nil {
		return nil, err
	}
	ncfg, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ncfg > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < ncfg; i++ {
		var ci pubsub.ConfigInfo
		key, err := r.str()
		if err != nil {
			return nil, err
		}
		ci.Key = policy.ConfigKey(key)
		if ci.Rev, err = r.u64(); err != nil {
			return nil, err
		}
		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch has {
		case 0:
		case 1:
			if ci.Header, err = readHeaderBody(r); err != nil {
				return nil, err
			}
		case 2:
			if ci.Grouped, ci.ShardRevs, err = readGroupedV3(r); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wire: bad header presence byte %d", has)
		}
		b.Configs = append(b.Configs, ci)
	}
	ni, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ni > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < ni; i++ {
		it, err := readItemV3(r)
		if err != nil {
			return nil, err
		}
		b.Items = append(b.Items, it)
	}
	return b, nil
}

func writeDelta(w *writer, d *pubsub.BroadcastDelta) {
	w.str(d.DocName)
	w.u64(d.BaseEpoch)
	w.u64(d.Epoch)
	w.u64(d.Gen)
	if d.PoliciesChanged {
		w.u8(1)
		writePolicies(w, d.Policies)
	} else {
		w.u8(0)
	}
	w.u32(uint32(len(d.Configs)))
	for _, cp := range d.Configs {
		w.str(string(cp.Key))
		w.u64(cp.Rev)
		switch {
		case cp.Grouped != nil:
			w.u8(2)
			writeGroupedPatch(w, &cp, cp.Grouped)
		case cp.Header != nil:
			w.u8(1)
			writeHeaderBody(w, cp.Header)
		default:
			w.u8(0)
		}
	}
	w.u32(uint32(len(d.RemovedConfigs)))
	for _, k := range d.RemovedConfigs {
		w.str(string(k))
	}
	w.u32(uint32(len(d.Items)))
	for i := range d.Items {
		writeItemV3(w, &d.Items[i])
	}
	w.u32(uint32(len(d.RemovedItems)))
	for _, name := range d.RemovedItems {
		w.str(name)
	}
}

func writeGroupedPatch(w *writer, cp *pubsub.ConfigPatch, p *pubsub.GroupedPatch) {
	w.bytes(p.RekeyNonce)
	w.u32(uint32(len(p.From)))
	for i, from := range p.From {
		w.u64(uint64(p.Wraps[i]))
		w.u64(cp.ShardRevs[i])
		if from < 0 {
			w.u32(fromFresh)
		} else {
			w.u32(uint32(from))
		}
	}
	w.u32(uint32(len(p.Headers)))
	for _, h := range p.Headers {
		writeHeaderBody(w, h)
	}
}

func readDelta(r *reader) (*pubsub.BroadcastDelta, error) {
	d := &pubsub.BroadcastDelta{}
	var err error
	if d.DocName, err = r.str(); err != nil {
		return nil, err
	}
	if d.BaseEpoch, err = r.u64(); err != nil {
		return nil, err
	}
	if d.Epoch, err = r.u64(); err != nil {
		return nil, err
	}
	if d.Gen, err = r.u64(); err != nil {
		return nil, err
	}
	pc, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch pc {
	case 0:
	case 1:
		d.PoliciesChanged = true
		if d.Policies, err = readPolicies(r); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wire: bad policies-changed byte %d", pc)
	}
	ncfg, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ncfg > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < ncfg; i++ {
		var cp pubsub.ConfigPatch
		key, err := r.str()
		if err != nil {
			return nil, err
		}
		cp.Key = policy.ConfigKey(key)
		if cp.Rev, err = r.u64(); err != nil {
			return nil, err
		}
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch kind {
		case 0:
		case 1:
			if cp.Header, err = readHeaderBody(r); err != nil {
				return nil, err
			}
		case 2:
			if err := readGroupedPatch(r, &cp); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wire: bad config patch kind %d", kind)
		}
		d.Configs = append(d.Configs, cp)
	}
	nrm, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nrm > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < nrm; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		d.RemovedConfigs = append(d.RemovedConfigs, policy.ConfigKey(k))
	}
	ni, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ni > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < ni; i++ {
		it, err := readItemV3(r)
		if err != nil {
			return nil, err
		}
		d.Items = append(d.Items, it)
	}
	nri, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nri > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < nri; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		d.RemovedItems = append(d.RemovedItems, name)
	}
	return d, nil
}

// readGroupedPatch decodes one grouped config patch with the hardened
// clamps: shard count bounded, wraps reduced, From references either the
// fresh sentinel or a sane base index, shipped sub-header count matching the
// fresh references exactly, every sub-header well-shaped with NonceSize
// nonces and charged against the message's header budget.
func readGroupedPatch(r *reader, cp *pubsub.ConfigPatch) error {
	p := &pubsub.GroupedPatch{}
	var err error
	if p.RekeyNonce, err = r.bytes(); err != nil {
		return err
	}
	if len(p.RekeyNonce) != core.NonceSize {
		return fmt.Errorf("wire: grouped patch rekey nonce of %d bytes, want %d", len(p.RekeyNonce), core.NonceSize)
	}
	ns, err := r.u32()
	if err != nil {
		return err
	}
	if ns == 0 || ns > maxDeltaShards {
		return ErrOversize
	}
	fresh := 0
	p.Wraps = make([]ff64.Elem, 0, capHint(ns))
	p.From = make([]int, 0, capHint(ns))
	cp.ShardRevs = make([]uint64, 0, capHint(ns))
	for i := uint32(0); i < ns; i++ {
		raw, err := r.u64()
		if err != nil {
			return err
		}
		if raw >= ff64.Modulus {
			return fmt.Errorf("wire: patch shard %d wrap not a reduced field element", i)
		}
		rev, err := r.u64()
		if err != nil {
			return err
		}
		from, err := r.u32()
		if err != nil {
			return err
		}
		idx := -1
		if from != fromFresh {
			if from > maxGroupShards {
				return ErrOversize
			}
			idx = int(from)
		} else {
			fresh++
		}
		p.Wraps = append(p.Wraps, ff64.Elem(raw))
		cp.ShardRevs = append(cp.ShardRevs, rev)
		p.From = append(p.From, idx)
	}
	nh, err := r.u32()
	if err != nil {
		return err
	}
	if int(nh) != fresh {
		return fmt.Errorf("wire: patch ships %d sub-headers for %d fresh shards", nh, fresh)
	}
	for i := uint32(0); i < nh; i++ {
		h, err := readHeaderBody(r)
		if err != nil {
			return err
		}
		for _, z := range h.Zs {
			if len(z) != core.NonceSize {
				return fmt.Errorf("wire: patch sub-header %d has a %d-byte nonce, want %d", i, len(z), core.NonceSize)
			}
		}
		if err := r.takeHeaderBudget(h.Size()); err != nil {
			return err
		}
		p.Headers = append(p.Headers, h)
	}
	cp.Grouped = p
	return nil
}
