package wire

import (
	"bytes"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/linalg"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
)

// fuzzHeader builds a well-shaped ACV header (|X| = n+1, reduced elements,
// NonceSize nonces) without any crypto, so the seed corpus stays cheap and
// deterministic across runs.
func fuzzHeader(n int) *core.Header {
	h := &core.Header{X: make(linalg.Vector, n+1), Zs: make([][]byte, n)}
	for i := range h.X {
		h.X[i] = ff64.Elem(uint64(i + 1))
	}
	for i := range h.Zs {
		z := make([]byte, core.NonceSize)
		z[0] = byte(i + 1)
		h.Zs[i] = z
	}
	return h
}

func fuzzSnapshot() *pubsub.Broadcast {
	return &pubsub.Broadcast{
		DocName:  "doc",
		Epoch:    3,
		Gen:      9,
		Policies: []pubsub.PolicyInfo{{ID: "p0", CondIDs: []string{"attr0 >= 1", "attr1 >= 2"}}},
		Configs: []pubsub.ConfigInfo{
			{Key: "cfg-plain", Rev: 2, Header: fuzzHeader(2)},
			{Key: "cfg-grouped", Rev: 3, ShardRevs: []uint64{1, 3}, Grouped: &core.GroupedHeader{
				RekeyNonce: bytes.Repeat([]byte{7}, core.NonceSize),
				Shards: []core.GroupShard{
					{Hdr: fuzzHeader(1), Wrap: 5},
					{Hdr: fuzzHeader(2), Wrap: 6},
				},
			}},
			{Key: "cfg-empty", Rev: 1},
		},
		Items: []pubsub.Item{{Subdoc: "s0", Config: "cfg-plain", Ciphertext: []byte("ct"), Rev: 2}},
	}
}

func fuzzDelta() *pubsub.BroadcastDelta {
	return &pubsub.BroadcastDelta{
		DocName:         "doc",
		BaseEpoch:       3,
		Epoch:           4,
		Gen:             9,
		PoliciesChanged: true,
		Policies:        []pubsub.PolicyInfo{{ID: "p0", CondIDs: []string{"attr0 >= 1"}}},
		Configs: []pubsub.ConfigPatch{
			{Key: "cfg-plain", Rev: 4, Header: fuzzHeader(2)},
			{Key: "cfg-grouped", Rev: 4, ShardRevs: []uint64{1, 4}, Grouped: &pubsub.GroupedPatch{
				RekeyNonce: bytes.Repeat([]byte{8}, core.NonceSize),
				Wraps:      []ff64.Elem{11, 12},
				From:       []int{0, -1},
				Headers:    []*core.Header{fuzzHeader(1)},
			}},
		},
		RemovedConfigs: []policy.ConfigKey{"cfg-old"},
		Items:          []pubsub.Item{{Subdoc: "s0", Config: "cfg-plain", Ciphertext: []byte("ct2"), Rev: 4}},
		RemovedItems:   []string{"s9"},
	}
}

// FuzzFrame drives the v3 stream-frame decoder with arbitrary bytes, seeded
// with well-formed snapshot, delta and heartbeat frames plus truncated and
// bit-flipped variants. The decoder must never panic, and every frame it
// accepts must re-marshal byte-identically — the canonicality the fan-out
// tier relies on when it reuses one marshaled frame for every subscriber.
func FuzzFrame(f *testing.F) {
	seeds := [][]byte{
		MarshalHeartbeatFrame(42),
		MarshalSnapshotFrame(fuzzSnapshot()),
		MarshalDeltaFrame(fuzzDelta()),
	}
	for _, s := range seeds {
		f.Add(s)
		f.Add(append([]byte(nil), s[:len(s)-3]...))
		flip := append([]byte(nil), s...)
		flip[len(flip)/2] ^= 0x40
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte{VersionStream})
	f.Add([]byte{VersionStream, byte(FrameDelta)})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		var re []byte
		switch fr.Type {
		case FrameSnapshot:
			if fr.Snapshot == nil || fr.Epoch != fr.Snapshot.Epoch {
				t.Fatalf("accepted snapshot frame with epoch %d, snapshot %+v", fr.Epoch, fr.Snapshot)
			}
			re = MarshalSnapshotFrame(fr.Snapshot)
		case FrameDelta:
			if fr.Delta == nil || fr.Epoch != fr.Delta.Epoch {
				t.Fatalf("accepted delta frame with epoch %d, delta %+v", fr.Epoch, fr.Delta)
			}
			re = MarshalDeltaFrame(fr.Delta)
		case FrameHeartbeat:
			re = MarshalHeartbeatFrame(fr.Epoch)
		default:
			t.Fatalf("accepted frame with unknown type %d", fr.Type)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted frame is not canonical: %d input bytes re-marshal to %d", len(data), len(re))
		}
	})
}
