package wire

import (
	"testing"

	"ppcd/internal/benchutil"
	"ppcd/internal/idtoken"
	"ppcd/internal/pedersen"
	"ppcd/internal/pubsub"
	"ppcd/internal/schnorr"
)

// streamEnv builds a grouped publisher over a synthetic imported table —
// the crypto-free workload the publish benchmarks use. Subdocuments are
// small (128 B): the streaming acceptance criteria are about HEADER
// dissemination cost (the quantity of the paper's Fig. 5), and a leave
// necessarily re-ships the affected configurations' ciphertexts whatever
// their size.
func streamEnv(t *testing.T, subs, policies, groupSize int) (*pubsub.Publisher, func() *pubsub.Broadcast, string) {
	t.Helper()
	params, err := pedersen.Setup(schnorr.Must2048(), []byte("wire-stream-test"))
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := idtoken.NewManager(params)
	if err != nil {
		t.Fatal(err)
	}
	acps, doc, state, err := benchutil.Workload(subs, policies, subs/2, 128)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pubsub.NewPublisher(params, mgr.PublicKey(), acps, pubsub.Options{Ell: 8, GroupSize: groupSize})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ImportState(state); err != nil {
		t.Fatal(err)
	}
	publish := func() *pubsub.Broadcast {
		b, err := pub.Publish(doc)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	return pub, publish, "pn-0"
}

func broadcastEq(t *testing.T, a, b *pubsub.Broadcast) {
	t.Helper()
	if a.DocName != b.DocName || a.Epoch != b.Epoch {
		t.Fatalf("broadcast identity differs: (%q,%d) vs (%q,%d)", a.DocName, a.Epoch, b.DocName, b.Epoch)
	}
	if len(a.Configs) != len(b.Configs) || len(a.Items) != len(b.Items) || len(a.Policies) != len(b.Policies) {
		t.Fatalf("broadcast shape differs")
	}
	for i := range a.Configs {
		ca, cb := a.Configs[i], b.Configs[i]
		if ca.Key != cb.Key || ca.Rev != cb.Rev {
			t.Fatalf("config %d identity differs", i)
		}
		if (ca.Grouped == nil) != (cb.Grouped == nil) || (ca.Header == nil) != (cb.Header == nil) {
			t.Fatalf("config %d header kind differs", i)
		}
		if len(ca.ShardRevs) != len(cb.ShardRevs) {
			t.Fatalf("config %d shard revs differ", i)
		}
		for j := range ca.ShardRevs {
			if ca.ShardRevs[j] != cb.ShardRevs[j] {
				t.Fatalf("config %d shard rev %d differs", i, j)
			}
		}
	}
}

// TestSnapshotFrameRoundTrip: a grouped, epoch-stamped broadcast survives
// the v3 snapshot frame byte-for-byte in all revision metadata, and the
// round-tripped frame re-marshals to identical bytes.
func TestSnapshotFrameRoundTrip(t *testing.T) {
	_, publish, _ := streamEnv(t, 12, 3, 4)
	b := publish()
	raw := MarshalSnapshotFrame(b)
	f, err := UnmarshalFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameSnapshot || f.Snapshot == nil || f.Epoch != b.Epoch {
		t.Fatalf("frame = %+v", f)
	}
	broadcastEq(t, b, f.Snapshot)
	raw2 := MarshalSnapshotFrame(f.Snapshot)
	if string(raw) != string(raw2) {
		t.Error("snapshot frame does not re-marshal byte-identically")
	}
}

// TestDeltaFrameRoundTripAndApply: a churn delta survives the v3 frame and
// still applies cleanly to a wire-decoded base snapshot.
func TestDeltaFrameRoundTripAndApply(t *testing.T) {
	pub, publish, victim := streamEnv(t, 12, 3, 4)
	b1 := publish()
	if err := pub.RevokeSubscription(victim); err != nil {
		t.Fatal(err)
	}
	b2 := publish()
	d, err := pubsub.Diff(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	raw := MarshalDeltaFrame(d)
	f, err := UnmarshalFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameDelta || f.Delta == nil || f.Epoch != b2.Epoch {
		t.Fatalf("frame = %+v", f)
	}
	if string(MarshalDeltaFrame(f.Delta)) != string(raw) {
		t.Error("delta frame does not re-marshal byte-identically")
	}

	// Apply the decoded delta to a wire-decoded base state (the streaming
	// client's situation: no pointers shared with the publisher).
	baseFrame, err := UnmarshalFrame(MarshalSnapshotFrame(b1))
	if err != nil {
		t.Fatal(err)
	}
	patched, err := f.Delta.Apply(baseFrame.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	broadcastEq(t, b2, patched)
}

func TestHeartbeatFrameRoundTrip(t *testing.T) {
	f, err := UnmarshalFrame(MarshalHeartbeatFrame(42))
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameHeartbeat || f.Epoch != 42 {
		t.Fatalf("frame = %+v", f)
	}
}

// TestFrameDecodeHardening drives the v3 decoder through the malformed
// inputs the budget discipline must reject without over-allocating.
func TestFrameDecodeHardening(t *testing.T) {
	pub, publish, victim := streamEnv(t, 8, 2, 4)
	b1 := publish()
	if err := pub.RevokeSubscription(victim); err != nil {
		t.Fatal(err)
	}
	b2 := publish()
	d, err := pubsub.Diff(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	snap := MarshalSnapshotFrame(b2)
	delta := MarshalDeltaFrame(d)

	// Truncations at every boundary must error, never panic.
	for _, raw := range [][]byte{snap, delta} {
		for cut := 0; cut < len(raw); cut += 7 {
			if _, err := UnmarshalFrame(raw[:cut]); err == nil {
				t.Fatalf("truncated frame of %d/%d bytes decoded", cut, len(raw))
			}
		}
	}

	// Unknown version / frame type.
	if _, err := UnmarshalFrame([]byte{9, 1}); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := UnmarshalFrame([]byte{VersionStream, 9}); err == nil {
		t.Error("bad frame type accepted")
	}

	// Trailing garbage.
	if _, err := UnmarshalFrame(append(append([]byte(nil), snap...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}

	// A delta whose grouped patch claims more shipped headers than fresh
	// references must be rejected (mismatch between From and Headers).
	var found bool
	for _, cp := range d.Configs {
		if cp.Grouped != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("test workload produced no grouped patch")
	}
	// Flip a From entry from "fresh" to a base reference without removing
	// the shipped header: re-encode manually by corrupting the count is
	// fiddly at the byte level, so instead corrupt via the typed path.
	bad := *d
	bad.Configs = append([]pubsub.ConfigPatch(nil), d.Configs...)
	for i, cp := range bad.Configs {
		if cp.Grouped == nil {
			continue
		}
		gp := *cp.Grouped
		gp.From = append([]int(nil), gp.From...)
		for j, from := range gp.From {
			if from < 0 {
				gp.From[j] = 0 // now references base shard 0, header count no longer matches
				break
			}
		}
		cp.Grouped = &gp
		bad.Configs[i] = cp
		break
	}
	if _, err := UnmarshalFrame(MarshalDeltaFrame(&bad)); err == nil {
		t.Error("grouped patch with mismatched header count accepted")
	}
}

// TestDeltaByteRatioSingleLeave256 is the acceptance criterion of the
// streaming dissemination work: at 256 subscribers with grouping degree 4,
// the delta for a single-leave churn publish must ship at most 10% of the
// full snapshot's bytes.
func TestDeltaByteRatioSingleLeave256(t *testing.T) {
	const subs, groups = 256, 4
	pub, publish, victim := streamEnv(t, subs, 5, (subs+groups-1)/groups)
	b1 := publish()
	if err := pub.RevokeSubscription(victim); err != nil {
		t.Fatal(err)
	}
	b2 := publish()
	d, err := pubsub.Diff(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	snapshotBytes := len(MarshalSnapshotFrame(b2))
	deltaBytes := len(MarshalDeltaFrame(d))
	t.Logf("single leave at %d subs, g=%d: delta %d B vs snapshot %d B (%.1f%%)",
		subs, groups, deltaBytes, snapshotBytes, 100*float64(deltaBytes)/float64(snapshotBytes))
	if deltaBytes*10 > snapshotBytes {
		t.Errorf("single-leave delta is %d B, more than 10%% of the %d B snapshot", deltaBytes, snapshotBytes)
	}
	// And a steady-state delta is near-free: frame header + doc name only.
	b3 := publish()
	d2, err := pubsub.Diff(b2, b3)
	if err != nil {
		t.Fatal(err)
	}
	if steady := len(MarshalDeltaFrame(d2)); steady > 128 {
		t.Errorf("steady-state delta frame is %d B, want ≤ 128", steady)
	}
}

// TestLegacyBroadcastBytesUnchanged pins the v1/v2 encodings: stamping
// epochs and revisions must not leak into the pre-v3 formats.
func TestLegacyBroadcastBytesUnchanged(t *testing.T) {
	_, publish, _ := streamEnv(t, 8, 2, 0)
	b := publish()
	if b.Epoch == 0 {
		t.Fatal("publish did not stamp an epoch")
	}
	raw := MarshalBroadcast(b)
	if raw[0] != Version {
		t.Fatalf("ungrouped broadcast marshals as version %d", raw[0])
	}
	got, err := UnmarshalBroadcast(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 0 {
		t.Error("v1 decode invented an epoch")
	}
	for _, ci := range got.Configs {
		if ci.Rev != 0 || ci.ShardRevs != nil {
			t.Error("v1 decode invented revisions")
		}
	}
}
