// Package wire defines a deterministic, language-neutral binary encoding
// for the protocol messages of the system: ACV headers, full broadcast
// packages, and the batched registration exchange. The TCP transport uses
// Go's gob for convenience; this format is the stable interchange
// representation (e.g. for publishing broadcast files, CDN distribution, or
// non-Go subscribers) and is what Header.Size accounting corresponds to.
//
// All integers are big-endian. Every message starts with a one-byte format
// version. Strings and byte fields are length-prefixed with uint32.
package wire

import (
	"errors"
	"fmt"
	"math/big"

	"ppcd/internal/codec"
	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/idtoken"
	"ppcd/internal/linalg"
	"ppcd/internal/ocbe"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
)

// Version is the original format version byte (single-ACV headers).
const Version = 1

// VersionGrouped marks messages carrying grouped (§VIII-C) headers: one
// small sub-header per subscriber shard plus a wrapped configuration key.
// Decoders accept both versions; encoders emit VersionGrouped only when a
// grouped header is present, so ungrouped traffic stays byte-identical to
// the old format.
const VersionGrouped = 2

// Errors returned by the decoders.
var (
	ErrTruncated  = errors.New("wire: truncated message")
	ErrBadVersion = errors.New("wire: unsupported format version")
	ErrOversize   = errors.New("wire: length field exceeds limits")
)

// maxField caps individual length fields to keep a corrupt length byte from
// driving huge allocations.
const maxField = 1 << 28 // 256 MiB

// maxGroupShards clamps the shard count of one grouped header; far above any
// real grouping (it exceeds the registration batch cap) but small enough
// that a crafted count cannot drive the decode loop.
const maxGroupShards = 1 << 16

// maxHeaderBudget bounds the cumulative decoded size of all grouped
// sub-headers in one message, mirroring the transport's 64 MiB per-request
// gob budget so a wire-decoded broadcast can never out-allocate a
// transport-decoded one.
const maxHeaderBudget = 64 << 20

// writer and reader delegate to the shared codec primitives (the third and
// last of the repo's hand-rolled codecs to land on them — the durable state
// blobs and the store WAL records moved earlier). The wrappers keep wire's
// historical method signatures so the v1–v3 encoders and decoders read
// unchanged, translate codec's sentinels into wire's, and preserve the exact
// byte formats — the round-trip tests pin them.

type writer struct {
	w codec.Writer
}

func (w *writer) u8(v byte)      { w.w.U8(v) }
func (w *writer) u32(v uint32)   { w.w.U32(int(v)) }
func (w *writer) u64(v uint64)   { w.w.U64(v) }
func (w *writer) bytes(p []byte) { w.w.Bytes(p) }
func (w *writer) str(s string)   { w.w.Str(s) }
func (w *writer) out() []byte    { return w.w.Out() }

type reader struct {
	r *codec.Reader
}

func newReader(data []byte) *reader {
	// The codec budget carries the cumulative grouped-sub-header allowance
	// (maxHeaderBudget per message).
	return &reader{r: codec.NewReader(data, codec.NewBudget(maxHeaderBudget))}
}

// wireErr maps the codec sentinels onto wire's, keeping the package's
// documented error contract (errors.Is against wire.ErrTruncated /
// wire.ErrOversize) independent of the backing primitives.
func wireErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, codec.ErrTruncated):
		return ErrTruncated
	case errors.Is(err, codec.ErrOversize):
		return ErrOversize
	}
	return err
}

// takeHeaderBudget charges n bytes of decoded grouped-header material
// against the message budget.
func (r *reader) takeHeaderBudget(n int) error {
	return wireErr(r.r.Charge(n))
}

func (r *reader) u8() (byte, error) {
	v, err := r.r.U8()
	return v, wireErr(err)
}

func (r *reader) u32() (uint32, error) {
	v, err := r.r.U32()
	return v, wireErr(err)
}

func (r *reader) u64() (uint64, error) {
	v, err := r.r.U64()
	return v, wireErr(err)
}

func (r *reader) bytes() ([]byte, error) {
	b, err := r.r.Bytes(maxField)
	return b, wireErr(err)
}

func (r *reader) str() (string, error) {
	s, err := r.r.Str(maxField)
	return s, wireErr(err)
}

func (r *reader) done() error {
	if n := r.r.Remaining(); n != 0 {
		return fmt.Errorf("wire: %d trailing bytes", n)
	}
	return nil
}

// MarshalHeader encodes an ACV header.
func MarshalHeader(h *core.Header) []byte {
	var w writer
	w.u8(Version)
	writeHeaderBody(&w, h)
	return w.out()
}

func writeHeaderBody(w *writer, h *core.Header) {
	w.u32(uint32(len(h.X)))
	for _, e := range h.X {
		w.u64(uint64(e))
	}
	w.u32(uint32(len(h.Zs)))
	for _, z := range h.Zs {
		w.bytes(z)
	}
}

// UnmarshalHeader decodes an ACV header and validates its shape
// (|X| = N + 1, field elements reduced).
func UnmarshalHeader(data []byte) (*core.Header, error) {
	r := newReader(data)
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, ErrBadVersion
	}
	h, err := readHeaderBody(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return h, nil
}

func readHeaderBody(r *reader) (*core.Header, error) {
	nx, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nx > maxField/8 {
		return nil, ErrOversize
	}
	x := make(linalg.Vector, nx)
	for i := range x {
		raw, err := r.u64()
		if err != nil {
			return nil, err
		}
		if raw >= ff64.Modulus {
			return nil, fmt.Errorf("wire: X[%d] not a reduced field element", i)
		}
		x[i] = ff64.Elem(raw)
	}
	nz, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nz > maxField/core.NonceSize {
		return nil, ErrOversize
	}
	zs := make([][]byte, nz)
	for i := range zs {
		z, err := r.bytes()
		if err != nil {
			return nil, err
		}
		zs[i] = z
	}
	h := &core.Header{X: x, Zs: zs}
	if len(h.X) != len(h.Zs)+1 {
		return nil, fmt.Errorf("wire: header shape |X|=%d, N=%d", len(h.X), len(h.Zs))
	}
	return h, nil
}

// MarshalGroupedHeader encodes a grouped (§VIII-C) header. Like
// MarshalHeader for single headers, this is the standalone interchange form
// (broadcast files, CDN distribution); the broadcast codec embeds the same
// body. A direct-mode header (nil RekeyNonce — only produced by the
// UnmarshalGroupedHeader fallback for old single-header messages, hence
// always exactly one shard) re-encodes as the Version 1 message it came
// from, so decode→encode round trips stay stable; direct mode has no
// multi-shard encoding.
func MarshalGroupedHeader(g *core.GroupedHeader) []byte {
	if g.RekeyNonce == nil && len(g.Shards) == 1 {
		return MarshalHeader(g.Shards[0].Hdr)
	}
	var w writer
	w.u8(VersionGrouped)
	writeGroupedBody(&w, g)
	return w.out()
}

func writeGroupedBody(w *writer, g *core.GroupedHeader) {
	w.bytes(g.RekeyNonce)
	w.u32(uint32(len(g.Shards)))
	for _, sh := range g.Shards {
		writeHeaderBody(w, sh.Hdr)
		w.u64(uint64(sh.Wrap))
	}
}

// UnmarshalGroupedHeader decodes a grouped header. It also accepts the old
// single-header format (Version 1), returning it as a one-shard direct-mode
// grouped header, so readers upgraded to the grouped decoder keep
// understanding pre-grouping publishers.
func UnmarshalGroupedHeader(data []byte) (*core.GroupedHeader, error) {
	r := newReader(data)
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	var g *core.GroupedHeader
	switch v {
	case Version:
		h, err := readHeaderBody(r)
		if err != nil {
			return nil, err
		}
		g = &core.GroupedHeader{Shards: []core.GroupShard{{Hdr: h}}}
	case VersionGrouped:
		if g, err = readGroupedBody(r); err != nil {
			return nil, err
		}
	default:
		return nil, ErrBadVersion
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return g, nil
}

// readGroupedBody decodes a grouped header body with the hardened clamps:
// shard count bounded, every sub-header well-shaped (|X| = N + 1 via
// readHeaderBody) with uniformly NonceSize nonces, wraps reduced, and the
// cumulative decoded size charged against the message's 64 MiB budget.
func readGroupedBody(r *reader) (*core.GroupedHeader, error) {
	nonce, err := r.bytes()
	if err != nil {
		return nil, err
	}
	if len(nonce) != core.NonceSize {
		return nil, fmt.Errorf("wire: grouped rekey nonce of %d bytes, want %d", len(nonce), core.NonceSize)
	}
	ns, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ns == 0 || ns > maxGroupShards {
		return nil, ErrOversize
	}
	g := &core.GroupedHeader{RekeyNonce: nonce, Shards: make([]core.GroupShard, 0, capHint(ns))}
	for i := uint32(0); i < ns; i++ {
		h, err := readHeaderBody(r)
		if err != nil {
			return nil, err
		}
		for _, z := range h.Zs {
			if len(z) != core.NonceSize {
				return nil, fmt.Errorf("wire: grouped sub-header %d has a %d-byte nonce, want %d", i, len(z), core.NonceSize)
			}
		}
		if err := r.takeHeaderBudget(h.Size()); err != nil {
			return nil, err
		}
		raw, err := r.u64()
		if err != nil {
			return nil, err
		}
		if raw >= ff64.Modulus {
			return nil, fmt.Errorf("wire: shard %d wrap not a reduced field element", i)
		}
		g.Shards = append(g.Shards, core.GroupShard{Hdr: h, Wrap: ff64.Elem(raw)})
	}
	return g, nil
}

// MarshalBroadcast encodes a complete broadcast package. The version byte is
// VersionGrouped iff any configuration carries a grouped header; ungrouped
// broadcasts keep the original byte-identical Version 1 encoding.
func MarshalBroadcast(b *pubsub.Broadcast) []byte {
	ver := byte(Version)
	for _, ci := range b.Configs {
		if ci.Grouped != nil {
			ver = VersionGrouped
			break
		}
	}
	var w writer
	w.u8(ver)
	w.str(b.DocName)

	w.u32(uint32(len(b.Policies)))
	for _, pi := range b.Policies {
		w.str(pi.ID)
		w.u32(uint32(len(pi.CondIDs)))
		for _, c := range pi.CondIDs {
			w.str(c)
		}
	}

	w.u32(uint32(len(b.Configs)))
	for _, ci := range b.Configs {
		w.str(string(ci.Key))
		switch {
		case ci.Grouped != nil:
			w.u8(2)
			writeGroupedBody(&w, ci.Grouped)
		case ci.Header != nil:
			w.u8(1)
			writeHeaderBody(&w, ci.Header)
		default:
			w.u8(0)
		}
	}

	w.u32(uint32(len(b.Items)))
	for _, it := range b.Items {
		w.str(it.Subdoc)
		w.str(string(it.Config))
		w.bytes(it.Ciphertext)
	}
	return w.out()
}

// maxEnvelopeDepth bounds the recursion of nested OCBE sub-envelopes. The
// protocols produce depth ≤ 2 (a ≠ envelope containing two leaf envelopes).
const maxEnvelopeDepth = 4

// capHint clamps an attacker-controlled element count before it is used as
// a preallocation capacity; append grows the slice past it as real payload
// bytes arrive.
func capHint(n uint32) int {
	if n > 1024 {
		return 1024
	}
	return int(n)
}

// MarshalRegistrationBatch encodes a batched registration request: every
// (token, condition, OCBE receiver message) triple a subscriber submits in
// one round trip. Nil requests or nil fields — which the publisher rejects
// per item rather than per batch — encode as empty placeholders instead of
// panicking.
func MarshalRegistrationBatch(reqs []*pubsub.RegistrationRequest) []byte {
	var w writer
	w.u8(Version)
	w.u32(uint32(len(reqs)))
	for _, req := range reqs {
		if req == nil {
			req = &pubsub.RegistrationRequest{}
		}
		tok := req.Token
		if tok == nil {
			tok = &idtoken.Token{}
		}
		w.str(tok.Nym)
		w.str(tok.Tag)
		w.bytes(tok.Commitment)
		w.bytes(tok.Sig)
		w.str(req.CondID)
		ocbeReq := req.OCBE
		if ocbeReq == nil {
			ocbeReq = &ocbe.Request{}
		}
		writeOCBERequest(&w, ocbeReq)
	}
	return w.out()
}

func writeOCBERequest(w *writer, req *ocbe.Request) {
	w.bytes(req.Commitment)
	w.u32(uint32(len(req.Bits)))
	for _, bc := range req.Bits {
		if bc == nil { // equality sub-predicate placeholder
			w.u32(0)
			continue
		}
		w.u32(uint32(len(bc.Cs)))
		for _, c := range bc.Cs {
			w.bytes(c)
		}
	}
}

// UnmarshalRegistrationBatch decodes a batched registration request.
func UnmarshalRegistrationBatch(data []byte) ([]*pubsub.RegistrationRequest, error) {
	r := newReader(data)
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, ErrBadVersion
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, ErrOversize
	}
	out := make([]*pubsub.RegistrationRequest, 0, capHint(n))
	for i := uint32(0); i < n; i++ {
		tok := &idtoken.Token{}
		if tok.Nym, err = r.str(); err != nil {
			return nil, err
		}
		if tok.Tag, err = r.str(); err != nil {
			return nil, err
		}
		if tok.Commitment, err = r.bytes(); err != nil {
			return nil, err
		}
		if tok.Sig, err = r.bytes(); err != nil {
			return nil, err
		}
		req := &pubsub.RegistrationRequest{Token: tok}
		if req.CondID, err = r.str(); err != nil {
			return nil, err
		}
		if req.OCBE, err = readOCBERequest(r); err != nil {
			return nil, err
		}
		out = append(out, req)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

func readOCBERequest(r *reader) (*ocbe.Request, error) {
	req := &ocbe.Request{}
	var err error
	if req.Commitment, err = r.bytes(); err != nil {
		return nil, err
	}
	nb, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nb > 1<<16 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < nb; i++ {
		nc, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nc > 1<<16 {
			return nil, ErrOversize
		}
		bc := &ocbe.BitCommitments{Cs: make([][]byte, 0, capHint(nc))}
		for j := uint32(0); j < nc; j++ {
			c, err := r.bytes()
			if err != nil {
				return nil, err
			}
			bc.Cs = append(bc.Cs, c)
		}
		req.Bits = append(req.Bits, bc)
	}
	return req, nil
}

// MarshalBatchReply encodes the publisher's reply to a registration batch:
// per item either an OCBE envelope or an error message.
func MarshalBatchReply(results []pubsub.BatchResult) []byte {
	var w writer
	w.u8(Version)
	w.u32(uint32(len(results)))
	for _, res := range results {
		w.str(res.CondID)
		w.str(res.Err)
		if res.Envelope == nil {
			w.u8(0)
			continue
		}
		w.u8(1)
		writeEnvelope(&w, res.Envelope)
	}
	return w.out()
}

func writeEnvelope(w *writer, env *ocbe.Envelope) {
	w.u8(byte(env.Op))
	if env.X0 == nil {
		w.u8(0)
	} else if env.X0.Sign() >= 0 {
		w.u8(1)
		w.bytes(env.X0.Bytes())
	} else {
		w.u8(2)
		w.bytes(new(big.Int).Neg(env.X0).Bytes())
	}
	w.u32(uint32(env.Ell))
	w.bytes(env.Eta)
	w.bytes(env.C)
	w.u32(uint32(len(env.Bits)))
	for _, bp := range env.Bits {
		w.bytes(bp.C0)
		w.bytes(bp.C1)
	}
	w.u32(uint32(len(env.Sub)))
	for _, sub := range env.Sub {
		writeEnvelope(w, sub)
	}
}

// UnmarshalBatchReply decodes a registration batch reply.
func UnmarshalBatchReply(data []byte) ([]pubsub.BatchResult, error) {
	r := newReader(data)
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, ErrBadVersion
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, ErrOversize
	}
	out := make([]pubsub.BatchResult, 0, capHint(n))
	for i := uint32(0); i < n; i++ {
		var res pubsub.BatchResult
		if res.CondID, err = r.str(); err != nil {
			return nil, err
		}
		if res.Err, err = r.str(); err != nil {
			return nil, err
		}
		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch has {
		case 0:
		case 1:
			if res.Envelope, err = readEnvelope(r, 0); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wire: bad envelope presence byte %d", has)
		}
		out = append(out, res)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

func readEnvelope(r *reader, depth int) (*ocbe.Envelope, error) {
	if depth > maxEnvelopeDepth {
		return nil, fmt.Errorf("wire: envelope nesting exceeds depth %d", maxEnvelopeDepth)
	}
	env := &ocbe.Envelope{}
	op, err := r.u8()
	if err != nil {
		return nil, err
	}
	env.Op = ocbe.CompareOp(op)
	sign, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch sign {
	case 0:
	case 1, 2:
		raw, err := r.bytes()
		if err != nil {
			return nil, err
		}
		env.X0 = new(big.Int).SetBytes(raw)
		if sign == 2 {
			env.X0.Neg(env.X0)
		}
	default:
		return nil, fmt.Errorf("wire: bad X0 sign byte %d", sign)
	}
	ell, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ell > 1<<16 {
		return nil, ErrOversize
	}
	env.Ell = int(ell)
	if env.Eta, err = r.bytes(); err != nil {
		return nil, err
	}
	if env.C, err = r.bytes(); err != nil {
		return nil, err
	}
	nb, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nb > 1<<16 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < nb; i++ {
		var bp ocbe.BitPair
		if bp.C0, err = r.bytes(); err != nil {
			return nil, err
		}
		if bp.C1, err = r.bytes(); err != nil {
			return nil, err
		}
		env.Bits = append(env.Bits, bp)
	}
	ns, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ns > 16 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < ns; i++ {
		sub, err := readEnvelope(r, depth+1)
		if err != nil {
			return nil, err
		}
		env.Sub = append(env.Sub, sub)
	}
	return env, nil
}

// UnmarshalBroadcast decodes a broadcast package, accepting both the
// original single-header format and the grouped VersionGrouped format.
func UnmarshalBroadcast(data []byte) (*pubsub.Broadcast, error) {
	r := newReader(data)
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != Version && v != VersionGrouped {
		return nil, ErrBadVersion
	}
	b := &pubsub.Broadcast{}
	if b.DocName, err = r.str(); err != nil {
		return nil, err
	}

	np, err := r.u32()
	if err != nil {
		return nil, err
	}
	if np > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < np; i++ {
		var pi pubsub.PolicyInfo
		if pi.ID, err = r.str(); err != nil {
			return nil, err
		}
		nc, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nc > 1<<20 {
			return nil, ErrOversize
		}
		for j := uint32(0); j < nc; j++ {
			c, err := r.str()
			if err != nil {
				return nil, err
			}
			pi.CondIDs = append(pi.CondIDs, c)
		}
		b.Policies = append(b.Policies, pi)
	}

	ncfg, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ncfg > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < ncfg; i++ {
		var ci pubsub.ConfigInfo
		key, err := r.str()
		if err != nil {
			return nil, err
		}
		ci.Key = policy.ConfigKey(key)
		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch {
		case has == 0:
		case has == 1:
			if ci.Header, err = readHeaderBody(r); err != nil {
				return nil, err
			}
		case has == 2 && v == VersionGrouped:
			if ci.Grouped, err = readGroupedBody(r); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wire: bad header presence byte %d", has)
		}
		b.Configs = append(b.Configs, ci)
	}

	ni, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ni > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < ni; i++ {
		var it pubsub.Item
		if it.Subdoc, err = r.str(); err != nil {
			return nil, err
		}
		cfg, err := r.str()
		if err != nil {
			return nil, err
		}
		it.Config = policy.ConfigKey(cfg)
		if it.Ciphertext, err = r.bytes(); err != nil {
			return nil, err
		}
		b.Items = append(b.Items, it)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return b, nil
}
