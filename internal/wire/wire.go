// Package wire defines a deterministic, language-neutral binary encoding
// for the broadcast material of the system: ACV headers and full broadcast
// packages. The TCP transport uses Go's gob for convenience; this format is
// the stable interchange representation (e.g. for publishing broadcast
// files, CDN distribution, or non-Go subscribers) and is what Header.Size
// accounting corresponds to.
//
// All integers are big-endian. Every message starts with a one-byte format
// version. Strings and byte fields are length-prefixed with uint32.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/linalg"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
)

// Version is the current format version byte.
const Version = 1

// Errors returned by the decoders.
var (
	ErrTruncated  = errors.New("wire: truncated message")
	ErrBadVersion = errors.New("wire: unsupported format version")
	ErrOversize   = errors.New("wire: length field exceeds limits")
)

// maxField caps individual length fields to keep a corrupt length byte from
// driving huge allocations.
const maxField = 1 << 28 // 256 MiB

type writer struct {
	buf bytes.Buffer
}

func (w *writer) u8(v byte)    { w.buf.WriteByte(v) }
func (w *writer) u32(v uint32) { var b [4]byte; binary.BigEndian.PutUint32(b[:], v); w.buf.Write(b[:]) }
func (w *writer) u64(v uint64) { var b [8]byte; binary.BigEndian.PutUint64(b[:], v); w.buf.Write(b[:]) }
func (w *writer) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.buf.Write(p)
}
func (w *writer) str(s string) { w.bytes([]byte(s)) }

type reader struct {
	data []byte
	off  int
}

func (r *reader) u8() (byte, error) {
	if r.off+1 > len(r.data) {
		return 0, ErrTruncated
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > maxField {
		return nil, ErrOversize
	}
	if r.off+int(n) > len(r.data) {
		return nil, ErrTruncated
	}
	out := append([]byte(nil), r.data[r.off:r.off+int(n)]...)
	r.off += int(n)
	return out, nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func (r *reader) done() error {
	if r.off != len(r.data) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.data)-r.off)
	}
	return nil
}

// MarshalHeader encodes an ACV header.
func MarshalHeader(h *core.Header) []byte {
	var w writer
	w.u8(Version)
	writeHeaderBody(&w, h)
	return w.buf.Bytes()
}

func writeHeaderBody(w *writer, h *core.Header) {
	w.u32(uint32(len(h.X)))
	for _, e := range h.X {
		w.u64(uint64(e))
	}
	w.u32(uint32(len(h.Zs)))
	for _, z := range h.Zs {
		w.bytes(z)
	}
}

// UnmarshalHeader decodes an ACV header and validates its shape
// (|X| = N + 1, field elements reduced).
func UnmarshalHeader(data []byte) (*core.Header, error) {
	r := &reader{data: data}
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, ErrBadVersion
	}
	h, err := readHeaderBody(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return h, nil
}

func readHeaderBody(r *reader) (*core.Header, error) {
	nx, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nx > maxField/8 {
		return nil, ErrOversize
	}
	x := make(linalg.Vector, nx)
	for i := range x {
		raw, err := r.u64()
		if err != nil {
			return nil, err
		}
		if raw >= ff64.Modulus {
			return nil, fmt.Errorf("wire: X[%d] not a reduced field element", i)
		}
		x[i] = ff64.Elem(raw)
	}
	nz, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nz > maxField/core.NonceSize {
		return nil, ErrOversize
	}
	zs := make([][]byte, nz)
	for i := range zs {
		z, err := r.bytes()
		if err != nil {
			return nil, err
		}
		zs[i] = z
	}
	h := &core.Header{X: x, Zs: zs}
	if len(h.X) != len(h.Zs)+1 {
		return nil, fmt.Errorf("wire: header shape |X|=%d, N=%d", len(h.X), len(h.Zs))
	}
	return h, nil
}

// MarshalBroadcast encodes a complete broadcast package.
func MarshalBroadcast(b *pubsub.Broadcast) []byte {
	var w writer
	w.u8(Version)
	w.str(b.DocName)

	w.u32(uint32(len(b.Policies)))
	for _, pi := range b.Policies {
		w.str(pi.ID)
		w.u32(uint32(len(pi.CondIDs)))
		for _, c := range pi.CondIDs {
			w.str(c)
		}
	}

	w.u32(uint32(len(b.Configs)))
	for _, ci := range b.Configs {
		w.str(string(ci.Key))
		if ci.Header == nil {
			w.u8(0)
			continue
		}
		w.u8(1)
		writeHeaderBody(&w, ci.Header)
	}

	w.u32(uint32(len(b.Items)))
	for _, it := range b.Items {
		w.str(it.Subdoc)
		w.str(string(it.Config))
		w.bytes(it.Ciphertext)
	}
	return w.buf.Bytes()
}

// UnmarshalBroadcast decodes a broadcast package.
func UnmarshalBroadcast(data []byte) (*pubsub.Broadcast, error) {
	r := &reader{data: data}
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, ErrBadVersion
	}
	b := &pubsub.Broadcast{}
	if b.DocName, err = r.str(); err != nil {
		return nil, err
	}

	np, err := r.u32()
	if err != nil {
		return nil, err
	}
	if np > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < np; i++ {
		var pi pubsub.PolicyInfo
		if pi.ID, err = r.str(); err != nil {
			return nil, err
		}
		nc, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nc > 1<<20 {
			return nil, ErrOversize
		}
		for j := uint32(0); j < nc; j++ {
			c, err := r.str()
			if err != nil {
				return nil, err
			}
			pi.CondIDs = append(pi.CondIDs, c)
		}
		b.Policies = append(b.Policies, pi)
	}

	ncfg, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ncfg > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < ncfg; i++ {
		var ci pubsub.ConfigInfo
		key, err := r.str()
		if err != nil {
			return nil, err
		}
		ci.Key = policy.ConfigKey(key)
		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch has {
		case 0:
		case 1:
			if ci.Header, err = readHeaderBody(r); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wire: bad header presence byte %d", has)
		}
		b.Configs = append(b.Configs, ci)
	}

	ni, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ni > 1<<20 {
		return nil, ErrOversize
	}
	for i := uint32(0); i < ni; i++ {
		var it pubsub.Item
		if it.Subdoc, err = r.str(); err != nil {
			return nil, err
		}
		cfg, err := r.str()
		if err != nil {
			return nil, err
		}
		it.Config = policy.ConfigKey(cfg)
		if it.Ciphertext, err = r.bytes(); err != nil {
			return nil, err
		}
		b.Items = append(b.Items, it)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return b, nil
}
