package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"math/big"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/idtoken"
	"ppcd/internal/ocbe"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
)

func buildHeader(t *testing.T) (*core.Header, [][]core.CSS, ff64.Elem) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	rows := make([][]core.CSS, 4)
	for i := range rows {
		rows[i] = []core.CSS{ff64.New(rng.Uint64() | 1), ff64.New(rng.Uint64() | 1)}
	}
	hdr, key, err := core.Build(rows, 6)
	if err != nil {
		t.Fatal(err)
	}
	return hdr, rows, key
}

func TestHeaderRoundTrip(t *testing.T) {
	hdr, rows, key := buildHeader(t)
	enc := MarshalHeader(hdr)
	dec, err := UnmarshalHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.X) != len(hdr.X) || len(dec.Zs) != len(hdr.Zs) {
		t.Fatal("shape changed")
	}
	for i := range hdr.X {
		if dec.X[i] != hdr.X[i] {
			t.Fatal("X changed")
		}
	}
	// The decoded header still derives the key.
	k, err := core.DeriveKey(rows[0], dec)
	if err != nil || k != key {
		t.Fatalf("derivation through wire failed: %v", err)
	}
}

func TestHeaderRejectsCorruption(t *testing.T) {
	hdr, _, _ := buildHeader(t)
	enc := MarshalHeader(hdr)

	if _, err := UnmarshalHeader(nil); err != ErrTruncated {
		t.Errorf("empty: %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := UnmarshalHeader(bad); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	if _, err := UnmarshalHeader(enc[:len(enc)-3]); err == nil {
		t.Error("truncated accepted")
	}
	if _, err := UnmarshalHeader(append(append([]byte(nil), enc...), 0xAA)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Unreduced field element.
	bad = append([]byte(nil), enc...)
	for i := 5; i < 13; i++ {
		bad[i] = 0xff
	}
	if _, err := UnmarshalHeader(bad); err == nil {
		t.Error("unreduced field element accepted")
	}
	// Absurd length prefix.
	bad = append([]byte(nil), enc...)
	bad[1], bad[2], bad[3], bad[4] = 0xff, 0xff, 0xff, 0xff
	if _, err := UnmarshalHeader(bad); err == nil {
		t.Error("oversize length accepted")
	}
}

func TestHeaderShapeValidation(t *testing.T) {
	// |X| must equal N+1.
	h := &core.Header{X: make([]ff64.Elem, 3), Zs: [][]byte{{1, 2}}}
	enc := MarshalHeader(h)
	if _, err := UnmarshalHeader(enc); err == nil {
		t.Error("mismatched header shape accepted")
	}
}

func testBroadcast(t *testing.T) *pubsub.Broadcast {
	t.Helper()
	hdr, _, _ := buildHeader(t)
	return &pubsub.Broadcast{
		DocName: "EHR.xml",
		Policies: []pubsub.PolicyInfo{
			{ID: "acp3", CondIDs: []string{"role = doc"}},
			{ID: "acp4", CondIDs: []string{"role = nur", "level >= 59"}},
		},
		Configs: []pubsub.ConfigInfo{
			{Key: policy.ConfigOf("acp3", "acp4"), Header: hdr},
			{Key: policy.EmptyConfig, Header: nil},
		},
		Items: []pubsub.Item{
			{Subdoc: "Plan", Config: policy.ConfigOf("acp3", "acp4"), Ciphertext: []byte{1, 2, 3}},
			{Subdoc: "Other", Config: policy.EmptyConfig, Ciphertext: []byte{9}},
		},
	}
}

func TestBroadcastRoundTrip(t *testing.T) {
	b := testBroadcast(t)
	enc := MarshalBroadcast(b)
	dec, err := UnmarshalBroadcast(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.DocName != b.DocName {
		t.Error("doc name changed")
	}
	if len(dec.Policies) != 2 || dec.Policies[1].CondIDs[1] != "level >= 59" {
		t.Errorf("policies changed: %+v", dec.Policies)
	}
	if len(dec.Configs) != 2 {
		t.Fatal("configs changed")
	}
	if dec.Configs[0].Header == nil || dec.Configs[1].Header != nil {
		t.Error("header presence changed")
	}
	if len(dec.Items) != 2 || !bytes.Equal(dec.Items[0].Ciphertext, []byte{1, 2, 3}) {
		t.Error("items changed")
	}
	if dec.Items[0].Config != b.Items[0].Config {
		t.Error("config key changed")
	}
}

func TestBroadcastDeterministic(t *testing.T) {
	b := testBroadcast(t)
	if !bytes.Equal(MarshalBroadcast(b), MarshalBroadcast(b)) {
		t.Error("encoding not deterministic")
	}
}

func TestBroadcastRejectsCorruption(t *testing.T) {
	b := testBroadcast(t)
	enc := MarshalBroadcast(b)
	if _, err := UnmarshalBroadcast(enc[:10]); err == nil {
		t.Error("truncated accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = VersionGrouped + 1
	if _, err := UnmarshalBroadcast(bad); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	// An ungrouped broadcast re-labelled VersionGrouped still decodes (the
	// grouped format is a superset), but a grouped presence byte inside a
	// Version 1 message does not.
	relabel := append([]byte(nil), enc...)
	relabel[0] = VersionGrouped
	if _, err := UnmarshalBroadcast(relabel); err != nil {
		t.Errorf("relabelled v2: %v", err)
	}
	if _, err := UnmarshalBroadcast(append(enc, 0)); err == nil {
		t.Error("trailing accepted")
	}
}

func TestBroadcastFuzzResilience(t *testing.T) {
	// Random mutations must never panic, only error or decode cleanly.
	b := testBroadcast(t)
	enc := MarshalBroadcast(b)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		bad := append([]byte(nil), enc...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		}
		_, _ = UnmarshalBroadcast(bad) // must not panic
	}
	for trial := 0; trial < 200; trial++ {
		junk := make([]byte, rng.Intn(200))
		rng.Read(junk)
		_, _ = UnmarshalBroadcast(junk)
		_, _ = UnmarshalHeader(junk)
	}
}

func TestEndToEndThroughWire(t *testing.T) {
	// A broadcast produced by a real publisher survives the wire format and
	// still decrypts.
	// (Constructed via the pubsub test helpers would create an import cycle;
	// build a minimal real one here.)
	rows := [][]core.CSS{{ff64.New(1111)}, {ff64.New(2222)}}
	hdr, key, err := core.Build(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := MarshalHeader(hdr)
	dec, err := UnmarshalHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		k, err := core.DeriveKey(row, dec)
		if err != nil || k != key {
			t.Fatal("wire header does not derive")
		}
	}
}

func TestRegistrationBatchRoundTrip(t *testing.T) {
	// A synthetic batch covering both OCBE request shapes (equality: bare
	// commitment; inequality: bit commitments) and both envelope shapes.
	reqs := []*pubsub.RegistrationRequest{
		{
			Token:  &idtoken.Token{Nym: "pn-1", Tag: "role", Commitment: []byte{1, 2, 3}, Sig: []byte{9}},
			CondID: "role = doc",
			OCBE:   &ocbe.Request{Commitment: []byte{1, 2, 3}},
		},
		{
			Token:  &idtoken.Token{Nym: "pn-1", Tag: "level", Commitment: []byte{4, 5}, Sig: []byte{8, 7}},
			CondID: "level >= 59",
			OCBE: &ocbe.Request{
				Commitment: []byte{4, 5},
				Bits:       []*ocbe.BitCommitments{{Cs: [][]byte{{0xa}, {0xb}, {0xc}}}},
			},
		},
	}
	enc := MarshalRegistrationBatch(reqs)
	dec, err := UnmarshalRegistrationBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 {
		t.Fatalf("decoded %d requests", len(dec))
	}
	if dec[0].Token.Nym != "pn-1" || dec[0].CondID != "role = doc" || !bytes.Equal(dec[0].OCBE.Commitment, []byte{1, 2, 3}) {
		t.Errorf("request 0 mangled: %+v", dec[0])
	}
	if len(dec[1].OCBE.Bits) != 1 || len(dec[1].OCBE.Bits[0].Cs) != 3 || !bytes.Equal(dec[1].OCBE.Bits[0].Cs[2], []byte{0xc}) {
		t.Errorf("bit commitments mangled: %+v", dec[1].OCBE)
	}

	// Re-encoding the decoded batch is byte-identical (deterministic format).
	if !bytes.Equal(MarshalRegistrationBatch(dec), enc) {
		t.Error("round trip not deterministic")
	}
}

func TestBatchReplyRoundTrip(t *testing.T) {
	neg := big.NewInt(-3)
	results := []pubsub.BatchResult{
		{CondID: "role = doc", Envelope: &ocbe.Envelope{
			Op: ocbe.EQ, X0: big.NewInt(42), Eta: []byte{1}, C: []byte{2, 3},
		}},
		{CondID: "ghost = 1", Err: "pubsub: condition not in any policy"},
		{CondID: "age != 7", Envelope: &ocbe.Envelope{
			Op: ocbe.NE, X0: big.NewInt(7),
			Sub: []*ocbe.Envelope{
				{Op: ocbe.GE, X0: big.NewInt(8), Ell: 4, Eta: []byte{4}, C: []byte{5},
					Bits: []ocbe.BitPair{{C0: []byte{6}, C1: []byte{7}}}},
				{Op: ocbe.LE, X0: neg, Ell: 4, Eta: []byte{8}, C: []byte{9}},
			},
		}},
	}
	enc := MarshalBatchReply(results)
	dec, err := UnmarshalBatchReply(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 {
		t.Fatalf("decoded %d results", len(dec))
	}
	if dec[0].Envelope.X0.Int64() != 42 || dec[0].Envelope.Op != ocbe.EQ {
		t.Errorf("result 0 mangled: %+v", dec[0].Envelope)
	}
	if dec[1].Envelope != nil || dec[1].Err == "" {
		t.Errorf("error item mangled: %+v", dec[1])
	}
	sub := dec[2].Envelope.Sub
	if len(sub) != 2 || sub[1].X0.Int64() != -3 || len(sub[0].Bits) != 1 {
		t.Errorf("nested envelopes mangled: %+v", dec[2].Envelope)
	}
	if !bytes.Equal(MarshalBatchReply(dec), enc) {
		t.Error("round trip not deterministic")
	}

	// Corruption anywhere must error, never panic.
	for i := 0; i < len(enc); i += 3 {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupt byte %d: %v", i, r)
				}
			}()
			dec2, err := UnmarshalBatchReply(bad)
			_ = dec2
			_ = err
		}()
	}
}
