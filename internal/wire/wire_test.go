package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
)

func buildHeader(t *testing.T) (*core.Header, [][]core.CSS, ff64.Elem) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	rows := make([][]core.CSS, 4)
	for i := range rows {
		rows[i] = []core.CSS{ff64.New(rng.Uint64() | 1), ff64.New(rng.Uint64() | 1)}
	}
	hdr, key, err := core.Build(rows, 6)
	if err != nil {
		t.Fatal(err)
	}
	return hdr, rows, key
}

func TestHeaderRoundTrip(t *testing.T) {
	hdr, rows, key := buildHeader(t)
	enc := MarshalHeader(hdr)
	dec, err := UnmarshalHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.X) != len(hdr.X) || len(dec.Zs) != len(hdr.Zs) {
		t.Fatal("shape changed")
	}
	for i := range hdr.X {
		if dec.X[i] != hdr.X[i] {
			t.Fatal("X changed")
		}
	}
	// The decoded header still derives the key.
	k, err := core.DeriveKey(rows[0], dec)
	if err != nil || k != key {
		t.Fatalf("derivation through wire failed: %v", err)
	}
}

func TestHeaderRejectsCorruption(t *testing.T) {
	hdr, _, _ := buildHeader(t)
	enc := MarshalHeader(hdr)

	if _, err := UnmarshalHeader(nil); err != ErrTruncated {
		t.Errorf("empty: %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := UnmarshalHeader(bad); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	if _, err := UnmarshalHeader(enc[:len(enc)-3]); err == nil {
		t.Error("truncated accepted")
	}
	if _, err := UnmarshalHeader(append(append([]byte(nil), enc...), 0xAA)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Unreduced field element.
	bad = append([]byte(nil), enc...)
	for i := 5; i < 13; i++ {
		bad[i] = 0xff
	}
	if _, err := UnmarshalHeader(bad); err == nil {
		t.Error("unreduced field element accepted")
	}
	// Absurd length prefix.
	bad = append([]byte(nil), enc...)
	bad[1], bad[2], bad[3], bad[4] = 0xff, 0xff, 0xff, 0xff
	if _, err := UnmarshalHeader(bad); err == nil {
		t.Error("oversize length accepted")
	}
}

func TestHeaderShapeValidation(t *testing.T) {
	// |X| must equal N+1.
	h := &core.Header{X: make([]ff64.Elem, 3), Zs: [][]byte{{1, 2}}}
	enc := MarshalHeader(h)
	if _, err := UnmarshalHeader(enc); err == nil {
		t.Error("mismatched header shape accepted")
	}
}

func testBroadcast(t *testing.T) *pubsub.Broadcast {
	t.Helper()
	hdr, _, _ := buildHeader(t)
	return &pubsub.Broadcast{
		DocName: "EHR.xml",
		Policies: []pubsub.PolicyInfo{
			{ID: "acp3", CondIDs: []string{"role = doc"}},
			{ID: "acp4", CondIDs: []string{"role = nur", "level >= 59"}},
		},
		Configs: []pubsub.ConfigInfo{
			{Key: policy.ConfigOf("acp3", "acp4"), Header: hdr},
			{Key: policy.EmptyConfig, Header: nil},
		},
		Items: []pubsub.Item{
			{Subdoc: "Plan", Config: policy.ConfigOf("acp3", "acp4"), Ciphertext: []byte{1, 2, 3}},
			{Subdoc: "Other", Config: policy.EmptyConfig, Ciphertext: []byte{9}},
		},
	}
}

func TestBroadcastRoundTrip(t *testing.T) {
	b := testBroadcast(t)
	enc := MarshalBroadcast(b)
	dec, err := UnmarshalBroadcast(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.DocName != b.DocName {
		t.Error("doc name changed")
	}
	if len(dec.Policies) != 2 || dec.Policies[1].CondIDs[1] != "level >= 59" {
		t.Errorf("policies changed: %+v", dec.Policies)
	}
	if len(dec.Configs) != 2 {
		t.Fatal("configs changed")
	}
	if dec.Configs[0].Header == nil || dec.Configs[1].Header != nil {
		t.Error("header presence changed")
	}
	if len(dec.Items) != 2 || !bytes.Equal(dec.Items[0].Ciphertext, []byte{1, 2, 3}) {
		t.Error("items changed")
	}
	if dec.Items[0].Config != b.Items[0].Config {
		t.Error("config key changed")
	}
}

func TestBroadcastDeterministic(t *testing.T) {
	b := testBroadcast(t)
	if !bytes.Equal(MarshalBroadcast(b), MarshalBroadcast(b)) {
		t.Error("encoding not deterministic")
	}
}

func TestBroadcastRejectsCorruption(t *testing.T) {
	b := testBroadcast(t)
	enc := MarshalBroadcast(b)
	if _, err := UnmarshalBroadcast(enc[:10]); err == nil {
		t.Error("truncated accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 2
	if _, err := UnmarshalBroadcast(bad); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	if _, err := UnmarshalBroadcast(append(enc, 0)); err == nil {
		t.Error("trailing accepted")
	}
}

func TestBroadcastFuzzResilience(t *testing.T) {
	// Random mutations must never panic, only error or decode cleanly.
	b := testBroadcast(t)
	enc := MarshalBroadcast(b)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		bad := append([]byte(nil), enc...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		}
		_, _ = UnmarshalBroadcast(bad) // must not panic
	}
	for trial := 0; trial < 200; trial++ {
		junk := make([]byte, rng.Intn(200))
		rng.Read(junk)
		_, _ = UnmarshalBroadcast(junk)
		_, _ = UnmarshalHeader(junk)
	}
}

func TestEndToEndThroughWire(t *testing.T) {
	// A broadcast produced by a real publisher survives the wire format and
	// still decrypts.
	// (Constructed via the pubsub test helpers would create an import cycle;
	// build a minimal real one here.)
	rows := [][]core.CSS{{ff64.New(1111)}, {ff64.New(2222)}}
	hdr, key, err := core.Build(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := MarshalHeader(hdr)
	dec, err := UnmarshalHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		k, err := core.DeriveKey(row, dec)
		if err != nil || k != key {
			t.Fatal("wire header does not derive")
		}
	}
}
