package g2

import (
	"bytes"
	"math/big"
	"testing"

	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
)

// TestOCBECrossPath runs full OCBE envelope round trips with the sender and
// receiver on different g2 engines (fast ff128 vs polyring/ffbig reference),
// in both directions. Passing means the registration wire format is
// byte-unchanged by the fast path: commitments, bit commitments and
// envelopes produced by either engine are accepted and opened by the other.
func TestOCBECrossPath(t *testing.T) {
	if testing.Short() {
		t.Skip("reference-path jacobian arithmetic is slow; skipped in -short mode")
	}
	fast := MustPaperCurve()
	slow := fast.withoutFast()
	pFast, err := pedersen.Setup(fast, []byte("ocbe-crosspath"))
	if err != nil {
		t.Fatal(err)
	}
	pSlow, err := pedersen.Setup(slow, []byte("ocbe-crosspath"))
	if err != nil {
		t.Fatal(err)
	}
	// Setup is deterministic: both paths must derive identical bases.
	if !bytes.Equal(marshalBases(pFast), marshalBases(pSlow)) {
		t.Fatal("fast and reference Pedersen setups derived different bases")
	}
	msg := []byte("css-payload")

	combos := []struct {
		name             string
		sender, receiver *pedersen.Params
	}{
		{"fast-to-slow", pFast, pSlow},
		{"slow-to-fast", pSlow, pFast},
	}
	for _, combo := range combos {
		t.Run("eq/"+combo.name, func(t *testing.T) {
			x := big.NewInt(41)
			_, r, err := combo.receiver.CommitRandom(x)
			if err != nil {
				t.Fatal(err)
			}
			recv := ocbe.NewReceiver(combo.receiver, x, r)
			pred := ocbe.Predicate{Op: ocbe.EQ, X0: big.NewInt(41)}
			wit, req, err := recv.Prepare(pred, 0)
			if err != nil {
				t.Fatal(err)
			}
			env, err := ocbe.Compose(combo.sender, pred, 0, req, msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := recv.Open(env, wit)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Error("EQ payload mismatch across paths")
			}
		})
		t.Run("ge/"+combo.name, func(t *testing.T) {
			const ell = 5
			x := big.NewInt(13)
			_, r, err := combo.receiver.CommitRandom(x)
			if err != nil {
				t.Fatal(err)
			}
			recv := ocbe.NewReceiver(combo.receiver, x, r)
			pred := ocbe.Predicate{Op: ocbe.GE, X0: big.NewInt(9)}
			wit, req, err := recv.Prepare(pred, ell)
			if err != nil {
				t.Fatal(err)
			}
			env, err := ocbe.Compose(combo.sender, pred, ell, req, msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := recv.Open(env, wit)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Error("GE payload mismatch across paths")
			}
		})
	}
}

// TestOCBEComposeBatchCrossPath pins the pooled compose path: a batch of
// mixed EQ/GE envelopes composed through the lane-batched kernel must open
// on the reference engine, and a batch composed on the reference engine
// must open on the lane engine.
func TestOCBEComposeBatchCrossPath(t *testing.T) {
	if testing.Short() {
		t.Skip("reference-path jacobian arithmetic is slow; skipped in -short mode")
	}
	fast := MustPaperCurve()
	slow := fast.withoutFast()
	pFast, err := pedersen.Setup(fast, []byte("ocbe-crosspath"))
	if err != nil {
		t.Fatal(err)
	}
	pSlow, err := pedersen.Setup(slow, []byte("ocbe-crosspath"))
	if err != nil {
		t.Fatal(err)
	}
	const ell = 5
	msg := []byte("css-payload")
	combos := []struct {
		name             string
		sender, receiver *pedersen.Params
	}{
		{"fast-to-slow", pFast, pSlow},
		{"slow-to-fast", pSlow, pFast},
	}
	for _, combo := range combos {
		t.Run(combo.name, func(t *testing.T) {
			x := big.NewInt(13)
			_, r, err := combo.receiver.CommitRandom(x)
			if err != nil {
				t.Fatal(err)
			}
			recv := ocbe.NewReceiver(combo.receiver, x, r)
			preds := []ocbe.Predicate{
				{Op: ocbe.EQ, X0: big.NewInt(13)},
				{Op: ocbe.GE, X0: big.NewInt(9)},
				{Op: ocbe.LE, X0: big.NewInt(20)},
			}
			items := make([]ocbe.ComposeItem, len(preds))
			wits := make([]*ocbe.Witness, len(preds))
			for i, pred := range preds {
				wit, req, err := recv.Prepare(pred, ell)
				if err != nil {
					t.Fatal(err)
				}
				wits[i] = wit
				items[i] = ocbe.ComposeItem{Pred: pred, Ell: ell, Req: req, Msg: msg}
			}
			envs, errs := ocbe.ComposeBatch(combo.sender, items)
			for i := range envs {
				if errs[i] != nil {
					t.Fatalf("item %d: %v", i, errs[i])
				}
				got, err := recv.Open(envs[i], wits[i])
				if err != nil {
					t.Fatalf("item %d (%v): open: %v", i, preds[i], err)
				}
				if !bytes.Equal(got, msg) {
					t.Errorf("item %d: payload mismatch across paths", i)
				}
			}
		})
	}
}

func marshalBases(p *pedersen.Params) []byte {
	g, h := p.Bases()
	return append(p.G.Marshal(g), p.G.Marshal(h)...)
}
