package g2

// lane.go is the lane-parallel exponentiation engine. It advances L
// independent scalar multiplications in lock-step — every lane doubles on
// the same schedule, lanes add their wNAF table entry when their digit is
// non-zero — and amortizes the dominant cost of a Cantor group operation,
// the field inversion, across lanes with Montgomery's batch-inversion
// trick (ff128.InvBatch: one Fermat inversion + 3(L−1) multiplications).
//
// To make that possible the composition itself is restructured into a
// deferred-inversion form. A generic genus-2 addition (both inputs with
// monic degree-2 u, coprime; or a generic doubling) is computed
// fraction-free: the XGCD step is replaced by a pseudo-division that
// yields E1·u1 + E2·u2 = r with r a non-zero scalar, the composed
// (U, V'/r) is kept scaled by r, and the reduced u comes out as
// W = (r²·f − V'²)/U with leading coefficient −V₃² (V₃ = V'.c[3]). The
// only two inverses the lane needs — 1/r and 1/V₃ — are recovered from a
// single inverted product z = r·V₃, so a generic lane costs exactly one
// slot in the batch inversion. Non-generic shapes (degree-<2 inputs,
// non-coprime u's, V₃ = 0, i.e. a result of degree < 2) fall back to the
// full Cantor path addCantor, which also serves as the differential
// reference.
//
// The scalar entry point add() reuses the same two phases around a single
// ff128.Inv, which cuts the ~5 inversions of addCantor to one and speeds
// up every existing caller (exp, the fixed-base tables) for free.

import (
	"math/big"
	"runtime"
	"sync/atomic"

	"ppcd/internal/core"
	"ppcd/internal/ff128"
	"ppcd/internal/group"
)

// laneLanes / laneInvBatches are cheap global telemetry for the lane
// kernel: total lanes processed by LaneExp and total batched inversions
// performed. ppcd-bench -register surfaces them so CI can assert the lane
// path was actually exercised.
var (
	laneLanes      atomic.Uint64
	laneInvBatches atomic.Uint64
)

// LaneStats reports the total lanes processed by LaneExp and the total
// batch inversions performed by the lane kernel since process start.
func LaneStats() (lanes, invBatches uint64) {
	return laneLanes.Load(), laneInvBatches.Load()
}

// laneKind classifies one lane of a combine step after phase 1.
type laneKind uint8

const (
	laneDirect   laneKind = iota // result known without field arithmetic
	laneGeneric                  // deferred form: needs one inverted scalar
	laneFallback                 // non-generic shape: full Cantor path
)

// laneOp carries one lane's state between the two phases of a combine
// step. Phase 1 reads both operands completely (so the destination slice
// may alias either input), phase 2 only consumes this struct plus the
// batch-inverted z.
type laneOp struct {
	kind laneKind
	out  fdiv // laneDirect: the final result
	a, b fdiv // laneFallback: operand copies
	w    fpoly // scaled reduced u: (r²·f − V'²)/U, leading coeff −V₃²
	vp   fpoly // scaled composed v: V' = num mod U; the true v' is V'/r
	r    ff128.Elem
	v3   ff128.Elem
	z    ff128.Elem // r·V₃ — the single element this lane inverts
}

// phase1 classifies a + b and, for the generic shapes, computes everything
// up to (but not including) the field inversion. Operands are taken by
// value, so callers may overwrite them before phase2.
func (fc *fastCurve) phase1(op *laneOp, a, b fdiv) {
	f := fc.fld
	if fc.isIdentity(a) {
		op.kind, op.out = laneDirect, b
		return
	}
	if fc.isIdentity(b) {
		op.kind, op.out = laneDirect, a
		return
	}
	if a.u.deg != 2 || b.u.deg != 2 {
		op.kind, op.a, op.b = laneFallback, a, b
		return
	}
	a1, a0 := a.u.c[1], a.u.c[0]
	b1, b0 := b.u.c[1], b.u.c[0]
	lam := f.Sub(a1, b1) // t1 = u1 − u2 = lam·x + t0 (both u monic)
	t0 := f.Sub(a0, b0)

	var e1, e2 fpoly // E1·u1 + E2·u2 = r
	var r ff128.Elem
	if lam.IsZero() && t0.IsZero() {
		// u1 == u2: inverse pair, doubling, or a shared-root pair.
		vSum := fpAdd(f, a.v, b.v)
		if vSum.isZero() {
			op.kind, op.out = laneDirect, fc.identity()
			return
		}
		vDiff := fpSub(f, a.v, b.v)
		if !vDiff.isZero() {
			// v1 ≠ ±v2 over the same u: mixed-sign roots, full Cantor.
			op.kind, op.a, op.b = laneFallback, a, b
			return
		}
		// Doubling. Pseudo-XGCD of u and w = 2v: C1·u + C2·w = r.
		w := vSum
		if w.deg == 0 {
			r = w.c[0]
			e1 = fpZero()
			e2 = fpOne(f)
		} else {
			mu, mu0 := w.c[1], w.c[0]
			q0 := f.Sub(f.Mul(mu, a1), mu0)
			r = f.Sub(f.Mul(f.Mul(mu, mu), a0), f.Mul(mu0, q0))
			if r.IsZero() {
				// gcd(u, 2v) ≠ 1: a ramification point divides u.
				op.kind, op.a, op.b = laneFallback, a, b
				return
			}
			e1.deg = 0
			e1.c[0] = f.Mul(mu, mu)
			e2.deg = 1
			e2.c[0] = f.Neg(q0)
			e2.c[1] = f.Neg(mu)
		}
		// num = C1·u·v + C2·(v² + f), the r-scaled composition numerator.
		num := fpMul(f, e2, fpAdd(f, fpMul(f, a.v, a.v), fc.f))
		if !e1.isZero() {
			num = fpAdd(f, num, fpMul(f, fpMul(f, e1, a.u), a.v))
		}
		fc.phase1Finish(op, a, b, fpMul(f, a.u, a.u), num, r)
		return
	}
	if lam.IsZero() {
		// u1 − u2 is the non-zero constant t0.
		r = t0
		e1 = fpOne(f)
		e2.deg = 0
		e2.c[0] = f.Neg(f.One())
	} else {
		// deg t1 = 1: pseudo-division λ²·u2 = q·t1 + r with q = λ·x + q0.
		q0 := f.Sub(f.Mul(lam, b1), t0)
		r = f.Sub(f.Mul(f.Mul(lam, lam), b0), f.Mul(t0, q0))
		if r.IsZero() {
			// u1 and u2 share a root: non-coprime, full Cantor.
			op.kind, op.a, op.b = laneFallback, a, b
			return
		}
		// E1 = −q, E2 = q + λ².
		e1.deg = 1
		e1.c[0] = f.Neg(q0)
		e1.c[1] = f.Neg(lam)
		e2.deg = 1
		e2.c[0] = f.Add(q0, f.Mul(lam, lam))
		e2.c[1] = lam
	}
	num := fpAdd(f,
		fpMul(f, fpMul(f, e1, a.u), b.v),
		fpMul(f, fpMul(f, e2, b.u), a.v))
	fc.phase1Finish(op, a, b, fpMul(f, a.u, b.u), num, r)
}

// phase1Finish shares the tail of both generic shapes: reduce the scaled
// composition (U, num/r) once, producing W (the r²-scaled reduced u) and
// V' — all divisions here are by the monic U, so no inversions happen.
func (fc *fastCurve) phase1Finish(op *laneOp, a, b fdiv, u, num fpoly, r ff128.Elem) {
	f := fc.fld
	vp := fpMod(f, num, u)
	var v3 ff128.Elem
	if vp.deg == 3 {
		v3 = vp.c[3]
	}
	if v3.IsZero() {
		// The reduced divisor has degree < 2 — rare, let Cantor handle it.
		op.kind, op.a, op.b = laneFallback, a, b
		return
	}
	rhs := fpSub(f, fpMulScalar(f, fc.f, f.Mul(r, r)), fpMul(f, vp, vp))
	op.w = fpDivExact(f, rhs, u)
	op.vp = vp
	op.r = r
	op.v3 = v3
	op.z = f.Mul(r, v3)
	op.kind = laneGeneric
}

// phase2 finishes a generic lane given zinv = 1/(r·V₃): it recovers 1/r
// and 1/V₃ from the single inverse, normalizes W to the monic output u and
// unscales −V' mod u to the output v. No further inversions.
func (fc *fastCurve) phase2(op *laneOp, zinv ff128.Elem) fdiv {
	f := fc.fld
	rInv := f.Mul(zinv, op.v3)
	v3inv := f.Mul(zinv, op.r)
	leadInv := f.Neg(f.Mul(v3inv, v3inv)) // 1/lead(W) = −1/V₃²
	u := fpMulScalar(f, op.w, leadInv)    // monic: W.c[2]·leadInv = 1 exactly
	v := fpMulScalar(f, fpMod(f, op.vp, u), f.Neg(rInv))
	return fdiv{u: u, v: v}
}

// add is the scalar group operation behind exp and the fixed-base tables:
// the same two phases as the lane kernel around a single ff128.Inv, which
// replaces the ~5 inversions of the full Cantor path for generic inputs.
func (fc *fastCurve) add(d1, d2 fdiv) fdiv {
	var op laneOp
	fc.phase1(&op, d1, d2)
	switch op.kind {
	case laneDirect:
		return op.out
	case laneFallback:
		return fc.addCantor(d1, d2)
	}
	zinv, err := fc.fld.Inv(op.z)
	if err != nil {
		return fc.addCantor(d1, d2) // unreachable: z = r·V₃, both non-zero
	}
	return fc.phase2(&op, zinv)
}

// laneCombine computes dst[i] = a[i] + b[i] for every lane with one batch
// inversion covering all generic lanes. dst may alias a and/or b: phase 1
// copies everything it needs before any write. ops and zs are caller
// scratch (len(ops) ≥ len(dst), cap(zs) ≥ len(dst)) so the per-position
// calls inside laneExp do not allocate.
func (fc *fastCurve) laneCombine(dst, a, b []fdiv, ops []laneOp, zs []ff128.Elem) {
	zs = zs[:0]
	for i := range dst {
		fc.phase1(&ops[i], a[i], b[i])
		if ops[i].kind == laneGeneric {
			zs = append(zs, ops[i].z)
		}
	}
	if len(zs) > 0 {
		if err := fc.fld.InvBatch(zs); err != nil {
			// Unreachable (every z = r·V₃ is non-zero), but never trust a
			// rejected batch: degrade those lanes to the scalar path.
			for i := range dst {
				if ops[i].kind == laneGeneric {
					ops[i].kind = laneFallback
					ops[i].a, ops[i].b = a[i], b[i]
				}
			}
		} else {
			laneInvBatches.Add(1)
		}
	}
	k := 0
	for i := range dst {
		switch ops[i].kind {
		case laneDirect:
			dst[i] = ops[i].out
		case laneGeneric:
			dst[i] = fc.phase2(&ops[i], zs[k])
			k++
		case laneFallback:
			dst[i] = fc.addCantor(ops[i].a, ops[i].b)
		}
	}
}

// laneChunkSize caps the lanes advanced by one lock-step loop. Chunks keep
// the per-position scratch cache-resident and give core.Parallel units to
// fan out across cores when a cross-envelope batch brings hundreds of
// lanes. 64 lanes already amortize the batch inversion to ~2 muls/lane.
const laneChunkSize = 64

// laneExp computes out[i] = ks[i]·bases[i] (or ks[0]·bases[i] when a
// single scalar drives every lane) in lock-step. Digit schedules are
// deduped by *big.Int identity, so the compose path's shared y is
// decomposed once; if every base is the same divisor (the open path's η)
// one odd-multiples table is shared by all lanes.
func (fc *fastCurve) laneExp(bases []fdiv, ks []*big.Int) []fdiv {
	n := len(bases)
	out := make([]fdiv, n)
	if n == 0 {
		return out
	}
	digitsFor := make([][]int8, n)
	memo := make(map[*big.Int][]int8, 1)
	for i := 0; i < n; i++ {
		k := ks[0]
		if len(ks) > 1 {
			k = ks[i]
		}
		dg, ok := memo[k]
		if !ok {
			kk := new(big.Int).Mod(k, fc.order)
			if kk.Sign() > 0 {
				dg = wnafDigits(kk, wnafWidth)
			}
			memo[k] = dg
		}
		digitsFor[i] = dg
	}
	var sharedTab *[8]fdiv
	if n > 1 {
		same := true
		for i := 1; i < n && same; i++ {
			same = fdivEqual(bases[0], bases[i])
		}
		if same {
			var tab [8]fdiv
			tab[0] = bases[0]
			d2 := fc.add(bases[0], bases[0])
			for j := 1; j < len(tab); j++ {
				tab[j] = fc.add(tab[j-1], d2)
			}
			sharedTab = &tab
		}
	}
	chunks := (n + laneChunkSize - 1) / laneChunkSize
	if workers := runtime.GOMAXPROCS(0); chunks > 1 && workers > 1 {
		core.Parallel(workers, chunks, func(ci int) {
			lo := ci * laneChunkSize
			hi := min(lo+laneChunkSize, n)
			fc.laneExpChunk(out[lo:hi], bases[lo:hi], digitsFor[lo:hi], sharedTab)
		})
	} else {
		fc.laneExpChunk(out, bases, digitsFor, sharedTab)
	}
	return out
}

// laneExpChunk runs the lock-step double-and-add loop for one chunk of
// lanes. Two lane-combines per wNAF position — one doubling pass over
// every lane, one addition pass when any lane has a non-zero digit — so
// the whole chunk pays two batch inversions per position instead of two
// Fermat inversions per lane per position.
func (fc *fastCurve) laneExpChunk(out, bases []fdiv, digitsFor [][]int8, sharedTab *[8]fdiv) {
	n := len(bases)
	ops := make([]laneOp, n)
	zs := make([]ff128.Elem, 0, n)
	var tabs [][8]fdiv
	if sharedTab == nil {
		// Lane-batched odd-multiples tables: 8 combine passes build all n
		// tables (d, 3d, …, 15d per lane) instead of 8·n scalar adds.
		tabs = make([][8]fdiv, n)
		d2 := make([]fdiv, n)
		fc.laneCombine(d2, bases, bases, ops, zs)
		prev := make([]fdiv, n)
		copy(prev, bases)
		cur := make([]fdiv, n)
		for i := range tabs {
			tabs[i][0] = bases[i]
		}
		for j := 1; j < 8; j++ {
			fc.laneCombine(cur, prev, d2, ops, zs)
			for i := range cur {
				tabs[i][j] = cur[i]
			}
			prev, cur = cur, prev
		}
	}
	maxLen := 0
	for _, dg := range digitsFor {
		if len(dg) > maxLen {
			maxLen = len(dg)
		}
	}
	accs := out
	for i := range accs {
		accs[i] = fc.identity()
	}
	addends := make([]fdiv, n)
	ident := fc.identity()
	for pos := maxLen - 1; pos >= 0; pos-- {
		fc.laneCombine(accs, accs, accs, ops, zs)
		any := false
		for i := 0; i < n; i++ {
			dg := int8(0)
			if d := digitsFor[i]; pos < len(d) {
				dg = d[pos]
			}
			switch {
			case dg > 0:
				if sharedTab != nil {
					addends[i] = sharedTab[(dg-1)/2]
				} else {
					addends[i] = tabs[i][(dg-1)/2]
				}
				any = true
			case dg < 0:
				if sharedTab != nil {
					addends[i] = fc.neg(sharedTab[(-dg-1)/2])
				} else {
					addends[i] = fc.neg(tabs[i][(-dg-1)/2])
				}
				any = true
			default:
				addends[i] = ident
			}
		}
		if any {
			fc.laneCombine(accs, accs, addends, ops, zs)
		}
	}
}

func fdivEqual(a, b fdiv) bool {
	if a.u.deg != b.u.deg || a.v.deg != b.v.deg {
		return false
	}
	for i := 0; i <= a.u.deg; i++ {
		if !a.u.c[i].Equal(b.u.c[i]) {
			return false
		}
	}
	for i := 0; i <= a.v.deg; i++ {
		if !a.v.c[i].Equal(b.v.c[i]) {
			return false
		}
	}
	return true
}

// LaneExp implements group.LaneExpGroup: out[i] = ks[i]·bases[i], with
// len(ks) == 1 meaning one scalar drives every lane. On the fast engine
// this runs the lock-step batch-inversion kernel; curves without a fast
// engine (base field over 2¹²⁷) serve each lane through the reference
// polyring path, which doubles as the differential oracle in tests.
func (c *Curve) LaneExp(bases []group.Element, ks []*big.Int) []group.Element {
	n := len(bases)
	if len(ks) != 1 && len(ks) != n {
		panic("g2: LaneExp needs one scalar or one per lane")
	}
	out := make([]group.Element, n)
	if n == 0 {
		return out
	}
	laneLanes.Add(uint64(n))
	if c.fast == nil {
		for i := range bases {
			k := ks[0]
			if len(ks) > 1 {
				k = ks[i]
			}
			out[i] = c.Exp(bases[i], k)
		}
		return out
	}
	fb := make([]fdiv, n)
	for i := range bases {
		fb[i] = c.toFast(c.div(bases[i]))
	}
	res := c.fast.laneExp(fb, ks)
	for i := range res {
		out[i] = c.fromFast(res[i])
	}
	return out
}

var _ group.LaneExpGroup = (*Curve)(nil)
