// Package g2 implements the Jacobian group of a genus-2 hyperelliptic curve
// y² = f(x) over a prime field, with divisors in Mumford representation and
// the group law given by Cantor's algorithm. It is a from-scratch Go
// reproduction of the G2HEC C++ library the paper's experiments are built on
// (§VII): the default parameters are the paper's exact curve over
// F_q, q = 5·10²⁴ + 8503491, whose Jacobian has the 164-bit prime order
// p = 24999999999994130438600999402209463966197516075699 (Gaudry–Schost
// secure random curve).
package g2

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"ppcd/internal/ffbig"
	"ppcd/internal/group"
	"ppcd/internal/polyring"
)

// Curve is a genus-2 hyperelliptic curve y² = f(x) with f monic of degree 5
// over a prime field F_q, together with the (prime) order of its Jacobian.
// Curve implements group.Group; elements are *Divisor values.
type Curve struct {
	field *ffbig.Field
	f     polyring.Poly // right-hand side, monic degree 5
	order *big.Int      // Jacobian group order (prime)
	gen   *Divisor
	name  string
	// fast is the two-limb ff128 engine (fast.go), present whenever the base
	// field fits 127 bits — in particular for the paper's 83-bit curve. All
	// group operations dispatch to it; the polyring/ffbig code below remains
	// the reference path, pinned to the fast path by differential tests.
	fast *fastCurve
}

// Divisor is a reduced divisor in Mumford representation: a pair (u, v) with
// u monic, deg u ≤ 2, deg v < deg u and u | f − v². The identity is (1, 0).
type Divisor struct {
	u, v polyring.Poly
}

// String implements group.Element.
func (d *Divisor) String() string {
	return fmt.Sprintf("div(u=%s, v=%s)", d.u, d.v)
}

// U returns the u polynomial of the Mumford pair.
func (d *Divisor) U() polyring.Poly { return d.u }

// V returns the v polynomial of the Mumford pair.
func (d *Divisor) V() polyring.Poly { return d.v }

// mustBig parses a base-10 integer literal; for package-level constants.
func mustBig(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("g2: bad integer literal " + s)
	}
	return n
}

// Paper curve data (§VII, from Gaudry–Schost 2004).
var (
	paperQ  = mustBig("5000000000000000008503491")
	paperC3 = mustBig("2682810822839355644900736")
	paperC2 = mustBig("226591355295993102902116")
	paperC1 = mustBig("2547674715952929717899918")
	paperC0 = mustBig("4797309959708489673059350")
	// Order of the Jacobian group (prime, 164 bits).
	paperOrder = mustBig("24999999999994130438600999402209463966197516075699")
)

// NewCurve constructs the Jacobian group of y² = f(x) over F_q, where f is
// given by its coefficients in ascending degree (degree-5 coefficient is
// implicitly 1) and order is the Jacobian group order. The generator is
// derived deterministically by hashing.
func NewCurve(q *big.Int, coeffs [5]*big.Int, order *big.Int, name string) (*Curve, error) {
	field, err := ffbig.NewField(q)
	if err != nil {
		return nil, fmt.Errorf("g2: base field: %w", err)
	}
	if order == nil || !order.ProbablyPrime(32) {
		return nil, errors.New("g2: Jacobian order must be prime")
	}
	f := polyring.New(field, coeffs[0], coeffs[1], coeffs[2], coeffs[3], coeffs[4], big.NewInt(1))
	c := &Curve{field: field, f: f, order: new(big.Int).Set(order), name: name}
	c.fast = newFastCurve(q, coeffs, c.order)
	gen, err := c.HashToElement([]byte("ppcd/g2/generator/v1"))
	if err != nil {
		return nil, fmt.Errorf("g2: deriving generator: %w", err)
	}
	c.gen = gen.(*Divisor)
	return c, nil
}

// PaperCurve returns the exact curve used in the paper's experiments.
func PaperCurve() (*Curve, error) {
	return NewCurve(paperQ, [5]*big.Int{paperC0, paperC1, paperC2, paperC3, big.NewInt(0)}, paperOrder, "g2-jacobian-gaudry-schost")
}

// MustPaperCurve is PaperCurve panicking on error; the parameters are
// compile-time constants so failure is a programming error.
func MustPaperCurve() *Curve {
	c, err := PaperCurve()
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements group.Group.
func (c *Curve) Name() string { return c.name }

// Order implements group.Group.
func (c *Curve) Order() *big.Int { return new(big.Int).Set(c.order) }

// BaseField returns the field F_q the curve is defined over.
func (c *Curve) BaseField() *ffbig.Field { return c.field }

// Identity implements group.Group: the divisor (1, 0).
func (c *Curve) Identity() group.Element {
	return &Divisor{u: polyring.One(c.field), v: polyring.Zero(c.field)}
}

// Generator implements group.Group.
func (c *Curve) Generator() group.Element {
	return &Divisor{u: c.gen.u, v: c.gen.v}
}

// IsIdentity reports whether e is the neutral divisor.
func (c *Curve) IsIdentity(e group.Element) bool {
	d := c.div(e)
	return d.u.IsOne() && d.v.IsZero()
}

func (c *Curve) div(e group.Element) *Divisor {
	d, ok := e.(*Divisor)
	if !ok {
		panic(fmt.Sprintf("g2: foreign element %T", e))
	}
	return d
}

// IsValid reports whether e is a well-formed reduced divisor on this curve:
// u monic with deg u ≤ 2, deg v < deg u, and u | f − v².
func (c *Curve) IsValid(e group.Element) bool {
	d, ok := e.(*Divisor)
	if !ok {
		return false
	}
	if c.fast != nil {
		return c.fast.isValid(c.toFast(d))
	}
	if d.u.IsZero() || d.u.Deg() > 2 || d.u.Lead().Cmp(big.NewInt(1)) != 0 {
		return false
	}
	if d.v.Deg() >= d.u.Deg() && !(d.u.IsOne() && d.v.IsZero()) {
		return false
	}
	diff := c.f.Sub(d.v.Mul(d.v))
	rem, err := diff.Mod(d.u)
	return err == nil && rem.IsZero()
}

// Op implements group.Group: Cantor composition followed by reduction.
func (c *Curve) Op(a, b group.Element) group.Element {
	d1, d2 := c.div(a), c.div(b)
	if c.fast != nil {
		return c.fromFast(c.fast.add(c.toFast(d1), c.toFast(d2)))
	}
	out, err := c.cantorAdd(d1, d2)
	if err != nil {
		// Cantor's algorithm is total on valid divisors; an error indicates
		// corrupt inputs, which is a programmer error.
		panic(fmt.Sprintf("g2: Cantor addition failed: %v", err))
	}
	return out
}

// Inverse implements group.Group: (u, v) ↦ (u, −v mod u).
func (c *Curve) Inverse(a group.Element) group.Element {
	d := c.div(a)
	negV, err := d.v.Neg().Mod(d.u)
	if err != nil {
		panic(fmt.Sprintf("g2: inverse: %v", err))
	}
	return &Divisor{u: d.u, v: negV}
}

// Exp implements group.Group: windowed-NAF on the fast path, plain
// double-and-add on the reference path; negative exponents reduce modulo the
// group order.
func (c *Curve) Exp(a group.Element, k *big.Int) group.Element {
	d := c.div(a)
	if c.fast != nil {
		return c.fromFast(c.fast.exp(c.toFast(d), k))
	}
	kk := new(big.Int).Mod(k, c.order)
	result := c.Identity().(*Divisor)
	base := &Divisor{u: d.u, v: d.v}
	for i := 0; i < kk.BitLen(); i++ {
		if kk.Bit(i) == 1 {
			result = c.Op(result, base).(*Divisor)
		}
		if i+1 < kk.BitLen() {
			base = c.Op(base, base).(*Divisor)
		}
	}
	return result
}

// Equal implements group.Group.
func (c *Curve) Equal(a, b group.Element) bool {
	d1, d2 := c.div(a), c.div(b)
	return d1.u.Equal(d2.u) && d1.v.Equal(d2.v)
}

// cantorAdd computes the reduced sum of two reduced divisors via Cantor's
// algorithm (composition + reduction).
func (c *Curve) cantorAdd(d1, d2 *Divisor) (*Divisor, error) {
	// Composition.
	// d1' = gcd(u1, u2) = e1·u1 + e2·u2
	g1, e1, e2, err := polyring.XGCD(d1.u, d2.u)
	if err != nil {
		return nil, err
	}
	// d = gcd(d1', v1+v2) = c1·d1' + c2·(v1+v2)
	vSum := d1.v.Add(d2.v)
	d, c1, c2, err := polyring.XGCD(g1, vSum)
	if err != nil {
		return nil, err
	}
	s1 := c1.Mul(e1)
	s2 := c1.Mul(e2)
	s3 := c2

	u, err := d1.u.Mul(d2.u).Div(d.Mul(d))
	if err != nil {
		return nil, fmt.Errorf("composing u: %w", err)
	}
	// v = (s1·u1·v2 + s2·u2·v1 + s3·(v1·v2 + f)) / d  mod u
	num := s1.Mul(d1.u).Mul(d2.v).
		Add(s2.Mul(d2.u).Mul(d1.v)).
		Add(s3.Mul(d1.v.Mul(d2.v).Add(c.f)))
	vPre, err := num.Div(d)
	if err != nil {
		return nil, fmt.Errorf("composing v: %w", err)
	}
	v, err := vPre.Mod(u)
	if err != nil {
		return nil, err
	}

	// Reduction: repeat until deg u ≤ genus (= 2).
	for u.Deg() > 2 {
		uNext, err := c.f.Sub(v.Mul(v)).Div(u)
		if err != nil {
			return nil, fmt.Errorf("reducing u: %w", err)
		}
		uNext = uNext.Monic()
		vNext, err := v.Neg().Mod(uNext)
		if err != nil {
			return nil, err
		}
		u, v = uNext, vNext
	}
	u = u.Monic()
	return &Divisor{u: u, v: v}, nil
}

// elemLen is the byte length of one base-field element encoding.
func (c *Curve) elemLen() int { return (c.field.Bits() + 7) / 8 }

// Marshal implements group.Group. Encoding: one byte deg(u), then deg(u)
// field elements for u's non-leading coefficients (u is monic), then deg(u)
// field elements for v's coefficients (zero-padded). The identity encodes as
// the single byte 0.
func (c *Curve) Marshal(a group.Element) []byte {
	d := c.div(a)
	n := c.elemLen()
	degU := d.u.Deg()
	out := make([]byte, 1+2*degU*n)
	out[0] = byte(degU)
	for i := 0; i < degU; i++ {
		d.u.Coeff(i).FillBytes(out[1+i*n : 1+(i+1)*n])
	}
	off := 1 + degU*n
	for i := 0; i < degU; i++ {
		d.v.Coeff(i).FillBytes(out[off+i*n : off+(i+1)*n])
	}
	return out
}

// Unmarshal implements group.Group and validates that the decoded pair is a
// reduced divisor on the curve.
func (c *Curve) Unmarshal(data []byte) (group.Element, error) {
	if len(data) < 1 {
		return nil, errors.New("g2: empty encoding")
	}
	degU := int(data[0])
	if degU > 2 {
		return nil, fmt.Errorf("g2: invalid u degree %d", degU)
	}
	n := c.elemLen()
	if len(data) != 1+2*degU*n {
		return nil, fmt.Errorf("g2: encoding length %d, want %d", len(data), 1+2*degU*n)
	}
	uCoeffs := make([]*big.Int, degU+1)
	for i := 0; i < degU; i++ {
		uCoeffs[i] = new(big.Int).SetBytes(data[1+i*n : 1+(i+1)*n])
		if !c.field.Contains(uCoeffs[i]) {
			return nil, errors.New("g2: u coefficient out of field")
		}
	}
	uCoeffs[degU] = big.NewInt(1)
	off := 1 + degU*n
	vCoeffs := make([]*big.Int, degU)
	for i := 0; i < degU; i++ {
		vCoeffs[i] = new(big.Int).SetBytes(data[off+i*n : off+(i+1)*n])
		if !c.field.Contains(vCoeffs[i]) {
			return nil, errors.New("g2: v coefficient out of field")
		}
	}
	d := &Divisor{u: polyring.New(c.field, uCoeffs...), v: polyring.New(c.field, vCoeffs...)}
	if !c.IsValid(d) {
		return nil, errors.New("g2: encoding is not a divisor on the curve")
	}
	return d, nil
}

// HashToElement implements group.Group: it maps the seed to an x-coordinate,
// increments a counter until f(x) is a quadratic residue, and returns the
// degree-one divisor of the point (x, √f(x)). The discrete logarithm of the
// result with respect to any other element is unknown, as required for
// Pedersen's second base.
func (c *Curve) HashToElement(seed []byte) (group.Element, error) {
	for ctr := uint32(0); ctr < 1<<16; ctr++ {
		h := sha256.New()
		h.Write([]byte("ppcd/g2/hash-to-element/v1"))
		h.Write(seed)
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		digest := h.Sum(nil)
		// Two SHA-256 blocks give > 2·83 bits, enough for negligible bias.
		h2 := sha256.Sum256(append(digest, 0x01))
		wide := new(big.Int).SetBytes(append(digest, h2[:]...))
		x := c.field.Reduce(wide)
		fx := c.f.Eval(x)
		if fx.Sign() == 0 {
			continue // avoid 2-torsion points
		}
		y, err := c.field.Sqrt(fx)
		if err != nil {
			continue // not a QR; try next counter
		}
		// Canonical y: take the smaller of y and q−y for determinism.
		alt := c.field.Neg(y)
		if alt.Cmp(y) < 0 {
			y = alt
		}
		u := polyring.New(c.field, c.field.Neg(x), big.NewInt(1)) // X − x
		v := polyring.Constant(c.field, y)
		return &Divisor{u: u, v: v}, nil
	}
	return nil, errors.New("g2: hash-to-element failed to find a point")
}

var _ group.Group = (*Curve)(nil)
