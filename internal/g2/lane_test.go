package g2

import (
	"bytes"
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"

	"ppcd/internal/group"
)

// TestLaneExpDifferential pins the lane kernel to the reference engine:
// random lane counts, random scalars of both residue classes (including
// negative and zero), per-lane and shared-scalar modes, identity and
// degree-1 (degenerate) bases. Every lane must marshal byte-identically to
// the reference result — the property the envelope wire format relies on.
func TestLaneExpDifferential(t *testing.T) {
	c := MustPaperCurve()
	slow := c.withoutFast()
	rng := mrand.New(mrand.NewSource(7))

	degenerate, err := c.HashToElement([]byte("lane/degenerate-base"))
	if err != nil {
		t.Fatal(err)
	}
	if d := degenerate.(*Divisor); d.u.Deg() != 1 {
		t.Fatalf("expected a degree-1 divisor from HashToElement, got deg %d", d.u.Deg())
	}

	for round := 0; round < 8; round++ {
		n := 1 + rng.Intn(9)
		shared := round%2 == 0
		bases := make([]group.Element, n)
		ks := make([]*big.Int, 0, n)
		if shared {
			k, err := rand.Int(rand.Reader, c.Order())
			if err != nil {
				t.Fatal(err)
			}
			ks = append(ks, k)
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				bases[i] = c.Identity()
			case 1:
				bases[i] = degenerate
			default:
				bases[i] = randDivisor(t, slow)
			}
			if !shared {
				k, err := rand.Int(rand.Reader, c.Order())
				if err != nil {
					t.Fatal(err)
				}
				switch rng.Intn(5) {
				case 0:
					k.Neg(k) // negative residue class
				case 1:
					k.SetInt64(0)
				case 2:
					k.Add(k, c.Order()) // above-order residue class
				}
				ks = append(ks, k)
			}
		}
		got := c.LaneExp(bases, ks)
		if len(got) != n {
			t.Fatalf("LaneExp returned %d results for %d lanes", len(got), n)
		}
		for i := 0; i < n; i++ {
			k := ks[0]
			if !shared {
				k = ks[i]
			}
			want := slow.Exp(bases[i], k)
			if !c.Equal(got[i], want) {
				t.Fatalf("round %d lane %d: LaneExp=%v want %v (base=%v k=%v shared=%v)",
					round, i, got[i], want, bases[i], k, shared)
			}
			if !bytes.Equal(c.Marshal(got[i]), slow.Marshal(want)) {
				t.Fatalf("round %d lane %d: lane result marshals differently from reference", round, i)
			}
		}
	}
}

// TestLaneExpSharedBase exercises the shared-table path (every lane the
// same base, per-lane scalars) — the shape of the subscriber's openBitwise.
func TestLaneExpSharedBase(t *testing.T) {
	c := MustPaperCurve()
	slow := c.withoutFast()
	base := randDivisor(t, slow)
	const n = 7
	bases := make([]group.Element, n)
	ks := make([]*big.Int, n)
	for i := range bases {
		bases[i] = base
		k, err := rand.Int(rand.Reader, c.Order())
		if err != nil {
			t.Fatal(err)
		}
		ks[i] = k
	}
	got := c.LaneExp(bases, ks)
	for i := range got {
		if want := slow.Exp(base, ks[i]); !c.Equal(got[i], want) {
			t.Fatalf("shared-base lane %d: got %v want %v", i, got[i], want)
		}
	}
}

// TestLaneExpReferenceOracle runs LaneExp on a curve without the fast
// engine: the polyring path must serve every lane.
func TestLaneExpReferenceOracle(t *testing.T) {
	slow := MustPaperCurve().withoutFast()
	a := randDivisor(t, slow)
	k, err := rand.Int(rand.Reader, slow.Order())
	if err != nil {
		t.Fatal(err)
	}
	got := slow.LaneExp([]group.Element{a, slow.Identity()}, []*big.Int{k})
	if !slow.Equal(got[0], slow.Exp(a, k)) || !slow.IsIdentity(got[1]) {
		t.Fatal("reference-path LaneExp disagrees with Exp")
	}
}

// TestLaneStatsCounters checks the lane telemetry moves when the kernel
// runs — the -register bench and CI assert on these counters.
func TestLaneStatsCounters(t *testing.T) {
	c := MustPaperCurve()
	slow := c.withoutFast()
	lanes0, inv0 := LaneStats()
	bases := []group.Element{randDivisor(t, slow), randDivisor(t, slow)}
	k, err := rand.Int(rand.Reader, c.Order())
	if err != nil {
		t.Fatal(err)
	}
	c.LaneExp(bases, []*big.Int{k})
	lanes1, inv1 := LaneStats()
	if lanes1 != lanes0+2 {
		t.Fatalf("lane counter: got %d want %d", lanes1, lanes0+2)
	}
	if inv1 <= inv0 {
		t.Fatalf("batch-inversion counter did not advance (%d -> %d)", inv0, inv1)
	}
}

// TestOneInversionAddDifferential pins the deferred-inversion scalar add
// directly against the full Cantor path on the fast engine's own fdiv
// representation, covering the generic add, the doubling branch and the
// inverse-pair shortcut.
func TestOneInversionAddDifferential(t *testing.T) {
	c := MustPaperCurve()
	slow := c.withoutFast()
	fc := c.fast
	for i := 0; i < 40; i++ {
		a := c.toFast(randDivisor(t, slow))
		b := c.toFast(randDivisor(t, slow))
		pairs := [][2]fdiv{{a, b}, {a, a}, {a, fc.neg(a)}, {fc.identity(), b}}
		for _, pr := range pairs {
			got := fc.add(pr[0], pr[1])
			want := fc.addCantor(pr[0], pr[1])
			if !fdivEqual(got, want) {
				t.Fatalf("one-inversion add diverges from Cantor:\n a=%v\n b=%v", pr[0], pr[1])
			}
		}
	}
}
