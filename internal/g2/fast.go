package g2

// This file is the fast engine behind the paper curve: Cantor's algorithm
// re-implemented over the fixed-width two-limb field of package ff128, with
// array-backed fixed-degree polynomials instead of polyring's big.Int
// slices. Every polynomial lives on the stack; a full Cantor addition
// performs zero heap allocations. On top of it sit windowed-NAF scalar
// multiplication for arbitrary bases and precomputed fixed-base tables for
// the long-lived bases (the Jacobian generator and Pedersen's g and h).
//
// The polyring/ffbig implementation in g2.go remains the reference: the two
// paths implement the identical algorithm and are pinned together by
// differential tests (fast_test.go), and curves whose base field exceeds
// 2¹²⁷ bits fall back to it transparently.

import (
	"math/big"

	"ppcd/internal/ff128"
	"ppcd/internal/group"
	"ppcd/internal/polyring"
)

// fpCap bounds the coefficient count of an intermediate polynomial. Genus-2
// Cantor needs degree ≤ 6 for every named intermediate (num, f − v²); the
// headroom to 12 covers every transient product inside XGCD.
const fpCap = 13

// fpoly is a fixed-capacity polynomial over ff128: coefficients in
// ascending degree, deg = -1 for the zero polynomial. Entries above deg are
// zero by construction.
type fpoly struct {
	deg int
	c   [fpCap]ff128.Elem
}

func fpZero() fpoly { return fpoly{deg: -1} }

func fpOne(f *ff128.Field) fpoly {
	var p fpoly
	p.c[0] = f.One()
	return p
}

func (p *fpoly) isZero() bool { return p.deg < 0 }

func (p *fpoly) isOne(f *ff128.Field) bool {
	return p.deg == 0 && p.c[0].Equal(f.One())
}

func fpTrim(p *fpoly) {
	for p.deg >= 0 && p.c[p.deg].IsZero() {
		p.c[p.deg] = ff128.Elem{}
		p.deg--
	}
}

func fpAdd(f *ff128.Field, a, b fpoly) fpoly {
	var out fpoly
	n := a.deg
	if b.deg > n {
		n = b.deg
	}
	out.deg = n
	for i := 0; i <= n; i++ {
		var av, bv ff128.Elem
		if i <= a.deg {
			av = a.c[i]
		}
		if i <= b.deg {
			bv = b.c[i]
		}
		out.c[i] = f.Add(av, bv)
	}
	fpTrim(&out)
	return out
}

func fpSub(f *ff128.Field, a, b fpoly) fpoly {
	var out fpoly
	n := a.deg
	if b.deg > n {
		n = b.deg
	}
	out.deg = n
	for i := 0; i <= n; i++ {
		var av, bv ff128.Elem
		if i <= a.deg {
			av = a.c[i]
		}
		if i <= b.deg {
			bv = b.c[i]
		}
		out.c[i] = f.Sub(av, bv)
	}
	fpTrim(&out)
	return out
}

func fpNeg(f *ff128.Field, a fpoly) fpoly {
	out := a
	for i := 0; i <= a.deg; i++ {
		out.c[i] = f.Neg(a.c[i])
	}
	return out
}

func fpMul(f *ff128.Field, a, b fpoly) fpoly {
	var out fpoly
	out.deg = -1
	if a.deg < 0 || b.deg < 0 {
		return out
	}
	n := a.deg + b.deg
	if n >= fpCap {
		panic("g2: fpoly product exceeds fixed capacity")
	}
	out.deg = n
	for i := 0; i <= a.deg; i++ {
		ai := a.c[i]
		if ai.IsZero() {
			continue
		}
		for j := 0; j <= b.deg; j++ {
			out.c[i+j] = f.Add(out.c[i+j], f.Mul(ai, b.c[j]))
		}
	}
	fpTrim(&out)
	return out
}

func fpMulScalar(f *ff128.Field, a fpoly, s ff128.Elem) fpoly {
	var out fpoly
	out.deg = -1
	if a.deg < 0 || s.IsZero() {
		return out
	}
	out.deg = a.deg
	for i := 0; i <= a.deg; i++ {
		out.c[i] = f.Mul(a.c[i], s)
	}
	fpTrim(&out)
	return out
}

// fpDivMod returns quotient and remainder of a by b (b must be non-zero):
// a = b·quo + rem with deg rem < deg b.
func fpDivMod(f *ff128.Field, a, b fpoly) (quo, rem fpoly) {
	if b.deg < 0 {
		panic("g2: fpoly division by zero")
	}
	rem = a
	quo.deg = -1
	if a.deg < b.deg {
		return
	}
	lead := b.c[b.deg]
	monic := lead.Equal(f.One())
	var leadInv ff128.Elem
	if !monic {
		var err error
		leadInv, err = f.Inv(lead)
		if err != nil {
			panic("g2: unreachable: zero leading coefficient") // b is trimmed
		}
	}
	quo.deg = a.deg - b.deg
	for d := a.deg; d >= b.deg; d-- {
		c := rem.c[d]
		if c.IsZero() {
			continue
		}
		factor := c
		if !monic {
			factor = f.Mul(c, leadInv)
		}
		quo.c[d-b.deg] = factor
		for j := 0; j <= b.deg; j++ {
			k := d - b.deg + j
			rem.c[k] = f.Sub(rem.c[k], f.Mul(factor, b.c[j]))
		}
	}
	// All coefficients at or above deg b are eliminated now.
	for i := b.deg; i <= rem.deg && i < fpCap; i++ {
		rem.c[i] = ff128.Elem{}
	}
	rem.deg = b.deg - 1
	fpTrim(&rem)
	fpTrim(&quo)
	return
}

// fpDivExact divides a by b and panics if the division leaves a remainder;
// Cantor's algorithm performs exact divisions only.
func fpDivExact(f *ff128.Field, a, b fpoly) fpoly {
	quo, rem := fpDivMod(f, a, b)
	if !rem.isZero() {
		panic("g2: non-exact fpoly division in Cantor's algorithm")
	}
	return quo
}

func fpMod(f *ff128.Field, a, b fpoly) fpoly {
	_, rem := fpDivMod(f, a, b)
	return rem
}

func fpMonic(f *ff128.Field, a fpoly) fpoly {
	if a.deg < 0 || a.c[a.deg].Equal(f.One()) {
		return a
	}
	inv, err := f.Inv(a.c[a.deg])
	if err != nil {
		panic("g2: unreachable: zero leading coefficient")
	}
	return fpMulScalar(f, a, inv)
}

// fpXGCD returns (d, s, t) with d = gcd(a, b) monic and s·a + t·b = d.
func fpXGCD(f *ff128.Field, a, b fpoly) (d, s, t fpoly) {
	r0, r1 := a, b
	s0, s1 := fpOne(f), fpZero()
	t0, t1 := fpZero(), fpOne(f)
	for r1.deg >= 0 {
		quo, rem := fpDivMod(f, r0, r1)
		r0, r1 = r1, rem
		s0, s1 = s1, fpSub(f, s0, fpMul(f, quo, s1))
		t0, t1 = t1, fpSub(f, t0, fpMul(f, quo, t1))
	}
	if r0.deg < 0 {
		return r0, s0, t0
	}
	lead := r0.c[r0.deg]
	if lead.Equal(f.One()) {
		return r0, s0, t0
	}
	inv, err := f.Inv(lead)
	if err != nil {
		panic("g2: unreachable: zero leading coefficient")
	}
	return fpMulScalar(f, r0, inv), fpMulScalar(f, s0, inv), fpMulScalar(f, t0, inv)
}

// fdiv is a reduced divisor in Mumford representation over the fast field.
type fdiv struct {
	u, v fpoly
}

// fastCurve is the ff128 engine for one curve: the base field, the
// right-hand side f, and the Jacobian order.
type fastCurve struct {
	fld   *ff128.Field
	f     fpoly // monic, degree 5
	order *big.Int
}

// newFastCurve builds the fast engine; it returns nil when the base field
// does not fit two limbs (the curve then stays on the reference path).
func newFastCurve(q *big.Int, coeffs [5]*big.Int, order *big.Int) *fastCurve {
	if q.BitLen() > ff128.MaxBits {
		return nil
	}
	fld, err := ff128.NewField(q)
	if err != nil {
		return nil
	}
	fc := &fastCurve{fld: fld, order: order}
	fc.f.deg = 5
	for i, c := range coeffs {
		fc.f.c[i] = fld.FromBig(c)
	}
	fc.f.c[5] = fld.One()
	return fc
}

func (fc *fastCurve) identity() fdiv {
	return fdiv{u: fpOne(fc.fld), v: fpZero()}
}

func (fc *fastCurve) isIdentity(d fdiv) bool {
	return d.u.isOne(fc.fld) && d.v.isZero()
}

// neg returns the group inverse (u, −v mod u); deg v < deg u always holds
// for reduced divisors, so the mod is a plain coefficient negation.
func (fc *fastCurve) neg(d fdiv) fdiv {
	return fdiv{u: d.u, v: fpNeg(fc.fld, d.v)}
}

// addCantor is Cantor composition + reduction, the exact algorithm of
// (*Curve).cantorAdd ported to fixed-width arithmetic. It pays ~5 field
// inversions per call (inside fpXGCD / fpDivMod / fpMonic) and serves as
// the fallback for the non-generic shapes the one-inversion path in
// lane.go does not cover — and as its in-package differential reference.
func (fc *fastCurve) addCantor(d1, d2 fdiv) fdiv {
	if fc.isIdentity(d1) {
		return d2
	}
	if fc.isIdentity(d2) {
		return d1
	}
	f := fc.fld

	// Composition.
	g1, e1, e2 := fpXGCD(f, d1.u, d2.u)
	vSum := fpAdd(f, d1.v, d2.v)
	d, c1, c2 := fpXGCD(f, g1, vSum)
	s1 := fpMul(f, c1, e1)
	s2 := fpMul(f, c1, e2)
	s3 := c2

	u := fpDivExact(f, fpMul(f, d1.u, d2.u), fpMul(f, d, d))
	// num = s1·u1·v2 + s2·u2·v1 + s3·(v1·v2 + f)
	num := fpMul(f, fpMul(f, s1, d1.u), d2.v)
	num = fpAdd(f, num, fpMul(f, fpMul(f, s2, d2.u), d1.v))
	num = fpAdd(f, num, fpMul(f, s3, fpAdd(f, fpMul(f, d1.v, d2.v), fc.f)))
	vPre := fpDivExact(f, num, d)
	v := fpMod(f, vPre, u)

	// Reduction: repeat until deg u ≤ genus (= 2).
	for u.deg > 2 {
		uNext := fpMonic(f, fpDivExact(f, fpSub(f, fc.f, fpMul(f, v, v)), u))
		v = fpMod(f, fpNeg(f, v), uNext)
		u = uNext
	}
	u = fpMonic(f, u)
	return fdiv{u: u, v: v}
}

// wnafWidth is the window width for variable-base scalar multiplication:
// digits ±1, ±3, …, ±15 give an average of one addition per six doublings
// with an 8-entry table.
const wnafWidth = 5

// wnafDigits returns the width-w NAF of k > 0, least significant digit
// first.
func wnafDigits(k *big.Int, w uint) []int8 {
	d := new(big.Int).Set(k)
	out := make([]int8, 0, d.BitLen()+1)
	mod := int64(1) << w
	half := mod >> 1
	window := big.NewInt(mod - 1)
	t := new(big.Int)
	for d.Sign() > 0 {
		if d.Bit(0) == 1 {
			r := t.And(d, window).Int64()
			if r >= half {
				r -= mod
			}
			out = append(out, int8(r))
			d.Sub(d, t.SetInt64(r))
		} else {
			out = append(out, 0)
		}
		d.Rsh(d, 1)
	}
	return out
}

// exp computes k·d by windowed-NAF double-and-add. k may be any integer;
// it is reduced modulo the Jacobian order first.
func (fc *fastCurve) exp(d fdiv, k *big.Int) fdiv {
	kk := new(big.Int).Mod(k, fc.order)
	if kk.Sign() == 0 || fc.isIdentity(d) {
		return fc.identity()
	}
	// Odd multiples d, 3d, …, 15d.
	var tab [8]fdiv
	tab[0] = d
	d2 := fc.add(d, d)
	for i := 1; i < len(tab); i++ {
		tab[i] = fc.add(tab[i-1], d2)
	}
	digits := wnafDigits(kk, wnafWidth)
	acc := fc.identity()
	for i := len(digits) - 1; i >= 0; i-- {
		if !fc.isIdentity(acc) {
			acc = fc.add(acc, acc)
		}
		if dg := digits[i]; dg > 0 {
			acc = fc.add(acc, tab[(dg-1)/2])
		} else if dg < 0 {
			acc = fc.add(acc, fc.neg(tab[(-dg-1)/2]))
		}
	}
	return acc
}

// isValid is the fast-path divisor check behind (*Curve).IsValid: u monic of
// degree ≤ 2, deg v < deg u (or the identity), and u | f − v².
func (fc *fastCurve) isValid(d fdiv) bool {
	f := fc.fld
	if d.u.deg < 0 || d.u.deg > 2 || !d.u.c[d.u.deg].Equal(f.One()) {
		return false
	}
	if d.v.deg >= d.u.deg && !(d.u.isOne(f) && d.v.isZero()) {
		return false
	}
	diff := fpSub(f, fc.f, fpMul(f, d.v, d.v))
	rem := fpMod(f, diff, d.u)
	return rem.isZero()
}

// --- conversions between the public Divisor form and the fast form ---

func (c *Curve) toFast(d *Divisor) fdiv {
	fld := c.fast.fld
	var out fdiv
	out.u.deg = d.u.Deg()
	for i := 0; i <= out.u.deg; i++ {
		out.u.c[i] = fld.FromBig(d.u.Coeff(i))
	}
	out.v.deg = d.v.Deg()
	for i := 0; i <= out.v.deg; i++ {
		out.v.c[i] = fld.FromBig(d.v.Coeff(i))
	}
	return out
}

func (c *Curve) fromFast(d fdiv) *Divisor {
	fld := c.fast.fld
	uc := make([]*big.Int, d.u.deg+1)
	for i := range uc {
		uc[i] = fld.ToBig(d.u.c[i])
	}
	vc := make([]*big.Int, d.v.deg+1)
	for i := range vc {
		vc[i] = fld.ToBig(d.v.c[i])
	}
	return &Divisor{u: polyring.New(c.field, uc...), v: polyring.New(c.field, vc...)}
}

// --- precomputed fixed-base exponentiation (group.FixedBase) ---

// fixedBaseWindow is the digit width of the fixed-base tables: 4 bits per
// window means ⌈orderBits/4⌉ windows of 15 precomputed multiples each, and
// an exponentiation is just one table lookup + Cantor addition per window —
// no doublings at all.
const fixedBaseWindow = 4

// fixedBase is a precomputed table for one long-lived base divisor. It is
// immutable after construction and safe for concurrent use by the batch
// registration worker pool.
type fixedBase struct {
	c   *Curve
	win [][15]fdiv // win[i][d-1] = d·2^(4i)·base
}

// NewFixedBase implements group.FixedBaseGroup: it returns a precomputed
// exponentiation table for the given base, built once (≈16 group operations
// per 4 exponent bits) and amortized across every later Exp.
func (c *Curve) NewFixedBase(base group.Element) group.FixedBase {
	d := c.div(base)
	if c.fast == nil {
		return &slowFixedBase{c: c, base: &Divisor{u: d.u, v: d.v}}
	}
	nwin := (c.order.BitLen() + fixedBaseWindow - 1) / fixedBaseWindow
	t := &fixedBase{c: c, win: make([][15]fdiv, nwin)}
	cur := c.toFast(d)
	for i := 0; i < nwin; i++ {
		t.win[i][0] = cur
		for j := 1; j < 15; j++ {
			t.win[i][j] = c.fast.add(t.win[i][j-1], cur)
		}
		cur = c.fast.add(t.win[i][14], cur) // 16·cur
	}
	return t
}

// Exp implements group.FixedBase.
func (t *fixedBase) Exp(k *big.Int) group.Element {
	fc := t.c.fast
	kk := new(big.Int).Mod(k, t.c.order)
	acc := fc.identity()
	for i := range t.win {
		d := int(kk.Bit(4*i)) | int(kk.Bit(4*i+1))<<1 | int(kk.Bit(4*i+2))<<2 | int(kk.Bit(4*i+3))<<3
		if d != 0 {
			acc = fc.add(acc, t.win[i][d-1])
		}
	}
	return t.c.fromFast(acc)
}

// slowFixedBase is the fallback table for curves without a fast engine: it
// delegates to the generic Exp. (Only reachable for base fields over 2¹²⁷.)
type slowFixedBase struct {
	c    *Curve
	base *Divisor
}

// Exp implements group.FixedBase.
func (t *slowFixedBase) Exp(k *big.Int) group.Element { return t.c.Exp(t.base, k) }

var _ group.FixedBaseGroup = (*Curve)(nil)
