package g2

import (
	"math/big"
	"testing"

	"ppcd/internal/group"
)

// testCurve returns the paper curve, shared across tests (construction does
// a hash-to-point search, so build it once).
var testCurve = MustPaperCurve()

func TestPaperCurveParameters(t *testing.T) {
	c := testCurve
	if c.BaseField().Bits() != 83 {
		t.Errorf("base field bits = %d, want 83", c.BaseField().Bits())
	}
	// The paper calls this a "164-bit" prime; its exact bit length is 165
	// (log2(2.5·10^49) ≈ 164.09).
	if c.Order().BitLen() != 165 {
		t.Errorf("order bits = %d, want 165", c.Order().BitLen())
	}
	if !c.Order().ProbablyPrime(32) {
		t.Error("order not prime")
	}
}

func TestGeneratorValid(t *testing.T) {
	g := testCurve.Generator()
	if !testCurve.IsValid(g) {
		t.Fatal("generator is not a valid divisor")
	}
	if testCurve.IsIdentity(g) {
		t.Fatal("generator is the identity")
	}
}

func TestGroupOrderAnnihilates(t *testing.T) {
	// The strongest validation of the transcribed curve data: g^p must be
	// the identity for the paper's claimed Jacobian order p.
	g := testCurve.Generator()
	gp := testCurve.Exp(g, testCurve.Order())
	if !testCurve.IsIdentity(gp) {
		t.Fatal("g^order != identity: curve data or Cantor arithmetic wrong")
	}
}

func TestIdentityLaws(t *testing.T) {
	c := testCurve
	g := c.Generator()
	id := c.Identity()
	if !c.Equal(c.Op(g, id), g) {
		t.Error("g·1 != g")
	}
	if !c.Equal(c.Op(id, g), g) {
		t.Error("1·g != g")
	}
	if !c.Equal(c.Op(id, id), id) {
		t.Error("1·1 != 1")
	}
}

func TestInverse(t *testing.T) {
	c := testCurve
	g := c.Generator()
	if !c.IsIdentity(c.Op(g, c.Inverse(g))) {
		t.Error("g·g⁻¹ != 1")
	}
	g2 := c.Op(g, g)
	if !c.IsIdentity(c.Op(g2, c.Inverse(g2))) {
		t.Error("(g²)·(g²)⁻¹ != 1")
	}
}

func TestAssociativityAndCommutativity(t *testing.T) {
	c := testCurve
	a, err := c.HashToElement([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.HashToElement([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.HashToElement([]byte("d"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(c.Op(a, b), c.Op(b, a)) {
		t.Error("not commutative")
	}
	lhs := c.Op(c.Op(a, b), d)
	rhs := c.Op(a, c.Op(b, d))
	if !c.Equal(lhs, rhs) {
		t.Error("not associative")
	}
}

func TestExpMatchesRepeatedOp(t *testing.T) {
	c := testCurve
	g := c.Generator()
	acc := c.Identity()
	for k := 0; k <= 10; k++ {
		want := c.Exp(g, big.NewInt(int64(k)))
		if !c.Equal(acc, want) {
			t.Fatalf("g^%d mismatch", k)
		}
		acc = c.Op(acc, g)
	}
}

func TestExpHomomorphism(t *testing.T) {
	c := testCurve
	g := c.Generator()
	a, b := big.NewInt(123456789), big.NewInt(987654321)
	lhs := c.Op(c.Exp(g, a), c.Exp(g, b))
	rhs := c.Exp(g, new(big.Int).Add(a, b))
	if !c.Equal(lhs, rhs) {
		t.Error("g^a · g^b != g^(a+b)")
	}
}

func TestExpNegative(t *testing.T) {
	c := testCurve
	g := c.Generator()
	lhs := c.Exp(g, big.NewInt(-5))
	rhs := c.Inverse(c.Exp(g, big.NewInt(5)))
	if !c.Equal(lhs, rhs) {
		t.Error("g^-5 != (g^5)^-1")
	}
}

func TestOpClosedAndValid(t *testing.T) {
	c := testCurve
	g := c.Generator()
	x := g
	for i := 0; i < 12; i++ {
		x = c.Op(x, g)
		if !c.IsValid(x) {
			t.Fatalf("g^%d is not a valid reduced divisor", i+2)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := testCurve
	elems := []group.Element{
		c.Identity(),
		c.Generator(),
		c.Op(c.Generator(), c.Generator()),
		c.Exp(c.Generator(), big.NewInt(123456789012345)),
	}
	for i, e := range elems {
		enc := c.Marshal(e)
		dec, err := c.Unmarshal(enc)
		if err != nil {
			t.Fatalf("elem %d: %v", i, err)
		}
		if !c.Equal(e, dec) {
			t.Fatalf("elem %d: round trip mismatch", i)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	c := testCurve
	if _, err := c.Unmarshal(nil); err == nil {
		t.Error("empty encoding accepted")
	}
	if _, err := c.Unmarshal([]byte{7}); err == nil {
		t.Error("bad degree accepted")
	}
	if _, err := c.Unmarshal([]byte{2, 1, 2, 3}); err == nil {
		t.Error("truncated encoding accepted")
	}
	// Valid length but a point not on the curve.
	enc := c.Marshal(c.Generator())
	enc[len(enc)-1] ^= 0x01
	if _, err := c.Unmarshal(enc); err == nil {
		t.Error("off-curve encoding accepted")
	}
}

func TestHashToElementDeterministicAndDistinct(t *testing.T) {
	c := testCurve
	a1, err := c.HashToElement([]byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.HashToElement([]byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(a1, a2) {
		t.Error("hash-to-element not deterministic")
	}
	b, err := c.HashToElement([]byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Equal(a1, b) {
		t.Error("distinct seeds collide")
	}
	if !c.IsValid(a1) || !c.IsValid(b) {
		t.Error("hashed elements invalid")
	}
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(big.NewInt(16), [5]*big.Int{big.NewInt(1), big.NewInt(0), big.NewInt(0), big.NewInt(0), big.NewInt(0)}, big.NewInt(7), "bad"); err == nil {
		t.Error("composite base field accepted")
	}
	if _, err := NewCurve(paperQ, [5]*big.Int{paperC0, paperC1, paperC2, paperC3, big.NewInt(0)}, big.NewInt(10), "bad"); err == nil {
		t.Error("composite order accepted")
	}
}

func TestInverseOfIdentity(t *testing.T) {
	c := testCurve
	if !c.IsIdentity(c.Inverse(c.Identity())) {
		t.Error("1⁻¹ != 1")
	}
}

func TestForeignElementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("foreign element did not panic")
		}
	}()
	testCurve.Op(testCurve.Generator(), fakeElement{})
}

type fakeElement struct{}

func (fakeElement) String() string { return "fake" }

func BenchmarkOp(b *testing.B) {
	c := testCurve
	g := c.Generator()
	h := c.Op(g, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h = c.Op(h, g).(*Divisor)
	}
	_ = h
}

func BenchmarkExp(b *testing.B) {
	c := testCurve
	g := c.Generator()
	k, _ := new(big.Int).SetString("123456789012345678901234567890123456789", 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Exp(g, k)
	}
}
