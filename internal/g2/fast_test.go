package g2

import (
	"crypto/rand"
	"math/big"
	"testing"

	"ppcd/internal/group"
)

// randDivisor draws a uniformly random Jacobian element via the REFERENCE
// path (double-and-add over polyring), so fast-path bugs cannot mask
// themselves in the test fixtures.
func randDivisor(t *testing.T, slow *Curve) *Divisor {
	t.Helper()
	k, err := rand.Int(rand.Reader, slow.Order())
	if err != nil {
		t.Fatal(err)
	}
	return slow.Exp(slow.Generator(), k).(*Divisor)
}

// TestFastGroupLawDifferential pins the ff128 Cantor engine to the
// polyring/ffbig reference on random divisors: group law, inverse, validity.
func TestFastGroupLawDifferential(t *testing.T) {
	c := MustPaperCurve()
	if !c.hasFast() {
		t.Fatal("paper curve should carry the fast engine")
	}
	slow := c.withoutFast()
	for i := 0; i < 30; i++ {
		a, b := randDivisor(t, slow), randDivisor(t, slow)
		fast := c.Op(a, b)
		ref := slow.Op(a, b)
		if !c.Equal(fast, ref) {
			t.Fatalf("Op mismatch:\n a=%v\n b=%v\n fast=%v\n ref=%v", a, b, fast, ref)
		}
		if !c.IsValid(fast) || !slow.IsValid(fast) {
			t.Fatalf("fast Op result invalid on one of the paths: %v", fast)
		}
		inv := c.Inverse(a)
		if !c.IsIdentity(c.Op(a, inv)) {
			t.Fatalf("a·a⁻¹ != identity on fast path for %v", a)
		}
		// Doubling (the u1 = u2 branch of Cantor).
		if !c.Equal(c.Op(a, a), slow.Op(a, a)) {
			t.Fatalf("doubling mismatch for %v", a)
		}
	}
	// Identity edge cases.
	id := c.Identity()
	a := randDivisor(t, slow)
	if !c.Equal(c.Op(id, a), a) || !c.Equal(c.Op(a, id), a) {
		t.Fatal("identity is not neutral on the fast path")
	}
	if !c.IsIdentity(c.Op(id, id)) {
		t.Fatal("id+id != id on the fast path")
	}
}

// TestFastExpDifferential pins windowed-NAF scalar multiplication to the
// reference double-and-add on random scalars, including the edge exponents.
func TestFastExpDifferential(t *testing.T) {
	c := MustPaperCurve()
	slow := c.withoutFast()
	a := randDivisor(t, slow)
	edge := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(-1),
		new(big.Int).Sub(c.Order(), big.NewInt(1)),
		c.Order(),
	}
	for _, k := range edge {
		if !c.Equal(c.Exp(a, k), slow.Exp(a, k)) {
			t.Fatalf("Exp mismatch at edge k=%s", k)
		}
	}
	for i := 0; i < 10; i++ {
		k, err := rand.Int(rand.Reader, c.Order())
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			k.Neg(k)
		}
		if !c.Equal(c.Exp(a, k), slow.Exp(a, k)) {
			t.Fatalf("Exp mismatch at k=%s", k)
		}
	}
}

// TestFixedBaseDifferential pins the precomputed fixed-base tables to the
// reference exponentiation.
func TestFixedBaseDifferential(t *testing.T) {
	c := MustPaperCurve()
	slow := c.withoutFast()
	base := randDivisor(t, slow)
	var fb group.FixedBaseGroup = c
	tab := fb.NewFixedBase(base)
	for _, k := range []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(15), big.NewInt(16), big.NewInt(-3)} {
		if !c.Equal(tab.Exp(k), slow.Exp(base, k)) {
			t.Fatalf("fixed-base Exp mismatch at k=%s", k)
		}
	}
	for i := 0; i < 10; i++ {
		k, err := rand.Int(rand.Reader, c.Order())
		if err != nil {
			t.Fatal(err)
		}
		if !c.Equal(tab.Exp(k), slow.Exp(base, k)) {
			t.Fatalf("fixed-base Exp mismatch at k=%s", k)
		}
	}
}

// TestFastMarshalUnchanged asserts the wire encoding is byte-identical
// across the two paths: elements produced by fast operations marshal to the
// same bytes the reference path produces, and both unmarshal each other.
func TestFastMarshalUnchanged(t *testing.T) {
	c := MustPaperCurve()
	slow := c.withoutFast()
	for i := 0; i < 10; i++ {
		a, b := randDivisor(t, slow), randDivisor(t, slow)
		fastBytes := c.Marshal(c.Op(a, b))
		refBytes := slow.Marshal(slow.Op(a, b))
		if string(fastBytes) != string(refBytes) {
			t.Fatal("marshaled bytes differ between fast and reference paths")
		}
		d1, err := c.Unmarshal(refBytes)
		if err != nil {
			t.Fatalf("fast path rejects reference encoding: %v", err)
		}
		d2, err := slow.Unmarshal(fastBytes)
		if err != nil {
			t.Fatalf("reference path rejects fast encoding: %v", err)
		}
		if !c.Equal(d1, d2) {
			t.Fatal("cross-path unmarshal disagreement")
		}
	}
}

func BenchmarkOpFast(b *testing.B) {
	c := MustPaperCurve()
	x := c.Exp(c.Generator(), big.NewInt(12345))
	y := c.Exp(c.Generator(), big.NewInt(67890))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = c.Op(x, y)
	}
}

func BenchmarkOpReference(b *testing.B) {
	c := MustPaperCurve().withoutFast()
	x := c.Exp(c.Generator(), big.NewInt(12345))
	y := c.Exp(c.Generator(), big.NewInt(67890))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = c.Op(x, y)
	}
}

func BenchmarkExpFast(b *testing.B) {
	c := MustPaperCurve()
	k, _ := rand.Int(rand.Reader, c.Order())
	x := c.Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Exp(x, k)
	}
}

func BenchmarkExpReference(b *testing.B) {
	c := MustPaperCurve().withoutFast()
	k, _ := rand.Int(rand.Reader, c.Order())
	x := c.Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Exp(x, k)
	}
}

func BenchmarkExpFixedBase(b *testing.B) {
	c := MustPaperCurve()
	tab := c.NewFixedBase(c.Generator())
	k, _ := rand.Int(rand.Reader, c.Order())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Exp(k)
	}
}
