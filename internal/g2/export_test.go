package g2

// Test hooks: the differential tests pin the fast ff128 engine to the
// polyring/ffbig reference path, so they need a handle on a curve with the
// fast engine detached.

// withoutFast returns a shallow clone of the curve that always takes the
// reference (polyring/ffbig) path. Shared sub-state is immutable.
func (c *Curve) withoutFast() *Curve {
	clone := *c
	clone.fast = nil
	return &clone
}

// hasFast reports whether the fast engine is attached.
func (c *Curve) hasFast() bool { return c.fast != nil }
