package ff64

import (
	"math/big"
	"testing"
	"testing/quick"
)

func bigMod() *big.Int { return new(big.Int).SetUint64(Modulus) }

func TestModulusIsPrime(t *testing.T) {
	if !bigMod().ProbablyPrime(64) {
		t.Fatal("modulus is not prime")
	}
}

func TestNewReduces(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint64
	}{
		{0, 0},
		{1, 1},
		{Modulus, 0},
		{Modulus + 1, 1},
		{^uint64(0), 7}, // 2^64-1 = 8q+7
	}
	for _, c := range cases {
		if got := uint64(New(c.in)); got != c.want {
			t.Errorf("New(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(a), New(b)
		return Sub(Add(x, y), y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesBigInt(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(a), New(b)
		got := uint64(Mul(x, y))
		want := new(big.Int).Mul(new(big.Int).SetUint64(uint64(x)), new(big.Int).SetUint64(uint64(y)))
		want.Mod(want, bigMod())
		return got == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := New(a), New(b), New(c)
		if Mul(x, y) != Mul(y, x) {
			return false
		}
		return Mul(Mul(x, y), z) == Mul(x, Mul(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := New(a), New(b), New(c)
		return Mul(x, Add(y, z)) == Add(Mul(x, y), Mul(x, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeg(t *testing.T) {
	f := func(a uint64) bool {
		x := New(a)
		return Add(x, Neg(x)) == Zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Neg(Zero) != Zero {
		t.Error("Neg(0) != 0")
	}
}

func TestInv(t *testing.T) {
	if _, err := Inv(Zero); err == nil {
		t.Error("Inv(0) should fail")
	}
	f := func(a uint64) bool {
		x := New(a)
		if x == Zero {
			x = One
		}
		inv, err := Inv(x)
		if err != nil {
			return false
		}
		return Mul(x, inv) == One
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDiv(t *testing.T) {
	if _, err := Div(One, Zero); err == nil {
		t.Error("Div by zero should fail")
	}
	got, err := Div(New(84), New(2))
	if err != nil {
		t.Fatal(err)
	}
	if got != New(42) {
		t.Errorf("84/2 = %v, want 42", got)
	}
}

func TestExp(t *testing.T) {
	// Fermat: a^(q-1) = 1 for a != 0.
	for _, a := range []Elem{One, New(2), New(12345), New(Modulus - 1)} {
		if Exp(a, Modulus-1) != One {
			t.Errorf("Fermat violated for %v", a)
		}
	}
	if Exp(New(2), 10) != New(1024) {
		t.Error("2^10 != 1024")
	}
	if Exp(New(5), 0) != One {
		t.Error("x^0 != 1")
	}
}

func TestMustInvPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInv(0) did not panic")
		}
	}()
	MustInv(Zero)
}

func TestRandInRange(t *testing.T) {
	for i := 0; i < 100; i++ {
		e, err := Rand()
		if err != nil {
			t.Fatal(err)
		}
		if uint64(e) >= Modulus {
			t.Fatalf("Rand out of range: %d", e)
		}
	}
}

func TestRandNonZero(t *testing.T) {
	for i := 0; i < 50; i++ {
		e, err := RandNonZero()
		if err != nil {
			t.Fatal(err)
		}
		if e == Zero {
			t.Fatal("RandNonZero returned zero")
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		x := New(a)
		y, err := FromBytes(x.Bytes())
		return err == nil && x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := FromBytes([]byte{1, 2, 3}); err == nil {
		t.Error("short encoding should fail")
	}
}

func TestString(t *testing.T) {
	if New(42).String() != "42" {
		t.Error("String mismatch")
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := New(0x123456789abcdef), New(0xfedcba987654321)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	x := New(0x123456789abcdef)
	for i := 0; i < b.N; i++ {
		x, _ = Inv(x)
	}
	_ = x
}

func TestMulAddMatchesMulThenAdd(t *testing.T) {
	f := func(acc, a, b uint64) bool {
		x, y, z := New(acc), New(a), New(b)
		return MulAdd(x, y, z) == Add(x, Mul(y, z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	// Extremes: the largest reduced operands must stay inside reduce128's
	// input range after fusing the accumulator into the product.
	max := Elem(Modulus - 1)
	if got, want := MulAdd(max, max, max), Add(max, Mul(max, max)); got != want {
		t.Errorf("MulAdd at field max: got %v want %v", got, want)
	}
	if got, want := MulAdd(max, 0, max), max; got != want {
		t.Errorf("MulAdd(max, 0, max): got %v want %v", got, want)
	}
}

func BenchmarkMulAdd(b *testing.B) {
	x, y := New(0x123456789abcdef), New(0xfedcba987654321)
	var acc Elem
	for i := 0; i < b.N; i++ {
		acc = MulAdd(acc, x, y)
	}
	_ = acc
}

func TestReduce128Wide(t *testing.T) {
	cases := []struct{ hi, lo uint64 }{
		{0, 0},
		{0, Modulus},
		{0, Modulus - 1},
		{0, ^uint64(0)},
		{1, 0},
		{1, ^uint64(0)},
		{Modulus, Modulus},
		{^uint64(0), ^uint64(0)},
		{1 << 60, 12345},
		{(1 << 61) - 1, (1 << 61) - 1},
	}
	for _, c := range cases {
		got := Reduce128Wide(c.hi, c.lo)
		// Reference: (hi·2⁶⁴ + lo) mod q via big-int-free double reduction:
		// hi·2⁶⁴ ≡ hi·8, computed with the narrow-range reduce path.
		want := Add(Mul(New(c.hi), New(8)), New(c.lo))
		if got != want {
			t.Fatalf("Reduce128Wide(%d,%d) = %d, want %d", c.hi, c.lo, got, want)
		}
		if uint64(got) >= Modulus {
			t.Fatalf("Reduce128Wide(%d,%d) = %d not in canonical range", c.hi, c.lo, got)
		}
	}
}

func TestVecMulAccMatchesMulAdd(t *testing.T) {
	const n = 97
	b := make([]Elem, n)
	acc := make([]Elem, n)
	for i := range b {
		v, err := Rand()
		if err != nil {
			t.Fatal(err)
		}
		b[i] = v
		w, err := Rand()
		if err != nil {
			t.Fatal(err)
		}
		acc[i] = w
	}
	want := append([]Elem(nil), acc...)
	hi := make([]uint64, n)
	lo := make([]uint64, n)
	VecLoad(hi, lo, acc)
	for round := 0; round < MaxVecMulAcc; round++ {
		a, err := Rand()
		if err != nil {
			t.Fatal(err)
		}
		VecMulAcc(hi, lo, a, b)
		for i := range want {
			want[i] = MulAdd(want[i], a, b[i])
		}
	}
	got := make([]Elem, n)
	VecReduce(got, hi, lo)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: VecMulAcc chain = %d, MulAdd chain = %d", i, got[i], want[i])
		}
	}
}

func TestVecMulAccWorstCase(t *testing.T) {
	// MaxVecMulAcc accumulations of the largest possible product must not
	// overflow the high limb.
	big := Elem(Modulus - 1)
	b := []Elem{big}
	hi := make([]uint64, 1)
	lo := make([]uint64, 1)
	VecLoad(hi, lo, []Elem{big})
	var want Elem = big
	for round := 0; round < MaxVecMulAcc; round++ {
		VecMulAcc(hi, lo, big, b)
		want = MulAdd(want, big, big)
	}
	var got [1]Elem
	VecReduce(got[:], hi, lo)
	if got[0] != want {
		t.Fatalf("worst-case chain = %d, want %d", got[0], want)
	}
}

func TestVecMulAcc4MatchesSingle(t *testing.T) {
	const n = 53
	rows := make([][]Elem, 4)
	as := make([]Elem, 4)
	for r := range rows {
		rows[r] = make([]Elem, n)
		for i := range rows[r] {
			v, err := Rand()
			if err != nil {
				t.Fatal(err)
			}
			rows[r][i] = v
		}
		a, err := Rand()
		if err != nil {
			t.Fatal(err)
		}
		as[r] = a
	}
	base := make([]Elem, n)
	hi4 := make([]uint64, n)
	lo4 := make([]uint64, n)
	hi1 := make([]uint64, n)
	lo1 := make([]uint64, n)
	VecLoad(hi4, lo4, base)
	VecLoad(hi1, lo1, base)
	VecMulAcc4(hi4, lo4, as[0], as[1], as[2], as[3], rows[0], rows[1], rows[2], rows[3])
	for r := range rows {
		VecMulAcc(hi1, lo1, as[r], rows[r])
	}
	got := make([]Elem, n)
	want := make([]Elem, n)
	VecReduce(got, hi4, lo4)
	VecReduce(want, hi1, lo1)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: VecMulAcc4 = %d, four VecMulAcc = %d", i, got[i], want[i])
		}
	}
}
