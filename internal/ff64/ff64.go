// Package ff64 implements fast arithmetic in the prime field F_q with
// q = 2^61 - 1 (a Mersenne prime). This is the "GKM field" of the paper:
// conditional subscription secrets, matrix entries, access control vectors
// and symmetric keys all live in F_q. The paper's implementation used an
// 80-bit NTL word field; 2^61-1 is the closest word-sized prime that admits
// branch-free reduction, and every algorithm layered on top of this package
// is independent of the field size (see DESIGN.md, substitution #2).
package ff64

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Modulus is the field characteristic q = 2^61 - 1.
const Modulus uint64 = (1 << 61) - 1

// Elem is an element of F_q, always kept in canonical reduced form
// [0, Modulus).
type Elem uint64

// Zero and One are the additive and multiplicative identities.
const (
	Zero Elem = 0
	One  Elem = 1
)

// New reduces an arbitrary uint64 into the field.
func New(v uint64) Elem {
	return Elem(reduce64(v))
}

// reduce64 reduces v modulo 2^61-1 using the Mersenne identity
// 2^61 ≡ 1 (mod q).
func reduce64(v uint64) uint64 {
	v = (v & Modulus) + (v >> 61)
	if v >= Modulus {
		v -= Modulus
	}
	return v
}

// reduce128 reduces a 128-bit product (hi,lo) modulo 2^61-1.
func reduce128(hi, lo uint64) uint64 {
	// hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod q), with care: hi < 2^61
	// for products of reduced operands (both < 2^61), so hi*8 < 2^64.
	lo61 := lo & Modulus
	rest := (hi << 3) | (lo >> 61) // (hi*2^64+lo) >> 61
	s := lo61 + rest
	s = (s & Modulus) + (s >> 61)
	if s >= Modulus {
		s -= Modulus
	}
	return s
}

// Add returns a + b in F_q.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= Modulus {
		s -= Modulus
	}
	return Elem(s)
}

// Sub returns a - b in F_q.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return Elem(uint64(a) + Modulus - uint64(b))
}

// Neg returns -a in F_q.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(Modulus - uint64(a))
}

// Mul returns a * b in F_q.
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	return Elem(reduce128(hi, lo))
}

// Sq returns a² in F_q.
func Sq(a Elem) Elem { return Mul(a, a) }

// MulAdd returns acc + a·b with a single 128-bit reduction instead of the
// two a separate Mul-then-Add performs. It is the inner-product primitive of
// package linalg (matrix elimination and KEV dot products). The fusion is
// sound: for reduced operands the high product limb is below 2⁵⁸, so adding
// acc < 2⁶¹ cannot push the 128-bit sum past reduce128's input range.
func MulAdd(acc, a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	var c uint64
	lo, c = bits.Add64(lo, uint64(acc), 0)
	hi += c
	return Elem(reduce128(hi, lo))
}

// MaxVecMulAcc bounds the number of VecMulAcc accumulations a (hi,lo) pair
// can absorb before VecReduce must run. Each product of reduced operands has
// a high limb below 2⁵⁸, so 63 accumulations (with their carries) stay below
// 2⁶⁴ in the high limb; callers batching more must reduce in between.
const MaxVecMulAcc = 63

// VecMulAcc accumulates a·b[k] into the 128-bit accumulator pair
// (hi[k], lo[k]) for every k, WITHOUT reducing. It is the delayed-reduction
// inner loop of blocked elimination (package linalg): a panel of up to
// MaxVecMulAcc rank-1 updates costs one 64×64 multiply and two adds per
// element, with a single VecReduce at the end instead of one reduce128 per
// multiply. hi and lo must be at least len(b) long.
func VecMulAcc(hi, lo []uint64, a Elem, b []Elem) {
	av := uint64(a)
	if len(b) == 0 {
		return
	}
	_ = hi[len(b)-1]
	_ = lo[len(b)-1]
	for k, bv := range b {
		h, l := bits.Mul64(av, uint64(bv))
		var c uint64
		lo[k], c = bits.Add64(lo[k], l, 0)
		hi[k] += h + c
	}
}

// VecMulAcc4 accumulates four rank-1 contributions a_i·b_i[k] into the
// accumulator pair in one sweep, loading and storing each (hi, lo) element
// once instead of four times. The trailing-update loop of blocked
// elimination is bound by accumulator traffic, not multiplies, so batching
// sources quadruples its arithmetic density. Counts as four accumulations
// against the MaxVecMulAcc budget. All b_i and hi/lo must be at least as
// long as b0.
func VecMulAcc4(hi, lo []uint64, a0, a1, a2, a3 Elem, b0, b1, b2, b3 []Elem) {
	n := len(b0)
	if n == 0 {
		return
	}
	v0, v1, v2, v3 := uint64(a0), uint64(a1), uint64(a2), uint64(a3)
	b1, b2, b3 = b1[:n], b2[:n], b3[:n]
	hi, lo = hi[:n], lo[:n]
	for k, bv := range b0 {
		lk, hk := lo[k], hi[k]
		var c uint64
		h, l := bits.Mul64(v0, uint64(bv))
		lk, c = bits.Add64(lk, l, 0)
		hk += h + c
		h, l = bits.Mul64(v1, uint64(b1[k]))
		lk, c = bits.Add64(lk, l, 0)
		hk += h + c
		h, l = bits.Mul64(v2, uint64(b2[k]))
		lk, c = bits.Add64(lk, l, 0)
		hk += h + c
		h, l = bits.Mul64(v3, uint64(b3[k]))
		lk, c = bits.Add64(lk, l, 0)
		hk += h + c
		lo[k], hi[k] = lk, hk
	}
}

// VecLoad seeds the accumulator pair with the current row contents
// (hi[k] = 0, lo[k] = out[k]) ahead of a VecMulAcc batch.
func VecLoad(hi, lo []uint64, v []Elem) {
	for k, e := range v {
		lo[k] = uint64(e)
		hi[k] = 0
	}
}

// VecReduce folds each accumulator pair back into canonical field elements:
// out[k] = (hi[k]·2⁶⁴ + lo[k]) mod q. Unlike reduce128 it accepts the full
// 128-bit range, so it is safe after up to MaxVecMulAcc accumulations.
func VecReduce(out []Elem, hi, lo []uint64) {
	for k := range out {
		out[k] = Reduce128Wide(hi[k], lo[k])
	}
}

// Reduce128Wide reduces an arbitrary 128-bit value hi·2⁶⁴ + lo into F_q. It
// is reduce128 without the hi < 2⁶¹ precondition (the high limb is split
// before shifting), for delayed-reduction accumulators.
func Reduce128Wide(hi, lo uint64) Elem {
	// hi·2⁶⁴ ≡ 8·hi (mod q); split 8·hi exactly as h2·2⁶⁴ + l2.
	h2, l2 := hi>>61, hi<<3
	s, c := bits.Add64(l2, lo, 0)
	// Now value ≡ (h2+c)·2⁶⁴ + s ≡ 8·(h2+c) + s, with 8·(h2+c) ≤ 64.
	v := (s & Modulus) + (s >> 61) + 8*(h2+c)
	v = (v & Modulus) + (v >> 61)
	if v >= Modulus {
		v -= Modulus
	}
	return Elem(v)
}

// Exp returns a^e in F_q by square-and-multiply.
func Exp(a Elem, e uint64) Elem {
	result := One
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Sq(base)
		e >>= 1
	}
	return result
}

// ErrNoInverse is returned by Inv when the argument is zero.
var ErrNoInverse = errors.New("ff64: zero has no multiplicative inverse")

// Inv returns a⁻¹ in F_q, or an error if a is zero. It uses Fermat's little
// theorem: a^(q-2) = a⁻¹ for a ≠ 0.
func Inv(a Elem) (Elem, error) {
	if a == 0 {
		return 0, ErrNoInverse
	}
	return Exp(a, Modulus-2), nil
}

// MustInv is Inv for callers that have already excluded zero; it panics on
// zero input.
func MustInv(a Elem) Elem {
	inv, err := Inv(a)
	if err != nil {
		panic(err)
	}
	return inv
}

// Div returns a / b, or an error if b is zero.
func Div(a, b Elem) (Elem, error) {
	bi, err := Inv(b)
	if err != nil {
		return 0, err
	}
	return Mul(a, bi), nil
}

// Rand returns a uniformly random field element using crypto/rand.
func Rand() (Elem, error) {
	var buf [8]byte
	for {
		if _, err := rand.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("ff64: reading randomness: %w", err)
		}
		// Rejection-sample the top 61 bits for uniformity.
		v := binary.LittleEndian.Uint64(buf[:]) >> 3
		if v < Modulus {
			return Elem(v), nil
		}
	}
}

// RandNonZero returns a uniformly random non-zero field element.
func RandNonZero() (Elem, error) {
	for {
		e, err := Rand()
		if err != nil {
			return 0, err
		}
		if e != 0 {
			return e, nil
		}
	}
}

// Bytes returns the canonical 8-byte big-endian encoding of a.
func (a Elem) Bytes() []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(a))
	return buf[:]
}

// FromBytes decodes an 8-byte big-endian encoding. Values are reduced mod q.
func FromBytes(b []byte) (Elem, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("ff64: encoding must be 8 bytes, got %d", len(b))
	}
	return New(binary.BigEndian.Uint64(b)), nil
}

// String implements fmt.Stringer.
func (a Elem) String() string { return fmt.Sprintf("%d", uint64(a)) }
