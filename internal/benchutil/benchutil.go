// Package benchutil builds synthetic publisher workloads for the publish
// benchmarks (bench_test.go) and the ppcd-bench -publish harness: a set of
// single-condition policies, the matching document, and a serialized CSS
// state that can be injected through the public ImportState path so no OCBE
// exchanges run.
package benchutil

import (
	"encoding/json"
	"fmt"

	"ppcd/internal/document"
	"ppcd/internal/policy"
)

// Workload returns `policies` single-condition ACPs ("attrI >= 1", one
// subdocument "sdI" of subdocBytes each), a document covering all of them,
// and a version-1 publisher state of `subs` pseudonyms. The first `partial`
// pseudonyms hold a CSS only for attr0 — they qualify for a single policy,
// so revoking one dirties exactly one configuration; the rest hold every
// condition, as uniform registration produces.
func Workload(subs, policies, partial, subdocBytes int) ([]*policy.ACP, *document.Document, []byte, error) {
	if subs < 1 || policies < 1 || partial > subs {
		return nil, nil, nil, fmt.Errorf("benchutil: bad workload shape subs=%d policies=%d partial=%d", subs, policies, partial)
	}
	var acps []*policy.ACP
	var subdocs []document.Subdocument
	for i := 0; i < policies; i++ {
		acp, err := policy.New(fmt.Sprintf("acp%d", i), fmt.Sprintf("attr%d >= 1", i), "doc", fmt.Sprintf("sd%d", i))
		if err != nil {
			return nil, nil, nil, err
		}
		acps = append(acps, acp)
		subdocs = append(subdocs, document.Subdocument{Name: fmt.Sprintf("sd%d", i), Content: make([]byte, subdocBytes)})
	}
	doc, err := document.New("doc", subdocs...)
	if err != nil {
		return nil, nil, nil, err
	}

	table := make(map[string]map[string]uint64, subs)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < subs; i++ {
		width := policies
		if i < partial {
			width = 1
		}
		row := make(map[string]uint64, width)
		for j := 0; j < width; j++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			row[fmt.Sprintf("attr%d >= 1", j)] = rng%1000000007 + 1
		}
		table[fmt.Sprintf("pn-%d", i)] = row
	}
	state, err := json.Marshal(map[string]any{"version": 1, "table": table})
	if err != nil {
		return nil, nil, nil, err
	}
	return acps, doc, state, nil
}
