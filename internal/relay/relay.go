// Package relay is the stateless edge tier: a relay opens ONE upstream
// subscribe stream, retains the raw wire-v3 frames it receives in its own
// bounded epoch ring (internal/fanout — the same hub the origin server
// uses), and re-serves snapshot/delta/heartbeat frames plus reconnect
// catch-up to any number of downstream subscribers. Because every frame is
// publicly distributable by construction (all secrecy lives inside the ACV
// headers), the relay needs no key material and never decrypts anything.
//
// A relay's downstream side speaks exactly the protocol its upstream side
// consumes, so relays chain into a tree: origin → relay → relay → … → subs,
// with the origin's egress O(direct children), not O(total subscribers).
// Registration and fetch-capability RPCs are proxied to the upstream (which
// forwards again if it is itself a relay), so an unmodified subscriber
// works against a relay address.
//
// Restart discipline: the upstream loop reconnects with its last applied
// (epoch, Gen) for a one-delta catch-up; any base or generation mismatch —
// a restarted origin renumbers epochs under a fresh Gen — resets the relay
// to a fresh snapshot subscribe, so a relay restart never poisons its
// subtree with frames from a stale generation.
package relay

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
	"ppcd/internal/transport"
	"ppcd/internal/wire"
)

// Options tunes a relay. The zero value picks defaults suited to an edge
// in front of many consumers.
type Options struct {
	// Retain bounds the relay's own epoch retention ring (default
	// fanout.DefaultRetention).
	Retain int
	// QueueDepth bounds each downstream connection's outbound frame queue
	// (default 128 — deeper than the origin default, since an edge absorbs
	// burstier consumer populations).
	QueueDepth int
	// WriteTimeout is the per-write deadline after which a downstream
	// consumer is evicted (default 10s).
	WriteTimeout time.Duration
	// Heartbeat is the downstream heartbeat cadence (default 30s; the
	// relay runs its own ticker rather than forwarding upstream
	// heartbeats, so cadence is local policy).
	Heartbeat time.Duration
	// Doc filters the upstream subscription to one document ("" = all).
	Doc string
	// IdleTimeout bounds how long the upstream stream may stay silent —
	// no data, no heartbeat — before the relay reconnects (default 2m).
	IdleTimeout time.Duration
	// ReconnectDelay is the pause between upstream redial attempts
	// (default 1s).
	ReconnectDelay time.Duration
}

// DefaultQueueDepth is the relay's downstream queue depth default.
const DefaultQueueDepth = 128

func (o *Options) withDefaults() Options {
	out := *o
	if out.QueueDepth <= 0 {
		out.QueueDepth = DefaultQueueDepth
	}
	if out.IdleTimeout <= 0 {
		out.IdleTimeout = 2 * time.Minute
	}
	if out.ReconnectDelay <= 0 {
		out.ReconnectDelay = time.Second
	}
	if out.Heartbeat == 0 {
		out.Heartbeat = 30 * time.Second
	}
	return out
}

// Stats is a snapshot of the relay's upstream-side counters.
type Stats struct {
	Snapshots  int64 // snapshot frames applied from upstream
	Deltas     int64 // delta frames applied from upstream
	Reconnects int64 // upstream dials (first connect included)
	Resets     int64 // catch-up resets after base/Gen mismatch
}

// Relay is one edge process: an upstream consumer loop feeding a local
// transport.Server whose registration backend proxies to the upstream.
type Relay struct {
	upstream string
	opt      Options
	srv      *transport.Server
	backend  *proxyBackend

	mu      sync.Mutex
	stream  *transport.Stream
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
	closed  bool

	lastEpoch atomic.Uint64
	lastGen   atomic.Uint64

	snapshots  atomic.Int64
	deltas     atomic.Int64
	reconnects atomic.Int64
	resets     atomic.Int64
}

// New builds a relay for the given upstream address (an origin server or
// another relay). params must match the system-wide Pedersen setup; opt may
// be nil for defaults.
func New(upstream string, params *pedersen.Params, opt *Options) (*Relay, error) {
	if upstream == "" {
		return nil, errors.New("relay: empty upstream address")
	}
	if params == nil {
		return nil, errors.New("relay: nil params")
	}
	var o Options
	if opt != nil {
		o = *opt
	}
	o = o.withDefaults()
	backend := &proxyBackend{addr: upstream, params: params}
	srv, err := transport.NewServerWithBackend(backend, upstream)
	if err != nil {
		return nil, err
	}
	if o.Retain > 0 {
		srv.SetRetention(o.Retain)
	}
	srv.SetQueueDepth(o.QueueDepth)
	if o.WriteTimeout > 0 {
		srv.SetWriteTimeout(o.WriteTimeout)
	}
	srv.SetHeartbeatInterval(o.Heartbeat)
	return &Relay{upstream: upstream, opt: o, srv: srv, backend: backend, stop: make(chan struct{})}, nil
}

// Listen binds the relay's downstream side to addr and starts the upstream
// consumer loop. It returns the bound address.
func (r *Relay) Listen(addr string) (string, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return "", errors.New("relay: closed")
	}
	if r.started {
		r.mu.Unlock()
		return "", errors.New("relay: already listening")
	}
	r.started = true
	r.mu.Unlock()
	bound, err := r.srv.Listen(addr)
	if err != nil {
		return "", err
	}
	r.wg.Add(1)
	go r.upstreamLoop()
	return bound, nil
}

// upstreamLoop dials the upstream, subscribes with the relay's last applied
// (epoch, Gen) and applies frames into the local hub, reconnecting forever
// until Close.
func (r *Relay) upstreamLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		if err := r.consumeUpstream(); err != nil {
			select {
			case <-r.stop:
				return
			case <-time.After(r.opt.ReconnectDelay):
			}
		}
	}
}

// consumeUpstream runs one upstream session: dial, subscribe, apply frames
// until an error or shutdown.
func (r *Relay) consumeUpstream() error {
	client, err := transport.Dial(r.upstream, r.backend.params)
	if err != nil {
		return err
	}
	defer client.Close()
	r.reconnects.Add(1)
	st, err := client.Subscribe(r.opt.Doc, r.lastEpoch.Load(), r.lastGen.Load())
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		st.Close()
		return errors.New("relay: closed")
	}
	r.stream = st
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.stream = nil
		r.mu.Unlock()
		st.Close()
	}()
	// Advertise the true origin downstream: our upstream may itself be a
	// relay, in which case it advertises where IT got the frames from.
	if o := client.Origin(); o != "" {
		r.srv.SetOrigin(o)
	} else {
		r.srv.SetOrigin(r.upstream)
	}
	for {
		st.SetReadDeadline(time.Now().Add(r.opt.IdleTimeout))
		f, raw, err := st.NextRaw()
		if err != nil {
			return err
		}
		switch f.Type {
		case wire.FrameSnapshot:
			b := f.Snapshot
			r.lastEpoch.Store(b.Epoch)
			r.lastGen.Store(b.Gen)
			r.snapshots.Add(1)
			r.srv.PublishRaw(b, raw, nil, 0)
		case wire.FrameDelta:
			d := f.Delta
			base := r.srv.Current(d.DocName)
			if base == nil || base.Epoch != d.BaseEpoch || base.Gen != d.Gen {
				// The delta does not chain onto what we retain — a missed
				// epoch or a restarted publisher generation. Reset to a
				// fresh snapshot subscribe rather than serving a guess.
				r.lastEpoch.Store(0)
				r.lastGen.Store(0)
				r.resets.Add(1)
				return fmt.Errorf("relay: delta base mismatch for %q (have %v, need epoch %d gen %d)",
					d.DocName, base != nil, d.BaseEpoch, d.Gen)
			}
			b, err := d.Apply(base)
			if err != nil {
				r.lastEpoch.Store(0)
				r.lastGen.Store(0)
				r.resets.Add(1)
				return fmt.Errorf("relay: applying delta: %w", err)
			}
			r.lastEpoch.Store(b.Epoch)
			r.lastGen.Store(b.Gen)
			r.deltas.Add(1)
			r.srv.PublishRaw(b, nil, raw, d.BaseEpoch)
		case wire.FrameHeartbeat:
			// Upstream liveness only; the relay runs its own downstream
			// heartbeat cadence.
		}
	}
}

// LastEpoch reports the newest epoch applied from upstream.
func (r *Relay) LastEpoch() uint64 { return r.lastEpoch.Load() }

// Streams is the number of live downstream subscribe streams.
func (r *Relay) Streams() int { return r.srv.Streams() }

// Egress reports cumulative frames and bytes pushed downstream.
func (r *Relay) Egress() (frames, bytes int64) { return r.srv.Egress() }

// Stats snapshots the upstream-side counters.
func (r *Relay) Stats() Stats {
	return Stats{
		Snapshots:  r.snapshots.Load(),
		Deltas:     r.deltas.Load(),
		Reconnects: r.reconnects.Load(),
		Resets:     r.resets.Load(),
	}
}

// Close shuts the relay down: upstream loop, downstream server, proxy.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.stop)
	st := r.stream
	r.mu.Unlock()
	if st != nil {
		st.Close() // unblock NextRaw
	}
	err := r.srv.Close()
	r.wg.Wait()
	r.backend.close()
	return err
}

// proxyBackend forwards registration RPCs to the upstream over a lazily
// dialed request/response connection, making the relay transparent to
// registering subscribers. It implements pubsub.BatchRegistrar.
// Registration is the cold path, so the error handling is simple: any
// upstream failure drops the connection and the next call redials.
type proxyBackend struct {
	addr   string
	params *pedersen.Params

	mu sync.Mutex
	c  *transport.Client
}

func (p *proxyBackend) client() (*transport.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.c != nil {
		return p.c, nil
	}
	c, err := transport.Dial(p.addr, p.params)
	if err != nil {
		return nil, fmt.Errorf("relay: dialing upstream: %w", err)
	}
	p.c = c
	return c, nil
}

func (p *proxyBackend) fail(c *transport.Client) {
	p.mu.Lock()
	if p.c == c {
		p.c = nil
	}
	p.mu.Unlock()
	c.Close()
}

func (p *proxyBackend) close() {
	p.mu.Lock()
	c := p.c
	p.c = nil
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Params implements pubsub.Registrar.
func (p *proxyBackend) Params() *pedersen.Params { return p.params }

// Ell implements pubsub.Registrar.
func (p *proxyBackend) Ell() int {
	c, err := p.client()
	if err != nil {
		return 0
	}
	return c.Ell()
}

// Conditions implements pubsub.Registrar.
func (p *proxyBackend) Conditions() []policy.Condition {
	c, err := p.client()
	if err != nil {
		return nil
	}
	conds := c.Conditions()
	if conds == nil {
		p.fail(c)
	}
	return conds
}

// Register implements pubsub.Registrar.
func (p *proxyBackend) Register(reg *pubsub.RegistrationRequest) (*ocbe.Envelope, error) {
	c, err := p.client()
	if err != nil {
		return nil, err
	}
	env, err := c.Register(reg)
	if err != nil {
		p.fail(c)
		return nil, err
	}
	return env, nil
}

// RegisterBatch implements pubsub.BatchRegistrar.
func (p *proxyBackend) RegisterBatch(reqs []*pubsub.RegistrationRequest) ([]pubsub.BatchResult, error) {
	c, err := p.client()
	if err != nil {
		return nil, err
	}
	results, err := c.RegisterBatch(reqs)
	if err != nil {
		p.fail(c)
		return nil, err
	}
	return results, nil
}

var _ pubsub.BatchRegistrar = (*proxyBackend)(nil)
