package relay

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"ppcd/internal/document"
	"ppcd/internal/idtoken"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
	"ppcd/internal/schnorr"
	"ppcd/internal/transport"
	"ppcd/internal/wire"
)

var (
	once   sync.Once
	params *pedersen.Params
	mgr    *idtoken.Manager
)

func env(t *testing.T) (*pedersen.Params, *idtoken.Manager) {
	t.Helper()
	once.Do(func() {
		p, err := pedersen.Setup(schnorr.Must2048(), []byte("relay-test"))
		if err != nil {
			panic(err)
		}
		m, err := idtoken.NewManager(p)
		if err != nil {
			panic(err)
		}
		params, mgr = p, m
	})
	return params, mgr
}

func newPublisher(t *testing.T) *pubsub.Publisher {
	t.Helper()
	p, m := env(t)
	acp, err := policy.New("adult", "age >= 18", "news.txt", "body")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pubsub.NewPublisher(p, m.PublicKey(), []*policy.ACP{acp}, pubsub.Options{Ell: 8, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

// startOrigin spins up a publisher origin server with a fast heartbeat.
func startOrigin(t *testing.T) (*transport.Server, string, *pubsub.Publisher) {
	t.Helper()
	pub := newPublisher(t)
	srv, err := transport.NewServer(pub)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, pub
}

// startRelay chains a relay onto upstream and waits for nothing: the
// upstream loop connects asynchronously.
func startRelay(t *testing.T, upstream string, opt *Options) (*Relay, string) {
	t.Helper()
	p, _ := env(t)
	if opt == nil {
		opt = &Options{ReconnectDelay: 50 * time.Millisecond}
	}
	r, err := New(upstream, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, addr
}

// registerVia registers a fresh subscriber through the given address —
// exercising the registration proxy chain when addr is a relay.
func registerVia(t *testing.T, addr, nym string) *pubsub.Subscriber {
	t.Helper()
	p, m := env(t)
	sub, err := pubsub.NewSubscriber(nym)
	if err != nil {
		t.Fatal(err)
	}
	tok, sec, err := m.IssueString(nym, "age", "30")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.AddToken(tok, sec); err != nil {
		t.Fatal(err)
	}
	client, err := transport.Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	got, err := sub.RegisterAll(client)
	if err != nil {
		t.Fatalf("registering %s via %s: %v", nym, addr, err)
	}
	if got != 1 {
		t.Fatalf("%s extracted %d CSSs, want 1", nym, got)
	}
	return sub
}

func newsDoc(t *testing.T, body string) *document.Document {
	t.Helper()
	doc, err := document.New("news.txt", document.Subdocument{Name: "body", Content: []byte(body)})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func waitEpoch(t *testing.T, r *Relay, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.LastEpoch() < epoch {
		if time.Now().After(deadline) {
			t.Fatalf("relay stuck at epoch %d, want %d", r.LastEpoch(), epoch)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func publish(t *testing.T, srv *transport.Server, pub *pubsub.Publisher, body string) *pubsub.Broadcast {
	t.Helper()
	b, err := pub.Publish(newsDoc(t, body))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.PublishBroadcast(b); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRelayChainChurn is the depth-2 tree end-to-end property: origin →
// relay1 → relay2, subscribers registered AND streaming through the edge
// relay, membership churn at the origin — every surviving consumer
// converges on the final epoch and decrypts byte-identically to a direct
// fetch from the origin.
func TestRelayChainChurn(t *testing.T) {
	const nStream = 4
	srv, originAddr, pub := startOrigin(t)
	r1, r1Addr := startRelay(t, originAddr, nil)
	r2, r2Addr := startRelay(t, r1Addr, nil)
	_ = r1
	p, _ := env(t)

	// Registration proxies through both relays to the origin.
	subs := make([]*pubsub.Subscriber, nStream+2)
	for i := range subs {
		subs[i] = registerVia(t, r2Addr, fmt.Sprintf("pn-chain-%d", i))
	}

	final := []byte("final edition")
	var wg sync.WaitGroup
	errs := make(chan error, nStream)
	for i := 0; i < nStream; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := transport.Dial(r2Addr, p)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			st, err := client.Subscribe("news.txt", 0, 0)
			if err != nil {
				errs <- err
				return
			}
			defer st.Close()
			reader := subs[i]
			for {
				if err := st.SetReadDeadline(time.Now().Add(20 * time.Second)); err != nil {
					errs <- err
					return
				}
				f, err := st.Next()
				if err != nil {
					errs <- fmt.Errorf("consumer %d: %w", i, err)
					return
				}
				switch f.Type {
				case wire.FrameSnapshot:
					if err := reader.ApplySnapshot(f.Snapshot); err != nil {
						errs <- err
						return
					}
				case wire.FrameDelta:
					if err := reader.ApplyDelta(f.Delta); err != nil {
						errs <- fmt.Errorf("consumer %d apply: %w", i, err)
						return
					}
				case wire.FrameHeartbeat:
					continue
				}
				got, err := reader.DecryptCurrent("news.txt")
				if err != nil {
					errs <- err
					return
				}
				if bytes.Equal(got["body"], final) {
					return // converged
				}
			}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for r2.Streams() < nStream {
		if time.Now().After(deadline) {
			t.Fatalf("edge relay has %d streams, want %d", r2.Streams(), nStream)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Churn at the origin: two revocations interleaved with publishes,
	// then the final edition — all flowing through the chain.
	var lastB *pubsub.Broadcast
	for k := 0; k < 2; k++ {
		publish(t, srv, pub, fmt.Sprintf("edition %d", k))
		if err := pub.RevokeSubscription(subs[nStream+k].Nym()); err != nil {
			t.Fatal(err)
		}
	}
	lastB = publish(t, srv, pub, string(final))
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Byte-identical re-serve: a fetch via the edge relay returns the same
	// broadcast as a direct fetch from the origin (deterministic marshal).
	waitEpoch(t, r2, lastB.Epoch)
	viaRelay, err := transport.Dial(r2Addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer viaRelay.Close()
	bRelay, err := viaRelay.Fetch("news.txt")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := transport.Dial(originAddr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	bOrigin, err := direct.Fetch("news.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire.MarshalSnapshotFrame(bRelay), wire.MarshalSnapshotFrame(bOrigin)) {
		t.Fatal("relay-fetched broadcast differs from the origin's")
	}
	if viaRelay.Origin() == "" {
		t.Fatal("relay did not advertise an origin address")
	}
}

// TestRelayReconnectDeltaCatchup: a subscriber that reconnects to the relay
// presenting its last applied (epoch, Gen) receives exactly one delta, not
// a snapshot — the relay's own retention ring serves the catch-up.
func TestRelayReconnectDeltaCatchup(t *testing.T) {
	srv, originAddr, pub := startOrigin(t)
	r, rAddr := startRelay(t, originAddr, nil)
	p, _ := env(t)
	reader := registerVia(t, rAddr, "pn-catchup")

	b1 := publish(t, srv, pub, "first")
	waitEpoch(t, r, b1.Epoch)

	client, err := transport.Dial(rAddr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	st, err := client.Subscribe("news.txt", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameSnapshot {
		t.Fatalf("initial frame type %d, want snapshot", f.Type)
	}
	if err := reader.ApplySnapshot(f.Snapshot); err != nil {
		t.Fatal(err)
	}
	st.Close() // blip: the consumer goes away holding epoch b1

	b2 := publish(t, srv, pub, "second")
	waitEpoch(t, r, b2.Epoch)

	st2, err := client.Subscribe("news.txt", b1.Epoch, b1.Gen)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	f2, err := st2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f2.Type != wire.FrameDelta || f2.Delta.BaseEpoch != b1.Epoch || f2.Epoch != b2.Epoch {
		t.Fatalf("catch-up frame type %d epoch %d, want delta %d→%d", f2.Type, f2.Epoch, b1.Epoch, b2.Epoch)
	}
	if err := reader.ApplyDelta(f2.Delta); err != nil {
		t.Fatal(err)
	}
	got, err := reader.DecryptCurrent("news.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got["body"], []byte("second")) {
		t.Fatalf("decrypted %q after delta catch-up", got["body"])
	}
}

// TestRelayOriginRestartGenMismatch: the origin restarts as a fresh
// incarnation (new Gen, epoch numbers colliding with the old ones). The
// relay must detect the generation break, reset, and re-serve the new
// incarnation via a snapshot — never a delta spliced across generations.
func TestRelayOriginRestartGenMismatch(t *testing.T) {
	pub1 := newPublisher(t)
	srv1, err := transport.NewServer(pub1)
	if err != nil {
		t.Fatal(err)
	}
	originAddr, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r, rAddr := startRelay(t, originAddr, &Options{ReconnectDelay: 20 * time.Millisecond})
	p, _ := env(t)

	reader1 := registerVia(t, rAddr, "pn-gen-a")
	b1, err := pub1.Publish(newsDoc(t, "generation one"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.PublishBroadcast(b1); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, r, b1.Epoch)
	_ = reader1

	// Subscriber holding generation one state stays connected across the
	// origin restart.
	client, err := transport.Dial(rAddr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	st, err := client.Subscribe("news.txt", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	f, err := st.Next()
	if err != nil || f.Type != wire.FrameSnapshot || f.Snapshot.Gen != b1.Gen {
		t.Fatalf("pre-restart frame: %v %+v", err, f)
	}

	// Origin dies and is replaced by a fresh incarnation on the same
	// address: empty table, new Gen, epochs starting over.
	srv1.Close()
	pub2 := newPublisher(t)
	srv2, err := transport.NewServer(pub2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Listen(originAddr); err != nil {
		t.Fatalf("rebinding origin address: %v", err)
	}
	defer srv2.Close()
	if pub2.Generation() == b1.Gen {
		t.Fatal("fresh incarnation kept the old generation")
	}

	reader2 := registerVia(t, originAddr, "pn-gen-b")
	b2, err := pub2.Publish(newsDoc(t, "generation two"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.PublishBroadcast(b2); err != nil {
		t.Fatal(err)
	}

	// The relay reconnects (its subscribe presents the generation-one
	// epoch; the new origin does not retain it and answers with a
	// snapshot). The connected downstream subscriber must see the new
	// generation as a snapshot frame.
	deadline := time.Now().Add(15 * time.Second)
	var got *wire.Frame
	for {
		if err := st.SetReadDeadline(time.Now().Add(15 * time.Second)); err != nil {
			t.Fatal(err)
		}
		f, err := st.Next()
		if err != nil {
			t.Fatalf("downstream stream broke across origin restart: %v", err)
		}
		if f.Type == wire.FrameSnapshot && f.Snapshot.Gen == b2.Gen {
			got = f
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("new generation never reached the downstream subscriber")
		}
	}
	if err := reader2.ApplySnapshot(got.Snapshot); err != nil {
		t.Fatal(err)
	}
	plain, err := reader2.DecryptCurrent("news.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain["body"], []byte("generation two")) {
		t.Fatalf("decrypted %q across generations", plain["body"])
	}
	if r.Stats().Resets == 0 && r.Stats().Reconnects < 2 {
		t.Fatalf("relay stats show no recovery: %+v", r.Stats())
	}
}

// TestRelaySlowDownstreamEviction: a downstream consumer that never reads
// is evicted at the relay (bounded queue + write deadline), without
// stalling the relay's other work.
func TestRelaySlowDownstreamEviction(t *testing.T) {
	srv, originAddr, pub := startOrigin(t)
	r, rAddr := startRelay(t, originAddr, &Options{
		QueueDepth:     1,
		WriteTimeout:   100 * time.Millisecond,
		ReconnectDelay: 50 * time.Millisecond,
	})
	p, _ := env(t)
	registerVia(t, rAddr, "pn-slow")

	b1 := publish(t, srv, pub, "edition 0")
	waitEpoch(t, r, b1.Epoch)

	client, err := transport.Dial(rAddr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	st, err := client.Subscribe("news.txt", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	deadline := time.Now().Add(10 * time.Second)
	for r.Streams() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("relay never registered the stream")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Never read: megabyte-scale editions (fresh content each round, so the
	// deltas stay megabyte-scale too) fill the socket buffer, then the
	// 1-deep queue, then the write deadline — and the relay evicts.
	big := bytes.Repeat([]byte("payload "), 1<<18) // 2 MiB
	deadline = time.Now().Add(20 * time.Second)
	for k := 1; ; k++ {
		b := publish(t, srv, pub, string(append(big, byte(k))))
		waitEpoch(t, r, b.Epoch)
		if r.Streams() == 0 {
			return // evicted
		}
		if time.Now().After(deadline) {
			t.Fatal("slow downstream never evicted at the relay")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
