// Package group defines the abstract prime-order cyclic group used by the
// Pedersen commitment scheme and the OCBE protocols. Two implementations
// exist: the genus-2 Jacobian of the paper's exact curve (package g2, the
// faithful reproduction of G2HEC) and a Schnorr group — the quadratic-residue
// subgroup of a safe prime (package schnorr, a faster drop-in).
package group

import "math/big"

// Element is an opaque group element. Elements are only meaningful within
// the group that produced them; passing a foreign element to a group's
// methods yields an error where the signature allows one, or a panic for the
// pure-computation methods (programmer error, like indexing out of range).
type Element interface {
	// String renders the element for debugging.
	String() string
}

// Group is a cyclic group of prime order in which the computational
// Diffie–Hellman problem is assumed hard (paper §IV-A).
type Group interface {
	// Name identifies the instantiation, e.g. "g2-jacobian" or
	// "schnorr-2048".
	Name() string

	// Order returns the prime group order p. The Pedersen message space is
	// F_p for this order.
	Order() *big.Int

	// Identity returns the neutral element.
	Identity() Element

	// Generator returns the fixed base point g.
	Generator() Element

	// HashToElement deterministically derives a group element from seed such
	// that its discrete logarithm with respect to any other element is
	// unknown (a "nothing-up-my-sleeve" element). Pedersen setup uses it to
	// derive the second base h.
	HashToElement(seed []byte) (Element, error)

	// Op returns a·b (the group operation).
	Op(a, b Element) Element

	// Inverse returns a⁻¹.
	Inverse(a Element) Element

	// Exp returns a^k for any integer k (negative exponents allowed).
	Exp(a Element, k *big.Int) Element

	// Equal reports whether two elements are the same group element.
	Equal(a, b Element) bool

	// Marshal returns a canonical byte encoding of a.
	Marshal(a Element) []byte

	// Unmarshal decodes an element previously produced by Marshal.
	Unmarshal(data []byte) (Element, error)
}

// FixedBase is a precomputed exponentiation table for one long-lived base
// element. Implementations are immutable after construction and safe for
// concurrent use — Pedersen setup builds one per commitment base and the
// batch-registration worker pool shares them read-only.
type FixedBase interface {
	// Exp returns base^k for any integer k.
	Exp(k *big.Int) Element
}

// LaneExpGroup is optionally implemented by groups with a lane-parallel
// multi-exponentiation kernel: out[i] = ks[i]·bases[i] for every lane,
// with len(ks) == 1 meaning one shared scalar drives all lanes (the OCBE
// compose path: every σ-exponentiation of one envelope shares y). Callers
// discover it by type assertion and fall back to per-element Group.Exp
// when absent. Implementations must return exactly the elements the
// per-lane Exp calls would — the lane kernel is a performance path, never
// a semantic one.
type LaneExpGroup interface {
	Group

	// LaneExp returns bases[i]^ks[i] (or bases[i]^ks[0] when len(ks)==1)
	// for every i. It panics if len(ks) is neither 1 nor len(bases).
	LaneExp(bases []Element, ks []*big.Int) []Element
}

// FixedBaseGroup is optionally implemented by groups that support
// precomputed fixed-base exponentiation (the genus-2 Jacobian's windowed
// tables). Callers discover it by type assertion and fall back to the
// generic Group.Exp when absent.
type FixedBaseGroup interface {
	// NewFixedBase precomputes an exponentiation table for base.
	NewFixedBase(base Element) FixedBase
}
