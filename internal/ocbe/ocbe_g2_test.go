package ocbe

import (
	"bytes"
	"math/big"
	"testing"

	"ppcd/internal/g2"
	"ppcd/internal/pedersen"
)

// TestProtocolsOverJacobian exercises the OCBE flow over the paper's actual
// genus-2 Jacobian group, tying the crypto stack together end to end exactly
// as the paper's experiments did.
func TestProtocolsOverJacobian(t *testing.T) {
	if testing.Short() {
		t.Skip("jacobian arithmetic is slow; skipped in -short mode")
	}
	p, err := pedersen.Setup(g2.MustPaperCurve(), []byte("ocbe-g2-test"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("css=0xdeadbeef")

	t.Run("eq", func(t *testing.T) {
		x := big.NewInt(28)
		_, r, err := p.CommitRandom(x)
		if err != nil {
			t.Fatal(err)
		}
		recv := NewReceiver(p, x, r)
		pred := Predicate{EQ, big.NewInt(28)}
		wit, req, err := recv.Prepare(pred, 0)
		if err != nil {
			t.Fatal(err)
		}
		env, err := Compose(p, pred, 0, req, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recv.Open(env, wit)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Error("payload mismatch over jacobian")
		}
		// Unsatisfied predicate fails.
		pred2 := Predicate{EQ, big.NewInt(29)}
		wit2, req2, err := recv.Prepare(pred2, 0)
		if err != nil {
			t.Fatal(err)
		}
		env2, err := Compose(p, pred2, 0, req2, msg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := recv.Open(env2, wit2); err == nil {
			t.Error("unsatisfied EQ opened over jacobian")
		}
	})

	t.Run("ge", func(t *testing.T) {
		const ell = 5
		x := big.NewInt(13)
		_, r, err := p.CommitRandom(x)
		if err != nil {
			t.Fatal(err)
		}
		recv := NewReceiver(p, x, r)
		pred := Predicate{GE, big.NewInt(10)}
		wit, req, err := recv.Prepare(pred, ell)
		if err != nil {
			t.Fatal(err)
		}
		env, err := Compose(p, pred, ell, req, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recv.Open(env, wit)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Error("GE payload mismatch over jacobian")
		}
	})
}
