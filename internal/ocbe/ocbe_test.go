package ocbe

import (
	"bytes"
	"math/big"
	"sync"
	"testing"

	"ppcd/internal/pedersen"
	"ppcd/internal/schnorr"
)

// Tests run over the 2048-bit Schnorr group: it behaves identically to the
// Jacobian through the group interface and is much faster. The g2-specific
// integration is covered in TestEQOverJacobian in ocbe_g2_test.go.
var (
	paramsOnce sync.Once
	testParams *pedersen.Params
)

func params(t *testing.T) *pedersen.Params {
	t.Helper()
	paramsOnce.Do(func() {
		p, err := pedersen.Setup(schnorr.Must2048(), []byte("ocbe-test"))
		if err != nil {
			panic(err)
		}
		testParams = p
	})
	return testParams
}

const testEll = 10

// runProtocol executes the full OCBE flow for a receiver with committed
// value x against predicate pred and returns the opened payload (or error).
func runProtocol(t *testing.T, x int64, pred Predicate, msg []byte) ([]byte, error) {
	t.Helper()
	p := params(t)
	c, r, err := p.CommitRandom(big.NewInt(x))
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	recv := NewReceiver(p, big.NewInt(x), r)
	wit, req, err := recv.Prepare(pred, testEll)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Compose(p, pred, testEll, req, msg)
	if err != nil {
		t.Fatal(err)
	}
	return recv.Open(env, wit)
}

// TestComposeBatch covers the pooled compose path over the (lane-less)
// Schnorr group: mixed predicates including the two-branch ≠, round trips
// for every envelope, and per-item error isolation — one corrupt request
// must not block the rest of the batch.
func TestComposeBatch(t *testing.T) {
	p := params(t)
	msg := []byte("batched css payload")
	x := int64(25)
	_, r, err := p.CommitRandom(big.NewInt(x))
	if err != nil {
		t.Fatal(err)
	}
	recv := NewReceiver(p, big.NewInt(x), r)
	preds := []Predicate{
		{Op: EQ, X0: big.NewInt(25)},
		{Op: GE, X0: big.NewInt(10)},
		{Op: NE, X0: big.NewInt(11)},
		{Op: LE, X0: big.NewInt(100)},
	}
	items := make([]ComposeItem, 0, len(preds)+1)
	wits := make([]*Witness, 0, len(preds))
	for _, pred := range preds {
		wit, req, err := recv.Prepare(pred, testEll)
		if err != nil {
			t.Fatal(err)
		}
		wits = append(wits, wit)
		items = append(items, ComposeItem{Pred: pred, Ell: testEll, Req: req, Msg: msg})
	}
	// A corrupt item: commitment bytes that do not unmarshal.
	items = append(items, ComposeItem{
		Pred: Predicate{Op: EQ, X0: big.NewInt(1)},
		Ell:  testEll,
		Req:  &Request{Commitment: []byte{0xff}, Bits: []*BitCommitments{{}}},
		Msg:  msg,
	})
	envs, errs := ComposeBatch(p, items)
	if len(envs) != len(items) || len(errs) != len(items) {
		t.Fatalf("shape: %d envs, %d errs for %d items", len(envs), len(errs), len(items))
	}
	for i := range preds {
		if errs[i] != nil {
			t.Fatalf("item %d (%v): %v", i, preds[i], errs[i])
		}
		got, err := recv.Open(envs[i], wits[i])
		if err != nil {
			t.Fatalf("item %d (%v): open: %v", i, preds[i], err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("item %d (%v): payload mismatch", i, preds[i])
		}
	}
	bad := len(items) - 1
	if errs[bad] == nil || envs[bad] != nil {
		t.Fatalf("corrupt item: want error and nil envelope, got err=%v env=%v", errs[bad], envs[bad])
	}
}

func TestAllOpsSatisfiedAndUnsatisfied(t *testing.T) {
	msg := []byte("the conditional subscription secret")
	cases := []struct {
		name string
		x    int64
		pred Predicate
		want bool
	}{
		{"eq-true", 28, Predicate{EQ, big.NewInt(28)}, true},
		{"eq-false", 28, Predicate{EQ, big.NewInt(29)}, false},
		{"ge-true-strict", 60, Predicate{GE, big.NewInt(59)}, true},
		{"ge-true-boundary", 59, Predicate{GE, big.NewInt(59)}, true},
		{"ge-false", 58, Predicate{GE, big.NewInt(59)}, false},
		{"gt-true", 60, Predicate{GT, big.NewInt(59)}, true},
		{"gt-false-boundary", 59, Predicate{GT, big.NewInt(59)}, false},
		{"le-true-boundary", 5, Predicate{LE, big.NewInt(5)}, true},
		{"le-true", 4, Predicate{LE, big.NewInt(5)}, true},
		{"le-false", 6, Predicate{LE, big.NewInt(5)}, false},
		{"lt-true", 4, Predicate{LT, big.NewInt(5)}, true},
		{"lt-false-boundary", 5, Predicate{LT, big.NewInt(5)}, false},
		{"ne-true-above", 7, Predicate{NE, big.NewInt(5)}, true},
		{"ne-true-below", 3, Predicate{NE, big.NewInt(5)}, true},
		{"ne-false", 5, Predicate{NE, big.NewInt(5)}, false},
		{"ge-zero-value", 0, Predicate{GE, big.NewInt(0)}, true},
		{"le-zero-threshold", 0, Predicate{LE, big.NewInt(0)}, true},
		{"lt-zero-threshold", 0, Predicate{LT, big.NewInt(0)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := runProtocol(t, tc.x, tc.pred, msg)
			if tc.want {
				if err != nil {
					t.Fatalf("expected open, got %v", err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("payload mismatch")
				}
			} else if err == nil {
				t.Fatalf("expected failure, opened successfully")
			}
		})
	}
}

func TestPredicateEval(t *testing.T) {
	x := big.NewInt(10)
	checks := []struct {
		p    Predicate
		want bool
	}{
		{Predicate{EQ, big.NewInt(10)}, true},
		{Predicate{NE, big.NewInt(10)}, false},
		{Predicate{GT, big.NewInt(9)}, true},
		{Predicate{GE, big.NewInt(11)}, false},
		{Predicate{LT, big.NewInt(11)}, true},
		{Predicate{LE, big.NewInt(9)}, false},
	}
	for _, c := range checks {
		if c.p.Eval(x) != c.want {
			t.Errorf("%v.Eval(10) = %v", c.p, !c.want)
		}
	}
}

func TestParseOp(t *testing.T) {
	good := map[string]CompareOp{"=": EQ, "==": EQ, "!=": NE, "<>": NE, ">": GT, ">=": GE, "<": LT, "<=": LE}
	for s, want := range good {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseOp("~"); err == nil {
		t.Error("bad op accepted")
	}
}

func TestOpString(t *testing.T) {
	if EQ.String() != "=" || NE.String() != "!=" || GE.String() != ">=" {
		t.Error("op strings wrong")
	}
	if CompareOp(99).String() == "" {
		t.Error("unknown op has empty string")
	}
}

func TestSenderRejectsForgedBitCommitments(t *testing.T) {
	// A malicious receiver that sends bit commitments not recombining to its
	// registered commitment must be rejected (ErrBadCommitments).
	p := params(t)
	x := big.NewInt(58)
	_, r, err := p.CommitRandom(x)
	if err != nil {
		t.Fatal(err)
	}
	recv := NewReceiver(p, x, r)
	pred := Predicate{GE, big.NewInt(59)}
	_, req, err := recv.Prepare(pred, testEll)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: replace the first bit commitment with a commitment to 1 under
	// fresh randomness.
	forged, _, err := p.CommitRandom(big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	req.Bits[0].Cs[0] = p.G.Marshal(forged)
	if _, err := Compose(p, pred, testEll, req, []byte("m")); err != ErrBadCommitments {
		t.Errorf("expected ErrBadCommitments, got %v", err)
	}
}

func TestEllValidation(t *testing.T) {
	p := params(t)
	recv := NewReceiver(p, big.NewInt(5), big.NewInt(7))
	if _, _, err := recv.Prepare(Predicate{GE, big.NewInt(3)}, 0); err != ErrEllRange {
		t.Errorf("ell=0: got %v", err)
	}
	// ell too large for the group order.
	if _, _, err := recv.Prepare(Predicate{GE, big.NewInt(3)}, 4096); err != ErrEllRange {
		t.Errorf("huge ell: got %v", err)
	}
}

func TestComposeValidation(t *testing.T) {
	p := params(t)
	pred := Predicate{GE, big.NewInt(3)}
	if _, err := Compose(p, pred, testEll, &Request{Commitment: []byte("junk")}, []byte("m")); err == nil {
		t.Error("garbage commitment accepted")
	}
	recv := NewReceiver(p, big.NewInt(5), big.NewInt(7))
	_, req, err := recv.Prepare(Predicate{EQ, big.NewInt(5)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// EQ request used for GE predicate: shape mismatch (bits missing).
	if _, err := Compose(p, pred, testEll, req, []byte("m")); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestOpenShapeMismatch(t *testing.T) {
	p := params(t)
	recv := NewReceiver(p, big.NewInt(5), big.NewInt(7))
	witEQ, reqEQ, err := recv.Prepare(Predicate{EQ, big.NewInt(5)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Compose(p, Predicate{EQ, big.NewInt(5)}, 0, reqEQ, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recv.Open(env, nil); err == nil {
		t.Error("nil witness accepted")
	}
	// Mismatched witness for an NE envelope.
	env.Op = NE
	if _, err := recv.Open(env, witEQ); err == nil {
		t.Error("NE envelope with EQ witness accepted")
	}
}

func TestObliviousness(t *testing.T) {
	// The sender's view (the request) must be identically shaped whether or
	// not the receiver satisfies the predicate — same number of bit
	// commitments, all valid group elements. This is the structural half of
	// the obliviousness guarantee.
	p := params(t)
	pred := Predicate{GE, big.NewInt(59)}
	shapes := make([]int, 0, 2)
	for _, x := range []int64{60, 58} {
		_, r, err := p.CommitRandom(big.NewInt(x))
		if err != nil {
			t.Fatal(err)
		}
		recv := NewReceiver(p, big.NewInt(x), r)
		_, req, err := recv.Prepare(pred, testEll)
		if err != nil {
			t.Fatal(err)
		}
		if len(req.Bits) != 1 {
			t.Fatal("unexpected request shape")
		}
		shapes = append(shapes, len(req.Bits[0].Cs))
		for _, enc := range req.Bits[0].Cs {
			if _, err := p.G.Unmarshal(enc); err != nil {
				t.Fatalf("x=%d produced invalid commitment: %v", x, err)
			}
		}
		// Crucially, Compose succeeds in both cases — the sender cannot
		// tell the branches apart.
		if _, err := Compose(p, pred, testEll, req, []byte("m")); err != nil {
			t.Fatalf("x=%d: compose failed: %v", x, err)
		}
	}
	if shapes[0] != shapes[1] {
		t.Error("request shapes differ between satisfied and unsatisfied receivers")
	}
}

func TestLargeAttributeValues(t *testing.T) {
	// Values near the top of the ell-bit range.
	msg := []byte("m")
	top := int64(1<<testEll - 1)
	if got, err := runProtocol(t, top, Predicate{GE, big.NewInt(0)}, msg); err != nil || !bytes.Equal(got, msg) {
		t.Errorf("top value GE 0 failed: %v", err)
	}
	if got, err := runProtocol(t, 0, Predicate{LE, big.NewInt(top)}, msg); err != nil || !bytes.Equal(got, msg) {
		t.Errorf("0 LE top failed: %v", err)
	}
}

func TestWrongReceiverCannotOpen(t *testing.T) {
	// An envelope composed for one commitment cannot be opened by a receiver
	// with a different blinding, even with the same attribute value.
	p := params(t)
	x := big.NewInt(42)
	pred := Predicate{EQ, big.NewInt(42)}
	_, r1, err := p.CommitRandom(x)
	if err != nil {
		t.Fatal(err)
	}
	recv1 := NewReceiver(p, x, r1)
	_, req, err := recv1.Prepare(pred, 0)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Compose(p, pred, 0, req, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := p.CommitRandom(x)
	if err != nil {
		t.Fatal(err)
	}
	recv2 := NewReceiver(p, x, r2)
	wit2, _, err := recv2.Prepare(pred, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recv2.Open(env, wit2); err == nil {
		t.Error("receiver with different blinding opened the envelope")
	}
}

func TestEmptyMessage(t *testing.T) {
	got, err := runProtocol(t, 7, Predicate{EQ, big.NewInt(7)}, []byte{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("empty payload round trip failed")
	}
}
