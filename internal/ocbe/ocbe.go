// Package ocbe implements the Oblivious Commitment-Based Envelope protocols
// of Li & Li (OACerts), as used by the paper for privacy-preserving CSS
// delivery (§IV-C, §V-B). A sender with an access-control predicate composes
// an envelope around a message; a receiver holding a Pedersen commitment
// c = g^x·h^r can open the envelope if and only if its committed value x
// satisfies the predicate. The sender learns nothing about x — not even
// whether the opening succeeded.
//
// Supported predicates: =, ≠, >, ≥, <, ≤. EQ-OCBE follows §IV-C directly;
// the inequality protocols are the bit-by-bit GE-OCBE construction (and its
// mirror LE-OCBE); > , < and ≠ are derived:
//
//	x > x0  ⇔  x ≥ x0+1
//	x < x0  ⇔  x ≤ x0−1
//	x ≠ x0  ⇔  x ≥ x0+1  ∨  x ≤ x0−1   (two envelopes, same payload)
package ocbe

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"ppcd/internal/core"
	"ppcd/internal/group"
	"ppcd/internal/pedersen"
	"ppcd/internal/sym"
)

// CompareOp enumerates the comparison predicates supported by OCBE.
type CompareOp int

// The six comparison predicates.
const (
	EQ CompareOp = iota // =
	NE                  // ≠
	GT                  // >
	GE                  // ≥
	LT                  // <
	LE                  // ≤
)

// String implements fmt.Stringer.
func (op CompareOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case GT:
		return ">"
	case GE:
		return ">="
	case LT:
		return "<"
	case LE:
		return "<="
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// ParseOp parses the textual form of a comparison operator.
func ParseOp(s string) (CompareOp, error) {
	switch s {
	case "=", "==":
		return EQ, nil
	case "!=", "<>":
		return NE, nil
	case ">":
		return GT, nil
	case ">=":
		return GE, nil
	case "<":
		return LT, nil
	case "<=":
		return LE, nil
	}
	return 0, fmt.Errorf("ocbe: unknown comparison operator %q", s)
}

// Predicate is a comparison predicate "x op X0" over committed values.
type Predicate struct {
	Op CompareOp
	X0 *big.Int
}

// Eval reports whether the predicate holds for the plaintext value x (used
// in tests and by honest receivers deciding which branch to take).
func (p Predicate) Eval(x *big.Int) bool {
	c := x.Cmp(p.X0)
	switch p.Op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	}
	return false
}

// String implements fmt.Stringer.
func (p Predicate) String() string { return fmt.Sprintf("x %s %s", p.Op, p.X0) }

// padLen is the byte length of the per-bit XOR pads k_i and H(σ_i^j).
const padLen = sha256.Size

// Errors returned by the protocol functions.
var (
	// ErrOpenFailed reports that the envelope could not be opened — the
	// committed value does not satisfy the predicate (or the envelope is
	// corrupt). This is the *receiver's* local observation; the sender never
	// learns it.
	ErrOpenFailed = errors.New("ocbe: cannot open envelope (predicate not satisfied?)")
	// ErrBadCommitments reports that the receiver's auxiliary bit
	// commitments do not recombine to the registered commitment; the sender
	// aborts (paper §IV-C interaction step).
	ErrBadCommitments = errors.New("ocbe: bit commitments do not match registered commitment")
	// ErrEllRange reports an out-of-range bit-length parameter.
	ErrEllRange = errors.New("ocbe: ell must satisfy 1 <= ell and 2^ell < p/2")
)

// Receiver holds the committed attribute of the subscriber: the value x, the
// blinding r and the commitment c = g^x·h^r (from the identity token).
type Receiver struct {
	Params *pedersen.Params
	X, R   *big.Int
	C      group.Element
}

// NewReceiver builds the receiver state, recomputing the commitment from
// (x, r).
func NewReceiver(params *pedersen.Params, x, r *big.Int) *Receiver {
	return &Receiver{Params: params, X: x, R: r, C: params.Commit(x, r)}
}

// BitWitness is the receiver's private state for one bitwise (GE/LE-style)
// sub-protocol: the decomposition digits d_i and blindings r_i.
type BitWitness struct {
	ds []*big.Int
	rs []*big.Int
}

// BitCommitments is the public part the receiver sends to the sender: the
// marshaled commitments c_i = g^{d_i}·h^{r_i}.
type BitCommitments struct {
	Cs [][]byte
}

// Request is the receiver's registration message for one predicate: the
// marshaled attribute commitment and, for predicates with bitwise
// sub-protocols, one BitCommitments per sub-predicate.
type Request struct {
	Commitment []byte
	Bits       []*BitCommitments
}

// Witness is the receiver's private opening state matching a Request.
type Witness struct {
	wits []*BitWitness
}

// Envelope is the sender's response. For EQ it carries (η, C); for bitwise
// predicates additionally the pad pairs C_i^0, C_i^1; for ≠ it contains two
// sub-envelopes with the same payload.
type Envelope struct {
	Op   CompareOp
	X0   *big.Int
	Ell  int
	Eta  []byte    // marshaled η = h^y
	C    []byte    // payload ciphertext
	Bits []BitPair // bitwise protocols only
	Sub  []*Envelope
}

// BitPair is the pad pair (C_i^0, C_i^1) for one bit position.
type BitPair struct {
	C0, C1 []byte
}

// subOp is a normalized primitive sub-predicate: equality, or a
// greater-equal / less-equal test with an adjusted threshold.
type subOp struct {
	kind int // 0 = EQ, 1 = GE-raw, 2 = LE-raw
	x0   *big.Int
}

// normalize rewrites a predicate into primitive sub-predicates.
func normalize(p Predicate) []subOp {
	one := big.NewInt(1)
	switch p.Op {
	case EQ:
		return []subOp{{kind: 0, x0: p.X0}}
	case GE:
		return []subOp{{kind: 1, x0: p.X0}}
	case GT:
		return []subOp{{kind: 1, x0: new(big.Int).Add(p.X0, one)}}
	case LE:
		return []subOp{{kind: 2, x0: p.X0}}
	case LT:
		return []subOp{{kind: 2, x0: new(big.Int).Sub(p.X0, one)}}
	case NE:
		return []subOp{
			{kind: 1, x0: new(big.Int).Add(p.X0, one)},
			{kind: 2, x0: new(big.Int).Sub(p.X0, one)},
		}
	}
	return nil
}

func checkEll(params *pedersen.Params, ell int) error {
	if ell < 1 {
		return ErrEllRange
	}
	// 2^ell < p/2  ⇔  2^(ell+1) < p.
	bound := new(big.Int).Lsh(big.NewInt(1), uint(ell)+1)
	if bound.Cmp(params.Order()) >= 0 {
		return ErrEllRange
	}
	return nil
}

// Prepare builds the receiver's registration message and private witness for
// a predicate. ell is the attribute bit-length bound for bitwise
// sub-protocols (ignored for EQ).
func (r *Receiver) Prepare(pred Predicate, ell int) (*Witness, *Request, error) {
	subs := normalize(pred)
	req := &Request{Commitment: r.Params.G.Marshal(r.C)}
	wit := &Witness{}
	for _, s := range subs {
		if s.kind == 0 {
			// Equality needs no bit commitments; use an empty (not nil)
			// placeholder so requests survive gob encoding, which rejects
			// nil pointers inside slices.
			req.Bits = append(req.Bits, &BitCommitments{})
			wit.wits = append(wit.wits, nil)
			continue
		}
		if err := checkEll(r.Params, ell); err != nil {
			return nil, nil, err
		}
		w, bc, err := r.bitCommit(s, ell)
		if err != nil {
			return nil, nil, err
		}
		req.Bits = append(req.Bits, bc)
		wit.wits = append(wit.wits, w)
	}
	return wit, req, nil
}

// bitCommit runs the receiver's commitment phase of GE-OCBE (or its LE
// mirror) for one sub-predicate: decompose d into ℓ digits and commit to
// each so that the commitments recombine to the shifted attribute
// commitment.
func (r *Receiver) bitCommit(s subOp, ell int) (*BitWitness, *BitCommitments, error) {
	f := r.Params.Order()
	g := r.Params.G

	// GE: d = x − x0 and the blindings must recombine to r.
	// LE: d = x0 − x and the blindings must recombine to −r.
	var d, rTarget *big.Int
	var satisfied bool
	if s.kind == 1 {
		d = new(big.Int).Sub(r.X, s.x0)
		rTarget = new(big.Int).Set(r.R)
		satisfied = r.X.Cmp(s.x0) >= 0
	} else {
		d = new(big.Int).Sub(s.x0, r.X)
		rTarget = new(big.Int).Neg(r.R)
		satisfied = r.X.Cmp(s.x0) <= 0
	}
	d.Mod(d, f)

	ds := make([]*big.Int, ell)
	if satisfied {
		// True branch: d < 2^ell, use its real binary digits.
		for i := 0; i < ell; i++ {
			ds[i] = big.NewInt(int64(d.Bit(i)))
		}
	} else {
		// False branch: random high digits; d_0 absorbs the difference and
		// is a full field element, so no pad index will match it.
		acc := big.NewInt(0)
		for i := ell - 1; i >= 1; i-- {
			b, err := rand.Int(rand.Reader, big.NewInt(2))
			if err != nil {
				return nil, nil, fmt.Errorf("ocbe: sampling digit: %w", err)
			}
			ds[i] = b
			acc.Add(acc, new(big.Int).Lsh(b, uint(i)))
		}
		d0 := new(big.Int).Sub(d, acc)
		d0.Mod(d0, f)
		ds[0] = d0
	}

	// Blindings: r_1..r_{ell-1} random, r_0 = rTarget − Σ 2^i r_i.
	rs := make([]*big.Int, ell)
	sum := big.NewInt(0)
	for i := 1; i < ell; i++ {
		ri, err := rand.Int(rand.Reader, f)
		if err != nil {
			return nil, nil, fmt.Errorf("ocbe: sampling blinding: %w", err)
		}
		rs[i] = ri
		sum.Add(sum, new(big.Int).Lsh(ri, uint(i)))
	}
	r0 := new(big.Int).Sub(rTarget, sum)
	r0.Mod(r0, f)
	rs[0] = r0

	bc := &BitCommitments{Cs: make([][]byte, ell)}
	parallelFor(ell, func(i int) error {
		bc.Cs[i] = g.Marshal(r.Params.Commit(ds[i], rs[i]))
		return nil
	})
	return &BitWitness{ds: ds, rs: rs}, bc, nil
}

// parallelFor runs f(0..n-1) across the shared bounded scheduler of
// internal/core and returns the first error. The bitwise OCBE steps are
// embarrassingly parallel across bit positions (Fig. 2 of the paper), and
// RegisterBatch stacks per-envelope parallelism on top of its own pool —
// routing both through core.Parallel bounds the total goroutine count
// instead of spawning a fresh fan-out per call.
func parallelFor(n int, f func(i int) error) error {
	var (
		mu  sync.Mutex
		got error
	)
	core.Parallel(runtime.GOMAXPROCS(0), n, func(i int) {
		if err := f(i); err != nil {
			mu.Lock()
			if got == nil {
				got = err
			}
			mu.Unlock()
		}
	})
	return got
}

// laneSigmas computes bases[i]^{ks[i]} (bases[i]^{ks[0]} when len(ks)==1)
// through the group's lane-parallel kernel when it has one; groups without
// one (schnorr) serve each lane through the scalar Exp in parallel.
func laneSigmas(g group.Group, bases []group.Element, ks []*big.Int) []group.Element {
	if lg, ok := g.(group.LaneExpGroup); ok {
		return lg.LaneExp(bases, ks)
	}
	out := make([]group.Element, len(bases))
	parallelFor(len(bases), func(i int) error {
		k := ks[0]
		if len(ks) > 1 {
			k = ks[i]
		}
		out[i] = g.Exp(bases[i], k)
		return nil
	})
	return out
}

// Compose builds the sender's envelope around msg for the given predicate
// and the receiver's request. The sender verifies that any auxiliary bit
// commitments recombine to the registered commitment and otherwise learns
// nothing about the committed value.
func Compose(params *pedersen.Params, pred Predicate, ell int, req *Request, msg []byte) (*Envelope, error) {
	g := params.G
	c, err := g.Unmarshal(req.Commitment)
	if err != nil {
		return nil, fmt.Errorf("ocbe: bad commitment: %w", err)
	}
	subs := normalize(pred)
	if len(req.Bits) != len(subs) {
		return nil, fmt.Errorf("ocbe: request has %d sub-parts, predicate needs %d", len(req.Bits), len(subs))
	}
	if len(subs) == 1 {
		return composeSub(params, c, subs[0], ell, req.Bits[0], msg, pred)
	}
	// Disjunction (≠): one envelope per branch, same payload.
	env := &Envelope{Op: pred.Op, X0: pred.X0, Ell: ell}
	for i, s := range subs {
		sub, err := composeSub(params, c, s, ell, req.Bits[i], msg, pred)
		if err != nil {
			return nil, err
		}
		env.Sub = append(env.Sub, sub)
	}
	return env, nil
}

func composeSub(params *pedersen.Params, c group.Element, s subOp, ell int, bits *BitCommitments, msg []byte, pred Predicate) (*Envelope, error) {
	if s.kind == 0 {
		return composeEQ(params, c, s.x0, msg, pred)
	}
	if err := checkEll(params, ell); err != nil {
		return nil, err
	}
	if bits == nil || len(bits.Cs) != ell {
		return nil, fmt.Errorf("ocbe: predicate needs %d bit commitments", ell)
	}
	return composeBitwise(params, c, s, ell, bits, msg, pred)
}

// eqPlan is the deferred-exponentiation form of EQ-OCBE: everything except
// σ = (c·g^{−x0})^y is done at plan time, so a batch can pool the single σ
// exponentiation with every other envelope's lanes.
type eqPlan struct {
	env  *Envelope
	base group.Element // c·g^{−x0}
	y    *big.Int
	msg  []byte
}

func planEQ(params *pedersen.Params, c group.Element, x0 *big.Int, msg []byte, pred Predicate) (*eqPlan, error) {
	g := params.G
	y, err := randNonZero(g.Order())
	if err != nil {
		return nil, err
	}
	eta := params.ExpH(y)
	env := &Envelope{Op: pred.Op, X0: pred.X0, Eta: g.Marshal(eta)}
	return &eqPlan{env: env, base: params.Shift(c, x0), y: y, msg: msg}, nil
}

// finish derives the payload key from σ and seals the message.
func (p *eqPlan) finish(g group.Group, sigma group.Element) error {
	key := sym.DeriveKey([]byte("ocbe/eq"), g.Marshal(sigma))
	ct, err := sym.Encrypt(key, p.msg)
	if err != nil {
		return err
	}
	p.env.C = ct
	return nil
}

// composeEQ implements the sender side of EQ-OCBE: σ = (c·g^{−x0})^y,
// η = h^y, C = E_{H(σ)}[msg].
func composeEQ(params *pedersen.Params, c group.Element, x0 *big.Int, msg []byte, pred Predicate) (*Envelope, error) {
	p, err := planEQ(params, c, x0, msg, pred)
	if err != nil {
		return nil, err
	}
	if err := p.finish(params.G, params.G.Exp(p.base, p.y)); err != nil {
		return nil, err
	}
	return p.env, nil
}

// bitwisePlan is the deferred-exponentiation form of one GE/LE-OCBE
// envelope: the recombination check, pads, payload ciphertext and η are
// all computed at plan time; what remains are the 2ℓ σ exponentiations
// [c_0^y, (c_0·g⁻¹)^y, c_1^y, …], all sharing the scalar y — exactly the
// shape the lane kernel batches.
type bitwisePlan struct {
	env   *Envelope
	pads  []byte          // ℓ·padLen bytes; pad i is pads[i·padLen:(i+1)·padLen]
	bases []group.Element // 2ℓ lanes: bases[2i] = c_i, bases[2i+1] = c_i·g⁻¹
	y     *big.Int
}

func planBitwise(params *pedersen.Params, c group.Element, s subOp, ell int, bits *BitCommitments, msg []byte, pred Predicate) (*bitwisePlan, error) {
	g := params.G
	cis := make([]group.Element, ell)
	for i, enc := range bits.Cs {
		ci, err := g.Unmarshal(enc)
		if err != nil {
			return nil, fmt.Errorf("ocbe: bad bit commitment %d: %w", i, err)
		}
		cis[i] = ci
	}

	// Verify recombination: GE: c·g^{−x0} = Π c_i^{2^i};
	// LE: g^{x0}·c^{−1} = Π c_i^{2^i}. One Horner pass
	// (…(c_{ℓ−1}² · c_{ℓ−2})² …)² · c_0 costs ℓ−1 doublings + ℓ−1
	// additions, against the O(ℓ²) doublings of ℓ separate
	// exponentiations by 2^i.
	var target group.Element
	if s.kind == 1 {
		target = params.Shift(c, s.x0)
	} else {
		target = g.Op(params.ExpG(s.x0), g.Inverse(c))
	}
	recomb := cis[ell-1]
	for i := ell - 2; i >= 0; i-- {
		recomb = g.Op(g.Op(recomb, recomb), cis[i])
	}
	if !g.Equal(recomb, target) {
		return nil, ErrBadCommitments
	}

	// Random pads k_i — one read, sliced — and the session key
	// k = H(k_0‖…‖k_{ℓ−1}); the flat buffer is that concatenation.
	pads := make([]byte, ell*padLen)
	if _, err := rand.Read(pads); err != nil {
		return nil, fmt.Errorf("ocbe: pad: %w", err)
	}
	key := sym.DeriveKey([]byte("ocbe/bitwise"), pads)
	ct, err := sym.Encrypt(key, msg)
	if err != nil {
		return nil, err
	}

	y, err := randNonZero(g.Order())
	if err != nil {
		return nil, err
	}
	eta := params.ExpH(y)
	gBase, _ := params.Bases()
	gInv := g.Inverse(gBase)

	bases := make([]group.Element, 2*ell)
	for i, ci := range cis {
		bases[2*i] = ci
		bases[2*i+1] = g.Op(ci, gInv)
	}
	env := &Envelope{Op: pred.Op, X0: pred.X0, Ell: ell, Eta: g.Marshal(eta), C: ct, Bits: make([]BitPair, ell)}
	return &bitwisePlan{env: env, pads: pads, bases: bases, y: y}, nil
}

// finish fills the pad pairs from the lane results: sigmas[2i] = σ_i^0,
// sigmas[2i+1] = σ_i^1.
func (p *bitwisePlan) finish(g group.Group, sigmas []group.Element) {
	for i := range p.env.Bits {
		pad := p.pads[i*padLen : (i+1)*padLen]
		p.env.Bits[i] = BitPair{
			C0: xorPad(hashSigma(g, sigmas[2*i]), pad),
			C1: xorPad(hashSigma(g, sigmas[2*i+1]), pad),
		}
	}
}

// composeBitwise implements the sender side of GE-OCBE (kind 1) and LE-OCBE
// (kind 2): the plan stage up front, then all 2ℓ σ exponentiations as one
// shared-scalar lane batch.
func composeBitwise(params *pedersen.Params, c group.Element, s subOp, ell int, bits *BitCommitments, msg []byte, pred Predicate) (*Envelope, error) {
	p, err := planBitwise(params, c, s, ell, bits, msg, pred)
	if err != nil {
		return nil, err
	}
	p.finish(params.G, laneSigmas(params.G, p.bases, []*big.Int{p.y}))
	return p.env, nil
}

// ComposeItem is one envelope request inside ComposeBatch.
type ComposeItem struct {
	Pred Predicate
	Ell  int
	Req  *Request
	Msg  []byte
}

// subPlan is one sub-envelope's share of a ComposeBatch lane pool: its
// bases (all driven by the one scalar y), the slice of the pooled results
// assigned back to it, and the completion consuming them.
type subPlan struct {
	bases  []group.Element
	y      *big.Int
	sigmas []group.Element
	fin    func(sigmas []group.Element) error
}

// ComposeBatch builds one envelope per item, pooling every σ
// exponentiation — 2ℓ per bitwise sub-envelope, one per EQ envelope —
// across all items into a single lane-batched multi-exponentiation, so a
// registration batch of many conditions amortizes field inversions across
// hundreds of lanes. Failures are per item: errs[i] == nil guarantees
// envs[i] is a complete envelope, and one bad request never blocks the
// rest of the batch.
func ComposeBatch(params *pedersen.Params, items []ComposeItem) (envs []*Envelope, errs []error) {
	g := params.G
	envs = make([]*Envelope, len(items))
	errs = make([]error, len(items))
	type itemState struct {
		env  *Envelope
		subs []*subPlan
	}
	states := make([]*itemState, len(items))

	// Stage 1 — plan: unmarshal, recombination checks, pads, payload
	// encryption and η for every item, parallel across items.
	plan := func(idx int) error {
		it := items[idx]
		c, err := g.Unmarshal(it.Req.Commitment)
		if err != nil {
			return fmt.Errorf("ocbe: bad commitment: %w", err)
		}
		subs := normalize(it.Pred)
		if len(it.Req.Bits) != len(subs) {
			return fmt.Errorf("ocbe: request has %d sub-parts, predicate needs %d", len(it.Req.Bits), len(subs))
		}
		st := &itemState{}
		var subEnvs []*Envelope
		for i, s := range subs {
			if s.kind == 0 {
				ep, err := planEQ(params, c, s.x0, it.Msg, it.Pred)
				if err != nil {
					return err
				}
				st.subs = append(st.subs, &subPlan{
					bases: []group.Element{ep.base},
					y:     ep.y,
					fin:   func(sig []group.Element) error { return ep.finish(g, sig[0]) },
				})
				subEnvs = append(subEnvs, ep.env)
				continue
			}
			if err := checkEll(params, it.Ell); err != nil {
				return err
			}
			bits := it.Req.Bits[i]
			if bits == nil || len(bits.Cs) != it.Ell {
				return fmt.Errorf("ocbe: predicate needs %d bit commitments", it.Ell)
			}
			bp, err := planBitwise(params, c, s, it.Ell, bits, it.Msg, it.Pred)
			if err != nil {
				return err
			}
			st.subs = append(st.subs, &subPlan{
				bases: bp.bases,
				y:     bp.y,
				fin:   func(sig []group.Element) error { bp.finish(g, sig); return nil },
			})
			subEnvs = append(subEnvs, bp.env)
		}
		if len(subEnvs) == 1 {
			st.env = subEnvs[0]
		} else {
			st.env = &Envelope{Op: it.Pred.Op, X0: it.Pred.X0, Ell: it.Ell, Sub: subEnvs}
		}
		states[idx] = st
		return nil
	}
	parallelFor(len(items), func(idx int) error {
		if err := plan(idx); err != nil {
			errs[idx] = err
		}
		return nil
	})

	// Stage 2 — one pooled lane exponentiation across every surviving
	// item. Lanes of one sub-envelope share a *big.Int, so the lane
	// kernel decomposes each distinct y once.
	var bases []group.Element
	var ks []*big.Int
	for _, st := range states {
		if st == nil {
			continue
		}
		for _, sp := range st.subs {
			for _, b := range sp.bases {
				bases = append(bases, b)
				ks = append(ks, sp.y)
			}
		}
	}
	if len(bases) > 0 {
		sigmas := laneSigmas(g, bases, ks)
		off := 0
		for _, st := range states {
			if st == nil {
				continue
			}
			for _, sp := range st.subs {
				sp.sigmas = sigmas[off : off+len(sp.bases)]
				off += len(sp.bases)
			}
		}
	}

	// Stage 3 — finish: hash σ's into pad pairs, seal EQ payloads.
	parallelFor(len(items), func(idx int) error {
		st := states[idx]
		if st == nil {
			return nil
		}
		for _, sp := range st.subs {
			if err := sp.fin(sp.sigmas); err != nil {
				errs[idx] = err
				return nil
			}
		}
		envs[idx] = st.env
		return nil
	})
	return envs, errs
}

func hashSigma(g group.Group, e group.Element) []byte {
	h := sha256.New()
	h.Write([]byte("ocbe/sigma-pad"))
	h.Write(g.Marshal(e))
	return h.Sum(nil)
}

func xorPad(a, b []byte) []byte {
	out := make([]byte, padLen)
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Open attempts to open the envelope with the receiver's witness from
// Prepare. It returns the payload on success and ErrOpenFailed when the
// committed value does not satisfy the predicate.
func (r *Receiver) Open(env *Envelope, wit *Witness) ([]byte, error) {
	subs := normalize(Predicate{Op: env.Op, X0: env.X0})
	envs := env.Sub
	if len(envs) == 0 {
		envs = []*Envelope{env}
	}
	if len(envs) != len(subs) || wit == nil || len(wit.wits) != len(subs) {
		return nil, fmt.Errorf("ocbe: envelope/witness shape mismatch")
	}
	var lastErr error = ErrOpenFailed
	for i, sub := range envs {
		var msg []byte
		var err error
		if subs[i].kind == 0 {
			msg, err = r.openEQ(sub)
		} else {
			msg, err = r.openBitwise(sub, wit.wits[i])
		}
		if err == nil {
			return msg, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// openEQ implements the receiver side of EQ-OCBE: σ' = η^r.
func (r *Receiver) openEQ(env *Envelope) ([]byte, error) {
	g := r.Params.G
	eta, err := g.Unmarshal(env.Eta)
	if err != nil {
		return nil, fmt.Errorf("ocbe: bad eta: %w", err)
	}
	sigma := g.Exp(eta, r.R)
	key := sym.DeriveKey([]byte("ocbe/eq"), g.Marshal(sigma))
	msg, err := sym.Decrypt(key, env.C)
	if err != nil {
		return nil, ErrOpenFailed
	}
	return msg, nil
}

// openBitwise implements the receiver side of GE/LE-OCBE: recover each pad
// as k'_i = H(η^{r_i}) ⊕ C_i^{d_i} and rebuild the session key.
func (r *Receiver) openBitwise(env *Envelope, wit *BitWitness) ([]byte, error) {
	if wit == nil || len(wit.ds) != len(env.Bits) {
		return nil, fmt.Errorf("ocbe: witness does not match envelope")
	}
	g := r.Params.G
	eta, err := g.Unmarshal(env.Eta)
	if err != nil {
		return nil, fmt.Errorf("ocbe: bad eta: %w", err)
	}
	// Select each bit's pad first: a non-bit digit means the receiver is on
	// the false branch and cannot open (paper GE-OCBE Open can only index
	// j∈{0,1}), so no exponentiations are spent on a doomed envelope.
	pads := make([][]byte, len(env.Bits))
	for i := range env.Bits {
		switch {
		case wit.ds[i].Sign() == 0:
			pads[i] = env.Bits[i].C0
		case wit.ds[i].Cmp(big.NewInt(1)) == 0:
			pads[i] = env.Bits[i].C1
		default:
			return nil, ErrOpenFailed
		}
	}
	// σ'_i = η^{r_i}: one lane batch over the shared base η with per-lane
	// scalars, so the lane kernel builds a single odd-multiples table.
	bases := make([]group.Element, len(env.Bits))
	for i := range bases {
		bases[i] = eta
	}
	sigmas := laneSigmas(g, bases, wit.rs)
	keyMaterial := make([]byte, 0, len(env.Bits)*padLen)
	for i := range sigmas {
		keyMaterial = append(keyMaterial, xorPad(hashSigma(g, sigmas[i]), pads[i])...)
	}
	key := sym.DeriveKey([]byte("ocbe/bitwise"), keyMaterial)
	msg, err := sym.Decrypt(key, env.C)
	if err != nil {
		return nil, ErrOpenFailed
	}
	return msg, nil
}

func randNonZero(order *big.Int) (*big.Int, error) {
	for {
		y, err := rand.Int(rand.Reader, order)
		if err != nil {
			return nil, fmt.Errorf("ocbe: sampling exponent: %w", err)
		}
		if y.Sign() != 0 {
			return y, nil
		}
	}
}
