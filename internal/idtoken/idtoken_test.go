package idtoken

import (
	"math/big"
	"sync"
	"testing"

	"ppcd/internal/pedersen"
	"ppcd/internal/schnorr"
)

var (
	once       sync.Once
	testParams *pedersen.Params
	testMgr    *Manager
)

func setup(t *testing.T) (*pedersen.Params, *Manager) {
	t.Helper()
	once.Do(func() {
		p, err := pedersen.Setup(schnorr.Must2048(), []byte("idtoken-test"))
		if err != nil {
			panic(err)
		}
		m, err := NewManager(p)
		if err != nil {
			panic(err)
		}
		testParams, testMgr = p, m
	})
	return testParams, testMgr
}

func TestIssueAndVerify(t *testing.T) {
	p, m := setup(t)
	tok, sec, err := m.Issue("pn-1492", "age", big.NewInt(28))
	if err != nil {
		t.Fatal(err)
	}
	if tok.Nym != "pn-1492" || tok.Tag != "age" {
		t.Error("token fields wrong")
	}
	if err := Verify(p, m.PublicKey(), tok); err != nil {
		t.Errorf("valid token rejected: %v", err)
	}
	// The secret opens the commitment.
	c, err := p.G.Unmarshal(tok.Commitment)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Verify(c, sec.Value, sec.Blinding) {
		t.Error("secret does not open commitment")
	}
}

func TestIssueValidation(t *testing.T) {
	_, m := setup(t)
	if _, _, err := m.Issue("", "age", big.NewInt(1)); err == nil {
		t.Error("empty nym accepted")
	}
	if _, _, err := m.Issue("pn-1", "", big.NewInt(1)); err == nil {
		t.Error("empty tag accepted")
	}
	if _, _, err := m.Issue("pn-1", "age", big.NewInt(-5)); err == nil {
		t.Error("negative value accepted")
	}
	if _, _, err := m.Issue("pn-1", "age", m.Params().Order()); err == nil {
		t.Error("out-of-field value accepted")
	}
	if _, _, err := m.Issue("pn-1", "age", nil); err == nil {
		t.Error("nil value accepted")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	p, m := setup(t)
	tok, _, err := m.Issue("pn-1", "role", EncodeValue(p.Order(), "nurse"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*Token){
		func(t *Token) { t.Nym = "pn-2" },
		func(t *Token) { t.Tag = "level" },
		func(t *Token) { t.Sig[0] ^= 1 },
	}
	for i, mutate := range cases {
		bad := *tok
		bad.Sig = append([]byte(nil), tok.Sig...)
		bad.Commitment = append([]byte(nil), tok.Commitment...)
		mutate(&bad)
		if err := Verify(p, m.PublicKey(), &bad); err == nil {
			t.Errorf("case %d: tampered token accepted", i)
		}
	}
	if err := Verify(p, m.PublicKey(), nil); err == nil {
		t.Error("nil token accepted")
	}
	bad := *tok
	bad.Commitment = []byte("garbage")
	if err := Verify(p, m.PublicKey(), &bad); err == nil {
		t.Error("garbage commitment accepted")
	}
}

func TestVerifyRejectsForeignIssuer(t *testing.T) {
	p, m := setup(t)
	other, err := NewManager(p)
	if err != nil {
		t.Fatal(err)
	}
	tok, _, err := other.Issue("pn-9", "age", big.NewInt(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, m.PublicKey(), tok); err == nil {
		t.Error("token from foreign issuer accepted")
	}
}

func TestIssueString(t *testing.T) {
	p, m := setup(t)
	tok, sec, err := m.IssueString("pn-3", "role", "doctor")
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, m.PublicKey(), tok); err != nil {
		t.Fatal(err)
	}
	if sec.Value.Cmp(EncodeValue(p.Order(), "doctor")) != 0 {
		t.Error("IssueString encoded value inconsistently")
	}
}

func TestEncodeValue(t *testing.T) {
	order := big.NewInt(1 << 20)
	// Numeric literals pass through.
	if EncodeValue(order, "28").Int64() != 28 {
		t.Error("numeric encode wrong")
	}
	if EncodeValue(order, "  59 ").Int64() != 59 {
		t.Error("whitespace not trimmed")
	}
	// Strings hash into field.
	v := EncodeValue(order, "nurse")
	if v.Sign() < 0 || v.Cmp(order) >= 0 {
		t.Error("hashed value out of range")
	}
	if EncodeValue(order, "nurse").Cmp(v) != 0 {
		t.Error("encoding not deterministic")
	}
	if EncodeValue(order, "doctor").Cmp(v) == 0 {
		t.Error("distinct strings collide (1/2^20 chance)")
	}
}

func TestIsNumeric(t *testing.T) {
	if !IsNumeric("42") || !IsNumeric(" 0 ") {
		t.Error("numerics rejected")
	}
	if IsNumeric("nurse") || IsNumeric("-1") || IsNumeric("") {
		t.Error("non-numerics accepted")
	}
}

func TestSigningBytesUnambiguous(t *testing.T) {
	// ("ab","c") and ("a","bc") must have different signing bytes.
	t1 := &Token{Nym: "ab", Tag: "c", Commitment: []byte("x")}
	t2 := &Token{Nym: "a", Tag: "bc", Commitment: []byte("x")}
	if string(t1.SigningBytes()) == string(t2.SigningBytes()) {
		t.Error("signing bytes ambiguous")
	}
}

func TestNewManagerNilParams(t *testing.T) {
	if _, err := NewManager(nil); err == nil {
		t.Error("nil params accepted")
	}
}
