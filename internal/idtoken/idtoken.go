// Package idtoken implements identity tokens and the Identity Manager
// (IdMgr) of the paper's first phase (§V-A). An identity token is the tuple
//
//	IT = (nym, id-tag, c, σ)
//
// where nym is a pseudonym, id-tag names the attribute, c = g^x·h^r is a
// Pedersen commitment to the encoded attribute value, and σ is the IdMgr's
// signature over the first three components. The Sub privately keeps the
// opening (x, r); it never reveals x to anyone after issuance.
package idtoken

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"strings"

	"ppcd/internal/pedersen"
	"ppcd/internal/sig"
)

// Token is the public identity token a subscriber registers at publishers.
type Token struct {
	Nym        string
	Tag        string
	Commitment []byte // marshaled group element c = g^x·h^r
	Sig        []byte // IdMgr signature over (nym, tag, commitment)
}

// Secret is the private opening of a token's commitment, held only by the
// subscriber.
type Secret struct {
	Value    *big.Int // encoded attribute value x
	Blinding *big.Int // r
}

// SigningBytes returns the canonical byte string the IdMgr signs:
// length-prefixed (nym, tag, commitment) to rule out ambiguity.
func (t *Token) SigningBytes() []byte {
	var out []byte
	for _, part := range [][]byte{[]byte(t.Nym), []byte(t.Tag), t.Commitment} {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(part)))
		out = append(out, n[:]...)
		out = append(out, part...)
	}
	return out
}

// Manager is the trusted Identity Manager: it validates attribute claims
// (out of scope here, per the paper), encodes values into the commitment
// field, commits, and signs.
type Manager struct {
	params *pedersen.Params
	signer *sig.Signer
}

// NewManager creates an IdMgr over the given Pedersen parameters with a
// fresh signing key.
func NewManager(params *pedersen.Params) (*Manager, error) {
	if params == nil {
		return nil, errors.New("idtoken: nil commitment parameters")
	}
	s, err := sig.NewSigner()
	if err != nil {
		return nil, err
	}
	return &Manager{params: params, signer: s}, nil
}

// NewManagerFromSeed creates an IdMgr whose signing key is derived from a
// persistent 32-byte seed, so the same issuing identity survives restarts
// (command-line deployments persist the seed, not the expanded key).
func NewManagerFromSeed(params *pedersen.Params, seed []byte) (*Manager, error) {
	if params == nil {
		return nil, errors.New("idtoken: nil commitment parameters")
	}
	s, err := sig.NewSignerFromSeed(seed)
	if err != nil {
		return nil, err
	}
	return &Manager{params: params, signer: s}, nil
}

// Params returns the Pedersen parameters tokens are issued under.
func (m *Manager) Params() *pedersen.Params { return m.params }

// PublicKey returns the IdMgr's signature verification key, published to all
// parties.
func (m *Manager) PublicKey() sig.PublicKey { return m.signer.Public() }

// Issue issues an identity token binding the (already encoded) attribute
// value x to the pseudonym and tag, returning the public token and the
// private opening. It mirrors Example 1 of the paper.
func (m *Manager) Issue(nym, tag string, x *big.Int) (*Token, *Secret, error) {
	if nym == "" || tag == "" {
		return nil, nil, errors.New("idtoken: nym and tag must be non-empty")
	}
	if x == nil || x.Sign() < 0 || x.Cmp(m.params.Order()) >= 0 {
		return nil, nil, fmt.Errorf("idtoken: value out of field range")
	}
	c, r, err := m.params.CommitRandom(x)
	if err != nil {
		return nil, nil, err
	}
	t := &Token{Nym: nym, Tag: tag, Commitment: m.params.G.Marshal(c)}
	t.Sig = m.signer.Sign(t.SigningBytes())
	sec := &Secret{Value: new(big.Int).Set(x), Blinding: r}
	return t, sec, nil
}

// IssueString encodes a textual attribute value with EncodeValue and issues
// a token for it.
func (m *Manager) IssueString(nym, tag, value string) (*Token, *Secret, error) {
	x := EncodeValue(m.params.Order(), value)
	return m.Issue(nym, tag, x)
}

// Verify checks a token's signature against the IdMgr public key and that
// the commitment decodes to a valid group element. Publishers run this
// during registration (§V-B: "verifies the IdMgr's signature σ").
func Verify(params *pedersen.Params, pk sig.PublicKey, t *Token) error {
	if t == nil {
		return errors.New("idtoken: nil token")
	}
	// Signature first: Ed25519 verification is an order of magnitude cheaper
	// than the group-membership check of the commitment (a divisor validity
	// test on the Jacobian), so forged registrations are rejected before any
	// curve arithmetic runs.
	ok, err := pk.Verify(t.SigningBytes(), t.Sig)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("idtoken: signature verification failed")
	}
	if _, err := params.G.Unmarshal(t.Commitment); err != nil {
		return fmt.Errorf("idtoken: invalid commitment: %w", err)
	}
	return nil
}

// EncodeValue encodes an attribute value string as a field element "in a
// standard way" (paper §V-A): decimal integer literals map to themselves
// (so numeric comparison predicates work on them), anything else is hashed
// into the field (suitable for equality predicates only).
func EncodeValue(order *big.Int, v string) *big.Int {
	trimmed := strings.TrimSpace(v)
	if n, ok := new(big.Int).SetString(trimmed, 10); ok && n.Sign() >= 0 && n.Cmp(order) < 0 {
		return n
	}
	h := sha256.Sum256(append([]byte("ppcd/idtoken/encode/v1/"), trimmed...))
	wide := new(big.Int).SetBytes(h[:])
	return wide.Mod(wide, order)
}

// IsNumeric reports whether a value string encodes as a plain non-negative
// integer, i.e. whether inequality predicates are meaningful for it.
func IsNumeric(v string) bool {
	n, ok := new(big.Int).SetString(strings.TrimSpace(v), 10)
	return ok && n.Sign() >= 0
}
