package ff128

import (
	"crypto/rand"
	"math/big"
	"testing"

	"ppcd/internal/ffbig"
)

// paperQ is the 83-bit base field of the paper's genus-2 curve.
var paperQ, _ = new(big.Int).SetString("5000000000000000008503491", 10)

// testModuli covers the paper's field plus a small and a near-maximal
// modulus, and both square-root residue classes (paperQ ≡ 3, p1mod4 ≡ 1).
func testModuli(t *testing.T) []*big.Int {
	t.Helper()
	small := big.NewInt(1000003)
	// A 126-bit prime.
	big126, ok := new(big.Int).SetString("85070591730234615865843651857942052871", 10)
	if !ok || !big126.ProbablyPrime(32) {
		t.Fatal("bad 126-bit prime literal")
	}
	p1mod4 := big.NewInt(1000033) // ≡ 1 (mod 4): exercises the Sqrt fallback
	return []*big.Int{paperQ, small, big126, p1mod4}
}

func TestNewFieldRejects(t *testing.T) {
	for _, p := range []*big.Int{
		nil,
		big.NewInt(0),
		big.NewInt(2),
		big.NewInt(15), // composite
		new(big.Int).Lsh(big.NewInt(1), 130),
	} {
		if _, err := NewField(p); err == nil {
			t.Errorf("NewField(%v) accepted an invalid modulus", p)
		}
	}
}

// TestDifferentialAgainstFFBig drives every ff128 operation against the
// math/big reference on random operands.
func TestDifferentialAgainstFFBig(t *testing.T) {
	for _, p := range testModuli(t) {
		fast := MustField(p)
		ref := ffbig.MustField(p)
		for i := 0; i < 300; i++ {
			a, err := rand.Int(rand.Reader, p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := rand.Int(rand.Reader, p)
			if err != nil {
				t.Fatal(err)
			}
			fa, fb := fast.FromBig(a), fast.FromBig(b)

			check := func(op string, got Elem, want *big.Int) {
				t.Helper()
				if fast.ToBig(got).Cmp(want) != 0 {
					t.Fatalf("p=%s %s(%s, %s): fast=%s ref=%s", p, op, a, b, fast.ToBig(got), want)
				}
			}
			check("add", fast.Add(fa, fb), ref.Add(a, b))
			check("sub", fast.Sub(fa, fb), ref.Sub(a, b))
			check("neg", fast.Neg(fa), ref.Neg(a))
			check("mul", fast.Mul(fa, fb), ref.Mul(a, b))
			check("sq", fast.Sq(fa), ref.Sq(a))
			check("double", fast.Double(fa), ref.Add(a, a))

			if a.Sign() != 0 {
				inv, err := fast.Inv(fa)
				if err != nil {
					t.Fatal(err)
				}
				wantInv, err := ref.Inv(a)
				if err != nil {
					t.Fatal(err)
				}
				check("inv", inv, wantInv)
			}

			// Sqrt agreement: both must classify residues identically, and a
			// returned root must square back.
			r, err := fast.Sqrt(fa)
			if ref.IsSquare(a) {
				if err != nil {
					t.Fatalf("p=%s sqrt(%s): fast says non-residue, ref says residue", p, a)
				}
				if !fast.Sq(r).Equal(fa) {
					t.Fatalf("p=%s sqrt(%s)² != a", p, a)
				}
			} else if err == nil {
				t.Fatalf("p=%s sqrt(%s): fast returned a root of a non-residue", p, a)
			}

			// Exp on a random positive and a random negative exponent.
			e, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 160))
			if err != nil {
				t.Fatal(err)
			}
			got, err := fast.Exp(fa, e)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Exp(a, e)
			if err != nil {
				t.Fatal(err)
			}
			check("exp", got, want)
			if a.Sign() != 0 {
				ne := new(big.Int).Neg(e)
				got, err := fast.Exp(fa, ne)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Exp(a, ne)
				if err != nil {
					t.Fatal(err)
				}
				check("exp-neg", got, want)
			}
		}
	}
}

func TestRoundTripAndIdentities(t *testing.T) {
	f := MustField(paperQ)
	if !f.FromUint64(1).Equal(f.One()) {
		t.Error("FromUint64(1) != One")
	}
	if !f.FromBig(big.NewInt(0)).IsZero() {
		t.Error("FromBig(0) not zero")
	}
	neg := f.FromBig(big.NewInt(-5))
	want := new(big.Int).Sub(paperQ, big.NewInt(5))
	if f.ToBig(neg).Cmp(want) != 0 {
		t.Errorf("FromBig(-5) = %s, want %s", f.ToBig(neg), want)
	}
	over := f.FromBig(new(big.Int).Add(paperQ, big.NewInt(7)))
	if f.ToBig(over).Cmp(big.NewInt(7)) != 0 {
		t.Errorf("FromBig(p+7) = %s, want 7", f.ToBig(over))
	}
	for i := 0; i < 50; i++ {
		x, err := f.Rand()
		if err != nil {
			t.Fatal(err)
		}
		if !f.FromBig(f.ToBig(x)).Equal(x) {
			t.Fatal("FromBig(ToBig(x)) != x")
		}
	}
}

func TestExpZeroBase(t *testing.T) {
	f := MustField(paperQ)
	zero := f.Zero()
	got, err := f.Exp(zero, big.NewInt(0))
	if err != nil || !got.Equal(f.One()) {
		t.Errorf("0^0 = %v, want 1", f.ToBig(got))
	}
	// Exponent a multiple of p−1: Fermat reduction must not turn 0 into 1.
	pm1 := new(big.Int).Sub(paperQ, big.NewInt(1))
	big1 := new(big.Int).Lsh(pm1, 40) // (p−1)·2⁴⁰ > 128 bits triggers reduction
	got, err = f.Exp(zero, big1)
	if err != nil || !got.IsZero() {
		t.Errorf("0^((p-1)<<40) = %v, want 0", f.ToBig(got))
	}
	if _, err := f.Inv(zero); err != ErrNoInverse {
		t.Errorf("Inv(0) err = %v, want ErrNoInverse", err)
	}
}

func BenchmarkMul(b *testing.B) {
	f := MustField(paperQ)
	x, _ := f.Rand()
	y, _ := f.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	f := MustField(paperQ)
	x, _ := f.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, _ = f.Inv(x)
	}
	_ = x
}

// BenchmarkMulBig is the math/big baseline for one field multiplication.
func BenchmarkMulBig(b *testing.B) {
	f := ffbig.MustField(paperQ)
	x, _ := f.Rand()
	y, _ := f.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y)
	}
	_ = x
}
