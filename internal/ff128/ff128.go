// Package ff128 implements fast fixed-width arithmetic in prime fields F_p
// for moduli below 2¹²⁷. Elements are two-limb Montgomery residues held in a
// constant-size struct: no operation allocates, every field multiplication is
// four 64×64→128 hardware multiplies plus a two-round Montgomery reduction.
//
// The package exists for the registration crypto path: the paper's genus-2
// Jacobian (§VII, G2HEC) works over the 83-bit field
// q = 5·10²⁴ + 8503491, and every Pedersen commitment, Cantor group operation
// and OCBE envelope bottoms out in thousands of multiplications in that
// field. Package ffbig (math/big residues) remains the reference
// implementation — it is authoritative for the 2048-bit Schnorr group, for
// setup-time code (hash-to-element, square roots during point sampling) and
// for the differential tests that pin this package's behaviour.
package ff128

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// MaxBits is the largest supported modulus bit length. The bound keeps every
// intermediate of the two-limb Montgomery reduction inside 256 bits and lets
// Add work without a carry out of the high limb.
const MaxBits = 127

// Elem is a field element in Montgomery form (x·R mod p, R = 2¹²⁸), kept
// canonical (< p). The zero value is the field's zero. Elements are only
// meaningful with the Field that produced them.
type Elem struct {
	lo, hi uint64
}

// IsZero reports whether e is the additive identity.
func (e Elem) IsZero() bool { return e.lo == 0 && e.hi == 0 }

// Equal reports whether two elements are equal. Montgomery form is kept
// canonical, so limb equality is element equality.
func (e Elem) Equal(o Elem) bool { return e.lo == o.lo && e.hi == o.hi }

// Field is a prime field F_p with p < 2¹²⁷. Construct with NewField; the
// zero value is unusable. A Field is immutable after construction and safe
// for concurrent use.
type Field struct {
	p0, p1 uint64 // modulus, little-endian limbs
	n0     uint64 // -p⁻¹ mod 2⁶⁴
	r2     Elem   // R² mod p: the to-Montgomery conversion factor
	one    Elem   // R mod p: the Montgomery form of 1
	bits   int
	pBig   *big.Int
	pm2    [2]uint64 // p−2, the Fermat inversion exponent
	sqrtE  [2]uint64 // (p+1)/4 when p ≡ 3 (mod 4)
	sqrt34 bool      // p ≡ 3 (mod 4): Sqrt has a single-exponentiation path
}

// NewField returns the field of integers modulo p. The modulus must be a
// (probable) prime with 2 ≤ bitlen ≤ 127.
func NewField(p *big.Int) (*Field, error) {
	if p == nil || p.Sign() <= 0 || p.BitLen() > MaxBits {
		return nil, fmt.Errorf("ff128: modulus must have at most %d bits", MaxBits)
	}
	if p.Cmp(big.NewInt(3)) < 0 {
		return nil, errors.New("ff128: modulus must be a prime >= 3")
	}
	if !p.ProbablyPrime(32) {
		return nil, fmt.Errorf("ff128: modulus %s is not prime", p)
	}
	f := &Field{bits: p.BitLen(), pBig: new(big.Int).Set(p)}
	f.p0, f.p1 = limbs(p)

	// n0 = -p⁻¹ mod 2⁶⁴ by Newton iteration (p is odd, so invertible).
	inv := f.p0 // correct to 3 bits
	for i := 0; i < 5; i++ {
		inv *= 2 - f.p0*inv // doubles the correct bit count each round
	}
	f.n0 = -inv

	// R² mod p via big.Int once; all later conversions use Montgomery ops.
	r2 := new(big.Int).Lsh(big.NewInt(1), 256)
	r2.Mod(r2, p)
	f.r2.lo, f.r2.hi = limbs(r2)
	rmod := new(big.Int).Lsh(big.NewInt(1), 128)
	rmod.Mod(rmod, p)
	f.one.lo, f.one.hi = limbs(rmod)

	pm2 := new(big.Int).Sub(p, big.NewInt(2))
	f.pm2[0], f.pm2[1] = limbs(pm2)
	if p.Bit(0) == 1 && p.Bit(1) == 1 { // p ≡ 3 (mod 4)
		f.sqrt34 = true
		e := new(big.Int).Add(p, big.NewInt(1))
		e.Rsh(e, 2)
		f.sqrtE[0], f.sqrtE[1] = limbs(e)
	}
	return f, nil
}

// MustField is NewField for known-good compile-time moduli; it panics on
// error.
func MustField(p *big.Int) *Field {
	f, err := NewField(p)
	if err != nil {
		panic(err)
	}
	return f
}

// limbs splits a non-negative big.Int < 2¹²⁸ into little-endian limbs.
func limbs(x *big.Int) (lo, hi uint64) {
	var buf [16]byte
	x.FillBytes(buf[:])
	hi = binary.BigEndian.Uint64(buf[0:8])
	lo = binary.BigEndian.Uint64(buf[8:16])
	return
}

// P returns a copy of the modulus.
func (f *Field) P() *big.Int { return new(big.Int).Set(f.pBig) }

// Bits returns the bit length of the modulus.
func (f *Field) Bits() int { return f.bits }

// Zero returns the additive identity.
func (f *Field) Zero() Elem { return Elem{} }

// One returns the multiplicative identity.
func (f *Field) One() Elem { return f.one }

// FromBig converts a big.Int (any sign, any size) into the field.
func (f *Field) FromBig(x *big.Int) Elem {
	r := x
	if x.Sign() < 0 || x.Cmp(f.pBig) >= 0 {
		r = new(big.Int).Mod(x, f.pBig)
	}
	var e Elem
	e.lo, e.hi = limbs(r)
	return f.Mul(e, f.r2) // x·R² / R = x·R
}

// FromUint64 converts a uint64 into the field.
func (f *Field) FromUint64(x uint64) Elem {
	return f.Mul(Elem{lo: x}, f.r2)
}

// ToBig converts an element back to its canonical residue.
func (f *Field) ToBig(e Elem) *big.Int {
	raw := f.redc(e.lo, e.hi, 0, 0) // x·R / R = x
	out := new(big.Int).SetUint64(raw.hi)
	out.Lsh(out, 64)
	return out.Or(out, new(big.Int).SetUint64(raw.lo))
}

// Add returns a + b.
//
//ppcd:hotpath
func (f *Field) Add(a, b Elem) Elem {
	lo, c := bits.Add64(a.lo, b.lo, 0)
	hi, _ := bits.Add64(a.hi, b.hi, c) // no carry out: p < 2¹²⁷ so a+b < 2¹²⁸
	rl, br := bits.Sub64(lo, f.p0, 0)
	rh, br := bits.Sub64(hi, f.p1, br)
	if br == 0 {
		return Elem{lo: rl, hi: rh}
	}
	return Elem{lo: lo, hi: hi}
}

// Sub returns a − b.
//
//ppcd:hotpath
func (f *Field) Sub(a, b Elem) Elem {
	lo, br := bits.Sub64(a.lo, b.lo, 0)
	hi, br := bits.Sub64(a.hi, b.hi, br)
	if br != 0 {
		lo, c := bits.Add64(lo, f.p0, 0)
		hi, _ := bits.Add64(hi, f.p1, c)
		return Elem{lo: lo, hi: hi}
	}
	return Elem{lo: lo, hi: hi}
}

// Neg returns −a.
//
//ppcd:hotpath
func (f *Field) Neg(a Elem) Elem {
	if a.IsZero() {
		return a
	}
	lo, br := bits.Sub64(f.p0, a.lo, 0)
	hi, _ := bits.Sub64(f.p1, a.hi, br)
	return Elem{lo: lo, hi: hi}
}

// Double returns 2a.
func (f *Field) Double(a Elem) Elem { return f.Add(a, a) }

// Mul returns a·b (Montgomery product: a·b/R, which on Montgomery residues
// is exactly the field product in Montgomery form).
//
//ppcd:hotpath
func (f *Field) Mul(a, b Elem) Elem {
	h00, l00 := bits.Mul64(a.lo, b.lo)
	h01, l01 := bits.Mul64(a.lo, b.hi)
	h10, l10 := bits.Mul64(a.hi, b.lo)
	h11, l11 := bits.Mul64(a.hi, b.hi)

	t0 := l00
	t1, c1 := bits.Add64(h00, l01, 0)
	t1, c2 := bits.Add64(t1, l10, 0)
	t2, c3 := bits.Add64(h01, h10, 0)
	t2, c4 := bits.Add64(t2, l11, 0)
	t2, c5 := bits.Add64(t2, c1+c2, 0)
	t3 := h11 + c3 + c4 + c5 // exact: the full product fits 256 bits

	return f.redc(t0, t1, t2, t3)
}

// Sq returns a².
func (f *Field) Sq(a Elem) Elem { return f.Mul(a, a) }

// redc performs a two-round Montgomery reduction of the 256-bit value
// (t0..t3, little-endian): it returns t/R mod p with the result < p. Valid
// for any t < p·R (a fortiori for products of reduced operands).
//
//ppcd:hotpath
func (f *Field) redc(t0, t1, t2, t3 uint64) Elem {
	// Round 0: clear t0.
	m := t0 * f.n0
	h0, l0 := bits.Mul64(m, f.p0)
	h1, l1 := bits.Mul64(m, f.p1)
	_, c := bits.Add64(t0, l0, 0)
	t1, c = bits.Add64(t1, h0, c)
	t2, c = bits.Add64(t2, 0, c)
	t3 += c
	t1, c = bits.Add64(t1, l1, 0)
	t2, c = bits.Add64(t2, h1, c)
	t3 += c

	// Round 1: clear t1.
	m = t1 * f.n0
	h0, l0 = bits.Mul64(m, f.p0)
	h1, l1 = bits.Mul64(m, f.p1)
	_, c = bits.Add64(t1, l0, 0)
	t2, c = bits.Add64(t2, h0, c)
	t3 += c
	t2, c = bits.Add64(t2, l1, 0)
	t3, _ = bits.Add64(t3, h1, c)

	// Result (t2, t3) < 2p: one conditional subtraction.
	rl, br := bits.Sub64(t2, f.p0, 0)
	rh, br := bits.Sub64(t3, f.p1, br)
	if br == 0 {
		return Elem{lo: rl, hi: rh}
	}
	return Elem{lo: t2, hi: t3}
}

// expLimb raises a to a two-limb exponent by left-to-right square-and-
// multiply. The exponent is public in every use (field constants), so the
// variable-time scan is fine.
func (f *Field) expLimb(a Elem, e [2]uint64) Elem {
	result := f.one
	started := false
	for limb := 1; limb >= 0; limb-- {
		w := e[limb]
		for i := 63; i >= 0; i-- {
			if started {
				result = f.Sq(result)
			}
			if w&(1<<uint(i)) != 0 {
				if started {
					result = f.Mul(result, a)
				} else {
					result = a
					started = true
				}
			}
		}
	}
	if !started {
		return f.one
	}
	return result
}

// Exp returns a^e for an arbitrary big.Int exponent (negative exponents
// invert the base first).
func (f *Field) Exp(a Elem, e *big.Int) (Elem, error) {
	if e.Sign() < 0 {
		inv, err := f.Inv(a)
		if err != nil {
			return Elem{}, err
		}
		return f.Exp(inv, new(big.Int).Neg(e))
	}
	if a.IsZero() {
		// Fermat reduction of the exponent below is only valid for a ≠ 0.
		if e.Sign() == 0 {
			return f.one, nil
		}
		return Elem{}, nil
	}
	red := e
	if e.BitLen() > 128 {
		red = new(big.Int).Mod(e, new(big.Int).Sub(f.pBig, big.NewInt(1)))
	}
	var el [2]uint64
	el[0], el[1] = limbs(red)
	return f.expLimb(a, el), nil
}

// ErrNoInverse is returned when inverting zero.
var ErrNoInverse = errors.New("ff128: zero has no multiplicative inverse")

// Inv returns a⁻¹ via Fermat's little theorem (a^(p−2)).
func (f *Field) Inv(a Elem) (Elem, error) {
	if a.IsZero() {
		return Elem{}, ErrNoInverse
	}
	return f.expLimb(a, f.pm2), nil
}

// InvBatch inverts every element of xs in place using Montgomery's trick:
// one Fermat inversion plus 3(n−1) multiplications, instead of n full
// inversions (each ~127 squarings). If any element is zero the batch is
// rejected with ErrNoInverse and xs is left unmodified — callers relying on
// the batch must not observe a half-inverted slice.
func (f *Field) InvBatch(xs []Elem) error {
	for i := range xs {
		if xs[i].IsZero() {
			return ErrNoInverse
		}
	}
	n := len(xs)
	if n == 0 {
		return nil
	}
	// Prefix products pre[i] = x_0·…·x_i; one inversion of pre[n−1]; then
	// walk back peeling one factor per step.
	var stack [64]Elem
	pre := stack[:0]
	if n <= len(stack) {
		pre = stack[:n]
	} else {
		pre = make([]Elem, n)
	}
	pre[0] = xs[0]
	for i := 1; i < n; i++ {
		pre[i] = f.Mul(pre[i-1], xs[i])
	}
	inv := f.expLimb(pre[n-1], f.pm2)
	for i := n - 1; i >= 1; i-- {
		pi := f.Mul(inv, pre[i-1])
		inv = f.Mul(inv, xs[i])
		xs[i] = pi
	}
	xs[0] = inv
	return nil
}

// ErrNoSqrt is returned by Sqrt for quadratic non-residues.
var ErrNoSqrt = errors.New("ff128: element is not a quadratic residue")

// Sqrt returns a square root of a, or ErrNoSqrt if none exists. For
// p ≡ 3 (mod 4) — the paper's curve field — it is the single exponentiation
// a^((p+1)/4); other moduli fall back to math/big's Tonelli–Shanks, since
// they only occur in tests and setup code.
func (f *Field) Sqrt(a Elem) (Elem, error) {
	if a.IsZero() {
		return a, nil
	}
	if f.sqrt34 {
		r := f.expLimb(a, f.sqrtE)
		if !f.Sq(r).Equal(a) {
			return Elem{}, ErrNoSqrt
		}
		return r, nil
	}
	r := new(big.Int).ModSqrt(f.ToBig(a), f.pBig)
	if r == nil {
		return Elem{}, ErrNoSqrt
	}
	return f.FromBig(r), nil
}

// Rand returns a uniformly random field element.
func (f *Field) Rand() (Elem, error) {
	x, err := rand.Int(rand.Reader, f.pBig)
	if err != nil {
		return Elem{}, fmt.Errorf("ff128: sampling: %w", err)
	}
	return f.FromBig(x), nil
}

// String implements fmt.Stringer.
func (f *Field) String() string { return fmt.Sprintf("F_p(%d bits, 2-limb)", f.bits) }
