package ff128

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
)

// TestInvBatchDifferential pins InvBatch to per-element Inv across batch
// sizes spanning the stack buffer, its boundary and the heap spill.
func TestInvBatchDifferential(t *testing.T) {
	for _, p := range testModuli(t) {
		f := MustField(p)
		for _, n := range []int{0, 1, 2, 3, 7, 63, 64, 65, 130} {
			xs := make([]Elem, n)
			want := make([]Elem, n)
			for i := range xs {
				for {
					v, err := rand.Int(rand.Reader, p)
					if err != nil {
						t.Fatal(err)
					}
					if v.Sign() != 0 {
						xs[i] = f.FromBig(v)
						break
					}
				}
				w, err := f.Inv(xs[i])
				if err != nil {
					t.Fatal(err)
				}
				want[i] = w
			}
			if err := f.InvBatch(xs); err != nil {
				t.Fatalf("p=%v n=%d: InvBatch: %v", p, n, err)
			}
			for i := range xs {
				if !xs[i].Equal(want[i]) {
					t.Fatalf("p=%v n=%d: InvBatch[%d] != Inv", p, n, i)
				}
			}
		}
	}
}

// TestInvBatchZeroLane checks that a zero element rejects the whole batch
// without poisoning it: ErrNoInverse, and every element left untouched.
func TestInvBatchZeroLane(t *testing.T) {
	p := testModuli(t)[0]
	f := MustField(p)
	for _, zeroAt := range []int{0, 3, 7} {
		xs := make([]Elem, 8)
		orig := make([]Elem, 8)
		for i := range xs {
			xs[i] = f.FromBig(big.NewInt(int64(i + 2)))
		}
		xs[zeroAt] = Elem{}
		copy(orig, xs)
		if err := f.InvBatch(xs); !errors.Is(err, ErrNoInverse) {
			t.Fatalf("zero at %d: got err %v, want ErrNoInverse", zeroAt, err)
		}
		for i := range xs {
			if !xs[i].Equal(orig[i]) {
				t.Fatalf("zero at %d: element %d mutated by rejected batch", zeroAt, i)
			}
		}
	}
}

func BenchmarkInvBatch64(b *testing.B) {
	f := MustField(paperQ)
	xs := make([]Elem, 64)
	for i := range xs {
		xs[i] = f.FromBig(big.NewInt(int64(i + 2)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.InvBatch(xs); err != nil {
			b.Fatal(err)
		}
	}
}
