package pubsub

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/policy"
)

// modelRegistry reimplements the registry's pre-columnar semantics — the
// nym → condition → CSS map of maps, per-policy membership versions, and the
// linear-scan sticky regroup — as the oracle for the columnar
// implementation. It is deliberately naive: no caches, no incremental churn;
// every snapshot reassembles from scratch.
type modelRegistry struct {
	table  map[string]map[string]core.CSS
	memVer map[string]uint64
	byCond map[string][]string
	assign map[string]map[string]int
	counts map[string][]int
	gsize  int
}

func newModelRegistry(acps []*policy.ACP, gsize int) *modelRegistry {
	m := &modelRegistry{
		table:  make(map[string]map[string]core.CSS),
		memVer: make(map[string]uint64),
		byCond: make(map[string][]string),
		assign: make(map[string]map[string]int),
		counts: make(map[string][]int),
		gsize:  gsize,
	}
	for _, a := range acps {
		m.memVer[a.ID] = 0
		for _, c := range a.Conds {
			m.byCond[c.ID()] = append(m.byCond[c.ID()], a.ID)
		}
	}
	return m
}

func (m *modelRegistry) bump(cond string) {
	for _, id := range m.byCond[cond] {
		m.memVer[id]++
	}
}

func (m *modelRegistry) setCells(nym string, cells map[string]core.CSS) {
	if len(cells) == 0 {
		return
	}
	row := m.table[nym]
	if row == nil {
		row = make(map[string]core.CSS)
		m.table[nym] = row
	}
	for cond, css := range cells {
		row[cond] = css
		m.bump(cond)
	}
}

func (m *modelRegistry) setCellsDiff(nym string, cells map[string]core.CSS) {
	if len(cells) == 0 {
		return
	}
	row := m.table[nym]
	if row == nil {
		row = make(map[string]core.CSS)
		m.table[nym] = row
	}
	for cond, css := range cells {
		if row[cond] == css {
			continue
		}
		row[cond] = css
		m.bump(cond)
	}
}

func (m *modelRegistry) revokeSubscription(nym string) bool {
	row, ok := m.table[nym]
	if !ok {
		return false
	}
	delete(m.table, nym)
	for cond := range row {
		m.bump(cond)
	}
	return true
}

func (m *modelRegistry) revokeCredential(nym, cond string) bool {
	row, ok := m.table[nym]
	if !ok {
		return false
	}
	if _, ok := row[cond]; !ok {
		return false
	}
	delete(row, cond)
	if len(row) == 0 {
		delete(m.table, nym)
	}
	m.bump(cond)
	return true
}

// qualified returns the policy's member nyms and CSS rows in sorted order.
func (m *modelRegistry) qualified(a *policy.ACP) ([]string, [][]core.CSS) {
	nyms := make([]string, 0, len(m.table))
	for nym := range m.table {
		nyms = append(nyms, nym)
	}
	sort.Strings(nyms)
	var qn []string
	var rows [][]core.CSS
	for _, nym := range nyms {
		row := m.table[nym]
		css := make([]core.CSS, 0, len(a.Conds))
		complete := true
		for _, c := range a.Conds {
			v, ok := row[c.ID()]
			if !ok {
				complete = false
				break
			}
			css = append(css, v)
		}
		if complete {
			qn = append(qn, nym)
			rows = append(rows, css)
		}
	}
	return qn, rows
}

// regroup is the old linear-scan sticky grouping: release departures, then
// assign newcomers (sorted order) to the least-full non-full group, lowest
// group number on ties.
func (m *modelRegistry) regroup(a *policy.ACP) []shardRows {
	nyms, rows := m.qualified(a)
	assign := m.assign[a.ID]
	if assign == nil {
		assign = make(map[string]int)
		m.assign[a.ID] = assign
	}
	counts := m.counts[a.ID]
	present := make(map[string]bool, len(nyms))
	for _, nym := range nyms {
		present[nym] = true
	}
	for nym, gid := range assign {
		if !present[nym] {
			delete(assign, nym)
			counts[gid]--
		}
	}
	for _, nym := range nyms {
		if _, ok := assign[nym]; ok {
			continue
		}
		best := -1
		for gid, c := range counts {
			if c < m.gsize && (best == -1 || c < counts[best]) {
				best = gid
			}
		}
		if best == -1 {
			best = len(counts)
			counts = append(counts, 0)
		}
		assign[nym] = best
		counts[best]++
	}
	m.counts[a.ID] = counts

	byGid := make([][]int, len(counts))
	for i, nym := range nyms {
		byGid[assign[nym]] = append(byGid[assign[nym]], i)
	}
	var shards []shardRows
	for gid, members := range byGid {
		if len(members) == 0 {
			continue
		}
		gNyms := make([]string, len(members))
		gRows := make([][]core.CSS, len(members))
		for j, i := range members {
			gNyms[j] = nyms[i]
			gRows[j] = rows[i]
		}
		shards = append(shards, shardRows{GID: gid, Sig: shardSig(a.ID, gid, gNyms, gRows), Rows: gRows})
	}
	return shards
}

// churnACPs builds a small policy set with overlapping conditions, so one
// credential write can dirty several policies at once.
func churnACPs(t *testing.T) []*policy.ACP {
	t.Helper()
	specs := []struct{ id, cond string }{
		{"pA", "role = doc"},
		{"pB", "role = doc && level >= 10"},
		{"pC", "level >= 10 && dept = rad"},
		{"pD", "dept = rad"},
	}
	var acps []*policy.ACP
	for _, s := range specs {
		a, err := policy.New(s.id, s.cond, "doc.xml", "Obj")
		if err != nil {
			t.Fatal(err)
		}
		acps = append(acps, a)
	}
	return acps
}

// TestColumnarRegistryMatchesModel drives the columnar registry and the
// map-of-maps model through the same random churn — registrations,
// credential updates, revocations, WAL-style diffs, state round-trips and
// bumpAll storms — and demands identical snapshots at every checkpoint:
// per-policy qualified rows, membership versions, grouped shard blocks
// (group numbers, signatures, rows) and the sticky assignment itself.
func TestColumnarRegistryMatchesModel(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			acps := churnACPs(t)
			const gsize = 3
			reg := newRegistry(acps, gsize)
			model := newModelRegistry(acps, gsize)
			rng := rand.New(rand.NewSource(seed))

			conds := []string{"role = doc", "level >= 10", "dept = rad"}
			nymPool := make([]string, 40)
			for i := range nymPool {
				nymPool[i] = fmt.Sprintf("pn-%02d", i)
			}
			randCells := func() map[string]core.CSS {
				cells := make(map[string]core.CSS)
				for _, c := range conds {
					if rng.Intn(2) == 0 {
						cells[c] = core.CSS(rng.Uint64()%1_000_000 + 1)
					}
				}
				return cells
			}

			check := func(step int) {
				t.Helper()
				rows, vers := reg.snapshot(acps)
				gotShards := reg.snapshotGrouped(acps)
				for _, a := range acps {
					wantNyms, wantRows := model.qualified(a)
					if len(wantRows) == 0 {
						wantRows = nil
					}
					if !reflect.DeepEqual(rows[a.ID], wantRows) {
						t.Fatalf("step %d policy %s: rows mismatch\n got %v\nwant %v (members %v)",
							step, a.ID, rows[a.ID], wantRows, wantNyms)
					}
					if vers[a.ID] != model.memVer[a.ID] {
						t.Fatalf("step %d policy %s: version %d, model %d", step, a.ID, vers[a.ID], model.memVer[a.ID])
					}
					wantShards := model.regroup(a)
					if len(gotShards[a.ID]) == 0 && len(wantShards) == 0 {
						continue
					}
					if !reflect.DeepEqual(gotShards[a.ID], wantShards) {
						t.Fatalf("step %d policy %s: shards mismatch\n got %+v\nwant %+v", step, a.ID, gotShards[a.ID], wantShards)
					}
				}
				st := reg.exportFull()
				for _, a := range acps {
					for nym, gid := range model.assign[a.ID] {
						if st.grpAssign[a.ID][nym] != gid {
							t.Fatalf("step %d policy %s: %s assigned to %d, model %d",
								step, a.ID, nym, st.grpAssign[a.ID][nym], gid)
						}
					}
					if len(st.grpAssign[a.ID]) != len(model.assign[a.ID]) {
						t.Fatalf("step %d policy %s: %d assignments, model %d",
							step, a.ID, len(st.grpAssign[a.ID]), len(model.assign[a.ID]))
					}
				}
			}

			for step := 0; step < 400; step++ {
				nym := nymPool[rng.Intn(len(nymPool))]
				switch op := rng.Intn(10); {
				case op < 4:
					cells := randCells()
					reg.setCells(nym, cells)
					model.setCells(nym, cells)
				case op < 6:
					cells := randCells()
					reg.setCellsDiff(nym, cells)
					model.setCellsDiff(nym, cells)
				case op < 8:
					err := reg.revokeSubscription(nym)
					if model.revokeSubscription(nym) != (err == nil) {
						t.Fatalf("step %d: revokeSubscription(%s) disagreement: %v", step, nym, err)
					}
				case op < 9:
					cond := conds[rng.Intn(len(conds))]
					err := reg.revokeCredential(nym, cond)
					if model.revokeCredential(nym, cond) != (err == nil) {
						t.Fatalf("step %d: revokeCredential(%s,%s) disagreement: %v", step, nym, cond, err)
					}
				default:
					switch rng.Intn(3) {
					case 0:
						// Durable-state round-trip: must be a semantic no-op,
						// and forces the grouped full-regroup path.
						reg.restore(reg.exportFull())
					case 1:
						reg.bumpAll()
						for id := range model.memVer {
							model.memVer[id]++
						}
					case 2:
						// Wholesale import of the model's view of the table.
						tab := make(map[string]map[string]core.CSS, len(model.table))
						for n, row := range model.table {
							cp := make(map[string]core.CSS, len(row))
							for c, v := range row {
								cp[c] = v
							}
							tab[n] = cp
						}
						reg.replaceDiff(tab)
						// Identical content: the model bumps nothing either.
					}
				}
				if step%7 == 0 || step == 399 {
					check(step)
				}
			}
		})
	}
}

// TestMinTracker cross-checks the bitset least-full tracker against a naive
// linear scan over random occupancy traffic.
func TestMinTracker(t *testing.T) {
	for _, capacity := range []int{1, 3, 64, 65} {
		t.Run(fmt.Sprintf("cap%d", capacity), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(capacity)))
			tr := newMinTracker(capacity)
			var occ []int // gid → occupancy
			naiveLeast := func() (int, bool) {
				best := -1
				for gid, c := range occ {
					if c < capacity && (best == -1 || c < occ[best]) {
						best = gid
					}
				}
				return best, best != -1
			}
			for step := 0; step < 5000; step++ {
				switch r := rng.Intn(10); {
				case r == 0 || len(occ) == 0:
					gid := len(occ)
					occ = append(occ, 0)
					tr.addAt(gid, 0)
				case r < 6: // fill via least()
					gotGid, gotOK := tr.least()
					wantGid, wantOK := naiveLeast()
					if gotOK != wantOK || (gotOK && gotGid != wantGid) {
						t.Fatalf("step %d: least() = (%d,%v), naive (%d,%v), occ %v",
							step, gotGid, gotOK, wantGid, wantOK, occ)
					}
					if gotOK {
						tr.move(gotGid, occ[gotGid], occ[gotGid]+1)
						occ[gotGid]++
					}
				default: // drain a random non-empty group
					gid := rng.Intn(len(occ))
					if occ[gid] == 0 {
						continue
					}
					tr.move(gid, occ[gid], occ[gid]-1)
					occ[gid]--
				}
			}
		})
	}
}

// TestCSSTableCompaction exercises the slot lifecycle directly: interleaved
// adds and deletes across compactions must preserve sorted iteration, row
// content and the live count, while compaction recycles retired slots.
func TestCSSTableCompaction(t *testing.T) {
	conds := []string{"c0", "c1"}
	tab := newCSSTable(conds)
	live := make(map[string][2]core.CSS)
	rng := rand.New(rand.NewSource(7))
	verify := func(step int) {
		t.Helper()
		if tab.live != len(live) {
			t.Fatalf("step %d: live %d, want %d", step, tab.live, len(live))
		}
		var prev string
		n := 0
		for _, s := range tab.sortedLive() {
			nym := tab.nyms[s]
			if nym == "" {
				continue
			}
			if nym <= prev {
				t.Fatalf("step %d: iteration out of order: %q after %q", step, nym, prev)
			}
			prev = nym
			row := tab.row(s)
			want := live[nym]
			if row[0] != want[0] || row[1] != want[1] {
				t.Fatalf("step %d: row %q = %v, want %v", step, nym, row, want)
			}
			n++
		}
		if n != len(live) {
			t.Fatalf("step %d: iterated %d rows, want %d", step, n, len(live))
		}
	}
	for step := 0; step < 2000; step++ {
		nym := fmt.Sprintf("n%03d", rng.Intn(120))
		switch rng.Intn(5) {
		case 0:
			tab.deleteRow(nym)
			delete(live, nym)
		case 1:
			if tab.needsCompact() || rng.Intn(20) == 0 {
				tab.compact()
			}
		default:
			row := tab.row(tab.ensureRow(nym))
			v := [2]core.CSS{core.CSS(rng.Uint64()%999 + 1), core.CSS(rng.Uint64()%999 + 1)}
			row[0], row[1] = v[0], v[1]
			live[nym] = v
		}
		if step%50 == 0 {
			verify(step)
		}
	}
	tab.compact()
	verify(2000)
	if len(tab.pendAdd) != 0 || tab.dead != 0 {
		t.Fatalf("after compact: pendAdd %d, dead %d", len(tab.pendAdd), tab.dead)
	}
}
