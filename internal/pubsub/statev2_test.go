package pubsub

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/document"
	"ppcd/internal/idtoken"
	"ppcd/internal/ocbe"
	"ppcd/internal/policy"
)

// TestStateV2RoundTripDeterministic pins the full warm-restart contract at
// the pubsub layer: a v2 export restored into a fresh publisher preserves
// the table, sticky group assignments, membership versions, epoch counter,
// incarnation generation and engine caches — so re-exporting yields
// byte-identical state, and the first post-restore publish performs zero
// solves and diffs small against the pre-restore broadcast.
func TestStateV2RoundTripDeterministic(t *testing.T) {
	env := newDeltaEnv(t, 2, 3)
	var nyms []string
	for i := 0; i < 9; i++ {
		nyms = append(nyms, env.join(t, 1+i%2))
	}
	if _, err := env.pub.Publish(env.doc); err != nil {
		t.Fatal(err)
	}
	if err := env.pub.RevokeSubscription(nyms[4]); err != nil {
		t.Fatal(err)
	}
	pre, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}

	state, err := env.pub.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	env2 := newDeltaEnv(t, 2, 3)
	if err := env2.pub.ImportState(state); err != nil {
		t.Fatal(err)
	}
	if env2.pub.SubscriberCount() != env.pub.SubscriberCount() {
		t.Fatalf("restored %d subscribers, want %d", env2.pub.SubscriberCount(), env.pub.SubscriberCount())
	}
	if env2.pub.Generation() != env.pub.Generation() {
		t.Error("generation not preserved across restore")
	}
	if env2.pub.Epoch() != env.pub.Epoch() {
		t.Errorf("epoch %d after restore, want %d", env2.pub.Epoch(), env.pub.Epoch())
	}

	// Sticky group assignments restored exactly: nobody moves shards.
	wantAssign := env.pub.reg.exportFull().grpAssign
	gotAssign := env2.pub.reg.exportFull().grpAssign
	if len(gotAssign) != len(wantAssign) {
		t.Fatalf("restored assignments for %d policies, want %d", len(gotAssign), len(wantAssign))
	}
	for id, want := range wantAssign {
		got := gotAssign[id]
		if len(got) != len(want) {
			t.Fatalf("policy %s: %d assigned members, want %d", id, len(got), len(want))
		}
		for nym, gid := range want {
			if got[nym] != gid {
				t.Errorf("policy %s: %s moved from group %d to %d across restore", id, nym, gid, got[nym])
			}
		}
	}

	// Deterministic encoding: the restored publisher re-exports the very
	// same bytes.
	state2, err := env2.pub.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state, state2) {
		t.Errorf("re-export differs: %d vs %d bytes", len(state), len(state2))
	}

	// First post-restore publish: zero solves, epoch continues, and the
	// delta against the pre-restore broadcast is empty — a reconnecting
	// subscriber pays nothing.
	before := env2.pub.Stats()
	post, err := env2.pub.Publish(env2.doc)
	if err != nil {
		t.Fatal(err)
	}
	after := env2.pub.Stats()
	if solves := after.Solves - before.Solves; solves != 0 {
		t.Errorf("first post-restore publish performed %d solves, want 0", solves)
	}
	if post.Epoch != pre.Epoch+1 || post.Gen != pre.Gen {
		t.Errorf("post-restore broadcast epoch %d gen match %v, want epoch %d and matching gen",
			post.Epoch, post.Gen == pre.Gen, pre.Epoch+1)
	}
	d, err := Diff(pre, post)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Configs) != 0 || len(d.Items) != 0 || d.PoliciesChanged {
		t.Errorf("post-restore delta ships %d configs %d items, want empty", len(d.Configs), len(d.Items))
	}

	// A surviving member resumes its stream across the restart with a warm
	// KEV cache: applying the restart-spanning delta re-derives its key
	// without hashing a single fresh KEV.
	member := env.subscriber(t, nyms[0])
	if err := member.ApplySnapshot(pre); err != nil {
		t.Fatal(err)
	}
	if _, err := member.DecryptCurrent("doc"); err != nil {
		t.Fatal(err)
	}
	base := member.kevMisses
	if err := member.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if got, err := member.DecryptCurrent("doc"); err != nil || len(got) == 0 {
		t.Fatalf("member decrypts %d subdocs across restart (err=%v)", len(got), err)
	}
	if member.kevMisses != base {
		t.Errorf("restart-spanning delta cost %d fresh KEV hashings, want 0", member.kevMisses-base)
	}
	// The revoked subscriber stays out after the restore.
	if got, _ := env.subscriber(t, nyms[4]).Decrypt(post); len(got) != 0 {
		t.Error("revoked subscriber decrypts after restore")
	}
}

// TestWarmRestartAcceptance pins the PR's acceptance criterion at scale:
// 256 subscribers, grouping degree 4 — a restored publisher's first publish
// performs zero null-space solves and the restart-spanning delta stays far
// below the snapshot a cold subscriber would need.
func TestWarmRestartAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("256-subscriber acceptance run")
	}
	const subs, groups = 256, 4
	env := newDeltaEnv(t, 2, subs/groups)
	for i := 0; i < subs; i++ {
		env.join(t, 1+i%2)
	}
	if _, err := env.pub.Publish(env.doc); err != nil {
		t.Fatal(err)
	}
	pre, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	state, err := env.pub.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	env2 := newDeltaEnv(t, 2, subs/groups)
	if err := env2.pub.ImportState(state); err != nil {
		t.Fatal(err)
	}
	before := env2.pub.Stats()
	post, err := env2.pub.Publish(env2.doc)
	if err != nil {
		t.Fatal(err)
	}
	if solves := env2.pub.Stats().Solves - before.Solves; solves != 0 {
		t.Errorf("warm restart at %d subs g=%d: first publish performed %d solves, want 0", subs, groups, solves)
	}
	d, err := Diff(pre, post)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Configs) != 0 || len(d.Items) != 0 {
		t.Errorf("restart-spanning delta ships %d configs %d items, want empty", len(d.Configs), len(d.Items))
	}
}

// TestImportIdenticalTableV1NoRebuild is the PR 5 bugfix pin: importing a v1
// table identical to the live one must not dirty a single policy (the old
// code forced a whole-engine reset — a full N³/g² rebuild storm on every
// restart).
func TestImportIdenticalTableV1NoRebuild(t *testing.T) {
	env := newDeltaEnv(t, 3, 0)
	for i := 0; i < 8; i++ {
		env.join(t, 1+i%3)
	}
	if _, err := env.pub.Publish(env.doc); err != nil {
		t.Fatal(err)
	}
	v1, err := json.Marshal(stateFile{Version: 1, Table: env.pub.reg.export()})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.pub.ImportState(v1); err != nil {
		t.Fatal(err)
	}
	before := env.pub.Stats()
	if _, err := env.pub.Publish(env.doc); err != nil {
		t.Fatal(err)
	}
	after := env.pub.Stats()
	if solves := after.Solves - before.Solves; solves != 0 {
		t.Errorf("identical v1 import caused %d solves, want 0", solves)
	}
	if rebuilds := after.Rebuilds - before.Rebuilds; rebuilds != 0 {
		t.Errorf("identical v1 import caused %d rebuilds, want 0", rebuilds)
	}

	// A partial difference re-solves exactly the affected policies: drop one
	// subscriber's attr0 cell from the imported table.
	table := env.pub.reg.export()
	for nym, row := range table {
		if _, ok := row["attr0 >= 1"]; ok {
			delete(row, "attr0 >= 1")
			if len(row) == 0 {
				delete(table, nym)
			}
			break
		}
	}
	v1b, err := json.Marshal(stateFile{Version: 1, Table: table})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.pub.ImportState(v1b); err != nil {
		t.Fatal(err)
	}
	before = env.pub.Stats()
	if _, err := env.pub.Publish(env.doc); err != nil {
		t.Fatal(err)
	}
	after = env.pub.Stats()
	if after.Rebuilds-before.Rebuilds != 1 {
		t.Errorf("one-cell difference rebuilt %d configurations, want 1", after.Rebuilds-before.Rebuilds)
	}
}

// TestStateV2Hardening: a damaged or crafted v2 state must fail loudly, not
// import silently or drive unbounded allocations.
func TestStateV2Hardening(t *testing.T) {
	env := newDeltaEnv(t, 2, 2)
	for i := 0; i < 4; i++ {
		env.join(t, 1+i%2)
	}
	if _, err := env.pub.Publish(env.doc); err != nil {
		t.Fatal(err)
	}
	state, err := env.pub.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *Publisher { return newDeltaEnv(t, 2, 2).pub }

	// Truncations at every prefix must error, never panic or half-import.
	for cut := len(stateMagicV2); cut < len(state); cut += 97 {
		if err := fresh().ImportState(state[:cut]); err == nil {
			t.Fatalf("truncated state (%d of %d bytes) imported", cut, len(state))
		}
	}
	// A bit flip anywhere in the body must be rejected (shape or value
	// validation); in production the AEAD layer (internal/store) already
	// rejects it, this is the belt under that suspender. Flips that only
	// touch opaque varstrings (policy IDs, signatures) may legitimately
	// still parse — the point is absence of panics and of silent partial
	// imports, so exercise a spread of offsets.
	for off := len(stateMagicV2); off < len(state); off += 131 {
		mut := append([]byte(nil), state...)
		mut[off] ^= 0x80
		p := fresh()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bit flip at %d paniced: %v", off, r)
				}
			}()
			_ = p.ImportState(mut)
		}()
	}

	// Out-of-range CSS, on a hand-built minimal state.
	w := &stateWriter{}
	w.raw(stateMagicV2)
	w.u64(1)            // epoch
	w.u64(7)            // gen
	w.u32(1)            // one nym
	w.str("pn-x")       // nym
	w.u32(1)            // one cell
	w.str("attr0 >= 1") // condition
	w.u64(0)            // CSS zero: invalid
	if err := fresh().ImportState(w.out()); err == nil {
		t.Error("zero CSS imported")
	}

	// Duplicate pseudonyms.
	w = &stateWriter{}
	w.raw(stateMagicV2)
	w.u64(1)
	w.u64(7)
	w.u32(2)
	for i := 0; i < 2; i++ {
		w.str("pn-dup")
		w.u32(1)
		w.str("attr0 >= 1")
		w.u64(5)
	}
	if err := fresh().ImportState(w.out()); err == nil {
		t.Error("duplicate pseudonym imported")
	}

	// Zero generation (would disable the restart-detection stamp).
	w = &stateWriter{}
	w.raw(stateMagicV2)
	w.u64(1)
	w.u64(0)
	if err := fresh().ImportState(w.out()); err == nil {
		t.Error("zero generation imported")
	}

	// Oversized element count: must be rejected by the clamp before any
	// allocation of that size is attempted.
	w = &stateWriter{}
	w.raw(stateMagicV2)
	w.u64(1)
	w.u64(7)
	w.u32(1 << 30) // nym count far beyond maxStateCount
	if err := fresh().ImportState(w.out()); err == nil {
		t.Error("oversized count imported")
	}

	// Oversized total input.
	big := make([]byte, maxStateBytes+1)
	copy(big, stateMagicV2)
	if err := fresh().ImportState(big); err == nil {
		t.Error("oversized state imported")
	}
}

// TestApplyStateEventIdempotent: WAL replay over a snapshot that already
// contains the event must not dirty memberships (the engine would otherwise
// re-solve clean configurations after every crash recovery).
func TestApplyStateEventIdempotent(t *testing.T) {
	env := newDeltaEnv(t, 2, 0)
	nym := env.join(t, 2)
	cells := make(map[string]core.CSS)
	for cond, css := range env.css[nym] {
		cells[cond] = css
	}
	if _, err := env.pub.Publish(env.doc); err != nil {
		t.Fatal(err)
	}

	// Replaying the registration with identical cells: no version bump, no
	// solve on the next publish.
	if err := env.pub.ApplyStateEvent(StateEvent{Kind: StateEventRegister, Nym: nym, Cells: cells}); err != nil {
		t.Fatal(err)
	}
	before := env.pub.Stats()
	if _, err := env.pub.Publish(env.doc); err != nil {
		t.Fatal(err)
	}
	if solves := env.pub.Stats().Solves - before.Solves; solves != 0 {
		t.Errorf("idempotent replay caused %d solves", solves)
	}

	// Replaying a revocation for an absent row is a no-op, not an error.
	if err := env.pub.ApplyStateEvent(StateEvent{Kind: StateEventRevokeSubscription, Nym: "pn-ghost"}); err != nil {
		t.Fatal(err)
	}
	// Epoch replay is a max, never a rollback.
	if err := env.pub.ApplyStateEvent(StateEvent{Kind: StateEventPublish, Doc: "doc", Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if got := env.pub.Epoch(); got < 2 {
		t.Errorf("epoch rolled back to %d", got)
	}
	// Bad events are rejected.
	if err := env.pub.ApplyStateEvent(StateEvent{Kind: 99}); err == nil {
		t.Error("unknown event kind accepted")
	}
	if err := env.pub.ApplyStateEvent(StateEvent{Kind: StateEventRegister, Nym: "", Cells: cells}); err == nil {
		t.Error("empty nym accepted")
	}
	if err := env.pub.ApplyStateEvent(StateEvent{Kind: StateEventRegister, Nym: "pn-x",
		Cells: map[string]core.CSS{"attr0 >= 1": 0}}); err == nil {
		t.Error("zero CSS accepted")
	}
}

// TestJournalWriteAhead: a failing journal must veto the mutation it logs —
// the write-ahead discipline (no state change the log does not cover).
func TestJournalWriteAhead(t *testing.T) {
	env := newDeltaEnv(t, 1, 0)
	nym := env.join(t, 1)
	failing := journalFunc(func(StateEvent) error { return fmt.Errorf("disk full") })
	env.pub.SetJournal(failing)

	if err := env.pub.RevokeSubscription(nym); err == nil {
		t.Error("revocation succeeded with a failing journal")
	}
	if env.pub.SubscriberCount() != 1 {
		t.Error("vetoed revocation still removed the row")
	}
	if _, err := env.pub.Publish(env.doc); err == nil {
		t.Error("publish succeeded with a failing journal")
	}
	epochBefore := env.pub.Epoch()
	env.pub.SetJournal(nil)
	b, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	if b.Epoch != epochBefore+1 {
		t.Errorf("vetoed publish leaked epoch: %d after %d", b.Epoch, epochBefore)
	}
}

type journalFunc func(StateEvent) error

func (f journalFunc) Append(ev StateEvent) error { return f(ev) }

// TestAdmissionEnforcesStateCaps: identifiers that could never round-trip
// through the durable-state format are rejected at their source — a
// registration, publish or construction that succeeded but poisoned every
// later recovery would be a one-shot persistent denial of restart.
func TestAdmissionEnforcesStateCaps(t *testing.T) {
	env := newDeltaEnv(t, 1, 0)
	long := strings.Repeat("x", maxStateNymLen+1)

	_, err := env.pub.Register(&RegistrationRequest{
		Token:  &idtoken.Token{Nym: long, Tag: "attr0", Commitment: []byte{1}},
		CondID: "attr0 >= 1",
		OCBE:   &ocbe.Request{Commitment: []byte{1}},
	})
	if err == nil {
		t.Error("oversized pseudonym registered")
	}
	if err := env.pub.ApplyStateEvent(StateEvent{Kind: StateEventRegister, Nym: long,
		Cells: map[string]core.CSS{"attr0 >= 1": 5}}); err == nil {
		t.Error("oversized pseudonym replayed")
	}

	doc := &document.Document{Name: strings.Repeat("d", maxStateCondLen+1),
		Subdocs: []document.Subdocument{{Name: "sd0", Content: []byte("x")}}}
	if _, err := env.pub.Publish(doc); err == nil {
		t.Error("oversized document name published")
	}

	params, mgr := testEnv(t)
	acp, err := policy.New(strings.Repeat("p", maxStateCondLen+1), "attr0 >= 1", "doc", "sd0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPublisher(params, mgr.PublicKey(), []*policy.ACP{acp}, Options{Ell: 8}); err == nil {
		t.Error("publisher accepted a policy ID beyond the state cap")
	}
}

// TestStateV2GroupCountBudget: the per-policy group lists are the one
// decode allocation not bounded by input bytes; a crafted blob packing many
// maximum-group policies must hit the shared budget, not the OOM killer.
func TestStateV2GroupCountBudget(t *testing.T) {
	w := &stateWriter{}
	w.raw(stateMagicV2)
	w.u64(1)            // epoch
	w.u64(7)            // gen
	w.u32(0)            // no table rows
	w.u32(0)            // no membership versions
	const policies = 64 // 64 × (1<<22 groups × 8B) = 2 GiB requested
	w.u32(policies)
	for i := 0; i < policies; i++ {
		w.str(fmt.Sprintf("acp%d", i))
		w.u32(maxStateCount) // groups
		w.u32(0)             // members
	}
	env := newDeltaEnv(t, 1, 2)
	if err := env.pub.ImportState(w.out()); err == nil {
		t.Fatal("state demanding gigabytes of group lists imported")
	}
}

// TestSegmentExportCacheRebucket pins the cache-geometry escape hatch: a base
// snapshot pinned at too few cache buckets (typically one taken before the
// first publish, when the cache was empty) must not chain that coarse
// partition forever. The next incremental export re-buckets the cache to the
// count its entry population deserves — rewriting every bucket once — while
// the table still carries its clean segments. Shrink keeps the base count so
// the partition never flaps around a growth threshold.
func TestSegmentExportCacheRebucket(t *testing.T) {
	env := newDeltaEnv(t, 2, 3)
	for i := 0; i < 6; i++ {
		env.join(t, 1+i%2)
	}
	if _, err := env.pub.Publish(env.doc); err != nil {
		t.Fatal(err)
	}

	full, err := env.pub.ExportStateSegments(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Full {
		t.Fatal("nil base did not force a full export")
	}
	want := full.Geometry.CacheSegs
	if want < 2 {
		t.Fatalf("cache bucket floor %d leaves nothing to re-bucket", want)
	}

	// Base pinned below the deserved bucket count: incremental, re-bucketed.
	pinned := &SegmentBase{
		Geometry: SegmentGeometry{
			SegSlots:  full.Geometry.SegSlots,
			TableSegs: full.Geometry.TableSegs,
			CacheSegs: want / 2,
		},
		TabGen:       full.TabGen,
		CacheDigests: make([][32]byte, want/2),
	}
	exp, err := env.pub.ExportStateSegments(full.Geometry.SegSlots, pinned)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Full {
		t.Fatal("cache re-bucket escalated to a full export")
	}
	if exp.Geometry.CacheSegs != want {
		t.Fatalf("re-bucketed to %d cache buckets, want %d", exp.Geometry.CacheSegs, want)
	}
	if len(exp.Cache) != want {
		t.Fatalf("re-bucket rewrote %d of %d cache buckets", len(exp.Cache), want)
	}
	if len(exp.Table) != 0 {
		t.Fatalf("re-bucket dirtied %d clean table segments", len(exp.Table))
	}

	// Matching base: everything clean carries.
	carry := &SegmentBase{Geometry: exp.Geometry, TabGen: exp.TabGen, CacheDigests: exp.CacheDigests}
	quiet, err := env.pub.ExportStateSegments(full.Geometry.SegSlots, carry)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Full || len(quiet.Cache) != 0 || len(quiet.Table) != 0 {
		t.Fatalf("quiet export rewrote table=%d cache=%d full=%v", len(quiet.Table), len(quiet.Cache), quiet.Full)
	}

	// Base pinned above the deserved count: the partition is kept, not shrunk.
	wide := &SegmentBase{
		Geometry: SegmentGeometry{
			SegSlots:  full.Geometry.SegSlots,
			TableSegs: full.Geometry.TableSegs,
			CacheSegs: want * 2,
		},
		TabGen:       full.TabGen,
		CacheDigests: make([][32]byte, want*2),
	}
	kept, err := env.pub.ExportStateSegments(full.Geometry.SegSlots, wide)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Full || kept.Geometry.CacheSegs != want*2 {
		t.Fatalf("shrink changed the partition: full=%v cacheSegs=%d, want %d kept", kept.Full, kept.Geometry.CacheSegs, want*2)
	}
}
