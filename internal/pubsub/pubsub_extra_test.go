package pubsub

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"testing"

	"ppcd/internal/document"
	"ppcd/internal/ocbe"
	"ppcd/internal/policy"
)

func TestBroadcastGobRoundTrip(t *testing.T) {
	// Broadcast packages must survive serialization unchanged — the
	// transport layer depends on it.
	pub := newEHRPublisher(t)
	newSub(t, pub, "pn-gob", map[string]string{"role": "doc"})
	b, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		t.Fatal(err)
	}
	var decoded Broadcast
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.DocName != b.DocName || len(decoded.Items) != len(b.Items) || len(decoded.Configs) != len(b.Configs) {
		t.Fatal("broadcast shape changed across gob")
	}
	// A subscriber can decrypt the decoded copy.
	sub := newSub(t, pub, "pn-gob2", map[string]string{"role": "pha"})
	b2, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(b2); err != nil {
		t.Fatal(err)
	}
	var dec2 Broadcast
	if err := gob.NewDecoder(&buf).Decode(&dec2); err != nil {
		t.Fatal(err)
	}
	got, err := sub.Decrypt(&dec2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("pharmacist decrypted %d subdocs from gob copy", len(got))
	}
}

func TestConcurrentRegistration(t *testing.T) {
	// Many subscribers registering in parallel must not corrupt table T.
	pub := newEHRPublisher(t)
	_, mgr := testEnv(t)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nym := fmt.Sprintf("pn-conc-%d", w)
			sub, err := NewSubscriber(nym)
			if err != nil {
				errs <- err
				return
			}
			tok, sec, err := mgr.IssueString(nym, "role", "doc")
			if err != nil {
				errs <- err
				return
			}
			if err := sub.AddToken(tok, sec); err != nil {
				errs <- err
				return
			}
			if _, err := sub.RegisterAll(pub); err != nil {
				errs <- err
				return
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if pub.SubscriberCount() != workers {
		t.Errorf("table has %d rows, want %d", pub.SubscriberCount(), workers)
	}
	// All concurrent registrants can decrypt.
	b, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	_ = b
}

func TestStaleCSSAfterCredentialUpdateElsewhere(t *testing.T) {
	// When a subscriber re-registers, its old CSSs become stale at the
	// publisher. Decrypt must degrade gracefully (no error, no access with
	// the stale secret state of a *different* local copy).
	pub := newEHRPublisher(t)
	_, mgr := testEnv(t)

	// The subscriber registers once and keeps a "stale clone" of itself.
	nym := "pn-stale"
	sub, err := NewSubscriber(nym)
	if err != nil {
		t.Fatal(err)
	}
	tok, sec, err := mgr.IssueString(nym, "role", "doc")
	if err != nil {
		t.Fatal(err)
	}
	sub.AddToken(tok, sec)
	if _, err := sub.RegisterAll(pub); err != nil {
		t.Fatal(err)
	}

	stale, err := NewSubscriber(nym)
	if err != nil {
		t.Fatal(err)
	}
	stale.AddToken(tok, sec)
	if _, err := stale.RegisterAll(pub); err != nil {
		t.Fatal(err)
	}
	// stale's registration OVERWROTE sub's CSSs at the publisher; sub's
	// copies are now stale.
	b, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sub.Decrypt(b); err != nil || len(got) != 0 {
		t.Errorf("stale subscriber state decrypted %d subdocs (err %v)", len(got), err)
	}
	if got, _ := stale.Decrypt(b); len(got) != 5 {
		t.Errorf("fresh registration decrypts %d subdocs, want 5", len(got))
	}
}

func TestMultipleDocumentsIndependentKeys(t *testing.T) {
	// Publishing two documents produces independent headers; decrypting one
	// grants nothing on the other (each Publish is its own session).
	pub := newEHRPublisher(t)
	doctor := newSub(t, pub, "pn-multi", map[string]string{"role": "doc"})
	d1 := ehrDoc(t)
	d2, err := document.New("EHR.xml",
		document.Subdocument{Name: "Medication", Content: []byte("<Medication>updated</Medication>")},
	)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := pub.Publish(d1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := pub.Publish(d2)
	if err != nil {
		t.Fatal(err)
	}
	got1, _ := doctor.Decrypt(b1)
	got2, _ := doctor.Decrypt(b2)
	if len(got1) != 5 || len(got2) != 1 {
		t.Fatalf("decrypt counts: %d, %d", len(got1), len(got2))
	}
	if !bytes.Contains(got2["Medication"], []byte("updated")) {
		t.Error("second document content wrong")
	}
}

func TestPolicyWithGlobalDocScope(t *testing.T) {
	// An ACP with empty Doc applies to every document.
	params, mgr := testEnv(t)
	acp, err := policy.New("any", "role = doc", "", "Medication")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(params, mgr.PublicKey(), []*policy.ACP{acp}, Options{Ell: 8})
	if err != nil {
		t.Fatal(err)
	}
	doc := newSub(t, pub, "pn-g", map[string]string{"role": "doc"})
	for _, name := range []string{"a.xml", "b.xml"} {
		d, err := document.New(name, document.Subdocument{Name: "Medication", Content: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		b, err := pub.Publish(d)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := doc.Decrypt(b); len(got) != 1 {
			t.Errorf("%s: global policy did not apply", name)
		}
	}
}

func TestRegistrarInterfaceCompliance(t *testing.T) {
	var _ Registrar = (*Publisher)(nil)
}

func TestRegisterRejectsInvalidOCBERequest(t *testing.T) {
	pub := newEHRPublisher(t)
	_, mgr := testEnv(t)
	tok, _, err := mgr.IssueString("pn-bad", "role", "doc")
	if err != nil {
		t.Fatal(err)
	}
	// Garbage commitment bytes must be rejected by the OCBE layer.
	_, err = pub.Register(&RegistrationRequest{
		Token:  tok,
		CondID: "role = doc",
		OCBE:   &ocbe.Request{Commitment: []byte("not-a-group-element")},
	})
	if err == nil {
		t.Error("garbage OCBE request accepted")
	}
}
