package pubsub

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/idtoken"
	"ppcd/internal/linalg"
	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/sym"
)

// Registrar is the publisher-side interface a subscriber registers against.
// *Publisher satisfies it directly for in-process use; the transport package
// provides a network client with the same shape.
type Registrar interface {
	Params() *pedersen.Params
	Ell() int
	Conditions() []policy.Condition
	Register(*RegistrationRequest) (*ocbe.Envelope, error)
}

// BatchRegistrar is a Registrar that additionally accepts a whole
// registration batch in one call — one network round trip instead of one
// per condition. *Publisher and the transport client both implement it;
// Subscriber.RegisterAll uses the batched path whenever available.
type BatchRegistrar interface {
	Registrar
	RegisterBatch([]*RegistrationRequest) ([]BatchResult, error)
}

// Subscriber is a content consumer. It holds identity tokens with their
// private openings and the CSSs it managed to extract during registration;
// from those plus public broadcast headers it derives decryption keys
// locally — no further interaction with the publisher is ever needed.
type Subscriber struct {
	mu     sync.Mutex
	nym    string
	tokens map[string]tokenSecret // by tag
	css    map[string]core.CSS    // by condition ID

	// kev caches key extraction vectors by (CSS row, nonce set) digest
	// (§VIII-D, receiver half): shared-nonce sessions, steady-state
	// republish and the clean shards of grouped headers hash each row once,
	// then every later derivation is a single inner product. kevMisses
	// counts fresh hashings (white-box test observability).
	kev       map[[32]byte]linalg.Vector
	kevMisses uint64

	// grpHint remembers, per configuration, the shard index that last
	// decrypted successfully. Sticky grouping keeps the index stable across
	// rekeys, so the trial-derivation scan over a grouped header almost
	// always succeeds on the first try.
	grpHint map[policy.ConfigKey]int

	// stream holds the subscriber's current broadcast state per document,
	// maintained incrementally: a snapshot seeds it, deltas patch it.
	// Entries are replaced wholesale (Apply never mutates), so readers that
	// grabbed a state keep a consistent broadcast.
	stream map[string]*Broadcast
}

// maxKEVCache bounds the KEV cache; crossing it drops the whole cache
// (stale nonce sets from dead sessions dominate by then).
const maxKEVCache = 512

type tokenSecret struct {
	token  *idtoken.Token
	secret *idtoken.Secret
}

// NewSubscriber creates a subscriber under the given pseudonym.
func NewSubscriber(nym string) (*Subscriber, error) {
	if nym == "" {
		return nil, errors.New("pubsub: empty pseudonym")
	}
	return &Subscriber{
		nym:     nym,
		tokens:  make(map[string]tokenSecret),
		css:     make(map[string]core.CSS),
		kev:     make(map[[32]byte]linalg.Vector),
		grpHint: make(map[policy.ConfigKey]int),
		stream:  make(map[string]*Broadcast),
	}, nil
}

// ApplySnapshot seeds (or resets) the subscriber's held broadcast state for
// the snapshot's document. The subscriber never mutates the broadcast, so
// callers may hand over shared instances.
func (s *Subscriber) ApplySnapshot(b *Broadcast) error {
	if b == nil {
		return errors.New("pubsub: nil broadcast")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stream[b.DocName] = b
	return nil
}

// ApplyDelta patches the subscriber's held broadcast state with a delta. The
// cached KEVs and group sub-header keys of clean shards stay valid across
// the patch (unchanged sub-headers are shared, and the KEV cache is keyed by
// their content). A mismatched base epoch returns ErrDeltaBaseMismatch —
// the caller fell behind the retention window and must refetch a snapshot.
func (s *Subscriber) ApplyDelta(d *BroadcastDelta) error {
	if d == nil {
		return errors.New("pubsub: nil delta")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base, ok := s.stream[d.DocName]
	if !ok {
		return fmt.Errorf("%w: no state for %q", ErrDeltaBaseMismatch, d.DocName)
	}
	next, err := d.Apply(base)
	if err != nil {
		return err
	}
	s.stream[d.DocName] = next
	return nil
}

// Current returns the subscriber's held broadcast state for a document (nil
// if none). The returned broadcast is shared and must not be mutated.
func (s *Subscriber) Current(docName string) *Broadcast {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream[docName]
}

// DecryptCurrent decrypts the held broadcast state for a document.
func (s *Subscriber) DecryptCurrent(docName string) (map[string][]byte, error) {
	b := s.Current(docName)
	if b == nil {
		return nil, fmt.Errorf("pubsub: no broadcast state for %q", docName)
	}
	return s.Decrypt(b)
}

// Nym returns the subscriber's pseudonym.
func (s *Subscriber) Nym() string { return s.nym }

// AddToken stores an identity token and its private opening. All tokens of
// one subscriber must carry the same pseudonym (paper §V-A).
func (s *Subscriber) AddToken(tok *idtoken.Token, sec *idtoken.Secret) error {
	if tok == nil || sec == nil {
		return errors.New("pubsub: nil token or secret")
	}
	if tok.Nym != s.nym {
		return fmt.Errorf("pubsub: token pseudonym %q does not match subscriber %q", tok.Nym, s.nym)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tokens[tok.Tag] = tokenSecret{token: tok, secret: sec}
	return nil
}

// CSSCount returns the number of conditional subscription secrets the
// subscriber successfully extracted.
func (s *Subscriber) CSSCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.css)
}

// HasCSS reports whether the subscriber extracted a CSS for the condition.
func (s *Subscriber) HasCSS(condID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.css[condID]
	return ok
}

// RegisterAll runs the registration phase against a publisher: for every
// held token and every publisher condition whose attribute matches the
// token's tag, it executes one OCBE exchange. To preserve privacy the
// subscriber registers for ALL matching conditions — including mutually
// exclusive ones — so the publisher cannot infer which condition it actually
// satisfies (§V-B, Example 3). Envelopes that fail to open are skipped
// silently. It returns the number of CSSs extracted.
//
// When the registrar supports batching (BatchRegistrar — both *Publisher and
// the transport client do), all matching conditions travel in a single
// RegisterBatch round trip; otherwise one Register call runs per condition.
func (s *Subscriber) RegisterAll(r Registrar) (int, error) {
	params := r.Params()
	ell := r.Ell()
	conds := r.Conditions()

	// Prepare the OCBE receiver messages for every matching condition.
	type prepared struct {
		cond policy.Condition
		recv *ocbe.Receiver
		wit  *ocbe.Witness
		req  *RegistrationRequest
	}
	var items []prepared
	for _, cond := range conds {
		s.mu.Lock()
		ts, ok := s.tokens[cond.Attr]
		s.mu.Unlock()
		if !ok {
			continue // no identity token with this tag; cannot register
		}
		recv := ocbe.NewReceiver(params, ts.secret.Value, ts.secret.Blinding)
		pred := ocbe.Predicate{Op: cond.Op, X0: idtoken.EncodeValue(params.Order(), cond.Value)}
		wit, req, err := recv.Prepare(pred, ell)
		if err != nil {
			return 0, fmt.Errorf("pubsub: preparing for %q: %w", cond.ID(), err)
		}
		items = append(items, prepared{
			cond: cond,
			recv: recv,
			wit:  wit,
			req:  &RegistrationRequest{Token: ts.token, CondID: cond.ID(), OCBE: req},
		})
	}
	if len(items) == 0 {
		return 0, nil
	}

	// Collect the envelopes: one batched round trip when possible. An
	// item-level failure is remembered but must not discard the other
	// envelopes — the publisher has already committed their CSS cells to
	// table T, so dropping them here would leave this subscriber counted in
	// ACVs it cannot use.
	envs := make([]*ocbe.Envelope, len(items))
	var itemErr error
	if br, ok := r.(BatchRegistrar); ok {
		reqs := make([]*RegistrationRequest, len(items))
		for i, it := range items {
			reqs[i] = it.req
		}
		results, err := br.RegisterBatch(reqs)
		if err != nil {
			return 0, fmt.Errorf("pubsub: batch registration: %w", err)
		}
		if len(results) != len(items) {
			return 0, fmt.Errorf("pubsub: batch returned %d results for %d requests", len(results), len(items))
		}
		for i, res := range results {
			if res.Err != "" {
				if itemErr == nil {
					itemErr = fmt.Errorf("pubsub: registering for %q: %s", items[i].cond.ID(), res.Err)
				}
				continue
			}
			envs[i] = res.Envelope
		}
	} else {
		for i, it := range items {
			env, err := r.Register(it.req)
			if err != nil {
				if itemErr == nil {
					itemErr = fmt.Errorf("pubsub: registering for %q: %w", it.cond.ID(), err)
				}
				continue
			}
			envs[i] = env
		}
	}

	extracted := 0
	for i, it := range items {
		if envs[i] == nil {
			continue // item failed; error already recorded
		}
		payload, err := it.recv.Open(envs[i], it.wit)
		if err != nil {
			continue // condition not satisfied; indistinguishable to the publisher
		}
		css, err := core.CSSFromBytes(payload)
		if err != nil {
			// Record and keep going: aborting here would abandon envelopes
			// whose cells the publisher has already committed.
			if itemErr == nil {
				itemErr = fmt.Errorf("pubsub: bad CSS payload for %q: %w", it.cond.ID(), err)
			}
			continue
		}
		s.mu.Lock()
		s.css[it.cond.ID()] = css
		s.mu.Unlock()
		extracted++
	}
	return extracted, itemErr
}

// Decrypt recovers every subdocument of a broadcast the subscriber is
// authorized for. For each configuration it searches for a policy whose
// conditions it holds CSSs for, derives the key from the public header
// (paper "Decryption Key Derivation"), and decrypts the matching items.
// Grouped headers (§VIII-C) are located via the remembered group-index hint
// first, falling back to a trial-derivation scan verified by authenticated
// decryption. Subdocuments it cannot decrypt are simply absent from the
// result.
func (s *Subscriber) Decrypt(b *Broadcast) (map[string][]byte, error) {
	if b == nil {
		return nil, errors.New("pubsub: nil broadcast")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	polByID := make(map[string]PolicyInfo, len(b.Policies))
	for _, pi := range b.Policies {
		polByID[pi.ID] = pi
	}
	// The shortest ciphertext of each configuration doubles as the verifier
	// for grouped trial derivation: all of a configuration's items share the
	// key, and a wrong-shard candidate then costs one small AEAD attempt
	// instead of a full-payload decryption.
	verifyCT := make(map[policy.ConfigKey][]byte, len(b.Configs))
	for _, item := range b.Items {
		if ct, ok := verifyCT[item.Config]; !ok || len(item.Ciphertext) < len(ct) {
			verifyCT[item.Config] = item.Ciphertext
		}
	}

	keys := make(map[policy.ConfigKey][sym.KeySize]byte)
	for _, ci := range b.Configs {
		for _, acpID := range ci.Key.IDs() {
			pi, ok := polByID[acpID]
			if !ok {
				continue
			}
			row, ok := s.rowFor(pi)
			if !ok {
				continue
			}
			var key [sym.KeySize]byte
			var derived bool
			var err error
			switch {
			case ci.Grouped != nil:
				key, derived, err = s.groupedKey(row, ci, verifyCT[ci.Key])
			case ci.Header != nil:
				key, derived, err = s.headerKey(row, ci.Header)
			default:
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("pubsub: deriving key for %q: %w", ci.Key, err)
			}
			if derived {
				keys[ci.Key] = key
				break
			}
		}
	}

	out := make(map[string][]byte)
	for _, item := range b.Items {
		key, ok := keys[item.Config]
		if !ok {
			continue
		}
		pt, err := sym.Decrypt(key, item.Ciphertext)
		if err != nil {
			// Wrong key (e.g. our CSSs are stale after a credential change):
			// treat as unauthorized rather than failing the whole broadcast.
			continue
		}
		out[item.Subdoc] = pt
	}
	return out, nil
}

// headerKey derives the configuration key from a classic single-ACV header
// through the KEV cache. Callers hold s.mu.
func (s *Subscriber) headerKey(row []core.CSS, hdr *core.Header) ([sym.KeySize]byte, bool, error) {
	kev, err := s.cachedKEV(row, hdr)
	if err != nil {
		return [sym.KeySize]byte{}, false, err
	}
	k, err := kev.Dot(hdr.X)
	if err != nil {
		return [sym.KeySize]byte{}, false, err
	}
	return core.ExpandKey(k), true, nil
}

// groupedKey locates the subscriber's shard inside a grouped header: the
// remembered hint index first, then a scan over the remaining shards. Each
// candidate key is verified by authenticated decryption of the
// configuration's verifier ciphertext — a wrong shard yields an
// unpredictable key, not an error. Callers hold s.mu.
func (s *Subscriber) groupedKey(row []core.CSS, ci ConfigInfo, verifyCT []byte) ([sym.KeySize]byte, bool, error) {
	g := ci.Grouped
	if len(g.Shards) == 0 || verifyCT == nil {
		return [sym.KeySize]byte{}, false, nil
	}
	order := make([]int, 0, len(g.Shards))
	if hint, ok := s.grpHint[ci.Key]; ok && hint >= 0 && hint < len(g.Shards) {
		order = append(order, hint)
	}
	for i := range g.Shards {
		if len(order) > 0 && i == order[0] {
			continue
		}
		order = append(order, i)
	}
	for _, i := range order {
		kev, err := s.cachedKEV(row, g.Shards[i].Hdr)
		if err != nil {
			return [sym.KeySize]byte{}, false, err
		}
		shardKey, err := kev.Dot(g.Shards[i].Hdr.X)
		if err != nil {
			return [sym.KeySize]byte{}, false, err
		}
		key := core.ExpandKey(g.Unwrap(i, shardKey))
		if _, err := sym.Decrypt(key, verifyCT); err == nil {
			s.grpHint[ci.Key] = i
			return key, true, nil
		}
	}
	return [sym.KeySize]byte{}, false, nil
}

// cachedKEV returns the key extraction vector for one (CSS row, nonce set)
// pair, hashing it only on first sight (§VIII-D: "the Sub can compute the
// hash values and cache the resultant vector for future use"). Callers hold
// s.mu.
func (s *Subscriber) cachedKEV(row []core.CSS, hdr *core.Header) (linalg.Vector, error) {
	h := sha256.New()
	var num [8]byte
	binary.BigEndian.PutUint64(num[:], uint64(len(row)))
	h.Write(num[:])
	for _, css := range row {
		h.Write(css.Bytes())
	}
	for _, z := range hdr.Zs {
		binary.BigEndian.PutUint64(num[:], uint64(len(z)))
		h.Write(num[:])
		h.Write(z)
	}
	var key [32]byte
	copy(key[:], h.Sum(nil))
	if kev, ok := s.kev[key]; ok && len(kev) == len(hdr.X) {
		return kev, nil
	}
	kev, err := core.KEV(row, hdr)
	if err != nil {
		return nil, err
	}
	if len(s.kev) >= maxKEVCache {
		s.kev = make(map[[32]byte]linalg.Vector)
	}
	s.kev[key] = kev
	s.kevMisses++
	return kev, nil
}

// ExportCSS serializes the subscriber's extracted CSSs so a command-line
// client can keep them across runs. Like the publisher's table T, this is
// secret material.
func (s *Subscriber) ExportCSS() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := struct {
		Version int               `json:"version"`
		Nym     string            `json:"nym"`
		CSS     map[string]uint64 `json:"css"`
	}{Version: 1, Nym: s.nym, CSS: make(map[string]uint64, len(s.css))}
	for cond, v := range s.css {
		out.CSS[cond] = uint64(v)
	}
	return json.Marshal(out)
}

// ImportCSS restores CSSs saved by ExportCSS, merging over the current set.
func (s *Subscriber) ImportCSS(data []byte) error {
	var in struct {
		Version int               `json:"version"`
		Nym     string            `json:"nym"`
		CSS     map[string]uint64 `json:"css"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("pubsub: parsing CSS state: %w", err)
	}
	if in.Version != 1 {
		return fmt.Errorf("pubsub: unsupported CSS state version %d", in.Version)
	}
	if in.Nym != s.nym {
		return fmt.Errorf("pubsub: CSS state belongs to %q, not %q", in.Nym, s.nym)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for cond, v := range in.CSS {
		if v == 0 || v >= ff64.Modulus {
			return fmt.Errorf("pubsub: invalid CSS for %q", cond)
		}
		s.css[cond] = core.CSS(v)
	}
	return nil
}

// rowFor returns the subscriber's ordered CSS list for one policy, or false
// if any condition's CSS is missing.
func (s *Subscriber) rowFor(pi PolicyInfo) ([]core.CSS, bool) {
	row := make([]core.CSS, 0, len(pi.CondIDs))
	for _, id := range pi.CondIDs {
		v, ok := s.css[id]
		if !ok {
			return nil, false
		}
		row = append(row, v)
	}
	return row, true
}
