package pubsub

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"sort"

	"ppcd/internal/core"
	"ppcd/internal/policy"
)

// This file is the registry's grouping layer (§VIII-C): each policy's
// qualified rows are partitioned into sticky groups of at most groupSize
// members, so the keymgr can hand the engine per-shard row blocks whose
// content signatures change only when that shard's membership does.
//
// Assignment is STICKY under churn: a (nym, policy) row keeps its group for
// as long as the row exists; a departing row frees its slot (later joiners
// refill it) without moving anyone else. A single join/leave/credential
// update therefore changes exactly one group's content per affected policy,
// which is what turns the engine's per-shard cache into "one small solve per
// churn event".
//
// The snapshot itself is incremental too. Mutations record churn hints — the
// (policy, nym) pairs they touched (registry.hint) — and snapshotGrouped
// re-qualifies just those pseudonyms against the columnar table, updates the
// affected groups' membership, and re-digests only the dirty groups' row
// blocks. At a million rows a single join costs one row qualification plus
// one group re-assembly instead of a full-table scan and regroup. The scan
// path (fullRegroup) remains for the cases hints cannot describe: the first
// snapshot of a policy, a restored sticky assignment, and bumpAll.

// shardRows is one group's row block for one policy: the stable group
// number, a digest of the block's content (the engine's dirtiness signal),
// and the member rows in deterministic (sorted-nym) order.
type shardRows struct {
	GID  int
	Sig  string
	Rows [][]core.CSS
}

// groupState is the grouping state of one policy: the sticky assignment, the
// per-group occupancy (len(counts) is the number of groups ever created —
// empty groups keep their numbers), a constant-time least-full tracker, the
// sorted member list per group, and the cached shard assembly tagged with
// the membership version it reflects. valid=false forces a full regroup
// (fresh policy, restored assignment, bumpAll); afterwards the state stays
// valid and advances through churn hints alone. Guarded by grpMu.
type groupState struct {
	assign  map[string]int
	counts  []int
	tracker *minTracker
	members [][]string
	shards  []shardRows
	ver     uint64
	valid   bool
}

// shardSig digests one group's content: policy, group number and the
// ordered (nym, CSS row) members. Length prefixes keep crafted nyms from
// colliding across boundaries.
func shardSig(acpID string, gid int, nyms []string, rows [][]core.CSS) string {
	h := sha256.New()
	var num [8]byte
	writeStr := func(s string) {
		binary.BigEndian.PutUint64(num[:], uint64(len(s)))
		h.Write(num[:])
		h.Write([]byte(s))
	}
	writeStr(acpID)
	binary.BigEndian.PutUint64(num[:], uint64(gid))
	h.Write(num[:])
	for i, nym := range nyms {
		writeStr(nym)
		binary.BigEndian.PutUint64(num[:], uint64(len(rows[i])))
		h.Write(num[:])
		for _, css := range rows[i] {
			h.Write(css.Bytes())
		}
	}
	return base64.RawStdEncoding.EncodeToString(h.Sum(nil))
}

// trackOcc clamps an occupancy to the tracker's range. Occupancies above
// capacity can only arrive through inconsistent imported state; clamping
// parks such groups in the "full" bucket where they are never picked.
func trackOcc(c, capacity int) int {
	if c > capacity {
		return capacity
	}
	return c
}

// snapshotGrouped is the grouped counterpart of snapshot: for every policy
// it returns the qualified rows partitioned into sticky groups, with a
// content signature per group. Policies whose membership version is
// unchanged reuse their cached shard assembly; changed policies with valid
// group state replay just their churn hints. The returned shard slices are
// immutable once cached; callers use them lock-free.
func (r *registry) snapshotGrouped(acps []*policy.ACP) map[string][]shardRows {
	out := make(map[string][]shardRows, len(acps))

	// grpMu serializes grouped assembly (concurrent publishes) and guards
	// the group state. The incremental path additionally holds the write
	// lock for its (small) qualify-and-gather step so the hint steal, the
	// version read and the row reads are one atomic unit; the full-regroup
	// scan holds only the shared read lock, so a big rebuild does not stall
	// registrations.
	r.grpMu.Lock()
	defer r.grpMu.Unlock()

	for _, a := range acps {
		gs := r.grp[a.ID]
		if gs == nil {
			gs = &groupState{assign: make(map[string]int)}
			r.grp[a.ID] = gs
		}
		if gs.valid {
			r.mu.Lock()
			ver := r.memVer[a.ID]
			if gs.ver == ver {
				r.mu.Unlock()
				out[a.ID] = gs.shards
				continue
			}
			hints := r.pend[a.ID]
			delete(r.pend, a.ID)
			r.applyChurn(gs, a, ver, hints)
			r.maybeCompact()
			r.mu.Unlock()
			out[a.ID] = gs.shards
			continue
		}
		// Full regroup: discard any pending hints first — the scan below
		// subsumes them. A mutation racing with the scan re-adds its hint
		// and bumps memVer past the version read inside the scan's lock, so
		// the next snapshot replays it.
		r.mu.Lock()
		delete(r.pend, a.ID)
		r.mu.Unlock()
		r.fullRegroup(gs, a)
		out[a.ID] = gs.shards
	}
	return out
}

// applyChurn advances one policy's group state by its churn hints: each
// hinted pseudonym is re-qualified against the table, departures free their
// slots, arrivals fill the least-full group (sorted-nym order, exactly as
// the full regroup assigns newcomers), and only groups whose membership or
// member content changed are re-assembled and re-digested. Callers hold
// grpMu and the registry write lock.
func (r *registry) applyChurn(gs *groupState, a *policy.ACP, ver uint64, hints map[string]struct{}) {
	cis := r.polConds[a.ID]
	dirty := make(map[int]bool)
	var leavers, joiners []string
	for nym := range hints {
		qualified := false
		if s, ok := r.tab.slotOf[nym]; ok {
			qualified = qualifiesRow(r.tab.row(s), cis)
		}
		gid, assigned := gs.assign[nym]
		switch {
		case assigned && !qualified:
			leavers = append(leavers, nym)
		case !assigned && qualified:
			joiners = append(joiners, nym)
		case assigned && qualified:
			// Still a member, but its cells may have changed: re-digest.
			dirty[gid] = true
		}
	}

	// Departures first, so their slots are refillable by this batch's
	// arrivals — the same order the full regroup uses. Assignment changes
	// re-dirty the owning table row: the segmented state export stores each
	// row's group IDs alongside its cells, so a row whose assignment moved
	// must land in the next snapshot's dirty segments even if its cells were
	// exported (and its dirty bit cleared) between the mutation and this
	// grouped assembly.
	for _, nym := range leavers {
		gid := gs.assign[nym]
		delete(gs.assign, nym)
		gs.tracker.move(gid, trackOcc(gs.counts[gid], r.groupSize), trackOcc(gs.counts[gid]-1, r.groupSize))
		gs.counts[gid]--
		gs.members[gid] = removeSorted(gs.members[gid], nym)
		dirty[gid] = true
		if s, ok := r.tab.slotOf[nym]; ok {
			r.tab.markDirty(s)
		}
	}
	sort.Strings(joiners)
	for _, nym := range joiners {
		gid, ok := gs.tracker.least()
		if !ok {
			gid = len(gs.counts)
			gs.counts = append(gs.counts, 0)
			gs.members = append(gs.members, nil)
			gs.tracker.addAt(gid, 0)
		}
		gs.assign[nym] = gid
		gs.tracker.move(gid, trackOcc(gs.counts[gid], r.groupSize), trackOcc(gs.counts[gid]+1, r.groupSize))
		gs.counts[gid]++
		gs.members[gid] = insertSorted(gs.members[gid], nym)
		dirty[gid] = true
		if s, ok := r.tab.slotOf[nym]; ok {
			r.tab.markDirty(s)
		}
	}

	if len(dirty) > 0 {
		r.assembleShards(gs, a.ID, dirty)
	}
	gs.ver = ver
}

// assembleShards rebuilds the policy's shard list, re-reading rows and
// recomputing signatures only for the dirty groups; clean groups keep their
// existing (immutable) shardRows. Callers hold grpMu and the registry write
// lock.
func (r *registry) assembleShards(gs *groupState, acpID string, dirty map[int]bool) {
	prev := make(map[int]shardRows, len(gs.shards))
	for _, sh := range gs.shards {
		prev[sh.GID] = sh
	}
	cis := r.polConds[acpID]
	shards := make([]shardRows, 0, len(gs.shards)+len(dirty))
	for gid, c := range gs.counts {
		if c <= 0 {
			continue
		}
		if !dirty[gid] {
			if sh, ok := prev[gid]; ok {
				shards = append(shards, sh)
				continue
			}
		}
		members := gs.members[gid]
		rows := make([][]core.CSS, len(members))
		for j, nym := range members {
			row := r.tab.row(r.tab.slotOf[nym])
			css := make([]core.CSS, len(cis))
			for k, ci := range cis {
				css[k] = row[ci]
			}
			rows[j] = css
		}
		shards = append(shards, shardRows{GID: gid, Sig: shardSig(acpID, gid, members, rows), Rows: rows})
	}
	gs.shards = shards
}

// fullRegroup rebuilds one policy's group state from a full table scan: the
// sticky assignment keeps everyone still qualified in place, departures are
// released, newcomers fill least-full groups in sorted order, and occupancy,
// tracker, member lists and shards are reconstructed. Callers hold grpMu
// (but NOT the registry lock — the scan takes the read lock itself).
func (r *registry) fullRegroup(gs *groupState, a *policy.ACP) {
	r.mu.RLock()
	ver := r.memVer[a.ID]
	nyms, rows := r.collectQualified(a)
	r.mu.RUnlock()

	if gs.assign == nil {
		gs.assign = make(map[string]int)
	}
	present := make(map[string]bool, len(nyms))
	for _, nym := range nyms {
		present[nym] = true
	}
	for nym := range gs.assign {
		if !present[nym] {
			delete(gs.assign, nym)
		}
	}
	// Rebuild occupancy from the surviving assignment. The group universe —
	// including empty groups — keeps its numbering, so restored members
	// never move shards.
	ngroups := len(gs.counts)
	for _, gid := range gs.assign {
		if gid >= ngroups {
			ngroups = gid + 1
		}
	}
	counts := make([]int, ngroups)
	for _, gid := range gs.assign {
		counts[gid]++
	}
	tracker := newMinTracker(r.groupSize)
	for gid, c := range counts {
		tracker.addAt(gid, trackOcc(c, r.groupSize))
	}
	// Assign newcomers to the least-full group with spare capacity (lowest
	// group number on ties, so refills are deterministic), opening a new
	// group once all are full. nyms arrive sorted.
	var newcomers []string
	for _, nym := range nyms {
		if _, ok := gs.assign[nym]; ok {
			continue
		}
		gid, ok := tracker.least()
		if !ok {
			gid = len(counts)
			counts = append(counts, 0)
			tracker.addAt(gid, 0)
		}
		gs.assign[nym] = gid
		tracker.move(gid, trackOcc(counts[gid], r.groupSize), trackOcc(counts[gid]+1, r.groupSize))
		counts[gid]++
		newcomers = append(newcomers, nym)
	}
	gs.counts = counts
	gs.tracker = tracker
	if len(newcomers) > 0 {
		// Fresh assignments re-dirty their rows so the next segmented
		// snapshot exports the new group IDs (see applyChurn). A row deleted
		// since the scan already marked itself on deletion.
		r.mu.Lock()
		for _, nym := range newcomers {
			if s, ok := r.tab.slotOf[nym]; ok {
				r.tab.markDirty(s)
			}
		}
		r.mu.Unlock()
	}

	// Per-group member lists and row blocks, in sorted-nym order.
	byGid := make([][]int, len(counts))
	for i, nym := range nyms {
		gid := gs.assign[nym]
		byGid[gid] = append(byGid[gid], i)
	}
	gs.members = make([][]string, len(counts))
	shards := make([]shardRows, 0, len(byGid))
	for gid, idx := range byGid {
		if len(idx) == 0 {
			continue
		}
		gNyms := make([]string, len(idx))
		gRows := make([][]core.CSS, len(idx))
		for j, i := range idx {
			gNyms[j] = nyms[i]
			gRows[j] = rows[i]
		}
		gs.members[gid] = gNyms
		shards = append(shards, shardRows{
			GID:  gid,
			Sig:  shardSig(a.ID, gid, gNyms, gRows),
			Rows: gRows,
		})
	}
	gs.shards = shards
	gs.ver = ver
	gs.valid = true
}

// insertSorted inserts nym into a sorted slice (no-op if already present).
func insertSorted(s []string, nym string) []string {
	i := sort.SearchStrings(s, nym)
	if i < len(s) && s[i] == nym {
		return s
	}
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = nym
	return s
}

// removeSorted removes nym from a sorted slice (no-op if absent).
func removeSorted(s []string, nym string) []string {
	i := sort.SearchStrings(s, nym)
	if i >= len(s) || s[i] != nym {
		return s
	}
	return append(s[:i], s[i+1:]...)
}
