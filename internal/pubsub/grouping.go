package pubsub

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"sort"

	"ppcd/internal/core"
	"ppcd/internal/policy"
)

// This file is the registry's grouping layer (§VIII-C): each policy's
// qualified rows are partitioned into sticky groups of at most groupSize
// members, so the keymgr can hand the engine per-shard row blocks whose
// content signatures change only when that shard's membership does.
//
// Assignment is STICKY under churn: a (nym, policy) row keeps its group for
// as long as the row exists; a departing row frees its slot (later joiners
// refill it) without moving anyone else. A single join/leave/credential
// update therefore changes exactly one group's content per affected policy,
// which is what turns the engine's per-shard cache into "one small solve per
// churn event".

// shardRows is one group's row block for one policy: the stable group
// number, a digest of the block's content (the engine's dirtiness signal),
// and the member rows in deterministic (sorted-nym) order.
type shardRows struct {
	GID  int
	Sig  string
	Rows [][]core.CSS
}

// groupedPolicyRows is the cached grouped assembly of one policy, tagged
// with the membership version it was built at (same invalidation protocol as
// the ungrouped rowsCache).
type groupedPolicyRows struct {
	ver    uint64
	shards []shardRows
}

// shardSig digests one group's content: policy, group number and the
// ordered (nym, CSS row) members. Length prefixes keep crafted nyms from
// colliding across boundaries.
func shardSig(acpID string, gid int, nyms []string, rows [][]core.CSS) string {
	h := sha256.New()
	var num [8]byte
	writeStr := func(s string) {
		binary.BigEndian.PutUint64(num[:], uint64(len(s)))
		h.Write(num[:])
		h.Write([]byte(s))
	}
	writeStr(acpID)
	binary.BigEndian.PutUint64(num[:], uint64(gid))
	h.Write(num[:])
	for i, nym := range nyms {
		writeStr(nym)
		binary.BigEndian.PutUint64(num[:], uint64(len(rows[i])))
		h.Write(num[:])
		for _, css := range rows[i] {
			h.Write(css.Bytes())
		}
	}
	return base64.RawStdEncoding.EncodeToString(h.Sum(nil))
}

// snapshotGrouped is the grouped counterpart of snapshot: for every policy
// it returns the qualified rows partitioned into sticky groups, with a
// content signature per group. Policies whose membership version is
// unchanged reuse their cached grouped assembly, so a steady-state snapshot
// costs O(policies). The returned shard slices are immutable once cached;
// callers use them lock-free.
func (r *registry) snapshotGrouped(acps []*policy.ACP) map[string][]shardRows {
	out := make(map[string][]shardRows, len(acps))

	// grpMu serializes grouped assembly (concurrent publishes) and guards
	// the assignment state. The stale-policy table scan below holds the
	// shared read lock — mutations queue behind it just as they do behind
	// the ungrouped snapshot's scan — while the regroup/digest phase
	// afterwards runs under grpMu alone, overlapping registrations and
	// revocations.
	r.grpMu.Lock()
	defer r.grpMu.Unlock()

	type staleScan struct {
		acp  *policy.ACP
		ver  uint64
		nyms []string
		rows [][]core.CSS
	}
	var stale []staleScan

	r.mu.RLock()
	var allNyms []string
	for _, a := range acps {
		ver := r.memVer[a.ID]
		if c, ok := r.grpCache[a.ID]; ok && c.ver == ver {
			out[a.ID] = c.shards
			continue
		}
		if allNyms == nil {
			allNyms = make([]string, 0, len(r.table))
			for nym := range r.table {
				allNyms = append(allNyms, nym)
			}
			sort.Strings(allNyms)
		}
		sc := staleScan{acp: a, ver: ver}
		for _, nym := range allNyms {
			row := r.table[nym]
			css := make([]core.CSS, 0, len(a.Conds))
			complete := true
			for _, c := range a.Conds {
				v, ok := row[c.ID()]
				if !ok {
					complete = false
					break
				}
				css = append(css, v)
			}
			if complete {
				sc.nyms = append(sc.nyms, nym)
				sc.rows = append(sc.rows, css)
			}
		}
		stale = append(stale, sc)
	}
	r.mu.RUnlock()

	for _, sc := range stale {
		shards := r.regroup(sc.acp.ID, sc.nyms, sc.rows)
		// The version recorded is the one read together with the rows; a
		// mutation racing with the scan bumps memVer past it, so the next
		// snapshot reassembles.
		r.grpCache[sc.acp.ID] = groupedPolicyRows{ver: sc.ver, shards: shards}
		out[sc.acp.ID] = shards
	}
	return out
}

// regroup folds the current qualified members of one policy into the sticky
// assignment and rebuilds the per-group row blocks. Callers hold grpMu.
func (r *registry) regroup(acpID string, nyms []string, rows [][]core.CSS) []shardRows {
	assign := r.grpAssign[acpID]
	if assign == nil {
		assign = make(map[string]int)
		r.grpAssign[acpID] = assign
	}
	counts := r.grpCounts[acpID]

	// Release departed members so their slots refill later; everyone still
	// present keeps their group.
	present := make(map[string]bool, len(nyms))
	for _, nym := range nyms {
		present[nym] = true
	}
	for nym, gid := range assign {
		if !present[nym] {
			delete(assign, nym)
			counts[gid]--
		}
	}
	// Assign newcomers to the least-full group with spare capacity (lowest
	// group number on ties, so refills are deterministic), opening a new
	// group once all are full.
	for _, nym := range nyms {
		if _, ok := assign[nym]; ok {
			continue
		}
		best := -1
		for gid, c := range counts {
			if c < r.groupSize && (best == -1 || c < counts[best]) {
				best = gid
			}
		}
		if best == -1 {
			best = len(counts)
			counts = append(counts, 0)
		}
		assign[nym] = best
		counts[best]++
	}
	r.grpCounts[acpID] = counts

	// Build the per-group blocks in sorted-nym order (nyms arrive sorted).
	byGid := make([][]int, len(counts))
	for i, nym := range nyms {
		gid := assign[nym]
		byGid[gid] = append(byGid[gid], i)
	}
	var shards []shardRows
	for gid, members := range byGid {
		if len(members) == 0 {
			continue
		}
		gNyms := make([]string, len(members))
		gRows := make([][]core.CSS, len(members))
		for j, i := range members {
			gNyms[j] = nyms[i]
			gRows[j] = rows[i]
		}
		shards = append(shards, shardRows{
			GID:  gid,
			Sig:  shardSig(acpID, gid, gNyms, gRows),
			Rows: gRows,
		})
	}
	return shards
}
