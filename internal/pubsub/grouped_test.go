package pubsub

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ppcd/internal/benchutil"
	"ppcd/internal/document"
	"ppcd/internal/policy"
)

// importTable injects a synthetic CSS table through the public state-import
// path (no OCBE exchanges).
func importTable(t *testing.T, pub *Publisher, table map[string]map[string]uint64) {
	t.Helper()
	state, err := json.Marshal(map[string]any{"version": 1, "table": table})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ImportState(state); err != nil {
		t.Fatal(err)
	}
}

// subFromRow builds a subscriber holding exactly the given CSS cells,
// matching one table row.
func subFromRow(t *testing.T, nym string, row map[string]uint64) *Subscriber {
	t.Helper()
	s, err := NewSubscriber(nym)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(struct {
		Version int               `json:"version"`
		Nym     string            `json:"nym"`
		CSS     map[string]uint64 `json:"css"`
	}{Version: 1, Nym: nym, CSS: row})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ImportCSS(payload); err != nil {
		t.Fatal(err)
	}
	return s
}

// equivFixture builds the two-policy document used by the equivalence and
// dominance tests: acpA (two conditions) covers sd1+sd2, acpB covers
// sd2+sd3, so sd2's configuration is {acpA, acpB}.
func equivFixture(t *testing.T) ([]*policy.ACP, *document.Document) {
	t.Helper()
	acpA, err := policy.New("acpA", "a >= 1 && b >= 1", "doc", "sd1", "sd2")
	if err != nil {
		t.Fatal(err)
	}
	acpB, err := policy.New("acpB", "c >= 1", "doc", "sd2", "sd3")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := document.New("doc",
		document.Subdocument{Name: "sd1", Content: []byte("one")},
		document.Subdocument{Name: "sd2", Content: []byte("two")},
		document.Subdocument{Name: "sd3", Content: []byte("three")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return []*policy.ACP{acpA, acpB}, doc
}

func TestGroupedMatchesUngroupedAccess(t *testing.T) {
	// Property: for random membership tables, a grouped publisher grants
	// every subscriber exactly the same subdocuments (with identical
	// plaintexts) as an ungrouped one, and non-members get nothing — the
	// §VIII-C refactor must not move the access boundary.
	params, mgr := testEnv(t)
	acps, doc := equivFixture(t)
	conds := []string{"a >= 1", "b >= 1", "c >= 1"}

	for seed := int64(0); seed < 4; seed++ {
		for _, groupSize := range []int{1, 2, 3, 100} {
			rng := rand.New(rand.NewSource(seed))
			table := make(map[string]map[string]uint64)
			for i := 0; i < 10; i++ {
				row := make(map[string]uint64)
				for _, c := range conds {
					if rng.Intn(2) == 1 {
						row[c] = rng.Uint64()%1000003 + 1
					}
				}
				if len(row) > 0 {
					table[fmt.Sprintf("pn-%d", i)] = row
				}
			}

			plain, err := NewPublisher(params, mgr.PublicKey(), acps, Options{Ell: 8})
			if err != nil {
				t.Fatal(err)
			}
			grouped, err := NewPublisher(params, mgr.PublicKey(), acps, Options{Ell: 8, GroupSize: groupSize})
			if err != nil {
				t.Fatal(err)
			}
			importTable(t, plain, table)
			importTable(t, grouped, table)
			bPlain, err := plain.Publish(doc)
			if err != nil {
				t.Fatal(err)
			}
			bGrouped, err := grouped.Publish(doc)
			if err != nil {
				t.Fatalf("seed %d g=%d: %v", seed, groupSize, err)
			}

			for nym, row := range table {
				gotPlain, err := subFromRow(t, nym, row).Decrypt(bPlain)
				if err != nil {
					t.Fatal(err)
				}
				gotGrouped, err := subFromRow(t, nym, row).Decrypt(bGrouped)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotPlain) != len(gotGrouped) {
					t.Fatalf("seed %d g=%d %s: plain decrypts %d, grouped %d",
						seed, groupSize, nym, len(gotPlain), len(gotGrouped))
				}
				for name, pt := range gotPlain {
					if !bytes.Equal(gotGrouped[name], pt) {
						t.Fatalf("seed %d g=%d %s: %s differs across modes", seed, groupSize, nym, name)
					}
				}
				// Cross-check against the policy semantics.
				hasA := row["a >= 1"] != 0 && row["b >= 1"] != 0
				hasB := row["c >= 1"] != 0
				want := 0
				if hasA {
					want++ // sd1
				}
				if hasA || hasB {
					want++ // sd2
				}
				if hasB {
					want++ // sd3
				}
				if len(gotGrouped) != want {
					t.Fatalf("seed %d g=%d %s: decrypted %d subdocs, policy says %d",
						seed, groupSize, nym, len(gotGrouped), want)
				}
			}
			// A non-member derives nothing from either broadcast.
			outsider := subFromRow(t, "pn-out", map[string]uint64{"a >= 1": 999983})
			if got, _ := outsider.Decrypt(bGrouped); len(got) != 0 {
				t.Fatalf("seed %d g=%d: outsider decrypted %d subdocs", seed, groupSize, len(got))
			}
		}
	}
}

func TestGroupedChurnSolvesExactlyOneShard(t *testing.T) {
	// Acceptance criterion: a single-leave churn publish re-solves exactly
	// one shard (one small ACV), not whole configurations. The benchutil
	// workload's first half of pseudonyms hold only attr0, so revoking one
	// touches one policy — and with grouping, one group of that policy.
	params, mgr := testEnv(t)
	acps, doc, state, err := benchutil.Workload(12, 3, 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(params, mgr.PublicKey(), acps, Options{Ell: 8, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ImportState(state); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(doc); err != nil {
		t.Fatal(err)
	}
	base := pub.Stats()
	// acp0 has 12 rows in 4 groups of 3; acp1 and acp2 have 6 rows in 2
	// groups each: 8 shard solves for the settling publish.
	if base.Solves != 8 {
		t.Fatalf("settling publish solved %d shards, want 8", base.Solves)
	}

	// Steady state: zero solves, zero rebuilds.
	b1, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	if s := pub.Stats(); s.Solves != base.Solves || s.Rebuilds != base.Rebuilds {
		t.Fatalf("steady-state publish solved %d shards, rebuilt %d configs",
			s.Solves-base.Solves, s.Rebuilds-base.Rebuilds)
	}

	// The leaver holds only attr0: exactly one of acp0's four groups loses a
	// row, so the churn publish must re-solve exactly ONE shard and rebuild
	// exactly ONE configuration.
	var table map[string]map[string]uint64
	var sf struct {
		Table map[string]map[string]uint64 `json:"table"`
	}
	if err := json.Unmarshal(state, &sf); err != nil {
		t.Fatal(err)
	}
	table = sf.Table
	leaver := subFromRow(t, "pn-0", table["pn-0"])
	stayer := subFromRow(t, "pn-1", table["pn-1"])
	if got, _ := leaver.Decrypt(b1); len(got) != 1 {
		t.Fatalf("leaver decrypted %d subdocs before revocation", len(got))
	}

	if err := pub.RevokeSubscription("pn-0"); err != nil {
		t.Fatal(err)
	}
	b2, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	s := pub.Stats()
	if got := s.Solves - base.Solves; got != 1 {
		t.Errorf("single-leave churn publish solved %d shards, want 1", got)
	}
	if got := s.Rebuilds - base.Rebuilds; got != 1 {
		t.Errorf("single-leave churn publish rebuilt %d configurations, want 1", got)
	}

	// Forward secrecy: the leaver cannot decrypt the post-revocation
	// broadcast; a remaining member of the same policy still can.
	if got, _ := leaver.Decrypt(b2); len(got) != 0 {
		t.Errorf("revoked subscriber decrypted %d subdocs", len(got))
	}
	if got, _ := stayer.Decrypt(b2); len(got) != 1 {
		t.Errorf("remaining subscriber decrypted %d subdocs, want 1", len(got))
	}
}

func TestGroupedSubscriberKEVCacheAndHint(t *testing.T) {
	// §VIII-D receiver half: steady-state republish re-hashes nothing (the
	// KEV cache hits on every shard), and after churn in a DIFFERENT group
	// the subscriber's own shard is clean — hint plus cache make the whole
	// derivation hash-free.
	params, mgr := testEnv(t)
	acps, doc, state, err := benchutil.Workload(6, 1, 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(params, mgr.PublicKey(), acps, Options{Ell: 8, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ImportState(state); err != nil {
		t.Fatal(err)
	}
	var sf struct {
		Table map[string]map[string]uint64 `json:"table"`
	}
	if err := json.Unmarshal(state, &sf); err != nil {
		t.Fatal(err)
	}
	// Sticky assignment fills groups in sorted-nym order: pn-0,pn-1 → group
	// 0, pn-2,pn-3 → group 1, pn-4,pn-5 → group 2.
	sub := subFromRow(t, "pn-3", sf.Table["pn-3"])

	b1, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sub.Decrypt(b1); len(got) != 1 {
		t.Fatalf("first decrypt got %d subdocs", len(got))
	}
	missesAfterFirst := sub.kevMisses
	if missesAfterFirst == 0 {
		t.Fatal("first decrypt hashed nothing")
	}
	if hint, ok := sub.grpHint[policy.ConfigOf("acp0")]; !ok || hint != 1 {
		t.Fatalf("group hint = %d (ok=%v), want 1", hint, ok)
	}

	// Steady-state republish: same headers, zero fresh hashings.
	b2, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sub.Decrypt(b2); len(got) != 1 {
		t.Fatal("steady-state decrypt failed")
	}
	if sub.kevMisses != missesAfterFirst {
		t.Errorf("steady-state decrypt hashed %d fresh KEVs", sub.kevMisses-missesAfterFirst)
	}

	// Churn in group 0 (pn-0 leaves): pn-3's group 1 keeps its sub-header,
	// so the hint hits and the cached KEV derives without any hashing.
	if err := pub.RevokeSubscription("pn-0"); err != nil {
		t.Fatal(err)
	}
	b3, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sub.Decrypt(b3); len(got) != 1 {
		t.Fatal("post-churn decrypt failed")
	}
	if sub.kevMisses != missesAfterFirst {
		t.Errorf("post-churn decrypt hashed %d fresh KEVs, want 0 (clean shard)", sub.kevMisses-missesAfterFirst)
	}
}

func TestDominanceReusesSolve(t *testing.T) {
	// §VIII-B: with nobody qualifying for acpB, sd2's configuration
	// {acpA, acpB} has the same subscriber rows as {acpA}, which dominates
	// it — one solve serves both, counted in Stats().DominanceSkips, and an
	// acpA subscriber reads both subdocuments.
	params, mgr := testEnv(t)
	acps, doc := equivFixture(t)
	table := map[string]map[string]uint64{
		"pn-a1": {"a >= 1": 11, "b >= 1": 12},
		"pn-a2": {"a >= 1": 21, "b >= 1": 22},
	}
	for _, groupSize := range []int{0, 1} {
		pub, err := NewPublisher(params, mgr.PublicKey(), acps, Options{Ell: 8, GroupSize: groupSize})
		if err != nil {
			t.Fatal(err)
		}
		importTable(t, pub, table)
		b, err := pub.Publish(doc)
		if err != nil {
			t.Fatal(err)
		}
		s := pub.Stats()
		if s.DominanceSkips != 1 {
			t.Errorf("groupSize=%d: %d dominance skips, want 1", groupSize, s.DominanceSkips)
		}
		wantSolves := uint64(1) // ungrouped: one config; grouped: acpA's single group of 2
		if groupSize == 1 {
			wantSolves = 2 // two single-member groups
		}
		if s.Solves != wantSolves {
			t.Errorf("groupSize=%d: %d solves, want %d", groupSize, s.Solves, wantSolves)
		}
		got, err := subFromRow(t, "pn-a1", table["pn-a1"]).Decrypt(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got["sd1"] == nil || got["sd2"] == nil {
			t.Errorf("groupSize=%d: acpA subscriber decrypted %v, want sd1+sd2", groupSize, len(got))
		}
		// The aliased configuration reuses the representative's build.
		var sd1, sd2 ConfigInfo
		for _, ci := range b.Configs {
			switch ci.Key {
			case policy.ConfigOf("acpA"):
				sd1 = ci
			case policy.ConfigOf("acpA", "acpB"):
				sd2 = ci
			}
		}
		if groupSize == 0 && (sd1.Header == nil || sd1.Header != sd2.Header) {
			t.Errorf("groupSize=0: dominated configuration did not reuse the representative header")
		}
		if groupSize == 1 && (sd1.Grouped == nil || sd1.Grouped != sd2.Grouped) {
			t.Errorf("groupSize=1: dominated configuration did not reuse the representative grouped header")
		}
	}
}

func TestConcurrentRegisterDuringGroupedPublish(t *testing.T) {
	// Registrations racing grouped publishes must neither corrupt the
	// sticky assignment state nor deadlock; run with -race in CI.
	params, mgr := testEnv(t)
	acps, doc, state, err := benchutil.Workload(8, 2, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(params, mgr.PublicKey(), acps, Options{Ell: 8, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ImportState(state); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	subs := make([]*Subscriber, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nym := fmt.Sprintf("pn-race-%d", w)
			sub, err := NewSubscriber(nym)
			if err != nil {
				errs <- err
				return
			}
			tok, sec, err := mgr.IssueString(nym, "attr0", "5")
			if err != nil {
				errs <- err
				return
			}
			if err := sub.AddToken(tok, sec); err != nil {
				errs <- err
				return
			}
			if _, err := sub.RegisterAll(pub); err != nil {
				errs <- err
				return
			}
			subs[w] = sub
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := pub.Publish(doc); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the dust settles every racer decrypts its subdocument.
	b, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	for w, sub := range subs {
		if got, _ := sub.Decrypt(b); len(got) != 1 {
			t.Errorf("racer %d decrypted %d subdocs", w, len(got))
		}
	}
}

func TestGroupedBroadcastGobRoundTrip(t *testing.T) {
	// The TCP transport moves broadcasts as gob; grouped headers must
	// survive it.
	params, mgr := testEnv(t)
	acps, doc, state, err := benchutil.Workload(5, 2, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(params, mgr.PublicKey(), acps, Options{Ell: 8, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ImportState(state); err != nil {
		t.Fatal(err)
	}
	b, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		t.Fatal(err)
	}
	var dec Broadcast
	if err := gob.NewDecoder(&buf).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	var sf struct {
		Table map[string]map[string]uint64 `json:"table"`
	}
	if err := json.Unmarshal(state, &sf); err != nil {
		t.Fatal(err)
	}
	if got, _ := subFromRow(t, "pn-4", sf.Table["pn-4"]).Decrypt(&dec); len(got) != 2 {
		t.Errorf("decrypted %d subdocs from gob copy, want 2", len(got))
	}
}
