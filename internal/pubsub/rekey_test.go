package pubsub

import (
	"errors"
	"fmt"
	"math/big"
	"sync"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/idtoken"
	"ppcd/internal/ocbe"
	"ppcd/internal/policy"
)

// headerOf returns the broadcast header for the configuration containing the
// given subdocument.
func headerOf(t *testing.T, b *Broadcast, subdoc string) (*core.Header, policy.ConfigKey) {
	t.Helper()
	for _, it := range b.Items {
		if it.Subdoc != subdoc {
			continue
		}
		for _, ci := range b.Configs {
			if ci.Key == it.Config {
				return ci.Header, ci.Key
			}
		}
	}
	t.Fatalf("no config found for subdocument %q", subdoc)
	return nil, ""
}

func TestSteadyStatePublishZeroSolves(t *testing.T) {
	// Acceptance criterion: a Publish with no table change since the last one
	// performs zero ACV null-space solves and reuses cached headers.
	pub := newEHRPublisher(t)
	doctor := newSub(t, pub, "pn-ss", map[string]string{"role": "doc"})

	b1, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	solvesAfterFirst := pub.Stats().Solves
	if solvesAfterFirst == 0 {
		t.Fatal("first publish solved nothing")
	}

	b2, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := pub.Stats().Solves; got != solvesAfterFirst {
		t.Errorf("steady-state publish performed %d solves, want 0", got-solvesAfterFirst)
	}
	h1, _ := headerOf(t, b1, "Medication")
	h2, _ := headerOf(t, b2, "Medication")
	if h1 != h2 {
		t.Error("steady-state publish did not reuse the cached header")
	}
	// The reused key still decrypts.
	if got, _ := doctor.Decrypt(b2); len(got) != 5 {
		t.Errorf("doctor decrypted %d subdocs from steady-state broadcast", len(got))
	}
}

func TestIncrementalRekeyOnlyDirtyConfigs(t *testing.T) {
	// A membership change confined to acp4 (a level-only registration) must
	// rekey only the configurations containing acp4; the BillingInfo
	// configuration (acp2|acp6) keeps its cached header.
	pub := newEHRPublisher(t)
	newSub(t, pub, "pn-doc", map[string]string{"role": "doc"})
	newSub(t, pub, "pn-pha", map[string]string{"role": "pha"})

	b1, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}

	// This subscriber holds only a level token, so it registers only for
	// "level >= 59" — membership can only have changed for acp4.
	newSub(t, pub, "pn-lvl", map[string]string{"level": "80"})
	rebuildsBefore := pub.Stats().Rebuilds

	b2, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	billing1, _ := headerOf(t, b1, "BillingInfo")
	billing2, _ := headerOf(t, b2, "BillingInfo")
	if billing1 != billing2 {
		t.Error("BillingInfo configuration was rekeyed without a membership change")
	}
	med1, _ := headerOf(t, b1, "Medication")
	med2, _ := headerOf(t, b2, "Medication")
	if med1 == med2 {
		t.Error("Medication configuration (contains acp4) was not rekeyed")
	}
	rebuilds := pub.Stats().Rebuilds - rebuildsBefore
	// Dirty configurations: ContactInfo's and Medication's (both contain
	// acp4). PhysicalExams/LabRecords/Plan share those config keys, so only
	// configs containing acp4 rebuild.
	if rebuilds == 0 || rebuilds >= uint64(len(b2.Configs)) {
		t.Errorf("rebuilt %d of %d configurations; want a strict subset", rebuilds, len(b2.Configs))
	}
}

func TestRevocationRekeysConfigurationKey(t *testing.T) {
	// Satellite acceptance: after RevokeSubscription/RevokeCredential the
	// next broadcast's configuration key CHANGES, the revoked subscriber's
	// Decrypt fails, and remaining subscribers still decrypt.
	pub := newEHRPublisher(t)
	doc1 := newSub(t, pub, "pn-rev-a", map[string]string{"role": "doc"})
	doc2 := newSub(t, pub, "pn-rev-b", map[string]string{"role": "doc"})
	nurse := newSub(t, pub, "pn-rev-n", map[string]string{"role": "nur", "level": "77"})

	b1, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	h1, cfgKey := headerOf(t, b1, "Medication")

	// doc2's CSS row for acp3 derives the configuration key from the header.
	row2, ok := doc2.rowFor(PolicyInfo{ID: "acp3", CondIDs: []string{"role = doc"}})
	if !ok {
		t.Fatal("doc2 has no acp3 row")
	}
	k1, err := core.DeriveKey(row2, h1)
	if err != nil {
		t.Fatal(err)
	}

	if err := pub.RevokeSubscription("pn-rev-a"); err != nil {
		t.Fatal(err)
	}
	b2, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	h2, cfgKey2 := headerOf(t, b2, "Medication")
	if cfgKey != cfgKey2 {
		t.Fatalf("configuration key changed identity: %q vs %q", cfgKey, cfgKey2)
	}
	k2, err := core.DeriveKey(row2, h2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("configuration key did not change after subscription revocation")
	}
	if got, _ := doc1.Decrypt(b2); len(got) != 0 {
		t.Errorf("revoked subscriber decrypted %d subdocs", len(got))
	}
	if got, _ := doc2.Decrypt(b2); len(got) != 5 {
		t.Errorf("remaining doctor decrypted %d subdocs, want 5", len(got))
	}

	// Credential revocation: drop the nurse's level CSS → acp4 rekeys again.
	if err := pub.RevokeCredential("pn-rev-n", "level >= 59"); err != nil {
		t.Fatal(err)
	}
	b3, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	h3, _ := headerOf(t, b3, "Medication")
	k3, err := core.DeriveKey(row2, h3)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k2 {
		t.Error("configuration key did not change after credential revocation")
	}
	if got, _ := nurse.Decrypt(b3); len(got) != 0 {
		t.Errorf("nurse decrypted %d subdocs after credential revocation", len(got))
	}
	if got, _ := doc2.Decrypt(b3); len(got) != 5 {
		t.Errorf("doctor lost access after nurse revocation: %d subdocs", len(got))
	}
}

func TestRevokeCredentialRemovesEmptyRow(t *testing.T) {
	// Satellite fix: deleting a nym's last CSS must delete the row itself —
	// no ghost subscriber inflating SubscriberCount.
	params, mgr := testEnv(t)
	acp, err := policy.New("adults", "age >= 18", "news", "body")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(params, mgr.PublicKey(), []*policy.ACP{acp}, Options{Ell: 8})
	if err != nil {
		t.Fatal(err)
	}
	newSub(t, pub, "pn-ghost", map[string]string{"age": "30"})
	if pub.SubscriberCount() != 1 {
		t.Fatalf("SubscriberCount = %d, want 1", pub.SubscriberCount())
	}
	if err := pub.RevokeCredential("pn-ghost", "age >= 18"); err != nil {
		t.Fatal(err)
	}
	if pub.SubscriberCount() != 0 {
		t.Errorf("SubscriberCount = %d after last credential revoked, want 0", pub.SubscriberCount())
	}
	if row := pub.reg.rowCopy("pn-ghost"); row != nil {
		t.Errorf("ghost row survived: %v", row)
	}
	// The nym is gone entirely: revoking it again errs like any unknown nym.
	if err := pub.RevokeSubscription("pn-ghost"); err == nil {
		t.Error("ghost subscriber still revocable")
	}
}

func TestConcurrentRegisterDuringPublish(t *testing.T) {
	// Acceptance criterion: Register must never serialize against (or race
	// with) Publish. Run with -race.
	pub := newEHRPublisher(t)
	newSub(t, pub, "pn-base", map[string]string{"role": "doc"})
	_, mgr := testEnv(t)

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nym := fmt.Sprintf("pn-race-%d", w)
			sub, err := NewSubscriber(nym)
			if err != nil {
				errs <- err
				return
			}
			tok, sec, err := mgr.IssueString(nym, "role", "doc")
			if err != nil {
				errs <- err
				return
			}
			if err := sub.AddToken(tok, sec); err != nil {
				errs <- err
				return
			}
			if _, err := sub.RegisterAll(pub); err != nil {
				errs <- err
				return
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := pub.Publish(ehrDoc(t)); err != nil {
				errs <- err
				return
			}
			// Interleave revocation churn with the publishes; only the first
			// call finds the cell, later ones err harmlessly.
			_ = pub.RevokeCredential("pn-base", "role = cas")
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Everyone who finished registering before this publish can decrypt.
	b, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Configs) == 0 {
		t.Fatal("empty broadcast")
	}
}

func TestRegisterBatchDirect(t *testing.T) {
	// RegisterBatch composes all envelopes in one call, verifies each
	// distinct token once, and reports item-level failures without failing
	// the batch.
	pub := newEHRPublisher(t)
	_, mgr := testEnv(t)
	sub, err := NewSubscriber("pn-batch")
	if err != nil {
		t.Fatal(err)
	}
	tok, sec, err := mgr.IssueString("pn-batch", "role", "doc")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.AddToken(tok, sec); err != nil {
		t.Fatal(err)
	}

	// The batched RegisterAll path extracts exactly the satisfied CSS.
	n, err := sub.RegisterAll(pub)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("extracted %d CSSs, want 1", n)
	}
	row := pub.reg.rowCopy("pn-batch")
	if len(row) != 6 {
		t.Errorf("table row has %d cells, want 6 (uniform registration)", len(row))
	}

	// A malformed item inside a batch fails only that item.
	results, err := pub.RegisterBatch([]*RegistrationRequest{
		nil,
		{Token: tok, CondID: "ghost = 1", OCBE: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Err == "" || res.Envelope != nil {
			t.Errorf("item %d: expected per-item error, got %+v", i, res)
		}
	}
	if _, err := pub.RegisterBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

// flakyBatchRegistrar forwards to the real publisher but reports the first
// item as failed, simulating a partial batch failure AFTER the publisher
// committed the other cells.
type flakyBatchRegistrar struct{ *Publisher }

func (f flakyBatchRegistrar) RegisterBatch(reqs []*RegistrationRequest) ([]BatchResult, error) {
	res, err := f.Publisher.RegisterBatch(reqs)
	if err == nil && len(res) > 0 {
		res[0] = BatchResult{CondID: res[0].CondID, Err: "injected item failure"}
	}
	return res, err
}

func TestRegisterAllKeepsExtractionsOnPartialBatchFailure(t *testing.T) {
	// If one batch item fails, the successfully delivered envelopes must
	// still be opened — the publisher already committed their CSS cells, so
	// dropping them would desynchronize subscriber and table T.
	pub := newEHRPublisher(t)
	_, mgr := testEnv(t)
	sub, err := NewSubscriber("pn-partial")
	if err != nil {
		t.Fatal(err)
	}
	tok, sec, err := mgr.IssueString("pn-partial", "role", "doc")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.AddToken(tok, sec); err != nil {
		t.Fatal(err)
	}
	n, err := sub.RegisterAll(flakyBatchRegistrar{pub})
	if err == nil {
		t.Fatal("item failure not reported")
	}
	// The failing item is "role = cas" (first in sorted condition order),
	// which the doctor does not satisfy anyway; the satisfied "role = doc"
	// envelope must have been kept and opened.
	if n != 1 {
		t.Errorf("extracted %d CSSs despite partial failure, want 1", n)
	}
	if !sub.HasCSS("role = doc") {
		t.Error("satisfied CSS discarded on unrelated item failure")
	}
}

func TestRegisterBatchSizeCap(t *testing.T) {
	pub := newEHRPublisher(t)
	big := make([]*RegistrationRequest, MaxRegistrationBatch+1)
	if _, err := pub.RegisterBatch(big); err == nil {
		t.Error("oversized batch accepted")
	}
}

func TestRegisterRejectsForeignCommitment(t *testing.T) {
	// The OCBE exchange must be bound to the IdMgr-certified commitment: a
	// subscriber holding a valid token for age=16 must not be able to run
	// OCBE on a self-chosen commitment to 70 and extract the "age >= 18"
	// CSS.
	params, mgr := testEnv(t)
	acp, err := policy.New("adults", "age >= 18", "news", "body")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(params, mgr.PublicKey(), []*policy.ACP{acp}, Options{Ell: 8})
	if err != nil {
		t.Fatal(err)
	}
	tok, _, err := mgr.IssueString("pn-forge", "age", "16")
	if err != nil {
		t.Fatal(err)
	}
	// Attacker-built commitment to a satisfying value with a known opening.
	forged := ocbe.NewReceiver(params, idtoken.EncodeValue(params.Order(), "70"), big.NewInt(123456789))
	cond := pub.Conditions()[0]
	pred := ocbe.Predicate{Op: cond.Op, X0: idtoken.EncodeValue(params.Order(), cond.Value)}
	_, req, err := forged.Prepare(pred, pub.Ell())
	if err != nil {
		t.Fatal(err)
	}
	_, err = pub.Register(&RegistrationRequest{Token: tok, CondID: cond.ID(), OCBE: req})
	if !errors.Is(err, ErrCommitmentMismatch) {
		t.Fatalf("forged commitment not rejected: %v", err)
	}
	// The same forgery inside a batch fails that item.
	results, err := pub.RegisterBatch([]*RegistrationRequest{{Token: tok, CondID: cond.ID(), OCBE: req}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == "" || results[0].Envelope != nil {
		t.Errorf("forged commitment accepted in batch: %+v", results[0])
	}
	if pub.SubscriberCount() != 0 {
		t.Errorf("forged registration left a table row")
	}
}
