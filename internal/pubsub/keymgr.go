package pubsub

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/policy"
	"ppcd/internal/sym"
)

// keyManager is the publisher's key layer: it turns a registry snapshot into
// per-configuration headers and symmetric keys by driving the core rekey
// engine, in either the classic one-ACV-per-configuration mode or the
// grouped (§VIII-C) mode where each policy's rows are sharded and only
// dirty shards re-solve. All caching policy lives here — an ungrouped
// configuration's cache signature is the vector of its member policies'
// membership versions, a grouped one's is the vector of its shard content
// digests — so a configuration is re-solved exactly when a table mutation
// could have changed its subscriber set: the paper's "rekey only on
// membership change" semantics with zero redundant null-space solves
// (§VIII-A).
//
// The keymgr also applies §VIII-B configuration dominance: when a
// configuration's qualified rows all come from a subset of its policies and
// another configuration consists of exactly that subset, the dominating
// configuration's solve is reused instead of solving twice (the two
// configurations have identical authorized sets, so sharing the key is
// sound).
type keyManager struct {
	engine   *core.Engine
	minN     int
	domSkips atomic.Uint64
}

func newKeyManager(workers, minN int) *keyManager {
	return &keyManager{engine: core.NewEngine(workers), minN: minN}
}

// Stats are the publisher's rekey work counters: the engine's solve/cache
// counters plus the keymgr's dominance reuse count.
type Stats struct {
	core.EngineStats
	// DominanceSkips counts solves actually avoided by reusing a dominating
	// configuration's fresh build instead of solving twice (§VIII-B);
	// cache-hit publishes don't inflate it.
	DominanceSkips uint64
}

// stats exposes the engine's work counters plus dominance skips.
func (km *keyManager) stats() Stats {
	return Stats{EngineStats: km.engine.Stats(), DominanceSkips: km.domSkips.Load()}
}

// reset drops all cached builds (after a wholesale state import).
func (km *keyManager) reset() { km.engine.Reset() }

// configSig builds the membership signature of one configuration from the
// snapshot version vector.
func configSig(key policy.ConfigKey, vers map[string]uint64, rowCount, minN int) string {
	ids := key.IDs()
	parts := make([]string, 0, len(ids)+1)
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%s@%d", id, vers[id]))
	}
	parts = append(parts, fmt.Sprintf("rows=%d,minN=%d", rowCount, minN))
	return strings.Join(parts, "|")
}

// sortedConfigs returns the configuration keys in deterministic order.
func sortedConfigs(cfgs map[policy.ConfigKey][]string) []policy.ConfigKey {
	keys := make([]policy.ConfigKey, 0, len(cfgs))
	for k := range cfgs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// splitByDominance walks the configurations in deterministic order and
// partitions them by §VIII-B dominance: solo configurations build their own
// ACV, aliases reuse a dominating configuration's build, throwaway ones are
// inaccessible (empty configuration or no qualified rows). A configuration
// whose ID set equals its effective (non-empty-row) policy set dominates
// every other configuration sharing that effective set (its IDs are a
// subset of theirs, via policy.Dominates), and their subscriber row sets
// coincide because the extra policies contribute no rows — identical
// authorized sets, so one solve serves both.
func (km *keyManager) splitByDominance(cfgs map[policy.ConfigKey][]string, hasRows func(acpID string) bool) (solo, throwaway []policy.ConfigKey, aliases map[policy.ConfigKey]policy.ConfigKey) {
	type plan struct{ key, eff policy.ConfigKey }
	var plans []plan
	reps := make(map[policy.ConfigKey]policy.ConfigKey)
	for _, key := range sortedConfigs(cfgs) {
		var nonEmpty []string
		for _, acpID := range key.IDs() {
			if hasRows(acpID) {
				nonEmpty = append(nonEmpty, acpID)
			}
		}
		if key == policy.EmptyConfig || len(nonEmpty) == 0 {
			throwaway = append(throwaway, key)
			continue
		}
		p := plan{key: key, eff: policy.ConfigOf(nonEmpty...)}
		if p.key == p.eff {
			reps[p.eff] = p.key
		}
		plans = append(plans, p)
	}
	aliases = make(map[policy.ConfigKey]policy.ConfigKey)
	for _, p := range plans {
		if rep, ok := reps[p.eff]; ok && rep != p.key && policy.Dominates(rep, p.key) {
			aliases[p.key] = rep
			continue
		}
		solo = append(solo, p.key)
	}
	return solo, throwaway, aliases
}

// noteDominanceSkip counts one solve actually avoided by §VIII-B reuse: an
// alias only skips work when its representative was freshly rebuilt this
// publish (a cache-hit representative would have cost nothing either way,
// and counting those would make the metric scale with steady-state rounds).
func (km *keyManager) noteDominanceSkip(key, rep policy.ConfigKey, rebuilt bool) {
	if key != rep && rebuilt {
		km.domSkips.Add(1)
	}
}

// throwawayInfo encrypts an inaccessible configuration (empty configuration
// or no qualified rows) under a fresh key nobody can derive (paper
// Example 4, Pc6).
func throwawayInfo(key policy.ConfigKey, keys map[policy.ConfigKey][sym.KeySize]byte) (ConfigInfo, error) {
	k, err := ff64.RandNonZero()
	if err != nil {
		return ConfigInfo{}, err
	}
	keys[key] = core.ExpandKey(k)
	return ConfigInfo{Key: key}, nil
}

// assemble folds the throwaway configurations plus the built solo/alias
// configurations into the final ordered ConfigInfo list and key map. info
// maps one built configuration (solo's own build, or the alias's
// representative build) to its ConfigInfo.
func assemble(cfgs map[policy.ConfigKey][]string, throwaway []policy.ConfigKey, solo []policy.ConfigKey, aliases map[policy.ConfigKey]policy.ConfigKey, info func(key, rep policy.ConfigKey) (ConfigInfo, ff64.Elem)) ([]ConfigInfo, map[policy.ConfigKey][sym.KeySize]byte, error) {
	keys := make(map[policy.ConfigKey][sym.KeySize]byte, len(cfgs))
	infos := make([]ConfigInfo, 0, len(cfgs))
	for _, key := range throwaway {
		ti, err := throwawayInfo(key, keys)
		if err != nil {
			return nil, nil, err
		}
		infos = append(infos, ti)
	}
	add := func(key, rep policy.ConfigKey) {
		ci, k := info(key, rep)
		keys[key] = core.ExpandKey(k)
		infos = append(infos, ci)
	}
	for _, key := range solo {
		add(key, key)
	}
	for key, rep := range aliases {
		add(key, rep)
	}
	// Restore the deterministic configuration order (throwaway and
	// dominated configs were appended out of order).
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	return infos, keys, nil
}

// configKeys produces the ordered ConfigInfo list and the symmetric key per
// configuration for one publish, given an ungrouped registry snapshot.
func (km *keyManager) configKeys(cfgs map[policy.ConfigKey][]string, rowsByACP map[string][][]core.CSS, vers map[string]uint64) ([]ConfigInfo, map[policy.ConfigKey][sym.KeySize]byte, error) {
	solo, throwaway, aliases := km.splitByDominance(cfgs, func(acpID string) bool { return len(rowsByACP[acpID]) > 0 })

	specs := make([]core.ConfigSpec, 0, len(solo))
	for _, key := range solo {
		rowCount := 0
		var groups []core.RowGroup
		for _, acpID := range key.IDs() {
			rows := rowsByACP[acpID]
			rowCount += len(rows)
			if len(rows) > 0 {
				groups = append(groups, core.RowGroup{ID: acpID, Rows: rows})
			}
		}
		specs = append(specs, core.ConfigSpec{
			ID:     string(key),
			Sig:    configSig(key, vers, rowCount, km.minN),
			Groups: groups,
			MinN:   km.minN,
		})
	}
	built := make(map[string]core.ConfigKeys)
	if len(specs) > 0 {
		var err error
		if built, err = km.engine.RekeyAll(specs); err != nil {
			return nil, nil, fmt.Errorf("pubsub: building ACVs: %w", err)
		}
	}
	return assemble(cfgs, throwaway, solo, aliases, func(key, rep policy.ConfigKey) (ConfigInfo, ff64.Elem) {
		ck := built[string(rep)]
		km.noteDominanceSkip(key, rep, ck.Rebuilt)
		return ConfigInfo{Key: key, Header: ck.Hdr}, ck.Key
	})
}

// configKeysGrouped is the grouped counterpart of configKeys: each
// configuration's shards are the sticky per-policy groups from the registry,
// identified across configurations and sessions by "policy/group" so shared
// shards solve once and clean shards never re-solve.
func (km *keyManager) configKeysGrouped(cfgs map[policy.ConfigKey][]string, shardsByACP map[string][]shardRows) ([]ConfigInfo, map[policy.ConfigKey][sym.KeySize]byte, error) {
	solo, throwaway, aliases := km.splitByDominance(cfgs, func(acpID string) bool { return len(shardsByACP[acpID]) > 0 })

	specs := make([]core.GroupedConfigSpec, 0, len(solo))
	for _, key := range solo {
		var shards []core.ShardSpec
		for _, acpID := range key.IDs() {
			for _, sh := range shardsByACP[acpID] {
				shards = append(shards, core.ShardSpec{
					ID:   acpID + "/" + strconv.Itoa(sh.GID),
					Sig:  sh.Sig,
					Rows: sh.Rows,
				})
			}
		}
		specs = append(specs, core.GroupedConfigSpec{ID: string(key), Shards: shards})
	}
	built := make(map[string]core.GroupedConfigKeys)
	if len(specs) > 0 {
		var err error
		if built, err = km.engine.RekeyAllGrouped(specs); err != nil {
			return nil, nil, fmt.Errorf("pubsub: building grouped ACVs: %w", err)
		}
	}
	return assemble(cfgs, throwaway, solo, aliases, func(key, rep policy.ConfigKey) (ConfigInfo, ff64.Elem) {
		ck := built[string(rep)]
		km.noteDominanceSkip(key, rep, ck.Rebuilt)
		return ConfigInfo{Key: key, Grouped: ck.Hdr}, ck.Key
	})
}
