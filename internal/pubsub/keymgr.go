package pubsub

import (
	"fmt"
	"sort"
	"strings"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/policy"
	"ppcd/internal/sym"
)

// keyManager is the publisher's key layer: it turns a registry snapshot into
// per-configuration headers and symmetric keys by driving the core rekey
// engine. All caching policy lives here — a configuration's cache signature
// is the vector of its member policies' membership versions (plus the row
// count and capacity floor), so a configuration is re-solved exactly when a
// table mutation could have changed its subscriber set, and reuses its
// cached header otherwise: the paper's "rekey only on membership change"
// semantics with zero redundant null-space solves (§VIII-A).
type keyManager struct {
	engine *core.Engine
	minN   int
}

func newKeyManager(workers, minN int) *keyManager {
	return &keyManager{engine: core.NewEngine(workers), minN: minN}
}

// stats exposes the engine's work counters.
func (km *keyManager) stats() core.EngineStats { return km.engine.Stats() }

// reset drops all cached builds (after a wholesale state import).
func (km *keyManager) reset() { km.engine.Reset() }

// configSig builds the membership signature of one configuration from the
// snapshot version vector.
func configSig(key policy.ConfigKey, vers map[string]uint64, rowCount, minN int) string {
	ids := key.IDs()
	parts := make([]string, 0, len(ids)+1)
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%s@%d", id, vers[id]))
	}
	parts = append(parts, fmt.Sprintf("rows=%d,minN=%d", rowCount, minN))
	return strings.Join(parts, "|")
}

// configKeys produces the ordered ConfigInfo list and the symmetric key per
// configuration for one publish, given a registry snapshot. Configurations
// nobody can access get a fresh throwaway key and no header (paper
// Example 4, Pc6); the rest go through the incremental engine.
func (km *keyManager) configKeys(cfgs map[policy.ConfigKey][]string, rowsByACP map[string][][]core.CSS, vers map[string]uint64) ([]ConfigInfo, map[policy.ConfigKey][sym.KeySize]byte, error) {
	cfgKeys := make([]policy.ConfigKey, 0, len(cfgs))
	for k := range cfgs {
		cfgKeys = append(cfgKeys, k)
	}
	sort.Slice(cfgKeys, func(i, j int) bool { return cfgKeys[i] < cfgKeys[j] })

	keys := make(map[policy.ConfigKey][sym.KeySize]byte, len(cfgs))
	infos := make([]ConfigInfo, 0, len(cfgs))
	var specs []core.ConfigSpec

	for _, key := range cfgKeys {
		rowCount := 0
		var groups []core.RowGroup
		for _, acpID := range key.IDs() {
			rows := rowsByACP[acpID]
			rowCount += len(rows)
			if len(rows) > 0 {
				groups = append(groups, core.RowGroup{ID: acpID, Rows: rows})
			}
		}
		if key == policy.EmptyConfig || rowCount == 0 {
			k, err := ff64.RandNonZero()
			if err != nil {
				return nil, nil, err
			}
			keys[key] = core.ExpandKey(k)
			infos = append(infos, ConfigInfo{Key: key, Header: nil})
			continue
		}
		specs = append(specs, core.ConfigSpec{
			ID:     string(key),
			Sig:    configSig(key, vers, rowCount, km.minN),
			Groups: groups,
			MinN:   km.minN,
		})
	}

	if len(specs) > 0 {
		built, err := km.engine.RekeyAll(specs)
		if err != nil {
			return nil, nil, fmt.Errorf("pubsub: building ACVs: %w", err)
		}
		for _, s := range specs {
			ck := built[s.ID]
			key := policy.ConfigKey(s.ID)
			keys[key] = core.ExpandKey(ck.Key)
			infos = append(infos, ConfigInfo{Key: key, Header: ck.Hdr})
		}
		// Restore the deterministic configuration order (throwaway configs
		// were appended first).
		sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	}
	return infos, keys, nil
}
