package pubsub

import (
	"bytes"
	"sync"
	"testing"

	"ppcd/internal/document"
	"ppcd/internal/idtoken"
	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/schnorr"
)

var (
	envOnce sync.Once
	tParams *pedersen.Params
	tMgr    *idtoken.Manager
)

func testEnv(t *testing.T) (*pedersen.Params, *idtoken.Manager) {
	t.Helper()
	envOnce.Do(func() {
		p, err := pedersen.Setup(schnorr.Must2048(), []byte("pubsub-test"))
		if err != nil {
			panic(err)
		}
		m, err := idtoken.NewManager(p)
		if err != nil {
			panic(err)
		}
		tParams, tMgr = p, m
	})
	return tParams, tMgr
}

// ehrACPs are the six access control policies of the paper's Example 4.
func ehrACPs(t *testing.T) []*policy.ACP {
	t.Helper()
	specs := []struct {
		id, cond string
		objs     []string
	}{
		{"acp1", "role = rec", []string{"ContactInfo"}},
		{"acp2", "role = cas", []string{"BillingInfo"}},
		{"acp3", "role = doc", []string{"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"}},
		{"acp4", "role = nur && level >= 59", []string{"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"}},
		{"acp5", "role = dat", []string{"ContactInfo", "LabRecords"}},
		{"acp6", "role = pha", []string{"BillingInfo", "Medication"}},
	}
	var acps []*policy.ACP
	for _, s := range specs {
		a, err := policy.New(s.id, s.cond, "EHR.xml", s.objs...)
		if err != nil {
			t.Fatal(err)
		}
		acps = append(acps, a)
	}
	return acps
}

func ehrDoc(t *testing.T) *document.Document {
	t.Helper()
	doc, err := document.New("EHR.xml",
		document.Subdocument{Name: "ContactInfo", Content: []byte("<ContactInfo>John Doe</ContactInfo>")},
		document.Subdocument{Name: "BillingInfo", Content: []byte("<BillingInfo>Acme Health</BillingInfo>")},
		document.Subdocument{Name: "Medication", Content: []byte("<Medication>aspirin</Medication>")},
		document.Subdocument{Name: "PhysicalExams", Content: []byte("<PhysicalExams>BP 120/80</PhysicalExams>")},
		document.Subdocument{Name: "LabRecords", Content: []byte("<LabRecords>X-ray neg</LabRecords>")},
		document.Subdocument{Name: "Plan", Content: []byte("<Plan>follow-up</Plan>")},
		document.Subdocument{Name: "Other", Content: []byte("<Other>internal</Other>")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// newSub creates a subscriber, issues the given attribute tokens and runs
// registration against pub.
func newSub(t *testing.T, pub *Publisher, nym string, attrs map[string]string) *Subscriber {
	t.Helper()
	_, mgr := testEnv(t)
	sub, err := NewSubscriber(nym)
	if err != nil {
		t.Fatal(err)
	}
	for tag, val := range attrs {
		tok, sec, err := mgr.IssueString(nym, tag, val)
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.AddToken(tok, sec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sub.RegisterAll(pub); err != nil {
		t.Fatal(err)
	}
	return sub
}

func newEHRPublisher(t *testing.T) *Publisher {
	t.Helper()
	params, mgr := testEnv(t)
	pub, err := NewPublisher(params, mgr.PublicKey(), ehrACPs(t), Options{Ell: 8})
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

func TestEndToEndEHRScenario(t *testing.T) {
	// Full reproduction of Example 4: a doctor, a qualified nurse, an
	// unqualified nurse (level 58) and a pharmacist receive exactly the
	// subdocuments their roles allow.
	pub := newEHRPublisher(t)
	doctor := newSub(t, pub, "pn-0012", map[string]string{"role": "doc"})
	nurseOK := newSub(t, pub, "pn-1492", map[string]string{"role": "nur", "level": "60"})
	nurseLow := newSub(t, pub, "pn-0829", map[string]string{"role": "nur", "level": "58"})
	pharm := newSub(t, pub, "pn-7777", map[string]string{"role": "pha"})

	b, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}

	expect := map[*Subscriber][]string{
		doctor:   {"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"},
		nurseOK:  {"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"},
		nurseLow: {},
		pharm:    {"BillingInfo", "Medication"},
	}
	names := map[*Subscriber]string{doctor: "doctor", nurseOK: "nurseOK", nurseLow: "nurseLow", pharm: "pharm"}
	for sub, want := range expect {
		got, err := sub.Decrypt(b)
		if err != nil {
			t.Fatalf("%s: %v", names[sub], err)
		}
		if len(got) != len(want) {
			t.Errorf("%s: decrypted %d subdocs %v, want %v", names[sub], len(got), keysOf(got), want)
			continue
		}
		for _, w := range want {
			if _, ok := got[w]; !ok {
				t.Errorf("%s: missing %s", names[sub], w)
			}
		}
	}
	// Nobody can read "Other" (empty configuration).
	for sub := range expect {
		got, _ := sub.Decrypt(b)
		if _, ok := got["Other"]; ok {
			t.Errorf("%s decrypted the empty-config subdocument", names[sub])
		}
	}
}

func keysOf(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDecryptedContentMatches(t *testing.T) {
	pub := newEHRPublisher(t)
	doctor := newSub(t, pub, "pn-1", map[string]string{"role": "doc"})
	doc := ehrDoc(t)
	b, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := doctor.Decrypt(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := doc.Get("Medication")
	if !bytes.Equal(got["Medication"], want.Content) {
		t.Error("decrypted content differs from original")
	}
}

func TestPrivacyRegistrationIsUniform(t *testing.T) {
	// A subscriber registers for every condition matching its token tags —
	// even mutually exclusive ones — so the publisher's table alone cannot
	// reveal which condition is satisfied (Example 3).
	pub := newEHRPublisher(t)
	newSub(t, pub, "pn-x", map[string]string{"role": "doc"})
	row := pub.reg.rowCopy("pn-x")
	// Six role conditions exist; the row must contain a CSS for all six.
	roleConds := 0
	for _, c := range pub.Conditions() {
		if c.Attr == "role" {
			roleConds++
		}
	}
	if roleConds != 6 {
		t.Fatalf("expected 6 role conditions, got %d", roleConds)
	}
	if len(row) != roleConds {
		t.Errorf("publisher row has %d CSSs, want %d (uniform registration)", len(row), roleConds)
	}
}

func TestRekeyOnRevocation(t *testing.T) {
	// Forward secrecy through the full stack: after revocation and a fresh
	// Publish, the revoked doctor can no longer decrypt, while others still
	// can — and no subscriber state changed.
	pub := newEHRPublisher(t)
	doc1 := newSub(t, pub, "pn-a", map[string]string{"role": "doc"})
	doc2 := newSub(t, pub, "pn-b", map[string]string{"role": "doc"})

	b1, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := doc1.Decrypt(b1); len(got) == 0 {
		t.Fatal("doc1 cannot decrypt before revocation")
	}

	if err := pub.RevokeSubscription("pn-a"); err != nil {
		t.Fatal(err)
	}
	b2, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := doc1.Decrypt(b2); len(got) != 0 {
		t.Errorf("revoked subscriber still decrypts %v", keysOf(got))
	}
	if got, _ := doc2.Decrypt(b2); len(got) != 5 {
		t.Errorf("remaining doctor lost access: %v", keysOf(got))
	}
	// Old broadcast still opens for the revoked doctor (revocation is not
	// retroactive) — and the new subscriber state was never touched.
	if got, _ := doc1.Decrypt(b1); len(got) != 5 {
		t.Error("old broadcast became unreadable")
	}
}

func TestCredentialRevocation(t *testing.T) {
	pub := newEHRPublisher(t)
	nurse := newSub(t, pub, "pn-n", map[string]string{"role": "nur", "level": "60"})
	b1, _ := pub.Publish(ehrDoc(t))
	if got, _ := nurse.Decrypt(b1); len(got) != 5 {
		t.Fatalf("nurse baseline wrong: %v", keysOf(got))
	}
	// Revoke only the level credential: acp4 requires both, so access drops.
	if err := pub.RevokeCredential("pn-n", "level >= 59"); err != nil {
		t.Fatal(err)
	}
	b2, _ := pub.Publish(ehrDoc(t))
	if got, _ := nurse.Decrypt(b2); len(got) != 0 {
		t.Errorf("nurse still decrypts after credential revocation: %v", keysOf(got))
	}
}

func TestBackwardSecrecyOnJoin(t *testing.T) {
	pub := newEHRPublisher(t)
	b0, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	late := newSub(t, pub, "pn-late", map[string]string{"role": "doc"})
	// The late joiner cannot decrypt the earlier broadcast...
	if got, _ := late.Decrypt(b0); len(got) != 0 {
		t.Errorf("late joiner decrypted old broadcast: %v", keysOf(got))
	}
	// ...but decrypts the next one.
	b1, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := late.Decrypt(b1); len(got) != 5 {
		t.Errorf("late joiner cannot decrypt new broadcast: %v", keysOf(got))
	}
}

func TestCredentialUpdateByReregistration(t *testing.T) {
	// A nurse promoted from level 58 to 60 re-registers with a new token;
	// the publisher overwrites the CSS cells and access appears.
	params, mgr := testEnv(t)
	_ = params
	pub := newEHRPublisher(t)
	nurse := newSub(t, pub, "pn-up", map[string]string{"role": "nur", "level": "58"})
	b1, _ := pub.Publish(ehrDoc(t))
	if got, _ := nurse.Decrypt(b1); len(got) != 0 {
		t.Fatal("level-58 nurse should see nothing")
	}
	tok, sec, err := mgr.IssueString("pn-up", "level", "60")
	if err != nil {
		t.Fatal(err)
	}
	if err := nurse.AddToken(tok, sec); err != nil {
		t.Fatal(err)
	}
	if _, err := nurse.RegisterAll(pub); err != nil {
		t.Fatal(err)
	}
	b2, _ := pub.Publish(ehrDoc(t))
	if got, _ := nurse.Decrypt(b2); len(got) != 5 {
		t.Errorf("promoted nurse cannot decrypt: %v", keysOf(got))
	}
}

func TestPublisherValidation(t *testing.T) {
	params, mgr := testEnv(t)
	if _, err := NewPublisher(nil, mgr.PublicKey(), ehrACPs(t), Options{}); err == nil {
		t.Error("nil params accepted")
	}
	if _, err := NewPublisher(params, mgr.PublicKey(), nil, Options{}); err == nil {
		t.Error("no policies accepted")
	}
	if _, err := NewPublisher(params, mgr.PublicKey(), ehrACPs(t), Options{Ell: -1}); err == nil {
		t.Error("negative ell accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	pub := newEHRPublisher(t)
	_, mgr := testEnv(t)
	if _, err := pub.Register(nil); err == nil {
		t.Error("nil request accepted")
	}
	tok, _, err := mgr.IssueString("pn-v", "role", "doc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Register(&RegistrationRequest{Token: tok, CondID: "nonexistent = 1", OCBE: nil}); err == nil {
		t.Error("incomplete request accepted")
	}
	// Tag mismatch: role token against level condition.
	if _, err := pub.Register(&RegistrationRequest{Token: tok, CondID: "level >= 59", OCBE: &ocbe.Request{}}); err != ErrTagMismatch {
		t.Errorf("expected ErrTagMismatch, got %v", err)
	}
	if _, err := pub.Register(&RegistrationRequest{Token: tok, CondID: "ghost = 1", OCBE: &ocbe.Request{}}); err != ErrUnknownCondition {
		t.Errorf("expected ErrUnknownCondition, got %v", err)
	}
}

func TestRevocationValidation(t *testing.T) {
	pub := newEHRPublisher(t)
	if err := pub.RevokeSubscription("ghost"); err == nil {
		t.Error("revoking unknown nym accepted")
	}
	if err := pub.RevokeCredential("ghost", "role = doc"); err == nil {
		t.Error("revoking unknown credential accepted")
	}
	newSub(t, pub, "pn-r", map[string]string{"role": "doc"})
	if err := pub.RevokeCredential("pn-r", "level >= 59"); err == nil {
		t.Error("revoking absent CSS accepted")
	}
	if pub.SubscriberCount() != 1 {
		t.Error("SubscriberCount wrong")
	}
}

func TestSubscriberValidation(t *testing.T) {
	if _, err := NewSubscriber(""); err == nil {
		t.Error("empty nym accepted")
	}
	sub, _ := NewSubscriber("pn-1")
	if err := sub.AddToken(nil, nil); err == nil {
		t.Error("nil token accepted")
	}
	_, mgr := testEnv(t)
	tok, sec, _ := mgr.IssueString("pn-other", "role", "doc")
	if err := sub.AddToken(tok, sec); err == nil {
		t.Error("mismatched nym accepted")
	}
	if _, err := sub.Decrypt(nil); err == nil {
		t.Error("nil broadcast accepted")
	}
}

func TestPublishValidation(t *testing.T) {
	pub := newEHRPublisher(t)
	if _, err := pub.Publish(nil); err == nil {
		t.Error("nil document accepted")
	}
}

func TestMinNHeadroom(t *testing.T) {
	// With MinN set, headers are padded to the requested capacity.
	params, mgr := testEnv(t)
	pub, err := NewPublisher(params, mgr.PublicKey(), ehrACPs(t), Options{Ell: 8, MinN: 10})
	if err != nil {
		t.Fatal(err)
	}
	doctor, err := NewSubscriber("pn-d")
	if err != nil {
		t.Fatal(err)
	}
	tok, sec, _ := mgr.IssueString("pn-d", "role", "doc")
	doctor.AddToken(tok, sec)
	if _, err := doctor.RegisterAll(pub); err != nil {
		t.Fatal(err)
	}
	b, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range b.Configs {
		if ci.Header != nil && ci.Header.N() != 10 {
			t.Errorf("config %q: N = %d, want 10", ci.Key, ci.Header.N())
		}
	}
	if got, _ := doctor.Decrypt(b); len(got) != 5 {
		t.Errorf("doctor cannot decrypt with padded N: %v", keysOf(got))
	}
}

func TestHasCSSAndCounts(t *testing.T) {
	pub := newEHRPublisher(t)
	doctor := newSub(t, pub, "pn-c", map[string]string{"role": "doc"})
	if !doctor.HasCSS("role = doc") {
		t.Error("doctor missing satisfied CSS")
	}
	if doctor.HasCSS("role = nur") {
		t.Error("doctor extracted CSS for unsatisfied condition")
	}
	if doctor.CSSCount() != 1 {
		t.Errorf("CSSCount = %d, want 1", doctor.CSSCount())
	}
	if doctor.Nym() != "pn-c" {
		t.Error("Nym wrong")
	}
}
