package pubsub

import (
	"fmt"
	"sync"

	"ppcd/internal/core"
	"ppcd/internal/policy"
)

// registry is the publisher's table-T layer: it owns the (nym, condition) →
// CSS table together with per-policy membership versions, behind a read-write
// lock. Mutations (Register, Revoke*) take the write lock only for the table
// update itself — never across crypto — and Publish reads a consistent
// snapshot under the read lock, so registration traffic and broadcast
// encryption proceed concurrently.
//
// The table itself is columnar (columnar.go): the condition universe is fixed
// at construction, each pseudonym owns one dense row of CSS cells, and scans
// walk contiguous arrays instead of nested maps. The map-of-maps shape
// survives only at the serialization boundary (export/exportFull/restore).
//
// A policy's membership version increments whenever a table mutation could
// have changed that policy's qualified row set: a CSS write or delete for a
// condition of the policy, or the disappearance of a whole row. The keymgr
// layer compares version vectors to decide which configurations actually
// need a fresh ACV solve (incremental rekeying). In grouped mode the same
// mutations additionally record WHICH pseudonym was touched (pend), so the
// grouped snapshot can re-qualify just the churned rows instead of rescanning
// the table.
type registry struct {
	mu  sync.RWMutex
	tab *cssTable
	// tabGen counts wholesale table replacements (restore). A segmented
	// export base (statev2_segments.go) captured against an older tabGen is
	// invalid: slot assignment is nondeterministic across a restore, so
	// carrying "clean" slot-range segments forward would resurrect rows at
	// their pre-restore slots.
	tabGen uint64
	// memVer is the membership version per policy ID.
	memVer map[string]uint64
	// byCond maps a condition ID to the IDs of policies containing it.
	byCond map[string][]string
	// polConds maps a policy ID to its conditions' interned column indices,
	// in policy-condition order (the row-assembly order of matrix A).
	polConds map[string][]int
	// rowsCache holds the assembled qualified rows per policy, tagged with
	// the membership version they were built at; a steady-state snapshot is
	// then O(policies) instead of a full table scan.
	rowsCache map[string]policyRows
	// pend accumulates, per policy, the pseudonyms whose cells for that
	// policy changed since the last grouped snapshot consumed them. Only
	// maintained in grouped mode (groupSize > 0); guarded by mu.
	pend map[string]map[string]struct{}

	// Grouped mode (§VIII-C, grouping.go): groupSize > 0 partitions each
	// policy's rows into sticky groups of at most groupSize members. grpMu
	// guards the per-policy group state; it is independent of mu so
	// mutations never wait on a grouped assembly. Lock order: grpMu → mu
	// (never the reverse while holding mu).
	groupSize int
	grpMu     sync.Mutex
	grp       map[string]*groupState
}

// policyRows is one cached row assembly. The rows slice is immutable once
// cached (rebuilds replace the whole entry), so snapshots may share it
// lock-free.
type policyRows struct {
	ver  uint64
	rows [][]core.CSS
}

func newRegistry(acps []*policy.ACP, groupSize int) *registry {
	r := &registry{
		memVer:    make(map[string]uint64, len(acps)),
		byCond:    make(map[string][]string),
		polConds:  make(map[string][]int, len(acps)),
		rowsCache: make(map[string]policyRows, len(acps)),
		pend:      make(map[string]map[string]struct{}),
		groupSize: groupSize,
		grp:       make(map[string]*groupState),
	}
	// The condition universe is the union of the policies' conditions, in
	// first-seen order (deterministic given the policy list).
	var conds []string
	seen := make(map[string]int)
	for _, a := range acps {
		r.memVer[a.ID] = 0
		for _, c := range a.Conds {
			id := c.ID()
			if _, ok := seen[id]; !ok {
				seen[id] = len(conds)
				conds = append(conds, id)
			}
			r.byCond[id] = append(r.byCond[id], a.ID)
			r.polConds[a.ID] = append(r.polConds[a.ID], seen[id])
		}
	}
	r.tab = newCSSTable(conds)
	return r
}

// bump marks every policy containing condID as membership-dirty. Callers
// hold the write lock.
func (r *registry) bump(condID string) {
	for _, acpID := range r.byCond[condID] {
		r.memVer[acpID]++
	}
}

// hint records that nym's cells for condID's policies changed, feeding the
// grouped snapshot's incremental churn path. Callers hold the write lock.
func (r *registry) hint(nym, condID string) {
	if r.groupSize <= 0 {
		return
	}
	for _, acpID := range r.byCond[condID] {
		m := r.pend[acpID]
		if m == nil {
			m = make(map[string]struct{})
			r.pend[acpID] = m
		}
		m[nym] = struct{}{}
	}
}

// bumpAll marks every policy membership-dirty (used when a state import had
// to drop stale columns: restored caches may cover memberships that no
// longer hold). Grouped state is invalidated wholesale — the churn hints
// cannot describe "everything may have changed".
func (r *registry) bumpAll() {
	r.grpMu.Lock()
	defer r.grpMu.Unlock()
	r.mu.Lock()
	for id := range r.memVer {
		r.memVer[id]++
	}
	clear(r.pend)
	r.mu.Unlock()
	for _, gs := range r.grp {
		gs.valid = false
	}
}

// maybeCompact folds the columnar table's pending bookkeeping when it has
// outgrown its threshold. Callers hold the write lock.
func (r *registry) maybeCompact() {
	if r.tab.needsCompact() {
		r.tab.compact()
	}
}

// setCells records a batch of freshly drawn CSSs for one pseudonym under a
// single lock acquisition (overwrite = credential update, §V-C).
func (r *registry) setCells(nym string, cells map[string]core.CSS) {
	if len(cells) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.tab.ensureRow(nym)
	row := r.tab.row(s)
	for condID, css := range cells {
		ci, ok := r.tab.condIdx[condID]
		if !ok {
			continue // unknown condition: no policy can see it
		}
		row[ci] = css
		r.bump(condID)
		r.hint(nym, condID)
	}
	r.tab.markDirty(s)
	r.maybeCompact()
}

// revokeSubscription removes a pseudonym's whole row (paper "Subscription
// Revocation").
func (r *registry) revokeSubscription(nym string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.tab.slotOf[nym]
	if !ok {
		return fmt.Errorf("pubsub: unknown subscriber %q", nym)
	}
	for ci, v := range r.tab.row(s) {
		if v != 0 {
			r.bump(r.tab.conds[ci])
			r.hint(nym, r.tab.conds[ci])
		}
	}
	r.tab.deleteRow(nym)
	r.maybeCompact()
	return nil
}

// revokeCredential removes a single CSS cell (paper "Credential
// Revocation"). When the last cell of a row goes, the row goes with it —
// a ghost subscriber with zero credentials can never qualify for any policy
// and would only inflate SubscriberCount.
func (r *registry) revokeCredential(nym, condID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.tab.slotOf[nym]
	if !ok {
		return fmt.Errorf("pubsub: unknown subscriber %q", nym)
	}
	row := r.tab.row(s)
	ci, known := r.tab.condIdx[condID]
	if !known || row[ci] == 0 {
		return fmt.Errorf("pubsub: subscriber %q has no CSS for %q", nym, condID)
	}
	row[ci] = 0
	r.bump(condID)
	r.hint(nym, condID)
	r.tab.markDirty(s)
	empty := true
	for _, v := range row {
		if v != 0 {
			empty = false
			break
		}
	}
	if empty {
		r.tab.deleteRow(nym)
	}
	r.maybeCompact()
	return nil
}

// count returns the number of registered pseudonyms.
func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tab.live
}

// tableMemory returns the number of registered pseudonyms and the estimated
// resident bytes of table T's columnar backing (the bytes/subscriber metric
// of the scale benchmark).
func (r *registry) tableMemory() (int, int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tab.live, r.tab.memBytes()
}

// rowCopy returns a copy of one pseudonym's row (nil if absent).
func (r *registry) rowCopy(nym string) map[string]core.CSS {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.tab.slotOf[nym]
	if !ok {
		return nil
	}
	out := make(map[string]core.CSS)
	for ci, v := range r.tab.row(s) {
		if v != 0 {
			out[r.tab.conds[ci]] = v
		}
	}
	return out
}

// qualifiesRow reports whether a columnar row holds a CSS for every listed
// condition column.
func qualifiesRow(row []core.CSS, cis []int) bool {
	for _, ci := range cis {
		if row[ci] == 0 {
			return false
		}
	}
	return true
}

// collectQualified assembles, in sorted-pseudonym order, the qualified
// member nyms and CSS rows of one policy. Callers hold at least the read
// lock.
func (r *registry) collectQualified(a *policy.ACP) ([]string, [][]core.CSS) {
	cis := r.polConds[a.ID]
	var nyms []string
	var rows [][]core.CSS
	for _, s := range r.tab.sortedLive() {
		nym := r.tab.nyms[s]
		if nym == "" {
			continue
		}
		row := r.tab.row(s)
		css := make([]core.CSS, len(cis))
		ok := true
		for k, ci := range cis {
			v := row[ci]
			if v == 0 {
				ok = false
				break
			}
			css[k] = v
		}
		if ok {
			nyms = append(nyms, nym)
			rows = append(rows, css)
		}
	}
	return nyms, rows
}

// snapshot assembles, for every given policy, the subscriber CSS rows of
// matrix A (paper §V-C1) — one ordered CSS list per pseudonym whose row
// contains a CSS for each of the policy's conditions — plus the membership
// version of each policy at snapshot time. The returned structures are
// private to the caller (cached row slices are immutable), so Publish works
// on them lock-free while registrations continue. Policies whose membership
// version is unchanged reuse their cached row assembly: a steady-state
// snapshot costs O(policies), not a table scan.
func (r *registry) snapshot(acps []*policy.ACP) (map[string][][]core.CSS, map[string]uint64) {
	rows := make(map[string][][]core.CSS, len(acps))
	vers := make(map[string]uint64, len(acps))

	r.mu.RLock()
	var stale []*policy.ACP
	for _, a := range acps {
		if e, ok := r.rowsCache[a.ID]; ok && e.ver == r.memVer[a.ID] {
			rows[a.ID] = e.rows
			vers[a.ID] = e.ver
			continue
		}
		stale = append(stale, a)
	}
	r.mu.RUnlock()
	if len(stale) == 0 {
		return rows, vers
	}

	// Rebuild the stale assemblies under the shared lock — the table scan
	// must not hold the exclusive lock, or a big rebuild would serialize
	// every Register/Revoke behind it. Mutations take the write lock, so
	// the versions read here are consistent with the scanned rows.
	rebuilt := make(map[string]policyRows, len(stale))
	r.mu.RLock()
	for _, a := range stale {
		if e, ok := r.rowsCache[a.ID]; ok && e.ver == r.memVer[a.ID] {
			// A concurrent snapshot rebuilt it while we were unlocked.
			rows[a.ID] = e.rows
			vers[a.ID] = e.ver
			continue
		}
		_, acpRows := r.collectQualified(a)
		e := policyRows{ver: r.memVer[a.ID], rows: acpRows}
		rebuilt[a.ID] = e
		rows[a.ID] = e.rows
		vers[a.ID] = e.ver
	}
	r.mu.RUnlock()
	if len(rebuilt) == 0 {
		return rows, vers
	}

	// Install the rebuilt entries under a brief exclusive lock; skip any
	// whose membership advanced since the scan (the rows returned above are
	// still a valid snapshot of the version they were scanned at).
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, e := range rebuilt {
		if r.memVer[id] == e.ver {
			r.rowsCache[id] = e
		}
	}
	r.maybeCompact()
	return rows, vers
}

// export copies the table for state serialization.
func (r *registry) export() map[string]map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]map[string]uint64, r.tab.live)
	for nym, s := range r.tab.slotOf {
		row := r.tab.row(s)
		cells := make(map[string]uint64)
		for ci, v := range row {
			if v != 0 {
				cells[r.tab.conds[ci]] = uint64(v)
			}
		}
		out[nym] = cells
	}
	return out
}

// registryState is a full snapshot of the registry's durable state: table T,
// the per-policy membership versions, and the sticky group assignment (§VIII-C)
// with its per-group occupancy counts. It keeps the serialization-friendly
// map-of-maps shape; the live registry converts to and from the columnar
// layout at this boundary.
type registryState struct {
	table     map[string]map[string]core.CSS
	memVer    map[string]uint64
	grpAssign map[string]map[string]int
	grpCounts map[string][]int
}

// exportFull deep-copies the durable registry state (state v2 export).
func (r *registry) exportFull() registryState {
	st := registryState{
		memVer:    make(map[string]uint64),
		grpAssign: make(map[string]map[string]int),
		grpCounts: make(map[string][]int),
	}
	r.mu.RLock()
	st.table = make(map[string]map[string]core.CSS, r.tab.live)
	for nym, s := range r.tab.slotOf {
		row := r.tab.row(s)
		cells := make(map[string]core.CSS)
		for ci, v := range row {
			if v != 0 {
				cells[r.tab.conds[ci]] = v
			}
		}
		st.table[nym] = cells
	}
	for id, v := range r.memVer {
		st.memVer[id] = v
	}
	r.mu.RUnlock()
	r.grpMu.Lock()
	for id, gs := range r.grp {
		cp := make(map[string]int, len(gs.assign))
		for nym, gid := range gs.assign {
			cp[nym] = gid
		}
		st.grpAssign[id] = cp
		st.grpCounts[id] = append([]int(nil), gs.counts...)
	}
	r.grpMu.Unlock()
	return st
}

// restore replaces the registry's durable state wholesale (state v2 import).
// Membership versions are restored exactly as exported so that engine cache
// signatures computed against them keep matching; assignments for policies
// the publisher no longer has are dropped. Caches are cleared — the next
// snapshot reassembles rows (a table scan, no solves), and the next grouped
// snapshot regroups from the restored sticky assignment.
func (r *registry) restore(st registryState) {
	r.mu.Lock()
	tab := newCSSTable(r.tab.conds)
	for nym, row := range st.table {
		dst := tab.row(tab.ensureRow(nym))
		for cond, css := range row {
			if ci, ok := tab.condIdx[cond]; ok {
				dst[ci] = css
			}
		}
	}
	tab.compact()
	r.tab = tab
	r.tabGen++ // slot layout changed wholesale; segmented bases are void
	for id := range r.memVer {
		r.memVer[id] = st.memVer[id]
	}
	r.rowsCache = make(map[string]policyRows)
	clear(r.pend)
	known := make(map[string]bool, len(r.memVer))
	for id := range r.memVer {
		known[id] = true
	}
	r.mu.Unlock()

	r.grpMu.Lock()
	r.grp = make(map[string]*groupState)
	for id, assign := range st.grpAssign {
		if !known[id] {
			continue
		}
		// valid stays false: the next grouped snapshot rebuilds occupancy,
		// members and shards around the restored sticky assignment.
		r.grp[id] = &groupState{assign: assign, counts: st.grpCounts[id]}
	}
	r.grpMu.Unlock()
}

// replaceDiff swaps in a wholesale new table (state import), bumping only the
// policies whose condition membership actually changed: for every condition,
// the set of (nym, CSS) cells before and after is compared, and an unchanged
// condition dirties nothing. An import of a table identical to the current
// one is therefore a no-op for the rekey engine — no rebuild storm — while a
// partial difference re-solves exactly the affected configurations, the same
// granularity live mutations produce.
func (r *registry) replaceDiff(table map[string]map[string]core.CSS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := make(map[string]bool)
	touch := func(nym, cond string) {
		changed[cond] = true
		r.hint(nym, cond)
		if s, ok := r.tab.slotOf[nym]; ok {
			r.tab.markDirty(s) // brand-new rows are marked by ensureRow below
		}
	}
	// Diff existing rows (including removals) against the incoming table.
	for s, nym := range r.tab.nyms {
		if nym == "" {
			continue
		}
		newRow := table[nym]
		for ci, old := range r.tab.row(int32(s)) {
			if old != newRow[r.tab.conds[ci]] { // absent cells read as 0, never a valid CSS
				touch(nym, r.tab.conds[ci])
			}
		}
	}
	// Cells of brand-new rows.
	for nym, newRow := range table {
		if _, ok := r.tab.slotOf[nym]; ok {
			continue
		}
		for cond, v := range newRow {
			if v != 0 {
				if _, known := r.tab.condIdx[cond]; known {
					touch(nym, cond)
				}
			}
		}
	}
	// Apply: drop rows absent from the new table, then overwrite the rest.
	var drop []string
	for nym := range r.tab.slotOf {
		if _, ok := table[nym]; !ok {
			drop = append(drop, nym)
		}
	}
	for _, nym := range drop {
		r.tab.deleteRow(nym)
	}
	for nym, newRow := range table {
		dst := r.tab.row(r.tab.ensureRow(nym))
		clear(dst)
		for cond, v := range newRow {
			if ci, ok := r.tab.condIdx[cond]; ok {
				dst[ci] = v
			}
		}
	}
	for cond := range changed {
		r.bump(cond)
	}
	r.tab.compact()
}

// setCellsDiff is the WAL-replay variant of setCells: a cell overwrite with
// the identical CSS value bumps nothing, so replaying an event that is
// already reflected in the restored snapshot (the crash-between-snapshot-and-
// WAL-rotation window) stays idempotent for the rekey engine.
func (r *registry) setCellsDiff(nym string, cells map[string]core.CSS) {
	if len(cells) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.tab.ensureRow(nym)
	row := r.tab.row(s)
	for condID, css := range cells {
		ci, ok := r.tab.condIdx[condID]
		if !ok || row[ci] == css {
			continue
		}
		row[ci] = css
		r.bump(condID)
		r.hint(nym, condID)
		r.tab.markDirty(s)
	}
	r.maybeCompact()
}

// has reports whether a pseudonym has a row (and, with condID != "", a cell
// for that condition).
func (r *registry) has(nym, condID string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.tab.slotOf[nym]
	if !ok || condID == "" {
		return ok
	}
	ci, known := r.tab.condIdx[condID]
	return known && r.tab.row(s)[ci] != 0
}
