package pubsub

import (
	"fmt"
	"sort"
	"sync"

	"ppcd/internal/core"
	"ppcd/internal/policy"
)

// registry is the publisher's table-T layer: it owns the nym → condition →
// CSS map together with per-policy membership versions, behind a read-write
// lock. Mutations (Register, Revoke*) take the write lock only for the map
// update itself — never across crypto — and Publish reads a consistent
// snapshot under the read lock, so registration traffic and broadcast
// encryption proceed concurrently.
//
// A policy's membership version increments whenever a table mutation could
// have changed that policy's qualified row set: a CSS write or delete for a
// condition of the policy, or the disappearance of a whole row. The keymgr
// layer compares version vectors to decide which configurations actually
// need a fresh ACV solve (incremental rekeying).
type registry struct {
	mu    sync.RWMutex
	table map[string]map[string]core.CSS
	// memVer is the membership version per policy ID.
	memVer map[string]uint64
	// byCond maps a condition ID to the IDs of policies containing it.
	byCond map[string][]string
	// rowsCache holds the assembled qualified rows per policy, tagged with
	// the membership version they were built at; a steady-state snapshot is
	// then O(policies) instead of a full table scan.
	rowsCache map[string]policyRows

	// Grouped mode (§VIII-C, grouping.go): groupSize > 0 partitions each
	// policy's rows into sticky groups of at most groupSize members. grpMu
	// guards the assignment state and the grouped rows cache; it is
	// independent of mu so mutations never wait on a grouped assembly.
	groupSize int
	grpMu     sync.Mutex
	grpAssign map[string]map[string]int // policy → nym → group number
	grpCounts map[string][]int          // policy → members per group
	grpCache  map[string]groupedPolicyRows
}

// policyRows is one cached row assembly. The rows slice is immutable once
// cached (rebuilds replace the whole entry), so snapshots may share it
// lock-free.
type policyRows struct {
	ver  uint64
	rows [][]core.CSS
}

func newRegistry(acps []*policy.ACP, groupSize int) *registry {
	r := &registry{
		table:     make(map[string]map[string]core.CSS),
		memVer:    make(map[string]uint64, len(acps)),
		byCond:    make(map[string][]string),
		rowsCache: make(map[string]policyRows, len(acps)),
		groupSize: groupSize,
		grpAssign: make(map[string]map[string]int),
		grpCounts: make(map[string][]int),
		grpCache:  make(map[string]groupedPolicyRows),
	}
	for _, a := range acps {
		r.memVer[a.ID] = 0
		for _, c := range a.Conds {
			r.byCond[c.ID()] = append(r.byCond[c.ID()], a.ID)
		}
	}
	return r
}

// bump marks every policy containing condID as membership-dirty. Callers
// hold the write lock.
func (r *registry) bump(condID string) {
	for _, acpID := range r.byCond[condID] {
		r.memVer[acpID]++
	}
}

// bumpAll marks every policy membership-dirty (used when a state import had
// to drop stale columns: restored caches may cover memberships that no
// longer hold).
func (r *registry) bumpAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id := range r.memVer {
		r.memVer[id]++
	}
}

// setCells records a batch of freshly drawn CSSs for one pseudonym under a
// single lock acquisition (overwrite = credential update, §V-C).
func (r *registry) setCells(nym string, cells map[string]core.CSS) {
	if len(cells) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	row, ok := r.table[nym]
	if !ok {
		row = make(map[string]core.CSS, len(cells))
		r.table[nym] = row
	}
	for condID, css := range cells {
		row[condID] = css
		r.bump(condID)
	}
}

// revokeSubscription removes a pseudonym's whole row (paper "Subscription
// Revocation").
func (r *registry) revokeSubscription(nym string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	row, ok := r.table[nym]
	if !ok {
		return fmt.Errorf("pubsub: unknown subscriber %q", nym)
	}
	delete(r.table, nym)
	for condID := range row {
		r.bump(condID)
	}
	return nil
}

// revokeCredential removes a single CSS cell (paper "Credential
// Revocation"). When the last cell of a row goes, the row goes with it —
// a ghost subscriber with zero credentials can never qualify for any policy
// and would only inflate SubscriberCount.
func (r *registry) revokeCredential(nym, condID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	row, ok := r.table[nym]
	if !ok {
		return fmt.Errorf("pubsub: unknown subscriber %q", nym)
	}
	if _, ok := row[condID]; !ok {
		return fmt.Errorf("pubsub: subscriber %q has no CSS for %q", nym, condID)
	}
	delete(row, condID)
	if len(row) == 0 {
		delete(r.table, nym)
	}
	r.bump(condID)
	return nil
}

// count returns the number of registered pseudonyms.
func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.table)
}

// rowCopy returns a copy of one pseudonym's row (nil if absent).
func (r *registry) rowCopy(nym string) map[string]core.CSS {
	r.mu.RLock()
	defer r.mu.RUnlock()
	row, ok := r.table[nym]
	if !ok {
		return nil
	}
	out := make(map[string]core.CSS, len(row))
	for k, v := range row {
		out[k] = v
	}
	return out
}

// snapshot assembles, for every given policy, the subscriber CSS rows of
// matrix A (paper §V-C1) — one ordered CSS list per pseudonym whose row
// contains a CSS for each of the policy's conditions — plus the membership
// version of each policy at snapshot time. The returned structures are
// private to the caller (cached row slices are immutable), so Publish works
// on them lock-free while registrations continue. Policies whose membership
// version is unchanged reuse their cached row assembly: a steady-state
// snapshot costs O(policies), not a table scan.
func (r *registry) snapshot(acps []*policy.ACP) (map[string][][]core.CSS, map[string]uint64) {
	rows := make(map[string][][]core.CSS, len(acps))
	vers := make(map[string]uint64, len(acps))

	r.mu.RLock()
	var stale []*policy.ACP
	for _, a := range acps {
		if e, ok := r.rowsCache[a.ID]; ok && e.ver == r.memVer[a.ID] {
			rows[a.ID] = e.rows
			vers[a.ID] = e.ver
			continue
		}
		stale = append(stale, a)
	}
	r.mu.RUnlock()
	if len(stale) == 0 {
		return rows, vers
	}

	// Rebuild the stale assemblies under the shared lock — the table scan
	// must not hold the exclusive lock, or a big rebuild would serialize
	// every Register/Revoke behind it. Mutations take the write lock, so
	// the versions read here are consistent with the scanned rows.
	rebuilt := make(map[string]policyRows, len(stale))
	r.mu.RLock()
	var nyms []string
	for _, a := range stale {
		if e, ok := r.rowsCache[a.ID]; ok && e.ver == r.memVer[a.ID] {
			// A concurrent snapshot rebuilt it while we were unlocked.
			rows[a.ID] = e.rows
			vers[a.ID] = e.ver
			continue
		}
		if nyms == nil {
			nyms = make([]string, 0, len(r.table))
			for nym := range r.table {
				nyms = append(nyms, nym)
			}
			sort.Strings(nyms)
		}
		var acpRows [][]core.CSS
		for _, nym := range nyms {
			row := r.table[nym]
			css := make([]core.CSS, 0, len(a.Conds))
			complete := true
			for _, c := range a.Conds {
				v, ok := row[c.ID()]
				if !ok {
					complete = false
					break
				}
				css = append(css, v)
			}
			if complete {
				acpRows = append(acpRows, css)
			}
		}
		e := policyRows{ver: r.memVer[a.ID], rows: acpRows}
		rebuilt[a.ID] = e
		rows[a.ID] = e.rows
		vers[a.ID] = e.ver
	}
	r.mu.RUnlock()
	if len(rebuilt) == 0 {
		return rows, vers
	}

	// Install the rebuilt entries under a brief exclusive lock; skip any
	// whose membership advanced since the scan (the rows returned above are
	// still a valid snapshot of the version they were scanned at).
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, e := range rebuilt {
		if r.memVer[id] == e.ver {
			r.rowsCache[id] = e
		}
	}
	return rows, vers
}

// export copies the table for state serialization.
func (r *registry) export() map[string]map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]map[string]uint64, len(r.table))
	for nym, row := range r.table {
		cells := make(map[string]uint64, len(row))
		for cond, css := range row {
			cells[cond] = uint64(css)
		}
		out[nym] = cells
	}
	return out
}

// registryState is a full snapshot of the registry's durable state: table T,
// the per-policy membership versions, and the sticky group assignment (§VIII-C)
// with its per-group occupancy counts.
type registryState struct {
	table     map[string]map[string]core.CSS
	memVer    map[string]uint64
	grpAssign map[string]map[string]int
	grpCounts map[string][]int
}

// exportFull deep-copies the durable registry state (state v2 export).
func (r *registry) exportFull() registryState {
	st := registryState{
		memVer:    make(map[string]uint64),
		grpAssign: make(map[string]map[string]int),
		grpCounts: make(map[string][]int),
	}
	r.mu.RLock()
	st.table = make(map[string]map[string]core.CSS, len(r.table))
	for nym, row := range r.table {
		cells := make(map[string]core.CSS, len(row))
		for cond, css := range row {
			cells[cond] = css
		}
		st.table[nym] = cells
	}
	for id, v := range r.memVer {
		st.memVer[id] = v
	}
	r.mu.RUnlock()
	r.grpMu.Lock()
	for id, assign := range r.grpAssign {
		cp := make(map[string]int, len(assign))
		for nym, gid := range assign {
			cp[nym] = gid
		}
		st.grpAssign[id] = cp
	}
	for id, counts := range r.grpCounts {
		st.grpCounts[id] = append([]int(nil), counts...)
	}
	r.grpMu.Unlock()
	return st
}

// restore replaces the registry's durable state wholesale (state v2 import).
// Membership versions are restored exactly as exported so that engine cache
// signatures computed against them keep matching; assignments for policies
// the publisher no longer has are dropped. Caches are cleared — the next
// snapshot reassembles rows (a table scan, no solves).
func (r *registry) restore(st registryState) {
	r.mu.Lock()
	r.table = st.table
	for id := range r.memVer {
		r.memVer[id] = st.memVer[id]
	}
	r.rowsCache = make(map[string]policyRows)
	known := make(map[string]bool, len(r.memVer))
	for id := range r.memVer {
		known[id] = true
	}
	r.mu.Unlock()

	r.grpMu.Lock()
	r.grpAssign = make(map[string]map[string]int)
	r.grpCounts = make(map[string][]int)
	r.grpCache = make(map[string]groupedPolicyRows)
	for id, assign := range st.grpAssign {
		if !known[id] {
			continue
		}
		r.grpAssign[id] = assign
		r.grpCounts[id] = st.grpCounts[id]
	}
	r.grpMu.Unlock()
}

// replaceDiff swaps in a wholesale new table (state import), bumping only the
// policies whose condition membership actually changed: for every condition,
// the set of (nym, CSS) cells before and after is compared, and an unchanged
// condition dirties nothing. An import of a table identical to the current
// one is therefore a no-op for the rekey engine — no rebuild storm — while a
// partial difference re-solves exactly the affected configurations, the same
// granularity live mutations produce.
func (r *registry) replaceDiff(table map[string]map[string]core.CSS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := make(map[string]bool)
	for nym, newRow := range table {
		oldRow := r.table[nym]
		for cond, v := range newRow {
			if oldRow[cond] != v { // absent cells read as 0, never a valid CSS
				changed[cond] = true
			}
		}
	}
	for nym, oldRow := range r.table {
		newRow := table[nym]
		for cond, v := range oldRow {
			if newRow[cond] != v {
				changed[cond] = true
			}
		}
	}
	r.table = table
	for cond := range changed {
		r.bump(cond)
	}
}

// setCellsDiff is the WAL-replay variant of setCells: a cell overwrite with
// the identical CSS value bumps nothing, so replaying an event that is
// already reflected in the restored snapshot (the crash-between-snapshot-and-
// WAL-rotation window) stays idempotent for the rekey engine.
func (r *registry) setCellsDiff(nym string, cells map[string]core.CSS) {
	if len(cells) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	row, ok := r.table[nym]
	if !ok {
		row = make(map[string]core.CSS, len(cells))
		r.table[nym] = row
	}
	for condID, css := range cells {
		if row[condID] == css {
			continue
		}
		row[condID] = css
		r.bump(condID)
	}
}

// has reports whether a pseudonym has a row (and, with condID != "", a cell
// for that condition).
func (r *registry) has(nym, condID string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	row, ok := r.table[nym]
	if !ok || condID == "" {
		return ok
	}
	_, ok = row[condID]
	return ok
}
