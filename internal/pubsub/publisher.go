// Package pubsub implements the paper's three-phase system end to end: the
// Publisher (Pub) with its conditional-subscription-secret table T,
// privacy-preserving registration via OCBE, selective broadcast with
// ACV-based group key management, and the Subscriber (Sub) that registers
// identity tokens and derives decryption keys from broadcast headers alone.
package pubsub

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ppcd/internal/core"
	"ppcd/internal/document"
	"ppcd/internal/ff64"
	"ppcd/internal/idtoken"
	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/sig"
	"ppcd/internal/sym"
)

// Options tunes a publisher.
type Options struct {
	// Ell is the bit-length bound ℓ for inequality OCBE; attribute values
	// compared with <,≤,>,≥ must be below 2^Ell. Default 16.
	Ell int
	// MinN forces a lower bound on the maximum-user parameter N of every
	// header (headroom for joins without resizing). Default: exactly the
	// number of qualified rows.
	MinN int
}

// Publisher is the content distributor. It never sees attribute values: it
// verifies IdMgr signatures on identity tokens and runs OCBE as the sender.
type Publisher struct {
	mu       sync.Mutex
	params   *pedersen.Params
	idmgrKey sig.PublicKey
	acps     []*policy.ACP
	conds    []policy.Condition
	condByID map[string]policy.Condition
	// table is the paper's table T: nym → condition ID → CSS. A CSS is
	// recorded for every registration, satisfied or not — the publisher
	// cannot tell the difference, which is the point.
	table map[string]map[string]core.CSS
	opts  Options
}

// NewPublisher builds a publisher enforcing the given access control
// policies. idmgrKey is the IdMgr's signature verification key.
func NewPublisher(params *pedersen.Params, idmgrKey sig.PublicKey, acps []*policy.ACP, opts Options) (*Publisher, error) {
	if params == nil {
		return nil, errors.New("pubsub: nil commitment parameters")
	}
	if len(acps) == 0 {
		return nil, errors.New("pubsub: publisher needs at least one policy")
	}
	if opts.Ell == 0 {
		opts.Ell = 16
	}
	if opts.Ell < 1 {
		return nil, errors.New("pubsub: Ell must be positive")
	}
	for _, a := range acps {
		for _, c := range a.Conds {
			if err := c.Validate(); err != nil {
				return nil, err
			}
		}
	}
	conds := policy.Conditions(acps)
	byID := make(map[string]policy.Condition, len(conds))
	for _, c := range conds {
		byID[c.ID()] = c
	}
	return &Publisher{
		params:   params,
		idmgrKey: idmgrKey,
		acps:     acps,
		conds:    conds,
		condByID: byID,
		table:    make(map[string]map[string]core.CSS),
		opts:     opts,
	}, nil
}

// Params returns the commitment parameters (shared with the IdMgr).
func (p *Publisher) Params() *pedersen.Params { return p.params }

// Ell returns the inequality bit-length bound ℓ.
func (p *Publisher) Ell() int { return p.opts.Ell }

// Conditions returns all attribute conditions appearing in the publisher's
// policies; subscribers register their tokens against every condition whose
// attribute matches a token tag.
func (p *Publisher) Conditions() []policy.Condition {
	return append([]policy.Condition(nil), p.conds...)
}

// Policies returns the publisher's access control policy set.
func (p *Publisher) Policies() []*policy.ACP {
	return append([]*policy.ACP(nil), p.acps...)
}

// RegistrationRequest is one condition registration from a subscriber: the
// identity token, the target condition and the OCBE receiver message.
type RegistrationRequest struct {
	Token  *idtoken.Token
	CondID string
	OCBE   *ocbe.Request
}

// Errors returned by Register.
var (
	ErrUnknownCondition = errors.New("pubsub: condition not in any policy")
	ErrTagMismatch      = errors.New("pubsub: token tag does not match condition attribute")
)

// Register handles one registration request: it verifies the token, draws a
// fresh CSS, records it in table T under (nym, condition), and returns the
// OCBE envelope containing the CSS. The subscriber can extract the CSS iff
// its committed attribute value satisfies the condition; the publisher never
// learns whether it could (§V-B).
func (p *Publisher) Register(req *RegistrationRequest) (*ocbe.Envelope, error) {
	if req == nil || req.Token == nil || req.OCBE == nil {
		return nil, errors.New("pubsub: incomplete registration request")
	}
	cond, ok := p.condByID[req.CondID]
	if !ok {
		return nil, ErrUnknownCondition
	}
	if req.Token.Tag != cond.Attr {
		return nil, ErrTagMismatch
	}
	if err := idtoken.Verify(p.params, p.idmgrKey, req.Token); err != nil {
		return nil, fmt.Errorf("pubsub: token rejected: %w", err)
	}
	css, err := core.NewCSS()
	if err != nil {
		return nil, err
	}
	pred := ocbe.Predicate{Op: cond.Op, X0: idtoken.EncodeValue(p.params.Order(), cond.Value)}
	env, err := ocbe.Compose(p.params, pred, p.opts.Ell, req.OCBE, css.Bytes())
	if err != nil {
		return nil, fmt.Errorf("pubsub: composing envelope: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	row, ok := p.table[req.Token.Nym]
	if !ok {
		row = make(map[string]core.CSS)
		p.table[req.Token.Nym] = row
	}
	row[req.CondID] = css // overwrite = credential update (§V-C)
	return env, nil
}

// RevokeSubscription removes a subscriber entirely (paper "Subscription
// Revocation"): its row disappears from T and the next Publish rekeys every
// affected configuration.
func (p *Publisher) RevokeSubscription(nym string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.table[nym]; !ok {
		return fmt.Errorf("pubsub: unknown subscriber %q", nym)
	}
	delete(p.table, nym)
	return nil
}

// RevokeCredential removes a single CSS cell (paper "Credential
// Revocation"), enabling fine-tuned user management.
func (p *Publisher) RevokeCredential(nym, condID string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	row, ok := p.table[nym]
	if !ok {
		return fmt.Errorf("pubsub: unknown subscriber %q", nym)
	}
	if _, ok := row[condID]; !ok {
		return fmt.Errorf("pubsub: subscriber %q has no CSS for %q", nym, condID)
	}
	delete(row, condID)
	return nil
}

// SubscriberCount returns the number of registered pseudonyms.
func (p *Publisher) SubscriberCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.table)
}

// PolicyInfo describes one policy inside a broadcast so subscribers know
// which conditions (in which order) derive each configuration key.
type PolicyInfo struct {
	ID      string
	CondIDs []string
}

// ConfigInfo carries the rekey header for one policy configuration. Header
// is nil for configurations nobody can access (empty configuration or no
// qualified subscriber rows).
type ConfigInfo struct {
	Key    policy.ConfigKey
	Header *core.Header
}

// Item is one encrypted subdocument.
type Item struct {
	Subdoc     string
	Config     policy.ConfigKey
	Ciphertext []byte
}

// Broadcast is the complete selectively-encrypted document package sent to
// all subscribers. Everything in it is public.
type Broadcast struct {
	DocName  string
	Policies []PolicyInfo
	Configs  []ConfigInfo
	Items    []Item
}

// Publish encrypts a document according to the publisher's policies and
// returns the broadcast package. Every call generates fresh keys and
// headers, so Publish after any table change IS the rekey operation — no
// message is addressed to any individual subscriber.
func (p *Publisher) Publish(doc *document.Document) (*Broadcast, error) {
	if doc == nil || len(doc.Subdocs) == 0 {
		return nil, errors.New("pubsub: empty document")
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	relevant := p.policiesFor(doc.Name)
	cfgs := policy.Configurations(doc.Names(), relevant)

	b := &Broadcast{DocName: doc.Name}
	for _, a := range relevant {
		b.Policies = append(b.Policies, PolicyInfo{ID: a.ID, CondIDs: a.CondIDs()})
	}

	keys := make(map[policy.ConfigKey][sym.KeySize]byte, len(cfgs))
	cfgKeys := make([]policy.ConfigKey, 0, len(cfgs))
	for k := range cfgs {
		cfgKeys = append(cfgKeys, k)
	}
	sort.Slice(cfgKeys, func(i, j int) bool { return cfgKeys[i] < cfgKeys[j] })

	// Precompute each policy's subscriber rows once: policies typically
	// appear in several configurations (acp3 covers four configurations in
	// the paper's Example 4), and scanning table T per configuration would
	// redo that work (§VIII-A: eliminate redundant calculations at the Pub).
	rowsByACP := p.rowsByACP(relevant)

	for _, key := range cfgKeys {
		var rows [][]core.CSS
		for _, acpID := range key.IDs() {
			rows = append(rows, rowsByACP[acpID]...)
		}
		if key == policy.EmptyConfig || len(rows) == 0 {
			// Nobody may access: encrypt under a random throwaway key and
			// publish no header (paper Example 4, Pc6).
			k, err := ff64.RandNonZero()
			if err != nil {
				return nil, err
			}
			keys[key] = core.ExpandKey(k)
			b.Configs = append(b.Configs, ConfigInfo{Key: key, Header: nil})
			continue
		}
		n := len(rows)
		if p.opts.MinN > n {
			n = p.opts.MinN
		}
		hdr, k, err := core.Build(rows, n)
		if err != nil {
			return nil, fmt.Errorf("pubsub: building ACV for %q: %w", key, err)
		}
		keys[key] = core.ExpandKey(k)
		b.Configs = append(b.Configs, ConfigInfo{Key: key, Header: hdr})
	}

	cfgOf := make(map[string]policy.ConfigKey)
	for k, subs := range cfgs {
		for _, sd := range subs {
			cfgOf[sd] = k
		}
	}
	for _, sd := range doc.Subdocs {
		k := cfgOf[sd.Name]
		ct, err := sym.Encrypt(keys[k], sd.Content)
		if err != nil {
			return nil, err
		}
		b.Items = append(b.Items, Item{Subdoc: sd.Name, Config: k, Ciphertext: ct})
	}
	return b, nil
}

// policiesFor returns the policies applying to the named document (policies
// with an empty Doc apply to every document).
func (p *Publisher) policiesFor(docName string) []*policy.ACP {
	var out []*policy.ACP
	for _, a := range p.acps {
		if a.Doc == "" || a.Doc == docName {
			out = append(out, a)
		}
	}
	return out
}

// rowsByACP assembles, for every policy, the subscriber CSS rows of matrix A
// (paper §V-C1): one ordered CSS list per pseudonym whose T row contains a
// CSS for each of the policy's conditions. A configuration's rows are the
// concatenation of its policies' row lists.
func (p *Publisher) rowsByACP(acps []*policy.ACP) map[string][][]core.CSS {
	nyms := make([]string, 0, len(p.table))
	for nym := range p.table {
		nyms = append(nyms, nym)
	}
	sort.Strings(nyms)
	out := make(map[string][][]core.CSS, len(acps))
	for _, a := range acps {
		var rows [][]core.CSS
		for _, nym := range nyms {
			row := p.table[nym]
			css := make([]core.CSS, 0, len(a.Conds))
			complete := true
			for _, c := range a.Conds {
				v, ok := row[c.ID()]
				if !ok {
					complete = false
					break
				}
				css = append(css, v)
			}
			if complete {
				rows = append(rows, css)
			}
		}
		out[a.ID] = rows
	}
	return out
}
