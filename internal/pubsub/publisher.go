// Package pubsub implements the paper's three-phase system end to end: the
// Publisher (Pub) with its conditional-subscription-secret table T,
// privacy-preserving registration via OCBE, selective broadcast with
// ACV-based group key management, and the Subscriber (Sub) that registers
// identity tokens and derives decryption keys from broadcast headers alone.
//
// The publisher is a layered engine:
//
//   - registry (registry.go) owns table T with snapshot semantics and
//     per-policy membership versions; registrations and revocations never
//     serialize against broadcast crypto.
//   - keymgr (keymgr.go) maps registry snapshots to per-configuration
//     headers and keys through the incremental core.Engine: only
//     configurations whose subscriber set changed since the last publish are
//     re-solved, the rest reuse cached headers.
//   - broadcast (broadcast.go) encrypts documents under the configuration
//     keys and assembles the public broadcast package.
//
// Registration is batched end to end: Subscriber.RegisterAll sends all
// matching conditions in one RegisterBatch round trip when the registrar
// supports it.
package pubsub

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ppcd/internal/core"
	"ppcd/internal/idtoken"
	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/sig"
)

// Options tunes a publisher.
type Options struct {
	// Ell is the bit-length bound ℓ for inequality OCBE; attribute values
	// compared with <,≤,>,≥ must be below 2^Ell. Default 16.
	Ell int
	// MinN forces a lower bound on the maximum-user parameter N of every
	// header (headroom for joins without resizing). Default: exactly the
	// number of qualified rows. Ignored in grouped mode (GroupSize > 0),
	// where shard capacity is exactly the shard's row count.
	MinN int
	// GroupSize enables subscriber grouping (§VIII-C): each policy's
	// qualified rows are partitioned into sticky groups of at most GroupSize
	// members, each solved as its own small ACV. A full rebuild then costs
	// ~N³/g² instead of N³ and a single join/leave re-solves one shard
	// instead of whole configurations, at the price of g sub-headers per
	// configuration. 0 (the default) keeps the classic one-ACV mode.
	GroupSize int
	// Workers bounds the parallel pools for ACV solving and batch envelope
	// composition. Default GOMAXPROCS.
	Workers int
}

// Publisher is the content distributor. It never sees attribute values: it
// verifies IdMgr signatures on identity tokens and runs OCBE as the sender.
type Publisher struct {
	params   *pedersen.Params
	idmgrKey sig.PublicKey
	acps     []*policy.ACP
	conds    []policy.Condition
	condByID map[string]policy.Condition
	// predByID holds each condition's OCBE predicate with the threshold
	// already encoded into the commitment field, computed once at
	// construction instead of per registration request.
	predByID map[string]ocbe.Predicate
	opts     Options

	// reg is the paper's table T behind snapshot semantics; keys caches
	// per-configuration rekey material.
	reg  *registry
	keys *keyManager

	// pubMu guards the epoch counter and the per-document diff bases
	// (broadcast.go): Publish stamps epochs and derives revisions under it,
	// independently of the registry locks.
	pubMu   sync.Mutex
	epoch   uint64
	gen     uint64
	lastPub map[string]*lastBroadcast

	// journal, when set, receives every durable mutation (state.go) before
	// the triggering operation returns — the write-ahead discipline the
	// internal/store WAL implements. mutMu makes each journal append atomic
	// with its in-memory apply: without it, two racing mutations of the
	// same pseudonym could journal in one order and apply in the other, and
	// a later crash replay (which runs in journal order) would resurrect
	// state the live publisher never held. Envelope crypto stays outside
	// mutMu; only the commit serializes.
	mutMu   sync.Mutex
	jmu     sync.RWMutex
	journal Journal
}

// NewPublisher builds a publisher enforcing the given access control
// policies. idmgrKey is the IdMgr's signature verification key.
func NewPublisher(params *pedersen.Params, idmgrKey sig.PublicKey, acps []*policy.ACP, opts Options) (*Publisher, error) {
	if params == nil {
		return nil, errors.New("pubsub: nil commitment parameters")
	}
	if len(acps) == 0 {
		return nil, errors.New("pubsub: publisher needs at least one policy")
	}
	if opts.Ell == 0 {
		opts.Ell = 16
	}
	if opts.Ell < 1 {
		return nil, errors.New("pubsub: Ell must be positive")
	}
	if opts.GroupSize < 0 {
		return nil, errors.New("pubsub: GroupSize must be non-negative")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	for _, a := range acps {
		// The durable-state format caps identifier lengths; reject policies
		// that could never round-trip through a state file up front.
		if len(a.ID) == 0 || len(a.ID) > maxStateCondLen {
			return nil, fmt.Errorf("pubsub: policy ID of %d bytes (want 1..%d)", len(a.ID), maxStateCondLen)
		}
		for _, c := range a.Conds {
			if err := c.Validate(); err != nil {
				return nil, err
			}
			if len(c.ID()) > maxStateCondLen {
				return nil, fmt.Errorf("pubsub: condition ID of %d bytes exceeds the %d limit", len(c.ID()), maxStateCondLen)
			}
		}
	}
	conds := policy.Conditions(acps)
	byID := make(map[string]policy.Condition, len(conds))
	predByID := make(map[string]ocbe.Predicate, len(conds))
	for _, c := range conds {
		byID[c.ID()] = c
		predByID[c.ID()] = ocbe.Predicate{Op: c.Op, X0: idtoken.EncodeValue(params.Order(), c.Value)}
	}
	// The generation stamp distinguishes this publisher incarnation's epoch
	// numbering from any predecessor's: a restarted publisher reuses small
	// epoch numbers, and without the stamp a subscriber holding pre-restart
	// state could accept a delta against the wrong base (broadcast.go).
	var genBytes [8]byte
	if _, err := rand.Read(genBytes[:]); err != nil {
		return nil, fmt.Errorf("pubsub: generation stamp: %w", err)
	}
	gen := binary.BigEndian.Uint64(genBytes[:]) | 1 // nonzero
	return &Publisher{
		params:   params,
		idmgrKey: idmgrKey,
		acps:     acps,
		conds:    conds,
		condByID: byID,
		predByID: predByID,
		opts:     opts,
		reg:      newRegistry(acps, opts.GroupSize),
		keys:     newKeyManager(opts.Workers, opts.MinN),
		gen:      gen,
		lastPub:  make(map[string]*lastBroadcast),
	}, nil
}

// Params returns the commitment parameters (shared with the IdMgr).
func (p *Publisher) Params() *pedersen.Params { return p.params }

// Ell returns the inequality bit-length bound ℓ.
func (p *Publisher) Ell() int { return p.opts.Ell }

// Conditions returns all attribute conditions appearing in the publisher's
// policies; subscribers register their tokens against every condition whose
// attribute matches a token tag.
func (p *Publisher) Conditions() []policy.Condition {
	return append([]policy.Condition(nil), p.conds...)
}

// Policies returns the publisher's access control policy set.
func (p *Publisher) Policies() []*policy.ACP {
	return append([]*policy.ACP(nil), p.acps...)
}

// Stats returns the rekey work counters: how many configurations were
// re-solved vs. served from the incremental cache (in grouped mode Solves
// counts per-shard solves), plus §VIII-B dominance skips. A steady-state
// publish (no table change since the previous one) adds zero solves.
func (p *Publisher) Stats() Stats { return p.keys.stats() }

// RegistrationRequest is one condition registration from a subscriber: the
// identity token, the target condition and the OCBE receiver message.
type RegistrationRequest struct {
	Token  *idtoken.Token
	CondID string
	OCBE   *ocbe.Request
}

// Errors returned by Register.
var (
	ErrUnknownCondition   = errors.New("pubsub: condition not in any policy")
	ErrTagMismatch        = errors.New("pubsub: token tag does not match condition attribute")
	ErrCommitmentMismatch = errors.New("pubsub: OCBE commitment does not match the token's certified commitment")
)

// Register handles one registration request: it verifies the token, draws a
// fresh CSS, records it in table T under (nym, condition), and returns the
// OCBE envelope containing the CSS. The subscriber can extract the CSS iff
// its committed attribute value satisfies the condition; the publisher never
// learns whether it could (§V-B).
func (p *Publisher) Register(req *RegistrationRequest) (*ocbe.Envelope, error) {
	env, css, err := p.compose(req, true)
	if err != nil {
		return nil, err
	}
	cells := map[string]core.CSS{req.CondID: css}
	// Write-ahead: the cells must be durable before they become visible in T
	// (a crash after the subscriber received its envelope but before the
	// journal entry would silently lose the registration). Under a pipelined
	// journal concurrent registrations share one group flush.
	err = p.commitMutation(nil,
		func() { p.reg.setCells(req.Token.Nym, cells) },
		StateEvent{Kind: StateEventRegister, Nym: req.Token.Nym, Cells: cells})
	if err != nil {
		return nil, err
	}
	return env, nil
}

// validateRegistration checks everything about one request except the
// envelope crypto — shape, condition, pseudonym cap, tag, certified
// commitment and (optionally) the token signature — and draws the fresh
// CSS for a request that passes. verifyToken can be skipped when the same
// token was already verified earlier in a batch.
func (p *Publisher) validateRegistration(req *RegistrationRequest, verifyToken bool) (core.CSS, error) {
	if req == nil || req.Token == nil || req.OCBE == nil {
		return 0, errors.New("pubsub: incomplete registration request")
	}
	cond, ok := p.condByID[req.CondID]
	if !ok {
		return 0, ErrUnknownCondition
	}
	// Enforce the durable-state pseudonym cap at admission: a longer nym
	// would register fine but poison every later state import/WAL replay
	// (a one-request persistent denial of recovery).
	if err := validateStateNym(req.Token.Nym); err != nil {
		return 0, err
	}
	if req.Token.Tag != cond.Attr {
		return 0, ErrTagMismatch
	}
	// The OCBE exchange must run against the IdMgr-certified commitment —
	// otherwise a subscriber could attach a valid token while running OCBE
	// on a self-chosen commitment to a satisfying value, bypassing the
	// access control entirely.
	if !bytes.Equal(req.OCBE.Commitment, req.Token.Commitment) {
		return 0, ErrCommitmentMismatch
	}
	if verifyToken {
		if err := idtoken.Verify(p.params, p.idmgrKey, req.Token); err != nil {
			return 0, fmt.Errorf("pubsub: token rejected: %w", err)
		}
	}
	return core.NewCSS()
}

// compose validates one registration request and builds its envelope
// without touching table T.
func (p *Publisher) compose(req *RegistrationRequest, verifyToken bool) (*ocbe.Envelope, core.CSS, error) {
	css, err := p.validateRegistration(req, verifyToken)
	if err != nil {
		return nil, 0, err
	}
	env, err := ocbe.Compose(p.params, p.predByID[req.CondID], p.opts.Ell, req.OCBE, css.Bytes())
	if err != nil {
		return nil, 0, fmt.Errorf("pubsub: composing envelope: %w", err)
	}
	return env, css, nil
}

// BatchResult is the outcome of one item of a RegisterBatch call: either an
// envelope or a per-item error message (the batch as a whole still
// succeeds).
type BatchResult struct {
	CondID   string
	Envelope *ocbe.Envelope
	Err      string
}

// MaxRegistrationBatch caps the items accepted in one RegisterBatch call;
// the cap bounds memory on the network-exposed path (a subscriber
// registering every condition of even a very large policy set stays far
// below it).
const MaxRegistrationBatch = 4096

// RegisterBatch handles many registration requests in one call — one round
// trip on the wire instead of one per condition. Each distinct token is
// verified once, envelope composition runs through ocbe.ComposeBatch in
// bounded chunks — pooling every envelope's σ exponentiations into the
// group's lane-batched multi-exponentiation kernel — and all resulting CSS
// cells are committed to table T under a single write-lock acquisition per
// pseudonym. Item-level failures are reported in the corresponding
// BatchResult; the call errs only on an empty or oversized batch.
func (p *Publisher) RegisterBatch(reqs []*RegistrationRequest) ([]BatchResult, error) {
	if len(reqs) == 0 {
		return nil, errors.New("pubsub: empty registration batch")
	}
	if len(reqs) > MaxRegistrationBatch {
		return nil, fmt.Errorf("pubsub: registration batch of %d exceeds limit %d", len(reqs), MaxRegistrationBatch)
	}

	// Verify each distinct token once (the paper's Sub registers one token
	// against many conditions).
	byKey := make(map[string]error)
	tokErrs := make([]error, len(reqs))
	for i, req := range reqs {
		if req == nil || req.Token == nil {
			continue // compose reports the incomplete request per item
		}
		tok := req.Token
		// Length-prefixed fields: a plain-separator join would let crafted
		// byte fields containing the separator collide with a different
		// token and skip its signature check.
		key := fmt.Sprintf("%d:%s|%d:%s|%d:%x|%d:%x",
			len(tok.Nym), tok.Nym, len(tok.Tag), tok.Tag,
			len(tok.Commitment), tok.Commitment, len(tok.Sig), tok.Sig)
		err, ok := byKey[key]
		if !ok {
			err = idtoken.Verify(p.params, p.idmgrKey, tok)
			if err != nil {
				err = fmt.Errorf("pubsub: token rejected: %w", err)
			}
			byKey[key] = err
		}
		tokErrs[i] = err
	}

	type outcome struct {
		css core.CSS
		ok  bool
	}
	results := make([]BatchResult, len(reqs))
	outcomes := make([]outcome, len(reqs))
	// Validate every item up front (cheap: map lookups and byte compares;
	// signatures were checked above) and collect the survivors into one
	// compose batch, so ocbe.ComposeBatch can pool every envelope's σ
	// exponentiations into shared lanes instead of composing one envelope
	// per worker.
	items := make([]ocbe.ComposeItem, 0, len(reqs))
	itemIdx := make([]int, 0, len(reqs)) // items[j] composes reqs[itemIdx[j]]
	cssFor := make([]core.CSS, len(reqs))
	for i, req := range reqs {
		if req != nil {
			results[i].CondID = req.CondID
		}
		if err := tokErrs[i]; err != nil {
			results[i].Err = err.Error()
			continue
		}
		css, err := p.validateRegistration(req, false)
		if err != nil {
			results[i].Err = err.Error()
			continue
		}
		cssFor[i] = css
		items = append(items, ocbe.ComposeItem{
			Pred: p.predByID[req.CondID],
			Ell:  p.opts.Ell,
			Req:  req.OCBE,
			Msg:  css.Bytes(),
		})
		itemIdx = append(itemIdx, i)
	}
	// Compose in bounded chunks: the batch is network-supplied, so plan
	// memory must stay proportional to the chunk, not the batch length — a
	// chunk still pools hundreds of lanes per batch inversion.
	const composeChunk = 256
	for lo := 0; lo < len(items); lo += composeChunk {
		hi := min(lo+composeChunk, len(items))
		envs, errs := ocbe.ComposeBatch(p.params, items[lo:hi])
		for j := lo; j < hi; j++ {
			i := itemIdx[j]
			if err := errs[j-lo]; err != nil {
				results[i].Err = fmt.Sprintf("pubsub: composing envelope: %v", err)
				continue
			}
			results[i].Envelope = envs[j-lo]
			outcomes[i] = outcome{css: cssFor[i], ok: true}
		}
	}

	// Commit all successful cells, grouped by pseudonym, one lock
	// acquisition each.
	cellsByNym := make(map[string]map[string]core.CSS)
	for i, o := range outcomes {
		if !o.ok {
			continue
		}
		nym := reqs[i].Token.Nym
		cells, ok := cellsByNym[nym]
		if !ok {
			cells = make(map[string]core.CSS)
			cellsByNym[nym] = cells
		}
		cells[reqs[i].CondID] = o.css
	}
	if len(cellsByNym) > 0 {
		// Write-ahead for the whole batch under one journal barrier: a
		// BatchJournal group-commits every pseudonym's cells with a single
		// flush, otherwise one append (and fsync) per pseudonym. A journal
		// failure voids the affected items — their envelopes carry CSSs that
		// never entered T, so they can never decrypt anything and the
		// subscriber must re-register.
		nyms := make([]string, 0, len(cellsByNym))
		for nym := range cellsByNym {
			nyms = append(nyms, nym)
		}
		sort.Strings(nyms) // deterministic journal order
		failed := make(map[string]error)

		p.jmu.RLock()
		j := p.journal
		p.jmu.RUnlock()
		if cj, ok := j.(CommitJournal); ok {
			// Pipelined group commit: the whole batch enters the journal
			// order as one unit and shares a flush with any concurrent
			// mutators. The batch commits or fails atomically (matching the
			// AppendBatch semantics below).
			evs := make([]StateEvent, len(nyms))
			for i, nym := range nyms {
				evs[i] = StateEvent{Kind: StateEventRegister, Nym: nym, Cells: cellsByNym[nym]}
			}
			p.mutMu.Lock()
			t, err := cj.Begin(evs, func() {
				for _, nym := range nyms {
					p.reg.setCells(nym, cellsByNym[nym])
				}
			})
			p.mutMu.Unlock()
			if err == nil {
				err = t.Wait()
			}
			if err != nil {
				err = fmt.Errorf("pubsub: journaling state event: %w", err)
				for _, nym := range nyms {
					failed[nym] = err
				}
			}
		} else {
			p.mutMu.Lock()
			if bj, ok := j.(BatchJournal); ok {
				evs := make([]StateEvent, len(nyms))
				for i, nym := range nyms {
					evs[i] = StateEvent{Kind: StateEventRegister, Nym: nym, Cells: cellsByNym[nym]}
				}
				if err := bj.AppendBatch(evs); err != nil {
					err = fmt.Errorf("pubsub: journaling state event: %w", err)
					for _, nym := range nyms {
						failed[nym] = err
					}
				}
			} else {
				for _, nym := range nyms {
					if err := p.journalAppend(StateEvent{Kind: StateEventRegister, Nym: nym, Cells: cellsByNym[nym]}); err != nil {
						failed[nym] = err
					}
				}
			}
			for _, nym := range nyms {
				if failed[nym] == nil {
					p.reg.setCells(nym, cellsByNym[nym])
				}
			}
			p.mutMu.Unlock()
		}

		for i, req := range reqs {
			if results[i].Envelope == nil {
				continue
			}
			if err := failed[req.Token.Nym]; err != nil {
				results[i].Envelope = nil
				results[i].Err = err.Error()
			}
		}
	}
	return results, nil
}

// RevokeSubscription removes a subscriber entirely (paper "Subscription
// Revocation"): its row disappears from T and the next Publish rekeys every
// affected configuration.
func (p *Publisher) RevokeSubscription(nym string) error {
	// commitMutation makes existence check + journal + apply one ordered
	// step: journal order equals apply order, so crash replay can never
	// resurrect a row a racing registration committed on the other side of
	// this revocation.
	var applyErr error
	err := p.commitMutation(
		func() error {
			// Journal only revocations that can take effect (an unknown
			// pseudonym is the caller's error, not a state change).
			if !p.reg.has(nym, "") {
				return fmt.Errorf("pubsub: unknown subscriber %q", nym)
			}
			return nil
		},
		func() { applyErr = p.reg.revokeSubscription(nym) },
		StateEvent{Kind: StateEventRevokeSubscription, Nym: nym})
	if err != nil {
		return err
	}
	return applyErr
}

// RevokeCredential removes a single CSS cell (paper "Credential
// Revocation"), enabling fine-tuned user management. Removing a pseudonym's
// last cell removes the row itself.
func (p *Publisher) RevokeCredential(nym, condID string) error {
	var applyErr error
	err := p.commitMutation(
		func() error {
			if !p.reg.has(nym, condID) {
				if !p.reg.has(nym, "") {
					return fmt.Errorf("pubsub: unknown subscriber %q", nym)
				}
				return fmt.Errorf("pubsub: subscriber %q has no CSS for %q", nym, condID)
			}
			return nil
		},
		func() { applyErr = p.reg.revokeCredential(nym, condID) },
		StateEvent{Kind: StateEventRevokeCredential, Nym: nym, Cond: condID})
	if err != nil {
		return err
	}
	return applyErr
}

// SubscriberCount returns the number of registered pseudonyms.
func (p *Publisher) SubscriberCount() int {
	return p.reg.count()
}

// TableMemory returns the number of registered pseudonyms and the estimated
// resident bytes of table T's columnar backing — the bytes-per-subscriber
// metric reported by the scale benchmark.
func (p *Publisher) TableMemory() (subscribers int, bytes int64) {
	return p.reg.tableMemory()
}
