package pubsub

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"ppcd/internal/core"
	"ppcd/internal/document"
	"ppcd/internal/policy"
	"ppcd/internal/sym"
)

// PolicyInfo describes one policy inside a broadcast so subscribers know
// which conditions (in which order) derive each configuration key.
type PolicyInfo struct {
	ID      string
	CondIDs []string
}

// ConfigInfo carries the rekey header for one policy configuration: Header
// in the classic one-ACV mode, Grouped when the publisher shards subscriber
// rows (§VIII-C, Options.GroupSize). Both are nil for configurations nobody
// can access (empty configuration or no qualified subscriber rows).
type ConfigInfo struct {
	Key     policy.ConfigKey
	Header  *core.Header
	Grouped *core.GroupedHeader

	// Rev is the epoch at which this configuration's header (and therefore
	// its key) last changed; a configuration untouched since epoch e keeps
	// Rev = e across later publishes, which is what lets the delta layer
	// skip it entirely.
	Rev uint64
	// ShardRevs, parallel to Grouped.Shards, is the epoch at which each
	// shard's sub-header last re-solved. After a single-leave rekey only the
	// dirty shard's entry advances: clean shards keep their sub-headers
	// (and the subscribers their cached KEVs), so a delta ships one small
	// sub-header plus the per-shard wraps instead of the whole header.
	ShardRevs []uint64
}

// Item is one encrypted subdocument.
type Item struct {
	Subdoc     string
	Config     policy.ConfigKey
	Ciphertext []byte
	// Rev is the epoch at which this ciphertext last changed (fresh
	// configuration key or new plaintext). While both stay put, republishes
	// carry the previous bytes forward and deltas skip the item.
	Rev uint64
}

// Broadcast is the complete selectively-encrypted document package sent to
// all subscribers. Everything in it is public.
type Broadcast struct {
	DocName string
	// Epoch is the publisher-wide monotonic publish counter; every Publish
	// stamps the next epoch. Deltas are expressed between two epochs of the
	// same document.
	Epoch uint64
	// Gen identifies the publisher incarnation that numbered the epoch: a
	// restarted publisher begins a fresh epoch sequence under a fresh random
	// generation, so a subscriber holding pre-restart state can never match
	// a post-restart delta's base epoch by numeric coincidence.
	Gen      uint64
	Policies []PolicyInfo
	Configs  []ConfigInfo
	Items    []Item
}

// lastBroadcast is the publisher's per-document diff base: the previous
// broadcast (revisions filled in) plus the plaintext digests that decide
// whether an item's ciphertext may be carried forward.
type lastBroadcast struct {
	b       *Broadcast
	digests map[string][32]byte // subdoc → SHA-256 of plaintext
}

// Publish encrypts a document according to the publisher's policies and
// returns the broadcast package. Publishing IS the rekey operation: any
// table mutation since the previous publish (join, revocation, credential
// update) causes every affected configuration to receive a fresh ACV header
// and key, while untouched configurations reuse their cached ones — the
// paper's "rekey only on membership change" semantics, with no message ever
// addressed to an individual subscriber.
//
// Publish never blocks registration traffic: it reads a consistent table
// snapshot under a read lock and performs all crypto outside any lock, so
// concurrent Register/Revoke* calls proceed while ACVs are being solved.
//
// Each broadcast is stamped with the next epoch and with per-configuration
// (and per-shard) revisions derived from the engine's cache state, so the
// delta layer (Diff) can ship only what changed since any retained base
// epoch. Items whose configuration key and plaintext are both unchanged
// carry the previous ciphertext forward — a steady-state republish is then
// byte-identical except for the epoch, and its delta is empty.
//
// The returned broadcast is retained by the publisher as the next diff base
// and must be treated as immutable by callers.
func (p *Publisher) Publish(doc *document.Document) (*Broadcast, error) {
	if doc == nil || len(doc.Subdocs) == 0 {
		return nil, errors.New("pubsub: empty document")
	}
	// Names land in the durable state (diff bases, journal events); enforce
	// the state format's caps here so every accepted publish round-trips.
	if len(doc.Name) == 0 || len(doc.Name) > maxStateCondLen {
		return nil, fmt.Errorf("pubsub: document name of %d bytes (want 1..%d)", len(doc.Name), maxStateCondLen)
	}
	for _, sd := range doc.Subdocs {
		if len(sd.Name) > maxStateCondLen {
			return nil, fmt.Errorf("pubsub: subdocument name of %d bytes exceeds the %d limit", len(sd.Name), maxStateCondLen)
		}
	}

	relevant := p.policiesFor(doc.Name)
	cfgs := policy.Configurations(doc.Names(), relevant)

	b := &Broadcast{DocName: doc.Name}
	for _, a := range relevant {
		b.Policies = append(b.Policies, PolicyInfo{ID: a.ID, CondIDs: a.CondIDs()})
	}

	// Snapshot each policy's qualified subscriber rows once: policies
	// typically appear in several configurations (acp3 covers four in the
	// paper's Example 4), and scanning table T per configuration would redo
	// that work (§VIII-A: eliminate redundant calculations at the Pub).
	var infos []ConfigInfo
	var keys map[policy.ConfigKey][sym.KeySize]byte
	var err error
	if p.opts.GroupSize > 0 {
		infos, keys, err = p.keys.configKeysGrouped(cfgs, p.reg.snapshotGrouped(relevant))
	} else {
		rowsByACP, vers := p.reg.snapshot(relevant)
		infos, keys, err = p.keys.configKeys(cfgs, rowsByACP, vers)
	}
	if err != nil {
		return nil, err
	}
	b.Configs = infos

	cfgOf := make(map[string]policy.ConfigKey)
	for k, subs := range cfgs {
		for _, sd := range subs {
			cfgOf[sd] = k
		}
	}

	// Plaintext digests are independent of the previous broadcast; hash
	// outside the lock so concurrent publishes of different documents do
	// not serialize on content size.
	digests := make(map[string][32]byte, len(doc.Subdocs))
	for _, sd := range doc.Subdocs {
		digests[sd.Name] = sha256.Sum256(sd.Content)
	}

	// Epoch stamping and item assembly run under the publish lock: revisions
	// are derived against the previous broadcast of the same document, and
	// unchanged items carry their ciphertext forward instead of being
	// re-encrypted (so only *changed* items pay AEAD cost here — a
	// steady-state publish encrypts nothing). The lock is independent of
	// the registry's, so registration traffic still proceeds; only
	// concurrent Publish calls serialize here.
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	p.epoch++
	// Journal the epoch bump before the broadcast escapes: after a crash the
	// restored counter must stay ahead of every epoch subscribers have seen
	// under this generation, or a restarted publisher could re-number. Nobody
	// observed the bump yet, so a journal failure rolls it back cleanly.
	if err := p.journalPublish(StateEvent{Kind: StateEventPublish, Doc: doc.Name, Epoch: p.epoch}); err != nil {
		p.epoch--
		return nil, err
	}
	b.Epoch = p.epoch
	b.Gen = p.gen
	prev := p.lastPub[doc.Name]
	stampConfigRevs(b, prev)

	revOf := make(map[policy.ConfigKey]uint64, len(b.Configs))
	for _, ci := range b.Configs {
		revOf[ci.Key] = ci.Rev
	}
	var prevItems map[string]*Item
	if prev != nil {
		prevItems = make(map[string]*Item, len(prev.b.Items))
		for i := range prev.b.Items {
			prevItems[prev.b.Items[i].Subdoc] = &prev.b.Items[i]
		}
	}
	for _, sd := range doc.Subdocs {
		k := cfgOf[sd.Name]
		digest := digests[sd.Name]
		if pi, ok := prevItems[sd.Name]; ok && pi.Config == k && revOf[k] < b.Epoch && prev.digests[sd.Name] == digest {
			// Same configuration key, same plaintext: the previous ciphertext
			// still decrypts, so carry it (and its revision) forward.
			b.Items = append(b.Items, Item{Subdoc: sd.Name, Config: k, Ciphertext: pi.Ciphertext, Rev: pi.Rev})
			continue
		}
		ct, err := sym.Encrypt(keys[k], sd.Content)
		if err != nil {
			return nil, err
		}
		b.Items = append(b.Items, Item{Subdoc: sd.Name, Config: k, Ciphertext: ct, Rev: b.Epoch})
	}
	p.lastPub[doc.Name] = &lastBroadcast{b: b, digests: digests}
	return b, nil
}

// stampConfigRevs fills Rev and ShardRevs for every configuration of a fresh
// broadcast against the previous broadcast of the same document. Change
// detection is pointer identity on the header objects: the engine returns
// the same cached *Header / *GroupedHeader for an untouched configuration
// and the same shard *Header for a clean shard inside a reassembled grouped
// header, so an unchanged pointer means bit-identical broadcast material.
// Two nil headers (an inaccessible configuration staying inaccessible) also
// compare unchanged — nobody can decrypt it at either epoch.
func stampConfigRevs(b *Broadcast, prev *lastBroadcast) {
	var prevCfg map[policy.ConfigKey]*ConfigInfo
	if prev != nil {
		prevCfg = make(map[policy.ConfigKey]*ConfigInfo, len(prev.b.Configs))
		for i := range prev.b.Configs {
			prevCfg[prev.b.Configs[i].Key] = &prev.b.Configs[i]
		}
	}
	for i := range b.Configs {
		ci := &b.Configs[i]
		pc := prevCfg[ci.Key]
		unchanged := pc != nil && pc.Header == ci.Header && pc.Grouped == ci.Grouped
		if unchanged {
			ci.Rev = pc.Rev
			ci.ShardRevs = pc.ShardRevs
			continue
		}
		ci.Rev = b.Epoch
		if ci.Grouped == nil {
			continue
		}
		// Reassembled grouped header: clean shards keep their sub-header
		// objects, so they inherit the revision they last solved at.
		var prevShard map[*core.Header]uint64
		if pc != nil && pc.Grouped != nil && len(pc.ShardRevs) == len(pc.Grouped.Shards) {
			prevShard = make(map[*core.Header]uint64, len(pc.Grouped.Shards))
			for j, sh := range pc.Grouped.Shards {
				prevShard[sh.Hdr] = pc.ShardRevs[j]
			}
		}
		revs := make([]uint64, len(ci.Grouped.Shards))
		for j, sh := range ci.Grouped.Shards {
			if r, ok := prevShard[sh.Hdr]; ok {
				revs[j] = r
			} else {
				revs[j] = b.Epoch
			}
		}
		ci.ShardRevs = revs
	}
}

// Epoch returns the epoch of the most recent Publish (0 before the first).
func (p *Publisher) Epoch() uint64 {
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	return p.epoch
}

// LastBroadcast returns the most recent broadcast published for the named
// document (nil if none). Like the return value of Publish, it must be
// treated as immutable.
func (p *Publisher) LastBroadcast(docName string) *Broadcast {
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	if lb, ok := p.lastPub[docName]; ok {
		return lb.b
	}
	return nil
}

// policiesFor returns the policies applying to the named document (policies
// with an empty Doc apply to every document).
func (p *Publisher) policiesFor(docName string) []*policy.ACP {
	var out []*policy.ACP
	for _, a := range p.acps {
		if a.Doc == "" || a.Doc == docName {
			out = append(out, a)
		}
	}
	return out
}
