package pubsub

import (
	"errors"

	"ppcd/internal/core"
	"ppcd/internal/document"
	"ppcd/internal/policy"
	"ppcd/internal/sym"
)

// PolicyInfo describes one policy inside a broadcast so subscribers know
// which conditions (in which order) derive each configuration key.
type PolicyInfo struct {
	ID      string
	CondIDs []string
}

// ConfigInfo carries the rekey header for one policy configuration: Header
// in the classic one-ACV mode, Grouped when the publisher shards subscriber
// rows (§VIII-C, Options.GroupSize). Both are nil for configurations nobody
// can access (empty configuration or no qualified subscriber rows).
type ConfigInfo struct {
	Key     policy.ConfigKey
	Header  *core.Header
	Grouped *core.GroupedHeader
}

// Item is one encrypted subdocument.
type Item struct {
	Subdoc     string
	Config     policy.ConfigKey
	Ciphertext []byte
}

// Broadcast is the complete selectively-encrypted document package sent to
// all subscribers. Everything in it is public.
type Broadcast struct {
	DocName  string
	Policies []PolicyInfo
	Configs  []ConfigInfo
	Items    []Item
}

// Publish encrypts a document according to the publisher's policies and
// returns the broadcast package. Publishing IS the rekey operation: any
// table mutation since the previous publish (join, revocation, credential
// update) causes every affected configuration to receive a fresh ACV header
// and key, while untouched configurations reuse their cached ones — the
// paper's "rekey only on membership change" semantics, with no message ever
// addressed to an individual subscriber.
//
// Publish never blocks registration traffic: it reads a consistent table
// snapshot under a read lock and performs all crypto outside any lock, so
// concurrent Register/Revoke* calls proceed while ACVs are being solved.
func (p *Publisher) Publish(doc *document.Document) (*Broadcast, error) {
	if doc == nil || len(doc.Subdocs) == 0 {
		return nil, errors.New("pubsub: empty document")
	}

	relevant := p.policiesFor(doc.Name)
	cfgs := policy.Configurations(doc.Names(), relevant)

	b := &Broadcast{DocName: doc.Name}
	for _, a := range relevant {
		b.Policies = append(b.Policies, PolicyInfo{ID: a.ID, CondIDs: a.CondIDs()})
	}

	// Snapshot each policy's qualified subscriber rows once: policies
	// typically appear in several configurations (acp3 covers four in the
	// paper's Example 4), and scanning table T per configuration would redo
	// that work (§VIII-A: eliminate redundant calculations at the Pub).
	var infos []ConfigInfo
	var keys map[policy.ConfigKey][sym.KeySize]byte
	var err error
	if p.opts.GroupSize > 0 {
		infos, keys, err = p.keys.configKeysGrouped(cfgs, p.reg.snapshotGrouped(relevant))
	} else {
		rowsByACP, vers := p.reg.snapshot(relevant)
		infos, keys, err = p.keys.configKeys(cfgs, rowsByACP, vers)
	}
	if err != nil {
		return nil, err
	}
	b.Configs = infos

	cfgOf := make(map[string]policy.ConfigKey)
	for k, subs := range cfgs {
		for _, sd := range subs {
			cfgOf[sd] = k
		}
	}
	for _, sd := range doc.Subdocs {
		k := cfgOf[sd.Name]
		ct, err := sym.Encrypt(keys[k], sd.Content)
		if err != nil {
			return nil, err
		}
		b.Items = append(b.Items, Item{Subdoc: sd.Name, Config: k, Ciphertext: ct})
	}
	return b, nil
}

// policiesFor returns the policies applying to the named document (policies
// with an empty Doc apply to every document).
func (p *Publisher) policiesFor(docName string) []*policy.ACP {
	var out []*policy.ACP
	for _, a := range p.acps {
		if a.Doc == "" || a.Doc == docName {
			out = append(out, a)
		}
	}
	return out
}
