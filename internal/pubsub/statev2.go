package pubsub

import (
	"errors"
	"fmt"
	"sort"

	"ppcd/internal/codec"
	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/linalg"
	"ppcd/internal/policy"
)

// State v2 binary format: the full durable publisher state. All integers are
// big-endian; strings and byte fields are uint32-length-prefixed. Decoding
// applies the wire-style hardening budget: every count is clamped, every
// field element must arrive reduced, duplicate pseudonyms are rejected, and
// cumulative header material is charged against a fixed budget.
//
// Layout after the magic:
//
//	u64 epoch | u64 gen
//	table:     u32 n { str nym, u32 cells { str cond, u64 css } }
//	memVer:    u32 n { str policyID, u64 ver }
//	grouping:  u32 n { str policyID, u32 groups, u32 members { str nym, u32 gid } }
//	cfgCache:  u32 n { str id, str sig, header, u64 key }
//	shardCache:u32 n { str id, str sig, header, u64 key }
//	grpCache:  u32 n { str id, str sig, bytes nonce,
//	                   u32 shards { u8 kind(0 ref|1 inline), str shardID | header, u64 wrap },
//	                   u64 key }
//	lastPub:   u32 n { str doc, broadcast, u32 digests { str subdoc, 32 bytes } }
//
// where header = u32 |X| { u64 elem } u32 |Zs| { bytes z }, and broadcast is
// the epoch-stamped package with per-config revisions; configuration headers
// inside it are encoded as references into the cache sections whenever the
// live objects are shared (the normal case), re-establishing the pointer
// sharing the delta layer's change detection relies on.

// stateMagicV2 prefixes v2 state blobs ("PPCDST" + version 2).
var stateMagicV2 = []byte{'P', 'P', 'C', 'D', 'S', 'T', 2}

// maxStateHeaderBudget bounds the cumulative decoded size of all cached and
// broadcast headers (plus the per-policy group-count lists) in one state
// blob.
const maxStateHeaderBudget = 256 << 20

// maxStateSigLen caps cache IDs and signatures (configuration keys join
// policy IDs, grouped signatures concatenate per-shard digests — both grow
// with the policy/shard count, far beyond a single condition ID).
const maxStateSigLen = 1 << 24

// Errors returned by the v2 state codec.
var (
	errStateTruncated = errors.New("pubsub: truncated state")
	errStateOversize  = errors.New("pubsub: state length field exceeds limits")
)

// stateErr maps the shared codec sentinels (internal/codec, where the
// bounded-decode primitives live) onto this package's pinned state errors.
func stateErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, codec.ErrTruncated):
		return errStateTruncated
	case errors.Is(err, codec.ErrOversize):
		return errStateOversize
	}
	return err
}

// stateWriter and stateReader adapt the shared internal/codec primitives to
// the v2 state format's limits: every u32 is clamped to maxStateBytes, every
// count to maxStateCount, and header-sized allocations are charged against a
// codec.Budget that parallel segment decodes share.
type stateWriter struct {
	w codec.Writer
}

func (w *stateWriter) u8(v byte)      { w.w.U8(v) }
func (w *stateWriter) u32(v int)      { w.w.U32(v) }
func (w *stateWriter) u64(v uint64)   { w.w.U64(v) }
func (w *stateWriter) bytes(p []byte) { w.w.Bytes(p) }
func (w *stateWriter) str(s string)   { w.w.Str(s) }
func (w *stateWriter) raw(p []byte)   { w.w.Raw(p) }
func (w *stateWriter) out() []byte    { return w.w.Out() }

type stateReader struct {
	r *codec.Reader
}

// newStateReader wraps data with the shared allocation budget (nil-safe:
// a nil budget is unlimited — only tests use that).
func newStateReader(data []byte, budget *codec.Budget) *stateReader {
	return &stateReader{r: codec.NewReader(data, budget)}
}

func (r *stateReader) u8() (byte, error) {
	v, err := r.r.U8()
	return v, stateErr(err)
}

func (r *stateReader) u32() (int, error) {
	v, err := r.r.Len(maxStateBytes)
	return v, stateErr(err)
}

// count reads a u32 clamped to the generic element-count limit.
func (r *stateReader) count() (int, error) {
	v, err := r.r.Len(maxStateCount)
	return v, stateErr(err)
}

func (r *stateReader) u64() (uint64, error) {
	v, err := r.r.U64()
	return v, stateErr(err)
}

func (r *stateReader) bytes() ([]byte, error) {
	v, err := r.r.Bytes(maxStateBytes)
	return v, stateErr(err)
}

func (r *stateReader) str(maxLen int) (string, error) {
	s, err := r.r.Str(maxLen)
	return s, stateErr(err)
}

// take returns the next n input bytes (borrowed; callers copy what they keep).
func (r *stateReader) take(n int) ([]byte, error) {
	b, err := r.r.Take(n)
	return b, stateErr(err)
}

// charge draws n bytes from the shared allocation budget.
func (r *stateReader) charge(n int) error {
	if err := r.r.Charge(n); err != nil {
		return errStateOversize
	}
	return nil
}

func (r *stateReader) done() error {
	if n := r.r.Remaining(); n != 0 {
		return fmt.Errorf("pubsub: state has %d trailing bytes", n)
	}
	return nil
}

func (r *stateReader) elem() (ff64.Elem, error) {
	raw, err := r.u64()
	if err != nil {
		return 0, err
	}
	if raw >= ff64.Modulus {
		return 0, errors.New("pubsub: state field element not reduced")
	}
	return ff64.Elem(raw), nil
}

func writeStateHeader(w *stateWriter, h *core.Header) {
	w.u32(len(h.X))
	for _, e := range h.X {
		w.u64(uint64(e))
	}
	w.u32(len(h.Zs))
	for _, z := range h.Zs {
		w.bytes(z)
	}
}

func readStateHeader(r *stateReader) (*core.Header, error) {
	nx, err := r.count()
	if err != nil {
		return nil, err
	}
	x := make(linalg.Vector, nx)
	for i := range x {
		if x[i], err = r.elem(); err != nil {
			return nil, err
		}
	}
	nz, err := r.count()
	if err != nil {
		return nil, err
	}
	if nx != nz+1 {
		return nil, fmt.Errorf("pubsub: state header shape |X|=%d, N=%d", nx, nz)
	}
	zs := make([][]byte, nz)
	for i := range zs {
		z, err := r.bytes()
		if err != nil {
			return nil, err
		}
		if len(z) != core.NonceSize {
			return nil, fmt.Errorf("pubsub: state header nonce of %d bytes, want %d", len(z), core.NonceSize)
		}
		zs[i] = z
	}
	h := &core.Header{X: x, Zs: zs}
	if err := r.charge(h.Size()); err != nil {
		return nil, err
	}
	return h, nil
}

// Broadcast configuration header encodings inside lastPub.
const (
	stCfgNone       = 0 // inaccessible configuration
	stCfgInline     = 1 // inline single header
	stCfgRef        = 2 // reference into the ungrouped config cache
	stCfgGroupedIn  = 3 // inline grouped header
	stCfgGroupedRef = 4 // reference into the grouped config cache
)

func (p *Publisher) exportStateV2() ([]byte, error) {
	reg := p.reg.exportFull()
	cfgs, shards, grouped := p.keys.engine.ExportCache()
	// Deterministic output: identical state always encodes to identical
	// bytes (tests pin the round trip; operators can diff sealed states by
	// re-sealing).
	sort.Slice(cfgs, func(i, j int) bool { return cfgs[i].ID < cfgs[j].ID })
	sort.Slice(shards, func(i, j int) bool { return shards[i].ID < shards[j].ID })
	sort.Slice(grouped, func(i, j int) bool { return grouped[i].ID < grouped[j].ID })

	p.pubMu.Lock()
	epoch, gen := p.epoch, p.gen
	last := make(map[string]*lastBroadcast, len(p.lastPub))
	for name, lb := range p.lastPub {
		last[name] = lb
	}
	p.pubMu.Unlock()

	w := &stateWriter{}
	w.raw(stateMagicV2)
	w.u64(epoch)
	w.u64(gen)

	// Table T, in sorted order for deterministic output.
	nyms := sortedKeys(reg.table)
	w.u32(len(nyms))
	for _, nym := range nyms {
		w.str(nym)
		row := reg.table[nym]
		conds := sortedKeys(row)
		w.u32(len(conds))
		for _, cond := range conds {
			w.str(cond)
			w.u64(uint64(row[cond]))
		}
	}

	// Membership versions.
	ids := sortedKeys(reg.memVer)
	w.u32(len(ids))
	for _, id := range ids {
		w.str(id)
		w.u64(reg.memVer[id])
	}

	// Sticky group assignments.
	ids = sortedKeys(reg.grpAssign)
	w.u32(len(ids))
	for _, id := range ids {
		w.str(id)
		w.u32(len(reg.grpCounts[id]))
		members := sortedKeys(reg.grpAssign[id])
		w.u32(len(members))
		for _, nym := range members {
			w.str(nym)
			w.u32(reg.grpAssign[id][nym])
		}
	}

	// Engine caches. Pointer → ID maps let the lastPub section reference the
	// shared header objects.
	cfgByHdr := make(map[*core.Header]string, len(cfgs))
	w.u32(len(cfgs))
	for _, c := range cfgs {
		w.str(c.ID)
		w.str(c.Sig)
		writeStateHeader(w, c.Hdr)
		w.u64(uint64(c.Key))
		cfgByHdr[c.Hdr] = c.ID
	}
	w.u32(len(shards))
	for _, s := range shards {
		w.str(s.ID)
		w.str(s.Sig)
		writeStateHeader(w, s.Hdr)
		w.u64(uint64(s.Key))
	}
	grpIDByPtr := make(map[*core.GroupedHeader]string, len(grouped))
	w.u32(len(grouped))
	for _, g := range grouped {
		w.str(g.ID)
		w.str(g.Sig)
		w.bytes(g.RekeyNonce)
		w.u32(len(g.Shards))
		for _, sh := range g.Shards {
			if sh.ShardID != "" {
				w.u8(0)
				w.str(sh.ShardID)
			} else {
				w.u8(1)
				writeStateHeader(w, sh.Hdr)
			}
			w.u64(uint64(sh.Wrap))
		}
		w.u64(uint64(g.Key))
		grpIDByPtr[g.Hdr] = g.ID
	}

	// Per-document diff bases.
	docs := sortedKeys(last)
	w.u32(len(docs))
	for _, name := range docs {
		lb := last[name]
		w.str(name)
		writeStateBroadcast(w, lb.b, cfgByHdr, grpIDByPtr)
		subdocs := sortedKeys(lb.digests)
		w.u32(len(subdocs))
		for _, sd := range subdocs {
			w.str(sd)
			d := lb.digests[sd]
			w.raw(d[:])
		}
	}
	return w.out(), nil
}

func writeStateBroadcast(w *stateWriter, b *Broadcast, cfgByHdr map[*core.Header]string, grpIDByPtr map[*core.GroupedHeader]string) {
	w.str(b.DocName)
	w.u64(b.Epoch)
	w.u64(b.Gen)
	w.u32(len(b.Policies))
	for _, pi := range b.Policies {
		w.str(pi.ID)
		w.u32(len(pi.CondIDs))
		for _, c := range pi.CondIDs {
			w.str(c)
		}
	}
	w.u32(len(b.Configs))
	for i := range b.Configs {
		ci := &b.Configs[i]
		w.str(string(ci.Key))
		w.u64(ci.Rev)
		switch {
		case ci.Grouped != nil:
			if id, ok := grpIDByPtr[ci.Grouped]; ok {
				w.u8(stCfgGroupedRef)
				w.str(id)
			} else {
				w.u8(stCfgGroupedIn)
				w.bytes(ci.Grouped.RekeyNonce)
				w.u32(len(ci.Grouped.Shards))
				for _, sh := range ci.Grouped.Shards {
					writeStateHeader(w, sh.Hdr)
					w.u64(uint64(sh.Wrap))
				}
			}
			w.u32(len(ci.ShardRevs))
			for _, rv := range ci.ShardRevs {
				w.u64(rv)
			}
		case ci.Header != nil:
			if id, ok := cfgByHdr[ci.Header]; ok {
				w.u8(stCfgRef)
				w.str(id)
			} else {
				w.u8(stCfgInline)
				writeStateHeader(w, ci.Header)
			}
		default:
			w.u8(stCfgNone)
		}
	}
	w.u32(len(b.Items))
	for i := range b.Items {
		it := &b.Items[i]
		w.str(it.Subdoc)
		w.str(string(it.Config))
		w.bytes(it.Ciphertext)
		w.u64(it.Rev)
	}
}

func (p *Publisher) importStateV2(data []byte) error {
	r := newStateReader(data[len(stateMagicV2):], codec.NewBudget(maxStateHeaderBudget))

	epoch, err := r.u64()
	if err != nil {
		return err
	}
	gen, err := r.u64()
	if err != nil {
		return err
	}
	if gen == 0 {
		return errors.New("pubsub: state has zero generation")
	}

	// Table T, with the same stale-column filtering as v1 plus duplicate-nym
	// rejection. Dropping anything means the policy set changed since export,
	// so the restored caches may cover memberships that no longer hold; every
	// policy is then marked dirty (conservative full re-solve).
	n, err := r.count()
	if err != nil {
		return err
	}
	dropped := false
	table := make(map[string]map[string]core.CSS, n)
	for i := 0; i < n; i++ {
		nym, err := r.str(maxStateNymLen)
		if err != nil {
			return err
		}
		if err := validateStateNym(nym); err != nil {
			return err
		}
		if _, dup := table[nym]; dup {
			return fmt.Errorf("pubsub: state contains duplicate pseudonym %q", nym)
		}
		nc, err := r.count()
		if err != nil {
			return err
		}
		if nc > maxStateRowCells {
			return errStateOversize
		}
		row := make(map[string]core.CSS, nc)
		for j := 0; j < nc; j++ {
			cond, err := r.str(maxStateCondLen)
			if err != nil {
				return err
			}
			css, err := r.u64()
			if err != nil {
				return err
			}
			if css == 0 || css >= ff64.Modulus {
				return fmt.Errorf("pubsub: state contains invalid CSS for (%q, %q)", nym, cond)
			}
			if _, known := p.condByID[cond]; !known {
				dropped = true
				continue
			}
			row[cond] = core.CSS(css)
		}
		if len(row) > 0 {
			table[nym] = row
		} else {
			dropped = true
		}
	}

	// Membership versions.
	n, err = r.count()
	if err != nil {
		return err
	}
	memVer := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		id, err := r.str(maxStateCondLen)
		if err != nil {
			return err
		}
		v, err := r.u64()
		if err != nil {
			return err
		}
		memVer[id] = v
	}

	// Sticky group assignments.
	n, err = r.count()
	if err != nil {
		return err
	}
	grpAssign := make(map[string]map[string]int, n)
	grpCounts := make(map[string][]int, n)
	for i := 0; i < n; i++ {
		id, err := r.str(maxStateCondLen)
		if err != nil {
			return err
		}
		groups, err := r.count()
		if err != nil {
			return err
		}
		// The group-count list is the one allocation here not naturally
		// bounded by input length (a policy legitimately keeps empty groups
		// after revocations, so groups may exceed members) — charge it
		// against the shared budget so a crafted blob cannot amplify a few
		// bytes into gigabytes of retained slices.
		if err := r.charge(8 * groups); err != nil {
			return err
		}
		members, err := r.count()
		if err != nil {
			return err
		}
		assign := make(map[string]int, members)
		counts := make([]int, groups)
		for j := 0; j < members; j++ {
			nym, err := r.str(maxStateNymLen)
			if err != nil {
				return err
			}
			gid, err := r.u32()
			if err != nil {
				return err
			}
			if gid >= groups {
				return fmt.Errorf("pubsub: state assigns %q to group %d of %d", nym, gid, groups)
			}
			if _, dup := assign[nym]; dup {
				return fmt.Errorf("pubsub: state assigns %q twice in policy %q", nym, id)
			}
			assign[nym] = gid
			// Occupancy is recomputed from the assignments rather than
			// trusted, preserving the fill invariant; only the group-list
			// length (which fixes future group numbering) is taken as stored.
			counts[gid]++
		}
		grpAssign[id] = assign
		grpCounts[id] = counts
	}

	// Engine caches.
	n, err = r.count()
	if err != nil {
		return err
	}
	cfgs := make([]core.CachedConfig, 0, n)
	cfgHdrByID := make(map[string]*core.Header, n)
	for i := 0; i < n; i++ {
		var c core.CachedConfig
		if c.ID, err = r.str(maxStateSigLen); err != nil {
			return err
		}
		if c.Sig, err = r.str(maxStateSigLen); err != nil {
			return err
		}
		if c.Hdr, err = readStateHeader(r); err != nil {
			return err
		}
		if c.Key, err = r.elem(); err != nil {
			return err
		}
		cfgs = append(cfgs, c)
		cfgHdrByID[c.ID] = c.Hdr
	}
	n, err = r.count()
	if err != nil {
		return err
	}
	shards := make([]core.CachedShard, 0, n)
	for i := 0; i < n; i++ {
		var s core.CachedShard
		if s.ID, err = r.str(maxStateSigLen); err != nil {
			return err
		}
		if s.Sig, err = r.str(maxStateSigLen); err != nil {
			return err
		}
		if s.Hdr, err = readStateHeader(r); err != nil {
			return err
		}
		if s.Key, err = r.elem(); err != nil {
			return err
		}
		shards = append(shards, s)
	}
	n, err = r.count()
	if err != nil {
		return err
	}
	grouped := make([]core.CachedGrouped, 0, n)
	for i := 0; i < n; i++ {
		var g core.CachedGrouped
		if g.ID, err = r.str(maxStateSigLen); err != nil {
			return err
		}
		if g.Sig, err = r.str(maxStateSigLen); err != nil {
			return err
		}
		if g.RekeyNonce, err = r.bytes(); err != nil {
			return err
		}
		if len(g.RekeyNonce) != core.NonceSize {
			return fmt.Errorf("pubsub: state rekey nonce of %d bytes, want %d", len(g.RekeyNonce), core.NonceSize)
		}
		ns, err := r.count()
		if err != nil {
			return err
		}
		g.Shards = make([]core.CachedGroupedShard, ns)
		for j := 0; j < ns; j++ {
			kind, err := r.u8()
			if err != nil {
				return err
			}
			var sh core.CachedGroupedShard
			switch kind {
			case 0:
				if sh.ShardID, err = r.str(maxStateSigLen); err != nil {
					return err
				}
			case 1:
				if sh.Hdr, err = readStateHeader(r); err != nil {
					return err
				}
			default:
				return fmt.Errorf("pubsub: bad state shard kind %d", kind)
			}
			if sh.Wrap, err = r.elem(); err != nil {
				return err
			}
			g.Shards[j] = sh
		}
		if g.Key, err = r.elem(); err != nil {
			return err
		}
		grouped = append(grouped, g)
	}

	// Diff bases. Header references resolve against the decoded caches, so
	// the restored broadcasts share objects with the restored engine exactly
	// like the live ones did — which is what keeps the first post-restart
	// publish pointer-identical (revisions carry forward, deltas stay small).
	restoredGrp, err := restoreGroupedHeaders(shards, grouped)
	if err != nil {
		return err
	}
	n, err = r.count()
	if err != nil {
		return err
	}
	last := make(map[string]*lastBroadcast, n)
	for i := 0; i < n; i++ {
		name, err := r.str(maxStateCondLen)
		if err != nil {
			return err
		}
		if _, dup := last[name]; dup {
			return fmt.Errorf("pubsub: state contains duplicate document %q", name)
		}
		b, err := readStateBroadcast(r, cfgHdrByID, restoredGrp)
		if err != nil {
			return err
		}
		if b.DocName != name {
			return fmt.Errorf("pubsub: state diff base keyed %q holds document %q", name, b.DocName)
		}
		if b.Gen != gen {
			return fmt.Errorf("pubsub: state diff base %q carries foreign generation", name)
		}
		nd, err := r.count()
		if err != nil {
			return err
		}
		digests := make(map[string][32]byte, nd)
		for j := 0; j < nd; j++ {
			sd, err := r.str(maxStateCondLen)
			if err != nil {
				return err
			}
			raw, err := r.take(32)
			if err != nil {
				return err
			}
			var d [32]byte
			copy(d[:], raw)
			digests[sd] = d
		}
		last[name] = &lastBroadcast{b: b, digests: digests}
	}
	if err := r.done(); err != nil {
		return err
	}

	return p.installState(&decodedState{
		epoch: epoch, gen: gen,
		table: table, memVer: memVer,
		grpAssign: grpAssign, grpCounts: grpCounts,
		cfgs: cfgs, shards: shards, grouped: grouped,
		restoredGrp: restoredGrp, last: last, dropped: dropped,
	})
}

// decodedState is a fully decoded durable state ready to install — the
// convergence point of the monolithic v2 blob and the segmented import.
type decodedState struct {
	epoch, gen  uint64
	table       map[string]map[string]core.CSS
	memVer      map[string]uint64
	grpUniverse map[string]int // segmented import only: per-policy group-universe length
	grpAssign   map[string]map[string]int
	grpCounts   map[string][]int
	cfgs        []core.CachedConfig
	shards      []core.CachedShard
	grouped     []core.CachedGrouped
	restoredGrp map[string]*core.GroupedHeader
	last        map[string]*lastBroadcast
	dropped     bool
}

// installState installs a decoded state into the publisher. The grouped
// cache entries carry the pre-resolved header objects, so the engine shares
// them with the restored diff bases (pointer identity = delta-small
// publishes).
func (p *Publisher) installState(st *decodedState) error {
	for i := range st.grouped {
		st.grouped[i].Hdr = st.restoredGrp[st.grouped[i].ID]
	}
	if err := p.keys.engine.RestoreCache(st.cfgs, st.shards, st.grouped); err != nil {
		return err
	}
	p.reg.restore(registryState{table: st.table, memVer: st.memVer, grpAssign: st.grpAssign, grpCounts: st.grpCounts})
	if st.dropped {
		// The policy set changed since export: restored caches may encode
		// memberships that no longer hold. Dirty everything.
		p.reg.bumpAll()
	}
	p.pubMu.Lock()
	p.epoch = st.epoch
	p.gen = st.gen
	p.lastPub = st.last
	p.pubMu.Unlock()
	return nil
}

// restoreGroupedHeaders rebuilds the grouped cache's live header objects from
// the decoded entries, resolving shard references against the decoded shard
// cache so the pointers are shared.
func restoreGroupedHeaders(shards []core.CachedShard, grouped []core.CachedGrouped) (map[string]*core.GroupedHeader, error) {
	byID := make(map[string]*core.Header, len(shards))
	for _, s := range shards {
		byID[s.ID] = s.Hdr
	}
	out := make(map[string]*core.GroupedHeader, len(grouped))
	for _, g := range grouped {
		hdr := &core.GroupedHeader{RekeyNonce: g.RekeyNonce, Shards: make([]core.GroupShard, len(g.Shards))}
		for i, sh := range g.Shards {
			h := sh.Hdr
			if sh.ShardID != "" {
				var ok bool
				if h, ok = byID[sh.ShardID]; !ok {
					return nil, fmt.Errorf("pubsub: state configuration %q references unknown shard %q", g.ID, sh.ShardID)
				}
			}
			if h == nil {
				return nil, fmt.Errorf("pubsub: state configuration %q shard %d has no sub-header", g.ID, i)
			}
			hdr.Shards[i] = core.GroupShard{Hdr: h, Wrap: sh.Wrap}
		}
		out[g.ID] = hdr
	}
	return out, nil
}

func readStateBroadcast(r *stateReader, cfgHdrByID map[string]*core.Header, grpByID map[string]*core.GroupedHeader) (*Broadcast, error) {
	b := &Broadcast{}
	var err error
	if b.DocName, err = r.str(maxStateCondLen); err != nil {
		return nil, err
	}
	if b.Epoch, err = r.u64(); err != nil {
		return nil, err
	}
	if b.Gen, err = r.u64(); err != nil {
		return nil, err
	}
	np, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		var pi PolicyInfo
		if pi.ID, err = r.str(maxStateCondLen); err != nil {
			return nil, err
		}
		nc, err := r.count()
		if err != nil {
			return nil, err
		}
		for j := 0; j < nc; j++ {
			c, err := r.str(maxStateCondLen)
			if err != nil {
				return nil, err
			}
			pi.CondIDs = append(pi.CondIDs, c)
		}
		b.Policies = append(b.Policies, pi)
	}
	ncfg, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < ncfg; i++ {
		var ci ConfigInfo
		key, err := r.str(maxStateSigLen)
		if err != nil {
			return nil, err
		}
		ci.Key = policy.ConfigKey(key)
		if ci.Rev, err = r.u64(); err != nil {
			return nil, err
		}
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch kind {
		case stCfgNone:
		case stCfgInline:
			if ci.Header, err = readStateHeader(r); err != nil {
				return nil, err
			}
		case stCfgRef:
			id, err := r.str(maxStateSigLen)
			if err != nil {
				return nil, err
			}
			h, ok := cfgHdrByID[id]
			if !ok {
				return nil, fmt.Errorf("pubsub: state broadcast references unknown configuration %q", id)
			}
			ci.Header = h
		case stCfgGroupedIn, stCfgGroupedRef:
			if kind == stCfgGroupedRef {
				id, err := r.str(maxStateSigLen)
				if err != nil {
					return nil, err
				}
				g, ok := grpByID[id]
				if !ok {
					return nil, fmt.Errorf("pubsub: state broadcast references unknown grouped configuration %q", id)
				}
				ci.Grouped = g
			} else {
				nonce, err := r.bytes()
				if err != nil {
					return nil, err
				}
				if len(nonce) != core.NonceSize {
					return nil, fmt.Errorf("pubsub: state rekey nonce of %d bytes, want %d", len(nonce), core.NonceSize)
				}
				ns, err := r.count()
				if err != nil {
					return nil, err
				}
				g := &core.GroupedHeader{RekeyNonce: nonce, Shards: make([]core.GroupShard, ns)}
				for j := 0; j < ns; j++ {
					h, err := readStateHeader(r)
					if err != nil {
						return nil, err
					}
					wrap, err := r.elem()
					if err != nil {
						return nil, err
					}
					g.Shards[j] = core.GroupShard{Hdr: h, Wrap: wrap}
				}
				ci.Grouped = g
			}
			nr, err := r.count()
			if err != nil {
				return nil, err
			}
			if nr != len(ci.Grouped.Shards) {
				return nil, fmt.Errorf("pubsub: state has %d shard revisions for %d shards", nr, len(ci.Grouped.Shards))
			}
			ci.ShardRevs = make([]uint64, nr)
			for j := range ci.ShardRevs {
				if ci.ShardRevs[j], err = r.u64(); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("pubsub: bad state config kind %d", kind)
		}
		b.Configs = append(b.Configs, ci)
	}
	ni, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < ni; i++ {
		var it Item
		if it.Subdoc, err = r.str(maxStateCondLen); err != nil {
			return nil, err
		}
		cfg, err := r.str(maxStateSigLen)
		if err != nil {
			return nil, err
		}
		it.Config = policy.ConfigKey(cfg)
		if it.Ciphertext, err = r.bytes(); err != nil {
			return nil, err
		}
		if it.Rev, err = r.u64(); err != nil {
			return nil, err
		}
		b.Items = append(b.Items, it)
	}
	return b, nil
}

// sortedKeys returns a map's keys in sorted order (deterministic encoding).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
