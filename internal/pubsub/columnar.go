package pubsub

import (
	"sort"

	"ppcd/internal/core"
)

// cssTable is the flat columnar backing of table T. The previous
// representation — map[nym]map[condID]CSS — cost two map headers, a bucket
// chain and a string key per cell; at the ROADMAP's million-row scale the
// overhead dwarfed the 8-byte CSS payload and every scan chased pointers
// across the heap. The columnar layout interns the condition universe once
// (it is fixed at construction: the publisher's policy set defines it, and
// every import path drops unknown conditions before reaching the registry)
// and stores the cells as one dense row-major []core.CSS block:
//
//	cell(nym, cond) = cells[slot(nym)*width + condIdx[cond]]
//
// A zero cell means "no CSS" (a CSS is never zero: every writer validates
// against ff64.Modulus and draws non-zero secrets), so presence needs no
// side bitmap. Policy qualification and row assembly become contiguous
// array reads instead of nested map lookups.
//
// Slot lifecycle: a new pseudonym takes a slot from the free list or appends
// one. Deletion zeroes the row and marks the slot dead, but the slot is NOT
// reused until the next compact() — this keeps the lazily maintained sorted
// iteration order consistent without re-sorting on every mutation:
//
//   - sorted holds the slots known at the last compaction, in nym order;
//     dead slots are skipped at read time.
//   - pendAdd holds slots added since; a sorted view merges them on the fly.
//   - compact() (called under the registry write lock at snapshot-install
//     points, amortized by a threshold) folds pendAdd into sorted, drops the
//     dead entries and recycles their slots through the free list.
type cssTable struct {
	conds   []string
	condIdx map[string]int
	width   int

	nyms   []string         // slot → pseudonym, "" = dead slot
	slotOf map[string]int32 // live pseudonyms only
	cells  []core.CSS       // row-major: slot*width + condition index
	live   int

	sorted  []int32 // nym-sorted slots as of the last compact (may include dead)
	pendAdd []int32 // slots added since the last compact (unsorted)
	dead    int     // dead slots not yet compacted away
	freed   []int32 // reusable slots (zeroed, absent from sorted and pendAdd)

	// dirty is a per-slot bitmap of rows mutated since the last segmented
	// export stole it (statev2_segments.go). Live slots never move — compact
	// only recycles dead slots — so a slot index is a stable address for
	// "this row changed" across arbitrary churn, which is what lets a
	// snapshot rewrite only the slot-range segments that actually changed.
	// Row creation, every cell write, deletion and group-assignment changes
	// all mark here, under the registry write lock.
	dirty []uint64
}

// markDirty records that slot s's row (cells, presence or group assignment)
// changed. Callers hold the registry write lock.
func (t *cssTable) markDirty(s int32) {
	w := int(s) >> 6
	for w >= len(t.dirty) {
		t.dirty = append(t.dirty, 0)
	}
	t.dirty[w] |= 1 << (uint(s) & 63)
}

// stealDirty hands the dirty bitmap to a segmented export and resets it:
// mutations landing after the steal accumulate toward the NEXT snapshot
// (they may also be visible to the current export's later row reads, which
// over-covers harmlessly — WAL replay is idempotent). Callers hold the
// registry write lock.
func (t *cssTable) stealDirty() []uint64 {
	d := t.dirty
	t.dirty = nil
	return d
}

func newCSSTable(conds []string) *cssTable {
	t := &cssTable{
		conds:   conds,
		condIdx: make(map[string]int, len(conds)),
		width:   len(conds),
		slotOf:  make(map[string]int32),
	}
	for i, c := range conds {
		t.condIdx[c] = i
	}
	return t
}

// ensureRow returns the slot of nym, allocating one if absent.
func (t *cssTable) ensureRow(nym string) int32 {
	if s, ok := t.slotOf[nym]; ok {
		return s
	}
	var s int32
	if n := len(t.freed); n > 0 {
		s = t.freed[n-1]
		t.freed = t.freed[:n-1]
	} else {
		s = int32(len(t.nyms))
		t.nyms = append(t.nyms, "")
		t.cells = append(t.cells, make([]core.CSS, t.width)...)
	}
	t.nyms[s] = nym
	t.slotOf[nym] = s
	t.pendAdd = append(t.pendAdd, s)
	t.live++
	t.markDirty(s)
	return s
}

func (t *cssTable) row(s int32) []core.CSS {
	return t.cells[int(s)*t.width : (int(s)+1)*t.width]
}

// deleteRow zeroes and retires nym's slot. Reports whether the row existed.
func (t *cssTable) deleteRow(nym string) bool {
	s, ok := t.slotOf[nym]
	if !ok {
		return false
	}
	clear(t.row(s))
	t.nyms[s] = ""
	delete(t.slotOf, nym)
	t.live--
	t.dead++
	t.markDirty(s)
	return true
}

// sortedLive returns the live slots in pseudonym order. When nothing is
// pending the last compaction's order is returned as-is (zero cost); dead
// slots are filtered by the caller via nyms[slot] == "". Callers hold at
// least the registry read lock and must not retain the slice across an
// unlock.
func (t *cssTable) sortedLive() []int32 {
	if len(t.pendAdd) == 0 {
		return t.sorted
	}
	add := append([]int32(nil), t.pendAdd...)
	sort.Slice(add, func(i, j int) bool { return t.nyms[add[i]] < t.nyms[add[j]] })
	out := make([]int32, 0, len(t.sorted)+len(add))
	i, j := 0, 0
	for i < len(t.sorted) && j < len(add) {
		if t.nyms[add[j]] == "" {
			j++
			continue
		}
		if t.nyms[t.sorted[i]] <= t.nyms[add[j]] {
			out = append(out, t.sorted[i])
			i++
		} else {
			out = append(out, add[j])
			j++
		}
	}
	out = append(out, t.sorted[i:]...)
	for ; j < len(add); j++ {
		if t.nyms[add[j]] != "" {
			out = append(out, add[j])
		}
	}
	return out
}

// needsCompact reports whether the pending/dead bookkeeping has outgrown the
// threshold where a compaction pays for itself.
func (t *cssTable) needsCompact() bool {
	return len(t.pendAdd)+t.dead > 64+t.live/8
}

// compact folds pendAdd into sorted, drops dead slots and recycles them
// through the free list. Callers hold the registry write lock.
func (t *cssTable) compact() {
	if len(t.pendAdd) == 0 && t.dead == 0 {
		return
	}
	for _, s := range t.sorted {
		if t.nyms[s] == "" {
			t.freed = append(t.freed, s)
		}
	}
	for _, s := range t.pendAdd {
		if t.nyms[s] == "" {
			t.freed = append(t.freed, s)
		}
	}
	merged := t.sortedLive()
	out := make([]int32, 0, t.live)
	for _, s := range merged {
		if t.nyms[s] != "" {
			out = append(out, s)
		}
	}
	t.sorted = out
	t.pendAdd = t.pendAdd[:0]
	t.dead = 0
}

// memBytes estimates the resident footprint of the table: cell block, slot
// directory, interned strings and bookkeeping. The per-entry map constant
// approximates Go's bucket + key-header overhead for string→int32 maps.
func (t *cssTable) memBytes() int64 {
	const mapEntryOverhead = 48
	b := int64(cap(t.cells)) * 8
	b += int64(cap(t.nyms)) * 16
	b += int64(cap(t.sorted)+cap(t.pendAdd)+cap(t.freed)) * 4
	for _, n := range t.nyms {
		b += int64(len(n))
	}
	b += int64(len(t.slotOf)) * mapEntryOverhead
	for _, c := range t.conds {
		b += int64(len(c)) + 16 + mapEntryOverhead
	}
	return b
}
